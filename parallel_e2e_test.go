package cgdqp

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
	"cgdqp/internal/tpch"
)

// renderRows canonicalizes a result for multiset comparison: floats are
// rounded to tolerate summation-order differences, then rows are sorted.
func renderRows(rows []expr.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if !v.IsNull() && (v.T == expr.TFloat || v.T == expr.TInt) {
				parts[j] = fmt.Sprintf("%.4f", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestParallelEngineTPCHAgreement executes every evaluation query under
// both optimizers with the sequential and the parallel engine and
// requires identical result multisets and identical shipping statistics
// (rows, bytes, cost) — the engine changes wall-clock behaviour only.
func TestParallelEngineTPCHAgreement(t *testing.T) {
	cat := tpch.NewCatalog(0.002)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	for _, compliant := range []bool{true, false} {
		opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: compliant})
		for _, name := range tpch.QueryNames() {
			label := fmt.Sprintf("%s compliant=%v", name, compliant)
			res, err := opt.OptimizeSQL(tpch.Queries[name])
			if err != nil {
				t.Fatalf("%s: optimize: %v", label, err)
			}
			cl.Ledger.Reset()
			seqRows, seqStats, err := executor.Run(res.Plan, cl)
			if err != nil {
				t.Fatalf("%s: sequential run: %v", label, err)
			}
			cl.Ledger.Reset()
			parRows, parStats, err := executor.RunParallel(res.Plan, cl)
			if err != nil {
				t.Fatalf("%s: parallel run: %v", label, err)
			}
			if len(seqRows) != len(parRows) {
				t.Fatalf("%s: row counts differ: sequential %d, parallel %d",
					label, len(seqRows), len(parRows))
			}
			sc, pr := renderRows(seqRows), renderRows(parRows)
			for i := range sc {
				if sc[i] != pr[i] {
					t.Fatalf("%s: row %d differs:\nsequential %s\nparallel   %s",
						label, i, sc[i], pr[i])
				}
			}
			if *seqStats != *parStats {
				t.Fatalf("%s: stats differ:\nsequential %+v\nparallel   %+v",
					label, seqStats, parStats)
			}
		}
	}
}

// TestParallelOptionEndToEnd exercises Options.Parallel through the
// public API: two systems over identical data, one per engine, must
// agree on results and on the accounted communication.
func TestParallelOptionEndToEnd(t *testing.T) {
	build := func(opts Options) *System {
		sys := NewSystemWith(opts)
		sys.MustDefineTable("Customer", "db-n", "NorthAmerica", 40,
			Col("custkey", TInt), Col("name", TString), Col("acctbal", TFloat))
		sys.MustDefineTable("Orders", "db-e", "Europe", 120,
			Col("custkey", TInt), Col("ordkey", TInt), Col("totprice", TFloat))
		sys.MustDefineTable("Supply", "db-a", "Asia", 360,
			Col("ordkey", TInt), Col("quantity", TInt))
		sys.MustAddPolicy("ship custkey, name from Customer to *")
		sys.MustAddPolicy("ship custkey, ordkey from Orders to *")
		sys.MustAddPolicy("ship totprice as aggregates sum from Orders to Asia group by custkey, ordkey")
		sys.MustAddPolicy("ship quantity as aggregates sum from Supply to Europe group by ordkey")
		var cRows, oRows, sRows []Row
		for i := 0; i < 40; i++ {
			cRows = append(cRows, Row{Int(int64(i)), String(fmt.Sprintf("cust-%02d", i)), Float(float64(i))})
		}
		for i := 0; i < 120; i++ {
			oRows = append(oRows, Row{Int(int64(i % 40)), Int(int64(i)), Float(float64(10 + i))})
		}
		for i := 0; i < 360; i++ {
			sRows = append(sRows, Row{Int(int64(i % 120)), Int(int64(1 + i%5))})
		}
		sys.MustLoad("Customer", cRows)
		sys.MustLoad("Orders", oRows)
		sys.MustLoad("Supply", sRows)
		return sys
	}
	seq := build(Options{})
	par := build(Options{Parallel: true})

	queries := []string{
		demoQuery,
		`SELECT C.name, SUM(O.totprice) AS total
		 FROM Customer C, Orders O
		 WHERE C.custkey = O.custkey
		 GROUP BY C.name HAVING SUM(O.totprice) > 300`,
		`SELECT DISTINCT C.name FROM Customer C, Orders O WHERE C.custkey = O.custkey`,
	}
	for i, q := range queries {
		sres, err := seq.Query(q)
		if err != nil {
			t.Fatalf("q%d sequential: %v", i, err)
		}
		pres, err := par.Query(q)
		if err != nil {
			t.Fatalf("q%d parallel: %v", i, err)
		}
		sr, pr := renderRows(sres.Rows), renderRows(pres.Rows)
		if len(sr) != len(pr) {
			t.Fatalf("q%d: row counts differ: %d vs %d", i, len(sr), len(pr))
		}
		for j := range sr {
			if sr[j] != pr[j] {
				t.Fatalf("q%d row %d differs:\nsequential %s\nparallel   %s", i, j, sr[j], pr[j])
			}
		}
		if sres.ShippedBytes != pres.ShippedBytes || sres.ShipCost != pres.ShipCost {
			t.Errorf("q%d: shipping stats differ: sequential %d/%v, parallel %d/%v",
				i, sres.ShippedBytes, sres.ShipCost, pres.ShippedBytes, pres.ShipCost)
		}
	}
}
