package cgdqp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/plans/*.golden from current optimizer output")

// TestGoldenPlans snapshots the compliant plan the optimizer picks for
// every TPC-H evaluation query under the CR policy set. The shapes are
// load-bearing — a ship pushed to the wrong side of a join changes both
// cost and compliance — so any drift must be reviewed, then blessed
// with `go test -run TestGoldenPlans -update .`.
func TestGoldenPlans(t *testing.T) {
	cat := tpch.NewCatalog(0.01)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCR)
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})

	for _, name := range tpch.QueryNames() {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		got := res.Plan.Format(true)
		path := filepath.Join("testdata", "plans", name+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create the snapshot)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: plan drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", name, path, got, want)
		}
	}
}
