package cgdqp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// These tests pin the public surface of the persistent storage engine:
// the optimizer plans B+ tree access paths (IndexScan, IndexLookupJoin)
// from declared indexes, plan choice and results are identical across
// the storage backends, and a persistent system reopened over its data
// directory recovers every row without reloading.

// newIndexedSystem builds a single-site system with a 50k-row fact
// table (B+ tree on key) and a 100-row dim table, identical data on
// either backend (dataDir "" = in-memory).
func newIndexedSystem(t *testing.T, dataDir string) *System {
	t.Helper()
	sys := NewSystemWith(Options{DataDir: dataDir})
	sys.MustDefineTable("fact", "db-e", "Europe", 50_000,
		Col("key", TInt), Col("val", TFloat), Col("tag", TString))
	sys.MustDefineTable("dim", "db-e", "Europe", 100,
		Col("fk", TInt), Col("name", TString))
	sys.MustDefineIndex("fact", "key")
	sys.MustAddPolicy("ship * from fact to *")
	sys.MustAddPolicy("ship * from dim to *")
	if err := sys.SetColumnStats("fact", "key", 50_000, Int(0), Int(49_999)); err != nil {
		t.Fatal(err)
	}

	facts := make([]Row, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		facts = append(facts, Row{
			Int(int64(i)),
			Float(float64(i%977) / 4),
			String(fmt.Sprintf("t-%04d", i%4096)),
		})
	}
	sys.MustLoad("fact", facts)
	dims := make([]Row, 0, 100)
	for i := 0; i < 100; i++ {
		dims = append(dims, Row{Int(int64(i * 500)), String(fmt.Sprintf("d-%03d", i))})
	}
	sys.MustLoad("dim", dims)
	return sys
}

// TestIndexAccessPathsPlanned asserts the optimizer turns declared
// indexes into physical access paths — a range predicate on the indexed
// column becomes an IndexScan, an equi-join into the indexed table
// becomes an IndexLookupJoin — and that plan choice and results are
// byte-identical across the in-memory and persistent backends (costing
// depends on the configured pool budget, never on which backend runs).
func TestIndexAccessPathsPlanned(t *testing.T) {
	queries := []struct {
		name, sql, operator string
	}{
		{"range", `SELECT F.key, F.val FROM fact F WHERE F.key >= 1000 AND F.key < 1100 ORDER BY F.key`,
			"IndexScan"},
		// The join references every fact column: the inner side stays a
		// bare scan (no pruning Project), the shape the index-lookup-join
		// alternative matches.
		{"lookup-join", `SELECT D.name, F.key, F.val, F.tag FROM dim D, fact F WHERE D.fk = F.key ORDER BY D.name`,
			"IndexLookupJoin"},
	}

	mem := newIndexedSystem(t, "")
	per := newIndexedSystem(t, t.TempDir())
	defer per.Close()

	for _, q := range queries {
		memPlan, err := mem.Explain(q.sql)
		if err != nil {
			t.Fatalf("%s: explain (mem): %v", q.name, err)
		}
		perPlan, err := per.Explain(q.sql)
		if err != nil {
			t.Fatalf("%s: explain (persistent): %v", q.name, err)
		}
		memText, perText := memPlan.Root.Format(true), perPlan.Root.Format(true)
		if !strings.Contains(memText, q.operator) {
			t.Errorf("%s: optimizer did not plan %s:\n%s", q.name, q.operator, memText)
		}
		if memText != perText {
			t.Errorf("%s: plan choice depends on the storage backend:\n--- in-memory ---\n%s\n--- persistent ---\n%s",
				q.name, memText, perText)
		}

		memRes, err := mem.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: query (mem): %v", q.name, err)
		}
		perRes, err := per.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: query (persistent): %v", q.name, err)
		}
		a, b := renderRows(memRes.Rows), renderRows(perRes.Rows)
		if len(a) == 0 {
			t.Fatalf("%s: empty result exercises nothing", q.name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows (mem) vs %d (persistent)", q.name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: row %d differs across backends:\nmem        %s\npersistent %s", q.name, i, a[i], b[i])
			}
		}
		if memRes.ShippedBytes != perRes.ShippedBytes || memRes.ShipCost != perRes.ShipCost {
			t.Errorf("%s: shipping stats differ across backends: mem (%d, %v) vs persistent (%d, %v)",
				q.name, memRes.ShippedBytes, memRes.ShipCost, perRes.ShippedBytes, perRes.ShipCost)
		}
	}
}

// TestPersistentReopen pins the facade's durability loop: a system
// closed cleanly and reopened over the same data directory reports its
// tables Loaded, serves byte-identical query results without any
// reload, accepts further appends, and keeps those appends across
// another reopen. The store gauges must surface in the metrics registry
// after a query on a persistent system.
func TestPersistentReopen(t *testing.T) {
	dir := t.TempDir()
	const q = `SELECT F.key, F.val FROM fact F WHERE F.key < 40 ORDER BY F.key`

	build := func() *System {
		sys := NewSystemWith(Options{DataDir: dir, Metrics: true})
		sys.MustDefineTable("fact", "db-e", "Europe", 5_000,
			Col("key", TInt), Col("val", TFloat))
		sys.MustDefineIndex("fact", "key")
		sys.MustAddPolicy("ship * from fact to *")
		if err := sys.Open(); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	sys1 := build()
	if sys1.Loaded("fact") {
		t.Fatal("fresh directory reports fact loaded")
	}
	rows := make([]Row, 0, 5_000)
	for i := 0; i < 5_000; i++ {
		rows = append(rows, Row{Int(int64(i)), Float(float64(i) / 8)})
	}
	sys1.MustLoad("fact", rows)
	res1, err := sys1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != 40 {
		t.Fatalf("first run: %d rows, want 40", len(res1.Rows))
	}
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := build()
	if !sys2.Loaded("fact") {
		t.Fatal("reopened directory does not report fact loaded")
	}
	res2, err := sys2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderRows(res1.Rows), renderRows(res2.Rows)
	if len(a) != len(b) {
		t.Fatalf("reopen: %d rows, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reopen: row %d differs:\nbefore %s\nafter  %s", i, a[i], b[i])
		}
	}
	var buf bytes.Buffer
	if err := sys2.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"cgdqp_store_pool_hits", "cgdqp_store_pool_misses", "cgdqp_store_pool_resident"} {
		if !strings.Contains(buf.String(), g) {
			t.Errorf("metrics: gauge %s missing after a persistent query", g)
		}
	}

	// Appends after reopen are accepted and survive another reopen.
	if err := sys2.Load("fact", []Row{{Int(-5), Float(1)}, {Int(-4), Float(2)}}); err != nil {
		t.Fatal(err)
	}
	res2b, err := sys2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2b.Rows) != 42 {
		t.Fatalf("after append: %d rows, want 42", len(res2b.Rows))
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}

	sys3 := build()
	res3, err := sys3.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 42 {
		t.Fatalf("second reopen: %d rows, want 42 (append lost)", len(res3.Rows))
	}
	if err := sys3.Close(); err != nil {
		t.Fatal(err)
	}
}
