package cgdqp

// A committable query-serving report: `make bench` runs this harness
// with -bench-report, which pushes a mixed TPC-H workload through
// sched.Server at 1/4/16 clients (against an unscheduled fan-out of the
// same queries as the baseline), drives a 2x-overload open loop against
// a bounded admission queue, and rewrites BENCH_sched.json. Every
// response is checked byte-identical to the sequential reference, so
// the throughput numbers are at equal correctness.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/rescache"
	"cgdqp/internal/sched"
	"cgdqp/internal/tpch"
)

type schedBenchRow struct {
	Clients int `json:"clients"`
	// Scheduled: through sched.Server (bounded concurrency, fair queue,
	// per-site slots, shared-work batching).
	SchedQPS   float64 `json:"sched_qps"`
	SchedP50MS float64 `json:"sched_p50_ms"`
	SchedP99MS float64 `json:"sched_p99_ms"`
	// Unscheduled: the same queries fanned out as naked concurrent
	// optimize+execute calls, one goroutine per client.
	UnschedQPS   float64 `json:"unsched_qps"`
	UnschedP50MS float64 `json:"unsched_p50_ms"`
	UnschedP99MS float64 `json:"unsched_p99_ms"`
}

type schedBenchReport struct {
	Tool          string          `json:"tool"`
	GoVersion     string          `json:"go_version"`
	MaxConcurrent int             `json:"max_concurrent"`
	Rows          []schedBenchRow `json:"rows"`
	// Overload: open-loop submissions at 2x the measured 16-client
	// throughput against a small bounded queue. RejectedTyped must be
	// true: overload sheds as ErrQueueFull, never unbounded queueing.
	OverloadOfferedQPS float64 `json:"overload_offered_qps"`
	OverloadCompleted  int64   `json:"overload_completed"`
	OverloadRejected   int64   `json:"overload_rejected"`
	RejectedTyped      bool    `json:"overload_rejections_typed"`
	// Rescache: result-cache effectiveness through the server — cold
	// (every request executes) vs warm (every request hits) p50 latency
	// for the same query mix, and the hit ratio under a Zipf-skewed
	// request stream. The warm path must be at least 10x faster at p50;
	// the report test enforces it.
	Rescache schedBenchRescache `json:"rescache"`
}

type schedBenchRescache struct {
	ColdP50MS    float64 `json:"cold_p50_ms"`
	WarmP50MS    float64 `json:"warm_p50_ms"`
	WarmSpeedup  float64 `json:"warm_speedup"`
	ZipfRequests int64   `json:"zipf_requests"`
	ZipfHits     int64   `json:"zipf_hits"`
	ZipfHitRatio float64 `json:"zipf_hit_ratio"`
}

// TestSchedBenchReport is skipped unless -bench-report is given (it is
// a measurement pass, not a correctness test).
func TestSchedBenchReport(t *testing.T) {
	if !*benchReport {
		t.Skip("run with -bench-report to rewrite BENCH_sched.json")
	}
	cat := tpch.NewCatalog(0.001)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	// Both sides share one optimizer with a warm plan cache, so the
	// comparison isolates execution scheduling, not optimization.
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true, PlanCacheSize: 32})
	names := tpch.QueryNames()
	refs := map[string][]string{}
	for _, name := range names {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		rows, _, err := executor.Run(res.Plan.Clone(), cl)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		refs[name] = renderRows(rows)
	}
	verify := func(name string, rows []string) error {
		want := refs[name]
		if len(rows) != len(want) {
			return fmt.Errorf("%s: %d rows, want %d", name, len(rows), len(want))
		}
		for i := range want {
			if rows[i] != want[i] {
				return fmt.Errorf("%s: row %d differs", name, i)
			}
		}
		return nil
	}

	maxConc := runtime.GOMAXPROCS(0)
	if maxConc < 2 {
		maxConc = 2
	}
	if maxConc > 8 {
		maxConc = 8
	}
	report := schedBenchReport{
		Tool:          "go test -run TestSchedBenchReport -bench-report .",
		GoVersion:     runtime.Version(),
		MaxConcurrent: maxConc,
	}

	pctMS := func(lats []time.Duration, p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return float64(lats[int(p*float64(len(lats)-1))].Nanoseconds()) / 1e6
	}
	// Closed-loop driver: `clients` goroutines pull queries round-robin
	// from the mix until `total` have run, verifying every result.
	drive := func(clients, total int, run func(name string) ([]string, error)) (float64, []time.Duration) {
		var next atomic.Int64
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= total {
						return
					}
					name := names[i%len(names)]
					t0 := time.Now()
					rows, err := run(name)
					d := time.Since(t0)
					if err == nil {
						err = verify(name, rows)
					}
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return float64(total) / time.Since(start).Seconds(), lats
	}

	var sched16 float64
	for _, clients := range []int{1, 4, 16} {
		total := 48
		if clients == 16 {
			total = 96
		}
		srv := sched.NewServer(opt, cl, nil, sched.Options{MaxConcurrent: maxConc, QueueDepth: total})
		schedQPS, schedLats := drive(clients, total, func(name string) ([]string, error) {
			resp, err := srv.Do(context.Background(), tpch.Queries[name])
			if err != nil {
				return nil, err
			}
			return renderRows(resp.Rows), nil
		})
		srv.Close()
		unschedQPS, unschedLats := drive(clients, total, func(name string) ([]string, error) {
			res, err := opt.OptimizeSQL(tpch.Queries[name])
			if err != nil {
				return nil, err
			}
			rows, _, err := executor.RunParallelObserved(context.Background(), res.Plan, cl, nil)
			if err != nil {
				return nil, err
			}
			return renderRows(rows), nil
		})
		row := schedBenchRow{
			Clients:  clients,
			SchedQPS: schedQPS, SchedP50MS: pctMS(schedLats, 0.50), SchedP99MS: pctMS(schedLats, 0.99),
			UnschedQPS: unschedQPS, UnschedP50MS: pctMS(unschedLats, 0.50), UnschedP99MS: pctMS(unschedLats, 0.99),
		}
		report.Rows = append(report.Rows, row)
		if clients == 16 {
			sched16 = schedQPS
			if schedQPS < unschedQPS {
				t.Errorf("16 clients: scheduled throughput %.1f q/s below unscheduled %.1f q/s", schedQPS, unschedQPS)
			}
		}
		t.Logf("%2d clients: sched %.1f q/s (p50 %.1fms p99 %.1fms) vs unsched %.1f q/s (p50 %.1fms p99 %.1fms)",
			clients, row.SchedQPS, row.SchedP50MS, row.SchedP99MS,
			row.UnschedQPS, row.UnschedP50MS, row.UnschedP99MS)
	}

	// Overload: offer 2x the measured 16-client throughput against a
	// small bounded queue for 2 seconds. The queue must shed the excess
	// as typed ErrQueueFull rejections.
	offered := 2 * sched16
	srv := sched.NewServer(opt, cl, nil, sched.Options{MaxConcurrent: maxConc, QueueDepth: 8})
	report.OverloadOfferedQPS = offered
	report.RejectedTyped = true
	var tickets []*sched.Ticket
	interval := time.Duration(float64(time.Second) / offered)
	deadline := time.Now().Add(2 * time.Second)
	var qi int
	for time.Now().Before(deadline) {
		name := names[qi%len(names)]
		qi++
		tk, err := srv.Submit(context.Background(), sched.Request{SQL: tpch.Queries[name]})
		switch {
		case err == nil:
			tickets = append(tickets, tk)
		case errors.Is(err, sched.ErrQueueFull):
			report.OverloadRejected++
		default:
			report.RejectedTyped = false
			t.Errorf("overload rejection not typed: %v", err)
		}
		time.Sleep(interval)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Errorf("admitted overload query failed: %v", err)
		} else {
			report.OverloadCompleted++
		}
	}
	srv.Close()
	if report.OverloadRejected == 0 {
		t.Error("2x overload produced no admission rejections; the queue is not bounding")
	}
	t.Logf("overload at %.1f q/s offered: %d completed, %d rejected (typed=%v)",
		offered, report.OverloadCompleted, report.OverloadRejected, report.RejectedTyped)

	// Result cache: one cache-backed server; no data or policy churn, so
	// the view's epochs are constant and every warm request is a hit.
	rc := rescache.New(64 << 20)
	view := rescache.View{
		DataEpoch:   cl.DataEpoch,
		PolicyEpoch: func() uint64 { return 0 },
		Recheck:     func(*plan.Node) bool { return true },
	}
	rcSrv := sched.NewServer(opt, cl, nil, sched.Options{
		MaxConcurrent: maxConc,
		QueueDepth:    32,
		ResultCache:   rc,
		CacheView:     view,
	})
	defer rcSrv.Close()
	doOne := func(name string) (time.Duration, bool, error) {
		t0 := time.Now()
		resp, err := rcSrv.Do(context.Background(), tpch.Queries[name])
		d := time.Since(t0)
		if err != nil {
			return d, false, err
		}
		if err := verify(name, renderRows(resp.Rows)); err != nil {
			return d, false, err
		}
		return d, resp.CacheHit, nil
	}
	const rcRounds = 8
	var coldLats, warmLats []time.Duration
	for round := 0; round < rcRounds; round++ {
		rc.Purge()
		for _, name := range names {
			d, hit, err := doOne(name)
			if err != nil {
				t.Fatalf("rescache cold %s: %v", name, err)
			}
			if hit {
				t.Fatalf("rescache cold %s: hit from a purged cache", name)
			}
			coldLats = append(coldLats, d)
		}
	}
	// The last cold round left every query cached: warm rounds must hit.
	for round := 0; round < rcRounds; round++ {
		for _, name := range names {
			d, hit, err := doOne(name)
			if err != nil {
				t.Fatalf("rescache warm %s: %v", name, err)
			}
			if !hit {
				t.Fatalf("rescache warm %s: not served from cache", name)
			}
			warmLats = append(warmLats, d)
		}
	}
	report.Rescache.ColdP50MS = pctMS(coldLats, 0.50)
	report.Rescache.WarmP50MS = pctMS(warmLats, 0.50)
	if report.Rescache.WarmP50MS > 0 {
		report.Rescache.WarmSpeedup = report.Rescache.ColdP50MS / report.Rescache.WarmP50MS
	}
	if report.Rescache.WarmP50MS*10 > report.Rescache.ColdP50MS {
		t.Errorf("warm p50 %.3fms is not >=10x faster than cold p50 %.3fms",
			report.Rescache.WarmP50MS, report.Rescache.ColdP50MS)
	}

	// Zipf-skewed stream: a fixed-seed rank-skewed mix (s=1.3) over the
	// query set; the hit ratio comes from the cache's own counters.
	rc.Purge()
	statsBefore := rc.Stats()
	zr := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(zr, 1.3, 1, uint64(len(names)-1))
	const zipfRequests = 300
	for i := 0; i < zipfRequests; i++ {
		name := names[int(zipf.Uint64())]
		if _, _, err := doOne(name); err != nil {
			t.Fatalf("rescache zipf %s: %v", name, err)
		}
	}
	statsAfter := rc.Stats()
	report.Rescache.ZipfRequests = zipfRequests
	report.Rescache.ZipfHits = statsAfter.Hits - statsBefore.Hits
	report.Rescache.ZipfHitRatio = float64(report.Rescache.ZipfHits) / float64(zipfRequests)
	t.Logf("rescache: cold p50 %.2fms vs warm p50 %.3fms (%.0fx); zipf hit ratio %.2f over %d requests",
		report.Rescache.ColdP50MS, report.Rescache.WarmP50MS, report.Rescache.WarmSpeedup,
		report.Rescache.ZipfHitRatio, report.Rescache.ZipfRequests)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sched.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
