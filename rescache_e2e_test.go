package cgdqp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// End-to-end contracts of the result-set cache through the public API:
// the three invalidation mechanisms (per-table data epochs, the policy
// epoch with provenance recheck, and the evaluator epoch behind the
// plan cache) flush exactly the caches they own and nothing else, and
// no interleaving of loads, policy changes and queries can make a
// cached result diverge from a fresh execution.

// rcFixture builds a three-table geo-distributed system. Misc is an
// unused decoy table: grants added for it move the policy epoch without
// being able to change any query's plan. Results are pinned to Asia so
// every query's output must legally ship — revoking the grant a query
// depends on then has no local-placement escape hatch.
func rcFixture(t *testing.T, opts Options) *System {
	t.Helper()
	opts.ResultLocation = "Asia"
	sys := NewSystemWith(opts)
	sys.MustDefineTable("Customer", "db-n", "NorthAmerica", 40,
		Col("custkey", TInt), Col("name", TString), Col("acctbal", TFloat))
	sys.MustDefineTable("Orders", "db-e", "Europe", 120,
		Col("custkey", TInt), Col("ordkey", TInt), Col("totprice", TFloat))
	sys.MustDefineTable("Misc", "db-a", "Asia", 10,
		Col("k", TInt), Col("v", TString))
	sys.MustAddPolicy("ship custkey, name, acctbal from Customer to *")  // p1
	sys.MustAddPolicy("ship custkey, ordkey, totprice from Orders to *") // p2
	var cRows, oRows []Row
	for i := 0; i < 40; i++ {
		cRows = append(cRows, Row{Int(int64(i)), String(fmt.Sprintf("cust-%02d", i)), Float(float64(i))})
	}
	for i := 0; i < 120; i++ {
		oRows = append(oRows, Row{Int(int64(i % 40)), Int(int64(i)), Float(float64(10 + i))})
	}
	sys.MustLoad("Customer", cRows)
	sys.MustLoad("Orders", oRows)
	return sys
}

const (
	rcJoinQuery  = "SELECT c.name, o.totprice FROM Customer c, Orders o WHERE c.custkey = o.custkey AND o.totprice > 100"
	rcAggQuery   = "SELECT COUNT(*), SUM(o.totprice) FROM Orders o"
	rcLocalQuery = "SELECT c.name FROM Customer c WHERE c.acctbal > 20"
)

// TestEpochIndependence pins down which epoch flushes which cache — and
// which it must leave alone:
//
//   - a load into one table re-executes only the queries that consume
//     it (data epoch; plan cache untouched),
//   - an added grant flushes the plan cache (evaluator epoch) and
//     rechecks cached results, which survive when their provenance is
//     still compliant (policy epoch; no re-execution),
//   - a revoked load-bearing grant makes the dependent query fail with
//     ErrNoCompliantPlan while independent queries keep their cached
//     results.
//
// The middle case is the regression for a latent missed-invalidation
// bug: policy changes used to drop the whole optimizer, which flushed
// correctly here but left any server holding the old optimizer with a
// stale evaluator. Policy changes now keep the optimizer and bump its
// evaluator epoch instead (see TestServeObservesPolicyRevocation for
// the serving half).
func TestEpochIndependence(t *testing.T) {
	sys := rcFixture(t, Options{ResultCacheBytes: 16 << 20})
	run := func(sql string) *Result {
		t.Helper()
		res, err := sys.Query(sql)
		if err != nil {
			t.Fatalf("query %q: %v", sql, err)
		}
		return res
	}

	// Warm both entries, then prove they are warm.
	run(rcJoinQuery)
	run(rcAggQuery)
	if r := run(rcJoinQuery); !r.Cached {
		t.Fatal("join query not cached after first run")
	}
	if r := run(rcAggQuery); !r.Cached {
		t.Fatal("agg query not cached after first run")
	}
	base := sys.ResultCacheStats()
	basePlan := sys.PlanCacheStats()

	// 1. Data epoch: a load into Customer re-executes the join (which
	// reads Customer) but not the aggregate (which reads only Orders),
	// and does not touch the plan cache.
	// custkey 20 matches order i=100 (totprice 110 > 100), so the new
	// customer appears in the join output.
	sys.MustLoad("Customer", []Row{{Int(20), String("cust-new"), Float(500)}})
	joinAfterLoad := run(rcJoinQuery)
	if joinAfterLoad.Cached {
		t.Fatal("stale join served after load into Customer")
	}
	found := false
	for _, row := range joinAfterLoad.Rows {
		if strings.Contains(row[0].String(), "cust-new") {
			found = true
		}
	}
	if !found {
		t.Fatal("re-executed join does not see the newly loaded row")
	}
	if r := run(rcAggQuery); !r.Cached {
		t.Fatal("load into Customer evicted the Orders-only aggregate")
	}
	st := sys.ResultCacheStats()
	if st.InvalidatedData != base.InvalidatedData+1 {
		t.Fatalf("expected exactly one data invalidation, stats %+v (base %+v)", st, base)
	}
	if st.InvalidatedPolicy != base.InvalidatedPolicy {
		t.Fatalf("load bumped the policy side: %+v", st)
	}
	if ps := sys.PlanCacheStats(); ps.Misses != basePlan.Misses {
		t.Fatalf("load flushed the plan cache: %+v (base %+v)", ps, basePlan)
	}

	// 2. Policy epoch: a grant on the decoy table cannot change any
	// plan, so the plan cache re-optimizes (evaluator epoch moved) while
	// cached results survive via provenance recheck — no re-execution.
	base = sys.ResultCacheStats()
	basePlan = sys.PlanCacheStats()
	epoch := sys.PolicyEpoch()
	sys.MustAddPolicy("ship k, v from Misc to *")
	if got := sys.PolicyEpoch(); got != epoch+1 {
		t.Fatalf("policy epoch %d after grant, want %d", got, epoch+1)
	}
	if r := run(rcJoinQuery); !r.Cached {
		t.Fatal("compliant cached join dropped by an unrelated grant")
	}
	if r := run(rcAggQuery); !r.Cached {
		t.Fatal("compliant cached aggregate dropped by an unrelated grant")
	}
	st = sys.ResultCacheStats()
	if st.Rechecked != base.Rechecked+2 {
		t.Fatalf("expected both entries rechecked once, stats %+v (base %+v)", st, base)
	}
	if st.Fills != base.Fills || st.InvalidatedPolicy != base.InvalidatedPolicy {
		t.Fatalf("unrelated grant forced re-execution: %+v (base %+v)", st, base)
	}
	if ps := sys.PlanCacheStats(); ps.Misses == basePlan.Misses {
		t.Fatalf("policy change did not flush the plan cache: %+v (base %+v)", ps, basePlan)
	}

	// 3. Revocation: removing the Customer grant must fail the join with
	// ErrNoCompliantPlan — not serve the cached result — while the
	// Orders-only aggregate keeps its entry.
	if !sys.RemovePolicy("p1") {
		t.Fatal("RemovePolicy(p1) found nothing")
	}
	if _, err := sys.Query(rcJoinQuery); !errors.Is(err, ErrNoCompliantPlan) {
		t.Fatalf("join after revoking its grant: err=%v, want ErrNoCompliantPlan", err)
	}
	if r := run(rcAggQuery); !r.Cached {
		t.Fatal("revoking the Customer grant dropped the Orders aggregate")
	}
}

// TestServeObservesPolicyRevocation is the serving half of the
// missed-invalidation regression: a sched.Server obtained from Serve
// holds the optimizer across policy changes, and before the fix its
// evaluator never saw them — revoked grants kept producing "compliant"
// plans (and cache hits) forever. Now a revocation made *after* the
// server started must fail subsequent submissions.
func TestServeObservesPolicyRevocation(t *testing.T) {
	sys := rcFixture(t, Options{ResultCacheBytes: 16 << 20, Parallel: true})
	srv := sys.Serve(ServeOptions{MaxConcurrent: 2})
	defer srv.Close()

	ctx := context.Background()
	first, err := srv.Do(ctx, rcJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 {
		t.Fatal("join returned no rows")
	}
	again, err := srv.Do(ctx, rcJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("second submission not served from the shared result cache")
	}

	if !sys.RemovePolicy("p1") {
		t.Fatal("RemovePolicy(p1) found nothing")
	}
	if _, err := srv.Do(ctx, rcJoinQuery); !errors.Is(err, ErrNoCompliantPlan) {
		t.Fatalf("server served a query after its grant was revoked: err=%v", err)
	}
	// The revocation is table-scoped: Orders-only queries still serve.
	if _, err := srv.Do(ctx, rcAggQuery); err != nil {
		t.Fatalf("Orders aggregate after unrelated revocation: %v", err)
	}
}

// TestResultCachePropertyInterleavings drives random seeded
// interleavings of loads, policy grants, revocations and queries
// against a lockstep pair of systems — one with the result cache, one
// without — over identical data. After every query both must agree on
// the error class and, on success, on rows and shipping statistics:
// the uncached system is the oracle, so any divergence means the cache
// served a stale or non-compliant result.
func TestResultCachePropertyInterleavings(t *testing.T) {
	queries := []string{rcJoinQuery, rcAggQuery, rcLocalQuery}
	grants := []string{
		"ship custkey, name, acctbal from Customer to *",
		"ship custkey, ordkey, totprice from Orders to *",
		"ship k, v from Misc to *",
	}
	seeds := 8
	opsPerSeed := 60
	if testing.Short() {
		seeds, opsPerSeed = 3, 30
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cached := rcFixture(t, Options{ResultCacheBytes: 16 << 20})
			plain := rcFixture(t, Options{})
			both := []*System{cached, plain}

			nextRow := 1000
			queried := false
			for op := 0; op < opsPerSeed; op++ {
				switch rng.Intn(10) {
				case 0, 1: // load fresh rows into a random table
					table := []string{"Customer", "Orders"}[rng.Intn(2)]
					var rows []Row
					n := 1 + rng.Intn(3)
					for i := 0; i < n; i++ {
						k := int64(nextRow)
						nextRow++
						if table == "Customer" {
							rows = append(rows, Row{Int(k), String(fmt.Sprintf("cust-%d", k)), Float(float64(k))})
						} else {
							rows = append(rows, Row{Int(k % 40), Int(k), Float(float64(100 + k))})
						}
					}
					for _, sys := range both {
						if err := sys.Load(table, rows); err != nil {
							t.Fatalf("op %d: load %s: %v", op, table, err)
						}
					}
				case 2: // add a grant (may duplicate an existing one)
					g := grants[rng.Intn(len(grants))]
					for _, sys := range both {
						if err := sys.AddPolicy(g); err != nil {
							t.Fatalf("op %d: add policy: %v", op, err)
						}
					}
				case 3: // revoke a random policy; both must agree it existed
					ids := cached.PolicyIDs()
					if len(ids) == 0 {
						continue
					}
					id := ids[rng.Intn(len(ids))]
					rc, rp := cached.RemovePolicy(id), plain.RemovePolicy(id)
					if rc != rp {
						t.Fatalf("op %d: removal of %s diverged: cached=%v plain=%v", op, id, rc, rp)
					}
				default: // query both and compare against the oracle
					q := queries[rng.Intn(len(queries))]
					resC, errC := cached.Query(q)
					resP, errP := plain.Query(q)
					if (errC == nil) != (errP == nil) {
						t.Fatalf("op %d: %q diverged: cached err=%v, oracle err=%v", op, q, errC, errP)
					}
					if errC != nil {
						if !errors.Is(errC, ErrNoCompliantPlan) || !errors.Is(errP, ErrNoCompliantPlan) {
							t.Fatalf("op %d: %q unexpected errors: cached=%v oracle=%v", op, q, errC, errP)
						}
						continue
					}
					queried = true
					gc, gp := renderRows(resC.Rows), renderRows(resP.Rows)
					if len(gc) != len(gp) {
						t.Fatalf("op %d: %q row counts diverged: cached %d, oracle %d (cached-hit=%v)",
							op, q, len(gc), len(gp), resC.Cached)
					}
					for i := range gp {
						if gc[i] != gp[i] {
							t.Fatalf("op %d: %q row %d diverged (cached-hit=%v):\ncached %s\noracle %s",
								op, q, i, resC.Cached, gc[i], gp[i])
						}
					}
					if resC.ShippedBytes != resP.ShippedBytes || resC.ShipCost != resP.ShipCost {
						t.Fatalf("op %d: %q stats diverged (cached-hit=%v): cached {%d %v}, oracle {%d %v}",
							op, q, resC.Cached, resC.ShippedBytes, resC.ShipCost, resP.ShippedBytes, resP.ShipCost)
					}
				}
			}
			if !queried {
				t.Fatal("interleaving never compared a successful query")
			}
			st := cached.ResultCacheStats()
			t.Logf("seed %d: cache stats %+v", seed, st)
		})
	}
}
