package cgdqp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cgdqp/internal/network"
	"cgdqp/internal/tpch"
)

// This file is the cross-engine conformance oracle: one table-driven
// suite that runs every golden TPC-H query across the full execution
// matrix — {sequential, parallel} × {vector kernels, row interpreter} ×
// {result cache cold, warm, disabled} — under a sweep of chaos seeds,
// and requires byte-identical rows, shipping statistics and audit logs
// against a single fault-free sequential/interpreter reference. Any
// divergence between engines, expression paths, cache states or fault
// recoveries is a conformance bug, not an acceptable variation.

// conformOutcome is one observed query execution through the public API.
type conformOutcome struct {
	res *Result
	err error
}

// runConform executes one query with a deadlock watchdog: a run that
// neither returns nor errors within the budget fails the suite.
func runConform(t *testing.T, label string, sys *System, sql string) conformOutcome {
	t.Helper()
	done := make(chan conformOutcome, 1)
	go func() {
		res, err := sys.Query(sql)
		done <- conformOutcome{res: res, err: err}
	}()
	select {
	case out := <-done:
		return out
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: execution hung past 60s (deadlock)", label)
		return conformOutcome{}
	}
}

// conformGolden is the fault-free sequential/interpreter reference for
// one query: canonical rows, shipping statistics and the rendered audit
// log.
type conformGolden struct {
	rows  []string
	bytes int64
	cost  float64
	audit string
}

// newConformSystem builds a fully loaded TPC-H system for one matrix
// cell. Each cell gets its own system over identically generated data so
// cells cannot contaminate each other through shared caches or epochs.
func newConformSystem(t *testing.T, parallel, interp, cached bool) *System {
	t.Helper()
	opts := Options{Parallel: parallel, NoVectorKernels: interp, Audit: true}
	if cached {
		opts.ResultCacheBytes = 32 << 20
	}
	sys := NewSystemWith(opts)
	sys.Schema = tpch.NewCatalog(0.001)
	for _, tab := range sys.Schema.Tables() {
		sys.MustAddPolicy("ship * from " + tab.Name + " to *")
	}
	if err := tpch.Generate(sys.Schema, sys.Cluster()); err != nil {
		t.Fatal(err)
	}
	return sys
}

// conformCompare asserts one successful run against the golden
// reference. Retries are not part of the contract under faults (they
// count repeated sends, which depend on the seed); everything else —
// rows, shipped bytes, shipping cost, the full audit text — must match
// byte for byte.
func conformCompare(t *testing.T, label string, out conformOutcome, auditText string, g *conformGolden) {
	t.Helper()
	got := renderRows(out.res.Rows)
	if len(got) != len(g.rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(g.rows))
	}
	for i := range g.rows {
		if got[i] != g.rows[i] {
			t.Fatalf("%s: row %d differs:\ngot  %s\nwant %s", label, i, got[i], g.rows[i])
		}
	}
	if out.res.ShippedBytes != g.bytes {
		t.Fatalf("%s: shipped %d bytes, want %d", label, out.res.ShippedBytes, g.bytes)
	}
	if out.res.ShipCost != g.cost {
		t.Fatalf("%s: ship cost %v, want %v", label, out.res.ShipCost, g.cost)
	}
	if auditText != g.audit {
		t.Fatalf("%s: audit log diverges from reference:\ngot:\n%swant:\n%s", label, auditText, g.audit)
	}
}

// TestConformanceMatrix is the acceptance oracle of the execution
// matrix. For every golden TPC-H query, every combination of engine,
// expression path and cache state, and every chaos seed (seed 0 =
// fault-free), each run must either succeed byte-identical to the
// reference or fail with a typed *network.ShipError. Cache-enabled
// cells additionally pin the warm-hit contract: after a successful cold
// run the second run is served from the cache with the cold run's exact
// rows, statistics and replayed audit records.
func TestConformanceMatrix(t *testing.T) {
	names := tpch.QueryNames()

	// Golden reference: sequential engine, row interpreter, no cache,
	// fault-free.
	ref := newConformSystem(t, false, true, false)
	goldens := map[string]*conformGolden{}
	for _, name := range names {
		ref.AuditLog().Reset()
		out := runConform(t, "reference/"+name, ref, tpch.Queries[name])
		if out.err != nil {
			t.Fatalf("reference %s: %v", name, out.err)
		}
		goldens[name] = &conformGolden{
			rows:  renderRows(out.res.Rows),
			bytes: out.res.ShippedBytes,
			cost:  out.res.ShipCost,
			audit: ref.AuditLog().String(),
		}
	}

	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	if testing.Short() {
		seeds = seeds[:2]
	}
	retry := network.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  160 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}

	type combo struct {
		name             string
		parallel, interp bool
		cached           bool
	}
	var combos []combo
	for _, parallel := range []bool{false, true} {
		for _, interp := range []bool{false, true} {
			for _, cached := range []bool{false, true} {
				engine, kern, cache := "seq", "kernels", "off"
				if parallel {
					engine = "par"
				}
				if interp {
					kern = "interp"
				}
				if cached {
					cache = "on"
				}
				combos = append(combos, combo{
					name:     fmt.Sprintf("%s/%s/cache=%s", engine, kern, cache),
					parallel: parallel, interp: interp, cached: cached,
				})
			}
		}
	}

	recovered, failed, warmHits := 0, 0, 0
	for _, c := range combos {
		sys := newConformSystem(t, c.parallel, c.interp, c.cached)
		cl := sys.Cluster()
		for _, seed := range seeds {
			if seed == 0 {
				cl.SetFaults(nil)
			} else {
				cl.SetFaults(NewFaultPlan(seed).SetDefault(EdgeFaults{
					DropProb:      0.12,
					TransientProb: 0.06,
				}))
				cl.SetRetry(retry)
			}
			if c.cached {
				// Every seed starts cold: entries surviving from the
				// previous seed would mask the faulted execution path.
				sys.ResultCache().Purge()
			}
			for _, name := range names {
				g := goldens[name]
				label := fmt.Sprintf("%s seed=%d %s", c.name, seed, name)

				sys.AuditLog().Reset()
				cold := runConform(t, label+" cold", sys, tpch.Queries[name])
				coldAudit := sys.AuditLog().String()
				if cold.err != nil {
					var se *network.ShipError
					if !errors.As(cold.err, &se) {
						t.Fatalf("%s cold: untyped error: %v", label, cold.err)
					}
					failed++
				} else {
					if cold.res.Cached {
						t.Fatalf("%s cold: served from a purged cache", label)
					}
					conformCompare(t, label+" cold", cold, coldAudit, g)
					recovered++
				}

				sys.AuditLog().Reset()
				warm := runConform(t, label+" warm", sys, tpch.Queries[name])
				warmAudit := sys.AuditLog().String()
				if c.cached && cold.err == nil {
					// The cold run filled the cache; the warm run must be a
					// hit regardless of the fault plan (hits do not touch
					// the WAN) and byte-identical to the cold run.
					if warm.err != nil {
						t.Fatalf("%s warm: cache-backed rerun failed: %v", label, warm.err)
					}
					if !warm.res.Cached {
						t.Fatalf("%s warm: not served from cache", label)
					}
					if warm.res.ShippedBytes != cold.res.ShippedBytes ||
						warm.res.ShipCost != cold.res.ShipCost ||
						warm.res.Retries != cold.res.Retries {
						t.Fatalf("%s warm: replayed stats diverge from the filling run:\nwarm %+v\ncold %+v",
							label, warm.res, cold.res)
					}
					conformCompare(t, label+" warm", warm, warmAudit, g)
					warmHits++
					continue
				}
				// Cache disabled (or the cold run failed before filling):
				// the second run is an independent execution under the same
				// contract.
				if warm.err != nil {
					var se *network.ShipError
					if !errors.As(warm.err, &se) {
						t.Fatalf("%s warm: untyped error: %v", label, warm.err)
					}
					failed++
					continue
				}
				if !c.cached && warm.res.Cached {
					t.Fatalf("%s warm: cache hit with the cache disabled", label)
				}
				conformCompare(t, label+" warm", warm, warmAudit, g)
				recovered++
			}
		}
		cl.SetFaults(nil)
	}
	if recovered == 0 {
		t.Error("no run exercised the parity comparison")
	}
	if warmHits == 0 {
		t.Error("no warm run was served from the cache")
	}
	if len(seeds) > 2 && failed == 0 {
		t.Error("no faulted run failed; fault rates too low to mean anything")
	}
	t.Logf("conformance: %d compared runs, %d warm cache hits, %d typed failures", recovered, warmHits, failed)
}

// newStoreConformSystem builds a fully loaded TPC-H system for one cell
// of the store axis: dataDir "" keeps the in-memory backend, anything
// else opens the persistent paged engine under that directory. Every
// cell — including the in-memory reference — declares the same B+ tree
// indexes so index access paths (IndexScan, IndexLookupJoin) are
// planned identically on both backends.
func newStoreConformSystem(t *testing.T, parallel, interp bool, dataDir string) *System {
	t.Helper()
	opts := Options{Parallel: parallel, NoVectorKernels: interp, Audit: true, DataDir: dataDir}
	sys := NewSystemWith(opts)
	sys.Schema = tpch.NewCatalog(0.001)
	for _, tab := range sys.Schema.Tables() {
		sys.MustAddPolicy("ship * from " + tab.Name + " to *")
	}
	sys.MustDefineIndex("customer", "custkey")
	sys.MustDefineIndex("orders", "custkey", "orderdate")
	sys.MustDefineIndex("lineitem", "orderkey")
	if err := tpch.Generate(sys.Schema, sys.Cluster()); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestConformanceStoreAxis extends the conformance matrix along the
// storage axis: every golden TPC-H query runs on the persistent paged
// engine across {seq, par} × {kernels, interp} × chaos seeds and must
// be byte-identical — rows, shipping statistics, audit log — to an
// in-memory sequential/interpreter reference over the same data and the
// same declared indexes. The storage backend must be invisible to every
// layer above it: plan choice, shipping, compliance accounting.
func TestConformanceStoreAxis(t *testing.T) {
	names := tpch.QueryNames()

	ref := newStoreConformSystem(t, false, true, "")
	goldens := map[string]*conformGolden{}
	for _, name := range names {
		ref.AuditLog().Reset()
		out := runConform(t, "store-reference/"+name, ref, tpch.Queries[name])
		if out.err != nil {
			t.Fatalf("store reference %s: %v", name, out.err)
		}
		goldens[name] = &conformGolden{
			rows:  renderRows(out.res.Rows),
			bytes: out.res.ShippedBytes,
			cost:  out.res.ShipCost,
			audit: ref.AuditLog().String(),
		}
	}

	seeds := []int64{0, 3, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	retry := network.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  160 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
	compared := 0
	for _, parallel := range []bool{false, true} {
		for _, interp := range []bool{false, true} {
			sys := newStoreConformSystem(t, parallel, interp, t.TempDir())
			cl := sys.Cluster()
			if !cl.Persistent() {
				t.Fatal("store axis cell did not open the persistent backend")
			}
			for _, seed := range seeds {
				if seed == 0 {
					cl.SetFaults(nil)
				} else {
					cl.SetFaults(NewFaultPlan(seed).SetDefault(EdgeFaults{
						DropProb:      0.08,
						TransientProb: 0.05,
					}))
					cl.SetRetry(retry)
				}
				for _, name := range names {
					label := fmt.Sprintf("store par=%v interp=%v seed=%d %s", parallel, interp, seed, name)
					sys.AuditLog().Reset()
					out := runConform(t, label, sys, tpch.Queries[name])
					if out.err != nil {
						var se *network.ShipError
						if !errors.As(out.err, &se) {
							t.Fatalf("%s: untyped error: %v", label, out.err)
						}
						continue
					}
					conformCompare(t, label, out, sys.AuditLog().String(), goldens[name])
					compared++
				}
			}
			cl.SetFaults(nil)
			if err := sys.Close(); err != nil {
				t.Fatalf("store axis close: %v", err)
			}
		}
	}
	if compared == 0 {
		t.Error("no run exercised the store-axis parity comparison")
	}
	t.Logf("store axis: %d compared runs", compared)
}

// newFallbackSystem builds a two-site system loaded with NULL-heavy,
// lane-impure data: every column mixes in untyped NULLs, and a band in
// the middle of Events plants values of the wrong type in the id and
// val lanes. Batches from that band cannot build column vectors, so the
// vectorized operators demote exactly those chunks to the row
// interpreter while the surrounding chunks stay columnar — the
// mixed-path regime the null-free, lane-pure TPC-H data never reaches.
func newFallbackSystem(parallel, interp bool) *System {
	sys := NewSystemWith(Options{Parallel: parallel, NoVectorKernels: interp, Audit: true})
	sys.MustDefineTable("Users", "db-n", "NorthAmerica", 150,
		Col("id", TInt), Col("name", TString))
	sys.MustDefineTable("Events", "db-e", "Europe", 2600,
		Col("id", TInt), Col("grp", TString), Col("val", TFloat),
		Col("qty", TInt), Col("note", TString))
	sys.MustAddPolicy("ship * from Users to *")
	sys.MustAddPolicy("ship * from Events to *")

	var uRows []Row
	for i := 0; i < 150; i++ {
		id := Int(int64(i % 97))
		switch {
		case i%10 == 0:
			id = Null()
		case i%19 == 0:
			id = Float(float64(i % 97)) // float in the int lane
		}
		name := String(fmt.Sprintf("user-%03d", i%60))
		if i%8 == 0 {
			name = Null()
		}
		uRows = append(uRows, Row{id, name})
	}
	notes := []string{"", "abc", "abcabc", "xbry", "zzz", "BRASS"}
	var eRows []Row
	for i := 0; i < 2600; i++ {
		impure := i >= 900 && i < 1700 // middle chunks demote, outer ones stay columnar
		id := Int(int64(i % 97))
		switch {
		case i%11 == 0:
			id = Null()
		case impure && i%13 == 0:
			id = Float(float64(i % 97))
		}
		grp := String(fmt.Sprintf("g-%02d", i%23))
		if i%7 == 0 {
			grp = Null()
		}
		val := Float(float64(i%50) / 4)
		switch {
		case i%5 == 0:
			val = Null()
		case impure && i%17 == 0:
			val = Int(int64(i % 50)) // int in the float lane
		}
		qty := Int(int64(i%9 - 4))
		if i%6 == 0 {
			qty = Null()
		}
		note := String(notes[i%len(notes)])
		if i%9 == 0 {
			note = Null()
		}
		eRows = append(eRows, Row{id, grp, val, qty, note})
	}
	sys.MustLoad("Users", uRows)
	sys.MustLoad("Events", eRows)
	return sys
}

// TestConformanceFallbackParity pins the columnar-vs-row axis where its
// mechanisms actually diverge: chunks that demote to the interpreter
// mid-stream (NULL-heavy and lane-impure data), NULL join keys and
// group keys, and aggregates over mixed int/float lanes. Every engine ×
// expression-path cell must match the sequential/interpreter reference
// byte for byte — rows, shipping statistics and the audit log —
// fault-free and under chaos seeds.
func TestConformanceFallbackParity(t *testing.T) {
	queries := []struct{ name, sql string }{
		{"filter-project", `SELECT E.id, E.val * 2 + 1 AS v, E.note FROM Events E
			WHERE E.val > 3 AND E.note LIKE '%b%' ORDER BY E.id, v, E.note`},
		{"join-residual", `SELECT U.name, E.val FROM Users U, Events E
			WHERE U.id = E.id AND U.name > E.note ORDER BY U.name, E.val`},
		{"group-agg", `SELECT E.grp, SUM(E.val) AS s, COUNT(*) AS n, MIN(E.qty) AS lo,
			MAX(E.note) AS hi, AVG(E.val) AS a
			FROM Events E GROUP BY E.grp ORDER BY E.grp`},
		{"join-agg-limit", `SELECT U.name, SUM(E.val) AS s, COUNT(*) AS n FROM Users U, Events E
			WHERE U.id = E.id GROUP BY U.name ORDER BY U.name LIMIT 40`},
	}

	// Golden reference: sequential engine, row interpreter, fault-free.
	ref := newFallbackSystem(false, true)
	goldens := map[string]*conformGolden{}
	for _, q := range queries {
		ref.AuditLog().Reset()
		out := runConform(t, "reference/"+q.name, ref, q.sql)
		if out.err != nil {
			t.Fatalf("reference %s: %v", q.name, out.err)
		}
		if len(out.res.Rows) == 0 {
			t.Fatalf("reference %s: empty result exercises nothing", q.name)
		}
		goldens[q.name] = &conformGolden{
			rows:  renderRows(out.res.Rows),
			bytes: out.res.ShippedBytes,
			cost:  out.res.ShipCost,
			audit: ref.AuditLog().String(),
		}
	}

	seeds := []int64{0, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	retry := network.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  160 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
	compared := 0
	for _, parallel := range []bool{false, true} {
		for _, interp := range []bool{false, true} {
			sys := newFallbackSystem(parallel, interp)
			cl := sys.Cluster()
			for _, seed := range seeds {
				if seed == 0 {
					cl.SetFaults(nil)
				} else {
					cl.SetFaults(NewFaultPlan(seed).SetDefault(EdgeFaults{
						DropProb:      0.08,
						TransientProb: 0.05,
					}))
					cl.SetRetry(retry)
				}
				for _, q := range queries {
					label := fmt.Sprintf("par=%v interp=%v seed=%d %s", parallel, interp, seed, q.name)
					sys.AuditLog().Reset()
					out := runConform(t, label, sys, q.sql)
					if out.err != nil {
						var se *network.ShipError
						if !errors.As(out.err, &se) {
							t.Fatalf("%s: untyped error: %v", label, out.err)
						}
						continue
					}
					conformCompare(t, label, out, sys.AuditLog().String(), goldens[q.name])
					compared++
				}
			}
			cl.SetFaults(nil)
		}
	}
	if compared == 0 {
		t.Error("no run exercised the fallback parity comparison")
	}
	t.Logf("fallback parity: %d compared runs", compared)
}
