package cgdqp

// A committable execution-engine report: `make bench` runs this harness
// with -bench-report, which measures the seqVsParFixture plan under both
// engines with observability off and on, and rewrites BENCH_exec.json.
// It also enforces the zero-cost-when-off contract: the extrapolated
// cost of the disabled observability hooks must stay under 2% of one
// execution.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

type execBenchRow struct {
	Engine string `json:"engine"`
	// ObsOffNS runs through the instrumented entry points with a nil
	// observer — the default production path (kernels on).
	ObsOffNS int64 `json:"obs_off_ns"`
	// ObsOnNS runs with tracing, metrics and audit all enabled.
	ObsOnNS int64 `json:"obs_on_ns"`
	// ObsOnOverheadPct = (ObsOnNS - ObsOffNS) / ObsOffNS × 100.
	ObsOnOverheadPct float64 `json:"obs_on_overhead_pct"`
	// InterpNS runs obs-off with the compiled kernels disabled (the
	// row-interpreter path); on this ship-heavy fixture the simulated
	// wire time dominates, so the gap is small by design.
	InterpNS int64 `json:"interp_ns"`
	// ShippedBytes is the serialized wire volume of one execution —
	// identical across engines and kernel gates by construction.
	ShippedBytes int64 `json:"shipped_bytes"`
}

type kernelBenchRow struct {
	// Shape names the compute-bound plan measured (no SHIP operators,
	// so expression evaluation dominates).
	Shape string `json:"shape"`
	Rows  int    `json:"rows"`
	// KernelNS / InterpNS are median ns per execution with compiled
	// kernels on vs the row interpreter.
	KernelNS int64 `json:"kernel_ns"`
	InterpNS int64 `json:"interp_ns"`
	// Speedup = InterpNS / KernelNS; acceptance floors are 3× on
	// filter+project and 1.5× on hash-join and agg (join-probe is
	// tracked without a floor).
	Speedup float64 `json:"speedup"`
}

type execBenchReport struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	// DisabledHookNS is the measured cost of one disabled hook bundle
	// (span start/tag/end, registry check, audit record) on a nil
	// observer; DisabledHookAllocs must be 0.
	DisabledHookNS     float64 `json:"disabled_hook_ns"`
	DisabledHookAllocs float64 `json:"disabled_hook_allocs"`
	// HooksPerRun upper-bounds how many hook bundles one execution of
	// the fixture reaches (counted from an observed run, doubled).
	HooksPerRun int64 `json:"hooks_per_run"`
	// DisabledOverheadPct = HooksPerRun × DisabledHookNS relative to the
	// fastest obs-off run — the <2% acceptance bound.
	DisabledOverheadPct float64          `json:"disabled_overhead_pct"`
	Engines             []execBenchRow   `json:"engines"`
	Kernels             []kernelBenchRow `json:"kernels"`
}

// TestExecBenchReport is skipped unless -bench-report is given (it is a
// measurement pass, not a correctness test).
func TestExecBenchReport(t *testing.T) {
	if !*benchReport {
		t.Skip("run with -bench-report to rewrite BENCH_exec.json")
	}
	cl, root := seqVsParFixture(t)
	engines := []struct {
		name string
		run  func(*cluster.Cluster, *plan.Node, *obs.Observer, executor.ExecOptions) ([]expr.Row, *executor.RunStats, error)
	}{
		{"sequential", func(cl *cluster.Cluster, p *plan.Node, o *obs.Observer, eo executor.ExecOptions) ([]expr.Row, *executor.RunStats, error) {
			return executor.RunObservedOpts(context.Background(), p, cl, o, eo)
		}},
		{"parallel", func(cl *cluster.Cluster, p *plan.Node, o *obs.Observer, eo executor.ExecOptions) ([]expr.Row, *executor.RunStats, error) {
			return executor.RunParallelOpts(context.Background(), p, cl, o, eo)
		}},
	}

	report := execBenchReport{
		Tool:      "go test -run TestExecBenchReport -bench-report .",
		GoVersion: runtime.Version(),
	}

	// Disabled-hook unit cost on a nil observer.
	var off *obs.Observer
	report.DisabledHookAllocs = testing.AllocsPerRun(1000, func() { execHookBundle(off, 1) })
	const hookIters = 1 << 20
	start := time.Now()
	execHookBundle(off, hookIters)
	report.DisabledHookNS = float64(time.Since(start).Nanoseconds()) / hookIters

	// Hook volume of one run, counted with everything enabled.
	on := &obs.Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry(), Audit: obs.NewAuditLog()}
	cl.SetObserver(on)
	cl.Ledger.Reset()
	if _, _, err := engines[1].run(cl, root, on, executor.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	report.HooksPerRun = 2 * int64(on.Tracer.Len()+on.Audit.Len()+4)

	const reps = 5
	var fastestOff int64
	for _, eng := range engines {
		offS := make([]time.Duration, 0, reps)
		onS := make([]time.Duration, 0, reps)
		interpS := make([]time.Duration, 0, reps)
		var shipped int64
		for r := 0; r < reps; r++ { // interleave A/B/C so drift hits all
			for _, mode := range []string{"off", "on", "interp"} {
				o := (*obs.Observer)(nil)
				eo := executor.ExecOptions{NoKernels: mode == "interp"}
				if mode == "on" {
					on.Tracer.Reset()
					on.Audit.Reset()
					o = on
				}
				cl.SetObserver(o)
				cl.Ledger.Reset()
				t0 := time.Now()
				rows, stats, err := eng.run(cl, root, o, eo)
				d := time.Since(t0)
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if len(rows) != 1000 {
					t.Fatalf("%s: result rows %d, want 1000", eng.name, len(rows))
				}
				if shipped == 0 {
					shipped = stats.ShippedBytes
				} else if stats.ShippedBytes != shipped {
					t.Fatalf("%s/%s: shipped %d bytes, other modes shipped %d",
						eng.name, mode, stats.ShippedBytes, shipped)
				}
				switch mode {
				case "on":
					onS = append(onS, d)
				case "interp":
					interpS = append(interpS, d)
				default:
					offS = append(offS, d)
				}
			}
		}
		row := execBenchRow{Engine: eng.name, ObsOffNS: medianNS(offS), ObsOnNS: medianNS(onS),
			InterpNS: medianNS(interpS), ShippedBytes: shipped}
		row.ObsOnOverheadPct = 100 * float64(row.ObsOnNS-row.ObsOffNS) / float64(row.ObsOffNS)
		report.Engines = append(report.Engines, row)
		if fastestOff == 0 || row.ObsOffNS < fastestOff {
			fastestOff = row.ObsOffNS
		}
		t.Logf("%s: off %.2fms, on %.2fms (%+.2f%%), interp %.2fms, %d wire bytes", eng.name,
			float64(row.ObsOffNS)/1e6, float64(row.ObsOnNS)/1e6, row.ObsOnOverheadPct,
			float64(row.InterpNS)/1e6, row.ShippedBytes)
	}
	cl.SetObserver(nil)

	report.Kernels = kernelSpeedupRows(t)

	report.DisabledOverheadPct = 100 * float64(report.HooksPerRun) * report.DisabledHookNS /
		float64(fastestOff)
	t.Logf("disabled hooks: %.1fns each, %d/run → %.4f%% of one execution",
		report.DisabledHookNS, report.HooksPerRun, report.DisabledOverheadPct)
	if report.DisabledHookAllocs != 0 {
		t.Errorf("disabled hooks allocate %.1f per bundle, want 0", report.DisabledHookAllocs)
	}
	if report.DisabledOverheadPct >= 2.0 {
		t.Errorf("disabled observability overhead %.3f%% ≥ 2%%", report.DisabledOverheadPct)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_exec.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// kernelSpeedupRows measures the vectorized execution paths against
// the row interpreter on compute-bound, single-site plans (no SHIP
// operators, so expression evaluation dominates the run) and enforces
// the acceptance floors: 3× on filter+project, 1.5× on hash-join and
// on aggregation.
func kernelSpeedupRows(t *testing.T) []kernelBenchRow {
	const n = 200_000
	const dimN = 4096
	cat := schema.NewCatalog()
	wTab := schema.NewTable("Wide", "db-e", "E", n,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "name", Type: expr.TString})
	cat.MustAddTable(wTab)
	dTab := schema.NewTable("Dim", "db-e", "E", dimN,
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "factor", Type: expr.TFloat})
	cat.MustAddTable(dTab)
	cl := cluster.New(cat, network.UniformWAN(100, 0.00001))
	rows := make([]expr.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, expr.Row{
			expr.NewInt(int64(i)),
			expr.NewFloat(float64(i%9973) / 3),
			expr.NewString(fmt.Sprintf("acct-%06d", i%4096)),
		})
	}
	if err := cl.LoadFragment(wTab, 0, rows); err != nil {
		t.Fatal(err)
	}
	dRows := make([]expr.Row, 0, dimN)
	for i := 0; i < dimN; i++ {
		dRows = append(dRows, expr.Row{
			expr.NewString(fmt.Sprintf("acct-%06d", i)),
			expr.NewFloat(float64(i) / 16),
		})
	}
	if err := cl.LoadFragment(dTab, 0, dRows); err != nil {
		t.Fatal(err)
	}

	// Planner-produced plans carry cardinality estimates (the cost layer
	// sets Card on every node); hand-built shapes get the same on their
	// scans so operators presize exactly as they would in production.
	wScan := func(alias string) *plan.Node {
		s := plan.NewScan(wTab, alias, -1)
		s.Card = float64(n)
		return s
	}
	dScan := func(alias string) *plan.Node {
		s := plan.NewScan(dTab, alias, -1)
		s.Card = float64(dimN)
		return s
	}

	bal := func() expr.Expr { return expr.NewCol("W", "acctbal") }
	key := func() expr.Expr { return expr.NewCol("W", "custkey") }
	pred := expr.NewAnd(
		expr.NewAnd(
			expr.NewCmp(expr.LT, expr.NewArith(expr.Mul, bal(), expr.NewConst(expr.NewFloat(2))), expr.NewConst(expr.NewFloat(700))),
			expr.NewCmp(expr.GE, expr.NewArith(expr.Add, expr.NewArith(expr.Mul, bal(), expr.NewConst(expr.NewFloat(3))), key()), expr.NewConst(expr.NewFloat(1000))),
		),
		expr.NewCmp(expr.NE, expr.NewArith(expr.Sub, key(), expr.NewArith(expr.Mul, bal(), expr.NewConst(expr.NewFloat(0.25)))), expr.NewConst(expr.NewFloat(-1))),
	)
	score := func(scale float64) expr.Expr {
		return expr.NewArith(expr.Add, expr.NewArith(expr.Mul, bal(), expr.NewConst(expr.NewFloat(scale))), key())
	}
	filProj := plan.NewProject(plan.NewFilter(wScan("W"), pred),
		[]plan.NamedExpr{
			{E: expr.NewCol("W", "name")},
			{E: score(1.1), Name: "s1"},
			{E: score(2.3), Name: "s2"},
			{E: expr.NewArith(expr.Sub, bal(), expr.NewArith(expr.Mul, key(), expr.NewConst(expr.NewFloat(0.5)))), Name: "delta"},
			{E: expr.NewArith(expr.Mul, expr.NewArith(expr.Add, bal(), key()), expr.NewConst(expr.NewFloat(0.125))), Name: "blend"},
		})
	join := plan.NewJoin(wScan("W"), wScan("W2"),
		expr.NewCmp(expr.EQ, expr.NewCol("W", "custkey"), expr.NewCol("W2", "custkey")))
	join.Kind = plan.HashJoin
	// join-probe isolates the probe loop: a small build side (the Dim
	// scan on the right) probed by the 200k-row fact table on string
	// keys, every probe row matching exactly one build row.
	joinProbe := plan.NewJoin(wScan("W"), dScan("D"),
		expr.NewCmp(expr.EQ, expr.NewCol("W", "name"), expr.NewCol("D", "name")))
	joinProbe.Kind = plan.HashJoin
	agg := plan.NewAggregate(wScan("W"),
		[]*expr.Col{expr.NewCol("W", "name")},
		[]plan.NamedAgg{
			{Fn: expr.AggSum, Arg: expr.NewCol("W", "acctbal"), Name: "total"},
			{Fn: expr.AggCount, Arg: nil, Name: "cnt"},
			{Fn: expr.AggMin, Arg: expr.NewCol("W", "custkey"), Name: "mn"},
			{Fn: expr.AggMax, Arg: expr.NewCol("W", "custkey"), Name: "mx"},
			{Fn: expr.AggAvg, Arg: expr.NewCol("W", "acctbal"), Name: "av"},
		})
	agg.Kind = plan.HashAgg

	// join-probe is reported without a floor: it isolates the probe
	// loop for trend tracking, while hash-join (build+probe) carries
	// the acceptance bound.
	floors := map[string]float64{"filter+project": 3, "hash-join": 1.5, "agg": 1.5}
	var out []kernelBenchRow
	for _, shape := range []struct {
		name string
		root *plan.Node
	}{{"filter+project", filProj}, {"hash-join", join}, {"join-probe", joinProbe}, {"agg", agg}} {
		const reps = 7
		kernS := make([]time.Duration, 0, reps)
		interpS := make([]time.Duration, 0, reps)
		wantRows := -1
		for r := 0; r < reps; r++ {
			for _, interp := range []bool{false, true} {
				cl.Ledger.Reset()
				// Collect the previous configuration's garbage outside the
				// timing window: each run pays for its own allocations, not
				// for whatever the interleaved counterpart left behind.
				runtime.GC()
				t0 := time.Now()
				got, _, err := executor.RunObservedOpts(context.Background(), shape.root, cl, nil,
					executor.ExecOptions{NoKernels: interp})
				d := time.Since(t0)
				if err != nil {
					t.Fatalf("%s (interp=%v): %v", shape.name, interp, err)
				}
				if wantRows < 0 {
					wantRows = len(got)
				} else if len(got) != wantRows {
					t.Fatalf("%s (interp=%v): %d rows, want %d", shape.name, interp, len(got), wantRows)
				}
				if interp {
					interpS = append(interpS, d)
				} else {
					kernS = append(kernS, d)
				}
			}
		}
		row := kernelBenchRow{Shape: shape.name, Rows: n,
			KernelNS: medianNS(kernS), InterpNS: medianNS(interpS)}
		row.Speedup = float64(row.InterpNS) / float64(row.KernelNS)
		out = append(out, row)
		t.Logf("kernels %s: kernel %.2fms, interp %.2fms (%.2fx)", shape.name,
			float64(row.KernelNS)/1e6, float64(row.InterpNS)/1e6, row.Speedup)
		if floor := floors[shape.name]; row.Speedup < floor {
			t.Errorf("kernel speedup on %s is %.2fx, want >= %.1fx", shape.name, row.Speedup, floor)
		}
	}
	return out
}

// execHookBundle exercises the per-shipment observability call sites the
// way cluster/executor do: span lifecycle, registry guard, audit record.
func execHookBundle(o *obs.Observer, n int) {
	for i := 0; i < n; i++ {
		sp := o.StartSpan("ship.batch")
		sp.TagInt("rows", int64(i))
		sp.End()
		if m := o.Reg(); m != nil {
			m.Counter("cgdqp_ship_rows_total", "from", "E", "to", "N").Add(1)
		}
		o.AuditSink().Record(obs.AuditRecord{})
	}
}
