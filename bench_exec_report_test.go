package cgdqp

// A committable execution-engine report: `make bench` runs this harness
// with -bench-report, which measures the seqVsParFixture plan under both
// engines with observability off and on, and rewrites BENCH_exec.json.
// It also enforces the zero-cost-when-off contract: the extrapolated
// cost of the disabled observability hooks must stay under 2% of one
// execution.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

type execBenchRow struct {
	Engine string `json:"engine"`
	// ObsOffNS runs through the instrumented entry points with a nil
	// observer — the default production path.
	ObsOffNS int64 `json:"obs_off_ns"`
	// ObsOnNS runs with tracing, metrics and audit all enabled.
	ObsOnNS int64 `json:"obs_on_ns"`
	// ObsOnOverheadPct = (ObsOnNS - ObsOffNS) / ObsOffNS × 100.
	ObsOnOverheadPct float64 `json:"obs_on_overhead_pct"`
}

type execBenchReport struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	// DisabledHookNS is the measured cost of one disabled hook bundle
	// (span start/tag/end, registry check, audit record) on a nil
	// observer; DisabledHookAllocs must be 0.
	DisabledHookNS     float64 `json:"disabled_hook_ns"`
	DisabledHookAllocs float64 `json:"disabled_hook_allocs"`
	// HooksPerRun upper-bounds how many hook bundles one execution of
	// the fixture reaches (counted from an observed run, doubled).
	HooksPerRun int64 `json:"hooks_per_run"`
	// DisabledOverheadPct = HooksPerRun × DisabledHookNS relative to the
	// fastest obs-off run — the <2% acceptance bound.
	DisabledOverheadPct float64        `json:"disabled_overhead_pct"`
	Engines             []execBenchRow `json:"engines"`
}

// TestExecBenchReport is skipped unless -bench-report is given (it is a
// measurement pass, not a correctness test).
func TestExecBenchReport(t *testing.T) {
	if !*benchReport {
		t.Skip("run with -bench-report to rewrite BENCH_exec.json")
	}
	cl, root := seqVsParFixture(t)
	engines := []struct {
		name string
		run  func(*cluster.Cluster, *plan.Node, *obs.Observer) ([]expr.Row, error)
	}{
		{"sequential", func(cl *cluster.Cluster, p *plan.Node, o *obs.Observer) ([]expr.Row, error) {
			rows, _, err := executor.RunObserved(p, cl, o)
			return rows, err
		}},
		{"parallel", func(cl *cluster.Cluster, p *plan.Node, o *obs.Observer) ([]expr.Row, error) {
			rows, _, err := executor.RunParallelObserved(context.Background(), p, cl, o)
			return rows, err
		}},
	}

	report := execBenchReport{
		Tool:      "go test -run TestExecBenchReport -bench-report .",
		GoVersion: runtime.Version(),
	}

	// Disabled-hook unit cost on a nil observer.
	var off *obs.Observer
	report.DisabledHookAllocs = testing.AllocsPerRun(1000, func() { execHookBundle(off, 1) })
	const hookIters = 1 << 20
	start := time.Now()
	execHookBundle(off, hookIters)
	report.DisabledHookNS = float64(time.Since(start).Nanoseconds()) / hookIters

	// Hook volume of one run, counted with everything enabled.
	on := &obs.Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry(), Audit: obs.NewAuditLog()}
	cl.SetObserver(on)
	cl.Ledger.Reset()
	if _, err := engines[1].run(cl, root, on); err != nil {
		t.Fatal(err)
	}
	report.HooksPerRun = 2 * int64(on.Tracer.Len()+on.Audit.Len()+4)

	const reps = 5
	var fastestOff int64
	for _, eng := range engines {
		offS := make([]time.Duration, 0, reps)
		onS := make([]time.Duration, 0, reps)
		for r := 0; r < reps; r++ { // interleave A/B so drift hits both
			for _, obsOn := range []bool{false, true} {
				o := (*obs.Observer)(nil)
				if obsOn {
					on.Tracer.Reset()
					on.Audit.Reset()
					o = on
				}
				cl.SetObserver(o)
				cl.Ledger.Reset()
				t0 := time.Now()
				rows, err := eng.run(cl, root, o)
				d := time.Since(t0)
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if len(rows) != 1000 {
					t.Fatalf("%s: result rows %d, want 1000", eng.name, len(rows))
				}
				if obsOn {
					onS = append(onS, d)
				} else {
					offS = append(offS, d)
				}
			}
		}
		row := execBenchRow{Engine: eng.name, ObsOffNS: medianNS(offS), ObsOnNS: medianNS(onS)}
		row.ObsOnOverheadPct = 100 * float64(row.ObsOnNS-row.ObsOffNS) / float64(row.ObsOffNS)
		report.Engines = append(report.Engines, row)
		if fastestOff == 0 || row.ObsOffNS < fastestOff {
			fastestOff = row.ObsOffNS
		}
		t.Logf("%s: off %.2fms, on %.2fms (%+.2f%%)", eng.name,
			float64(row.ObsOffNS)/1e6, float64(row.ObsOnNS)/1e6, row.ObsOnOverheadPct)
	}
	cl.SetObserver(nil)

	report.DisabledOverheadPct = 100 * float64(report.HooksPerRun) * report.DisabledHookNS /
		float64(fastestOff)
	t.Logf("disabled hooks: %.1fns each, %d/run → %.4f%% of one execution",
		report.DisabledHookNS, report.HooksPerRun, report.DisabledOverheadPct)
	if report.DisabledHookAllocs != 0 {
		t.Errorf("disabled hooks allocate %.1f per bundle, want 0", report.DisabledHookAllocs)
	}
	if report.DisabledOverheadPct >= 2.0 {
		t.Errorf("disabled observability overhead %.3f%% ≥ 2%%", report.DisabledOverheadPct)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_exec.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// execHookBundle exercises the per-shipment observability call sites the
// way cluster/executor do: span lifecycle, registry guard, audit record.
func execHookBundle(o *obs.Observer, n int) {
	for i := 0; i < n; i++ {
		sp := o.StartSpan("ship.batch")
		sp.TagInt("rows", int64(i))
		sp.End()
		if m := o.Reg(); m != nil {
			m.Counter("cgdqp_ship_rows_total", "from", "E", "to", "N").Add(1)
		}
		o.AuditSink().Record(obs.AuditRecord{})
	}
}
