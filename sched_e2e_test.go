package cgdqp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
	"cgdqp/internal/sched"
	"cgdqp/internal/tpch"
)

// TestConcurrentQueriesReportOwnStats is the per-query accounting
// regression test: two different queries running concurrently over one
// system must each report exactly the shipping statistics of their own
// sequential runs. Before per-run ledger scoping, concurrent runs
// absorbed each other's transfers through the shared cumulative ledger.
func TestConcurrentQueriesReportOwnStats(t *testing.T) {
	build := func(parallel bool) *System {
		sys := NewSystemWith(Options{Parallel: parallel})
		sys.MustDefineTable("Customer", "db-n", "NorthAmerica", 40,
			Col("custkey", TInt), Col("name", TString))
		sys.MustDefineTable("Orders", "db-e", "Europe", 120,
			Col("custkey", TInt), Col("ordkey", TInt), Col("totprice", TFloat))
		sys.MustAddPolicy("ship * from Customer to *")
		sys.MustAddPolicy("ship * from Orders to *")
		var cRows, oRows []Row
		for i := 0; i < 40; i++ {
			cRows = append(cRows, Row{Int(int64(i)), String(fmt.Sprintf("c%02d", i))})
		}
		for i := 0; i < 120; i++ {
			oRows = append(oRows, Row{Int(int64(i % 40)), Int(int64(i)), Float(float64(i))})
		}
		sys.MustLoad("Customer", cRows)
		sys.MustLoad("Orders", oRows)
		return sys
	}
	queries := []string{
		`SELECT C.name, SUM(O.totprice) AS total
		 FROM Customer C, Orders O WHERE C.custkey = O.custkey GROUP BY C.name`,
		`SELECT O.custkey, COUNT(*) AS cnt FROM Orders O GROUP BY O.custkey`,
	}
	for _, parallel := range []bool{false, true} {
		sys := build(parallel)
		// Sequential baselines, one query at a time.
		want := make([]*Result, len(queries))
		for i, q := range queries {
			r, err := sys.Query(q)
			if err != nil {
				t.Fatalf("parallel=%v baseline %d: %v", parallel, i, err)
			}
			want[i] = r
		}
		// Now run both queries concurrently, repeatedly; each must match
		// its own baseline exactly.
		var wg sync.WaitGroup
		errs := make(chan error, 2*len(queries)*4)
		for round := 0; round < 4; round++ {
			for i, q := range queries {
				wg.Add(1)
				go func() {
					defer wg.Done()
					got, err := sys.QueryContext(context.Background(), q)
					if err != nil {
						errs <- fmt.Errorf("parallel=%v q%d: %v", parallel, i, err)
						return
					}
					if got.ShippedBytes != want[i].ShippedBytes || got.ShipCost != want[i].ShipCost {
						errs <- fmt.Errorf("parallel=%v q%d: concurrent stats %d bytes/%.3f cost, sequential %d bytes/%.3f cost",
							parallel, i, got.ShippedBytes, got.ShipCost, want[i].ShippedBytes, want[i].ShipCost)
					}
				}()
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestServeTPCHThroughSystem drives the public serving API end to end:
// a 16-client mixed TPC-H burst through System.Serve must return, for
// every query, rows identical to an isolated sequential run.
func TestServeTPCHThroughSystem(t *testing.T) {
	cat := tpch.NewCatalog(0.001)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true, PlanCacheSize: 16})

	names := tpch.QueryNames()
	refs := map[string][]string{}
	for _, name := range names {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		rows, _, err := executor.Run(res.Plan.Clone(), cl)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		refs[name] = renderRows(rows)
	}

	srv := sched.NewServer(opt, cl, nil, sched.Options{MaxConcurrent: 6, QueueDepth: 64})
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		name := names[i%len(names)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Do(context.Background(), tpch.Queries[name])
			if err != nil {
				errs <- fmt.Errorf("%s: %v", name, err)
				return
			}
			got, want := renderRows(resp.Rows), refs[name]
			if len(got) != len(want) {
				errs <- fmt.Errorf("%s: %d rows, want %d", name, len(got), len(want))
				return
			}
			for i := range want {
				if got[i] != want[i] {
					errs <- fmt.Errorf("%s: row %d differs:\ngot  %s\nwant %s", name, i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	c := srv.Counters()
	if c.Completed != 32 {
		t.Errorf("completed %d of 32 (counters %+v)", c.Completed, c)
	}
}

// TestSchedChaosServing is the scheduler's chaos acceptance gate: per
// seed, 12 concurrent mixed TPC-H queries go through a sched.Server
// while the WAN injects deterministic faults. Every admitted query must
// either complete with rows identical to the fault-free reference or
// fail with a typed error (*network.ShipError, or a context error for
// deadline/cancel) — never hang, panic, or return silently wrong rows.
// The compliance audit log must stay well-formed throughout.
func TestSchedChaosServing(t *testing.T) {
	cat := tpch.NewCatalog(0.001)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true, PlanCacheSize: 16})

	names := tpch.QueryNames()
	refs := map[string][]string{}
	for _, name := range names {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		rows, _, err := executor.Run(res.Plan.Clone(), cl)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		refs[name] = renderRows(rows)
	}

	audit := obs.NewAuditLog()
	obsv := &obs.Observer{Audit: audit, Metrics: obs.NewRegistry()}
	cl.SetObserver(obsv)
	opt.SetObserver(obsv)
	completed, failed := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		// Mild seeds recover everything under a generous retry budget;
		// harsh seeds (high drop rate, 2 attempts) force typed failures
		// so both terminal states are exercised.
		retry := network.RetryPolicy{
			MaxAttempts: 6,
			BaseBackoff: 20 * time.Microsecond,
			MaxBackoff:  160 * time.Microsecond,
			Multiplier:  2,
			JitterFrac:  0.2,
		}
		drop := 0.05
		if seed > 3 {
			retry.MaxAttempts = 2
			drop = 0.30
		}
		cl.SetRetry(retry)
		cl.SetFaults(network.NewFaultPlan(seed).SetDefault(network.EdgeFaults{
			DropProb:      drop,
			TransientProb: 0.04,
			DelayProb:     0.10,
			DelayMS:       5,
		}))
		srv := sched.NewServer(opt, cl, obsv, sched.Options{MaxConcurrent: 6, QueueDepth: 32})

		type outcome struct {
			name string
			rows []string
			err  error
		}
		results := make(chan outcome, 12)
		var wg sync.WaitGroup
		for i := 0; i < 12; i++ {
			name := names[(int(seed)+i)%len(names)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := srv.Do(context.Background(), tpch.Queries[name])
				if err != nil {
					results <- outcome{name: name, err: err}
					return
				}
				results <- outcome{name: name, rows: renderRows(resp.Rows)}
			}()
		}
		waitDone := make(chan struct{})
		go func() { wg.Wait(); close(waitDone) }()
		select {
		case <-waitDone:
		case <-time.After(chaosWatchdog):
			t.Fatalf("seed %d: serving burst hung past %v", seed, chaosWatchdog)
		}
		srv.Close()
		close(results)
		for out := range results {
			if out.err != nil {
				var se *network.ShipError
				if !errors.As(out.err, &se) &&
					!errors.Is(out.err, context.Canceled) && !errors.Is(out.err, context.DeadlineExceeded) {
					t.Fatalf("seed %d %s: untyped chaos error: %v", seed, out.name, out.err)
				}
				failed++
				continue
			}
			completed++
			want := refs[out.name]
			if len(out.rows) != len(want) {
				t.Fatalf("seed %d %s: %d rows, want %d", seed, out.name, len(out.rows), len(want))
			}
			for i := range want {
				if out.rows[i] != want[i] {
					t.Fatalf("seed %d %s: row %d differs under chaos:\ngot  %s\nwant %s",
						seed, out.name, i, out.rows[i], want[i])
				}
			}
		}
	}
	cl.SetFaults(nil)
	if completed == 0 {
		t.Error("no served chaos query completed; the correctness path went unexercised")
	}
	if failed == 0 {
		t.Error("no served chaos query failed typed; the failure path went unexercised")
	}
	t.Logf("sched chaos: %d completed, %d typed failures across 6 seeds", completed, failed)

	// The audit log must be well-formed after all that concurrency:
	// every record names a real cross-site edge, its source relations,
	// shipped columns and a justification, and the rendering stays
	// canonical (sorted, deterministic).
	recs := audit.Records()
	if len(recs) == 0 {
		t.Fatal("audit log empty after served chaos runs")
	}
	for i, r := range recs {
		if r.From == "" || r.To == "" || r.From == r.To {
			t.Fatalf("audit record %d has a malformed edge: %+v", i, r)
		}
		if len(r.Relations) == 0 || r.Justification == "" {
			t.Fatalf("audit record %d lacks provenance: %+v", i, r)
		}
		if r.Rows < 0 || r.Bytes < 0 || r.Batches < 0 {
			t.Fatalf("audit record %d has impossible volume: %+v", i, r)
		}
	}
	lines := strings.Split(strings.TrimSpace(audit.String()), "\n")
	if len(lines) != len(recs) {
		t.Fatalf("audit rendering: %d lines for %d records", len(lines), len(recs))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] == "" {
			t.Fatalf("audit rendering: blank line %d", i)
		}
	}
}
