package cgdqp

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/tpch"
)

// chaosWatchdog bounds one execution: a run that neither returns nor
// errors within the budget is a deadlock, which the fault layer must
// never introduce.
const chaosWatchdog = 60 * time.Second

func chaosSortTransfers(ts []network.Transfer) []network.Transfer {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Bytes != b.Bytes {
			return a.Bytes < b.Bytes
		}
		return a.Rows < b.Rows
	})
	return ts
}

type chaosOutcome struct {
	rows  []string
	stats *executor.RunStats
	ts    []network.Transfer
	err   error
}

// runWithWatchdog executes the plan on a goroutine and fails the test if
// it hangs past the watchdog budget.
func runWithWatchdog(t *testing.T, label string, run func() ([]string, *executor.RunStats, []network.Transfer, error)) chaosOutcome {
	t.Helper()
	done := make(chan chaosOutcome, 1)
	go func() {
		rows, stats, ts, err := run()
		done <- chaosOutcome{rows: rows, stats: stats, ts: ts, err: err}
	}()
	select {
	case out := <-done:
		return out
	case <-time.After(chaosWatchdog):
		t.Fatalf("%s: execution hung past %v (deadlock)", label, chaosWatchdog)
		return chaosOutcome{}
	}
}

// TestChaosTPCHSweep is the acceptance gate of the fault-injection
// layer: 20+ seeds × every TPC-H evaluation query, under both engines.
// Each run must end in one of exactly two states — (a) success with the
// same rows and a bit-for-bit identical transfer ledger as the
// fault-free sequential engine, or (b) a typed *network.ShipError.
// Never a hang, a panic, an untyped error, or silently wrong rows.
func TestChaosTPCHSweep(t *testing.T) {
	cat := tpch.NewCatalog(0.002)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})

	// Fault-free sequential reference per query: rows and ledger.
	type reference struct {
		root      *plan.Node
		rows      []string
		transfers []network.Transfer
	}
	refs := map[string]*reference{}
	for _, name := range tpch.QueryNames() {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		cl.Ledger.Reset()
		rows, _, err := executor.Run(res.Plan, cl)
		if err != nil {
			t.Fatalf("%s: reference run: %v", name, err)
		}
		refs[name] = &reference{
			root:      res.Plan,
			rows:      renderRows(rows),
			transfers: chaosSortTransfers(cl.Ledger.Transfers()),
		}
	}

	retry := network.RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  160 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
	recovered, failed, retried := 0, 0, int64(0)
	for seed := int64(1); seed <= 24; seed++ {
		cl.SetFaults(network.NewFaultPlan(seed).SetDefault(network.EdgeFaults{
			DropProb:      0.06,
			TransientProb: 0.04,
			DelayProb:     0.15,
			DelayMS:       25,
		}))
		cl.SetRetry(retry)
		// Alternate engines across seeds; both must satisfy the same
		// contract. The parallel engine also gets a cancellable context
		// so a regression that ignores it would show up as a hang here.
		for _, name := range tpch.QueryNames() {
			ref := refs[name]
			label := name
			cl.Ledger.Reset()
			out := runWithWatchdog(t, label, func() ([]string, *executor.RunStats, []network.Transfer, error) {
				var rows []Row
				var stats *executor.RunStats
				var err error
				if seed%4 == 0 {
					rows, stats, err = executor.Run(ref.root, cl)
				} else {
					rows, stats, err = executor.RunParallelContext(context.Background(), ref.root, cl)
				}
				if err != nil {
					return nil, nil, nil, err
				}
				return renderRows(rows), stats, chaosSortTransfers(cl.Ledger.Transfers()), nil
			})
			if out.err != nil {
				var se *network.ShipError
				if !errors.As(out.err, &se) {
					t.Fatalf("seed %d %s: untyped chaos error: %v", seed, label, out.err)
				}
				if se.From == se.To {
					t.Fatalf("seed %d %s: intra-site shipment failed: %v", seed, label, se)
				}
				failed++
				continue
			}
			recovered++
			retried += out.stats.Retries
			if len(out.rows) != len(ref.rows) {
				t.Fatalf("seed %d %s: %d rows, want %d", seed, label, len(out.rows), len(ref.rows))
			}
			for i := range ref.rows {
				if out.rows[i] != ref.rows[i] {
					t.Fatalf("seed %d %s: row %d differs:\ngot  %s\nwant %s",
						seed, label, i, out.rows[i], ref.rows[i])
				}
			}
			if len(out.ts) != len(ref.transfers) {
				t.Fatalf("seed %d %s: %d ledger entries, want %d", seed, label, len(out.ts), len(ref.transfers))
			}
			for i := range ref.transfers {
				if out.ts[i] != ref.transfers[i] {
					t.Fatalf("seed %d %s: ledger entry %d differs after retries:\ngot  %+v\nwant %+v",
						seed, label, i, out.ts[i], ref.transfers[i])
				}
			}
		}
	}
	cl.SetFaults(nil)
	if recovered == 0 {
		t.Error("no chaos run recovered; the parity path went unexercised")
	}
	if retried == 0 {
		t.Error("no run needed a retry; fault rates too low to mean anything")
	}
	t.Logf("chaos sweep: %d recovered runs (%d retried sends), %d typed failures", recovered, retried, failed)
}

// TestChaosPartitionedWAN partitions every WAN edge: any query whose
// plan crosses a site boundary must fail fast with ErrPartitioned; a
// plan that never leaves one site must still succeed.
func TestChaosPartitionedWAN(t *testing.T) {
	cat := tpch.NewCatalog(0.001)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
	cl.SetFaults(network.NewFaultPlan(1).SetDefault(network.EdgeFaults{Partitioned: true}))
	cl.SetRetry(network.DefaultRetryPolicy())
	for _, name := range tpch.QueryNames() {
		res, err := opt.OptimizeSQL(tpch.Queries[name])
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		crossSite := false
		res.Plan.Walk(func(n *plan.Node) bool {
			if n.Kind == plan.Ship && n.FromLoc != n.ToLoc {
				crossSite = true
			}
			return true
		})
		cl.Ledger.Reset()
		out := runWithWatchdog(t, name, func() ([]string, *executor.RunStats, []network.Transfer, error) {
			rows, stats, err := executor.RunParallel(res.Plan, cl)
			if err != nil {
				return nil, nil, nil, err
			}
			return renderRows(rows), stats, nil, nil
		})
		if crossSite {
			if !errors.Is(out.err, network.ErrPartitioned) {
				t.Fatalf("%s crosses sites; error = %v, want ErrPartitioned", name, out.err)
			}
		} else if out.err != nil {
			t.Fatalf("%s is single-site but failed: %v", name, out.err)
		}
	}
	cl.SetFaults(nil)
}

// TestChaosOptionsEndToEnd drives the fault layer through the public
// API: Options.Faults/Options.Retry on two identical systems; a chaos
// system either agrees with the calm one or fails typed, and the chaos
// seed replays to the same outcome.
func TestChaosOptionsEndToEnd(t *testing.T) {
	build := func(opts Options) *System {
		sys := NewSystemWith(opts)
		sys.MustDefineTable("Customer", "db-n", "NorthAmerica", 40,
			Col("custkey", TInt), Col("name", TString))
		sys.MustDefineTable("Orders", "db-e", "Europe", 120,
			Col("custkey", TInt), Col("totprice", TFloat))
		sys.MustAddPolicy("ship * from Customer to *")
		sys.MustAddPolicy("ship * from Orders to *")
		var cRows, oRows []Row
		for i := 0; i < 40; i++ {
			cRows = append(cRows, Row{Int(int64(i)), String("c")})
		}
		for i := 0; i < 120; i++ {
			oRows = append(oRows, Row{Int(int64(i % 40)), Float(float64(i))})
		}
		sys.MustLoad("Customer", cRows)
		sys.MustLoad("Orders", oRows)
		return sys
	}
	const q = `SELECT C.name, SUM(O.totprice) AS total
	           FROM Customer C, Orders O WHERE C.custkey = O.custkey GROUP BY C.name`
	calm, err := build(Options{}).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	retry := DefaultRetryPolicy()
	retry.BaseBackoff = 50 * time.Microsecond
	retry.MaxBackoff = 400 * time.Microsecond
	run := func(seed int64) (*Result, error) {
		faults := NewFaultPlan(seed).SetDefault(EdgeFaults{DropProb: 0.3, TransientProb: 0.2})
		return build(Options{Parallel: true, Faults: faults, Retry: &retry}).Query(q)
	}
	for seed := int64(1); seed <= 8; seed++ {
		a, errA := run(seed)
		b, errB := run(seed) // replay: same seed, same outcome
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d did not replay: %v vs %v", seed, errA, errB)
		}
		if errA != nil {
			var se *ShipError
			if !errors.As(errA, &se) {
				t.Fatalf("seed %d: untyped error: %v", seed, errA)
			}
			if errB.Error() != errA.Error() {
				t.Fatalf("seed %d: replayed error differs: %v vs %v", seed, errA, errB)
			}
			continue
		}
		if a.Retries != b.Retries {
			t.Fatalf("seed %d: retries did not replay: %d vs %d", seed, a.Retries, b.Retries)
		}
		ga, gc := renderRows(a.Rows), renderRows(calm.Rows)
		for i := range gc {
			if ga[i] != gc[i] {
				t.Fatalf("seed %d: row %d differs from calm run", seed, i)
			}
		}
		if a.ShippedBytes != calm.ShippedBytes || a.ShipCost != calm.ShipCost {
			t.Fatalf("seed %d: shipping stats differ from calm run: %d/%v vs %d/%v",
				seed, a.ShippedBytes, a.ShipCost, calm.ShippedBytes, calm.ShipCost)
		}
	}
}
