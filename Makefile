GO ?= go

.PHONY: verify build test vet race bench fuzz

# Tier-1 verification gate: build, vet, full test suite, and the race
# detector over the concurrent packages (parallel executor + cluster).
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executor ./internal/cluster ./internal/network ./internal/plan

# Engine comparison benchmark (sequential vs batch-parallel executor).
bench:
	$(GO) test -run NONE -bench BenchmarkExecSeqVsParallel -benchtime 5x .

# Short fuzzing pass over the SQL and policy parsers (10s per target).
fuzz:
	$(GO) test -run NONE -fuzz FuzzParseSQL -fuzztime 10s ./internal/sqlparse
	$(GO) test -run NONE -fuzz FuzzParsePolicy -fuzztime 10s ./internal/sqlparse
