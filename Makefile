GO ?= go

.PHONY: verify build test vet race bench

# Tier-1 verification gate: build, vet, full test suite, and the race
# detector over the concurrent packages (parallel executor + cluster).
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executor ./internal/cluster

# Engine comparison benchmark (sequential vs batch-parallel executor).
bench:
	$(GO) test -run NONE -bench BenchmarkExecSeqVsParallel -benchtime 5x .
