GO ?= go

.PHONY: verify build test vet race bench benchsmoke fuzz

# Tier-1 verification gate: build, vet, full test suite, the race
# detector over the concurrent packages (parallel executor + cluster +
# the concurrent optimizer front-end), and a 1-iteration pass over the
# optimizer benchmarks so they cannot rot.
verify: build vet test race benchsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executor ./internal/cluster ./internal/network ./internal/plan ./internal/policy ./internal/optimizer

benchsmoke:
	$(GO) test -run NONE -bench Optimize -benchtime 1x .

# Optimizer + engine benchmarks. The first step measures every golden
# TPC-H query (cold, warm-policy-cache and plan-cache-hit paths, η,
# evaluator calls, allocs/op) and rewrites BENCH_optimizer.json; the
# rest print per-query numbers.
bench:
	$(GO) test -run TestOptimizerBenchReport -bench-report .
	$(GO) test -run NONE -bench BenchmarkOptimizeTPCH -benchtime 3x -benchmem .
	$(GO) test -run NONE -bench BenchmarkExecSeqVsParallel -benchtime 5x .

# Short fuzzing pass over the SQL and policy parsers (10s per target).
fuzz:
	$(GO) test -run NONE -fuzz FuzzParseSQL -fuzztime 10s ./internal/sqlparse
	$(GO) test -run NONE -fuzz FuzzParsePolicy -fuzztime 10s ./internal/sqlparse
