GO ?= go

.PHONY: verify build lint test vet race bench benchsmoke fuzz

# Tier-1 verification gate: build, lint (vet + gofmt), full test suite,
# the race detector over the concurrent packages (parallel executor +
# cluster + the concurrent optimizer front-end + the observability
# sinks), and a 1-iteration pass over the optimizer benchmarks so they
# cannot rot.
verify: build lint test race benchsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint: go vet (both kernel-default build flavors) plus a gofmt
# cleanliness check (no external tools).
lint: vet
	$(GO) vet -tags cgdqp_interp ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/executor ./internal/cluster ./internal/network ./internal/plan ./internal/policy ./internal/optimizer ./internal/obs ./internal/sched ./internal/expr ./internal/rescache ./internal/feedback ./internal/store

benchsmoke:
	$(GO) test -run NONE -bench Optimize -benchtime 1x .

# Optimizer + engine benchmarks. The first step measures every golden
# TPC-H query (cold, warm-policy-cache and plan-cache-hit paths, η,
# evaluator calls, allocs/op) and rewrites BENCH_optimizer.json; the
# second rewrites BENCH_exec.json (seq vs parallel engine, tracing off
# vs on, asserting the tracing-off overhead stays under 2%); the third
# rewrites BENCH_sched.json (scheduled vs unscheduled mixed-TPC-H
# throughput and p50/p99 at 1/4/16 clients, typed admission rejections
# at 2x overload); the fourth rewrites BENCH_feedback.json (the
# misestimated workload with the feedback loop off vs on, enforcing the
# ship-bytes improvement floor); the fifth rewrites BENCH_store.json
# (persistent-store access paths at 1M rows/site — full scan vs index
# range vs index-lookup join, cold vs warm buffer pool — enforcing the
# >=10x index-range floor); the rest print per-query numbers.
bench:
	$(GO) test -run TestOptimizerBenchReport -bench-report .
	$(GO) test -run TestExecBenchReport -bench-report .
	$(GO) test -run TestSchedBenchReport -bench-report -timeout 20m .
	$(GO) test -run TestFeedbackBenchReport -bench-report .
	$(GO) test -run TestStoreBenchReport -bench-report .
	$(GO) test -run NONE -bench BenchmarkOptimizeTPCH -benchtime 3x -benchmem .
	$(GO) test -run NONE -bench BenchmarkExecSeqVsParallel -benchtime 5x .

# Short fuzzing pass over the SQL and policy parsers, the compiled
# kernel / interpreter parity harness, the wire-format decoder, and the
# storage engine's page decoder and B+ tree (10s per target).
fuzz:
	$(GO) test -run NONE -fuzz FuzzParseSQL -fuzztime 10s ./internal/sqlparse
	$(GO) test -run NONE -fuzz FuzzParsePolicy -fuzztime 10s ./internal/sqlparse
	$(GO) test -run NONE -fuzz FuzzKernelParity -fuzztime 10s ./internal/expr
	$(GO) test -run NONE -fuzz FuzzWireDecode -fuzztime 10s ./internal/network
	$(GO) test -run NONE -fuzz FuzzPageDecode -fuzztime 10s ./internal/store
	$(GO) test -run NONE -fuzz FuzzBTreeOps -fuzztime 10s ./internal/store
