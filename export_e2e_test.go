package cgdqp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPlanExportThroughFacade(t *testing.T) {
	sys := demoSystem(t)
	p, err := sys.Explain(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	dot := p.Dot()
	if !strings.Contains(dot, "digraph plan") || !strings.Contains(dot, "Ship[") {
		t.Errorf("dot export:\n%s", dot)
	}
	js, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["location"] == "" {
		t.Error("JSON should carry locations")
	}
}

func TestPolicyList(t *testing.T) {
	sys := demoSystem(t)
	list := sys.PolicyList()
	if len(list) != 4 {
		t.Fatalf("policies: %d", len(list))
	}
	joined := strings.Join(list, "\n")
	for _, want := range []string{"ship custkey, name from db-n.customer to *", "as aggregates sum"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}
