package cgdqp

// A committable optimizer-performance report: `make bench` runs this
// harness with -bench-report, which measures every golden TPC-H query
// and rewrites BENCH_optimizer.json. The JSON deliberately carries no
// timestamp so re-runs with unchanged performance produce stable diffs.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

var benchReport = flag.Bool("bench-report", false, "measure optimizer performance and rewrite BENCH_optimizer.json")

type optBenchRow struct {
	Query string `json:"query"`
	// ColdNS is a fresh-optimizer optimization (empty policy cache, no
	// plan cache) — the headline per-query optimization time.
	ColdNS int64 `json:"cold_optimize_ns"`
	// WarmPolicyNS reuses the optimizer (sharded policy cache warm) but
	// still runs the full explore/implement/place pipeline.
	WarmPolicyNS int64 `json:"warm_policy_cache_ns"`
	// WarmPlanNS is a whole-plan cache hit: normalize + digest + clone.
	WarmPlanNS int64 `json:"warm_plan_cache_ns"`
	// PlanCacheSpeedup = ColdNS / WarmPlanNS.
	PlanCacheSpeedup float64 `json:"plan_cache_speedup"`
	// Eta and EvalCalls are the cold run's Figure-7 metrics: policy
	// expressions considered (η) and evaluator invocations (𝒜 calls).
	Eta       int64 `json:"eta"`
	EvalCalls int64 `json:"eval_calls"`
	// AllocsPerOp counts heap allocations of one cold optimization.
	AllocsPerOp float64 `json:"allocs_per_op"`
	Groups      int     `json:"memo_groups"`
	Exprs       int     `json:"memo_exprs"`
}

type optBenchReport struct {
	Tool      string        `json:"tool"`
	GoVersion string        `json:"go_version"`
	PolicySet string        `json:"policy_set"`
	SF        float64       `json:"scale_factor"`
	Queries   []optBenchRow `json:"queries"`
}

func medianNS(samples []time.Duration) int64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2].Nanoseconds()
}

// TestOptimizerBenchReport is skipped unless -bench-report is given (it
// is a measurement pass, not a correctness test).
func TestOptimizerBenchReport(t *testing.T) {
	if !*benchReport {
		t.Skip("run with -bench-report to rewrite BENCH_optimizer.json")
	}
	cat := tpch.NewCatalog(benchCfg.SF)
	net := network.FiveRegionWAN(cat.Locations())
	pc := workload.TPCHSet(workload.SetCRA)

	report := optBenchReport{
		Tool:      "go test -run TestOptimizerBenchReport -bench-report .",
		GoVersion: runtime.Version(),
		PolicySet: "CR+A",
		SF:        benchCfg.SF,
	}

	for _, qn := range tpch.QueryNames() {
		sql := tpch.Queries[qn]
		row := optBenchRow{Query: qn}

		const reps = 3
		coldSamples := make([]time.Duration, 0, reps)
		for r := 0; r < reps; r++ {
			opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
			start := time.Now()
			res, err := opt.OptimizeSQL(sql)
			if err != nil {
				t.Fatalf("%s: %v", qn, err)
			}
			coldSamples = append(coldSamples, time.Since(start))
			if r == 0 {
				row.Eta = res.Stats.Eta
				row.EvalCalls = res.Stats.ACalls
				row.Groups = res.Stats.Groups
				row.Exprs = res.Stats.Exprs
			}
		}
		row.ColdNS = medianNS(coldSamples)

		row.AllocsPerOp = testing.AllocsPerRun(reps, func() {
			opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
			if _, err := opt.OptimizeSQL(sql); err != nil {
				t.Fatal(err)
			}
		})

		warmOpt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
		if _, err := warmOpt.OptimizeSQL(sql); err != nil {
			t.Fatal(err)
		}
		warmSamples := make([]time.Duration, 0, reps)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := warmOpt.OptimizeSQL(sql); err != nil {
				t.Fatal(err)
			}
			warmSamples = append(warmSamples, time.Since(start))
		}
		row.WarmPolicyNS = medianNS(warmSamples)

		planOpt := optimizer.New(cat, pc, net, optimizer.Options{
			Compliant: true, PlanCacheSize: optimizer.DefaultPlanCacheSize})
		if _, err := planOpt.OptimizeSQL(sql); err != nil {
			t.Fatal(err)
		}
		const hitReps = 25
		hitSamples := make([]time.Duration, 0, hitReps)
		for r := 0; r < hitReps; r++ {
			start := time.Now()
			res, err := planOpt.OptimizeSQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stats.PlanCacheHit {
				t.Fatalf("%s: expected a plan-cache hit", qn)
			}
			hitSamples = append(hitSamples, time.Since(start))
		}
		row.WarmPlanNS = medianNS(hitSamples)
		if row.WarmPlanNS > 0 {
			row.PlanCacheSpeedup = float64(row.ColdNS) / float64(row.WarmPlanNS)
		}

		report.Queries = append(report.Queries, row)
		t.Logf("%s: cold %.2fms, warm-policy %.2fms, plan-hit %.3fms (%.0fx), η=%d, 𝒜=%d, allocs=%.0f",
			qn, float64(row.ColdNS)/1e6, float64(row.WarmPolicyNS)/1e6,
			float64(row.WarmPlanNS)/1e6, row.PlanCacheSpeedup, row.Eta, row.EvalCalls, row.AllocsPerOp)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_optimizer.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
