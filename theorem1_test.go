package cgdqp

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// TestTheorem1Property is a randomized whole-system check of the paper's
// soundness theorem and of plan semantics: over random ad-hoc queries and
// random policy sets,
//
//  1. every plan the compliant optimizer emits passes the independent
//     Definition 1 checker (Theorem 1: the optimizer never outputs a
//     non-compliant plan), and
//  2. executing the compliant plan returns exactly the same multiset of
//     rows as the traditional (unconstrained) plan — compliance rewrites
//     (masking projections, aggregation pushdown, rerouting) never change
//     query semantics (Section 3.2's requirement).
func TestTheorem1Property(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end check")
	}
	cat := tpch.NewCatalog(0.0005)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		t.Fatal(err)
	}

	queries := workload.NewQueryGen(99).Generate(30)
	// A few fixed ORDER BY queries exercise the merge-join / sort-elision
	// paths (the generator itself emits no ORDER BY, mirroring §7.1).
	queries = append(queries,
		`SELECT o.orderkey, o.totalprice FROM orders o, lineitem l
		 WHERE o.orderkey = l.orderkey AND l.quantity BETWEEN 5 AND 45
		 ORDER BY o.orderkey`,
		`SELECT c.custkey, SUM(o.totalprice) AS t FROM customer c, orders o
		 WHERE c.custkey = o.custkey GROUP BY c.custkey ORDER BY c.custkey`,
		`SELECT s.suppkey, ps.supplycost FROM supplier s, partsupp ps
		 WHERE s.suppkey = ps.suppkey ORDER BY s.suppkey, ps.supplycost`,
	)
	for trial, set := range []workload.SetName{workload.SetC, workload.SetCR, workload.SetCRA} {
		pc := workload.NewPolicyGen(uint64(1000+trial), cat.Locations()).Generate(set, 25)
		copt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
		topt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: false})
		for qi, q := range queries {
			cres, err := copt.OptimizeSQL(q)
			if err != nil {
				t.Fatalf("set %s q%d: compliant optimizer rejected a generated query (covering core violated?): %v\n%s", set, qi, err, q)
			}
			// (1) Theorem 1: the emitted plan passes the checker.
			if v := copt.Check(cres.Plan); len(v) != 0 {
				t.Fatalf("set %s q%d: THEOREM 1 VIOLATION: %v\n%s\n%s", set, qi, v, q, cres.Plan.Format(true))
			}
			// (1b) Structural invariants: declared schemas match row
			// layouts everywhere.
			if err := optimizer.ValidatePlan(cres.Plan); err != nil {
				t.Fatalf("set %s q%d: %v\n%s", set, qi, err, cres.Plan.Format(true))
			}
			if err := optimizer.ValidatePlan(tresPlanOf(t, topt, q)); err != nil {
				t.Fatalf("set %s q%d (traditional): %v", set, qi, err)
			}
			// (2) Semantics: identical results to the unconstrained plan.
			tres, err := topt.OptimizeSQL(q)
			if err != nil {
				t.Fatalf("set %s q%d: traditional optimizer failed: %v", set, qi, err)
			}
			cRows, _, err := executor.Run(cres.Plan, cl)
			if err != nil {
				t.Fatalf("set %s q%d: compliant execution: %v\n%s", set, qi, err, cres.Plan.Format(true))
			}
			tRows, _, err := executor.Run(tres.Plan, cl)
			if err != nil {
				t.Fatalf("set %s q%d: traditional execution: %v", set, qi, err)
			}
			if diff := rowsDiff(cRows, tRows); diff != "" {
				t.Fatalf("set %s q%d: result mismatch (%s)\nquery: %s\ncompliant:\n%s\ntraditional:\n%s",
					set, qi, diff, q, cres.Plan.Format(true), tres.Plan.Format(true))
			}
			// (3) Ordering: the fixed ORDER BY queries lead with their
			// first sort key, so sort elision must still deliver a
			// non-decreasing first column.
			if strings.Contains(q, "ORDER BY") {
				for i := 1; i < len(cRows); i++ {
					if c, err := cRows[i][0].Compare(cRows[i-1][0]); err == nil && c < 0 {
						t.Fatalf("set %s q%d: ORDER BY violated at row %d\n%s", set, qi, i, cres.Plan.Format(true))
					}
				}
			}
		}
	}
}

// rowsDiff compares two row multisets order-insensitively with numeric
// tolerance; it returns "" when equal.
func rowsDiff(a, b []expr.Row) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d rows", len(a), len(b))
	}
	ka, kb := canonRows(a), canonRows(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Sprintf("row %d: %s vs %s", i, ka[i], kb[i])
		}
	}
	return ""
}

func canonRows(rows []expr.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if !v.IsNull() && (v.T == expr.TFloat || v.T == expr.TInt) {
				parts[j] = fmt.Sprintf("%.6g", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// tresPlanOf re-optimizes traditionally (plans are cheap at this scale)
// so structural validation covers both modes.
func tresPlanOf(t *testing.T, opt *optimizer.Optimizer, q string) *plan.Node {
	t.Helper()
	res, err := opt.OptimizeSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}
