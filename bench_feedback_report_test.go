package cgdqp

// A committable feedback-benefit report: `make bench` runs this harness
// with -bench-report, which executes a deliberately misestimated
// workload with the feedback loop off and on and rewrites
// BENCH_feedback.json. The improvement floor is enforced — a regression
// that stops feedback from correcting the plan fails the measurement
// pass outright.

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"
)

// feedbackBenchFloor is the minimum acceptable total-ship-bytes
// improvement of feedback-on over feedback-off on the misestimated
// workload.
const feedbackBenchFloor = 2.0

type feedbackBenchReport struct {
	Tool       string `json:"tool"`
	GoVersion  string `json:"go_version"`
	Query      string `json:"query"`
	Iterations int    `json:"iterations"`
	// Total bytes shipped across all iterations per mode: with feedback
	// off every run re-executes the misestimated plan; with feedback on
	// the first execution corrects the optimizer and the remaining runs
	// use the repaired plan.
	OffTotalShipBytes int64   `json:"off_total_ship_bytes"`
	OnTotalShipBytes  int64   `json:"on_total_ship_bytes"`
	BytesImprovement  float64 `json:"bytes_improvement"`
	EnforcedFloor     float64 `json:"enforced_floor"`
	// Per-iteration end-to-end latencies (p50/p99 over the iterations).
	OffP50NS int64 `json:"off_p50_ns"`
	OffP99NS int64 `json:"off_p99_ns"`
	OnP50NS  int64 `json:"on_p50_ns"`
	OnP99NS  int64 `json:"on_p99_ns"`
}

func latQuantile(samples []time.Duration, q float64) int64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)-1))
	return samples[idx].Nanoseconds()
}

// runFeedbackBenchMode executes the misestimated workload N times on a
// fresh system and returns total shipped bytes, per-run latencies, and
// the sorted row multiset of the last run.
func runFeedbackBenchMode(t *testing.T, feedbackOn bool, n int) (int64, []time.Duration, []string) {
	t.Helper()
	sys := misestimatedSystem(t, Options{Feedback: feedbackOn})
	var total int64
	var lats []time.Duration
	var rows []string
	for i := 0; i < n; i++ {
		start := time.Now()
		res, err := sys.Query(misestimatedQuery)
		if err != nil {
			t.Fatalf("feedback=%v iter=%d: %v", feedbackOn, i, err)
		}
		lats = append(lats, time.Since(start))
		total += res.ShippedBytes
		rows = sortedRows(res.Rows)
	}
	return total, lats, rows
}

// TestFeedbackBenchReport is skipped unless -bench-report is given (it
// is a measurement pass, not a correctness test) — but when it runs,
// the improvement floor is a hard gate.
func TestFeedbackBenchReport(t *testing.T) {
	if !*benchReport {
		t.Skip("run with -bench-report to rewrite BENCH_feedback.json")
	}
	const iters = 8

	offBytes, offLats, offRows := runFeedbackBenchMode(t, false, iters)
	onBytes, onLats, onRows := runFeedbackBenchMode(t, true, iters)

	// Correctness first: both modes return the identical row multiset.
	if len(offRows) != len(onRows) {
		t.Fatalf("row counts diverge: off=%d on=%d", len(offRows), len(onRows))
	}
	for i := range offRows {
		if offRows[i] != onRows[i] {
			t.Fatalf("row %d diverges between modes:\noff %s\non  %s", i, offRows[i], onRows[i])
		}
	}

	if onBytes <= 0 || offBytes <= 0 {
		t.Fatalf("degenerate measurement: off=%d on=%d bytes", offBytes, onBytes)
	}
	improvement := float64(offBytes) / float64(onBytes)
	if improvement < feedbackBenchFloor {
		t.Fatalf("feedback improved total ship bytes only %.2fx (off=%d on=%d), floor is %.1fx",
			improvement, offBytes, onBytes, feedbackBenchFloor)
	}

	report := feedbackBenchReport{
		Tool:              "go test -run TestFeedbackBenchReport -bench-report .",
		GoVersion:         runtime.Version(),
		Query:             "misestimated fact-dim join (status selectivity off by ~1000x)",
		Iterations:        iters,
		OffTotalShipBytes: offBytes,
		OnTotalShipBytes:  onBytes,
		BytesImprovement:  improvement,
		EnforcedFloor:     feedbackBenchFloor,
		OffP50NS:          latQuantile(offLats, 0.50),
		OffP99NS:          latQuantile(offLats, 0.99),
		OnP50NS:           latQuantile(onLats, 0.50),
		OnP99NS:           latQuantile(onLats, 0.99),
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_feedback.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("feedback bench: %.1fx fewer ship bytes (%d -> %d over %d iters), p99 off %.2fms on %.2fms",
		improvement, offBytes, onBytes, iters,
		float64(report.OffP99NS)/1e6, float64(report.OnP99NS)/1e6)
}
