// Audit: legality checking and policy evaluation from a data officer's
// point of view. The example builds a small multinational deployment,
// then (1) evaluates 𝒜 for several local queries — which destinations
// each masked view of the data may reach; (2) runs a batch of analyst
// queries through the "legal?" gate of Figure 2, reporting which are
// rejected and why; and (3) demonstrates the Definition 1 checker on a
// hand-built non-compliant plan.
package main

import (
	"fmt"
	"log"

	"cgdqp"
	"cgdqp/internal/plan"
)

func main() {
	sys := cgdqp.NewSystem()
	sys.MustDefineTable("patients", "db-de", "Germany", 5000,
		cgdqp.Col("id", cgdqp.TInt),
		cgdqp.Col("name", cgdqp.TString),
		cgdqp.Col("age", cgdqp.TInt),
		cgdqp.Col("diagnosis", cgdqp.TString))
	sys.MustDefineTable("trials", "db-us", "USA", 800,
		cgdqp.Col("trial_id", cgdqp.TInt),
		cgdqp.Col("patient_id", cgdqp.TInt),
		cgdqp.Col("outcome", cgdqp.TString))
	sys.MustDefineTable("sites", "db-ch", "Switzerland", 40,
		cgdqp.Col("trial_id", cgdqp.TInt),
		cgdqp.Col("hospital", cgdqp.TString))

	// German health data: pseudonymous ids may join trials abroad; ages
	// may leave only aggregated per diagnosis; names never leave.
	sys.MustAddPolicy("ship id from patients to USA, Switzerland")
	sys.MustAddPolicy("ship diagnosis from patients to Switzerland")
	sys.MustAddPolicy("ship age as aggregates avg, count from patients to * group by diagnosis")
	// Trial data never leaves the USA (no expression = conservative
	// default); site metadata moves freely.
	sys.MustAddPolicy("ship * from sites to *")

	fmt.Println("== policy evaluation (𝒜) for local views of `patients` ==")
	for _, q := range []string{
		"SELECT p.id FROM patients p",
		"SELECT p.id, p.diagnosis FROM patients p",
		"SELECT p.name FROM patients p",
		"SELECT p.diagnosis, AVG(p.age) AS avg_age FROM patients p GROUP BY p.diagnosis",
		"SELECT p.diagnosis, AVG(p.age) AS a FROM patients p WHERE p.name LIKE 'A%' GROUP BY p.diagnosis",
	} {
		locs, err := sys.EvaluatePolicies(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-95s -> %v\n", oneLine(q), locs)
	}

	fmt.Println("\n== legality gate for analyst queries ==")
	for _, q := range []string{
		// Legal: pseudonymous join, outcome counts.
		`SELECT s.hospital, COUNT(*) AS n
		 FROM patients p, trials t, sites s
		 WHERE p.id = t.patient_id AND t.trial_id = s.trial_id
		 GROUP BY s.hospital`,
		// Legal: aggregated ages per diagnosis meet the trials data.
		`SELECT p.diagnosis, AVG(p.age) AS avg_age
		 FROM patients p GROUP BY p.diagnosis`,
		// Illegal: raw names with trial outcomes.
		`SELECT p.name, t.outcome
		 FROM patients p, trials t WHERE p.id = t.patient_id`,
		// Illegal: raw ages joined abroad.
		`SELECT p.age, t.outcome
		 FROM patients p, trials t WHERE p.id = t.patient_id`,
	} {
		ok, err := sys.Legal(q)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "LEGAL"
		if !ok {
			verdict = "REJECTED"
		}
		fmt.Printf("  [%-8s] %s\n", verdict, oneLine(q))
		if ok {
			p, _ := sys.Explain(q)
			fmt.Printf("             plan delivers at %s, est. ship cost %.1f ms\n", p.Root.Loc, p.EstShipCost)
		}
	}

	fmt.Println("\n== auditing a hand-built plan against Definition 1 ==")
	// Someone proposes shipping the raw patients table to the USA.
	patients, _ := sys.Schema.Table("patients")
	scan := plan.NewScan(patients, "p", -1)
	scan.Loc = "Germany"
	ship := plan.NewShip(scan, "Germany", "USA")
	audited := &cgdqp.Plan{Root: ship}
	for _, v := range sys.CheckCompliance(audited) {
		fmt.Println("  VIOLATION:", v)
	}
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}
