// Quickstart: define two tables in two jurisdictions, declare dataflow
// policies, and run a compliant cross-border join.
package main

import (
	"fmt"
	"log"

	"cgdqp"
)

func main() {
	sys := cgdqp.NewSystem()

	// A customer database in the EU and an orders database in the US.
	sys.MustDefineTable("customers", "db-eu", "EU", 4,
		cgdqp.Col("id", cgdqp.TInt),
		cgdqp.Col("name", cgdqp.TString),
		cgdqp.Col("email", cgdqp.TString))
	sys.MustDefineTable("orders", "db-us", "US", 6,
		cgdqp.Col("id", cgdqp.TInt),
		cgdqp.Col("customer_id", cgdqp.TInt),
		cgdqp.Col("amount", cgdqp.TFloat))

	// Dataflow policies: customer ids and names may cross the Atlantic,
	// e-mail addresses may not. Orders have no expressions at all — under
	// the conservative disclosure model they never leave the US.
	sys.MustAddPolicy("ship id, name from customers to US")

	sys.MustLoad("customers", []cgdqp.Row{
		{cgdqp.Int(1), cgdqp.String("ada"), cgdqp.String("ada@example.eu")},
		{cgdqp.Int(2), cgdqp.String("grace"), cgdqp.String("grace@example.eu")},
		{cgdqp.Int(3), cgdqp.String("edsger"), cgdqp.String("edsger@example.eu")},
		{cgdqp.Int(4), cgdqp.String("alan"), cgdqp.String("alan@example.eu")},
	})
	sys.MustLoad("orders", []cgdqp.Row{
		{cgdqp.Int(10), cgdqp.Int(1), cgdqp.Float(99.5)},
		{cgdqp.Int(11), cgdqp.Int(1), cgdqp.Float(12.0)},
		{cgdqp.Int(12), cgdqp.Int(2), cgdqp.Float(40.0)},
		{cgdqp.Int(13), cgdqp.Int(3), cgdqp.Float(7.25)},
		{cgdqp.Int(14), cgdqp.Int(3), cgdqp.Float(18.75)},
		{cgdqp.Int(15), cgdqp.Int(4), cgdqp.Float(250.0)},
	})

	// A legal query: joins on id/name only. The optimizer masks the
	// customer table (drops email) before shipping it to the US.
	res, err := sys.Query(`
		SELECT c.name, SUM(o.amount) AS total
		FROM customers c, orders o
		WHERE c.id = o.customer_id
		GROUP BY c.name
		ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compliant plan:")
	fmt.Println(res.Plan)
	fmt.Println("results:")
	for _, r := range res.Rows {
		fmt.Printf("  %-8s %8.2f\n", r[0].Str(), r[1].Float())
	}
	fmt.Printf("shipped %d bytes across borders (%.2f ms simulated WAN time)\n\n",
		res.ShippedBytes, res.ShipCost)

	// An illegal query: e-mails cannot leave the EU, and order data
	// cannot answer the query without meeting them somewhere.
	_, err = sys.Query(`
		SELECT c.email, o.amount
		FROM customers c, orders o
		WHERE c.id = o.customer_id`)
	fmt.Printf("selecting emails with orders: %v\n", err)
}
