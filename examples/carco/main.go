// CarCo: the paper's Section 2 motivating example. A transnational car
// manufacturer analyzes financial data across North America (customers),
// Europe (orders) and Asia (supply), under the dataflow policies P_N,
// P_E and P_A. The example prints the non-compliant plan a traditional
// optimizer produces (Figure 1(a)'s shape), its Definition 1 violations,
// and the compliant plan (Figure 1(b)'s shape: masking projection on
// Customer, aggregation of Supply before it leaves Asia, joins in
// Europe).
package main

import (
	"fmt"
	"log"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

const queryEx = `
	SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
	FROM Customer C, Orders O, Supply S
	WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
	GROUP BY C.name`

func main() {
	// Schema: D_N, D_E, D_A (Section 2).
	cat := schema.NewCatalog()
	customer := schema.NewTable("Customer", "db-n", "NorthAmerica", 200,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "mktseg", Type: expr.TString},
		schema.Column{Name: "region", Type: expr.TString},
	)
	customer.SetColStats("custkey", schema.ColStats{Distinct: 200})
	orders := schema.NewTable("Orders", "db-e", "Europe", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	)
	orders.SetColStats("ordkey", schema.ColStats{Distinct: 1000})
	orders.SetColStats("custkey", schema.ColStats{Distinct: 200})
	supply := schema.NewTable("Supply", "db-a", "Asia", 5000,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
		schema.Column{Name: "extprice", Type: expr.TFloat},
	)
	supply.SetColStats("ordkey", schema.ColStats{Distinct: 1000})
	for _, t := range []*schema.Table{customer, orders, supply} {
		cat.MustAddTable(t)
	}

	// Dataflow policies (Section 2):
	//   P_N: Customer data leaves North America only without acctbal.
	//   P_E: only aggregated Orders data to Asia; order prices never to
	//        North America; keys may move.
	//   P_A: only per-order aggregated quantity/extprice leave Asia for
	//        Europe.
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship custkey, name, mktseg, region from Customer to *", "P_N", "db-n"),
		policy.MustParse("ship custkey, ordkey from Orders to *", "P_E1", "db-e"),
		policy.MustParse("ship totprice as aggregates sum from Orders to Asia group by custkey, ordkey", "P_E2", "db-e"),
		policy.MustParse("ship quantity, extprice as aggregates sum from Supply to Europe group by ordkey", "P_A", "db-a"),
	)

	net := network.FiveRegionWAN(cat.Locations())

	// The traditional cost-based optimizer ignores the policies.
	traditional := optimizer.New(cat, pc, net, optimizer.Options{Compliant: false})
	tres, err := traditional.OptimizeSQL(queryEx)
	if err != nil {
		log.Fatal(err)
	}
	compliant := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
	fmt.Println("=== traditional (cost-only) plan — the Figure 1(a) failure ===")
	fmt.Println(tres.Plan.Format(true))
	for _, v := range compliant.Check(tres.Plan) {
		fmt.Println("  VIOLATION:", v)
	}

	// The compliance-based optimizer masks and reroutes.
	cres, err := compliant.OptimizeSQL(queryEx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== compliant plan — the Figure 1(b) shape ===")
	fmt.Println(cres.Plan.Format(true))
	if v := compliant.Check(cres.Plan); len(v) == 0 {
		fmt.Println("checker: plan satisfies Definition 1 ✓")
	}

	// Execute the compliant plan over generated data.
	cl := cluster.New(cat, net)
	loadDemo(cl, customer, orders, supply)
	rows, stats, err := executor.Run(cres.Plan, cl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted: %d result rows; %d bytes crossed borders (%.1f ms simulated)\n",
		stats.RowsOut, stats.ShippedBytes, stats.ShipCost)
	fmt.Println("first rows:")
	for i, r := range rows {
		if i == 3 {
			break
		}
		fmt.Printf("  %s  total=%.0f  qty=%d\n", r[0].Str(), r[1].Float(), r[2].Int())
	}
}

func loadDemo(cl *cluster.Cluster, customer, orders, supply *schema.Table) {
	var cRows, oRows, sRows []expr.Row
	for i := 0; i < 200; i++ {
		cRows = append(cRows, expr.Row{
			expr.NewInt(int64(i)), expr.NewString(fmt.Sprintf("cust-%03d", i)),
			expr.NewFloat(float64(i * 3)), expr.NewString("commercial"), expr.NewString("EU"),
		})
	}
	for i := 0; i < 1000; i++ {
		oRows = append(oRows, expr.Row{
			expr.NewInt(int64(i % 200)), expr.NewInt(int64(i)), expr.NewFloat(float64(100 + i)),
		})
	}
	for i := 0; i < 5000; i++ {
		sRows = append(sRows, expr.Row{
			expr.NewInt(int64(i % 1000)), expr.NewInt(int64(1 + i%9)), expr.NewFloat(float64(i % 50)),
		})
	}
	must(cl.LoadFragment(customer, 0, cRows))
	must(cl.LoadFragment(orders, 0, oRows))
	must(cl.LoadFragment(supply, 0, sRows))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
