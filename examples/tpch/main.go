// TPC-H over five regions: the evaluation deployment of the paper
// (Table 2), loaded with generated data, optimized under the CR+A policy
// set, and executed. The example runs the six benchmark queries,
// printing for each whether the traditional plan would have been
// compliant, the compliant plan's crossings, and the measured transfer
// ledger.
package main

import (
	"flag"
	"fmt"
	"log"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	flag.Parse()

	cat := tpch.NewCatalog(*sf)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	fmt.Printf("generating TPC-H data at SF %g (lineitem: %d rows) ...\n",
		*sf, tpch.SizesFor(*sf).Lineitem)
	if err := tpch.Generate(cat, cl); err != nil {
		log.Fatal(err)
	}

	pc := workload.TPCHSet(workload.SetCRA)
	fmt.Println("\nactive dataflow policies (set CR+A):")
	for _, db := range pc.Databases() {
		for _, e := range pc.ForDB(db) {
			fmt.Println("  ", e)
		}
	}

	compliant := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
	traditional := optimizer.New(cat, pc, net, optimizer.Options{Compliant: false})

	for _, qn := range tpch.QueryNames() {
		sql := tpch.Queries[qn]
		tres, err := traditional.OptimizeSQL(sql)
		if err != nil {
			log.Fatalf("%s traditional: %v", qn, err)
		}
		tviol := compliant.Check(tres.Plan)
		cres, err := compliant.OptimizeSQL(sql)
		if err != nil {
			log.Fatalf("%s compliant: %v", qn, err)
		}

		cl.Ledger.Reset()
		rows, stats, err := executor.Run(cres.Plan, cl)
		if err != nil {
			log.Fatalf("%s execute: %v", qn, err)
		}
		fmt.Printf("\n--- %s --- traditional plan: %s; compliant plan optimized in %v\n",
			qn, verdict(len(tviol)), cres.Stats.TotalTime)
		var ships []string
		cres.Plan.Walk(func(n *plan.Node) bool {
			if n.Kind == plan.Ship {
				ships = append(ships, n.FromLoc+"->"+n.ToLoc)
			}
			return true
		})
		fmt.Printf("    crossings: %v\n", ships)
		fmt.Printf("    %d result rows; shipped %d rows / %d bytes (%.1f ms simulated)\n",
			len(rows), stats.ShippedRows, stats.ShippedBytes, stats.ShipCost)
		if sum := cl.Ledger.Summary(); sum != "" {
			fmt.Print(indent(sum))
		}
	}
}

func verdict(violations int) string {
	if violations == 0 {
		return "compliant"
	}
	return fmt.Sprintf("NON-COMPLIANT (%d violations)", violations)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "    " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
