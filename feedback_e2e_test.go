package cgdqp

// End-to-end tests of the execution-feedback loop through the public
// API: a misestimated workload whose first execution corrects the
// optimizer's cardinalities, the structured slow-query log, and the
// auto-applied wire calibration.

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"cgdqp/internal/feedback"
	"cgdqp/internal/network"
)

// misestimatedSystem builds a two-site workload whose statistics lie:
// half of bigfact carries status 'X', but the recorded column stats
// claim 500 distinct statuses, so the optimizer estimates the filter at
// ~40 rows and ships the (actually huge) filtered fact side. One
// executed query teaches the feedback store the truth.
func misestimatedSystem(t *testing.T, opts Options) *System {
	t.Helper()
	// A homogeneous network where β·bytes dominates α: plan choice is
	// then driven by shipped volume, which is what the cardinality
	// feedback corrects. (Under the default five-region WAN the per-
	// shipment latencies dwarf the byte costs at this data scale.)
	if opts.Network == nil {
		opts.Network = network.UniformWAN(1, 0.01)
	}
	sys := NewSystemWith(opts)
	sys.MustDefineTable("bigfact", "db-e", "Europe", 20000,
		Col("k", TInt), Col("status", TString), Col("v", TFloat))
	sys.MustDefineTable("dim", "db-a", "Asia", 200,
		Col("k", TInt), Col("name", TString))
	sys.MustAddPolicy("ship * from bigfact to *")
	sys.MustAddPolicy("ship * from dim to *")

	var fRows []Row
	for i := 0; i < 20000; i++ {
		status := "X"
		if i%2 == 1 {
			status = "ok"
		}
		fRows = append(fRows, Row{Int(int64(i % 200)), String(status), Float(float64(i))})
	}
	var dRows []Row
	for i := 0; i < 200; i++ {
		dRows = append(dRows, Row{Int(int64(i)), String("name-" + strings.Repeat("x", i%7))})
	}
	sys.MustLoad("bigfact", fRows)
	sys.MustLoad("dim", dRows)

	// The lie: stats claim status is near-unique, so σ(status='X') ≈ 10
	// rows when the truth is 10000 — cheap enough to ship the filtered
	// fact side, until feedback reveals the real cardinality.
	if err := sys.SetColumnStats("bigfact", "status", 2000, String("A"), String("zz")); err != nil {
		t.Fatal(err)
	}
	return sys
}

// No aggregation: partial-aggregate pushdown would cap the shipped
// volume at the group count and hide the misestimate entirely.
const misestimatedQuery = `
	SELECT D.name, B.v
	FROM bigfact B, dim D
	WHERE B.k = D.k AND B.status = 'X'
	ORDER BY D.name, B.v`

// TestFeedbackCorrectsMisestimate is the headline loop: the first
// execution records observed cardinalities, bumps the feedback epoch,
// and the re-optimized second execution ships dramatically fewer bytes
// while returning the identical rows.
func TestFeedbackCorrectsMisestimate(t *testing.T) {
	// Control: without feedback the misestimated plan is re-served from
	// the plan cache and the shipped volume never moves.
	ctl := misestimatedSystem(t, Options{})
	ctlFirst, err := ctl.Query(misestimatedQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctlSecond, err := ctl.Query(misestimatedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ctlFirst.ShippedBytes != ctlSecond.ShippedBytes {
		t.Fatalf("control drifted: %d then %d bytes",
			ctlFirst.ShippedBytes, ctlSecond.ShippedBytes)
	}

	sys := misestimatedSystem(t, Options{Feedback: true})
	if sys.Feedback() == nil {
		t.Fatal("Feedback store not constructed")
	}
	first, err := sys.Query(misestimatedQuery)
	if err != nil {
		t.Fatal(err)
	}
	sum := sys.Feedback().Summary()
	if sum.Tracked == 0 || sum.Queries != 1 {
		t.Fatalf("after one query: %+v", sum)
	}
	if sum.MaxQError < 100 {
		t.Fatalf("max q-error = %v, want the ~250x misestimate visible", sum.MaxQError)
	}
	if sum.Epoch == 0 {
		t.Fatal("gross misestimate did not bump the feedback epoch")
	}

	second, err := sys.Query(misestimatedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if second.ShippedBytes >= first.ShippedBytes {
		t.Fatalf("feedback did not reduce shipping: %d then %d bytes",
			first.ShippedBytes, second.ShippedBytes)
	}
	if ratio := float64(first.ShippedBytes) / float64(second.ShippedBytes); ratio < 2 {
		t.Fatalf("shipping improvement %.2fx, want >= 2x (%d -> %d bytes)",
			ratio, first.ShippedBytes, second.ShippedBytes)
	}

	// Correctness is untouched: both executions and the control return
	// the same multiset of rows (the query is fully ordered).
	a, b, c := renderRows(first.Rows), renderRows(second.Rows), renderRows(ctlFirst.Rows)
	sort.Strings(a)
	sort.Strings(b)
	sort.Strings(c)
	if len(b) == 0 {
		t.Fatal("empty result exercises nothing")
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("row %d diverged across plans:\nfirst  %s\nsecond %s\ncontrol %s",
				i, a[i], b[i], c[i])
		}
	}

	// Hints are permanent: the corrected plan keeps its corrected
	// estimate, so a third run must not oscillate back.
	third, err := sys.Query(misestimatedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if third.ShippedBytes != second.ShippedBytes {
		t.Fatalf("plan oscillated: %d then %d bytes", second.ShippedBytes, third.ShippedBytes)
	}
}

// TestSlowQueryLogE2E pins the structured slow-query log through the
// public API: one parseable JSON line per query above the threshold,
// with digests, per-operator q-errors and the cache disposition.
func TestSlowQueryLogE2E(t *testing.T) {
	// Feedback stays off so the plan is stable and the second run is a
	// result-cache hit; the slow log still profiles executions and
	// reports q-errors on its own.
	var buf bytes.Buffer
	sys := misestimatedSystem(t, Options{
		SlowQueryLog:     &buf,
		ResultCacheBytes: 1 << 20, // exercise the hit/miss disposition too
	})
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(misestimatedQuery); err != nil {
			t.Fatal(err)
		}
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow-log lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var recs []feedback.QueryRecord
	for i, ln := range lines {
		var rec feedback.QueryRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		recs = append(recs, rec)
	}
	first, second := recs[0], recs[1]
	if first.SQLDigest == "" || first.PlanDigest == "" {
		t.Fatalf("missing digests: %+v", first)
	}
	if first.SQLDigest != second.SQLDigest {
		t.Fatal("same SQL produced different SQL digests")
	}
	if first.Cache != feedback.CacheMiss {
		t.Fatalf("first run disposition %q, want %q", first.Cache, feedback.CacheMiss)
	}
	if second.Cache != feedback.CacheHit {
		t.Fatalf("second run disposition %q, want %q", second.Cache, feedback.CacheHit)
	}
	if len(first.QErrors) == 0 {
		t.Fatal("first run carried no per-operator q-errors")
	}
	worst := first.QErrors[0].QError
	for _, q := range first.QErrors {
		if q.QError > worst {
			t.Fatal("q-errors not sorted worst-first")
		}
	}
	if worst < 100 {
		t.Fatalf("worst q-error %v, want the misestimate visible", worst)
	}
	if first.ShipBytes == 0 || first.LatencyMS <= 0 || first.Engine != "seq" {
		t.Fatalf("record fields: %+v", first)
	}
	// Cache hits replay the filling run's shipping statistics.
	if second.ShipBytes != first.ShipBytes {
		t.Fatalf("hit replayed %d ship bytes, filling run had %d",
			second.ShipBytes, first.ShipBytes)
	}
}

// TestSlowQueryThresholdFilters pins that a high threshold suppresses
// fast queries entirely.
func TestSlowQueryThresholdFilters(t *testing.T) {
	var buf bytes.Buffer
	sys := misestimatedSystem(t, Options{
		SlowQueryLog:       &buf,
		SlowQueryThreshold: 10 * 60 * 1000 * 1000 * 1000, // 10 minutes
	})
	if _, err := sys.Query(misestimatedQuery); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast query logged below threshold:\n%s", buf.String())
	}
}

// TestEnableAutoCalibrationE2E arms every-frame calibration through the
// facade: after one executed query the calibrator has observed encoding
// frames and folded the measured ratio into the cost model.
func TestEnableAutoCalibrationE2E(t *testing.T) {
	sys := misestimatedSystem(t, Options{Feedback: true})
	cal := sys.EnableAutoCalibration(1)
	if cal == nil {
		t.Fatal("EnableAutoCalibration returned nil")
	}
	if _, err := sys.Query(misestimatedQuery); err != nil {
		t.Fatal(err)
	}
	if ratio := cal.EncodingRatio(); ratio <= 0 {
		t.Fatalf("encoding ratio = %v, want frames observed and a positive ratio", ratio)
	}
}
