// Package rules implements the algebraic transformation rules the
// compliance-based optimizer feeds to the memo's rule engine (the
// "transformation rules" box of Figure 3): join commutativity, join
// associativity with predicate redistribution, and aggregation pushdown
// past joins — the rule Section 6.4 identifies as necessary for the
// optimizer to find compliant plans like Figure 1(b).
package rules

import (
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/memo"
	"cgdqp/internal/plan"
)

// Default returns the standard rule set.
func Default() []memo.Rule {
	return []memo.Rule{JoinCommute{}, JoinAssoc{}, JoinUnionDistribute{}, AggPushdown{}}
}

// JoinUnionDistribute implements Join(Union(f1..fk), R) →
// Union(Join(f1,R), ..., Join(fk,R)) (and symmetrically on the right).
// It lets queries over horizontally fragmented tables (Section 7.5's GAV
// rewrite t = t1 ∪ ... ∪ tn) join each fragment at its own site before
// combining results.
type JoinUnionDistribute struct{}

// Name identifies the rule.
func (JoinUnionDistribute) Name() string { return "JoinUnionDistribute" }

// Apply distributes the join over every Union expression found in either
// child group.
func (JoinUnionDistribute) Apply(m *memo.Memo, e *memo.MExpr) []*memo.NewExpr {
	if e.Op.Kind != plan.Join {
		return nil
	}
	var out []*memo.NewExpr
	for side := 0; side < 2; side++ {
		other := e.Children[1-side]
		for _, u := range e.Children[side].Exprs {
			if u.Op.Kind != plan.Union {
				continue
			}
			branches := make([]any, len(u.Children))
			for i, frag := range u.Children {
				kids := make([]any, 2)
				kids[side] = frag
				kids[1-side] = other
				branches[i] = &memo.NewExpr{Op: joinOp(e.Op.Pred), Children: kids}
			}
			out = append(out, &memo.NewExpr{
				Op:       &plan.Node{Kind: plan.Union},
				Children: branches,
			})
		}
	}
	return out
}

// colsCovered reports whether every column referenced by e appears in the
// group's output schema.
func colsCovered(m *memo.Memo, e expr.Expr, g *memo.Group) bool {
	for _, c := range m.ColsOf(e) {
		if !groupHasCol(g, c) {
			return false
		}
	}
	return true
}

func groupHasCol(g *memo.Group, c *expr.Col) bool {
	for _, cr := range g.Cols {
		if strings.EqualFold(cr.Name, c.Name) && (c.Table == "" || strings.EqualFold(cr.Table, c.Table)) {
			return true
		}
	}
	return false
}

func colsCoveredBy2(m *memo.Memo, e expr.Expr, a, b *memo.Group) bool {
	for _, c := range m.ColsOf(e) {
		if !groupHasCol(a, c) && !groupHasCol(b, c) {
			return false
		}
	}
	return true
}

// joinOp builds a logical join operator node (children live in the memo).
func joinOp(cond expr.Expr) *plan.Node {
	return &plan.Node{Kind: plan.Join, Pred: cond}
}

// JoinCommute implements Join(A, B) → Join(B, A).
type JoinCommute struct{}

// Name identifies the rule.
func (JoinCommute) Name() string { return "JoinCommute" }

// Apply produces the commuted join.
func (JoinCommute) Apply(m *memo.Memo, e *memo.MExpr) []*memo.NewExpr {
	if e.Op.Kind != plan.Join {
		return nil
	}
	return []*memo.NewExpr{{
		Op:       joinOp(e.Op.Pred),
		Children: []any{e.Children[1], e.Children[0]},
	}}
}

// JoinAssoc implements (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C), redistributing the
// combined conjuncts: conjuncts covered by B ∪ C move to the inner join,
// the rest stay at the outer join. The rule refuses to create Cartesian
// products it did not start with (no inner conjuncts and a non-empty
// original condition).
type JoinAssoc struct{}

// Name identifies the rule.
func (JoinAssoc) Name() string { return "JoinAssoc" }

// Apply produces the re-associated join for every Join expression in the
// left child group.
func (JoinAssoc) Apply(m *memo.Memo, e *memo.MExpr) []*memo.NewExpr {
	if e.Op.Kind != plan.Join {
		return nil
	}
	var out []*memo.NewExpr
	left := e.Children[0]
	gC := e.Children[1]
	for _, inner := range left.Exprs {
		if inner.Op.Kind != plan.Join {
			continue
		}
		gA, gB := inner.Children[0], inner.Children[1]
		ci, ce := m.Conjuncts(inner.Op.Pred), m.Conjuncts(e.Op.Pred)
		all := make([]expr.Expr, 0, len(ci)+len(ce))
		all = append(append(all, ci...), ce...)
		var innerConj, outerConj []expr.Expr
		for _, c := range all {
			if colsCoveredBy2(m, c, gB, gC) {
				innerConj = append(innerConj, c)
			} else {
				outerConj = append(outerConj, c)
			}
		}
		// Avoid introducing a Cartesian product between B and C.
		if len(innerConj) == 0 && len(all) > 0 {
			continue
		}
		out = append(out, &memo.NewExpr{
			Op: joinOp(expr.AndAll(outerConj...)),
			Children: []any{
				gA,
				&memo.NewExpr{Op: joinOp(expr.AndAll(innerConj...)), Children: []any{gB, gC}},
			},
		})
	}
	return out
}

// AggPushdown implements eager aggregation (Yan–Larson style):
//
//	Γ_{G; F}(L ⋈_p R)  →  Γ_{G; F'}(L ⋈_p Γ_{G_R; F_partial}(R))
//
// where G_R = (G ∩ cols(R)) ∪ (cols(p) ∩ cols(R)). The rewrite is valid
// when every pushed aggregate is decomposable (SUM, MIN, MAX, COUNT) and
// either (a) every aggregate argument references only R, or (b) the mixed
// case: the partial group-by equals R's join-key columns, so each L row
// matches at most one partial row and L-side aggregates keep their
// multiplicity. Case (b) is exactly the rewrite that turns Figure 1(a)'s
// rejected shape into the compliant plan of Figure 1(b), where the
// Supply data is aggregated per order before crossing the border.
//
// The symmetric L-side pushdown is reachable through JoinCommute.
type AggPushdown struct{}

// Name identifies the rule.
func (AggPushdown) Name() string { return "AggPushdown" }

// partialPrefix marks generated partial-aggregate column names; the rule
// refuses to push an aggregate of a partial again (which would otherwise
// derive unboundedly deep partial chains).
const partialPrefix = "_p_"

// Apply produces the eager-aggregation rewrite for every Join expression
// in the child group.
func (AggPushdown) Apply(m *memo.Memo, e *memo.MExpr) []*memo.NewExpr {
	if e.Op.Kind != plan.Aggregate || len(e.Children) != 1 {
		return nil
	}
	for _, a := range e.Op.Aggs {
		if !decomposable(a.Fn) {
			return nil
		}
		if a.Arg != nil && argTouchesPartial(m, a.Arg) {
			return nil
		}
	}
	var out []*memo.NewExpr
	for _, join := range e.Children[0].Exprs {
		if join.Op.Kind != plan.Join {
			continue
		}
		gL, gR := join.Children[0], join.Children[1]
		if ne := tryPush(m, e, join, gL, gR); ne != nil {
			out = append(out, ne)
		}
	}
	return out
}

func decomposable(fn expr.AggFn) bool {
	switch fn {
	case expr.AggSum, expr.AggMin, expr.AggMax, expr.AggCount:
		return true
	}
	return false
}

func argTouchesPartial(m *memo.Memo, arg expr.Expr) bool {
	for _, c := range m.ColsOf(arg) {
		if strings.HasPrefix(c.Name, partialPrefix) {
			return true
		}
	}
	return false
}

// tryPush builds the rewrite for pushing into gR, or nil when invalid.
// The rewrite handles mixed aggregates Yan–Larson style: the partial
// aggregate additionally computes a row count, L-side SUMs re-scale by
// that count (their join multiplicity changed), R-side SUM/COUNT
// re-aggregate as SUM of partials, and MIN/MAX pass through (duplicate
// insensitive). This preserves exact SQL bag semantics unconditionally.
func tryPush(m *memo.Memo, agg *memo.MExpr, join *memo.MExpr, gL, gR *memo.Group) *memo.NewExpr {
	op := agg.Op
	// Classify aggregates; bail out on shapes the rewrite cannot express.
	needCount := false
	pushable := 0
	for _, a := range op.Aggs {
		switch {
		case a.Arg == nil: // COUNT(*)
			needCount = true
			pushable++
		case colsCovered(m, a.Arg, gR):
			pushable++
		case colsCovered(m, a.Arg, gL):
			switch a.Fn {
			case expr.AggSum:
				needCount = true // SUM(x_l) re-scales by the partial count
			case expr.AggMin, expr.AggMax:
				// duplicate-insensitive: unchanged
			default:
				return nil // L-side COUNT(col) is not handled
			}
		default:
			return nil // argument spans both sides
		}
	}
	if pushable == 0 && !needCount {
		return nil // nothing gained by pushing
	}
	// Join keys on the R side anchor the partial group-by.
	joinKeysR := dedupCols(equiKeysOn(m, join.Op.Pred, gR))
	if len(joinKeysR) == 0 {
		return nil // no equi-join: cannot align partial groups
	}
	gbCols := append(make([]*expr.Col, 0, len(joinKeysR)+len(op.GroupBy)), joinKeysR...)
	addGB := func(c *expr.Col) {
		for _, g := range gbCols {
			if sameColRef(g, c) {
				return
			}
		}
		gbCols = append(gbCols, c)
	}
	// Final grouping columns from R and R-columns used by the join
	// predicate must survive the partial aggregate.
	for _, g := range op.GroupBy {
		if groupHasCol(gR, g) {
			addGB(g)
		} else if !groupHasCol(gL, g) {
			return nil
		}
	}
	for _, c := range m.ColsOf(join.Op.Pred) {
		if groupHasCol(gR, c) {
			addGB(c)
		}
	}

	var partialAggs []plan.NamedAgg
	var finalAggs []plan.NamedAgg
	const countName = partialPrefix + "cnt"
	if needCount {
		partialAggs = append(partialAggs, plan.NamedAgg{Fn: expr.AggCount, Arg: nil, Name: countName})
	}
	for _, a := range op.Aggs {
		switch {
		case a.Arg == nil: // COUNT(*) → SUM of partial counts
			finalAggs = append(finalAggs, plan.NamedAgg{Fn: expr.AggSum, Arg: expr.NewCol("", countName), Name: a.Name})
		case colsCovered(m, a.Arg, gR):
			pname := partialPrefix + a.Name
			ffn := a.Fn
			if a.Fn == expr.AggSum || a.Fn == expr.AggCount {
				ffn = expr.AggSum
			}
			partialAggs = append(partialAggs, plan.NamedAgg{Fn: a.Fn, Arg: a.Arg, Name: pname})
			finalAggs = append(finalAggs, plan.NamedAgg{Fn: ffn, Arg: expr.NewCol("", pname), Name: a.Name})
		default: // L side
			if a.Fn == expr.AggSum {
				scaled := expr.NewArith(expr.Mul, a.Arg, expr.NewCol("", countName))
				finalAggs = append(finalAggs, plan.NamedAgg{Fn: expr.AggSum, Arg: scaled, Name: a.Name})
			} else {
				finalAggs = append(finalAggs, a)
			}
		}
	}

	partialOp := &plan.Node{Kind: plan.Aggregate, GroupBy: gbCols, Aggs: partialAggs}
	partialOp.Cols = aggCols(gR, gbCols, partialAggs)
	finalOp := &plan.Node{Kind: plan.Aggregate, GroupBy: op.GroupBy, Aggs: finalAggs}
	finalOp.Cols = op.Cols

	return &memo.NewExpr{
		Op: finalOp,
		Children: []any{&memo.NewExpr{
			Op: joinOp(join.Op.Pred),
			Children: []any{
				gL,
				&memo.NewExpr{Op: partialOp, Children: []any{gR}},
			},
		}},
	}
}

// dedupCols removes duplicate column references by key.
func dedupCols(cols []*expr.Col) []*expr.Col {
	out := cols[:0]
	for _, c := range cols {
		dup := false
		for _, o := range out {
			if sameColRef(o, c) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// sameColRef compares column references field-wise (what Key() would
// concatenate), without allocating.
func sameColRef(a, b *expr.Col) bool {
	return a.Table == b.Table && a.Name == b.Name
}

// equiKeysOn returns the columns of equi-join conjuncts that live in g.
func equiKeysOn(m *memo.Memo, cond expr.Expr, g *memo.Group) []*expr.Col {
	var keys []*expr.Col
	for _, c := range m.Conjuncts(cond) {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		lc, lok := cmp.L.(*expr.Col)
		rc, rok := cmp.R.(*expr.Col)
		if !lok || !rok {
			continue
		}
		if groupHasCol(g, lc) && !groupHasCol(g, rc) {
			keys = append(keys, lc)
		} else if groupHasCol(g, rc) && !groupHasCol(g, lc) {
			keys = append(keys, rc)
		}
	}
	return keys
}

// aggCols computes the output schema of an aggregate operator given its
// input group.
func aggCols(in *memo.Group, groupBy []*expr.Col, aggs []plan.NamedAgg) []plan.ColRef {
	out := make([]plan.ColRef, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		t := expr.TNull
		for _, cr := range in.Cols {
			if strings.EqualFold(cr.Name, g.Name) && (g.Table == "" || strings.EqualFold(cr.Table, g.Table)) {
				t = cr.Type
				break
			}
		}
		out = append(out, plan.ColRef{Table: g.Table, Name: g.Name, Type: t})
	}
	for _, a := range aggs {
		out = append(out, plan.ColRef{Name: a.Name, Type: plan.InferType(&expr.Agg{Fn: a.Fn, Arg: a.Arg}, in.Cols)})
	}
	return out
}
