package rules

import (
	"strings"
	"testing"

	"cgdqp/internal/cost"
	"cgdqp/internal/expr"
	"cgdqp/internal/memo"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

func tbl(name, db, loc string, rows int64, cols ...string) *schema.Table {
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		t := expr.TInt
		sc[i] = schema.Column{Name: c, Type: t}
	}
	return schema.NewTable(name, db, loc, rows, sc...)
}

func eq(lt, lc, rt, rc string) expr.Expr {
	return expr.NewCmp(expr.EQ, expr.NewCol(lt, lc), expr.NewCol(rt, rc))
}

func exploreTree(root *plan.Node, rs []memo.Rule) (*memo.Memo, *memo.Group) {
	m := memo.New(cost.NewEstimator(root))
	g := m.InsertTree(root)
	m.Explore(rs)
	return m, g
}

func kindsInGroup(g *memo.Group) map[plan.Kind]int {
	out := map[plan.Kind]int{}
	for _, e := range g.Exprs {
		out[e.Op.Kind]++
	}
	return out
}

func TestJoinCommute(t *testing.T) {
	a := plan.NewScan(tbl("A", "d1", "L1", 10, "k"), "a", -1)
	b := plan.NewScan(tbl("B", "d2", "L2", 10, "k"), "b", -1)
	root := plan.NewJoin(a, b, eq("a", "k", "b", "k"))
	_, g := exploreTree(root, []memo.Rule{JoinCommute{}})
	if len(g.Exprs) != 2 {
		t.Fatalf("expected commuted twin, got %d exprs", len(g.Exprs))
	}
	// Children swapped in the new expression.
	if g.Exprs[1].Children[0] != g.Exprs[0].Children[1] {
		t.Error("commute did not swap children")
	}
}

func TestJoinAssocEnumeratesOrders(t *testing.T) {
	a := plan.NewScan(tbl("A", "d1", "L1", 10, "k"), "a", -1)
	b := plan.NewScan(tbl("B", "d2", "L2", 20, "k", "j"), "b", -1)
	c := plan.NewScan(tbl("C", "d3", "L3", 30, "j"), "c", -1)
	// (A ⋈ B) ⋈ C along a chain a.k=b.k, b.j=c.j.
	root := plan.NewJoin(plan.NewJoin(a, b, eq("a", "k", "b", "k")), c, eq("b", "j", "c", "j"))
	m, g := exploreTree(root, []memo.Rule{JoinCommute{}, JoinAssoc{}})
	// The root group must contain a join whose right child is the (B⋈C)
	// group, i.e. A ⋈ (B ⋈ C) was derived.
	foundBC := false
	for _, e := range g.Exprs {
		for _, childG := range e.Children {
			for _, ce := range childG.Exprs {
				if ce.Op.Kind == plan.Join && ce.Op.Pred != nil &&
					strings.Contains(ce.Op.Pred.String(), "b.j = c.j") {
					foundBC = true
				}
			}
		}
	}
	if !foundBC {
		t.Errorf("association did not derive A ⋈ (B ⋈ C); groups=%d", len(m.Groups))
	}
	// No Cartesian product between A and C should ever be formed: every
	// derived join has a predicate.
	for _, grp := range m.Groups {
		for _, e := range grp.Exprs {
			if e.Op.Kind == plan.Join && e.Op.Pred == nil {
				t.Errorf("cartesian join derived")
			}
		}
	}
}

func TestAggPushdownShape(t *testing.T) {
	o := plan.NewScan(tbl("O", "d1", "L1", 100, "ok", "price"), "o", -1)
	l := plan.NewScan(tbl("L", "d2", "L2", 1000, "ok", "qty"), "l", -1)
	join := plan.NewJoin(o, l, eq("o", "ok", "l", "ok"))
	agg := plan.NewAggregate(join,
		[]*expr.Col{expr.NewCol("o", "ok")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("l", "qty"), Name: "q"}})
	_, g := exploreTree(agg, []memo.Rule{AggPushdown{}})
	if len(g.Exprs) < 2 {
		t.Fatalf("pushdown produced no rewrite: %d exprs", len(g.Exprs))
	}
	// The rewritten aggregate references the partial column.
	found := false
	for _, e := range g.Exprs[1:] {
		for _, a := range e.Op.Aggs {
			if a.Arg != nil && strings.Contains(a.Arg.String(), "_p_q") {
				found = true
			}
		}
	}
	if !found {
		t.Error("final aggregate does not consume the partial")
	}
}

func TestAggPushdownRefusals(t *testing.T) {
	o := plan.NewScan(tbl("O", "d1", "L1", 100, "ok", "price"), "o", -1)
	l := plan.NewScan(tbl("L", "d2", "L2", 1000, "ok", "qty"), "l", -1)

	// AVG is not decomposable.
	join := plan.NewJoin(o, l, eq("o", "ok", "l", "ok"))
	avg := plan.NewAggregate(join, []*expr.Col{expr.NewCol("o", "ok")},
		[]plan.NamedAgg{{Fn: expr.AggAvg, Arg: expr.NewCol("l", "qty"), Name: "a"}})
	if _, g := exploreTree(avg, []memo.Rule{AggPushdown{}}); len(g.Exprs) != 1 {
		t.Error("AVG must not push down")
	}

	// Arguments spanning both sides cannot push.
	join2 := plan.NewJoin(o, l, eq("o", "ok", "l", "ok"))
	span := plan.NewAggregate(join2, nil,
		[]plan.NamedAgg{{Fn: expr.AggSum,
			Arg:  expr.NewArith(expr.Mul, expr.NewCol("o", "price"), expr.NewCol("l", "qty")),
			Name: "x"}})
	if _, g := exploreTree(span, []memo.Rule{AggPushdown{}}); len(g.Exprs) != 1 {
		t.Error("cross-side argument must not push down")
	}

	// Non-equi joins cannot align partial groups.
	join3 := plan.NewJoin(o, l, expr.NewCmp(expr.LT, expr.NewCol("o", "ok"), expr.NewCol("l", "ok")))
	ne := plan.NewAggregate(join3, nil,
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("l", "qty"), Name: "x"}})
	if _, g := exploreTree(ne, []memo.Rule{AggPushdown{}}); len(g.Exprs) != 1 {
		t.Error("non-equi join must not push down")
	}

	// Partial-of-partial is refused (no unbounded chains): after one full
	// exploration the expression count stabilizes even with more passes.
	join4 := plan.NewJoin(o, l, eq("o", "ok", "l", "ok"))
	agg := plan.NewAggregate(join4, []*expr.Col{expr.NewCol("o", "ok")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("l", "qty"), Name: "q"}})
	m, _ := exploreTree(agg, []memo.Rule{AggPushdown{}})
	first := m.ExprCount()
	m.Explore([]memo.Rule{AggPushdown{}})
	if m.ExprCount() != first {
		t.Errorf("pushdown chains grew: %d -> %d", first, m.ExprCount())
	}
}

func TestJoinUnionDistribute(t *testing.T) {
	frag := &schema.Table{
		Name:    "F",
		Columns: []schema.Column{{Name: "k", Type: expr.TInt}},
		Fragments: []schema.Fragment{
			{DB: "d1", Location: "L1", RowCount: 5},
			{DB: "d2", Location: "L2", RowCount: 5},
		},
	}
	u := plan.NewUnion(plan.NewScan(frag, "f", 0), plan.NewScan(frag, "f", 1))
	r := plan.NewScan(tbl("R", "d3", "L3", 10, "k"), "r", -1)
	root := plan.NewJoin(u, r, eq("f", "k", "r", "k"))
	_, g := exploreTree(root, []memo.Rule{JoinUnionDistribute{}})
	kinds := kindsInGroup(g)
	if kinds[plan.Union] == 0 {
		t.Fatalf("distribution did not produce a Union expression: %v", kinds)
	}
	// Symmetric: union on the right side.
	root2 := plan.NewJoin(r, u, eq("r", "k", "f", "k"))
	_, g2 := exploreTree(root2, []memo.Rule{JoinUnionDistribute{}})
	if kindsInGroup(g2)[plan.Union] == 0 {
		t.Error("right-side distribution failed")
	}
}
