package experiments

import (
	"fmt"
	"strings"
	"time"
)

// The CSV renderers emit machine-readable panels (one header line plus
// data rows) so plots can be regenerated outside Go.

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func csvLine(fields ...string) string {
	escaped := make([]string, len(fields))
	for i, f := range fields {
		escaped[i] = csvEscape(f)
	}
	return strings.Join(escaped, ",") + "\n"
}

func msF(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// CSVFig5a renders the effectiveness matrix.
func CSVFig5a(cells []ComplianceCell) string {
	var b strings.Builder
	b.WriteString(csvLine("set", "query", "traditional", "compliant"))
	for _, c := range cells {
		trad := "C"
		if !c.TraditionalCompliant {
			trad = "NC"
		}
		comp := "rejected"
		if c.CompliantFound {
			comp = "C"
			if !c.CompliantValid {
				comp = "INVALID"
			}
		}
		b.WriteString(csvLine(string(c.Set), c.Query, trad, comp))
	}
	return b.String()
}

// CSVFig6a renders the ad-hoc effectiveness fractions.
func CSVFig6a(rows []AdhocResult) string {
	var b strings.Builder
	b.WriteString(csvLine("set", "expressions", "queries", "traditional_compliant", "compliant_ok"))
	for _, r := range rows {
		b.WriteString(csvLine(string(r.Set),
			fmt.Sprint(r.SetSize), fmt.Sprint(r.Queries),
			fmt.Sprint(r.TraditionalCompliant), fmt.Sprint(r.CompliantOK)))
	}
	return b.String()
}

// CSVOptTimes renders a Figure 6(b)–(f) panel.
func CSVOptTimes(rows []OptTimeRow) string {
	var b strings.Builder
	b.WriteString(csvLine("query", "traditional_ms", "compliant_ms", "eta", "groups", "exprs"))
	for _, r := range rows {
		b.WriteString(csvLine(r.Query, msF(r.Traditional), msF(r.Compliant),
			fmt.Sprint(r.Eta), fmt.Sprint(r.Groups), fmt.Sprint(r.Exprs)))
	}
	return b.String()
}

// CSVQuality renders a Figure 6(g)/(h) panel.
func CSVQuality(rows []QualityRow) string {
	var b strings.Builder
	b.WriteString(csvLine("query", "set", "traditional_cost_ms", "compliant_cost_ms", "scaled", "traditional_compliant", "same_plan"))
	for _, r := range rows {
		b.WriteString(csvLine(r.Query, string(r.Set),
			fmt.Sprintf("%.3f", r.TraditionalCost), fmt.Sprintf("%.3f", r.CompliantCost),
			fmt.Sprintf("%.3f", r.Scaled),
			fmt.Sprint(r.TraditionalCompliant), fmt.Sprint(r.SamePlan)))
	}
	return b.String()
}

// CSVFig7 renders the expression-count scalability panel.
func CSVFig7(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString(csvLine("query", "expressions", "compliant_ms", "eta"))
	for _, r := range rows {
		b.WriteString(csvLine(r.Query, fmt.Sprint(r.NumExprs), msF(r.Compliant), fmt.Sprint(r.Eta)))
	}
	return b.String()
}

// CSVFig7de renders the table-locations scalability panel.
func CSVFig7de(rows []FragRow) string {
	var b strings.Builder
	b.WriteString(csvLine("query", "locations", "compliant_ms", "site_selection_ms"))
	for _, r := range rows {
		b.WriteString(csvLine(r.Query, fmt.Sprint(r.NumLocs), msF(r.Compliant), msF(r.SiteTime)))
	}
	return b.String()
}

// CSVFig8 renders the locations-per-expression panel.
func CSVFig8(rows []WideRow) string {
	var b strings.Builder
	b.WriteString(csvLine("query", "locations_per_expression", "compliant_ms", "site_selection_ms"))
	for _, r := range rows {
		b.WriteString(csvLine(r.Query, fmt.Sprint(r.LocsPerExpr), msF(r.Compliant), msF(r.SiteTime)))
	}
	return b.String()
}
