package experiments

import (
	"strings"
	"testing"
	"time"

	"cgdqp/internal/workload"
)

func TestCSVRenderers(t *testing.T) {
	cells := []ComplianceCell{{Query: "Q2", Set: workload.SetT, TraditionalCompliant: false, CompliantFound: true, CompliantValid: true}}
	out := CSVFig5a(cells)
	if !strings.HasPrefix(out, "set,query,traditional,compliant\n") || !strings.Contains(out, "T,Q2,NC,C") {
		t.Errorf("fig5a csv:\n%s", out)
	}
	adhoc := []AdhocResult{{Set: workload.SetCRA, SetSize: 50, Queries: 100, TraditionalCompliant: 31, CompliantOK: 100}}
	if out := CSVFig6a(adhoc); !strings.Contains(out, "CR+A,50,100,31,100") {
		t.Errorf("fig6a csv:\n%s", out)
	}
	opt := []OptTimeRow{{Query: "Q3", Traditional: 300 * time.Microsecond, Compliant: 2 * time.Millisecond, Eta: 28, Groups: 32, Exprs: 58}}
	if out := CSVOptTimes(opt); !strings.Contains(out, "Q3,0.300,2.000,28,32,58") {
		t.Errorf("opt csv:\n%s", out)
	}
	q := []QualityRow{{Query: "Q2", Set: workload.SetCR, TraditionalCost: 589.02, CompliantCost: 1195.7, Scaled: 2.03, TraditionalCompliant: false, SamePlan: false}}
	if out := CSVQuality(q); !strings.Contains(out, "Q2,CR,589.020,1195.700,2.030,false,false") {
		t.Errorf("quality csv:\n%s", out)
	}
	if out := CSVFig7([]ScaleRow{{Query: "Q2", NumExprs: 12, Compliant: time.Millisecond, Eta: 27}}); !strings.Contains(out, "Q2,12,1.000,27") {
		t.Errorf("fig7 csv:\n%s", out)
	}
	if out := CSVFig7de([]FragRow{{Query: "Q3", NumLocs: 3, Compliant: time.Millisecond, SiteTime: 50 * time.Microsecond}}); !strings.Contains(out, "Q3,3,1.000,0.050") {
		t.Errorf("fig7de csv:\n%s", out)
	}
	if out := CSVFig8([]WideRow{{Query: "Q3", LocsPerExpr: 10, Compliant: time.Millisecond, SiteTime: time.Microsecond * 10}}); !strings.Contains(out, "Q3,10,1.000,0.010") {
		t.Errorf("fig8 csv:\n%s", out)
	}
	// Escaping.
	if got := csvEscape(`a,"b"`); got != `"a,""b"""` {
		t.Errorf("escape: %s", got)
	}
}
