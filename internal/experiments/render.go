package experiments

import (
	"fmt"
	"strings"
	"time"
)

func ms(d time.Duration) string { return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000) }

// RenderFig5a renders the effectiveness matrix.
func RenderFig5a(cells []ComplianceCell) string {
	var b strings.Builder
	b.WriteString("Figure 5(a): QEPs produced by the traditional query optimizer (C = compliant, NC = non-compliant)\n")
	b.WriteString("and whether the compliance-based optimizer found a valid plan.\n\n")
	b.WriteString(fmt.Sprintf("%-6s %-8s %-14s %-10s\n", "Set", "Query", "Traditional", "Compliant"))
	for _, c := range cells {
		trad := "C"
		if !c.TraditionalCompliant {
			trad = "NC"
		}
		comp := "rejected"
		if c.CompliantFound {
			comp = "C"
			if !c.CompliantValid {
				comp = "INVALID"
			}
		}
		b.WriteString(fmt.Sprintf("%-6s %-8s %-14s %-10s\n", c.Set, c.Query, trad, comp))
	}
	return b.String()
}

// RenderFig6a renders the ad-hoc effectiveness fractions.
func RenderFig6a(rows []AdhocResult) string {
	var b strings.Builder
	b.WriteString("Figure 6(a): fraction of ad-hoc queries with a compliant QEP\n\n")
	b.WriteString(fmt.Sprintf("%-8s %-10s %-10s %-22s %-22s\n", "Set", "#Exprs", "#Queries", "Traditional QO", "Compliant QO"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-10d %-10d %-22s %-22s\n",
			r.Set, r.SetSize, r.Queries,
			fmt.Sprintf("%.2f", float64(r.TraditionalCompliant)/float64(r.Queries)),
			fmt.Sprintf("%.2f", float64(r.CompliantOK)/float64(r.Queries))))
	}
	return b.String()
}

// RenderOptTimes renders a Figure 6(b)–(f) panel.
func RenderOptTimes(title string, rows []OptTimeRow) string {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	b.WriteString(fmt.Sprintf("%-8s %-16s %-16s %-10s %-8s %-8s\n", "Query", "Traditional", "Compliant", "Ratio", "Eta", "Exprs"))
	for _, r := range rows {
		ratio := float64(r.Compliant) / float64(r.Traditional)
		b.WriteString(fmt.Sprintf("%-8s %-16s %-16s %-10.2f %-8d %-8d\n",
			r.Query, ms(r.Traditional), ms(r.Compliant), ratio, r.Eta, r.Exprs))
	}
	return b.String()
}

// RenderQuality renders a Figure 6(g)/(h) panel.
func RenderQuality(title string, rows []QualityRow) string {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	b.WriteString(fmt.Sprintf("%-8s %-14s %-14s %-10s %-6s %-6s\n", "Query", "Trad cost", "Comp cost", "Scaled", "C/NC", "=/≠"))
	for _, r := range rows {
		marker := "C"
		if !r.TraditionalCompliant {
			marker = "NC"
		}
		eq := "="
		if !r.SamePlan {
			eq = "≠"
		}
		b.WriteString(fmt.Sprintf("%-8s %-14.2f %-14.2f %-10.2f %-6s %-6s\n",
			r.Query, r.TraditionalCost, r.CompliantCost, r.Scaled, marker, eq))
	}
	return b.String()
}

// RenderFig7 renders the expression-count scalability panel.
func RenderFig7(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Figure 7(a-c): optimization time vs #policy expressions (with η)\n\n")
	b.WriteString(fmt.Sprintf("%-8s %-10s %-16s %-8s\n", "Query", "#Exprs", "Compliant", "Eta"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-10d %-16s %-8d\n", r.Query, r.NumExprs, ms(r.Compliant), r.Eta))
	}
	return b.String()
}

// RenderFig7de renders the fragmented-table scalability panel.
func RenderFig7de(rows []FragRow) string {
	var b strings.Builder
	b.WriteString("Figure 7(d,e): optimization time vs #table locations (Customer/Orders fragmented)\n\n")
	b.WriteString(fmt.Sprintf("%-8s %-10s %-16s %-16s\n", "Query", "#Locs", "Compliant", "SiteSel"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-10d %-16s %-16s\n", r.Query, r.NumLocs, ms(r.Compliant), ms(r.SiteTime)))
	}
	return b.String()
}

// RenderFig8 renders the locations-per-expression panel.
func RenderFig8(rows []WideRow) string {
	var b strings.Builder
	b.WriteString("Figure 8: optimization time vs #locations per policy expression\n\n")
	b.WriteString(fmt.Sprintf("%-8s %-10s %-16s %-16s\n", "Query", "#Locs", "Compliant", "SiteSel"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-10d %-16s %-16s\n", r.Query, r.LocsPerExpr, ms(r.Compliant), ms(r.SiteTime)))
	}
	return b.String()
}
