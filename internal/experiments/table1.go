package experiments

import (
	"fmt"
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/policy"
)

// Table1Row is one evaluated query of the Table 1 walk-through.
type Table1Row struct {
	Query  string
	Result string // 𝒜(q, D, P)
}

// Table1Evaluation reproduces the Section 5 walk-through: the four
// policy expressions e1–e4 over T(A,...,G) evaluated against q1 and q2.
func Table1Evaluation() []Table1Row {
	cat := policy.NewCatalog()
	cat.AddAll(
		policy.MustParse("ship A, B, C from T to l2, l3", "e1", "d"),
		policy.MustParse("ship A, B from T to l1, l2, l3, l4", "e2", "d"),
		policy.MustParse("ship A, D from T to l1, l3 where B > 10", "e3", "d"),
		policy.MustParse("ship F, G as aggregates sum, avg from T to l1, l2 group by E, C", "e4", "d"),
	)
	ev := policy.NewEvaluator(cat, []string{"l1", "l2", "l3", "l4"})

	attr := func(name string) policy.Attr { return policy.Attr{Table: "t", Name: name} }
	q1 := &policy.Query{
		DB: "d",
		OutAttrs: []policy.OutAttr{
			{Attr: attr("a")}, {Attr: attr("c")}, {Attr: attr("d")},
			{Attr: attr("b")}, // accessed by the predicate
		},
		Pred: expr.NewCmp(expr.GT, expr.NewCol("t", "b"), expr.NewConst(expr.NewInt(15))),
	}
	q2 := &policy.Query{
		DB: "d",
		OutAttrs: []policy.OutAttr{
			{Attr: attr("c")},
			{Attr: attr("f"), Agg: expr.AggSum, HasAgg: true},
			{Attr: attr("g"), Agg: expr.AggSum, HasAgg: true},
		},
		GroupBy:    []policy.Attr{attr("c")},
		Aggregated: true,
	}
	return []Table1Row{
		{Query: "q1 ≡ Π_{A,C,D}(σ_{B>15}(T))", Result: ev.Evaluate(q1).String()},
		{Query: "q2 ≡ _C Γ_{sum(F*(1-G))}(T)", Result: ev.Evaluate(q2).String()},
	}
}

// RenderTable1 renders the walk-through as text.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: policy evaluation walk-through (Section 5)\n")
	b.WriteString("  e1 ≡ ship A, B, C from T to l2, l3\n")
	b.WriteString("  e2 ≡ ship A, B from T to l1, l2, l3, l4\n")
	b.WriteString("  e3 ≡ ship A, D from T to l1, l3 where B > 10\n")
	b.WriteString("  e4 ≡ ship F, G as aggregates sum, avg from T to l1, l2 group by E, C\n")
	for _, row := range Table1Evaluation() {
		fmt.Fprintf(&b, "  𝒜(%s) = %s\n", row.Query, row.Result)
	}
	return b.String()
}
