package experiments

import (
	"strings"
	"testing"

	"cgdqp/internal/workload"
)

// smallCfg keeps unit tests fast; the benchmarks use Default().
func smallCfg() Config {
	return Config{SF: 0.002, ExecSF: 0.001, Repetitions: 1, Seed: 42}
}

func TestFig5aShapes(t *testing.T) {
	cells, err := Fig5aEffectiveness(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 24 {
		t.Fatalf("24 variants expected, got %d", len(cells))
	}
	nc := 0
	for _, c := range cells {
		// The compliance-based optimizer must succeed on every variant.
		if !c.CompliantFound || !c.CompliantValid {
			t.Errorf("%s/%s: compliant optimizer failed (found=%v valid=%v)", c.Set, c.Query, c.CompliantFound, c.CompliantValid)
		}
		if !c.TraditionalCompliant {
			nc++
		}
	}
	// The traditional optimizer must be non-compliant for some variants
	// (the paper reports 8 of 24).
	if nc < 2 {
		t.Errorf("expected several non-compliant traditional plans, got %d", nc)
	}
	out := RenderFig5a(cells)
	if !strings.Contains(out, "NC") {
		t.Error("rendering must show NC cells")
	}
}

func TestFig5PlanExcerpts(t *testing.T) {
	out, err := Fig5PlanExcerpts(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Q2 under CR", "Q3 under CR+A", "compliant plan", "traditional plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("excerpts missing %q", want)
		}
	}
}

func TestFig6aShapes(t *testing.T) {
	rows, err := Fig6aAdhocEffectiveness(smallCfg(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("4 sets expected, got %d", len(rows))
	}
	for _, r := range rows {
		// The compliance-based optimizer handles every query.
		if r.CompliantOK != r.Queries {
			t.Errorf("set %s: compliant handled %d/%d", r.Set, r.CompliantOK, r.Queries)
		}
		// The traditional one misses some.
		if r.TraditionalCompliant == r.Queries {
			t.Errorf("set %s: traditional compliant on all queries (expected misses)", r.Set)
		}
	}
	_ = RenderFig6a(rows)
}

func TestFig6bAndOptTime(t *testing.T) {
	rows, err := Fig6bMinimalOverhead(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("6 queries expected, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Compliant <= 0 || r.Traditional <= 0 {
			t.Errorf("%s: non-positive times %v %v", r.Query, r.Compliant, r.Traditional)
		}
		// The compliant optimizer costs more (trait derivation) — allow
		// noise on the fastest queries but the overhead must exist
		// somewhere.
	}
	overhead := 0
	for _, r := range rows {
		if r.Compliant > r.Traditional {
			overhead++
		}
	}
	if overhead < 3 {
		t.Errorf("compliant optimization should usually cost more: %d/6", overhead)
	}
	cr, err := Fig6OptTime(smallCfg(), workload.SetCR)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr) != 6 {
		t.Errorf("CR rows: %d", len(cr))
	}
	_ = RenderOptTimes("Fig 6(e)", cr)
}

func TestFig6QualityShapes(t *testing.T) {
	for _, set := range []workload.SetName{workload.SetC, workload.SetCR} {
		rows, err := Fig6Quality(smallCfg(), set)
		if err != nil {
			t.Fatalf("%s: %v", set, err)
		}
		if len(rows) != 6 {
			t.Fatalf("%s: %d rows", set, len(rows))
		}
		for _, r := range rows {
			// Whenever the traditional plan is compliant and identical,
			// the costs must agree (the paper's "=" bars).
			if r.SamePlan && r.CompliantCost != r.TraditionalCost {
				t.Errorf("%s/%s: same plan, different cost %v vs %v", set, r.Query, r.CompliantCost, r.TraditionalCost)
			}
			if !r.RowsAgree {
				t.Errorf("%s/%s: result cardinality mismatch", set, r.Query)
			}
		}
		_ = RenderQuality("quality", rows)
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7Expressions(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 queries × 4 sizes
		t.Fatalf("rows: %d", len(rows))
	}
	// η grows with the number of expressions for each query.
	byQuery := map[string][]ScaleRow{}
	for _, r := range rows {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	for q, rs := range byQuery {
		for i := 1; i < len(rs); i++ {
			if rs[i].Eta < rs[i-1].Eta {
				t.Errorf("%s: η decreased from %d to %d as expressions grew", q, rs[i-1].Eta, rs[i].Eta)
			}
		}
		if rs[len(rs)-1].Eta <= rs[0].Eta {
			t.Errorf("%s: η did not grow (%d → %d)", q, rs[0].Eta, rs[len(rs)-1].Eta)
		}
	}
	_ = RenderFig7(rows)
}

func TestFig7deShapes(t *testing.T) {
	rows, err := Fig7deTableLocations(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 2 queries × 5 location counts
		t.Fatalf("rows: %d", len(rows))
	}
	// Optimization time grows (roughly) with fragmentation; check the
	// endpoint ordering per query.
	byQuery := map[string][]FragRow{}
	for _, r := range rows {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	for q, rs := range byQuery {
		if rs[len(rs)-1].Compliant <= rs[0].Compliant {
			t.Errorf("%s: time did not grow with fragmentation (%v → %v)", q, rs[0].Compliant, rs[len(rs)-1].Compliant)
		}
	}
	_ = RenderFig7de(rows)
}

func TestFig8Shapes(t *testing.T) {
	rows, err := Fig8Locations(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 2 queries × 5 widths
		t.Fatalf("rows: %d", len(rows))
	}
	_ = RenderFig8(rows)
}

func TestTable1(t *testing.T) {
	rows := Table1Evaluation()
	if len(rows) != 2 {
		t.Fatal("two queries")
	}
	if rows[0].Result != "{l3}" {
		t.Errorf("𝒜(q1) = %s, want {l3}", rows[0].Result)
	}
	if rows[1].Result != "{l1, l2}" {
		t.Errorf("𝒜(q2) = %s, want {l1, l2}", rows[1].Result)
	}
	out := RenderTable1()
	if !strings.Contains(out, "{l3}") || !strings.Contains(out, "{l1, l2}") {
		t.Errorf("render:\n%s", out)
	}
}
