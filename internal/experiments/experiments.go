// Package experiments implements the evaluation drivers of Section 7:
// one function per table/figure, each returning structured results that
// cmd/experiments renders and bench_test.go wraps into Go benchmarks.
// Absolute numbers differ from the paper (different hardware, simulated
// WAN); the shapes — who is compliant, relative overheads, scaling
// trends — are what these drivers reproduce.
package experiments

import (
	"fmt"
	"time"

	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// SF is the catalog scale factor for optimization-only experiments.
	SF float64
	// ExecSF is the scale factor for experiments that execute plans.
	ExecSF float64
	// Repetitions per measurement (the paper averages seven runs).
	Repetitions int
	// Seed drives the workload generators.
	Seed uint64
	// NoPolicyCache disables the policy evaluator's memoization during
	// timing experiments, mirroring the paper's per-operator evaluation
	// (used by the Figure 6(c–f) drivers).
	NoPolicyCache bool
}

// Default returns the configuration used by the benchmark harness.
func Default() Config {
	return Config{SF: 0.01, ExecSF: 0.002, Repetitions: 3, Seed: 42}
}

func (c Config) reps() int {
	if c.Repetitions < 1 {
		return 1
	}
	return c.Repetitions
}

// newOptimizer builds a fresh (cold-cache) optimizer.
func newOptimizer(cat *schema.Catalog, pc *policy.Catalog, compliant bool) *optimizer.Optimizer {
	net := network.FiveRegionWAN(cat.Locations())
	return optimizer.New(cat, pc, net, optimizer.Options{Compliant: compliant})
}

// newTimingOptimizer honors the no-cache fidelity knob.
func newTimingOptimizer(cfg Config, cat *schema.Catalog, pc *policy.Catalog, compliant bool) *optimizer.Optimizer {
	net := network.FiveRegionWAN(cat.Locations())
	return optimizer.New(cat, pc, net, optimizer.Options{Compliant: compliant, NoPolicyCache: cfg.NoPolicyCache})
}

// timeOptimize measures the average optimization time of a query over
// cfg.Repetitions cold runs; it returns the average duration and the
// stats of the last run.
func timeOptimize(cfg Config, cat *schema.Catalog, pc *policy.Catalog, compliant bool, sql string) (time.Duration, *optimizer.Result, error) {
	var total time.Duration
	var last *optimizer.Result
	for i := 0; i < cfg.reps(); i++ {
		opt := newTimingOptimizer(cfg, cat, pc, compliant)
		res, err := opt.OptimizeSQL(sql)
		if err != nil {
			return 0, nil, err
		}
		total += res.Stats.TotalTime
		last = res
	}
	return total / time.Duration(cfg.reps()), last, nil
}

// ComplianceCell is one entry of the Figure 5(a) matrix.
type ComplianceCell struct {
	Query                string
	Set                  workload.SetName
	TraditionalCompliant bool // C/NC of the traditional optimizer's plan
	CompliantFound       bool // the compliant optimizer produced a plan
	CompliantValid       bool // ... and it passes the Definition 1 checker
}

// Fig5aEffectiveness reproduces Figure 5(a): for each of the six TPC-H
// queries and each expression set, was the traditional cost-based plan
// compliant, and did the compliance-based optimizer find a (valid)
// compliant plan?
func Fig5aEffectiveness(cfg Config) ([]ComplianceCell, error) {
	cat := tpch.NewCatalog(cfg.SF)
	var out []ComplianceCell
	for _, set := range workload.SetNames() {
		pc := workload.TPCHSet(set)
		copt := newOptimizer(cat, pc, true)
		topt := newOptimizer(cat, pc, false)
		for _, qn := range tpch.QueryNames() {
			cell := ComplianceCell{Query: qn, Set: set}
			tres, err := topt.OptimizeSQL(tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("traditional %s/%s: %w", set, qn, err)
			}
			cell.TraditionalCompliant = len(copt.Check(tres.Plan)) == 0
			cres, err := copt.OptimizeSQL(tpch.Queries[qn])
			if err == nil {
				cell.CompliantFound = true
				cell.CompliantValid = len(copt.Check(cres.Plan)) == 0
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Fig5PlanExcerpts reproduces Figures 5(b)–(e): the Q2 plans under CR and
// the Q3 plans under CR+A, traditional vs. compliant.
func Fig5PlanExcerpts(cfg Config) (string, error) {
	cat := tpch.NewCatalog(cfg.SF)
	out := ""
	for _, pick := range []struct {
		query string
		set   workload.SetName
	}{
		{"Q2", workload.SetCR},
		{"Q3", workload.SetCRA},
	} {
		pc := workload.TPCHSet(pick.set)
		topt := newOptimizer(cat, pc, false)
		copt := newOptimizer(cat, pc, true)
		tres, err := topt.OptimizeSQL(tpch.Queries[pick.query])
		if err != nil {
			return "", err
		}
		cres, err := copt.OptimizeSQL(tpch.Queries[pick.query])
		if err != nil {
			return "", err
		}
		violations := copt.Check(tres.Plan)
		out += fmt.Sprintf("=== %s under %s: traditional plan (violations: %d) ===\n%s\n",
			pick.query, pick.set, len(violations), tres.Plan.Format(true))
		for _, v := range violations {
			out += "  violation: " + v.String() + "\n"
		}
		out += fmt.Sprintf("=== %s under %s: compliant plan ===\n%s\n",
			pick.query, pick.set, cres.Plan.Format(true))
	}
	return out, nil
}

// AdhocResult is one bar of Figure 6(a).
type AdhocResult struct {
	Set                  workload.SetName
	SetSize              int
	Queries              int
	TraditionalCompliant int // queries whose traditional plan was compliant
	CompliantOK          int // queries the compliant optimizer handled
}

// Fig6aAdhocEffectiveness reproduces Figure 6(a): the fraction of ad-hoc
// queries for which each optimizer produced a compliant QEP. The paper
// uses 400 queries split evenly over the four sets (T has 8 expressions,
// the others 50).
func Fig6aAdhocEffectiveness(cfg Config, queriesPerSet int) ([]AdhocResult, error) {
	cat := tpch.NewCatalog(cfg.SF)
	gen := workload.NewQueryGen(cfg.Seed)
	var out []AdhocResult
	for _, set := range workload.SetNames() {
		size := 50
		pc := workload.NewPolicyGen(cfg.Seed+uint64(len(out)), cat.Locations()).Generate(set, size)
		res := AdhocResult{Set: set, SetSize: pc.Len(), Queries: queriesPerSet}
		copt := newOptimizer(cat, pc, true)
		topt := newOptimizer(cat, pc, false)
		for _, q := range gen.Generate(queriesPerSet) {
			tres, err := topt.OptimizeSQL(q)
			if err != nil {
				return nil, fmt.Errorf("traditional ad-hoc: %w\n%s", err, q)
			}
			if len(copt.Check(tres.Plan)) == 0 {
				res.TraditionalCompliant++
			}
			cres, err := copt.OptimizeSQL(q)
			if err == nil && len(copt.Check(cres.Plan)) == 0 {
				res.CompliantOK++
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// OptTimeRow is one bar pair of Figures 6(b)–(f).
type OptTimeRow struct {
	Query       string
	Traditional time.Duration
	Compliant   time.Duration
	Eta         int64
	Groups      int
	Exprs       int
}

// Fig6bMinimalOverhead reproduces Figure 6(b): optimization time with
// unrestricted `ship * from t to *` policies — the framework's fixed
// overhead over traditional optimization.
func Fig6bMinimalOverhead(cfg Config) ([]OptTimeRow, error) {
	return optTimes(cfg, workload.UnrestrictedSet())
}

// Fig6OptTime reproduces Figures 6(c)–(f): optimization time under the
// T / C / CR / CR+A sets. The policy-evaluation cache is disabled to
// mirror the paper's per-operator evaluation (the source of its C > CR
// cost ordering).
func Fig6OptTime(cfg Config, set workload.SetName) ([]OptTimeRow, error) {
	noCache := cfg
	noCache.NoPolicyCache = true
	return optTimes(noCache, workload.TPCHSet(set))
}

func optTimes(cfg Config, pc *policy.Catalog) ([]OptTimeRow, error) {
	cat := tpch.NewCatalog(cfg.SF)
	var out []OptTimeRow
	for _, qn := range tpch.QueryNames() {
		sql := tpch.Queries[qn]
		tDur, _, err := timeOptimize(cfg, cat, pc, false, sql)
		if err != nil {
			return nil, fmt.Errorf("traditional %s: %w", qn, err)
		}
		cDur, cRes, err := timeOptimize(cfg, cat, pc, true, sql)
		if err != nil {
			return nil, fmt.Errorf("compliant %s: %w", qn, err)
		}
		out = append(out, OptTimeRow{
			Query:       qn,
			Traditional: tDur,
			Compliant:   cDur,
			Eta:         cRes.Stats.Eta,
			Groups:      cRes.Stats.Groups,
			Exprs:       cRes.Stats.Exprs,
		})
	}
	return out, nil
}
