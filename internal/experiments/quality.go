package experiments

import (
	"fmt"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// QualityRow is one bar pair of Figures 6(g)/6(h): the simulated
// execution (shipping) cost of both optimizers' plans for one query.
type QualityRow struct {
	Query                string
	Set                  workload.SetName
	TraditionalCost      float64 // measured shipping cost (ms, simulated)
	CompliantCost        float64
	Scaled               float64 // CompliantCost / TraditionalCost
	TraditionalCompliant bool    // C / NC marker
	SamePlan             bool    // = / ≠ marker
	RowsAgree            bool    // result equivalence check
}

// Fig6Quality reproduces Figures 6(g) and 6(h): generate data, execute
// the plan each optimizer produces, and measure the execution cost that
// arises from shipping intermediate data between sites (the message cost
// model prices every SHIP operator). Pass workload.SetC for 6(g) and
// workload.SetCR for 6(h).
func Fig6Quality(cfg Config, set workload.SetName) ([]QualityRow, error) {
	cat := tpch.NewCatalog(cfg.ExecSF)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := tpch.Generate(cat, cl); err != nil {
		return nil, err
	}
	pc := workload.TPCHSet(set)
	copt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
	topt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: false})

	var out []QualityRow
	for _, qn := range tpch.QueryNames() {
		sql := tpch.Queries[qn]
		tres, err := topt.OptimizeSQL(sql)
		if err != nil {
			return nil, fmt.Errorf("traditional %s: %w", qn, err)
		}
		cres, err := copt.OptimizeSQL(sql)
		if err != nil {
			return nil, fmt.Errorf("compliant %s: %w", qn, err)
		}
		row := QualityRow{
			Query:                qn,
			Set:                  set,
			TraditionalCompliant: len(copt.Check(tres.Plan)) == 0,
			SamePlan:             tres.Plan.Digest() == cres.Plan.Digest(),
		}
		cl.Ledger.Reset()
		tRows, tStats, err := executor.Run(tres.Plan, cl)
		if err != nil {
			return nil, fmt.Errorf("run traditional %s: %w", qn, err)
		}
		row.TraditionalCost = tStats.ShipCost
		cl.Ledger.Reset()
		cRows, cStats, err := executor.Run(cres.Plan, cl)
		if err != nil {
			return nil, fmt.Errorf("run compliant %s: %w", qn, err)
		}
		row.CompliantCost = cStats.ShipCost
		row.RowsAgree = len(tRows) == len(cRows)
		if row.TraditionalCost > 0 {
			row.Scaled = row.CompliantCost / row.TraditionalCost
		} else if row.CompliantCost == 0 {
			row.Scaled = 1
		}
		out = append(out, row)
	}
	return out, nil
}
