package experiments

import (
	"fmt"
	"time"

	"cgdqp/internal/tpch"
	"cgdqp/internal/workload"
)

// ScaleRow is one bar of Figures 7(a)–(c): optimization time against the
// number of policy expressions, annotated with η (how often an
// expression was actually considered).
type ScaleRow struct {
	Query     string
	NumExprs  int
	Compliant time.Duration
	Eta       int64
}

// Fig7Expressions reproduces Figures 7(a)–(c): Q2, Q3 and Q10 optimized
// under CR+A sets of 12, 25, 50 and 100 expressions.
func Fig7Expressions(cfg Config) ([]ScaleRow, error) {
	cat := tpch.NewCatalog(cfg.SF)
	var out []ScaleRow
	for _, qn := range []string{"Q2", "Q3", "Q10"} {
		for _, n := range []int{12, 25, 50, 100} {
			pc := workload.NewPolicyGen(cfg.Seed, cat.Locations()).Generate(workload.SetCRA, n)
			dur, res, err := timeOptimize(cfg, cat, pc, true, tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("%s with %d expressions: %w", qn, n, err)
			}
			out = append(out, ScaleRow{Query: qn, NumExprs: pc.Len(), Compliant: dur, Eta: res.Stats.Eta})
		}
	}
	return out, nil
}

// FragRow is one bar of Figures 7(d)/(e): optimization time against the
// number of locations the Customer and Orders tables are fragmented
// over.
type FragRow struct {
	Query     string
	NumLocs   int
	Compliant time.Duration
	SiteTime  time.Duration
}

// Fig7deTableLocations reproduces Figures 7(d)/(e): Customer and Orders
// are distributed among 1–5 locations (rewritten as unions of fragment
// scans), and Q3/Q10 are optimized under CR+A-style generated policies.
func Fig7deTableLocations(cfg Config) ([]FragRow, error) {
	var out []FragRow
	for _, qn := range []string{"Q3", "Q10"} {
		for nLocs := 1; nLocs <= 5; nLocs++ {
			cat := tpch.NewCatalogFragmented(cfg.SF, nLocs)
			pc := workload.NewPolicyGen(cfg.Seed, cat.Locations()).GenerateFor(cat, workload.SetCRA, 10)
			dur, res, err := timeOptimize(cfg, cat, pc, true, tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("%s over %d locations: %w", qn, nLocs, err)
			}
			out = append(out, FragRow{Query: qn, NumLocs: nLocs, Compliant: dur, SiteTime: res.Stats.SiteTime})
		}
	}
	return out, nil
}

// WideRow is one bar of Figure 8: optimization time against the number
// of `to` locations per policy expression.
type WideRow struct {
	Query       string
	LocsPerExpr int
	Compliant   time.Duration
	SiteTime    time.Duration
}

// Fig8Locations reproduces Figure 8: `ship * from t to l1,...,ln`
// expressions with n from 3 to 20 over a 20-location deployment; Q2 and
// Q3 are the most- and least-join-heavy queries.
func Fig8Locations(cfg Config) ([]WideRow, error) {
	cat := tpch.NewCatalog(cfg.SF)
	// Extend the universe to 20 locations (L6..L20 host no data but are
	// legal shipping destinations).
	var locs []string
	for i := 1; i <= 20; i++ {
		l := fmt.Sprintf("L%d", i)
		cat.AddLocation(l)
		locs = append(locs, l)
	}
	var out []WideRow
	for _, qn := range []string{"Q2", "Q3"} {
		for _, n := range []int{3, 5, 10, 15, 20} {
			pc := workload.WideSet(locs, n)
			dur, res, err := timeOptimize(cfg, cat, pc, true, tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("%s with %d locations per expression: %w", qn, n, err)
			}
			out = append(out, WideRow{Query: qn, LocsPerExpr: n, Compliant: dur, SiteTime: res.Stats.SiteTime})
		}
	}
	return out, nil
}
