// Package storage implements the per-site row store behind each
// geo-distributed location: a database holding the tables (or table
// fragments) placed there. Two backends share one surface — the default
// in-memory store (append-only row slices with zero-copy snapshots) and
// the persistent paged engine (internal/store: pager + buffer pool +
// WAL + B+ trees), selected per database at construction. Both maintain
// the same B+ tree secondary indexes, so access-path planning and query
// results are byte-identical across backends.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cgdqp/internal/expr"
	"cgdqp/internal/store"
)

// Table is one table (or fragment): a column list plus either an
// append-only in-memory row slice or a persistent paged table.
type Table struct {
	Name    string
	Columns []string

	mu sync.RWMutex
	// rows is the in-memory backend: append-only, never mutated in
	// place. Snapshots alias the slice with a capped length, so a later
	// append either writes past every snapshot's capacity or relocates
	// the backing array — existing snapshots are immutable either way
	// (copy-on-write growth without per-scan copying).
	rows []expr.Row

	types   []expr.Type             // declared column types ("" untyped legacy tables)
	idxCols []string                // indexed columns, declaration order
	idx     map[string]*store.BTree // in-memory indexes (lowercase col)

	st *store.Table // persistent backend; nil = in-memory
}

// NewTable creates an empty untyped in-memory table (no indexes).
func NewTable(name string, columns []string) *Table {
	return &Table{Name: name, Columns: append([]string(nil), columns...)}
}

// newTableSpec creates an in-memory table with declared types and B+
// tree indexes on the named columns (non-indexable types are skipped,
// mirroring the persistent engine).
func newTableSpec(name string, columns []string, types []expr.Type, indexed []string) *Table {
	t := NewTable(name, columns)
	t.types = append([]expr.Type(nil), types...)
	for _, col := range indexed {
		pos := t.colPos(col)
		if pos < 0 || pos >= len(t.types) || !store.IndexableType(t.types[pos]) {
			continue
		}
		if t.idx == nil {
			t.idx = map[string]*store.BTree{}
		}
		t.idxCols = append(t.idxCols, col)
		t.idx[strings.ToLower(col)] = store.NewBTree(t.types[pos] == expr.TString)
	}
	return t
}

func (t *Table) colPos(col string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c, col) {
			return i
		}
	}
	return -1
}

// Insert appends rows. Each row must match the column count.
func (t *Table) Insert(rows ...expr.Row) error {
	if t.st != nil {
		return t.st.Append(rows)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(t.Columns) {
			return fmt.Errorf("storage: row width %d does not match table %s (%d columns)", len(r), t.Name, len(t.Columns))
		}
	}
	for _, r := range rows {
		id := int32(len(t.rows))
		t.rows = append(t.rows, r)
		for col, tree := range t.idx {
			if pos := t.colPos(col); pos >= 0 {
				tree.InsertValue(r[pos], id)
			}
		}
	}
	return nil
}

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	if t.st != nil {
		return int(t.st.RowCount())
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rows returns a snapshot of the stored rows. For the in-memory backend
// this is a zero-copy, zero-allocation view (full slice expression over
// the append-only rows); the persistent backend decodes its pages. The
// rows are shared; callers must not mutate them.
func (t *Table) Rows() []expr.Row {
	rows, _ := t.RowsChecked()
	return rows
}

// RowsChecked is Rows with the persistent backend's decode error
// surfaced.
func (t *Table) RowsChecked() ([]expr.Row, error) {
	if t.st != nil {
		return t.st.ScanRows()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.rows)
	return t.rows[:n:n], nil
}

// Batches returns a page iterator decoding straight into column
// vectors; ok is false for the in-memory backend (whose scans alias
// rows without copying — there are no pages to decode).
func (t *Table) Batches() (*store.Iterator, bool) {
	if t.st == nil {
		return nil, false
	}
	return t.st.NewIterator(), true
}

// Persistent reports whether the table is backed by the paged engine.
func (t *Table) Persistent() bool { return t.st != nil }

// IndexedColumns returns the indexed column names in declaration order.
func (t *Table) IndexedColumns() []string {
	if t.st != nil {
		return t.st.IndexedColumns()
	}
	return t.idxCols
}

// IndexRangeRows returns rows whose indexed column lies in [lo, hi]
// (nil bound = unbounded, inclusivity per flag) in (key, insertion)
// order; ok is false without a usable index — identical semantics on
// both backends.
func (t *Table) IndexRangeRows(col string, lo, hi *expr.Value, loInc, hiInc bool) ([]expr.Row, bool) {
	if t.st != nil {
		return t.st.IndexRangeRows(col, lo, hi, loInc, hiInc)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, ok := t.idx[strings.ToLower(col)]
	if !ok {
		return nil, false
	}
	ids, ok := store.RangeIDs(tree, lo, hi, loInc, hiInc)
	if !ok {
		return nil, false
	}
	out := make([]expr.Row, len(ids))
	for i, id := range ids {
		out[i] = t.rows[id]
	}
	return out, true
}

// IndexLookupRows returns rows whose indexed column equals key, in
// insertion order; ok is false without a usable index.
func (t *Table) IndexLookupRows(col string, key expr.Value) ([]expr.Row, bool) {
	if t.st != nil {
		return t.st.IndexLookupRows(col, key)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, ok := t.idx[strings.ToLower(col)]
	if !ok {
		return nil, false
	}
	if key.IsNull() {
		return nil, true
	}
	ids := tree.LookupValue(key)
	out := make([]expr.Row, len(ids))
	for i, id := range ids {
		out[i] = t.rows[id]
	}
	return out, true
}

// IndexStats returns the min/max value and distinct count of an indexed
// column; ok is false without an index or when the table is empty.
func (t *Table) IndexStats(col string) (min, max expr.Value, distinct int, ok bool) {
	if t.st != nil {
		return t.st.IndexStats(col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, found := t.idx[strings.ToLower(col)]
	if !found {
		return expr.Value{}, expr.Value{}, 0, false
	}
	loK, hiK, any := tree.MinMax()
	if !any {
		return expr.Value{}, expr.Value{}, 0, false
	}
	pos := t.colPos(col)
	ct := expr.TInt
	if pos >= 0 && pos < len(t.types) {
		ct = t.types[pos]
	}
	return store.KeyValue(loK, ct), store.KeyValue(hiK, ct), tree.Len(), true
}

// DB is one site's database: a set of tables over one backend.
type DB struct {
	Name string

	mu     sync.RWMutex
	tables map[string]*Table
	eng    *store.Engine // persistent engine; nil = in-memory
}

// NewDB creates an empty in-memory database.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: map[string]*Table{}}
}

// NewPersistentDB creates a database whose tables live in the given
// storage engine (one engine per site data directory).
func NewPersistentDB(name string, eng *store.Engine) *DB {
	return &DB{Name: name, tables: map[string]*Table{}, eng: eng}
}

// Persistent reports whether the database is backed by the paged engine.
func (db *DB) Persistent() bool { return db.eng != nil }

// Engine returns the persistent engine (nil for in-memory databases).
func (db *DB) Engine() *store.Engine { return db.eng }

// CreateTable registers an empty untyped table; it fails on duplicates.
func (db *DB) CreateTable(name string, columns []string) (*Table, error) {
	return db.CreateTableSpec(name, columns, nil, nil)
}

// CreateTableSpec registers a table with declared column types and B+
// tree indexes on the named columns. On a persistent database reopening
// an existing data directory, a table with the same shape is reattached
// (its rows survive); the in-memory backend always starts empty.
func (db *DB) CreateTableSpec(name string, columns []string, types []expr.Type, indexed []string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %s already exists in %s", name, db.Name)
	}
	var t *Table
	if db.eng != nil {
		st, err := db.eng.CreateTable(name, columns, types, indexed)
		if err != nil {
			return nil, err
		}
		t = &Table{Name: name, Columns: append([]string(nil), columns...), types: append([]expr.Type(nil), types...), st: st}
	} else {
		t = newTableSpec(name, columns, types, indexed)
	}
	db.tables[key] = t
	return t, nil
}

// Table resolves a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the table names, sorted (deterministic across runs).
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
