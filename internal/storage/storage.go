// Package storage implements the per-site in-memory row store: each
// geo-distributed location hosts one database holding the tables (or
// table fragments) placed there.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"cgdqp/internal/expr"
)

// Table is an in-memory table (or fragment): a column list and rows.
type Table struct {
	Name    string
	Columns []string

	mu   sync.RWMutex
	rows []expr.Row
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, columns []string) *Table {
	return &Table{Name: name, Columns: append([]string(nil), columns...)}
}

// Insert appends rows. Each row must match the column count.
func (t *Table) Insert(rows ...expr.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(t.Columns) {
			return fmt.Errorf("storage: row width %d does not match table %s (%d columns)", len(r), t.Name, len(t.Columns))
		}
		t.rows = append(t.rows, r)
	}
	return nil
}

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rows returns a snapshot slice of the stored rows. The rows themselves
// are shared; callers must not mutate them.
func (t *Table) Rows() []expr.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]expr.Row(nil), t.rows...)
}

// DB is one site's database: a set of tables.
type DB struct {
	Name string

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: map[string]*Table{}}
}

// CreateTable registers an empty table; it fails on duplicates.
func (db *DB) CreateTable(name string, columns []string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %s already exists in %s", name, db.Name)
	}
	t := NewTable(name, columns)
	db.tables[key] = t
	return t, nil
}

// Table resolves a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the table names, unsorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}
