package storage

import (
	"fmt"
	"sync"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/store"
)

func TestTableInsertAndScan(t *testing.T) {
	tab := NewTable("t", []string{"a", "b"})
	if err := tab.Insert(expr.Row{expr.NewInt(1), expr.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(expr.Row{expr.NewInt(2), expr.NewString("y")}, expr.Row{expr.NewInt(3), expr.NewString("z")}); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 3 {
		t.Errorf("rows: %d", tab.RowCount())
	}
	rows := tab.Rows()
	if len(rows) != 3 || rows[1][1].Str() != "y" {
		t.Errorf("rows: %v", rows)
	}
	// Width mismatch rejected.
	if err := tab.Insert(expr.Row{expr.NewInt(1)}); err == nil {
		t.Error("width mismatch must fail")
	}
	// Rows() returns a snapshot: appending later does not grow it.
	snap := tab.Rows()
	_ = tab.Insert(expr.Row{expr.NewInt(4), expr.NewString("w")})
	if len(snap) != 3 {
		t.Error("snapshot grew")
	}
}

func TestDBTables(t *testing.T) {
	db := NewDB("db-1")
	if _, err := db.CreateTable("T", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", []string{"a"}); err == nil {
		t.Error("duplicate (case-insensitive) must fail")
	}
	tab, ok := db.Table("T")
	if !ok || tab.Name != "T" {
		t.Error("lookup")
	}
	if _, ok := db.Table("ghost"); ok {
		t.Error("unknown table")
	}
	if names := db.Tables(); len(names) != 1 || names[0] != "T" {
		t.Errorf("Tables: %v", names)
	}
}

// TestRowsSnapshotZeroAlloc pins the O(1) snapshot contract: Rows() on
// the in-memory backend is a capped slice expression over the
// append-only rows — no per-scan copy, no allocations — and later
// appends never mutate an outstanding snapshot.
func TestRowsSnapshotZeroAlloc(t *testing.T) {
	tab := NewTable("t", []string{"a", "b"})
	for i := 0; i < 10_000; i++ {
		if err := tab.Insert(expr.Row{expr.NewInt(int64(i)), expr.NewString("v")}); err != nil {
			t.Fatal(err)
		}
	}
	var snap []expr.Row
	allocs := testing.AllocsPerRun(100, func() { snap = tab.Rows() })
	if allocs != 0 {
		t.Errorf("Rows() allocates %.1f per call on 10k rows, want 0 (O(n) snapshot copy regressed)", allocs)
	}
	if len(snap) != 10_000 {
		t.Fatalf("snapshot length %d, want 10000", len(snap))
	}
	first := snap[0][0].Int()
	if err := tab.Insert(expr.Row{expr.NewInt(-1), expr.NewString("late")}); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 10_000 || snap[0][0].Int() != first {
		t.Error("append after snapshot mutated the snapshot")
	}
	// Appending into the capacity gap beyond a snapshot's capped length
	// must not be observable through the snapshot either.
	if cap(snap) != len(snap) {
		t.Errorf("snapshot capacity %d exceeds its length %d (aliasing window)", cap(snap), len(snap))
	}
}

// TestTablesSorted pins the deterministic ordering of DB.Tables():
// creation order and map iteration order must not leak through.
func TestTablesSorted(t *testing.T) {
	db := NewDB("db-1")
	for _, name := range []string{"zeta", "alpha", "Mid", "beta"} {
		if _, err := db.CreateTable(name, []string{"a"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"Mid", "alpha", "beta", "zeta"} // sort.Strings order
	for i := 0; i < 20; i++ {
		got := db.Tables()
		if len(got) != len(want) {
			t.Fatalf("Tables: %v", got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Tables()[%d] = %q, want %q (run %d)", j, got[j], want[j], i)
			}
		}
	}
}

// TestBackendIndexParity loads identical rows — duplicate keys, NULLs,
// string and int indexes — into an in-memory table and a persistent
// one, and requires every index read (range scans over each bound
// shape, point lookups, stats) to return identical rows in identical
// order. This is the contract that lets the executor treat the backends
// interchangeably.
func TestBackendIndexParity(t *testing.T) {
	cols := []string{"k", "name", "val"}
	types := []expr.Type{expr.TInt, expr.TString, expr.TFloat}
	indexed := []string{"k", "name"}

	mem := NewDB("db-mem")
	eng, err := store.Open(store.Options{Dir: t.TempDir(), BufferPoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	per := NewPersistentDB("db-per", eng)

	mt, err := mem.CreateTableSpec("T", cols, types, indexed)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := per.CreateTableSpec("T", cols, types, indexed)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Persistent() || !pt.Persistent() {
		t.Fatal("backend selection")
	}

	var rows []expr.Row
	for i := 0; i < 500; i++ {
		k := expr.NewInt(int64(i % 37)) // duplicates share keys
		if i%23 == 0 {
			k = expr.NullValue()
		}
		rows = append(rows, expr.Row{
			k,
			expr.NewString(fmt.Sprintf("n-%02d", i%41)),
			expr.NewFloat(float64(i) / 8),
		})
	}
	if err := mt.Insert(rows...); err != nil {
		t.Fatal(err)
	}
	if err := pt.Insert(rows...); err != nil {
		t.Fatal(err)
	}

	sameRows := func(label string, a, b []expr.Row, aOK, bOK bool) {
		t.Helper()
		if aOK != bOK {
			t.Fatalf("%s: ok %v (mem) vs %v (persistent)", label, aOK, bOK)
		}
		if !aOK {
			return
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows (mem) vs %d (persistent)", label, len(a), len(b))
		}
		for i := range a {
			if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, a[i], b[i])
			}
		}
	}

	iv := func(n int64) *expr.Value { v := expr.NewInt(n); return &v }
	sv := func(s string) *expr.Value { v := expr.NewString(s); return &v }
	ranges := []struct {
		label        string
		col          string
		lo, hi       *expr.Value
		loInc, hiInc bool
	}{
		{"int full", "k", nil, nil, true, true},
		{"int [5,20]", "k", iv(5), iv(20), true, true},
		{"int (5,20)", "k", iv(5), iv(20), false, false},
		{"int [-3,5)", "k", iv(-3), iv(5), true, false},
		{"int lower only", "k", iv(30), nil, true, true},
		{"int upper only", "k", nil, iv(4), true, false},
		{"int empty", "k", iv(50), iv(90), true, true},
		{"str [n-05,n-11]", "name", sv("n-05"), sv("n-11"), true, true},
		{"str (n-05,n-11)", "name", sv("n-05"), sv("n-11"), false, false},
		{"str upper only", "name", nil, sv("n-03"), true, true},
	}
	for _, r := range ranges {
		a, aOK := mt.IndexRangeRows(r.col, r.lo, r.hi, r.loInc, r.hiInc)
		b, bOK := pt.IndexRangeRows(r.col, r.lo, r.hi, r.loInc, r.hiInc)
		sameRows("range "+r.label, a, b, aOK, bOK)
	}
	for _, key := range []expr.Value{expr.NewInt(7), expr.NewInt(99), expr.NewString("n-17"), expr.NullValue()} {
		a, aOK := mt.IndexLookupRows("k", key)
		b, bOK := pt.IndexLookupRows("k", key)
		sameRows(fmt.Sprintf("lookup k=%v", key), a, b, aOK, bOK)
	}
	for _, col := range []string{"k", "name", "val"} {
		aMin, aMax, aN, aOK := mt.IndexStats(col)
		bMin, bMax, bN, bOK := pt.IndexStats(col)
		if aOK != bOK || aN != bN || fmt.Sprint(aMin) != fmt.Sprint(bMin) || fmt.Sprint(aMax) != fmt.Sprint(bMax) {
			t.Fatalf("stats %s: mem (%v,%v,%d,%v) vs persistent (%v,%v,%d,%v)",
				col, aMin, aMax, aN, aOK, bMin, bMax, bN, bOK)
		}
	}
	// The unindexed column refuses index reads on both backends.
	if _, ok := mt.IndexRangeRows("val", nil, nil, true, true); ok {
		t.Error("mem: unindexed column served a range")
	}
	if _, ok := pt.IndexRangeRows("val", nil, nil, true, true); ok {
		t.Error("persistent: unindexed column served a range")
	}
}

func TestConcurrentInserts(t *testing.T) {
	tab := NewTable("t", []string{"a"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = tab.Insert(expr.Row{expr.NewInt(int64(base*100 + j))})
			}
		}(i)
	}
	wg.Wait()
	if tab.RowCount() != 800 {
		t.Errorf("concurrent inserts: %d", tab.RowCount())
	}
}
