package storage

import (
	"sync"
	"testing"

	"cgdqp/internal/expr"
)

func TestTableInsertAndScan(t *testing.T) {
	tab := NewTable("t", []string{"a", "b"})
	if err := tab.Insert(expr.Row{expr.NewInt(1), expr.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(expr.Row{expr.NewInt(2), expr.NewString("y")}, expr.Row{expr.NewInt(3), expr.NewString("z")}); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 3 {
		t.Errorf("rows: %d", tab.RowCount())
	}
	rows := tab.Rows()
	if len(rows) != 3 || rows[1][1].Str() != "y" {
		t.Errorf("rows: %v", rows)
	}
	// Width mismatch rejected.
	if err := tab.Insert(expr.Row{expr.NewInt(1)}); err == nil {
		t.Error("width mismatch must fail")
	}
	// Rows() returns a snapshot: appending later does not grow it.
	snap := tab.Rows()
	_ = tab.Insert(expr.Row{expr.NewInt(4), expr.NewString("w")})
	if len(snap) != 3 {
		t.Error("snapshot grew")
	}
}

func TestDBTables(t *testing.T) {
	db := NewDB("db-1")
	if _, err := db.CreateTable("T", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", []string{"a"}); err == nil {
		t.Error("duplicate (case-insensitive) must fail")
	}
	tab, ok := db.Table("T")
	if !ok || tab.Name != "T" {
		t.Error("lookup")
	}
	if _, ok := db.Table("ghost"); ok {
		t.Error("unknown table")
	}
	if names := db.Tables(); len(names) != 1 || names[0] != "T" {
		t.Errorf("Tables: %v", names)
	}
}

func TestConcurrentInserts(t *testing.T) {
	tab := NewTable("t", []string{"a"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = tab.Insert(expr.Row{expr.NewInt(int64(base*100 + j))})
			}
		}(i)
	}
	wg.Wait()
	if tab.RowCount() != 800 {
		t.Errorf("concurrent inserts: %d", tab.RowCount())
	}
}
