// Package rescache is the compliance-aware result-set cache sitting
// between the query-serving tier and the executors: whole executed
// result sets (rows, run statistics, audit records) are cached under the
// digest of the located plan that produced them and replayed to
// repeated or concurrent identical queries without re-executing.
//
// Reuse is only sound when three things still hold, and each has its own
// guard:
//
//   - The data is unchanged. Every entry snapshots, before execution
//     starts, the per-table data epoch of every base table the plan
//     consumes (cluster loads bump a table's epoch); a later Get that
//     observes any different epoch invalidates the entry.
//   - The policies still permit the result's provenance. Every entry
//     records the policy epoch it was filled under and keeps a private
//     clone of the located plan — root site plus every cross-site SHIP
//     edge with the relations it moves. When the policy epoch has moved,
//     the entry is only served if the caller's Recheck proves the stored
//     plan still compliant under the *current* catalog (Definition 1);
//     otherwise the entry is dropped and the query re-runs.
//   - The execution options that shape observable statistics are the
//     same. An options fingerprint is part of the key (e.g. wire
//     compression changes shipped bytes).
//
// A cache hit is byte-identical to a fresh run: rows are deep-copied on
// every read (callers may mutate their copy freely), and the replayed
// RunStats and audit records are exactly those of the filling execution,
// which deterministic execution makes equal to what a fresh run of the
// same plan would report.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"

	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// View supplies the validity oracles a cache consults on every Get and
// snapshot on every Prepare. The funcs must be safe for concurrent use.
type View struct {
	// DataEpoch returns the current data epoch of a base table
	// (case-insensitive). Loading rows into a table must change it.
	DataEpoch func(table string) uint64
	// PolicyEpoch returns the current policy-catalog epoch; any policy
	// change (grant added or removed) must change it.
	PolicyEpoch func() uint64
	// Recheck reports whether a located plan is still compliant under
	// the current policy catalog. It gates serving entries filled under
	// an older policy epoch; nil refuses all such entries.
	Recheck func(located *plan.Node) bool
}

func (v View) dataEpoch(table string) uint64 {
	if v.DataEpoch == nil {
		return 0
	}
	return v.DataEpoch(table)
}

func (v View) policyEpoch() uint64 {
	if v.PolicyEpoch == nil {
		return 0
	}
	return v.PolicyEpoch()
}

// Fill is the pre-execution snapshot of one cacheable run: the cache
// key, the consumed tables with their data epochs as of *before* the
// execution started (so a load racing the execution invalidates the
// entry rather than being missed), the policy epoch, and a private
// clone of the located plan kept for provenance rechecks.
type Fill struct {
	// Key identifies the (plan, options) pair; see Prepare.
	Key string

	tables      []string
	epochs      map[string]uint64
	policyEpoch uint64
	located     *plan.Node
	rootSite    string
}

// Prepare snapshots everything a subsequent Put needs, and must be
// called before the execution it describes starts. The key digests the
// located physical plan — operators, predicates, fragment bindings and
// every SHIP edge — plus the root execution site and the caller's
// options fingerprint. Keying on the *physical* plan (not the SQL text)
// means a statistics or calibration change that alters plan choice
// simply keys new entries, so replayed statistics always describe the
// plan actually being executed.
func Prepare(located *plan.Node, optsFP string, view View) *Fill {
	f := &Fill{
		located:     located.Clone(),
		rootSite:    located.Loc,
		policyEpoch: view.policyEpoch(),
	}
	seen := map[string]bool{}
	for _, sc := range located.Tables() {
		if sc.Table == nil {
			continue
		}
		name := strings.ToLower(sc.Table.Name)
		if !seen[name] {
			seen[name] = true
			f.tables = append(f.tables, name)
		}
	}
	sort.Strings(f.tables)
	f.epochs = make(map[string]uint64, len(f.tables))
	for _, tb := range f.tables {
		f.epochs[tb] = view.dataEpoch(tb)
	}
	sum := sha256.Sum256([]byte(located.Digest() + "@" + located.Loc + "|" + optsFP))
	f.Key = hex.EncodeToString(sum[:])
	return f
}

// Result is what a cache hit delivers: private row copies plus the
// filling run's statistics and audit records.
type Result struct {
	Rows    []expr.Row
	Columns []string
	Stats   executor.RunStats
	// Audit are the compliance audit records of the execution that
	// produced the cached result — the data movement provenance a
	// cache-served query replays into its own audit log.
	Audit []obs.AuditRecord
	// ShipCost is the optimizer's estimate recorded at fill time.
	ShipCost float64
}

// NewResult builds a Result from private deep copies of the given data,
// so the caller keeps ownership of what it passes. The scheduler uses it
// to publish an immutable master copy of a leader execution to the
// followers coalesced onto it.
func NewResult(rows []expr.Row, cols []string, stats executor.RunStats, audit []obs.AuditRecord, shipCost float64) *Result {
	r := &Result{
		Rows:     make([]expr.Row, len(rows)),
		Columns:  append([]string(nil), cols...),
		Stats:    stats,
		Audit:    append([]obs.AuditRecord(nil), audit...),
		ShipCost: shipCost,
	}
	for i, row := range rows {
		r.Rows[i] = append(expr.Row(nil), row...)
	}
	return r
}

// Copy returns a private deep copy of the result.
func (r *Result) Copy() *Result {
	return NewResult(r.Rows, r.Columns, r.Stats, r.Audit, r.ShipCost)
}

// entry is one cached result set. rows/audit are private master copies;
// every reader copies out.
type entry struct {
	key         string
	rows        []expr.Row
	cols        []string
	stats       executor.RunStats
	audit       []obs.AuditRecord
	shipCost    float64
	tables      []string
	epochs      map[string]uint64
	policyEpoch uint64
	located     *plan.Node
	size        int64
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits, Misses, Fills, Evictions int64
	// InvalidatedData counts entries dropped because a consumed table's
	// data epoch moved; InvalidatedPolicy counts entries dropped because
	// the policy catalog no longer permits their provenance.
	InvalidatedData, InvalidatedPolicy int64
	// Rechecked counts provenance revalidations that passed (the entry
	// survived a policy-epoch change).
	Rechecked int64
	Entries   int
	Bytes     int64
}

// Cache is a byte-bounded LRU of executed result sets. It is safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recent; values are *entry

	stats Stats
	reg   *obs.Registry
}

// New creates a cache bounded to maxBytes of estimated result payload
// (minimum one entry is always admitted if it fits the budget; an entry
// larger than the whole budget is not stored).
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// SetMetrics installs a metrics registry the cache reports
// cgdqp_rescache_* counters and gauges into (nil disables).
func (c *Cache) SetMetrics(reg *obs.Registry) { c.reg = reg }

// MaxBytes returns the configured budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	return s
}

// Purge drops every entry (counters are kept).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.lru = list.New()
	c.bytes = 0
	c.gaugeLocked()
}

// Get returns a deep copy of the entry under key when it is still valid
// in the given view: every consumed table's data epoch is unchanged,
// and the policy epoch either matches or the stored plan rechecks as
// compliant under the current catalog. Invalid entries are dropped.
func (c *Cache) Get(key string, view View) (*Result, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.count("cgdqp_rescache_misses_total")
		c.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*entry)
	for _, tb := range e.tables {
		if view.dataEpoch(tb) != e.epochs[tb] {
			c.removeLocked(el, e)
			c.stats.InvalidatedData++
			c.stats.Misses++
			c.countReason("cgdqp_rescache_invalidations_total", "data_epoch")
			c.count("cgdqp_rescache_misses_total")
			c.gaugeLocked()
			c.mu.Unlock()
			return nil, false
		}
	}
	if pe := view.policyEpoch(); pe != e.policyEpoch {
		if view.Recheck == nil || !view.Recheck(e.located) {
			c.removeLocked(el, e)
			c.stats.InvalidatedPolicy++
			c.stats.Misses++
			c.countReason("cgdqp_rescache_invalidations_total", "policy")
			c.count("cgdqp_rescache_misses_total")
			c.gaugeLocked()
			c.mu.Unlock()
			return nil, false
		}
		// Provenance proved still compliant: adopt the current epoch so
		// the next hit under an unchanged catalog skips the recheck.
		e.policyEpoch = pe
		c.stats.Rechecked++
		c.count("cgdqp_rescache_rechecks_total")
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	c.count("cgdqp_rescache_hits_total")
	out := materialize(e)
	c.mu.Unlock()
	return out, true
}

// materialize copies an entry out (caller holds mu; the copies escape
// the lock safely because master data is never handed out).
func materialize(e *entry) *Result {
	rows := make([]expr.Row, len(e.rows))
	for i, r := range e.rows {
		rows[i] = append(expr.Row(nil), r...)
	}
	return &Result{
		Rows:     rows,
		Columns:  append([]string(nil), e.cols...),
		Stats:    e.stats,
		Audit:    append([]obs.AuditRecord(nil), e.audit...),
		ShipCost: e.shipCost,
	}
}

// Put stores a successful execution under its pre-execution Fill
// snapshot. Rows and audit records are copied in, so the caller keeps
// ownership of what it passes (and may hand its slices to its own
// caller). Results larger than the whole budget are not stored.
func (c *Cache) Put(f *Fill, rows []expr.Row, cols []string, stats executor.RunStats, audit []obs.AuditRecord, shipCost float64) {
	e := &entry{
		key:         f.Key,
		rows:        make([]expr.Row, len(rows)),
		cols:        append([]string(nil), cols...),
		stats:       stats,
		audit:       append([]obs.AuditRecord(nil), audit...),
		shipCost:    shipCost,
		tables:      f.tables,
		epochs:      f.epochs,
		policyEpoch: f.policyEpoch,
		located:     f.located,
	}
	for i, r := range rows {
		e.rows[i] = append(expr.Row(nil), r...)
	}
	e.size = entrySize(e)
	if e.size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[f.Key]; ok {
		old := el.Value.(*entry)
		c.bytes += e.size - old.size
		el.Value = e
		c.lru.MoveToFront(el)
	} else {
		c.entries[f.Key] = c.lru.PushFront(e)
		c.bytes += e.size
	}
	c.stats.Fills++
	c.count("cgdqp_rescache_fills_total")
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		last := c.lru.Back()
		c.removeLocked(last, last.Value.(*entry))
		c.stats.Evictions++
		c.count("cgdqp_rescache_evictions_total")
	}
	c.gaugeLocked()
}

// removeLocked unlinks an entry (caller holds mu).
func (c *Cache) removeLocked(el *list.Element, e *entry) {
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// entrySize estimates the retained payload of an entry: values by wire
// width plus slice/struct overheads, audit records flat-rated, and a
// base cost so empty results still account for their bookkeeping.
func entrySize(e *entry) int64 {
	size := int64(512)
	for _, r := range e.rows {
		size += 24
		for _, v := range r {
			size += 16 + int64(v.Width())
		}
	}
	size += int64(len(e.audit)) * 128
	for _, col := range e.cols {
		size += int64(len(col)) + 16
	}
	return size
}

func (c *Cache) count(name string) {
	if c.reg != nil {
		c.reg.Counter(name).Inc()
	}
}

func (c *Cache) countReason(name, reason string) {
	if c.reg != nil {
		c.reg.Counter(name, "reason", reason).Inc()
	}
}

// gaugeLocked refreshes the size gauges (caller holds mu).
func (c *Cache) gaugeLocked() {
	if c.reg != nil {
		c.reg.Gauge("cgdqp_rescache_bytes").Set(float64(c.bytes))
		c.reg.Gauge("cgdqp_rescache_entries").Set(float64(c.lru.Len()))
	}
}

// Provenance renders the site provenance recorded for a located plan:
// the root result site plus every cross-site SHIP edge with the base
// relations whose data it moves. It is what the policy recheck defends
// and what operators see in diagnostics.
func Provenance(located *plan.Node) []string {
	out := []string{"result@" + located.Loc}
	located.Walk(func(n *plan.Node) bool {
		if n.Kind != plan.Ship {
			return true
		}
		src := n
		if len(n.Children) > 0 {
			src = n.Children[0]
		}
		seen := map[string]bool{}
		var rels []string
		for _, sc := range src.Tables() {
			if sc.Table == nil || seen[sc.Table.Name] {
				continue
			}
			seen[sc.Table.Name] = true
			rels = append(rels, sc.Table.Name)
		}
		sort.Strings(rels)
		out = append(out, strings.Join(rels, ",")+" "+n.FromLoc+"->"+n.ToLoc)
		return true
	})
	sort.Strings(out[1:])
	return out
}
