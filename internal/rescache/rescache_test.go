package rescache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// fixture builds a two-site located plan: scan t1 at A, ship to B.
func fixturePlan(tb testing.TB, table string) *plan.Node {
	tb.Helper()
	t1 := schema.NewTable(table, "db1", "A", 10,
		schema.Column{Name: "a", Type: expr.TInt})
	scan := plan.NewScan(t1, table, -1)
	scan.Loc = "A"
	ship := plan.NewShip(scan, "A", "B")
	return ship
}

type testView struct {
	epochs  map[string]uint64
	policy  uint64
	recheck func(*plan.Node) bool
}

func (v *testView) view() View {
	return View{
		DataEpoch:   func(t string) uint64 { return v.epochs[t] },
		PolicyEpoch: func() uint64 { return v.policy },
		Recheck:     v.recheck,
	}
}

func rowsFixture(n int) []expr.Row {
	rows := make([]expr.Row, n)
	for i := range rows {
		rows[i] = expr.Row{expr.NewInt(int64(i)), expr.NewString("v")}
	}
	return rows
}

func TestKeyVariesWithRootSiteAndOptions(t *testing.T) {
	v := &testView{epochs: map[string]uint64{}}
	p := fixturePlan(t, "t1")
	k1 := Prepare(p, "", v.view()).Key
	k2 := Prepare(p, "wc", v.view()).Key

	p2 := p.Clone()
	p2.Loc = "C"
	p2.ToLoc = "C"
	k3 := Prepare(p2, "", v.view()).Key
	if k1 == k2 {
		t.Fatalf("options fingerprint not in key")
	}
	if k1 == k3 {
		t.Fatalf("root site not in key")
	}
	if k := Prepare(p, "", v.view()).Key; k != k1 {
		t.Fatalf("key not deterministic: %s vs %s", k, k1)
	}
}

func TestHitIsDeepCopiedBothWays(t *testing.T) {
	v := &testView{epochs: map[string]uint64{"t1": 3}}
	c := New(1 << 20)
	p := fixturePlan(t, "t1")
	fill := Prepare(p, "", v.view())

	in := rowsFixture(4)
	audit := []obs.AuditRecord{{From: "A", To: "B", Relations: []string{"t1"}, Rows: 4}}
	c.Put(fill, in, []string{"a", "v"}, executor.RunStats{RowsOut: 4}, audit, 1.5)

	// Mutating what the caller passed in must not reach the cache.
	in[0][0] = expr.NewInt(999)

	r1, ok := c.Get(fill.Key, v.view())
	if !ok {
		t.Fatalf("expected hit")
	}
	if r1.Rows[0][0].I != 0 {
		t.Fatalf("Put aliased caller rows: got %v", r1.Rows[0][0])
	}
	// Mutating a served copy must not corrupt later hits.
	r1.Rows[1][0] = expr.NewInt(-7)
	r1.Columns[0] = "mutated"

	r2, ok := c.Get(fill.Key, v.view())
	if !ok {
		t.Fatalf("expected second hit")
	}
	if r2.Rows[1][0].I != 1 || r2.Columns[0] != "a" {
		t.Fatalf("served copy aliased cache: %v %v", r2.Rows[1][0], r2.Columns)
	}
	if r2.Stats.RowsOut != 4 || len(r2.Audit) != 1 || r2.ShipCost != 1.5 {
		t.Fatalf("stats/audit not replayed: %+v", r2)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Fills != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDataEpochInvalidates(t *testing.T) {
	v := &testView{epochs: map[string]uint64{"t1": 1}}
	c := New(1 << 20)
	fill := Prepare(fixturePlan(t, "t1"), "", v.view())
	c.Put(fill, rowsFixture(2), []string{"a", "v"}, executor.RunStats{RowsOut: 2}, nil, 0)

	if _, ok := c.Get(fill.Key, v.view()); !ok {
		t.Fatalf("expected hit before load")
	}
	v.epochs["t1"]++ // a load into t1
	if _, ok := c.Get(fill.Key, v.view()); ok {
		t.Fatalf("served stale result after data epoch bump")
	}
	st := c.Stats()
	if st.InvalidatedData != 1 || st.Entries != 0 {
		t.Fatalf("stats after invalidation: %+v", st)
	}
	// The entry is gone: even restoring the old epoch cannot revive it.
	v.epochs["t1"]--
	if _, ok := c.Get(fill.Key, v.view()); ok {
		t.Fatalf("invalidated entry revived")
	}
}

func TestPolicyEpochRecheck(t *testing.T) {
	allow := true
	var rechecks int
	v := &testView{epochs: map[string]uint64{}, recheck: func(p *plan.Node) bool {
		rechecks++
		if p == nil || p.Kind != plan.Ship {
			t.Fatalf("recheck got wrong plan: %+v", p)
		}
		return allow
	}}
	c := New(1 << 20)
	fill := Prepare(fixturePlan(t, "t1"), "", v.view())
	c.Put(fill, rowsFixture(1), []string{"a", "v"}, executor.RunStats{}, nil, 0)

	// Unchanged policy epoch: no recheck needed.
	if _, ok := c.Get(fill.Key, v.view()); !ok {
		t.Fatalf("expected hit")
	}
	if rechecks != 0 {
		t.Fatalf("recheck ran with unchanged epoch")
	}

	// Epoch moved but provenance still compliant: served, epoch adopted.
	v.policy = 1
	if _, ok := c.Get(fill.Key, v.view()); !ok {
		t.Fatalf("expected hit after passing recheck")
	}
	if rechecks != 1 {
		t.Fatalf("recheck count %d", rechecks)
	}
	if _, ok := c.Get(fill.Key, v.view()); !ok {
		t.Fatalf("expected hit after epoch adoption")
	}
	if rechecks != 1 {
		t.Fatalf("epoch not adopted after successful recheck (%d rechecks)", rechecks)
	}

	// Epoch moved and provenance now forbidden: dropped, re-run required.
	v.policy = 2
	allow = false
	if _, ok := c.Get(fill.Key, v.view()); ok {
		t.Fatalf("served result with non-compliant provenance")
	}
	st := c.Stats()
	if st.InvalidatedPolicy != 1 || st.Rechecked != 1 || st.Entries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNilRecheckRefusesOnPolicyChange(t *testing.T) {
	v := &testView{epochs: map[string]uint64{}}
	c := New(1 << 20)
	fill := Prepare(fixturePlan(t, "t1"), "", v.view())
	c.Put(fill, rowsFixture(1), nil, executor.RunStats{}, nil, 0)
	v.policy = 1
	if _, ok := c.Get(fill.Key, v.view()); ok {
		t.Fatalf("nil Recheck must refuse entries from older policy epochs")
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	v := &testView{epochs: map[string]uint64{}}
	c := New(4096)
	var fills []*Fill
	for i := 0; i < 8; i++ {
		f := Prepare(fixturePlan(t, fmt.Sprintf("t%d", i)), "", v.view())
		fills = append(fills, f)
		c.Put(f, rowsFixture(8), []string{"a", "v"}, executor.RunStats{}, nil, 0)
	}
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("over budget: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 || st.Entries >= 8 {
		t.Fatalf("expected evictions: %+v", st)
	}
	// Most-recent entries survive; the oldest were evicted.
	if _, ok := c.Get(fills[0].Key, v.view()); ok {
		t.Fatalf("oldest entry survived over newer ones")
	}
	if _, ok := c.Get(fills[7].Key, v.view()); !ok {
		t.Fatalf("newest entry evicted")
	}
}

func TestOversizedResultNotStored(t *testing.T) {
	v := &testView{epochs: map[string]uint64{}}
	c := New(1024)
	fill := Prepare(fixturePlan(t, "t1"), "", v.view())
	c.Put(fill, rowsFixture(1000), nil, executor.RunStats{}, nil, 0)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
}

func TestPurge(t *testing.T) {
	v := &testView{epochs: map[string]uint64{}}
	c := New(1 << 20)
	fill := Prepare(fixturePlan(t, "t1"), "", v.view())
	c.Put(fill, rowsFixture(2), nil, executor.RunStats{}, nil, 0)
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("purge left entries: %+v", st)
	}
	if _, ok := c.Get(fill.Key, v.view()); ok {
		t.Fatalf("hit after purge")
	}
}

func TestProvenanceRendering(t *testing.T) {
	p := fixturePlan(t, "t1")
	got := Provenance(p)
	want := []string{"result@B", "t1 A->B"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("provenance %v, want %v", got, want)
	}
}

// TestConcurrentGetPut drives Get/Put/invalidation from many goroutines
// under -race: the cache must stay consistent and every served result
// must be internally intact.
func TestConcurrentGetPut(t *testing.T) {
	var mu sync.Mutex
	epochs := map[string]uint64{}
	view := View{
		DataEpoch: func(tb string) uint64 {
			mu.Lock()
			defer mu.Unlock()
			return epochs[tb]
		},
		PolicyEpoch: func() uint64 { return 0 },
	}
	c := New(64 << 10)
	plans := make([]*Fill, 6)
	for i := range plans {
		plans[i] = Prepare(fixturePlan(t, fmt.Sprintf("t%d", i)), "", view)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := plans[(g+i)%len(plans)]
				if r, ok := c.Get(f.Key, view); ok {
					if len(r.Rows) != 3 || r.Rows[1][0].I != 1 {
						t.Errorf("corrupt cached result: %+v", r.Rows)
						return
					}
					r.Rows[0][0] = expr.NewInt(-1) // mutate own copy freely
				} else {
					c.Put(f, rowsFixture(3), []string{"a", "v"}, executor.RunStats{RowsOut: 3}, nil, 0)
				}
				if i%37 == 0 {
					mu.Lock()
					epochs[fmt.Sprintf("t%d", g%len(plans))]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
}
