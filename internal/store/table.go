package store

import (
	"fmt"
	"sort"
	"sync"

	"cgdqp/internal/expr"
)

// Table is one persistent table: a page file, the page directory
// (start row of every page), and the B+ tree secondary indexes.
type Table struct {
	eng   *Engine
	name  string
	cols  []string
	types []expr.Type

	mu        sync.RWMutex
	nRows     int64
	pageStart []int64 // pageStart[i] = id of the first row on page i

	idxCols []string          // indexed columns, declaration order
	idx     map[string]*BTree // lowercase column -> index
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names.
func (t *Table) Columns() []string { return t.cols }

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nRows
}

// IndexedColumns returns the indexed column names in declaration order.
func (t *Table) IndexedColumns() []string { return t.idxCols }

// file resolves the pager through the engine.
func (t *Table) file() *tableFile { return t.eng.files[lower(t.name)] }

// Append logs rows to the WAL, applies them to the pages through the
// buffer pool, and maintains the indexes. The engine may checkpoint
// afterwards when the WAL has grown past its threshold.
func (t *Table) Append(rows []expr.Row) error {
	if len(rows) == 0 {
		return nil
	}
	t.eng.mu.RLock()
	err := t.appendLocked(rows, true)
	t.eng.mu.RUnlock()
	if err != nil {
		return err
	}
	return t.eng.maybeCheckpoint()
}

// appendLocked performs the append under the engine read lock; logWAL
// is false during recovery replay (the log already holds the record).
func (t *Table) appendLocked(rows []expr.Row, logWAL bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(t.cols) {
			return fmt.Errorf("store: row width %d does not match table %s (%d columns)", len(r), t.name, len(t.cols))
		}
	}
	if logWAL {
		if err := t.eng.wal.appendInsert(t.name, uint64(t.nRows)+uint64(len(rows)), rows); err != nil {
			return err
		}
	}
	startID := t.nRows
	if err := t.appendPages(rows); err != nil {
		return err
	}
	for i, r := range rows {
		t.indexRow(r, int32(startID+int64(i)))
	}
	return nil
}

// appendPages writes rows into the tail page (opening fresh pages as
// they fill) through the buffer pool; frames stay pinned across rows of
// the same batch.
func (t *Table) appendPages(rows []expr.Row) error {
	pool := t.eng.pool
	tf := t.file()
	var fr *frame
	release := func() {
		if fr != nil {
			pool.Unpin(fr, true)
			fr = nil
		}
	}
	scratch := make([]byte, 0, 256)
	for _, row := range rows {
		scratch = appendRow(scratch[:0], row)
		if len(scratch) > PageSize-pageDataStart(len(t.cols))-2 {
			release()
			return fmt.Errorf("store: row of %d bytes exceeds page capacity in table %s", len(scratch), t.name)
		}
		for {
			if fr == nil {
				if len(t.pageStart) == 0 {
					t.pageStart = append(t.pageStart, 0)
				}
				var err error
				fr, err = pool.Pin(tf, uint32(len(t.pageStart)-1), true)
				if err != nil {
					return err
				}
			}
			if pageAppend(fr.buf, scratch, row) {
				t.nRows++
				break
			}
			release()
			t.pageStart = append(t.pageStart, t.nRows)
		}
	}
	release()
	return nil
}

// indexRow feeds one row into every index.
func (t *Table) indexRow(row expr.Row, id int32) {
	for col, tree := range t.idx {
		if pos := t.colPos(col); pos >= 0 {
			tree.InsertValue(row[pos], id)
		}
	}
}

func (t *Table) colPos(lowerCol string) int {
	for i, c := range t.cols {
		if lower(c) == lowerCol {
			return i
		}
	}
	return -1
}

// pageRowCount returns how many of rows [0, limit) live on page pg.
func (t *Table) pageRowCount(pg int, limit int64) int {
	start := t.pageStart[pg]
	end := limit
	if pg+1 < len(t.pageStart) && t.pageStart[pg+1] < end {
		end = t.pageStart[pg+1]
	}
	if end < start {
		return 0
	}
	return int(end - start)
}

// ScanRows decodes every row (the row-path parity oracle; scans on the
// hot path use Iterator batches instead).
func (t *Table) ScanRows() ([]expr.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]expr.Row, 0, t.nRows)
	pool := t.eng.pool
	tf := t.file()
	for pg := 0; pg < len(t.pageStart); pg++ {
		n := t.pageRowCount(pg, t.nRows)
		if n == 0 {
			continue
		}
		fr, err := pool.Pin(tf, uint32(pg), false)
		if err != nil {
			return nil, err
		}
		out, err = decodePageRows(fr.buf, n, len(t.cols), out)
		pool.Unpin(fr, false)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RowsAt fetches the rows with the given ids (in the given order),
// pinning each touched page once per run of consecutive ids.
func (t *Table) RowsAt(ids []int32) ([]expr.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsAtLocked(ids)
}

func (t *Table) rowsAtLocked(ids []int32) ([]expr.Row, error) {
	pool := t.eng.pool
	tf := t.file()
	out := make([]expr.Row, 0, len(ids))
	var fr *frame
	curPage := -1
	defer func() {
		if fr != nil {
			pool.Unpin(fr, false)
		}
	}()
	for _, id := range ids {
		if int64(id) >= t.nRows || id < 0 {
			return nil, fmt.Errorf("store: row id %d out of range in table %s", id, t.name)
		}
		pg := sort.Search(len(t.pageStart), func(i int) bool { return t.pageStart[i] > int64(id) }) - 1
		if pg != curPage {
			if fr != nil {
				pool.Unpin(fr, false)
				fr = nil
			}
			var err error
			fr, err = pool.Pin(tf, uint32(pg), false)
			if err != nil {
				return nil, err
			}
			curPage = pg
		}
		row, err := decodePageRow(fr.buf, int(int64(id)-t.pageStart[pg]), len(t.cols))
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// index returns the B+ tree for a column, if declared.
func (t *Table) index(col string) (*BTree, int) {
	tree, ok := t.idx[lower(col)]
	if !ok {
		return nil, -1
	}
	return tree, t.colPos(lower(col))
}

// IndexRangeRows returns the rows whose indexed column falls in
// [lo, hi] (nil bound = unbounded, inclusivity per flag), in (key,
// insertion) order. ok is false when the column has no usable index or
// a bound's type does not match the key lane — callers fall back to a
// full scan.
func (t *Table) IndexRangeRows(col string, lo, hi *expr.Value, loInc, hiInc bool) ([]expr.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, _ := t.index(col)
	if tree == nil {
		return nil, false
	}
	var loK, hiK *Key
	if lo != nil {
		k, ok := valueKey(*lo, tree.str)
		if !ok {
			return nil, false
		}
		loK = &k
	}
	if hi != nil {
		k, ok := valueKey(*hi, tree.str)
		if !ok {
			return nil, false
		}
		hiK = &k
	}
	var ids []int32
	tree.Range(loK, hiK, loInc, hiInc, func(_ Key, post []int32) bool {
		ids = append(ids, post...)
		return true
	})
	rows, err := t.rowsAtLocked(ids)
	if err != nil {
		return nil, false
	}
	return rows, true
}

// IndexLookupRows returns the rows whose indexed column equals key, in
// insertion order; ok is false when no usable index exists.
func (t *Table) IndexLookupRows(col string, key expr.Value) ([]expr.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, _ := t.index(col)
	if tree == nil {
		return nil, false
	}
	if key.IsNull() {
		return nil, true // = NULL matches nothing
	}
	ids := tree.LookupValue(key)
	if len(ids) == 0 {
		return nil, true
	}
	rows, err := t.rowsAtLocked(ids)
	if err != nil {
		return nil, false
	}
	return rows, true
}

// IndexStats returns the min/max key (as typed values) and distinct key
// count of a column's index; ok is false without one or when empty.
func (t *Table) IndexStats(col string) (min, max expr.Value, distinct int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, pos := t.index(col)
	if tree == nil || pos < 0 {
		return expr.Value{}, expr.Value{}, 0, false
	}
	loK, hiK, any := tree.MinMax()
	if !any {
		return expr.Value{}, expr.Value{}, 0, false
	}
	ct := expr.TInt
	if pos < len(t.types) {
		ct = t.types[pos]
	}
	return KeyValue(loK, ct), KeyValue(hiK, ct), tree.Len(), true
}

// buildIndexes rebuilds every B+ tree by scanning the pages (called on
// open, after WAL replay has settled the durable row set).
func (t *Table) buildIndexes() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for col, tree := range t.idx {
		_ = col
		*tree = *NewBTree(tree.str)
	}
	if len(t.idx) == 0 {
		return nil
	}
	pool := t.eng.pool
	tf := t.file()
	id := int32(0)
	for pg := 0; pg < len(t.pageStart); pg++ {
		n := t.pageRowCount(pg, t.nRows)
		if n == 0 {
			continue
		}
		fr, err := pool.Pin(tf, uint32(pg), false)
		if err != nil {
			return err
		}
		rows, err := decodePageRows(fr.buf, n, len(t.cols), nil)
		pool.Unpin(fr, false)
		if err != nil {
			return err
		}
		for _, r := range rows {
			t.indexRow(r, id)
			id++
		}
	}
	return nil
}

// Iterator streams a consistent snapshot of the table one page at a
// time, decoding each page straight into the column vectors of an
// expr.Batch when the page is lane-pure (the row path covers the rest).
type Iterator struct {
	t    *Table
	page int
	snap int64
}

// NewIterator opens a snapshot scan.
func (t *Table) NewIterator() *Iterator {
	t.mu.RLock()
	snap := t.nRows
	t.mu.RUnlock()
	return &Iterator{t: t, snap: snap}
}

// NextBatch fills b with the next page's rows; it reports false at the
// end of the snapshot.
func (it *Iterator) NextBatch(b *expr.Batch) (bool, error) {
	t := it.t
	t.mu.RLock()
	defer t.mu.RUnlock()
	for {
		if it.page >= len(t.pageStart) || t.pageStart[it.page] >= it.snap {
			return false, nil
		}
		n := t.pageRowCount(it.page, it.snap)
		if n == 0 {
			it.page++
			continue
		}
		fr, err := t.eng.pool.Pin(t.file(), uint32(it.page), false)
		if err != nil {
			return false, err
		}
		err = decodePageInto(fr.buf, n, len(t.cols), b)
		t.eng.pool.Unpin(fr, false)
		if err != nil {
			return false, err
		}
		it.page++
		return true, nil
	}
}

// decodePageInto decodes the first limit rows of a page into the batch:
// columnar for lane-pure pages, row-backed otherwise.
func decodePageInto(buf []byte, limit, nCols int, b *expr.Batch) error {
	if lanes, pure := pagePure(buf, nCols); pure {
		return decodePageCols(buf, limit, nCols, lanes, b)
	}
	rows, err := decodePageRows(buf, limit, nCols, make([]expr.Row, 0, limit))
	if err != nil {
		return err
	}
	b.SetRows(rows)
	return nil
}
