package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cgdqp/internal/expr"
)

// Options configures one engine (one site's data directory).
type Options struct {
	Dir             string
	BufferPoolBytes int64 // ignored when Pool is set
	Pool            *Pool // optional shared pool (one budget across sites)
	Fsync           bool  // gate fsyncs (off keeps tests fast; on for durability)
}

// walCheckpointBytes triggers an automatic checkpoint (flush pages,
// sync, truncate the log) once the WAL grows past it.
const walCheckpointBytes = 16 << 20

// Engine is one site's storage engine: the table catalog, the pager
// files, the WAL, and a (possibly shared) buffer pool.
type Engine struct {
	dir   string
	fsync bool
	pool  *Pool
	wal   *wal

	// mu: read-held by appends, write-held by checkpoint/close so the
	// WAL never truncates under a half-applied append.
	mu     sync.RWMutex
	tables map[string]*Table
	files  map[string]*tableFile
}

// metaFile persists the table catalog (written before any WAL record
// for a table can exist, so replay always knows every table's shape).
type metaFile struct {
	Tables []tableMeta `json:"tables"`
}

type tableMeta struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Types   []int    `json:"types"`
	Indexed []string `json:"indexed,omitempty"`
}

func lower(s string) string { return strings.ToLower(s) }

// Open opens (or initializes) the engine rooted at opts.Dir: it loads
// the catalog, trusts each table's longest valid page prefix, replays
// the WAL over it, and rebuilds the B+ tree indexes.
func Open(opts Options) (*Engine, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	pool := opts.Pool
	if pool == nil {
		pool = NewPool(opts.BufferPoolBytes)
	}
	e := &Engine{
		dir:    opts.Dir,
		fsync:  opts.Fsync,
		pool:   pool,
		tables: map[string]*Table{},
		files:  map[string]*tableFile{},
	}
	meta, err := e.readMeta()
	if err != nil {
		return nil, err
	}
	for _, tm := range meta.Tables {
		if err := e.loadTable(tm); err != nil {
			return nil, err
		}
	}
	w, err := openWAL(filepath.Join(opts.Dir, "wal.log"), opts.Fsync)
	if err != nil {
		return nil, err
	}
	e.wal = w
	if err := e.recover(); err != nil {
		return nil, err
	}
	for _, t := range e.tables {
		if err := t.buildIndexes(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Engine) metaPath() string { return filepath.Join(e.dir, "meta.json") }

func (e *Engine) readMeta() (metaFile, error) {
	var m metaFile
	data, err := os.ReadFile(e.metaPath())
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: corrupt meta file: %w", err)
	}
	return m, nil
}

// writeMeta persists the catalog atomically (write-temp + rename).
func (e *Engine) writeMeta() error {
	var m metaFile
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.tables[n]
		types := make([]int, len(t.types))
		for i, tt := range t.types {
			types[i] = int(tt)
		}
		m.Tables = append(m.Tables, tableMeta{
			Name:    t.name,
			Columns: t.cols,
			Types:   types,
			Indexed: t.idxCols,
		})
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := e.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, e.metaPath())
}

// loadTable opens a known table's page file and trusts its longest
// valid page prefix (a torn tail page fails its checksum and is cut
// off; the WAL re-applies whatever the prefix is missing).
func (e *Engine) loadTable(tm tableMeta) error {
	t := e.newTable(tm)
	tf, err := openTableFile(filepath.Join(e.dir, safeFileName(tm.Name)), len(tm.Columns), e.fsync)
	if err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	var pg uint32
	for {
		if err := tf.readPage(pg, buf); err != nil {
			break
		}
		t.pageStart = append(t.pageStart, t.nRows)
		t.nRows += int64(pageNRows(buf))
		pg++
	}
	if err := tf.truncatePages(pg); err != nil {
		tf.close()
		return err
	}
	key := lower(tm.Name)
	e.tables[key] = t
	e.files[key] = tf
	return nil
}

// newTable constructs the in-memory table shell from its catalog entry.
func (e *Engine) newTable(tm tableMeta) *Table {
	t := &Table{
		eng:   e,
		name:  tm.Name,
		cols:  append([]string(nil), tm.Columns...),
		types: make([]expr.Type, len(tm.Types)),
		idx:   map[string]*BTree{},
	}
	for i, tt := range tm.Types {
		t.types[i] = expr.Type(tt)
	}
	for _, col := range tm.Indexed {
		pos := t.colPos(lower(col))
		if pos < 0 {
			continue
		}
		ct := expr.TInt
		if pos < len(t.types) {
			ct = t.types[pos]
		}
		if !IndexableType(ct) {
			continue
		}
		t.idxCols = append(t.idxCols, col)
		t.idx[lower(col)] = NewBTree(ct == expr.TString)
	}
	return t
}

// recover replays the WAL: each record whose afterRows is past the
// table's durable row count re-applies exactly the missing suffix.
func (e *Engine) recover() error {
	return e.wal.replay(
		func(name string) (int, bool) {
			t, ok := e.tables[lower(name)]
			if !ok {
				return 0, false
			}
			return len(t.cols), true
		},
		func(rec walRecord) error {
			t := e.tables[lower(rec.table)]
			missing := int64(rec.afterRows) - t.nRows
			if missing <= 0 {
				return nil
			}
			if missing > int64(len(rec.rows)) {
				// A gap means an earlier record was lost; trust only the
				// pages (the record cannot be applied consistently).
				return nil
			}
			return t.appendLocked(rec.rows[int64(len(rec.rows))-missing:], false)
		})
}

// CreateTable declares a table: column names, column types, and which
// columns carry B+ tree indexes. Re-opening an existing table with the
// same shape returns it (the catalog is persistent); a shape mismatch
// is an error.
func (e *Engine) CreateTable(name string, cols []string, types []expr.Type, indexed []string) (*Table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := lower(name)
	if t, ok := e.tables[key]; ok {
		if strings.Join(t.cols, ",") != strings.Join(cols, ",") {
			return nil, fmt.Errorf("store: table %s already exists with different columns", name)
		}
		return t, nil
	}
	tm := tableMeta{Name: name, Columns: cols, Indexed: indexed}
	tm.Types = make([]int, len(types))
	for i, tt := range types {
		tm.Types[i] = int(tt)
	}
	t := e.newTable(tm)
	tf, err := openTableFile(filepath.Join(e.dir, safeFileName(name)), len(cols), e.fsync)
	if err != nil {
		return nil, err
	}
	e.tables[key] = t
	e.files[key] = tf
	if err := e.writeMeta(); err != nil {
		delete(e.tables, key)
		delete(e.files, key)
		tf.close()
		return nil, err
	}
	return t, nil
}

// Table resolves a table by name (case-insensitive).
func (e *Engine) Table(name string) (*Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[lower(name)]
	return t, ok
}

// Tables returns the sorted table names.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// Pool returns the engine's buffer pool.
func (e *Engine) Pool() *Pool { return e.pool }

// Stats snapshots the buffer-pool counters.
func (e *Engine) Stats() PoolStats { return e.pool.Stats() }

// maybeCheckpoint checkpoints once the WAL passes its size threshold.
func (e *Engine) maybeCheckpoint() error {
	e.wal.mu.Lock()
	big := e.wal.size > walCheckpointBytes
	e.wal.mu.Unlock()
	if !big {
		return nil
	}
	return e.Checkpoint()
}

// Checkpoint makes every logged change durable in the pages (flush +
// optional fsync) and truncates the WAL. If some dirty frame is pinned
// by a concurrent reader, truncation is skipped this round and the next
// checkpoint retries.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	all := true
	for _, tf := range e.files {
		ok, err := e.pool.FlushFile(tf)
		if err != nil {
			return err
		}
		if !ok {
			all = false
			continue
		}
		if err := tf.sync(); err != nil {
			return err
		}
	}
	if !all {
		return nil
	}
	return e.wal.truncate()
}

// Close checkpoints and releases every file handle.
func (e *Engine) Close() error {
	if err := e.Checkpoint(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var firstErr error
	for _, tf := range e.files {
		if err := e.pool.DropFile(tf); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := tf.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.files = map[string]*tableFile{}
	e.tables = map[string]*Table{}
	if err := e.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
