// Package store implements the persistent per-site storage engine: a
// slotted-page pager over one file per table, a pin/unpin LRU buffer
// pool with a byte budget, a redo-only write-ahead log that makes loads
// crash-recoverable, and B+ tree secondary indexes over int64 and
// dictionary-interned string keys. The in-memory row store
// (internal/storage) fronts this engine when a data directory is
// configured; plans and results are byte-identical across the two
// backends, so the in-memory store stays the parity oracle.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"cgdqp/internal/expr"
)

// Value codec: each value is one tag byte (low bits: expr.Type, high
// bit: NULL) followed by a type-dependent payload. The codec stores the
// canonical representation of a value — the typed payload lane plus the
// NULL flag — so every value produced by the loaders and parsers
// round-trips exactly (cross-lane residue on hand-crafted Values is not
// representable, matching the exactness rules of expr.BuildColVec).
const nullBit = 0x80

// appendValue encodes v onto buf and returns the extended slice.
func appendValue(buf []byte, v expr.Value) []byte {
	tag := byte(v.T) & 0x7f
	if v.Null {
		buf = append(buf, tag|nullBit)
		return buf
	}
	buf = append(buf, tag)
	switch v.T {
	case expr.TNull:
		// No payload: TNull is NULL by definition.
	case expr.TInt, expr.TDate, expr.TBool:
		buf = binary.AppendVarint(buf, v.I)
	case expr.TFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		buf = append(buf, b[:]...)
	case expr.TString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	default:
		// Unknown future type: store as NULL of that type so decode
		// stays well-formed.
		buf[len(buf)-1] = tag | nullBit
	}
	return buf
}

// decodeValue decodes one value from buf, returning the value and the
// number of bytes consumed.
func decodeValue(buf []byte) (expr.Value, int, error) {
	if len(buf) == 0 {
		return expr.Value{}, 0, fmt.Errorf("store: truncated value")
	}
	tag := buf[0]
	t := expr.Type(tag & 0x7f)
	if t > expr.TDate {
		return expr.Value{}, 0, fmt.Errorf("store: invalid type tag %d", t)
	}
	if tag&nullBit != 0 {
		return expr.Value{T: t, Null: true}, 1, nil
	}
	switch t {
	case expr.TNull:
		return expr.Value{T: expr.TNull}, 1, nil
	case expr.TInt, expr.TDate, expr.TBool:
		i, n := binary.Varint(buf[1:])
		if n <= 0 {
			return expr.Value{}, 0, fmt.Errorf("store: bad varint payload")
		}
		return expr.Value{T: t, I: i}, 1 + n, nil
	case expr.TFloat:
		if len(buf) < 9 {
			return expr.Value{}, 0, fmt.Errorf("store: truncated float payload")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf[1:9]))
		return expr.Value{T: t, F: f}, 9, nil
	case expr.TString:
		l, n := binary.Uvarint(buf[1:])
		if n <= 0 || l > uint64(len(buf)-1-n) {
			return expr.Value{}, 0, fmt.Errorf("store: bad string payload")
		}
		s := string(buf[1+n : 1+n+int(l)])
		return expr.Value{T: t, S: s}, 1 + n + int(l), nil
	}
	return expr.Value{}, 0, fmt.Errorf("store: unreachable type tag %d", t)
}

// appendRow encodes every value of the row back-to-back.
func appendRow(buf []byte, row expr.Row) []byte {
	for _, v := range row {
		buf = appendValue(buf, v)
	}
	return buf
}

// decodeRow decodes nCols values from buf into a fresh row.
func decodeRow(buf []byte, nCols int) (expr.Row, int, error) {
	row := make(expr.Row, nCols)
	off := 0
	for i := 0; i < nCols; i++ {
		v, n, err := decodeValue(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		row[i] = v
		off += n
	}
	return row, off, nil
}

// laneOf classifies a value for per-page lane purity tracking. A column
// is lane-pure when every value shares one concrete lane type, NULLs
// are typed NULLs of that lane, and no value carries cross-lane residue
// — exactly the conditions under which a column vector materializes
// the identical values (see expr.BuildColVec). laneImpure poisons the
// column; the decoder then takes the always-correct row path.
const (
	laneUnset  = 0xFE
	laneImpure = 0xFF
)

// mergeLane folds value v into the column's current lane byte.
func mergeLane(lane byte, v expr.Value) byte {
	if lane == laneImpure {
		return lane
	}
	t := v.T
	if v.Null {
		if lane == laneUnset {
			// A typed NULL seeds the lane; an untyped NULL poisons it
			// (TNull is not a vector lane).
			if t == expr.TNull {
				return laneImpure
			}
			return byte(t)
		}
		if byte(t) != lane {
			return laneImpure
		}
		return lane
	}
	pure := false
	switch t {
	case expr.TInt, expr.TDate:
		pure = v.F == 0 && v.S == ""
	case expr.TFloat:
		pure = v.I == 0 && v.S == ""
	case expr.TString:
		pure = v.I == 0 && v.F == 0
	case expr.TBool:
		pure = (v.I == 0 || v.I == 1) && v.F == 0 && v.S == ""
	}
	if !pure {
		return laneImpure
	}
	if lane == laneUnset {
		return byte(t)
	}
	if byte(t) != lane {
		return laneImpure
	}
	return lane
}
