package store

import (
	"sort"
	"testing"

	"cgdqp/internal/expr"
)

// FuzzPageDecode throws arbitrary bytes at the page validator and both
// decoders: no input may panic, and a page that passes validation must
// decode without error through the row path; when the lane bytes claim
// purity, the columnar decode must materialize the same values as the
// row decode.
func FuzzPageDecode(f *testing.F) {
	// Seed with a genuine page.
	seed := make([]byte, PageSize)
	initPage(seed, 3)
	for i := 0; i < 40; i++ {
		row := expr.Row{expr.NewInt(int64(i)), expr.NewString("seed"), expr.NewFloat(1.25)}
		enc := appendRow(nil, row)
		pageAppend(seed, enc, row)
	}
	sealPage(seed)
	f.Add(seed, uint8(3))
	f.Add(make([]byte, PageSize), uint8(1))
	f.Add([]byte{1, 2, 3}, uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, nColsRaw uint8) {
		nCols := int(nColsRaw%8) + 1
		buf := make([]byte, PageSize)
		copy(buf, data)
		if !validPage(buf, nCols) {
			return
		}
		n := pageNRows(buf)
		if n > maxRowsPerPage {
			return
		}
		rows, rowErr := decodePageRows(buf, n, nCols, nil)
		var b expr.Batch
		colErr := decodePageInto(buf, n, nCols, &b)
		if rowErr != nil || colErr != nil {
			// Corrupt row payloads behind a forged checksum are allowed
			// to error — but both paths must agree that they error.
			return
		}
		if b.Len() != len(rows) {
			t.Fatalf("decoders disagree on row count: %d vs %d", b.Len(), len(rows))
		}
		for i, r := range rows {
			got := b.Row(i)
			for c := range r {
				if got[c] != r[c] {
					t.Fatalf("row %d col %d: columnar %+v vs row %+v", i, c, got[c], r[c])
				}
			}
		}
	})
}

// FuzzBTreeOps drives the B+ tree with a fuzz-derived op sequence and
// cross-checks every lookup and range scan against a reference map.
func FuzzBTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252}, false)
	f.Add([]byte("hello world btree fuzzing"), true)

	f.Fuzz(func(t *testing.T, ops []byte, stringKeys bool) {
		tree := NewBTree(stringKeys)
		ref := map[Key][]int32{}
		mkKey := func(b byte) Key {
			if stringKeys {
				return Key{S: string([]byte{'k', b}), Str: true}
			}
			return Key{I: int64(int8(b))}
		}
		var id int32
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			k := mkKey(arg)
			switch op % 3 {
			case 0, 1: // insert-heavy
				tree.Insert(k, id)
				ref[k] = append(ref[k], id)
				id++
			case 2: // point lookup
				got := tree.Lookup(k)
				want := ref[k]
				if len(got) != len(want) {
					t.Fatalf("lookup %v: got %d ids, want %d", k, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("lookup %v: postings diverge at %d", k, j)
					}
				}
			}
		}
		if tree.Len() != len(ref) {
			t.Fatalf("distinct keys: tree %d, ref %d", tree.Len(), len(ref))
		}
		// Full-range walk must visit every key in sorted order with the
		// exact insertion-ordered postings.
		keys := make([]Key, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
		i := 0
		tree.Range(nil, nil, true, true, func(k Key, ids []int32) bool {
			if i >= len(keys) || !keyEq(k, keys[i]) {
				t.Fatalf("range walk out of order at %d: %v", i, k)
			}
			want := ref[k]
			if len(ids) != len(want) {
				t.Fatalf("range %v: got %d ids, want %d", k, len(ids), len(want))
			}
			i++
			return true
		})
		if i != len(keys) {
			t.Fatalf("range walk visited %d keys, want %d", i, len(keys))
		}
		// Bounded range against the reference.
		if len(keys) > 2 {
			lo, hi := keys[len(keys)/4], keys[3*len(keys)/4]
			var want []Key
			for _, k := range keys {
				if keyLess(k, lo) || keyLess(hi, k) || keyEq(k, hi) {
					continue
				}
				want = append(want, k)
			}
			var got []Key
			tree.Range(&lo, &hi, true, false, func(k Key, _ []int32) bool {
				got = append(got, k)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("bounded range: got %d keys, want %d", len(got), len(want))
			}
		}
	})
}

// FuzzValueCodec round-trips fuzz-shaped values through the row codec.
func FuzzValueCodec(f *testing.F) {
	f.Add(uint8(1), false, int64(42), 3.14, "str")
	f.Fuzz(func(t *testing.T, typ uint8, null bool, i int64, fv float64, s string) {
		v := expr.Value{T: expr.Type(typ % 6), Null: null}
		switch v.T {
		case expr.TInt, expr.TDate:
			v.I = i
		case expr.TBool:
			v.I = i & 1
		case expr.TFloat:
			v.F = fv
		case expr.TString:
			v.S = s
		}
		if v.Null {
			v = expr.Value{T: v.T, Null: true}
		}
		enc := appendValue(nil, v)
		got, n, err := decodeValue(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if v.T == expr.TNull && !v.Null {
			v.Null = false // TNull round-trips with Null bit clear
		}
		if got != v {
			t.Fatalf("round trip: %+v -> %+v", v, got)
		}
	})
}
