package store

import (
	"sort"

	"cgdqp/internal/expr"
)

// B+ tree secondary index. Keys are either int64 (TInt/TDate/TBool
// payloads) or dictionary-interned strings; each key holds the row ids
// of every matching row in insertion order, so a range scan yields rows
// in (key, insertion) order — identically for the in-memory and the
// persistent backend, which keeps plans and results byte-identical
// across the store axis. NULLs are not indexed: no range or equality
// predicate matches NULL, so the residual predicate never needs them.
//
// The tree is an in-memory structure rebuilt on open by scanning the
// valid page prefix (the WAL recovers the pages first, the indexes
// follow from them — they carry no separate durability).
const btreeOrder = 64 // max children per interior node / keys per leaf

// Key is one index key: the int64 lane or the interned string lane.
type Key struct {
	I   int64
	S   string
	Str bool
}

func keyLess(a, b Key) bool {
	if a.Str {
		return a.S < b.S
	}
	return a.I < b.I
}

func keyEq(a, b Key) bool {
	if a.Str {
		return a.S == b.S
	}
	return a.I == b.I
}

// valueKey converts a value into an index key; ok is false for NULLs
// and non-indexable types (which are simply not indexed).
func valueKey(v expr.Value, str bool) (Key, bool) {
	if v.IsNull() {
		return Key{}, false
	}
	if str {
		if v.T != expr.TString {
			return Key{}, false
		}
		return Key{S: v.S, Str: true}, true
	}
	switch v.T {
	case expr.TInt, expr.TDate, expr.TBool:
		return Key{I: v.I}, true
	}
	return Key{}, false
}

// IndexableType reports whether a column of type t can carry a B+ tree
// index (int64-class or string keys).
func IndexableType(t expr.Type) bool {
	switch t {
	case expr.TInt, expr.TDate, expr.TBool, expr.TString:
		return true
	}
	return false
}

// bnode is one tree node; interior nodes route by keys[i] = smallest
// key in kids[i+1], leaves hold the per-key row-id postings.
type bnode struct {
	leaf bool
	keys []Key
	kids []*bnode  // interior
	vals [][]int32 // leaf postings, insertion order
	next *bnode    // leaf chain
}

// BTree is one secondary index over a single column.
type BTree struct {
	str   bool
	root  *bnode
	first *bnode
	keys  int               // distinct key count
	rows  int64             // indexed (non-null) row count
	dict  map[string]string // string-key dictionary: one canonical copy per distinct key
}

// NewBTree creates an empty index with int64 or string keys.
func NewBTree(stringKeys bool) *BTree {
	leaf := &bnode{leaf: true}
	t := &BTree{str: stringKeys, root: leaf, first: leaf}
	if stringKeys {
		t.dict = map[string]string{}
	}
	return t
}

// Len returns the number of distinct keys.
func (t *BTree) Len() int { return t.keys }

// Rows returns how many (non-null) rows the index covers.
func (t *BTree) Rows() int64 { return t.rows }

// InsertValue indexes row id under value v; NULLs and lane mismatches
// are skipped.
func (t *BTree) InsertValue(v expr.Value, id int32) {
	k, ok := valueKey(v, t.str)
	if !ok {
		return
	}
	t.Insert(k, id)
}

// Insert indexes row id under key k.
func (t *BTree) Insert(k Key, id int32) {
	if t.str {
		if s, ok := t.dict[k.S]; ok {
			k.S = s
		} else {
			t.dict[k.S] = k.S
		}
	}
	t.rows++
	midKey, right := t.insertInto(t.root, k, id)
	if right != nil {
		t.root = &bnode{keys: []Key{midKey}, kids: []*bnode{t.root, right}}
	}
}

// insertInto descends to the leaf for k; on overflow the node splits
// and the separator plus new right sibling bubble up.
func (t *BTree) insertInto(n *bnode, k Key, id int32) (Key, *bnode) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return !keyLess(n.keys[i], k) })
		if i < len(n.keys) && keyEq(n.keys[i], k) {
			n.vals[i] = append(n.vals[i], id)
			return Key{}, nil
		}
		n.keys = append(n.keys, Key{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = []int32{id}
		t.keys++
		if len(n.keys) <= btreeOrder {
			return Key{}, nil
		}
		return t.splitLeaf(n)
	}
	i := sort.Search(len(n.keys), func(i int) bool { return keyLess(k, n.keys[i]) })
	midKey, right := t.insertInto(n.kids[i], k, id)
	if right == nil {
		return Key{}, nil
	}
	n.keys = append(n.keys, Key{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = right
	if len(n.kids) <= btreeOrder {
		return Key{}, nil
	}
	return t.splitInterior(n)
}

func (t *BTree) splitLeaf(n *bnode) (Key, *bnode) {
	mid := len(n.keys) / 2
	right := &bnode{
		leaf: true,
		keys: append([]Key(nil), n.keys[mid:]...),
		vals: append([][]int32(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (t *BTree) splitInterior(n *bnode) (Key, *bnode) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &bnode{
		keys: append([]Key(nil), n.keys[mid+1:]...),
		kids: append([]*bnode(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.kids = n.kids[: mid+1 : mid+1]
	return sep, right
}

// Range walks keys in [lo, hi] in order (nil bound = unbounded,
// inclusivity per flag), calling fn with each key's postings until fn
// returns false.
func (t *BTree) Range(lo, hi *Key, loInc, hiInc bool, fn func(k Key, ids []int32) bool) {
	n := t.root
	for !n.leaf {
		i := 0
		if lo != nil {
			i = sort.Search(len(n.keys), func(i int) bool { return keyLess(*lo, n.keys[i]) })
		}
		n = n.kids[i]
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(n.keys), func(i int) bool { return !keyLess(n.keys[i], *lo) })
	}
	for n != nil {
		for i := start; i < len(n.keys); i++ {
			k := n.keys[i]
			if lo != nil && !loInc && keyEq(k, *lo) {
				continue
			}
			if hi != nil {
				if keyLess(*hi, k) || (!hiInc && keyEq(k, *hi)) {
					return
				}
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
		start = 0
	}
}

// Lookup returns the postings for key k (nil when absent).
func (t *BTree) Lookup(k Key) []int32 {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return keyLess(k, n.keys[i]) })
		n = n.kids[i]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return !keyLess(n.keys[i], k) })
	if i < len(n.keys) && keyEq(n.keys[i], k) {
		return n.vals[i]
	}
	return nil
}

// LookupValue returns the postings for value v.
func (t *BTree) LookupValue(v expr.Value) []int32 {
	k, ok := valueKey(v, t.str)
	if !ok {
		return nil
	}
	return t.Lookup(k)
}

// MinMax returns the smallest and largest key; ok is false on an empty
// index.
func (t *BTree) MinMax() (lo, hi Key, ok bool) {
	if t.keys == 0 {
		return Key{}, Key{}, false
	}
	n := t.first
	for n != nil && len(n.keys) == 0 {
		n = n.next
	}
	if n == nil {
		return Key{}, Key{}, false
	}
	lo = n.keys[0]
	m := t.root
	for !m.leaf {
		m = m.kids[len(m.kids)-1]
	}
	hi = m.keys[len(m.keys)-1]
	return lo, hi, true
}

// RangeIDs collects the row ids of every key in [lo, hi] (nil bound =
// unbounded, inclusivity per flag) in (key, insertion) order; ok is
// false when a bound's type does not fit the key lane.
func RangeIDs(t *BTree, lo, hi *expr.Value, loInc, hiInc bool) ([]int32, bool) {
	var loK, hiK *Key
	if lo != nil {
		k, ok := valueKey(*lo, t.str)
		if !ok {
			return nil, false
		}
		loK = &k
	}
	if hi != nil {
		k, ok := valueKey(*hi, t.str)
		if !ok {
			return nil, false
		}
		hiK = &k
	}
	var ids []int32
	t.Range(loK, hiK, loInc, hiInc, func(_ Key, post []int32) bool {
		ids = append(ids, post...)
		return true
	})
	return ids, true
}

// KeyValue converts k back into an expr.Value of column type t.
func KeyValue(k Key, colType expr.Type) expr.Value {
	if k.Str {
		return expr.NewString(k.S)
	}
	return expr.Value{T: colType, I: k.I}
}
