package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cgdqp/internal/expr"
)

// copyDir clones a data directory so a "crashed" state can be reopened
// without disturbing the original.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// walBoundaries returns the byte offset after each record in a WAL
// image (record framing: u32 len, u32 crc, payload).
func walBoundaries(t *testing.T, walData []byte) []int {
	t.Helper()
	var bounds []int
	off := 0
	for off+8 <= len(walData) {
		plen := int(binary.LittleEndian.Uint32(walData[off : off+4]))
		if off+8+plen > len(walData) {
			break
		}
		off += 8 + plen
		bounds = append(bounds, off)
	}
	if off != len(walData) {
		t.Fatalf("WAL has %d trailing bytes past the last record", len(walData)-off)
	}
	return bounds
}

// TestWALKillPoints is the kill-point harness: a sequence of loads is
// applied with pages left dirty in the pool (never flushed), the WAL is
// truncated at every record boundary AND at several mid-record offsets,
// and each truncated image must reopen to exactly the state after some
// whole number of loads — never a torn table.
func TestWALKillPoints(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, 0)
	tabA, err := e.CreateTable("alpha", []string{"k", "s"},
		[]expr.Type{expr.TInt, expr.TString}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := e.CreateTable("beta", []string{"v"}, []expr.Type{expr.TInt}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// One WAL record per load step; record the expected state of both
	// tables after every step.
	type state struct{ a, b []expr.Row }
	states := []state{{}}
	loads := []struct {
		tab  *Table
		rows []expr.Row
	}{
		{tabA, []expr.Row{{expr.NewInt(1), expr.NewString("x")}, {expr.NewInt(2), expr.NewString("y")}}},
		{tabB, []expr.Row{intRow(10), intRow(11), intRow(12)}},
		{tabA, func() []expr.Row { // spans multiple pages
			var rs []expr.Row
			for i := 0; i < 900; i++ {
				rs = append(rs, expr.Row{expr.NewInt(int64(i + 3)), expr.NewString("zzzzzzzzzzzzzzzz")})
			}
			return rs
		}()},
		{tabB, []expr.Row{intRow(13)}},
	}
	for _, ld := range loads {
		if err := ld.tab.Append(ld.rows); err != nil {
			t.Fatal(err)
		}
		prev := states[len(states)-1]
		st := state{a: prev.a, b: prev.b}
		if ld.tab == tabA {
			st.a = append(append([]expr.Row(nil), st.a...), ld.rows...)
		} else {
			st.b = append(append([]expr.Row(nil), st.b...), ld.rows...)
		}
		states = append(states, st)
	}

	// Deliberately NOT closing the engine: the pages live dirty in the
	// pool, so the copied directory only has the catalog + the WAL —
	// the crash-iest possible image.
	walData, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	bounds := walBoundaries(t, walData)
	if len(bounds) != len(loads) {
		t.Fatalf("expected %d WAL records, found %d", len(loads), len(bounds))
	}

	check := func(truncAt int, wantState int) {
		t.Helper()
		crash := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(crash, "wal.log"), walData[:truncAt], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Options{Dir: crash})
		if err != nil {
			t.Fatalf("reopen at kill point %d: %v", truncAt, err)
		}
		defer re.Close()
		want := states[wantState]
		for _, tc := range []struct {
			name string
			want []expr.Row
		}{{"alpha", want.a}, {"beta", want.b}} {
			tab, ok := re.Table(tc.name)
			if !ok {
				t.Fatalf("kill point %d: table %s missing", truncAt, tc.name)
			}
			got, err := tab.ScanRows()
			if err != nil {
				t.Fatalf("kill point %d: scan %s: %v", truncAt, tc.name, err)
			}
			if len(got) == 0 && len(tc.want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("kill point %d: %s has %d rows, want %d (state %d)",
					truncAt, tc.name, len(got), len(tc.want), wantState)
			}
		}
	}

	// Every record boundary reopens to exactly that many loads applied.
	check(0, 0)
	for i, b := range bounds {
		check(b, i+1)
	}
	// Mid-record truncations (torn tail) reopen to the pre-record state.
	for i, b := range bounds {
		start := 0
		if i > 0 {
			start = bounds[i-1]
		}
		for _, cut := range []int{start + 1, start + 7, start + (b-start)/2, b - 1} {
			if cut <= start || cut >= b {
				continue
			}
			check(cut, i)
		}
	}
}

// TestTornPageRecovered corrupts the page file of a crashed image; the
// invalid page prefix must be discarded and rebuilt from the WAL.
func TestTornPageRecovered(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, 0)
	tab, err := e.CreateTable("demo", []string{"k"}, []expr.Type{expr.TInt}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	var want []expr.Row
	for i := 0; i < 2000; i++ {
		want = append(want, intRow(int64(i)))
	}
	if err := tab.Append(want); err != nil {
		t.Fatal(err)
	}

	crash := copyDir(t, dir)
	// Simulate a torn flush: garbage where a page would have landed.
	garbage := make([]byte, PageSize+137)
	for i := range garbage {
		garbage[i] = byte(i * 31)
	}
	if err := os.WriteFile(filepath.Join(crash, safeFileName("demo")), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: crash})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tab2, _ := re.Table("demo")
	got, err := tab2.ScanRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("torn page recovery: got %d rows, want %d", len(got), len(want))
	}
	lo := expr.NewInt(1500)
	rows, ok := tab2.IndexRangeRows("k", &lo, nil, true, true)
	if !ok || len(rows) != 500 {
		t.Fatalf("index after torn-page recovery: ok=%v n=%d", ok, len(rows))
	}
}

// TestCheckpointThenCrash mixes a durable page prefix with WAL-only
// tail loads.
func TestCheckpointThenCrash(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, 0)
	tab, err := e.CreateTable("demo", []string{"k"}, []expr.Type{expr.TInt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []expr.Row
	load := func(n int) {
		var rs []expr.Row
		for i := 0; i < n; i++ {
			rs = append(rs, intRow(int64(len(want)+i)))
		}
		if err := tab.Append(rs); err != nil {
			t.Fatal(err)
		}
		want = append(want, rs...)
	}
	load(1500)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	load(700) // only in the WAL

	crash := copyDir(t, dir)
	re, err := Open(Options{Dir: crash})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tab2, _ := re.Table("demo")
	got, err := tab2.ScanRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint+WAL recovery: got %d rows, want %d", len(got), len(want))
	}
}
