package store

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// tableFile is the on-disk pager for one table: a flat file of
// fixed-size checksummed pages, addressed by page number.
type tableFile struct {
	path  string
	f     *os.File
	nCols int
	fsync bool
}

// safeFileName maps a table name (which may contain a '#fragment'
// suffix) onto a filesystem-safe file name.
func safeFileName(table string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		case r == '#':
			return '.'
		default:
			return '_'
		}
	}, table)
	return mapped + ".tbl"
}

// openTableFile opens (creating if needed) the page file for a table.
func openTableFile(path string, nCols int, fsync bool) (*tableFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open table file: %w", err)
	}
	return &tableFile{path: path, f: f, nCols: nCols, fsync: fsync}, nil
}

// diskPages returns how many whole pages the file currently holds.
func (tf *tableFile) diskPages() (uint32, error) {
	st, err := tf.f.Stat()
	if err != nil {
		return 0, err
	}
	return uint32(st.Size() / PageSize), nil
}

// readPage reads page number pg into buf and validates its checksum.
func (tf *tableFile) readPage(pg uint32, buf []byte) error {
	if _, err := tf.f.ReadAt(buf[:PageSize], int64(pg)*PageSize); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("store: page %d of %s past end of file", pg, tf.path)
		}
		return err
	}
	if !validPage(buf, tf.nCols) {
		return fmt.Errorf("store: page %d of %s failed checksum", pg, tf.path)
	}
	return nil
}

// writePage seals buf (checksum) and writes it as page number pg.
func (tf *tableFile) writePage(pg uint32, buf []byte) error {
	sealPage(buf)
	if _, err := tf.f.WriteAt(buf[:PageSize], int64(pg)*PageSize); err != nil {
		return err
	}
	return nil
}

// sync flushes the file to stable storage when fsync is enabled.
func (tf *tableFile) sync() error {
	if !tf.fsync {
		return nil
	}
	return tf.f.Sync()
}

// truncatePages drops every page from pg onward (recovery discards a
// torn tail before replaying the WAL over it).
func (tf *tableFile) truncatePages(pg uint32) error {
	return tf.f.Truncate(int64(pg) * PageSize)
}

func (tf *tableFile) close() error { return tf.f.Close() }
