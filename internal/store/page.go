package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"cgdqp/internal/expr"
)

// Slotted-page layout (fixed PageSize bytes):
//
//	[0:4)    magic "CGSP"
//	[4:6)    format version
//	[6:8)    nRows
//	[8:12)   freeOff — first free byte of the row-data heap
//	[12:16)  crc32 (IEEE) over the whole page with this field zeroed
//	[16:20)  reserved (LSN slot for a future undo/redo upgrade)
//	[20:20+nCols) per-column lane byte: the concrete expr.Type every
//	         value of that column on this page shares, or laneImpure —
//	         pure columns decode straight into column vectors
//	[20+nCols:freeOff) row-data heap, rows encoded with the value codec
//	[...:PageSize) slot directory growing down from the page end:
//	         slot i is a u16 heap offset at PageSize-2(i+1)
const (
	PageSize    = 8192
	pageMagic   = 0x43475350 // "CGSP"
	pageVersion = 1
	pageHdrSize = 20
)

// pageDataStart returns the offset of the row-data heap.
func pageDataStart(nCols int) int { return pageHdrSize + nCols }

// initPage formats buf as an empty page for a table with nCols columns.
func initPage(buf []byte, nCols int) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], pageMagic)
	binary.LittleEndian.PutUint16(buf[4:6], pageVersion)
	binary.LittleEndian.PutUint16(buf[6:8], 0)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(pageDataStart(nCols)))
	for c := 0; c < nCols; c++ {
		buf[pageHdrSize+c] = laneUnset
	}
}

func pageNRows(buf []byte) int   { return int(binary.LittleEndian.Uint16(buf[6:8])) }
func pageFreeOff(buf []byte) int { return int(binary.LittleEndian.Uint32(buf[8:12])) }

// pageSlot returns the heap offset of row i.
func pageSlot(buf []byte, i int) int {
	return int(binary.LittleEndian.Uint16(buf[PageSize-2*(i+1):]))
}

// pageChecksum computes the page CRC with the crc field treated as zero.
func pageChecksum(buf []byte) uint32 {
	crc := crc32.ChecksumIEEE(buf[0:12])
	var zero [4]byte
	crc = crc32.Update(crc, crc32.IEEETable, zero[:])
	return crc32.Update(crc, crc32.IEEETable, buf[16:PageSize])
}

// sealPage stamps the checksum before the page goes to disk.
func sealPage(buf []byte) {
	binary.LittleEndian.PutUint32(buf[12:16], pageChecksum(buf))
}

// validPage reports whether buf carries a well-formed, checksummed page
// for a table with nCols columns.
func validPage(buf []byte, nCols int) bool {
	if len(buf) != PageSize {
		return false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != pageMagic {
		return false
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != pageVersion {
		return false
	}
	if binary.LittleEndian.Uint32(buf[12:16]) != pageChecksum(buf) {
		return false
	}
	n := pageNRows(buf)
	free := pageFreeOff(buf)
	if free < pageDataStart(nCols) || free > PageSize-2*n {
		return false
	}
	return true
}

// pageAppend adds one encoded row to the page in place, updating the
// slot directory and the per-column lane bytes. It reports false when
// the row does not fit (the caller then opens a fresh page).
func pageAppend(buf []byte, enc []byte, row expr.Row) bool {
	n := pageNRows(buf)
	free := pageFreeOff(buf)
	if free+len(enc) > PageSize-2*(n+1) || n == maxRowsPerPage {
		return false
	}
	copy(buf[free:], enc)
	binary.LittleEndian.PutUint16(buf[PageSize-2*(n+1):], uint16(free))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(n+1))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(free+len(enc)))
	for c, v := range row {
		buf[pageHdrSize+c] = mergeLane(buf[pageHdrSize+c], v)
	}
	return true
}

// maxRowsPerPage bounds the slot directory (u16 offsets, 2 bytes each).
const maxRowsPerPage = 2048

// decodePageRow decodes row i of the page.
func decodePageRow(buf []byte, i, nCols int) (expr.Row, error) {
	n := pageNRows(buf)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("store: row %d out of range (page holds %d)", i, n)
	}
	off := pageSlot(buf, i)
	if off < pageDataStart(nCols) || off >= PageSize {
		return nil, fmt.Errorf("store: corrupt slot offset %d", off)
	}
	row, _, err := decodeRow(buf[off:], nCols)
	return row, err
}

// decodePageRows decodes rows [0, limit) of the page into out.
func decodePageRows(buf []byte, limit, nCols int, out []expr.Row) ([]expr.Row, error) {
	for i := 0; i < limit; i++ {
		row, err := decodePageRow(buf, i, nCols)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// pagePure reports whether every column of the page is lane-pure for
// the first limit rows, returning the lane types. Purity is recorded
// cumulatively at append time, so a page that later turned impure
// conservatively reports impure for earlier rows too — the row path is
// always correct, just not columnar.
func pagePure(buf []byte, nCols int) ([]expr.Type, bool) {
	lanes := make([]expr.Type, nCols)
	for c := 0; c < nCols; c++ {
		b := buf[pageHdrSize+c]
		if b == laneImpure || b == laneUnset || expr.Type(b) == expr.TNull || expr.Type(b) > expr.TDate {
			return nil, false
		}
		lanes[c] = expr.Type(b)
	}
	return lanes, true
}

// decodePageCols decodes the first limit rows of a lane-pure page
// column-wise into the batch via the producer protocol, yielding exact
// owned vectors (same exactness contract as expr.BuildColVec).
func decodePageCols(buf []byte, limit, nCols int, lanes []expr.Type, b *expr.Batch) error {
	b.StartCols(nCols, limit)
	vecs := make([]*expr.Vec, nCols)
	for c := 0; c < nCols; c++ {
		v := b.OwnCol(c)
		v.Reset(lanes[c], limit)
		v.NullT = lanes[c]
		v.Exact = true
		vecs[c] = v
	}
	for i := 0; i < limit; i++ {
		off := pageSlot(buf, i)
		if off < pageDataStart(nCols) || off >= PageSize {
			return fmt.Errorf("store: corrupt slot offset %d", off)
		}
		rowBuf := buf[off:]
		pos := 0
		for c := 0; c < nCols; c++ {
			val, n, err := decodeValue(rowBuf[pos:])
			if err != nil {
				return err
			}
			pos += n
			v := vecs[c]
			if val.Null {
				v.EnsureNull().Set(i)
				continue
			}
			switch lanes[c] {
			case expr.TInt, expr.TDate:
				v.I[i] = val.I
			case expr.TFloat:
				v.F[i] = val.F
			case expr.TString:
				v.S[i] = val.S
			case expr.TBool:
				if val.I != 0 {
					v.B.Set(i)
				}
			}
		}
	}
	b.FinishCols()
	return nil
}
