package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// PoolStats is a point-in-time snapshot of buffer-pool traffic,
// exported as the cgdqp_store_* metrics.
type PoolStats struct {
	Hits       int64 // page requests served from memory
	Misses     int64 // page requests that went to disk
	Evictions  int64 // frames recycled to stay within budget
	Writebacks int64 // dirty frames flushed on eviction or checkpoint
	Resident   int64 // frames currently held
}

// frameKey addresses one page of one table file.
type frameKey struct {
	file *tableFile
	page uint32
}

// frame is one resident page: the buffer, a pin count that fences
// eviction, and a dirty flag that forces a writeback before recycling.
type frame struct {
	key   frameKey
	buf   []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// Pool is the shared pin/unpin LRU buffer pool. One pool serves every
// site engine so the configured byte budget is global; the budget is
// rounded down to whole frames (minimum one). Pinned frames are never
// evicted — if every frame is pinned the pool grows past its budget
// rather than deadlocking, and shrinks back as pins drain.
type Pool struct {
	mu           sync.Mutex
	budgetFrames int
	frames       map[frameKey]*frame
	lru          *list.List // front = most recently used

	hits, misses, evictions, writebacks atomic.Int64
}

// DefaultPoolBytes is the buffer budget used when none is configured.
const DefaultPoolBytes = 64 << 20

// NewPool creates a buffer pool with the given byte budget.
func NewPool(budgetBytes int64) *Pool {
	if budgetBytes <= 0 {
		budgetBytes = DefaultPoolBytes
	}
	n := int(budgetBytes / PageSize)
	if n < 1 {
		n = 1
	}
	return &Pool{budgetFrames: n, frames: map[frameKey]*frame{}, lru: list.New()}
}

// Pin returns the frame holding page pg of tf, reading it from disk on
// a miss (or formatting a fresh page when create is set and the page is
// not on disk yet). The frame stays resident until the matching Unpin.
func (p *Pool) Pin(tf *tableFile, pg uint32, create bool) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[frameKey{tf, pg}]; ok {
		p.hits.Add(1)
		fr.pins++
		p.lru.MoveToFront(fr.elem)
		return fr, nil
	}
	p.misses.Add(1)
	fr, err := p.allocFrame(frameKey{tf, pg})
	if err != nil {
		return nil, err
	}
	onDisk, err := tf.diskPages()
	if err == nil && pg < onDisk {
		err = tf.readPage(pg, fr.buf)
	} else if err == nil {
		if !create {
			err = fmt.Errorf("store: page %d of %s does not exist", pg, tf.path)
		} else {
			initPage(fr.buf, tf.nCols)
		}
	}
	if err != nil {
		p.dropFrame(fr)
		return nil, err
	}
	fr.pins = 1
	return fr, nil
}

// allocFrame carves out a frame for key, evicting the least recently
// used unpinned frame when the pool is at budget. Caller holds p.mu.
func (p *Pool) allocFrame(key frameKey) (*frame, error) {
	var fr *frame
	if len(p.frames) >= p.budgetFrames {
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			cand := e.Value.(*frame)
			if cand.pins > 0 {
				continue
			}
			if cand.dirty {
				if err := cand.key.file.writePage(cand.key.page, cand.buf); err != nil {
					return nil, err
				}
				p.writebacks.Add(1)
			}
			p.evictions.Add(1)
			delete(p.frames, cand.key)
			p.lru.Remove(e)
			fr = cand
			break
		}
	}
	if fr == nil {
		fr = &frame{buf: make([]byte, PageSize)}
	}
	fr.key = key
	fr.pins = 0
	fr.dirty = false
	p.frames[key] = fr
	fr.elem = p.lru.PushFront(fr)
	return fr, nil
}

// dropFrame discards a frame whose fill failed. Caller holds p.mu.
func (p *Pool) dropFrame(fr *frame) {
	delete(p.frames, fr.key)
	p.lru.Remove(fr.elem)
}

// Unpin releases a pinned frame, recording whether the caller dirtied
// it.
func (p *Pool) Unpin(fr *frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dirty {
		fr.dirty = true
	}
	if fr.pins > 0 {
		fr.pins--
	}
}

// FlushFile writes back every dirty unpinned frame of tf. It reports
// whether ALL of tf's dirty frames were flushed (a concurrently pinned
// dirty frame stays resident and blocks WAL truncation this round).
func (p *Pool) FlushFile(tf *tableFile) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	all := true
	for _, fr := range p.frames {
		if fr.key.file != tf || !fr.dirty {
			continue
		}
		if fr.pins > 0 {
			all = false
			continue
		}
		if err := tf.writePage(fr.key.page, fr.buf); err != nil {
			return false, err
		}
		p.writebacks.Add(1)
		fr.dirty = false
	}
	return all, nil
}

// DropFile evicts every frame of tf (flushing dirty ones) — used when a
// table file closes.
func (p *Pool) DropFile(tf *tableFile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.frames {
		if key.file != tf {
			continue
		}
		if fr.dirty {
			if err := tf.writePage(key.page, fr.buf); err != nil {
				return err
			}
			p.writebacks.Add(1)
		}
		delete(p.frames, key)
		p.lru.Remove(fr.elem)
	}
	return nil
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	resident := int64(len(p.frames))
	p.mu.Unlock()
	return PoolStats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Evictions:  p.evictions.Load(),
		Writebacks: p.writebacks.Load(),
		Resident:   resident,
	}
}
