package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cgdqp/internal/expr"
)

func openTestEngine(t *testing.T, dir string, poolBytes int64) *Engine {
	t.Helper()
	e, err := Open(Options{Dir: dir, BufferPoolBytes: poolBytes})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

func intRow(vals ...int64) expr.Row {
	r := make(expr.Row, len(vals))
	for i, v := range vals {
		r[i] = expr.NewInt(v)
	}
	return r
}

// mixedRows exercises every type plus typed NULLs.
func mixedRows(n int) []expr.Row {
	rows := make([]expr.Row, n)
	for i := 0; i < n; i++ {
		r := expr.Row{
			expr.NewInt(int64(i)),
			expr.NewFloat(float64(i) * 1.5),
			expr.NewString(string(rune('a' + i%26))),
			expr.NewBool(i%2 == 0),
			expr.NewDate(int64(10000 + i)),
		}
		if i%7 == 3 {
			r[1] = expr.TypedNull(expr.TFloat)
		}
		rows[i] = r
	}
	return rows
}

var mixedCols = []string{"id", "amount", "tag", "flag", "day"}
var mixedTypes = []expr.Type{expr.TInt, expr.TFloat, expr.TString, expr.TBool, expr.TDate}

func TestAppendScanRoundTrip(t *testing.T) {
	e := openTestEngine(t, t.TempDir(), 0)
	defer e.Close()
	tab, err := e.CreateTable("demo", mixedCols, mixedTypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enough rows to span several pages.
	want := mixedRows(5000)
	if err := tab.Append(want[:1200]); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(want[1200:]); err != nil {
		t.Fatal(err)
	}
	if got := tab.RowCount(); got != 5000 {
		t.Fatalf("RowCount = %d, want 5000", got)
	}
	got, err := tab.ScanRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch (%d rows back)", len(got))
	}
}

func TestIteratorColumnarDecode(t *testing.T) {
	e := openTestEngine(t, t.TempDir(), 0)
	defer e.Close()
	tab, err := e.CreateTable("demo", mixedCols, mixedTypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mixedRows(3000)
	if err := tab.Append(want); err != nil {
		t.Fatal(err)
	}
	it := tab.NewIterator()
	var b expr.Batch
	var got []expr.Row
	sawColumnar := false
	for {
		more, err := it.NextBatch(&b)
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		if !b.RowBacked() {
			sawColumnar = true
		}
		for i := 0; i < b.Len(); i++ {
			got = append(got, append(expr.Row(nil), b.Row(i)...))
		}
	}
	if !sawColumnar {
		t.Fatal("expected at least one columnar (lane-pure) page decode")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iterator mismatch: got %d rows", len(got))
	}
}

func TestIteratorImpurePageFallsBackToRows(t *testing.T) {
	e := openTestEngine(t, t.TempDir(), 0)
	defer e.Close()
	tab, err := e.CreateTable("demo", []string{"a"}, []expr.Type{expr.TInt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []expr.Row{{expr.NewInt(1)}, {expr.NewString("x")}, {expr.NullValue()}}
	if err := tab.Append(want); err != nil {
		t.Fatal(err)
	}
	it := tab.NewIterator()
	var b expr.Batch
	more, err := it.NextBatch(&b)
	if err != nil || !more {
		t.Fatalf("NextBatch = %v, %v", more, err)
	}
	if !b.RowBacked() {
		t.Fatal("impure page should decode through the row path")
	}
	if !reflect.DeepEqual(b.Rows(), want) {
		t.Fatalf("impure decode mismatch: %+v", b.Rows())
	}
}

func TestIndexRangeAndLookup(t *testing.T) {
	e := openTestEngine(t, t.TempDir(), 0)
	defer e.Close()
	tab, err := e.CreateTable("demo", []string{"k", "s", "v"},
		[]expr.Type{expr.TInt, expr.TString, expr.TInt}, []string{"k", "s"})
	if err != nil {
		t.Fatal(err)
	}
	var rows []expr.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, expr.Row{
			expr.NewInt(int64(i % 50)), // duplicate keys, insertion order ties
			expr.NewString(string(rune('a' + i%10))),
			expr.NewInt(int64(i)),
		})
	}
	if err := tab.Append(rows); err != nil {
		t.Fatal(err)
	}
	lo, hi := expr.NewInt(10), expr.NewInt(12)
	got, ok := tab.IndexRangeRows("k", &lo, &hi, true, false)
	if !ok {
		t.Fatal("index range on k failed")
	}
	var want []expr.Row
	for key := 10; key < 12; key++ {
		for _, r := range rows {
			if r[0].I == int64(key) {
				want = append(want, r)
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range rows: got %d want %d", len(got), len(want))
	}
	sGot, ok := tab.IndexLookupRows("s", expr.NewString("c"))
	if !ok {
		t.Fatal("index lookup on s failed")
	}
	var sWant []expr.Row
	for _, r := range rows {
		if r[1].S == "c" {
			sWant = append(sWant, r)
		}
	}
	if !reflect.DeepEqual(sGot, sWant) {
		t.Fatalf("lookup rows: got %d want %d", len(sGot), len(sWant))
	}
	if _, ok := tab.IndexRangeRows("v", &lo, &hi, true, true); ok {
		t.Fatal("unindexed column must report no index")
	}
	min, max, distinct, ok := tab.IndexStats("k")
	if !ok || min.I != 0 || max.I != 49 || distinct != 50 {
		t.Fatalf("IndexStats(k) = %v %v %d %v", min, max, distinct, ok)
	}
}

func TestBufferPoolEvictionAndStats(t *testing.T) {
	dir := t.TempDir()
	// Budget of 4 pages forces eviction + dirty writebacks on a table
	// that spans many pages.
	e := openTestEngine(t, dir, 4*PageSize)
	tab, err := e.CreateTable("demo", mixedCols, mixedTypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mixedRows(20000)
	if err := tab.Append(want); err != nil {
		t.Fatal(err)
	}
	got, err := tab.ScanRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scan through a tiny pool lost rows")
	}
	st := e.Stats()
	if st.Misses == 0 || st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected pool traffic, got %+v", st)
	}
	// A second scan over a warm... 4-page pool still misses, but a
	// second scan with a big pool should be all hits.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, 0)
	defer e2.Close()
	tab2, _ := e2.Table("demo")
	if _, err := tab2.ScanRows(); err != nil {
		t.Fatal(err)
	}
	before := e2.Stats()
	if _, err := tab2.ScanRows(); err != nil {
		t.Fatal(err)
	}
	after := e2.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("warm scan should not miss: %+v -> %+v", before, after)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("warm scan should hit: %+v -> %+v", before, after)
	}
}

func TestReopenPersistence(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, 0)
	tab, err := e.CreateTable("demo", []string{"k", "v"},
		[]expr.Type{expr.TInt, expr.TString}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	var want []expr.Row
	for i := 0; i < 1000; i++ {
		want = append(want, expr.Row{expr.NewInt(int64(i)), expr.NewString("v")})
	}
	if err := tab.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openTestEngine(t, dir, 0)
	defer e2.Close()
	tab2, ok := e2.Table("demo")
	if !ok {
		t.Fatal("table lost on reopen")
	}
	got, err := tab2.ScanRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("rows lost on reopen")
	}
	lo := expr.NewInt(500)
	rows, ok := tab2.IndexRangeRows("k", &lo, nil, true, true)
	if !ok || len(rows) != 500 {
		t.Fatalf("index rebuilt wrong: ok=%v n=%d", ok, len(rows))
	}
	// Re-declaring with the same shape returns the existing table;
	// a different shape errors.
	if _, err := e2.CreateTable("demo", []string{"k", "v"},
		[]expr.Type{expr.TInt, expr.TString}, []string{"k"}); err != nil {
		t.Fatalf("same-shape CreateTable on reopen: %v", err)
	}
	if _, err := e2.CreateTable("demo", []string{"x"}, []expr.Type{expr.TInt}, nil); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestWALCheckpointThreshold(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, 0)
	defer e.Close()
	tab, err := e.CreateTable("demo", []string{"k"}, []expr.Type{expr.TInt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]expr.Row{intRow(1)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("checkpoint left %d WAL bytes", st.Size())
	}
}
