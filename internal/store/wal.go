package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"cgdqp/internal/expr"
)

// Redo-only write-ahead log. Every Append of rows to a table logs one
// record BEFORE the rows touch any page, so a crash at any point leaves
// the store recoverable: on open, each table first trusts its longest
// valid page prefix (torn or half-written tail pages fail the page
// checksum and are discarded), then WAL records re-apply whatever that
// prefix is missing.
//
// Record layout:
//
//	u32 payload length
//	u32 crc32 (IEEE) of the payload
//	payload:
//	  u8  op (1 = insert)
//	  u16 table-name length, then the name bytes
//	  u64 afterRows — the table's total row count AFTER this record
//	  u32 nRows — rows carried by this record
//	  nRows rows encoded with the value codec
//
// afterRows makes replay idempotent for the append-only store: a record
// whose afterRows is not past the table's durable row count is already
// reflected in the pages and is skipped; otherwise exactly the missing
// suffix of its rows is re-applied. A torn tail record fails its CRC
// and is truncated away — the record's load then simply never happened,
// which is the "pre-state" arm of the crash contract.
const walOpInsert = 1

type wal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	size  int64
	fsync bool
}

func openWAL(path string, fsync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, size: st.Size(), fsync: fsync}, nil
}

// appendInsert logs rows being appended to table, leaving the table at
// afterRows total rows.
func (w *wal) appendInsert(table string, afterRows uint64, rows []expr.Row) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := make([]byte, 0, 64+len(rows)*32)
	payload = append(payload, walOpInsert)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(table)))
	payload = append(payload, table...)
	payload = binary.LittleEndian.AppendUint64(payload, afterRows)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rows)))
	for _, r := range rows {
		payload = appendRow(payload, r)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.WriteAt(hdr[:], w.size); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(payload, w.size+8); err != nil {
		return err
	}
	w.size += int64(8 + len(payload))
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

// walRecord is one decoded insert record.
type walRecord struct {
	table     string
	afterRows uint64
	rows      []expr.Row
}

// replay reads valid records from the start of the log, calling fn for
// each. Reading stops at the first torn or corrupt record; the log is
// truncated to the last valid boundary so the torn tail cannot
// resurface. nColsOf resolves a table's column count for row decoding
// (records for unknown tables stop the replay — the meta file is
// written before the first WAL record of a table can exist, so an
// unknown name means corruption).
func (w *wal) replay(nColsOf func(table string) (int, bool), fn func(walRecord) error) error {
	var off int64
	data, err := io.ReadAll(io.NewSectionReader(w.f, 0, w.size))
	if err != nil {
		return err
	}
	for {
		rec, n, ok := decodeWALRecord(data[off:], nColsOf)
		if !ok {
			break
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += int64(n)
	}
	if off < w.size {
		if err := w.f.Truncate(off); err != nil {
			return err
		}
		w.size = off
	}
	return nil
}

// decodeWALRecord decodes one record from buf, reporting the bytes
// consumed; ok is false on a torn, corrupt, or absent record.
func decodeWALRecord(buf []byte, nColsOf func(string) (int, bool)) (walRecord, int, bool) {
	if len(buf) < 8 {
		return walRecord{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(buf[0:4]))
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if plen < 15 || len(buf) < 8+plen {
		return walRecord{}, 0, false
	}
	payload := buf[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return walRecord{}, 0, false
	}
	if payload[0] != walOpInsert {
		return walRecord{}, 0, false
	}
	nameLen := int(binary.LittleEndian.Uint16(payload[1:3]))
	if 3+nameLen+12 > plen {
		return walRecord{}, 0, false
	}
	name := string(payload[3 : 3+nameLen])
	nCols, known := nColsOf(name)
	if !known {
		return walRecord{}, 0, false
	}
	p := 3 + nameLen
	afterRows := binary.LittleEndian.Uint64(payload[p : p+8])
	nRows := int(binary.LittleEndian.Uint32(payload[p+8 : p+12]))
	p += 12
	rows := make([]expr.Row, 0, nRows)
	for i := 0; i < nRows; i++ {
		row, n, err := decodeRow(payload[p:], nCols)
		if err != nil {
			return walRecord{}, 0, false
		}
		rows = append(rows, row)
		p += n
	}
	return walRecord{table: name, afterRows: afterRows, rows: rows}, 8 + plen, true
}

// truncate resets the log after a checkpoint has made every logged
// change durable in the pages.
func (w *wal) truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.size = 0
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }
