package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent-safe metrics registry: counters, gauges and
// fixed-bucket histograms, keyed by name plus ordered label pairs, with
// Prometheus-text and JSON exports. Metric handles are cheap to look up
// and cheap to update (atomics); a nil *Registry is a valid disabled
// registry whose lookups return nil handles with no-op updates.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// metricKey renders the canonical series key: name{k1="v1",k2="v2"}.
// Labels are ordered key-value pairs; callers use a fixed order so the
// same series always maps to the same key.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotone counter. Nil-safe: updates on a nil handle are
// no-ops, so disabled registries cost their callers nothing.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the gauge value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets is the fixed bucket layout (upper bounds, in seconds)
// every latency histogram uses: ~exponential from 5µs to 10s.
var LatencyBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram (cumulative rendering on
// export, Prometheus style). Observations are lock-free atomics.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound, plus +Inf at the end
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns (creating on first use) the counter for the series.
// Labels are ordered key-value pairs. Nil-safe on a disabled registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for the series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the latency histogram for
// the series, with the fixed LatencyBuckets layout.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = newHistogram(LatencyBuckets)
		r.hists[key] = h
	}
	return h
}

// CounterValue reads a counter series without creating it.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[key].Value()
}

// snapshot copies the series maps for lock-free rendering.
func (r *Registry) snapshot() (map[string]*Counter, map[string]*Gauge, map[string]*Histogram) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cs := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	gs := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gs[k] = v
	}
	hs := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hs[k] = v
	}
	return cs, gs, hs
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// familyOf strips the label part of a series key.
func familyOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelPartOf returns the {...} label block of a series key ("" when
// unlabeled).
func labelPartOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// withExtraLabel splices one more label into a series key's label block
// (for histogram le labels).
func withExtraLabel(family, labelPart, k, v string) string {
	if labelPart == "" {
		return fmt.Sprintf(`%s{%s="%s"}`, family, k, v)
	}
	return fmt.Sprintf(`%s{%s,%s="%s"}`, family, labelPart[1:len(labelPart)-1], k, v)
}

func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return formatFloat(b)
}

// formatFloat renders a float compactly (Prometheus accepts shortest form).
func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders every series in Prometheus text exposition
// format, families sorted by name, series sorted within a family, so
// the export is deterministic given deterministic metric values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	cs, gs, hs := r.snapshot()

	typed := map[string]string{}
	for k := range cs {
		typed[familyOf(k)] = "counter"
	}
	for k := range gs {
		typed[familyOf(k)] = "gauge"
	}
	for k := range hs {
		typed[familyOf(k)] = "histogram"
	}

	counterKeys := sortedKeys(cs)
	gaugeKeys := sortedKeys(gs)
	histKeys := sortedKeys(hs)

	emitted := map[string]bool{}
	emitType := func(family string) error {
		if emitted[family] {
			return nil
		}
		emitted[family] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, typed[family])
		return err
	}

	for _, k := range counterKeys {
		if err := emitType(familyOf(k)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, cs[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range gaugeKeys {
		if err := emitType(familyOf(k)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", k, formatFloat(gs[k].Value())); err != nil {
			return err
		}
	}
	for _, k := range histKeys {
		family, labelPart := familyOf(k), labelPartOf(k)
		if err := emitType(family); err != nil {
			return err
		}
		h := hs[k]
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			line := withExtraLabel(family+"_bucket", labelPart, "le", formatBound(bound))
			if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		line := withExtraLabel(family+"_bucket", labelPart, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", family+"_sum", labelPart, formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family+"_count", labelPart, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the JSON shape of one histogram series.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound -> cumulative count
}

// WriteJSON renders every series as one indented JSON object (counters,
// gauges, histograms keyed by series name). Map keys are sorted by the
// encoder, so the export is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	cs, gs, hs := r.snapshot()
	out := struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histJSON{},
	}
	for k, c := range cs {
		out.Counters[k] = c.Value()
	}
	for k, g := range gs {
		out.Gauges[k] = g.Value()
	}
	for k, h := range hs {
		hj := histJSON{Count: h.Count(), Sum: h.Sum(), Buckets: map[string]int64{}}
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			hj.Buckets[formatBound(bound)] = cum
		}
		cum += h.buckets[len(h.bounds)].Load()
		hj.Buckets["+Inf"] = cum
		out.Histograms[k] = hj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
