package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// HTTPServer exposes an observer's registry over HTTP for scraping and
// debugging:
//
//	/metrics     Prometheus text exposition (WritePrometheus)
//	/debug/vars  JSON registry export (WriteJSON)
//	/debug/pprof net/http/pprof profiles
//
// The server runs on its own mux (never http.DefaultServeMux, so
// importing pprof here does not leak handlers into embedding programs)
// and shuts down gracefully.
type HTTPServer struct {
	srv  *http.Server
	lis  net.Listener
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// ServeHTTP starts the observability listener on addr (host:port; port
// 0 picks a free port — read it back from Addr). The registry may be
// nil: /metrics and /debug/vars then serve empty exports, and pprof
// still works.
func ServeHTTP(addr string, reg *Registry) (*HTTPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &HTTPServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis:  lis,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed after Shutdown; any other error
		// means the listener died, which Shutdown will surface as a
		// closed Done channel either way.
		_ = s.srv.Serve(lis)
	}()
	return s, nil
}

// Addr returns the listener's bound address (useful with port 0).
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Done is closed when the serve loop has fully exited.
func (s *HTTPServer) Done() <-chan struct{} { return s.done }

// Shutdown gracefully stops the server: the listener closes, in-flight
// requests drain until ctx expires, and the serve goroutine exits.
// Safe to call more than once.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
