package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestHTTPServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cgdqp_test_total").Add(7)
	reg.Gauge("cgdqp_test_gauge").Set(1.5)
	reg.Histogram("cgdqp_test_seconds").Observe(0.001)

	s, err := ServeHTTP("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeHTTP: %v", err)
	}
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "cgdqp_test_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "cgdqp_test_seconds_bucket") {
		t.Fatalf("/metrics missing histogram buckets:\n%s", body)
	}

	code, body = getBody(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}

	code, _ = getBody(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestHTTPServerNilRegistry(t *testing.T) {
	s, err := ServeHTTP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeHTTP: %v", err)
	}
	defer s.Shutdown(context.Background())
	if code, _ := getBody(t, "http://"+s.Addr()+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics with nil registry: status %d", code)
	}
}

func TestHTTPServerGracefulShutdown(t *testing.T) {
	s, err := ServeHTTP("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("ServeHTTP: %v", err)
	}
	addr := s.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Done not closed after Shutdown returned")
	}
	// Idempotent: a second Shutdown is a no-op, not a hang or error.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// The listener really is closed.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	// Nil receiver is safe.
	var nilSrv *HTTPServer
	if err := nilSrv.Shutdown(ctx); err != nil || nilSrv.Addr() != "" {
		t.Fatal("nil HTTPServer misbehaved")
	}
}
