package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// AuditRecord is one successful cross-site shipment: what relation data
// moved, along which edge, how much of it, and why it was legal. Records
// deliberately carry no wall-clock fields so that replays of the same
// deterministic run render byte-identical logs.
type AuditRecord struct {
	// From/To are the source and destination sites of the shipment.
	From, To string
	// Relations are the base tables whose data the shipped stream
	// derives from (sorted).
	Relations []string
	// Columns are the shipped output columns (qualified keys, sorted).
	Columns []string
	// Rows/Bytes/Batches are the delivered volume. The sequential
	// engine ships each boundary as one materialized batch.
	Rows, Bytes, Batches int64
	// Justification states why the shipment was compliant: the shipping
	// trait the optimizer proved for the stream, or "unchecked" when the
	// plan was built without compliance annotation.
	Justification string
}

// key is the canonical sort key of the record: every field except the
// volumes participates so equal-shaped shipments order by volume last.
func (r AuditRecord) key() string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%s\x00%s\x00%020d\x00%020d",
		r.From, r.To, strings.Join(r.Relations, ","), strings.Join(r.Columns, ","),
		r.Justification, r.Rows, r.Bytes)
}

// String renders the record as one audit line.
func (r AuditRecord) String() string {
	cols := strings.Join(r.Columns, ",")
	if cols == "" {
		cols = "-"
	}
	rels := strings.Join(r.Relations, ",")
	if rels == "" {
		rels = "-"
	}
	return fmt.Sprintf("SHIP %s -> %s relations=%s columns=%s rows=%d bytes=%d batches=%d justification=%q",
		r.From, r.To, rels, cols, r.Rows, r.Bytes, r.Batches, r.Justification)
}

// AuditLog is the append-only compliance record of cross-site
// shipments. It is safe for concurrent appends; rendering sorts records
// canonically so parallel executions of the same run produce the same
// text regardless of goroutine interleaving.
type AuditLog struct {
	mu   sync.Mutex
	recs []AuditRecord
}

// NewAuditLog returns an empty audit log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

// Record appends one shipment record; nil-safe no-op when disabled.
func (a *AuditLog) Record(r AuditRecord) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.recs = append(a.recs, r)
	a.mu.Unlock()
}

// Len returns the number of recorded shipments.
func (a *AuditLog) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.recs)
}

// Reset drops all records.
func (a *AuditLog) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.recs = nil
	a.mu.Unlock()
}

// Records returns a canonically sorted copy of the log.
func (a *AuditLog) Records() []AuditRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := append([]AuditRecord(nil), a.recs...)
	a.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// WriteText renders the log, one line per shipment, in canonical order.
// The rendering is deterministic: same shipments in, same bytes out.
func (a *AuditLog) WriteText(w io.Writer) error {
	for _, r := range a.Records() {
		if _, err := fmt.Fprintln(w, r.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the log via WriteText.
func (a *AuditLog) String() string {
	var b strings.Builder
	_ = a.WriteText(&b)
	return b.String()
}
