package obs

import "math"

// This file adds quantile estimation over the fixed-bucket histograms:
// a point-in-time bucket snapshot, snapshot subtraction (for windowed
// quantiles — "the p99 of the last interval", which the scheduler's
// adaptive admission loop uses), and linear interpolation inside the
// located bucket.

// NewLatencyHistogram returns a standalone histogram with the standard
// LatencyBuckets layout, for embedders that need quantiles outside a
// registry.
func NewLatencyHistogram() *Histogram { return newHistogram(LatencyBuckets) }

// HistogramSnapshot is a point-in-time copy of a histogram's per-bucket
// counts. The zero value is a valid empty snapshot.
type HistogramSnapshot struct {
	bounds []float64 // shared, read-only
	counts []int64   // one per bound, plus +Inf
	total  int64
}

// Snap copies the histogram's current bucket counts. Nil-safe.
func (h *Histogram) Snap() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{bounds: h.bounds, counts: make([]int64, len(h.buckets))}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.counts[i] = c
		s.total += c
	}
	return s
}

// Count returns the number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 { return s.total }

// Sub returns the per-bucket difference s - prev: the observations that
// arrived between the two snapshots. prev must come from the same
// histogram (or be the zero value, which subtracts nothing).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.counts) != len(s.counts) {
		return s
	}
	d := HistogramSnapshot{bounds: s.bounds, counts: make([]int64, len(s.counts))}
	for i, c := range s.counts {
		dc := c - prev.counts[i]
		if dc < 0 {
			dc = 0
		}
		d.counts[i] = dc
		d.total += dc
	}
	return d
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts, interpolating linearly inside the located bucket. An empty
// snapshot returns 0. Observations in the +Inf overflow bucket resolve
// to the largest finite bound (there is no upper edge to interpolate
// toward). With a single sample, every quantile lands in that sample's
// bucket; with fewer than 1/(1-q) samples the quantile is simply the
// maximum's bucket — coarse but monotone and bias-free for alerting.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.total == 0 || len(s.counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.counts {
		if c > 0 && cum+c >= rank {
			if i >= len(s.bounds) {
				// +Inf bucket: report the last finite bound.
				if len(s.bounds) == 0 {
					return 0
				}
				return s.bounds[len(s.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.bounds[i-1]
			}
			upper := s.bounds[i]
			pos := float64(rank-cum) / float64(c)
			return lower + pos*(upper-lower)
		}
		cum += c
	}
	if len(s.bounds) == 0 {
		return 0
	}
	return s.bounds[len(s.bounds)-1]
}

// Quantile estimates the q-quantile over all observations so far.
// Nil-safe (0 on a nil or empty histogram).
func (h *Histogram) Quantile(q float64) float64 { return h.Snap().Quantile(q) }

// RegistrySnapshot is a consistent point-in-time copy of every series'
// value, for programmatic consumers (the text/JSON exports render live
// handles instead).
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every series' current value. Nil-safe (empty maps).
func (r *Registry) Snapshot() RegistrySnapshot {
	out := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	cs, gs, hs := r.snapshot()
	for k, c := range cs {
		out.Counters[k] = c.Value()
	}
	for k, g := range gs {
		out.Gauges[k] = g.Value()
	}
	for k, h := range hs {
		out.Histograms[k] = h.Snap()
	}
	return out
}
