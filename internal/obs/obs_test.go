package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// --- disabled path: nil receivers are inert and free ---------------------

func TestDisabledObserverIsInert(t *testing.T) {
	var o *Observer
	sp := o.StartSpan("x")
	if sp.Enabled() {
		t.Fatal("span from nil observer should be disabled")
	}
	sp.Tag("k", "v").TagInt("n", 7).End() // must not panic
	if o.Reg() != nil || o.AuditSink() != nil || o.Prof() != nil {
		t.Fatal("nil observer must expose nil sinks")
	}
	var tr *Tracer
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer should report no spans")
	}
	tr.Reset()
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(0.2)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	var a *AuditLog
	a.Record(AuditRecord{From: "A", To: "B"})
	if a.Len() != 0 || a.Records() != nil {
		t.Fatal("nil audit log should stay empty")
	}
	var p *PlanProfile
	if p.Stats(&plan.Node{}) != nil {
		t.Fatal("nil profile should hand out nil stats")
	}
	var s *OpStats
	s.AddTime(time.Millisecond)
	if s.Time() != 0 {
		t.Fatal("nil op stats should read 0")
	}
}

func TestDisabledHooksAllocateNothing(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(200, func() {
		sp := o.StartSpan("ship.batch")
		if sp.Enabled() {
			sp.Tag("from", "EU")
		}
		sp.TagInt("rows", 128)
		sp.End()
		if m := o.Reg(); m != nil {
			m.Counter("cgdqp_ship_rows_total", "from", "EU", "to", "NA").Add(128)
		}
		o.AuditSink().Record(AuditRecord{})
		o.Prof().Stats(nil).AddTime(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f per op, want 0", allocs)
	}
}

// WithProfile on a nil observer must still produce a working profile
// without enabling any other sink (the EXPLAIN ANALYZE path on a system
// with observability off).
func TestWithProfileOnNilObserver(t *testing.T) {
	var o *Observer
	p := NewPlanProfile()
	o2 := o.WithProfile(p)
	if o2.Prof() != p {
		t.Fatal("WithProfile should carry the profile")
	}
	if o2.Reg() != nil || o2.AuditSink() != nil || o2.StartSpan("x").Enabled() {
		t.Fatal("WithProfile on nil observer must not enable other sinks")
	}
}

// --- tracer --------------------------------------------------------------

func TestTracerRecordsAndSorts(t *testing.T) {
	tr := NewTracer()
	s1 := tr.Start("optimize")
	s1.Tag("cache", "miss").TagInt("eta", 14).End()
	tr.Start("execute.sequential").End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "optimize" {
		t.Fatalf("spans not sorted by start: %q first", spans[0].Name)
	}
	if spans[0].Attr("cache") != "miss" || spans[0].Attr("eta") != "14" {
		t.Fatalf("attrs lost: %+v", spans[0].Attrs)
	}
	if spans[0].Attr("absent") != "" {
		t.Fatal("missing attr should read empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []SpanRec
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(decoded) != 2 || decoded[0].Name != "optimize" {
		t.Fatalf("JSON round-trip mismatch: %+v", decoded)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset should drop spans")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("ship.batch").TagInt("i", int64(i)).End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("got %d spans, want 800", tr.Len())
	}
}

// --- metrics -------------------------------------------------------------

func TestRegistryGetOrCreate(t *testing.T) {
	m := NewRegistry()
	c1 := m.Counter("x_total", "edge", "EU->NA")
	c2 := m.Counter("x_total", "edge", "EU->NA")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	c1.Add(2)
	c1.Inc()
	if got := m.CounterValue("x_total", "edge", "EU->NA"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := m.CounterValue("x_total", "edge", "NA->EU"); got != 0 {
		t.Fatalf("unseen labels should read 0, got %d", got)
	}
	g := m.Gauge("queue_len")
	g.Set(4.5)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	h := m.Histogram("lat_seconds")
	h.Observe(0.0003)
	h.Observe(2.0)
	if h.Count() != 2 || h.Sum() != 2.0003 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	m := NewRegistry()
	m.Counter("cgdqp_ship_rows_total", "from", "EU", "to", "NA").Add(150)
	m.Counter("cgdqp_ship_rows_total", "from", "AS", "to", "EU").Add(7)
	m.Gauge("cgdqp_plan_cache_len").Set(3)
	m.Histogram("cgdqp_optimize_seconds").Observe(0.004)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE cgdqp_ship_rows_total counter",
		`cgdqp_ship_rows_total{from="AS",to="EU"} 7`,
		`cgdqp_ship_rows_total{from="EU",to="NA"} 150`,
		"# TYPE cgdqp_plan_cache_len gauge",
		"cgdqp_plan_cache_len 3",
		"# TYPE cgdqp_optimize_seconds histogram",
		`cgdqp_optimize_seconds_bucket{le="0.005"} 1`,
		`cgdqp_optimize_seconds_bucket{le="+Inf"} 1`,
		"cgdqp_optimize_seconds_sum 0.004",
		"cgdqp_optimize_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
	// Series within a family must be sorted (AS before EU).
	if strings.Index(text, `from="AS"`) > strings.Index(text, `from="EU"`) {
		t.Fatalf("series not sorted:\n%s", text)
	}
	// Rendering is deterministic.
	var buf2 bytes.Buffer
	_ = m.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestRegistryJSON(t *testing.T) {
	m := NewRegistry()
	m.Counter("a_total").Add(5)
	m.Gauge("g").Set(1.25)
	m.Histogram("h").Observe(0.05)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if doc.Counters["a_total"] != 5 || doc.Gauges["g"] != 1.25 {
		t.Fatalf("JSON values wrong: %+v", doc)
	}
	if h := doc.Histograms["h"]; h.Count != 1 || h.Sum != 0.05 {
		t.Fatalf("JSON histogram wrong: %+v", doc.Histograms)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	m := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Counter("c_total", "g", string(rune('a'+g%4))).Inc()
				m.Gauge("g").Set(float64(i))
				m.Histogram("h").Observe(float64(i) / 1000)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += m.CounterValue("c_total", "g", l)
	}
	if total != 8*500 {
		t.Fatalf("lost counter increments: %d", total)
	}
	if m.Histogram("h").Count() != 8*500 {
		t.Fatalf("lost observations: %d", m.Histogram("h").Count())
	}
}

// --- audit log -----------------------------------------------------------

func TestAuditLogDeterministicOrder(t *testing.T) {
	recs := []AuditRecord{
		{From: "L3", To: "L1", Relations: []string{"orders"}, Columns: []string{"o.custkey"}, Rows: 10, Bytes: 80, Batches: 1, Justification: `ship-trait {L1, L3} permits L1`},
		{From: "L1", To: "L3", Relations: []string{"customer"}, Columns: []string{"c.name"}, Rows: 5, Bytes: 40, Batches: 1, Justification: `ship-trait {L1, L3} permits L3`},
		{From: "L3", To: "L1", Relations: []string{"lineitem"}, Columns: []string{"l.qty"}, Rows: 2, Bytes: 16, Batches: 2, Justification: "unchecked"},
	}
	render := func(order []int) string {
		a := NewAuditLog()
		var wg sync.WaitGroup
		for _, i := range order {
			wg.Add(1)
			go func(r AuditRecord) {
				defer wg.Done()
				a.Record(r)
			}(recs[i])
		}
		wg.Wait()
		return a.String()
	}
	r := rand.New(rand.NewSource(1))
	first := render([]int{0, 1, 2})
	for trial := 0; trial < 20; trial++ {
		order := r.Perm(len(recs))
		if got := render(order); got != first {
			t.Fatalf("insertion order %v changed rendering:\n%s\nvs\n%s", order, got, first)
		}
	}
	if !strings.Contains(first, `SHIP L1 -> L3 relations=customer columns=c.name rows=5 bytes=40 batches=1 justification="ship-trait {L1, L3} permits L3"`) {
		t.Fatalf("unexpected audit line format:\n%s", first)
	}
	// Canonical order: L1->L3 line precedes the L3->L1 lines.
	if strings.Index(first, "SHIP L1 ->") > strings.Index(first, "SHIP L3 ->") {
		t.Fatalf("records not canonically sorted:\n%s", first)
	}
}

// --- profile -------------------------------------------------------------

func TestPlanProfileFormat(t *testing.T) {
	scan := &plan.Node{Kind: plan.TableScan, Table: &schema.Table{Name: "customer"}, Alias: "c", FragIdx: -1, Loc: "L1"}
	root := &plan.Node{Kind: plan.Limit, LimitN: 5, Children: []*plan.Node{scan}, Loc: "L1"}
	p := NewPlanProfile()
	st := p.Stats(root)
	st.Rows.Add(5)
	st.Opens.Add(1)
	st.AddTime(3 * time.Millisecond)
	out := p.Format(root)
	if !strings.Contains(out, "(actual rows=5 batches=0 time=3.00ms)") {
		t.Fatalf("root annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "(never executed)") {
		t.Fatalf("unopened child should say never executed:\n%s", out)
	}
	if p.Stats(root) != st {
		t.Fatal("Stats must be stable per node")
	}
}

// --- benchmarks ----------------------------------------------------------

// BenchmarkObsDisabledHooks measures the cost execution pays per Ship
// hook when observability is off — the zero-cost-when-disabled claim.
func BenchmarkObsDisabledHooks(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("ship.batch")
		sp.TagInt("rows", int64(i))
		sp.End()
		if m := o.Reg(); m != nil {
			m.Counter("cgdqp_ship_rows_total", "from", "EU", "to", "NA").Add(1)
		}
		o.AuditSink().Record(AuditRecord{})
	}
}
