package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgdqp/internal/plan"
)

// OpStats accumulates per-operator actuals for EXPLAIN ANALYZE. Fields
// are atomics because the parallel engine updates an operator's stats
// from its fragment goroutine while other fragments run.
type OpStats struct {
	// Rows is the number of rows the operator produced.
	Rows atomic.Int64
	// Batches is the number of batches produced (0 in the row-at-a-time
	// engine for all but Ship, which moves one materialized batch).
	Batches atomic.Int64
	// Opens counts Open calls (re-opened inner sides exceed 1).
	Opens atomic.Int64
	// timeNS is wall time attributed to the operator.
	timeNS atomic.Int64
}

// AddTime attributes wall time to the operator.
func (s *OpStats) AddTime(d time.Duration) {
	if s != nil {
		s.timeNS.Add(int64(d))
	}
}

// Time returns the wall time attributed to the operator.
func (s *OpStats) Time() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.timeNS.Load())
}

// PlanProfile collects per-operator actuals for one execution, keyed by
// the physical plan node the operator was built from. A nil profile is
// a valid disabled one: Stats returns nil and the nil *OpStats methods
// no-op, so unprofiled runs pay only a pointer check.
type PlanProfile struct {
	mu    sync.Mutex
	stats map[*plan.Node]*OpStats
}

// NewPlanProfile returns an empty profile.
func NewPlanProfile() *PlanProfile {
	return &PlanProfile{stats: map[*plan.Node]*OpStats{}}
}

// Stats returns (creating on first use) the stats slot for the node.
func (p *PlanProfile) Stats(n *plan.Node) *OpStats {
	if p == nil || n == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats[n]
	if s == nil {
		s = &OpStats{}
		p.stats[n] = s
	}
	return s
}

// Peek reads a node's stats without creating them; nil means the
// operator never ran (e.g. a pruned inner side). Consumers such as the
// feedback recorder use it to distinguish "produced zero rows" from
// "never executed".
func (p *PlanProfile) Peek(n *plan.Node) *OpStats { return p.lookup(n) }

// lookup reads a node's stats without creating them.
func (p *PlanProfile) lookup(n *plan.Node) *OpStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats[n]
}

// formatDur renders a duration compactly for the annotated plan.
func formatDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Format renders the plan like plan.Node.Format with optimizer
// annotations, appending the collected actuals to each operator:
//
//	HashJoin[...]  [@N exec={N} rows=1000]  (actual rows=1000 batches=2 time=1.25ms)
//
// Operators the profile has no stats for (never opened, e.g. pruned
// inner sides) render "(never executed)".
func (p *PlanProfile) Format(root *plan.Node) string {
	var b strings.Builder
	p.format(&b, root, 0)
	return b.String()
}

func (p *PlanProfile) format(b *strings.Builder, n *plan.Node, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.OpString())
	var tags []string
	if n.Loc != "" {
		tags = append(tags, "@"+n.Loc)
	}
	if !n.Exec.Empty() {
		tags = append(tags, "exec="+n.Exec.String())
	}
	if !n.ShipT.Empty() {
		tags = append(tags, "ship="+n.ShipT.String())
	}
	if n.Card > 0 {
		tags = append(tags, fmt.Sprintf("rows=%.0f", n.Card))
	}
	if len(tags) > 0 {
		b.WriteString("  [" + strings.Join(tags, " ") + "]")
	}
	if s := p.lookup(n); s != nil {
		b.WriteString(fmt.Sprintf("  (actual rows=%d batches=%d time=%s)",
			s.Rows.Load(), s.Batches.Load(), formatDur(s.Time())))
	} else {
		b.WriteString("  (never executed)")
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		p.format(b, c, depth+1)
	}
}
