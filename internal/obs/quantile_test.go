package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	var zero HistogramSnapshot
	if got := zero.Quantile(0.5); got != 0 {
		t.Fatalf("zero-snapshot quantile = %v, want 0", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.003) // falls in the (0.0025, 0.005] bucket
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 0.0025 || got > 0.005 {
			t.Fatalf("q=%v: %v outside the sample's bucket (0.0025, 0.005]", q, got)
		}
	}
}

func TestQuantileP99UnderHundredSamples(t *testing.T) {
	// With fewer than 100 samples the p99 must be the maximum's bucket —
	// coarse, monotone, never below lower observations.
	h := NewLatencyHistogram()
	for i := 0; i < 50; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.5) // one outlier in (1, 2.5]
	p99 := h.Quantile(0.99)
	if p99 <= 1 || p99 > 2.5 {
		t.Fatalf("p99 = %v, want within the outlier's bucket (1, 2.5]", p99)
	}
	if p50 := h.Quantile(0.5); p50 > 0.0025 {
		t.Fatalf("p50 = %v, want within the bulk's bucket", p50)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(100) // beyond the last finite bound (10s)
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile = %v, want last finite bound 10", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.001)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q not clamped to [0,1]")
	}
}

func TestSnapshotSubWindows(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.001)
	h.Observe(0.001)
	prev := h.Snap()
	h.Observe(1.5)
	delta := h.Snap().Sub(prev)
	if delta.Count() != 1 {
		t.Fatalf("window count = %d, want 1", delta.Count())
	}
	// The window holds only the new outlier; the old bulk is gone.
	if p50 := delta.Quantile(0.5); p50 <= 1 || p50 > 2.5 {
		t.Fatalf("window p50 = %v, want the outlier's bucket", p50)
	}
	// Subtracting a mismatched snapshot degrades to the full snapshot.
	cur := h.Snap()
	if got := cur.Sub(HistogramSnapshot{counts: []int64{1}}); got.Count() != cur.Count() {
		t.Fatal("mismatched Sub did not return the full snapshot")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(2.5)
	r.Histogram("h_seconds").Observe(0.001)
	s := r.Snapshot()
	if s.Counters["c_total"] != 3 {
		t.Fatalf("counter = %d", s.Counters["c_total"])
	}
	if s.Gauges["g"] != 2.5 {
		t.Fatalf("gauge = %v", s.Gauges["g"])
	}
	if hs, ok := s.Histograms["h_seconds"]; !ok || hs.Count() != 1 {
		t.Fatalf("histogram snapshot missing or wrong: %+v", hs)
	}
	var nilReg *Registry
	ns := nilReg.Snapshot()
	if len(ns.Counters)+len(ns.Gauges)+len(ns.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestConcurrentSnapshotAndRecord drives Snapshot against live recording
// under the race detector: snapshots must be taken safely while every
// series type is being written.
func TestConcurrentSnapshotAndRecord(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c%d_total", g)).Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h_seconds").Observe(float64(i%10) / 1000)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if hs, ok := s.Histograms["h_seconds"]; ok {
			hs.Quantile(0.99) // exercise quantiles over live snapshots too
		}
	}
	close(stop)
	wg.Wait()
}
