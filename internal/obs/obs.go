// Package obs is the observability subsystem threaded through the
// optimizer, the executors and the shipping layer: a lightweight span
// tracer recording the query lifecycle, a concurrent-safe metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text and JSON exports, a deterministic compliance audit log of every
// cross-site shipment, and a per-operator execution profile behind
// EXPLAIN ANALYZE.
//
// Everything is built around one invariant: when observability is off it
// costs ~nothing. A nil *Observer (and nil sinks inside a non-nil one)
// short-circuits every hook to a pointer check, allocates nothing, and
// is what production hot paths pay by default; the disabled-path cost is
// guarded by BenchmarkObsDisabledHooks and the exec bench report.
package obs

// Observer bundles the observability sinks an execution reports into.
// Any field may be nil to disable that dimension; a nil *Observer
// disables all of them. The sink pointers must be set before the
// observer is shared (optimizer and cluster read them without locks);
// the sinks themselves are safe for concurrent use.
type Observer struct {
	// Tracer records query-lifecycle spans (parse/bind, optimize
	// phases, fragment pipelines, every ship attempt).
	Tracer *Tracer
	// Metrics is the counters/gauges/histograms registry.
	Metrics *Registry
	// Audit is the append-only compliance audit log of cross-site
	// shipments.
	Audit *AuditLog
	// Profile collects per-operator actuals for EXPLAIN ANALYZE. Unlike
	// the cumulative sinks above it is per-execution: callers install a
	// fresh one for each analyzed run.
	Profile *PlanProfile
}

// StartSpan opens a span on the observer's tracer; it is the nil-safe,
// zero-alloc-when-disabled entry point hooks use.
func (o *Observer) StartSpan(name string) Span {
	if o == nil {
		return Span{}
	}
	return o.Tracer.Start(name)
}

// Reg returns the metrics registry (nil when metrics are off). Hooks
// must guard on the returned pointer before building label lists so the
// disabled path allocates nothing.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// AuditSink returns the audit log (nil when auditing is off).
func (o *Observer) AuditSink() *AuditLog {
	if o == nil {
		return nil
	}
	return o.Audit
}

// Prof returns the per-operator profile (nil when not analyzing).
func (o *Observer) Prof() *PlanProfile {
	if o == nil {
		return nil
	}
	return o.Profile
}

// WithProfile returns a shallow copy of the observer carrying the given
// per-run profile (the cumulative sinks stay shared). Works on a nil
// receiver: the copy then observes only the profile.
func (o *Observer) WithProfile(p *PlanProfile) *Observer {
	var cp Observer
	if o != nil {
		cp = *o
	}
	cp.Profile = p
	return &cp
}

// WithAudit returns a shallow copy of the observer whose audit records
// land in the given log instead of the shared one (tracer/metrics stay
// shared). The result-set cache uses it to capture one execution's
// audit records for replay to later cache hits. Works on a nil
// receiver: the copy then observes only the audit log.
func (o *Observer) WithAudit(a *AuditLog) *Observer {
	var cp Observer
	if o != nil {
		cp = *o
	}
	cp.Audit = a
	return &cp
}
