package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRec is one finished span: a named phase of the query lifecycle
// with its offset from the tracer's epoch, duration, and annotations.
type SpanRec struct {
	Name string `json:"name"`
	// StartUS/DurUS are microseconds since the tracer epoch / of the
	// span, respectively (JSON-friendly; see Start/Dur for durations).
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Start returns the span's offset from the tracer epoch.
func (r SpanRec) Start() time.Duration { return time.Duration(r.StartUS) * time.Microsecond }

// Dur returns the span's duration.
func (r SpanRec) Dur() time.Duration { return time.Duration(r.DurUS) * time.Microsecond }

// Attr returns the value of the named annotation ("" when absent).
func (r SpanRec) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Tracer records query-lifecycle spans. It is safe for concurrent use:
// spans are built privately by the goroutine that started them and
// appended under a mutex at End. A nil *Tracer is a valid disabled
// tracer: Start returns an inert Span and the whole path allocates
// nothing, which is what keeps tracing free when off.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	spans []SpanRec
}

// NewTracer returns an empty tracer; span offsets are relative to now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Span is an in-progress span handle. The zero value (from a disabled
// tracer) is inert: Tag and End are no-ops.
type Span struct {
	t     *Tracer
	rec   *SpanRec
	start time.Time
}

// Start opens a span. On a nil tracer it returns an inert handle
// without allocating.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	now := time.Now()
	return Span{
		t:     t,
		rec:   &SpanRec{Name: name, StartUS: now.Sub(t.epoch).Microseconds()},
		start: now,
	}
}

// Enabled reports whether the span records anything; hooks use it to
// skip building tag values the inert span would discard.
func (s Span) Enabled() bool { return s.rec != nil }

// Tag annotates the span. The span record is owned by the starting
// goroutine until End, so no locking is needed.
func (s Span) Tag(key, value string) Span {
	if s.rec != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
	}
	return s
}

// TagInt annotates the span with an integer value. The formatting is
// deferred behind the enabled check so disabled call sites pay nothing.
func (s Span) TagInt(key string, v int64) Span {
	if s.rec != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: strconv.FormatInt(v, 10)})
	}
	return s
}

// End finishes the span and publishes it to the tracer.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.DurUS = time.Since(s.start).Microseconds()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, *s.rec)
	s.t.mu.Unlock()
}

// Spans returns a copy of the recorded spans ordered by start offset
// (ties by name) so concurrent recordings render stably.
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRec(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Len returns how many spans have been recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset drops all recorded spans and re-bases the epoch.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.epoch = time.Now()
	t.mu.Unlock()
}

// WriteJSON renders the spans as an indented JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRec{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
