package network

import (
	"sort"
	"sync"
)

// Calibrator closes the loop between the optimizer's estimated transfer
// sizes and what the wire format actually ships. The optimizer prices a
// candidate plan from schema width estimates (rows × column widths);
// the executor observes the encoded frame size of every shipment. The
// calibrator accumulates both and back-fits:
//
//   - the encoding ratio (wire bytes / estimated bytes), installed into
//     a CostModel as its byte scale so EstShipCost prices estimated
//     bytes as the wire would see them, and
//   - per-edge α/β by least squares over (bytes, observed ms) ship
//     samples, for tooling that wants to refit the WAN matrices.
//
// All methods are safe for concurrent use; the executor feeds samples
// from many shipping goroutines.
type Calibrator struct {
	mu        sync.Mutex
	estBytes  float64
	wireBytes float64
	edges     map[string]*edgeFit

	// Continuous mode (SetAutoApply): every autoEvery encoding
	// observations the current ratio is pushed into autoModel, turning
	// the one-shot Apply into a standing feedback loop.
	frames    int64
	autoEvery int64
	autoModel *CostModel
	onApply   func(ratio float64)
}

type edgeFit struct {
	n, sumB, sumMS, sumBB, sumBMS float64
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{edges: map[string]*edgeFit{}}
}

// ObserveEncoding records one batch's estimated width-sum against its
// encoded frame size.
func (c *Calibrator) ObserveEncoding(estimated, encoded int64) {
	if estimated <= 0 {
		return
	}
	var (
		ratio float64
		model *CostModel
		cb    func(float64)
	)
	c.mu.Lock()
	c.estBytes += float64(estimated)
	c.wireBytes += float64(encoded)
	if c.autoModel != nil {
		c.frames++
		if c.frames%c.autoEvery == 0 {
			ratio = c.wireBytes / c.estBytes
			model, cb = c.autoModel, c.onApply
		}
	}
	c.mu.Unlock()
	// Apply outside c.mu: SetByteScale takes the model's own lock, and
	// the callback may fan out (epoch bumps, metrics).
	if model != nil {
		model.SetByteScale(ratio)
		if cb != nil {
			cb(ratio)
		}
	}
}

// SetAutoApply arms continuous calibration: after every everyN encoding
// observations the accumulated encoding ratio is installed into m's
// byte scale (as Apply would) and onApply, if non-nil, is invoked with
// the applied ratio — callers use it to bump a feedback epoch so cached
// plans re-price. everyN <= 0 disarms. The cost model's getters are
// mutex-guarded, so concurrent EstShipCost readers stay race-free while
// applies land.
func (c *Calibrator) SetAutoApply(m *CostModel, everyN int, onApply func(ratio float64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if everyN <= 0 || m == nil {
		c.autoModel, c.autoEvery, c.onApply = nil, 0, nil
		return
	}
	c.autoModel, c.autoEvery, c.onApply = m, int64(everyN), onApply
	c.frames = 0
}

// ObserveShip records one delivered shipment: encoded bytes and the
// simulated wire milliseconds it took.
func (c *Calibrator) ObserveShip(from, to string, bytes int64, ms float64) {
	c.mu.Lock()
	f := c.edges[edgeKey(from, to)]
	if f == nil {
		f = &edgeFit{}
		c.edges[edgeKey(from, to)] = f
	}
	b := float64(bytes)
	f.n++
	f.sumB += b
	f.sumMS += ms
	f.sumBB += b * b
	f.sumBMS += b * ms
	c.mu.Unlock()
}

// EncodingRatio returns wire bytes per estimated byte (1 with no
// samples): the factor to apply to width-based size estimates.
func (c *Calibrator) EncodingRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.estBytes == 0 {
		return 1
	}
	return c.wireBytes / c.estBytes
}

// FitEdge least-squares-fits ms = α + β·bytes over the edge's ship
// samples. ok is false until the edge has at least two samples with
// distinct byte sizes (a vertical fit has no slope).
func (c *Calibrator) FitEdge(from, to string) (alpha, beta float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.edges[edgeKey(from, to)]
	if f == nil || f.n < 2 {
		return 0, 0, false
	}
	det := f.n*f.sumBB - f.sumB*f.sumB
	if det == 0 {
		return 0, 0, false
	}
	beta = (f.n*f.sumBMS - f.sumB*f.sumMS) / det
	alpha = (f.sumMS - beta*f.sumB) / f.n
	return alpha, beta, true
}

// Edges returns the sorted list of edges with ship samples.
func (c *Calibrator) Edges() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.edges))
	for k := range c.edges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Apply installs the observed encoding ratio as the cost model's byte
// scale, so subsequent EstShipCost calls price width estimates the way
// the wire actually encodes them. Edge α/β are left untouched — they
// parameterize the simulated WAN itself, not the estimate.
func (c *Calibrator) Apply(m *CostModel) {
	m.SetByteScale(c.EncodingRatio())
}
