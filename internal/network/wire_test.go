package network

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cgdqp/internal/expr"
)

var updateGolden = flag.Bool("update", false, "rewrite wire-format golden fixtures")

// sameValue compares values bitwise (float payloads included) so a
// round-trip must preserve type, NULL-ness and exact payload.
func sameValue(a, b expr.Value) bool {
	return a.T == b.T && a.Null == b.Null && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func roundTrip(t *testing.T, name string, rows []expr.Row, opt WireOptions) []byte {
	t.Helper()
	frame := EncodeBatch(rows, opt)
	got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%s: %d rows decoded, want %d", name, len(got), len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			if !sameValue(got[i][c], rows[i][c]) {
				t.Fatalf("%s: row %d col %d: got %#v want %#v", name, i, c, got[i][c], rows[i][c])
			}
		}
	}
	return frame
}

func checkGolden(t *testing.T, name string, frame []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".wire")
	if *updateGolden {
		if err := os.WriteFile(path, frame, 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s missing (run with -update): %v", path, err)
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("%s: encoding drifted from golden fixture (%d vs %d bytes); "+
			"re-run with -update only if the format change is intentional",
			name, len(frame), len(want))
	}
}

func fixtureRows(name string) []expr.Row {
	switch name {
	case "empty":
		return nil
	case "typical":
		rows := make([]expr.Row, 0, 64)
		for i := 0; i < 64; i++ {
			r := expr.Row{
				expr.NewInt(int64(i * 37)),
				expr.NewFloat(float64(i) / 8),
				expr.NewString([]string{"BRASS", "COPPER", "NICKEL"}[i%3]),
				expr.NewBool(i%2 == 0),
				expr.NewDate(int64(10000 + i)),
			}
			if i%11 == 0 {
				r[0] = expr.TypedNull(expr.TInt)
			}
			rows = append(rows, r)
		}
		return rows
	case "all_null":
		rows := make([]expr.Row, 8)
		for i := range rows {
			rows[i] = expr.Row{expr.TypedNull(expr.TString), expr.NullValue(), expr.NewInt(int64(i))}
		}
		return rows
	case "dict_overflow":
		// Every string distinct: the dictionary must be abandoned.
		rows := make([]expr.Row, 128)
		for i := range rows {
			rows[i] = expr.Row{expr.NewString(fmt.Sprintf("supplier-%04d", i))}
		}
		return rows
	case "mixed":
		return []expr.Row{
			{expr.NewInt(1), expr.NewString("x")},
			{expr.NewString("two"), expr.TypedNull(expr.TFloat)},
			{expr.NewFloat(-0.0), expr.NewBool(true)},
			{expr.NullValue(), expr.NewDate(-40000)},
		}
	}
	return nil
}

// TestWireRoundTripGolden round-trips each fixture and pins its exact
// encoded bytes under testdata/.
func TestWireRoundTripGolden(t *testing.T) {
	for _, name := range []string{"empty", "typical", "all_null", "dict_overflow", "mixed"} {
		frame := roundTrip(t, name, fixtureRows(name), WireOptions{})
		checkGolden(t, name, frame)
		cframe := roundTrip(t, name+"_compressed", fixtureRows(name), WireOptions{Compress: true})
		checkGolden(t, name+"_compressed", cframe)
	}
}

// TestWireCompressionShrinksRepetitive: a repetitive batch must get
// smaller under the compression option, and an incompressible tiny one
// must fall back to the stored form (flag byte 0).
func TestWireCompressionShrinksRepetitive(t *testing.T) {
	rows := make([]expr.Row, 512)
	for i := range rows {
		rows[i] = expr.Row{expr.NewString("ABABABABABABABAB"), expr.NewInt(7)}
	}
	plain := EncodeBatch(rows, WireOptions{})
	comp := EncodeBatch(rows, WireOptions{Compress: true})
	if len(comp) >= len(plain) {
		t.Fatalf("compressed %d >= plain %d", len(comp), len(plain))
	}
	tiny := []expr.Row{{expr.NewInt(1)}}
	ct := EncodeBatch(tiny, WireOptions{Compress: true})
	if ct[2]&wireFlagCompressed != 0 {
		t.Fatalf("tiny incompressible frame was flagged compressed")
	}
	if _, err := DecodeBatch(ct); err != nil {
		t.Fatalf("decode stored-mode frame: %v", err)
	}
}

// TestWireDictionaryChosen: a low-cardinality string column must be
// strictly smaller than the same column encoded with distinct strings.
func TestWireDictionaryChosen(t *testing.T) {
	low := make([]expr.Row, 256)
	for i := range low {
		low[i] = expr.Row{expr.NewString([]string{"EUROPE", "ASIA"}[i%2])}
	}
	frame := EncodeBatch(low, WireOptions{})
	// tag, flags at body start after uvarint counts; flags must carry the
	// dict bit. Parse minimally: body starts after magic+ver+flags+len.
	rows, err := DecodeBatch(frame)
	if err != nil || len(rows) != 256 {
		t.Fatalf("decode: %v", err)
	}
	if len(frame) > 2+256*2 {
		t.Fatalf("dictionary encoding too large: %d bytes for 256 two-value strings", len(frame))
	}
}

// TestWireEncoderReuse: the streaming encoder must produce the same
// bytes as the one-shot helper for consecutive different batches.
func TestWireEncoderReuse(t *testing.T) {
	var enc WireEncoder
	for _, name := range []string{"typical", "dict_overflow", "mixed", "empty", "all_null"} {
		rows := fixtureRows(name)
		got := enc.Encode(rows)
		want := EncodeBatch(rows, WireOptions{})
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: reused encoder diverged (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

// TestWireDecodeCorrupt: truncations and bit flips must error, never
// panic or return wrong rows silently.
func TestWireDecodeCorrupt(t *testing.T) {
	frame := EncodeBatch(fixtureRows("typical"), WireOptions{Compress: true})
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("nil frame decoded")
	}
	for cut := 0; cut < len(frame); cut += 7 {
		if _, err := DecodeBatch(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	for i := 0; i < len(frame); i += 11 {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		rows, err := DecodeBatch(mut)
		if err == nil && rows == nil {
			t.Fatalf("flip at %d: nil rows with nil error", i)
		}
	}
}

// FuzzWireDecode throws arbitrary bytes at the decoder.
func FuzzWireDecode(f *testing.F) {
	for _, name := range []string{"empty", "typical", "mixed"} {
		f.Add(EncodeBatch(fixtureRows(name), WireOptions{}))
		f.Add(EncodeBatch(fixtureRows(name), WireOptions{Compress: true}))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeBatch(data)
		if err == nil {
			// Whatever decoded must re-encode and decode to the same shape.
			again, err2 := DecodeBatch(EncodeBatch(rows, WireOptions{}))
			if err2 != nil || len(again) != len(rows) {
				t.Fatalf("re-encode of decoded rows failed: %v", err2)
			}
		}
	})
}

// TestLZRoundTrip exercises the compressor on edge shapes directly.
func TestLZRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		[]byte("abc"),
		bytes.Repeat([]byte("x"), 100000),
		bytes.Repeat([]byte("abcd1234"), 997),
		func() []byte {
			b := make([]byte, 4096)
			for i := range b {
				b[i] = byte(i * 131)
			}
			return b
		}(),
	}
	for i, c := range cases {
		out, err := lzDecompress(lzCompress(nil, c))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(out, c) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

// TestCalibratorFit: the least-squares fit must recover an exact affine
// relation, and Apply must install the observed encoding ratio.
func TestCalibratorFit(t *testing.T) {
	cal := NewCalibrator()
	if _, _, ok := cal.FitEdge("EU", "AS"); ok {
		t.Fatal("fit with no samples")
	}
	for _, b := range []int64{100, 1000, 5000, 20000} {
		cal.ObserveShip("EU", "AS", b, 180+0.02*float64(b))
	}
	a, bta, ok := cal.FitEdge("EU", "AS")
	if !ok || math.Abs(a-180) > 1e-6 || math.Abs(bta-0.02) > 1e-9 {
		t.Fatalf("fit = %v %v %v, want 180 0.02 true", a, bta, ok)
	}
	cal.ObserveEncoding(1000, 700)
	cal.ObserveEncoding(1000, 500)
	if r := cal.EncodingRatio(); math.Abs(r-0.6) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.6", r)
	}
	m := NewCostModel(10, 0.5)
	cal.Apply(m)
	if got := m.EstShipCost("EU", "AS", 1000); math.Abs(got-(10+0.5*600)) > 1e-9 {
		t.Fatalf("EstShipCost = %v", got)
	}
	if got, want := m.ShipCost("EU", "AS", 1000), 10+0.5*1000.0; got != want {
		t.Fatalf("ShipCost changed under calibration: %v want %v", got, want)
	}
	if es := cal.Edges(); len(es) != 1 || es[0] != "EU>AS" {
		t.Fatalf("edges = %v", es)
	}
}
