package network

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestAutoApplyEveryN(t *testing.T) {
	m := FiveRegionWAN([]string{"L1", "L2"})
	c := NewCalibrator()
	var applies atomic.Int64
	c.SetAutoApply(m, 3, func(ratio float64) {
		applies.Add(1)
		if ratio != 2 {
			t.Errorf("applied ratio = %v, want 2", ratio)
		}
	})

	// Encoded is always 2x estimated.
	for i := 0; i < 7; i++ {
		c.ObserveEncoding(100, 200)
	}
	if got := applies.Load(); got != 2 {
		t.Fatalf("applies = %d, want 2 (frames 3 and 6)", got)
	}
	if got := m.ByteScale(); got != 2 {
		t.Fatalf("byte scale = %v, want 2", got)
	}

	// Disarm: further frames never apply.
	c.SetAutoApply(nil, 0, nil)
	for i := 0; i < 9; i++ {
		c.ObserveEncoding(100, 400)
	}
	if got := applies.Load(); got != 2 {
		t.Fatalf("applies after disarm = %d, want 2", got)
	}
}

func TestAutoApplyNilCallback(t *testing.T) {
	m := FiveRegionWAN([]string{"L1", "L2"})
	c := NewCalibrator()
	c.SetAutoApply(m, 1, nil)
	c.ObserveEncoding(100, 300)
	if got := m.ByteScale(); got != 3 {
		t.Fatalf("byte scale = %v, want 3", got)
	}
}

// TestAutoApplyConcurrentWithReaders drives every-frame auto-apply from
// many observer goroutines while other goroutines read ship costs and
// the byte scale — the regression test that cost-model getters stay
// race-free under continuous calibration (run with -race).
func TestAutoApplyConcurrentWithReaders(t *testing.T) {
	locs := []string{"L1", "L2", "L3"}
	m := FiveRegionWAN(locs)
	c := NewCalibrator()
	c.SetAutoApply(m, 1, func(float64) {})

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				c.ObserveEncoding(100, int64(100+g*50+i%7))
				c.ObserveShip("L1", "L2", 1024, 5)
			}
		}(g)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.EstShipCost("L1", "L2", 4096)
				m.ByteScale()
				c.EncodingRatio()
				c.FitEdge("L1", "L2")
			}
		}()
	}
	// Re-arm concurrently too: SetAutoApply must not race with applies.
	for i := 0; i < 50; i++ {
		c.SetAutoApply(m, 1, func(float64) {})
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if s := m.ByteScale(); s <= 0 {
		t.Fatalf("byte scale = %v after concurrent applies", s)
	}
}
