// Fault injection for the simulated WAN. A FaultPlan describes, per
// directed edge, how the link misbehaves: batches may be dropped in
// flight, delayed, rejected with a transient error, or the edge may be
// partitioned outright. Every decision is a pure function of the plan's
// seed and the send's coordinates (edge, batch index, attempt), so a
// chaos run replays exactly — regardless of goroutine interleaving —
// and a failing seed can be handed to a test or to `cgdqp -chaos-seed`
// for deterministic reproduction.
package network

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors for shipment failures. ShipError wraps one of these
// (or a transient cause) with the edge and attempt count.
var (
	// ErrPartitioned reports that the edge is down: no attempt can
	// succeed until the partition heals. Not retryable within a run.
	ErrPartitioned = errors.New("network: edge partitioned")
	// ErrBatchDropped reports a batch lost in flight; retryable.
	ErrBatchDropped = errors.New("network: batch dropped in flight")
	// ErrTransient reports a transient send failure; retryable.
	ErrTransient = errors.New("network: transient send failure")
	// ErrShipTimeout reports that one send attempt exceeded the edge's
	// simulated time budget; retryable.
	ErrShipTimeout = errors.New("network: send attempt timed out")
)

// ShipError is the typed terminal error of a failed shipment: the edge,
// how many attempts were made, and the last underlying cause. It is
// what executors return when retries are exhausted, so callers can
// distinguish a network failure from a query-evaluation error.
type ShipError struct {
	From, To string
	Attempts int
	Err      error
}

func (e *ShipError) Error() string {
	return fmt.Sprintf("network: shipment %s -> %s failed after %d attempt(s): %v",
		e.From, e.To, e.Attempts, e.Err)
}

func (e *ShipError) Unwrap() error { return e.Err }

// EdgeFaults configures how one directed edge misbehaves. Probabilities
// are in [0,1] and evaluated independently per send attempt.
type EdgeFaults struct {
	// DropProb is the probability a batch is lost in flight: the wire
	// time is spent but the batch never arrives and must be resent.
	DropProb float64
	// TransientProb is the probability the send fails immediately with
	// a transient error (connection reset before any bytes move).
	TransientProb float64
	// DelayProb is the probability the send is slowed by DelayMS of
	// extra simulated latency (congestion); the batch still arrives
	// unless the delay pushes the attempt over the retry timeout.
	DelayProb float64
	// DelayMS is the extra simulated latency of a delayed send.
	DelayMS float64
	// Partitioned marks the edge down: every attempt fails with
	// ErrPartitioned.
	Partitioned bool
}

// Zero reports whether the configuration injects no faults at all.
func (f EdgeFaults) Zero() bool {
	return f.DropProb == 0 && f.TransientProb == 0 && f.DelayProb == 0 && !f.Partitioned
}

// Verdict is the fault outcome of one send attempt.
type Verdict struct {
	Drop        bool
	Transient   bool
	Partitioned bool
	// ExtraDelayMS is additional simulated latency for this attempt.
	ExtraDelayMS float64
}

// Err maps the verdict to its sentinel error (nil when the attempt is
// allowed through).
func (v Verdict) Err() error {
	switch {
	case v.Partitioned:
		return ErrPartitioned
	case v.Transient:
		return ErrTransient
	case v.Drop:
		return ErrBatchDropped
	}
	return nil
}

// FaultPlan maps directed edges to fault configurations and derives
// deterministic per-attempt decisions from a seed. The zero-probability
// plan behaves like no plan at all. Configure it fully before execution
// starts; Decide is safe for concurrent use with itself (configuration
// methods take the write lock, so late re-configuration is race-free
// but not replayable).
type FaultPlan struct {
	mu    sync.RWMutex
	seed  uint64
	edges map[string]EdgeFaults
	def   EdgeFaults
	// count tallies injected faults, for reports and tests.
	count struct {
		drops, transients, delays, partitions int64
	}
}

// NewFaultPlan returns an empty plan (no faults) with the given seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: uint64(seed), edges: map[string]EdgeFaults{}}
}

// Seed returns the plan's seed.
func (p *FaultPlan) Seed() int64 { return int64(p.seed) }

// SetEdge configures faults for one directed edge.
func (p *FaultPlan) SetEdge(from, to string, f EdgeFaults) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.edges[edgeKey(from, to)] = f
	return p
}

// SetDefault configures the faults applied to every edge that has no
// explicit SetEdge entry.
func (p *FaultPlan) SetDefault(f EdgeFaults) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.def = f
	return p
}

// Edge returns the fault configuration in effect for an edge.
func (p *FaultPlan) Edge(from, to string) EdgeFaults {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if f, ok := p.edges[edgeKey(from, to)]; ok {
		return f
	}
	return p.def
}

// Counts returns how many faults of each kind the plan has injected.
func (p *FaultPlan) Counts() (drops, transients, delays, partitions int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c := p.count
	return c.drops, c.transients, c.delays, c.partitions
}

// Decide returns the fault outcome for one send attempt. batch is the
// batch's ordinal within its shipment and attempt the 1-based retry
// ordinal; together with the edge they fully determine the outcome, so
// replays under the same seed fail identically. Intra-site moves
// (from == to) never fault.
func (p *FaultPlan) Decide(from, to string, batch, attempt int) Verdict {
	if p == nil || from == to {
		return Verdict{}
	}
	f := p.Edge(from, to)
	if f.Zero() {
		return Verdict{}
	}
	var v Verdict
	if f.Partitioned {
		v.Partitioned = true
		p.bump(&p.count.partitions)
		return v
	}
	h := newFaultRNG(p.seed, edgeKey(from, to), batch, attempt)
	if h.uniform() < f.TransientProb {
		v.Transient = true
		p.bump(&p.count.transients)
		return v
	}
	if h.uniform() < f.DropProb {
		v.Drop = true
		p.bump(&p.count.drops)
		return v
	}
	if h.uniform() < f.DelayProb {
		v.ExtraDelayMS = f.DelayMS
		p.bump(&p.count.delays)
	}
	return v
}

// Jitter returns a deterministic uniform in [0,1) for backoff jitter,
// keyed like Decide so backoff schedules replay too.
func (p *FaultPlan) Jitter(from, to string, batch, attempt int) float64 {
	if p == nil {
		return 0
	}
	h := newFaultRNG(p.seed^0x9e3779b97f4a7c15, edgeKey(from, to), batch, attempt)
	return h.uniform()
}

func (p *FaultPlan) bump(c *int64) {
	p.mu.Lock()
	*c++
	p.mu.Unlock()
}

// faultRNG is a counter-based splitmix64 generator: seeded from the
// (seed, edge, batch, attempt) coordinates, it yields an independent
// uniform stream per send attempt with no shared state, which is what
// makes concurrent chaos runs replay exactly.
type faultRNG struct{ state uint64 }

func newFaultRNG(seed uint64, edge string, batch, attempt int) *faultRNG {
	// FNV-1a over the edge name, mixed with the coordinates.
	h := uint64(14695981039346656037)
	for i := 0; i < len(edge); i++ {
		h = (h ^ uint64(edge[i])) * 1099511628211
	}
	h ^= seed
	h = splitmix64(h + uint64(batch)*0x9e3779b97f4a7c15)
	h = splitmix64(h + uint64(attempt)*0xbf58476d1ce4e5b9)
	return &faultRNG{state: h}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *faultRNG) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// uniform returns the next value in [0,1).
func (r *faultRNG) uniform() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// RetryPolicy governs how executors retry failed send attempts: capped
// exponential backoff with deterministic jitter, and a per-attempt
// simulated time budget.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per batch (first send
	// included). Values < 1 mean 1: no retries.
	MaxAttempts int
	// BaseBackoff is the wall-clock wait before the second attempt;
	// each further attempt multiplies it by Multiplier, capped at
	// MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// JitterFrac widens each backoff by up to ±JitterFrac of itself
	// (deterministically, via FaultPlan.Jitter).
	JitterFrac float64
	// TimeoutMS bounds one attempt's simulated wire time (the modeled
	// cost in ms plus any injected delay); an attempt over budget fails
	// with ErrShipTimeout and is retried. 0 disables the check.
	TimeoutMS float64
}

// DefaultRetryPolicy returns the retry configuration used when a fault
// plan is installed without an explicit policy: 4 attempts, 1ms..16ms
// exponential backoff with 20% jitter, no per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  16 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

// Attempts returns the effective attempt budget (always ≥ 1).
func (r RetryPolicy) Attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// Backoff computes the wall-clock wait after the given failed attempt
// (1-based), applying the exponential schedule, the cap, and jitter
// (a uniform in [0,1), e.g. from FaultPlan.Jitter).
func (r RetryPolicy) Backoff(attempt int, jitter float64) time.Duration {
	if r.BaseBackoff <= 0 {
		return 0
	}
	mult := r.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(r.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= mult
		if r.MaxBackoff > 0 && d >= float64(r.MaxBackoff) {
			d = float64(r.MaxBackoff)
			break
		}
	}
	if r.MaxBackoff > 0 && d > float64(r.MaxBackoff) {
		d = float64(r.MaxBackoff)
	}
	if r.JitterFrac > 0 {
		// Spread over [1-J, 1+J) so retries desynchronize.
		d *= 1 - r.JitterFrac + 2*r.JitterFrac*jitter
	}
	return time.Duration(d)
}
