package network

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLedgerSnapshotConsistent reads totals mid-run while concurrent
// shipments append batches, and checks every snapshot is internally
// consistent: rows and bytes move in lock-step (each writer adds them
// together under the ledger lock), so a snapshot must never observe the
// rows of one instant with the bytes of another. Run under -race this
// is also the regression test for unguarded mid-run ledger reads.
func TestLedgerSnapshotConsistent(t *testing.T) {
	const (
		writers      = 4
		batches      = 200
		rowsPerBatch = 10
		bytesPerRow  = 8
	)
	l := NewLedger(UniformWAN(5, 0.001))

	var wg sync.WaitGroup
	var writing atomic.Int32
	writing.Store(writers)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		ship := l.OpenShipment("E", "N")
		wg.Add(1)
		go func(s *Shipment) {
			defer wg.Done()
			defer writing.Add(-1)
			<-start
			for i := 0; i < batches; i++ {
				s.Add(rowsPerBatch, rowsPerBatch*bytesPerRow)
			}
		}(ship)
	}

	done := make(chan struct{})
	var snaps []LedgerSnapshot
	go func() {
		defer close(done)
		for {
			snaps = append(snaps, l.Snapshot())
			if writing.Load() == 0 {
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	<-done

	if len(snaps) == 0 {
		t.Fatal("reader goroutine took no snapshots")
	}
	for i, s := range snaps {
		if s.Bytes != s.Rows*bytesPerRow {
			t.Fatalf("snapshot %d inconsistent: rows=%d bytes=%d (want bytes = rows*%d)", i, s.Rows, s.Bytes, bytesPerRow)
		}
	}

	final := l.Snapshot()
	wantRows := int64(writers * batches * rowsPerBatch)
	if final.Rows != wantRows || final.Bytes != wantRows*bytesPerRow {
		t.Fatalf("final snapshot rows=%d bytes=%d, want rows=%d bytes=%d", final.Rows, final.Bytes, wantRows, wantRows*bytesPerRow)
	}
	if final.Transfers != writers {
		t.Fatalf("final snapshot transfers=%d, want %d", final.Transfers, writers)
	}
	// On a quiescent ledger Snapshot must agree bit-for-bit with the
	// individual accessors (same sorted-sum algorithm for the cost).
	if got, want := final.Cost, l.TotalCost(); got != want {
		t.Fatalf("Snapshot().Cost=%v != TotalCost()=%v", got, want)
	}
	if final.Rows != l.TotalRows() || final.Bytes != l.TotalBytes() {
		t.Fatalf("Snapshot totals disagree with accessors: %+v", final)
	}
}
