package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cgdqp/internal/expr"
)

// Wire format. A shipped batch travels as one self-delimiting frame:
//
//	byte    magic (0xC6)
//	byte    version (1)
//	byte    flags (bit0: body is lz-compressed)
//	uvarint body length in bytes
//	body
//
// The body (after decompression when flagged) is columnar:
//
//	uvarint row count
//	uvarint column count
//	column*
//
// Each column starts with a tag byte and a flag byte. The tag names the
// lane of the non-NULL values (colInt, colFloat, colString, colBool,
// colDate), colAllNull for a column with no non-NULL values, or
// colMixed when the rows disagree on a value's runtime type (then every
// value carries its own tag and the column is self-describing). Flags:
// bit0 — the column has NULLs, in which case a NULL-type byte (the type
// tag NULL values carry, 0 for untyped NULL) and a bit-packed validity
// bitmap (1 = NULL) follow; bit1 — string data is dictionary-encoded.
//
// Lane payloads store non-NULL values only, in row order: zig-zag
// varints for ints and dates, 8-byte little-endian IEEE floats,
// bit-packed booleans (a full n-bit map, NULL slots zero), and strings
// either plain (uvarint length + bytes each) or as a first-appearance
// dictionary (uvarint entry count, entries, then one uvarint index per
// value). The dictionary is abandoned for plain encoding when it grows
// past wireDictMax distinct entries or past 3/4 of the value count —
// at that point it would cost more than it saves.
//
// Decoding reconstructs each expr.Value exactly — type, NULL-ness and
// payload — so a decoded batch is indistinguishable from the encoded
// one; both engines rely on that for bit-identical results and ledger
// parity.

const (
	wireMagic   = 0xC6
	wireVersion = 1

	wireFlagCompressed = 0x01

	colAllNull = 0x00
	colInt     = byte(expr.TInt)
	colFloat   = byte(expr.TFloat)
	colString  = byte(expr.TString)
	colBool    = byte(expr.TBool)
	colDate    = byte(expr.TDate)
	colMixed   = 0x0F

	colFlagNulls = 0x01
	colFlagDict  = 0x02

	// wireDictMax caps the string dictionary; past it the column is
	// re-encoded plain. Kept small enough that a dictionary always fits
	// comfortably in one frame.
	wireDictMax = 4096
)

// ErrWireCorrupt reports a frame that does not parse.
var ErrWireCorrupt = errors.New("network: corrupt wire frame")

// WireOptions configures batch encoding.
type WireOptions struct {
	// Compress runs the frame body through the built-in LZ compressor
	// when it shrinks the body.
	Compress bool
}

// WireEncoder encodes row batches into wire frames, reusing its buffers
// across calls. Not safe for concurrent use; each shipping operator
// owns one.
type WireEncoder struct {
	Opt  WireOptions
	buf  []byte
	body []byte
	dict map[string]int
}

// Encode serializes the batch into a frame. The returned slice is valid
// until the next Encode call on this encoder.
func (e *WireEncoder) Encode(rows []expr.Row) []byte {
	e.body = appendBody(e.body[:0], rows, e)
	e.buf = append(e.buf[:0], wireMagic, wireVersion)
	if e.Opt.Compress {
		compressed := lzCompress(nil, e.body)
		if len(compressed) < len(e.body) {
			e.buf = append(e.buf, wireFlagCompressed)
			e.buf = binary.AppendUvarint(e.buf, uint64(len(compressed)))
			return append(e.buf, compressed...)
		}
	}
	e.buf = append(e.buf, 0)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(e.body)))
	return append(e.buf, e.body...)
}

// EncodeBatch serializes one batch with a throwaway encoder and returns
// a fresh buffer.
func EncodeBatch(rows []expr.Row, opt WireOptions) []byte {
	e := WireEncoder{Opt: opt}
	return append([]byte(nil), e.Encode(rows)...)
}

// appendBody appends the uncompressed columnar body.
func appendBody(dst []byte, rows []expr.Row, e *WireEncoder) []byte {
	nCols := 0
	for _, r := range rows {
		if len(r) > nCols {
			nCols = len(r)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	dst = binary.AppendUvarint(dst, uint64(nCols))
	for c := 0; c < nCols; c++ {
		dst = appendColumn(dst, rows, c, e)
	}
	return dst
}

// colShape classifies column c: the shared lane of the non-NULL values
// (0 if there are none), the shared type tag of the NULLs, and whether
// the column is lane-pure at all. A row too short to reach the column
// contributes an untyped NULL.
func colShape(rows []expr.Row, c int) (lane, nullT byte, hasNulls, pure bool) {
	nullT = 0xFF // unset
	for _, r := range rows {
		var v expr.Value
		if c < len(r) {
			v = r[c]
		} else {
			v = expr.NullValue()
		}
		if v.IsNull() {
			hasNulls = true
			if nullT == 0xFF {
				nullT = byte(v.T)
			} else if nullT != byte(v.T) {
				return 0, 0, true, false
			}
			continue
		}
		if lane == 0 {
			lane = byte(v.T)
		} else if lane != byte(v.T) {
			return 0, 0, hasNulls, false
		}
	}
	if nullT == 0xFF {
		nullT = 0
	}
	return lane, nullT, hasNulls, true
}

func colValue(rows []expr.Row, i, c int) expr.Value {
	if c < len(rows[i]) {
		return rows[i][c]
	}
	return expr.NullValue()
}

func appendColumn(dst []byte, rows []expr.Row, c int, e *WireEncoder) []byte {
	lane, nullT, hasNulls, pure := colShape(rows, c)
	if !pure {
		return appendMixedColumn(dst, rows, c)
	}
	tag := lane
	if lane == 0 {
		tag = colAllNull
	}
	flags := byte(0)
	if hasNulls {
		flags |= colFlagNulls
	}
	var dict []string
	var dictIdx []int
	if lane == colString {
		dict, dictIdx = buildDict(rows, c, e)
		if dict != nil {
			flags |= colFlagDict
		}
	}
	dst = append(dst, tag, flags)
	if hasNulls {
		dst = append(dst, nullT)
		dst = appendNullBitmap(dst, rows, c)
	}
	switch lane {
	case 0:
		// All-NULL: the bitmap says it all.
	case colInt, colDate:
		for i := range rows {
			if v := colValue(rows, i, c); !v.IsNull() {
				dst = appendZigzag(dst, v.I)
			}
		}
	case colFloat:
		for i := range rows {
			if v := colValue(rows, i, c); !v.IsNull() {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
			}
		}
	case colBool:
		dst = appendBoolBits(dst, rows, c)
	case colString:
		if dict != nil {
			dst = binary.AppendUvarint(dst, uint64(len(dict)))
			for _, s := range dict {
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
			for _, ix := range dictIdx {
				dst = binary.AppendUvarint(dst, uint64(ix))
			}
		} else {
			for i := range rows {
				if v := colValue(rows, i, c); !v.IsNull() {
					dst = binary.AppendUvarint(dst, uint64(len(v.S)))
					dst = append(dst, v.S...)
				}
			}
		}
	}
	return dst
}

// buildDict collects the column's distinct strings in first-appearance
// order and the per-value indexes. It returns (nil, nil) when the
// dictionary overflows wireDictMax or exceeds 3/4 of the value count —
// then plain encoding is cheaper.
func buildDict(rows []expr.Row, c int, e *WireEncoder) ([]string, []int) {
	if e.dict == nil {
		e.dict = make(map[string]int)
	} else {
		clear(e.dict)
	}
	var dict []string
	var idx []int
	for i := range rows {
		v := colValue(rows, i, c)
		if v.IsNull() {
			continue
		}
		ix, ok := e.dict[v.S]
		if !ok {
			ix = len(dict)
			if ix >= wireDictMax {
				return nil, nil
			}
			e.dict[v.S] = ix
			dict = append(dict, v.S)
		}
		idx = append(idx, ix)
	}
	if len(idx) > 0 && len(dict)*4 > len(idx)*3 {
		return nil, nil
	}
	return dict, idx
}

func appendNullBitmap(dst []byte, rows []expr.Row, c int) []byte {
	n := len(rows)
	start := len(dst)
	dst = append(dst, make([]byte, (n+7)/8)...)
	for i := range rows {
		if colValue(rows, i, c).IsNull() {
			dst[start+i/8] |= 1 << uint(i%8)
		}
	}
	return dst
}

func appendBoolBits(dst []byte, rows []expr.Row, c int) []byte {
	n := len(rows)
	start := len(dst)
	dst = append(dst, make([]byte, (n+7)/8)...)
	for i := range rows {
		if v := colValue(rows, i, c); !v.IsNull() && v.I != 0 {
			dst[start+i/8] |= 1 << uint(i%8)
		}
	}
	return dst
}

// appendMixedColumn writes one self-describing value per row:
// byte (0x80|typeTag for NULL of that type, plain tag otherwise), then
// the payload for non-NULLs.
func appendMixedColumn(dst []byte, rows []expr.Row, c int) []byte {
	dst = append(dst, colMixed, 0)
	for i := range rows {
		v := colValue(rows, i, c)
		if v.IsNull() {
			dst = append(dst, 0x80|byte(v.T))
			continue
		}
		dst = append(dst, byte(v.T))
		switch v.T {
		case expr.TInt, expr.TDate:
			dst = appendZigzag(dst, v.I)
		case expr.TFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case expr.TString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case expr.TBool:
			b := byte(0)
			if v.I != 0 {
				b = 1
			}
			dst = append(dst, b)
		}
	}
	return dst
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// ---- decoding ----

type wireReader struct {
	b   []byte
	pos int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrWireCorrupt
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *wireReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.pos : r.pos+n]
	r.pos += n
	return v
}

func (r *wireReader) float() float64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// decodeBody validates the frame envelope and returns the decompressed
// body.
func decodeBody(frame []byte) ([]byte, error) {
	if len(frame) < 3 || frame[0] != wireMagic || frame[1] != wireVersion {
		return nil, ErrWireCorrupt
	}
	flags := frame[2]
	bodyLen, n := binary.Uvarint(frame[3:])
	if n <= 0 {
		return nil, ErrWireCorrupt
	}
	body := frame[3+n:]
	if uint64(len(body)) != bodyLen {
		return nil, ErrWireCorrupt
	}
	if flags&wireFlagCompressed != 0 {
		raw, err := lzDecompress(body)
		if err != nil {
			return nil, err
		}
		body = raw
	}
	return body, nil
}

// DecodeBatch parses one frame produced by Encode and returns the rows.
func DecodeBatch(frame []byte) ([]expr.Row, error) {
	body, err := decodeBody(frame)
	if err != nil {
		return nil, err
	}
	r := &wireReader{b: body}
	nRows := int(r.uvarint())
	nCols := int(r.uvarint())
	if r.err != nil || nRows < 0 || nCols < 0 || nRows > 1<<24 || nCols > 1<<16 {
		return nil, ErrWireCorrupt
	}
	cells := make([]expr.Value, nRows*nCols)
	rows := make([]expr.Row, nRows)
	for i := range rows {
		rows[i] = cells[i*nCols : (i+1)*nCols : (i+1)*nCols]
	}
	for c := 0; c < nCols; c++ {
		if err := decodeColumn(r, rows, c, nRows); err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWireCorrupt, len(r.b)-r.pos)
	}
	return rows, nil
}

// DecodeBatchCols parses one frame directly into dst as owned column
// vectors, with no intermediate row materialization: the batch engine's
// exchange operators feed decoded SHIP frames straight into columnar
// pipelines. Every decoded vector reproduces the encoded values exactly
// (lane payloads, NULL type tags), so a consumer that does materialize
// rows gets bit-identical tuples to DecodeBatch. A frame containing a
// mixed (not lane-pure) column falls back to row decoding into dst.
func DecodeBatchCols(frame []byte, dst *expr.Batch) error {
	body, err := decodeBody(frame)
	if err != nil {
		return err
	}
	r := &wireReader{b: body}
	nRows := int(r.uvarint())
	nCols := int(r.uvarint())
	if r.err != nil || nRows < 0 || nCols < 0 || nRows > 1<<24 || nCols > 1<<16 {
		return ErrWireCorrupt
	}
	dst.StartCols(nCols, nRows)
	for c := 0; c < nCols; c++ {
		ok, err := decodeColumnVec(r, dst.OwnCol(c), nRows)
		if err != nil {
			return err
		}
		if !ok {
			// Mixed column: no single lane holds it. Decode row-wise.
			rows, err := DecodeBatch(frame)
			if err != nil {
				return err
			}
			dst.SetRows(rows)
			return nil
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrWireCorrupt, len(r.b)-r.pos)
	}
	dst.FinishCols()
	return nil
}

// decodeColumnVec decodes one lane-pure column into v. ok is false
// (without error) for a colMixed tag, which has no vector form.
func decodeColumnVec(r *wireReader, v *expr.Vec, n int) (bool, error) {
	tag := r.byte()
	flags := r.byte()
	if r.err != nil {
		return false, r.err
	}
	if tag == colMixed {
		return false, nil
	}
	var nullBytes []byte
	nullT := expr.TNull
	if flags&colFlagNulls != 0 {
		nullT = expr.Type(r.byte())
		nullBytes = r.bytes((n + 7) / 8)
		if r.err != nil {
			return false, r.err
		}
	}
	isNull := func(i int) bool {
		return nullBytes != nil && nullBytes[i/8]&(1<<uint(i%8)) != 0
	}
	lane := expr.Type(tag)
	if tag == colAllNull {
		// Give the all-NULL column its NULLs' lane so typed consumers can
		// still bind it; values materialize as the encoded typed NULLs.
		lane = nullT
	}
	v.Reset(lane, n)
	v.NullT = nullT
	var nulls expr.Bitmap
	if nullBytes != nil {
		nulls = v.EnsureNull()
		for i := 0; i < n; i++ {
			if isNull(i) {
				nulls.Set(i)
			}
		}
	}
	switch tag {
	case colAllNull:
		// The bitmap said it all.
	case colInt, colDate:
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			v.I[i] = r.zigzag()
		}
	case colFloat:
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			v.F[i] = r.float()
		}
	case colBool:
		bits := r.bytes((n + 7) / 8)
		if r.err != nil {
			return false, r.err
		}
		// NULL slots are encoded as zero bits, so a straight copy of the
		// set bits reproduces both value and NULL semantics.
		for i := 0; i < n; i++ {
			if bits[i/8]&(1<<uint(i%8)) != 0 {
				v.B.Set(i)
			}
		}
	case colString:
		if flags&colFlagDict != 0 {
			dn := int(r.uvarint())
			if r.err != nil || dn < 0 || dn > wireDictMax {
				r.fail()
				return false, r.err
			}
			dict := make([]string, dn)
			for j := range dict {
				dict[j] = string(r.bytes(int(r.uvarint())))
			}
			for i := 0; i < n; i++ {
				if isNull(i) {
					v.S[i] = ""
					continue
				}
				ix := int(r.uvarint())
				if r.err != nil || ix >= dn {
					r.fail()
					return false, r.err
				}
				v.S[i] = dict[ix]
			}
		} else {
			for i := 0; i < n; i++ {
				if isNull(i) {
					v.S[i] = ""
					continue
				}
				v.S[i] = string(r.bytes(int(r.uvarint())))
			}
		}
	default:
		return false, fmt.Errorf("%w: unknown column tag %#x", ErrWireCorrupt, tag)
	}
	return true, r.err
}

func decodeColumn(r *wireReader, rows []expr.Row, c, n int) error {
	tag := r.byte()
	flags := r.byte()
	if r.err != nil {
		return r.err
	}
	if tag == colMixed {
		return decodeMixedColumn(r, rows, c, n)
	}
	var nulls []byte
	nullV := expr.NullValue()
	if flags&colFlagNulls != 0 {
		nt := r.byte()
		if nt != 0 {
			nullV = expr.TypedNull(expr.Type(nt))
		}
		nulls = r.bytes((n + 7) / 8)
	}
	isNull := func(i int) bool {
		return nulls != nil && nulls[i/8]&(1<<uint(i%8)) != 0
	}
	switch tag {
	case colAllNull:
		for i := 0; i < n; i++ {
			rows[i][c] = nullV
		}
	case colInt, colDate:
		t := expr.Type(tag)
		for i := 0; i < n; i++ {
			if isNull(i) {
				rows[i][c] = nullV
				continue
			}
			v := r.zigzag()
			if t == expr.TDate {
				rows[i][c] = expr.NewDate(v)
			} else {
				rows[i][c] = expr.NewInt(v)
			}
		}
	case colFloat:
		for i := 0; i < n; i++ {
			if isNull(i) {
				rows[i][c] = nullV
				continue
			}
			rows[i][c] = expr.NewFloat(r.float())
		}
	case colBool:
		bits := r.bytes((n + 7) / 8)
		if r.err != nil {
			return r.err
		}
		for i := 0; i < n; i++ {
			if isNull(i) {
				rows[i][c] = nullV
				continue
			}
			rows[i][c] = expr.NewBool(bits[i/8]&(1<<uint(i%8)) != 0)
		}
	case colString:
		if flags&colFlagDict != 0 {
			dn := int(r.uvarint())
			if r.err != nil || dn < 0 || dn > wireDictMax {
				r.fail()
				return r.err
			}
			dict := make([]string, dn)
			for j := range dict {
				dict[j] = string(r.bytes(int(r.uvarint())))
			}
			for i := 0; i < n; i++ {
				if isNull(i) {
					rows[i][c] = nullV
					continue
				}
				ix := int(r.uvarint())
				if r.err != nil || ix >= dn {
					r.fail()
					return r.err
				}
				rows[i][c] = expr.NewString(dict[ix])
			}
		} else {
			for i := 0; i < n; i++ {
				if isNull(i) {
					rows[i][c] = nullV
					continue
				}
				rows[i][c] = expr.NewString(string(r.bytes(int(r.uvarint()))))
			}
		}
	default:
		return fmt.Errorf("%w: unknown column tag %#x", ErrWireCorrupt, tag)
	}
	return r.err
}

func decodeMixedColumn(r *wireReader, rows []expr.Row, c, n int) error {
	for i := 0; i < n; i++ {
		vt := r.byte()
		if r.err != nil {
			return r.err
		}
		if vt&0x80 != 0 {
			t := expr.Type(vt &^ 0x80)
			if t == expr.TNull {
				rows[i][c] = expr.NullValue()
			} else {
				rows[i][c] = expr.TypedNull(t)
			}
			continue
		}
		switch expr.Type(vt) {
		case expr.TInt:
			rows[i][c] = expr.NewInt(r.zigzag())
		case expr.TDate:
			rows[i][c] = expr.NewDate(r.zigzag())
		case expr.TFloat:
			rows[i][c] = expr.NewFloat(r.float())
		case expr.TString:
			rows[i][c] = expr.NewString(string(r.bytes(int(r.uvarint()))))
		case expr.TBool:
			rows[i][c] = expr.NewBool(r.byte() != 0)
		default:
			return fmt.Errorf("%w: unknown value tag %#x", ErrWireCorrupt, vt)
		}
	}
	return r.err
}
