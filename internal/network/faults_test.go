package network

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFaultPlanDeterminism: decisions are a pure function of (seed,
// edge, batch, attempt) — two plans with the same seed agree on every
// coordinate, regardless of query order or goroutine interleaving.
func TestFaultPlanDeterminism(t *testing.T) {
	faults := EdgeFaults{DropProb: 0.3, TransientProb: 0.2, DelayProb: 0.3, DelayMS: 25}
	a := NewFaultPlan(42).SetDefault(faults)
	b := NewFaultPlan(42).SetDefault(faults)
	edges := [][2]string{{"EU", "AS"}, {"AS", "EU"}, {"NA", "EU"}}
	// Query b in reverse order to prove order-independence.
	type coord struct {
		e              [2]string
		batch, attempt int
	}
	var coords []coord
	for _, e := range edges {
		for batch := 0; batch < 50; batch++ {
			for attempt := 1; attempt <= 3; attempt++ {
				coords = append(coords, coord{e, batch, attempt})
			}
		}
	}
	want := make([]Verdict, len(coords))
	for i, c := range coords {
		want[i] = a.Decide(c.e[0], c.e[1], c.batch, c.attempt)
	}
	for i := len(coords) - 1; i >= 0; i-- {
		c := coords[i]
		if got := b.Decide(c.e[0], c.e[1], c.batch, c.attempt); got != want[i] {
			t.Fatalf("decision for %v diverged: %+v vs %+v", c, got, want[i])
		}
	}
	// A different seed must not replay the same fault pattern.
	c := NewFaultPlan(43).SetDefault(faults)
	same := true
	for i, co := range coords {
		if c.Decide(co.e[0], co.e[1], co.batch, co.attempt) != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault patterns")
	}
}

// TestFaultPlanRates: injected fault frequencies track the configured
// probabilities, and intra-site sends never fault.
func TestFaultPlanRates(t *testing.T) {
	p := NewFaultPlan(7).SetDefault(EdgeFaults{DropProb: 0.2, TransientProb: 0.1, DelayProb: 0.25, DelayMS: 5})
	const n = 20000
	var drops, transients, delays int
	for batch := 0; batch < n; batch++ {
		v := p.Decide("EU", "AS", batch, 1)
		switch {
		case v.Drop:
			drops++
		case v.Transient:
			transients++
		case v.ExtraDelayMS > 0:
			delays++
		}
	}
	// Transient is checked first (10%), then drop (20% of the rest),
	// then delay (25% of the rest); allow generous tolerance.
	checkRate := func(name string, got int, lo, hi float64) {
		r := float64(got) / n
		if r < lo || r > hi {
			t.Errorf("%s rate %.3f outside [%.3f, %.3f]", name, r, lo, hi)
		}
	}
	checkRate("transient", transients, 0.08, 0.12)
	checkRate("drop", drops, 0.15, 0.21)
	checkRate("delay", delays, 0.14, 0.21)
	if v := p.Decide("EU", "EU", 0, 1); v != (Verdict{}) {
		t.Errorf("intra-site send faulted: %+v", v)
	}
	var nilPlan *FaultPlan
	if v := nilPlan.Decide("EU", "AS", 0, 1); v != (Verdict{}) {
		t.Errorf("nil plan faulted: %+v", v)
	}
}

func TestFaultPlanPartitionAndEdgeOverride(t *testing.T) {
	p := NewFaultPlan(1).SetEdge("EU", "AS", EdgeFaults{Partitioned: true})
	v := p.Decide("EU", "AS", 0, 1)
	if !v.Partitioned {
		t.Fatal("configured partition not reported")
	}
	if !errors.Is(v.Err(), ErrPartitioned) {
		t.Fatalf("verdict error = %v, want ErrPartitioned", v.Err())
	}
	// The reverse direction is unconfigured and must pass.
	if v := p.Decide("AS", "EU", 0, 1); v != (Verdict{}) {
		t.Errorf("unconfigured edge faulted: %+v", v)
	}
	_, _, _, partitions := p.Counts()
	if partitions == 0 {
		t.Error("partition not counted")
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	r := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Multiplier: 2}
	for i, want := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond} {
		if got := r.Backoff(i+1, 0); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	// Jitter spreads by ±frac around the schedule.
	j := RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, Multiplier: 2, JitterFrac: 0.5}
	lo, hi := j.Backoff(1, 0), j.Backoff(1, 0.999)
	if lo < 4*time.Millisecond || lo > 6*time.Millisecond {
		t.Errorf("low-jitter backoff %v outside [5ms±1ms]", lo)
	}
	if hi < 14*time.Millisecond || hi > 16*time.Millisecond {
		t.Errorf("high-jitter backoff %v outside [15ms±1ms]", hi)
	}
	if (RetryPolicy{}).Attempts() != 1 {
		t.Error("zero policy should allow exactly one attempt")
	}
}

func TestShipErrorUnwrap(t *testing.T) {
	err := error(&ShipError{From: "EU", To: "AS", Attempts: 4, Err: ErrBatchDropped})
	if !errors.Is(err, ErrBatchDropped) {
		t.Error("ShipError should unwrap to its cause")
	}
	var se *ShipError
	if !errors.As(err, &se) || se.Attempts != 4 {
		t.Errorf("errors.As failed: %+v", se)
	}
}

// TestCostModelConcurrentAccess hammers SetEdge against the getters so
// `go test -race ./internal/network` proves the cost model's locking
// (the getters used to read the maps unlocked).
func TestCostModelConcurrentAccess(t *testing.T) {
	m := NewCostModel(10, 0.001)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.SetEdge("EU", "AS", float64(i), 0.002)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				_ = m.Alpha("EU", "AS")
				_ = m.Beta("EU", "AS")
				_ = m.ShipCost("EU", "AS", 128)
			}
		}()
	}
	// Concurrent fault decisions share the readers' race scope.
	p := NewFaultPlan(3).SetDefault(EdgeFaults{DropProb: 0.5})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				p.Decide("EU", "AS", i, 1)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
