// Package network implements the message cost model of Section 7.4: the
// cost of shipping b bytes from site i to site j is α_ij + β_ij × b,
// where α is the start-up cost (one round trip) and β the per-byte cost
// (inverse bandwidth). It also provides a transfer ledger that the
// executor uses to account the bytes actually shipped by a plan.
package network

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// CostModel prices inter-site transfers. Costs are in milliseconds.
// SetEdge and the getters may be called concurrently (the parallel
// executor prices shipments from many goroutines while tooling reshapes
// the network); the edge maps are guarded by an RWMutex. The exported
// default fields are read without the lock: set them before sharing the
// model.
type CostModel struct {
	mu    sync.RWMutex
	alpha map[string]float64 // "from>to" -> startup ms
	beta  map[string]float64 // "from>to" -> ms per byte

	// byteScale converts optimizer size estimates into expected wire
	// bytes (see EstShipCost); 0 means the neutral 1.
	byteScale float64

	// Defaults apply to unknown edges. Single-writer: assign them
	// before the model is shared across goroutines.
	DefaultAlpha float64
	DefaultBeta  float64
}

// NewCostModel returns a cost model with the given defaults.
func NewCostModel(defaultAlpha, defaultBeta float64) *CostModel {
	return &CostModel{
		alpha:        map[string]float64{},
		beta:         map[string]float64{},
		DefaultAlpha: defaultAlpha,
		DefaultBeta:  defaultBeta,
	}
}

func edgeKey(from, to string) string { return from + ">" + to }

// SetEdge records α and β for a directed edge.
func (m *CostModel) SetEdge(from, to string, alpha, beta float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alpha[edgeKey(from, to)] = alpha
	m.beta[edgeKey(from, to)] = beta
}

// Alpha returns the startup cost of the edge.
func (m *CostModel) Alpha(from, to string) float64 {
	if from == to {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if a, ok := m.alpha[edgeKey(from, to)]; ok {
		return a
	}
	return m.DefaultAlpha
}

// Beta returns the per-byte cost of the edge.
func (m *CostModel) Beta(from, to string) float64 {
	if from == to {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if b, ok := m.beta[edgeKey(from, to)]; ok {
		return b
	}
	return m.DefaultBeta
}

// ShipCost prices shipping the given number of bytes along the edge.
// Intra-site transfers are free.
func (m *CostModel) ShipCost(from, to string, bytes float64) float64 {
	if from == to || bytes < 0 {
		return 0
	}
	return m.Alpha(from, to) + m.Beta(from, to)*bytes
}

// SetByteScale installs the calibrated wire-bytes-per-estimated-byte
// ratio used by EstShipCost. Zero or negative resets to the neutral 1.
func (m *CostModel) SetByteScale(s float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s <= 0 {
		s = 1
	}
	m.byteScale = s
}

// ByteScale returns the calibrated estimate scale (1 when never set).
func (m *CostModel) ByteScale() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.byteScale == 0 {
		return 1
	}
	return m.byteScale
}

// EstShipCost prices a transfer whose size is an optimizer estimate
// (rows × schema widths) rather than measured wire bytes: the estimate
// is scaled by the calibrated encoding ratio first. With no calibration
// applied this is exactly ShipCost, so plan choices (and their golden
// snapshots) only move when a calibration is installed deliberately.
func (m *CostModel) EstShipCost(from, to string, bytes float64) float64 {
	return m.ShipCost(from, to, bytes*m.ByteScale())
}

// FiveRegionWAN builds a deterministic wide-area profile for up to five
// locations modeled on public inter-region measurements between Europe,
// Africa, Asia, North America and the Middle East (the regions used in
// Section 7.4). Start-up costs α are round-trip latencies in
// milliseconds; β is derived from sustained inter-region bandwidth.
// Locations beyond the fifth reuse the profile cyclically with a small
// deterministic perturbation so that experiments with many sites remain
// reproducible.
func FiveRegionWAN(locations []string) *CostModel {
	// Reference latency matrix (ms) between the five regions:
	// EU, AF, AS, NA, ME.
	lat := [5][5]float64{
		{0, 140, 180, 90, 110},
		{140, 0, 260, 200, 160},
		{180, 260, 0, 160, 120},
		{90, 200, 160, 0, 180},
		{110, 160, 120, 180, 0},
	}
	// Sustained bandwidth (MB/s) between regions; β = 1000/(BW·1e6)
	// ms per byte.
	bw := [5][5]float64{
		{0, 8, 10, 25, 15},
		{8, 0, 5, 7, 9},
		{10, 5, 0, 12, 14},
		{25, 7, 12, 0, 10},
		{15, 9, 14, 10, 0},
	}
	m := NewCostModel(150, 1000/(8*1e6))
	for i, from := range locations {
		for j, to := range locations {
			if i == j {
				continue
			}
			a := lat[i%5][j%5]
			b := bw[i%5][j%5]
			if a == 0 { // same reference region reused: nearby sites
				a = 20 + float64((i+j)%7)
				b = 40
			}
			// Deterministic perturbation so wrapped sites differ.
			a += float64((i/5+j/5)*13) + float64((i*31+j*17)%5)
			m.SetEdge(from, to, a, 1000/(b*1e6))
		}
	}
	return m
}

// UniformWAN builds a homogeneous profile: every inter-site edge has the
// same α and β. Useful for tests and ablations.
func UniformWAN(alpha, beta float64) *CostModel {
	return NewCostModel(alpha, beta)
}

// Transfer is one recorded shipment.
type Transfer struct {
	From, To string
	Rows     int64
	Bytes    int64
	Cost     float64 // priced by the ledger's cost model
}

// Ledger accumulates the transfers a query execution performs and prices
// them with a cost model. It is safe for concurrent use.
type Ledger struct {
	mu        sync.Mutex
	model     *CostModel
	transfers []Transfer
}

// NewLedger returns a ledger pricing transfers with the given model.
func NewLedger(model *CostModel) *Ledger {
	return &Ledger{model: model}
}

// Record adds one shipment (rows/bytes moved from -> to) and returns its
// cost.
func (l *Ledger) Record(from, to string, rows, bytes int64) float64 {
	cost := l.model.ShipCost(from, to, float64(bytes))
	l.mu.Lock()
	defer l.mu.Unlock()
	l.transfers = append(l.transfers, Transfer{From: from, To: to, Rows: rows, Bytes: bytes, Cost: cost})
	return cost
}

// Shipment is an in-progress transfer recorded incrementally, batch by
// batch, by the parallel executor's exchange operators. All batches of
// one shipment accumulate into a single Transfer entry, and the cost is
// kept equal to ShipCost(from, to, totalBytes) — affine in bytes — so a
// shipment split into N batches prices identically to the same bytes
// recorded in one Record call (the start-up cost α is paid once, not N
// times). Safe for concurrent use with all other ledger methods.
type Shipment struct {
	l        *Ledger
	idx      int
	from, to string
}

// OpenShipment starts an incremental transfer and returns its handle.
// The entry is recorded immediately with zero rows/bytes (cost α, as an
// empty Record would be).
func (l *Ledger) OpenShipment(from, to string) *Shipment {
	cost := l.model.ShipCost(from, to, 0)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.transfers = append(l.transfers, Transfer{From: from, To: to, Cost: cost})
	return &Shipment{l: l, idx: len(l.transfers) - 1, from: from, to: to}
}

// Add accounts one batch of the shipment and returns the incremental
// cost of shipping it (the β·bytes part, plus α on the first bytes).
func (s *Shipment) Add(rows, bytes int64) float64 {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	if s.idx >= len(s.l.transfers) {
		// The ledger was Reset while this shipment was in flight:
		// re-open an entry so the remaining batches are still recorded.
		s.l.transfers = append(s.l.transfers, Transfer{From: s.from, To: s.to,
			Cost: s.l.model.ShipCost(s.from, s.to, 0)})
		s.idx = len(s.l.transfers) - 1
	}
	t := &s.l.transfers[s.idx]
	t.Rows += rows
	t.Bytes += bytes
	cost := s.l.model.ShipCost(t.From, t.To, float64(t.Bytes))
	delta := cost - t.Cost
	t.Cost = cost
	return delta
}

// TotalCost returns the summed cost of all recorded transfers. The
// per-transfer costs are summed in sorted order so the total depends
// only on the multiset of transfers, not on the order they were
// recorded in — concurrent executions that perform the same transfers
// report bit-identical totals.
func (l *Ledger) TotalCost() float64 {
	l.mu.Lock()
	costs := make([]float64, len(l.transfers))
	for i, t := range l.transfers {
		costs[i] = t.Cost
	}
	l.mu.Unlock()
	sort.Float64s(costs)
	total := 0.0
	for _, c := range costs {
		total += c
	}
	return total
}

// TotalBytes returns the summed bytes of all recorded transfers.
func (l *Ledger) TotalBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, t := range l.transfers {
		total += t.Bytes
	}
	return total
}

// TotalRows returns the summed rows of all recorded transfers.
func (l *Ledger) TotalRows() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, t := range l.transfers {
		total += t.Rows
	}
	return total
}

// LedgerSnapshot is a consistent view of the ledger totals, taken under
// one lock acquisition. TotalBytes/TotalRows/TotalCost each lock
// separately, so reading them individually while shipments are in
// flight can observe totals from different instants; Snapshot cannot.
type LedgerSnapshot struct {
	Transfers int
	Rows      int64
	Bytes     int64
	Cost      float64
}

// Snapshot returns all ledger totals from a single consistent point in
// time. The cost is summed in sorted order, exactly like TotalCost, so
// a quiescent ledger's Snapshot().Cost equals TotalCost() bit-for-bit.
func (l *Ledger) Snapshot() LedgerSnapshot {
	l.mu.Lock()
	s := LedgerSnapshot{Transfers: len(l.transfers)}
	costs := make([]float64, len(l.transfers))
	for i, t := range l.transfers {
		s.Rows += t.Rows
		s.Bytes += t.Bytes
		costs[i] = t.Cost
	}
	l.mu.Unlock()
	sort.Float64s(costs)
	for _, c := range costs {
		s.Cost += c
	}
	return s
}

// Transfers returns a copy of the recorded transfers.
func (l *Ledger) Transfers() []Transfer {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Transfer(nil), l.transfers...)
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.transfers = nil
}

// Summary renders per-edge totals, sorted by edge, for reports.
func (l *Ledger) Summary() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	agg := map[string]*Transfer{}
	for _, t := range l.transfers {
		key := t.From + " -> " + t.To
		if cur, ok := agg[key]; ok {
			cur.Rows += t.Rows
			cur.Bytes += t.Bytes
			cur.Cost += t.Cost
		} else {
			cp := t
			agg[key] = &cp
		}
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		t := agg[k]
		fmt.Fprintf(&b, "%-20s %10d rows %12d bytes %12.2f ms\n", k, t.Rows, t.Bytes, t.Cost)
	}
	return b.String()
}
