package network

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCostModelBasics(t *testing.T) {
	m := NewCostModel(100, 0.001)
	m.SetEdge("A", "B", 50, 0.002)

	if got := m.ShipCost("A", "A", 1e6); got != 0 {
		t.Errorf("intra-site must be free: %v", got)
	}
	if got := m.ShipCost("A", "B", 1000); got != 50+2 {
		t.Errorf("known edge: %v", got)
	}
	if got := m.ShipCost("B", "A", 1000); got != 100+1 {
		t.Errorf("default edge: %v", got)
	}
	if got := m.ShipCost("A", "B", 0); got != 50 {
		t.Errorf("zero bytes pays startup: %v", got)
	}
	if m.Alpha("A", "A") != 0 || m.Beta("A", "A") != 0 {
		t.Error("self edge zero")
	}
}

func TestFiveRegionWAN(t *testing.T) {
	locs := []string{"L1", "L2", "L3", "L4", "L5"}
	m := FiveRegionWAN(locs)
	for _, a := range locs {
		for _, b := range locs {
			if a == b {
				if m.ShipCost(a, b, 100) != 0 {
					t.Errorf("%s->%s should be free", a, b)
				}
				continue
			}
			c := m.ShipCost(a, b, 1<<20)
			if c <= 0 {
				t.Errorf("%s->%s cost %v", a, b, c)
			}
		}
	}
	// Deterministic: same input, same profile.
	m2 := FiveRegionWAN(locs)
	if m.ShipCost("L1", "L3", 12345) != m2.ShipCost("L1", "L3", 12345) {
		t.Error("profile must be deterministic")
	}
	// More than five locations still works.
	many := []string{"a", "b", "c", "d", "e", "f", "g"}
	m3 := FiveRegionWAN(many)
	if m3.ShipCost("a", "f", 100) <= 0 {
		t.Error("wrapped locations must have positive cost")
	}
	// a and f map to the same reference region but are distinct sites.
	if m3.ShipCost("a", "f", 0) == 0 {
		t.Error("distinct sites in same region still pay latency")
	}
}

func TestLedger(t *testing.T) {
	m := UniformWAN(10, 0.5)
	l := NewLedger(m)
	c1 := l.Record("A", "B", 10, 100)
	if c1 != 10+50 {
		t.Errorf("record cost: %v", c1)
	}
	l.Record("A", "B", 5, 20)
	l.Record("B", "C", 1, 8)
	if l.TotalBytes() != 128 {
		t.Errorf("total bytes: %d", l.TotalBytes())
	}
	want := (10 + 50.0) + (10 + 10.0) + (10 + 4.0)
	if l.TotalCost() != want {
		t.Errorf("total cost: %v want %v", l.TotalCost(), want)
	}
	if got := len(l.Transfers()); got != 3 {
		t.Errorf("transfers: %d", got)
	}
	sum := l.Summary()
	if !strings.Contains(sum, "A -> B") || !strings.Contains(sum, "B -> C") {
		t.Errorf("summary:\n%s", sum)
	}
	// Summary aggregates per edge: A->B appears once.
	if strings.Count(sum, "A -> B") != 1 {
		t.Errorf("summary should aggregate edges:\n%s", sum)
	}
	l.Reset()
	if l.TotalBytes() != 0 || len(l.Transfers()) != 0 {
		t.Error("reset")
	}
}

// TestShipmentMatchesRecord: a shipment split into batches must price
// and account identically to one Record of the same totals — the parity
// the parallel executor's per-batch exchange accounting depends on.
func TestShipmentMatchesRecord(t *testing.T) {
	m := UniformWAN(10, 0.5)
	one := NewLedger(m)
	one.Record("A", "B", 30, 300)

	batched := NewLedger(m)
	s := batched.OpenShipment("A", "B")
	var incr float64
	incr += s.Add(10, 100)
	incr += s.Add(15, 150)
	incr += s.Add(5, 50)
	if batched.TotalBytes() != one.TotalBytes() || batched.TotalRows() != one.TotalRows() {
		t.Errorf("bytes/rows: batched %d/%d, one-shot %d/%d",
			batched.TotalBytes(), batched.TotalRows(), one.TotalBytes(), one.TotalRows())
	}
	if batched.TotalCost() != one.TotalCost() {
		t.Errorf("cost: batched %v, one-shot %v", batched.TotalCost(), one.TotalCost())
	}
	// α is paid once (at open), the increments carry only β·bytes.
	if alpha := batched.TotalCost() - incr; alpha != 10 {
		t.Errorf("start-up share: %v, want 10", alpha)
	}
	// All batches merged into a single transfer entry.
	if got := len(batched.Transfers()); got != 1 {
		t.Errorf("transfers: %d, want 1", got)
	}
	// An empty shipment still pays the start-up cost, like Record.
	empty := NewLedger(m)
	empty.OpenShipment("A", "B")
	if empty.TotalCost() != 10 {
		t.Errorf("empty shipment cost: %v, want 10", empty.TotalCost())
	}
	// Intra-site shipments stay free.
	free := NewLedger(m)
	fs := free.OpenShipment("A", "A")
	fs.Add(10, 100)
	if free.TotalCost() != 0 {
		t.Errorf("intra-site shipment cost: %v", free.TotalCost())
	}
}

// Property: ship cost is monotone in bytes.
func TestShipCostMonotoneProperty(t *testing.T) {
	m := FiveRegionWAN([]string{"L1", "L2", "L3"})
	f := func(a, b uint32) bool {
		lo, hi := float64(a), float64(a)+float64(b)
		return m.ShipCost("L1", "L2", lo) <= m.ShipCost("L1", "L2", hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
