package network

import (
	"encoding/binary"
	"fmt"
)

// A small snappy-style LZ byte compressor for wire frame bodies. The
// stream is a sequence of ops:
//
//	0x00  uvarint len, then len literal bytes
//	0x01  uvarint distance, uvarint length — copy length bytes from
//	      distance back in the output (may overlap)
//
// prefixed by the uvarint length of the decompressed data. Matching is
// greedy over a hash of 4-byte windows, so compression is deterministic
// — identical bodies always produce identical frames, which the ledger
// parity between the engines depends on.

const (
	lzMinMatch = 4
	lzHashBits = 14
)

func lzHash(u uint32) uint32 {
	return (u * 2654435761) >> (32 - lzHashBits)
}

func lzLoad32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// lzCompress appends the compressed form of src to dst.
func lzCompress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	emitLiterals := func(from, to int) {
		if to <= from {
			return
		}
		dst = append(dst, 0x00)
		dst = binary.AppendUvarint(dst, uint64(to-from))
		dst = append(dst, src[from:to]...)
	}
	litStart := 0
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(lzLoad32(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || lzLoad32(src, cand) != lzLoad32(src, i) {
			i++
			continue
		}
		length := lzMinMatch
		for i+length < len(src) && src[cand+length] == src[i+length] {
			length++
		}
		emitLiterals(litStart, i)
		dst = append(dst, 0x01)
		dst = binary.AppendUvarint(dst, uint64(i-cand))
		dst = binary.AppendUvarint(dst, uint64(length))
		i += length
		litStart = i
	}
	emitLiterals(litStart, len(src))
	return dst
}

// lzDecompress expands a stream produced by lzCompress.
func lzDecompress(src []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(src)
	if n <= 0 || rawLen > 1<<30 {
		return nil, fmt.Errorf("%w: bad lz header", ErrWireCorrupt)
	}
	src = src[n:]
	out := make([]byte, 0, rawLen)
	for len(src) > 0 {
		op := src[0]
		src = src[1:]
		switch op {
		case 0x00:
			l, n := binary.Uvarint(src)
			if n <= 0 || uint64(len(src)-n) < l {
				return nil, fmt.Errorf("%w: bad lz literal", ErrWireCorrupt)
			}
			out = append(out, src[n:n+int(l)]...)
			src = src[n+int(l):]
		case 0x01:
			d, nd := binary.Uvarint(src)
			if nd <= 0 {
				return nil, fmt.Errorf("%w: bad lz match", ErrWireCorrupt)
			}
			l, nl := binary.Uvarint(src[nd:])
			if nl <= 0 {
				return nil, fmt.Errorf("%w: bad lz match", ErrWireCorrupt)
			}
			src = src[nd+nl:]
			if d == 0 || uint64(len(out)) < d || uint64(len(out))+l > rawLen {
				return nil, fmt.Errorf("%w: lz match out of range", ErrWireCorrupt)
			}
			from := len(out) - int(d)
			for j := 0; j < int(l); j++ {
				out = append(out, out[from+j])
			}
		default:
			return nil, fmt.Errorf("%w: unknown lz op %#x", ErrWireCorrupt, op)
		}
	}
	if uint64(len(out)) != rawLen {
		return nil, fmt.Errorf("%w: lz length mismatch", ErrWireCorrupt)
	}
	return out, nil
}
