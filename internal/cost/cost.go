// Package cost implements the phase-1 cost model of the two-phase
// optimizer (Section 6): cardinality estimation from catalog statistics
// and single-site operator cost functions that ignore data location, as
// in centralized query optimization. Shipping costs (phase 2) live in
// package network.
package cost

import (
	"math"
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// Default selectivities for predicates the estimator cannot analyze
// precisely; values follow the classic System R conventions.
const (
	selEq      = 0.005 // equality fallback when distinct count unknown
	selRange   = 1.0 / 3.0
	selLike    = 0.25
	selIn      = 0.02 // per IN list element
	selDefault = 0.25
	selNotNull = 0.9
)

// Per-row operator cost weights (abstract units ≈ rows touched).
const (
	cpuRow       = 1.0
	hashBuildRow = 2.0
	hashProbeRow = 1.2
	sortRowLog   = 0.5
	aggRow       = 1.5
	outputRow    = 0.1
)

// Index access-path cost weights. These price B+ tree descends and page
// fetches against the plain per-row scan weights above; page fetches are
// discounted by the fraction of the table the buffer pool can hold, so a
// bigger pool makes index paths (which touch scattered pages) cheaper.
// The model is deliberately backend-independent: it depends only on the
// configured pool budget, never on which storage backend runs the plan,
// so plan choice is identical across the in-memory / persistent axis.
const (
	pageSizeBytes    = 8192.0 // matches store.PageSize
	pageFetchCost    = 4.0    // page read missing the buffer pool
	pageWarmCost     = 0.25   // page read hitting the buffer pool
	btreeLevelCost   = 0.5    // one interior-node descend
	indexProbeRow    = 0.4    // per row fetched through an index posting
	defaultPoolBytes = 64 << 20
	btreeFanout      = 64.0 // matches store.btreeOrder
)

// CardHints supplies observed output cardinalities keyed by canonical
// subplan digest (plan.Node.SubplanDigest); the feedback store
// implements it. A hint overrides the statistics-derived estimate —
// "actuals beat estimates" — for digests the source has high-confidence
// observations of.
type CardHints interface {
	CardHint(digest string) (float64, bool)
}

// Estimator estimates operator cardinalities using base-table statistics
// resolved through query aliases, optionally corrected by observed
// actuals from a CardHints source.
type Estimator struct {
	tables    map[string]*schema.Table // lowercase alias -> base table
	hints     CardHints
	poolBytes int64 // buffer-pool budget for page-fetch discounting; 0 = default
}

// NewEstimator builds an estimator for one query: it collects the base
// tables reachable from the logical plan, keyed by alias.
func NewEstimator(root *plan.Node) *Estimator {
	est := &Estimator{tables: map[string]*schema.Table{}}
	if root != nil {
		root.Walk(func(n *plan.Node) bool {
			if n.Kind == plan.Scan || n.Kind == plan.TableScan || n.Kind == plan.IndexScan {
				est.tables[strings.ToLower(n.Alias)] = n.Table
			}
			return true
		})
	}
	return est
}

// Distinct returns the estimated number of distinct values of a column,
// or fallback when statistics are unavailable.
func (e *Estimator) Distinct(c *expr.Col, fallback float64) float64 {
	t, ok := e.tables[strings.ToLower(c.Table)]
	if !ok {
		return fallback
	}
	if s := t.Stats(c.Name); s.Distinct > 0 {
		return float64(s.Distinct)
	}
	return fallback
}

// ScanCard returns the cardinality of a table scan (whole table or one
// fragment).
func ScanCard(t *schema.Table, fragIdx int) float64 {
	if fragIdx >= 0 && fragIdx < len(t.Fragments) {
		return float64(t.Fragments[fragIdx].RowCount)
	}
	return float64(t.RowCount())
}

// FilterSel estimates the selectivity of a predicate.
func (e *Estimator) FilterSel(pred expr.Expr) float64 {
	if pred == nil {
		return 1
	}
	sel := 1.0
	for _, c := range expr.Conjuncts(pred) {
		sel *= e.conjunctSel(c)
	}
	return clampSel(sel)
}

func (e *Estimator) conjunctSel(c expr.Expr) float64 {
	switch n := c.(type) {
	case *expr.Cmp:
		lc, lok := n.L.(*expr.Col)
		rc, rok := n.R.(*expr.Col)
		if lok && rok {
			// Join predicates are handled in JoinSel; as a plain filter
			// (self-correlation) use the equality default.
			_ = rc
			return selEq * 10
		}
		col := lc
		if !lok {
			col, lok = n.R.(*expr.Col)
		}
		if !lok {
			return selDefault
		}
		switch n.Op {
		case expr.EQ:
			d := e.Distinct(col, 0)
			if d > 0 {
				return 1 / d
			}
			return selEq
		case expr.NE:
			d := e.Distinct(col, 0)
			if d > 1 {
				return 1 - 1/d
			}
			return 1 - selEq
		default:
			return selRange
		}
	case *expr.And:
		return e.conjunctSel(n.L) * e.conjunctSel(n.R)
	case *expr.Or:
		a, b := e.conjunctSel(n.L), e.conjunctSel(n.R)
		return clampSel(a + b - a*b)
	case *expr.Not:
		return clampSel(1 - e.conjunctSel(n.E))
	case *expr.Like:
		if n.Negated {
			return 1 - selLike
		}
		return selLike
	case *expr.In:
		sel := float64(len(n.List)) * selIn
		if col, ok := n.E.(*expr.Col); ok {
			if d := e.Distinct(col, 0); d > 0 {
				sel = float64(len(n.List)) / d
			}
		}
		if n.Negated {
			return clampSel(1 - sel)
		}
		return clampSel(sel)
	case *expr.Between:
		return selRange
	case *expr.IsNull:
		if n.Negated {
			return selNotNull
		}
		return 1 - selNotNull
	}
	return selDefault
}

// JoinSel estimates the selectivity of a join condition over the cross
// product of the inputs. Equi-joins use 1/max(distinct(l), distinct(r)).
func (e *Estimator) JoinSel(cond expr.Expr, lcard, rcard float64) float64 {
	if cond == nil {
		return 1
	}
	sel := 1.0
	for _, c := range expr.Conjuncts(cond) {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			sel *= e.conjunctSel(c)
			continue
		}
		lc, lok := cmp.L.(*expr.Col)
		rc, rok := cmp.R.(*expr.Col)
		if !lok || !rok {
			sel *= e.conjunctSel(c)
			continue
		}
		dl := e.Distinct(lc, math.Max(lcard, 1))
		dr := e.Distinct(rc, math.Max(rcard, 1))
		sel *= 1 / math.Max(1, math.Max(dl, dr))
	}
	return clampSel(sel)
}

// GroupCard estimates the number of groups an aggregation produces.
func (e *Estimator) GroupCard(groupBy []*expr.Col, childCard float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, g := range groupBy {
		groups *= e.Distinct(g, math.Sqrt(math.Max(childCard, 1)))
	}
	// Cap: there cannot be more groups than input rows.
	return math.Max(1, math.Min(groups, childCard))
}

// SortCost prices sorting n rows (the memo charges it for merge-join
// inputs that are not already ordered).
func SortCost(card float64) float64 {
	n := math.Max(card, 2)
	return n * math.Log2(n) * sortRowLog
}

// clampSel keeps selectivities within (0, 1].
func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// OperatorCost returns the phase-1 cost of executing one operator, given
// its output cardinality and its input cardinalities. Costs are abstract
// units proportional to rows processed; they deliberately ignore where
// data lives (Section 6's first phase assumes all tables are local).
func OperatorCost(kind plan.Kind, outCard float64, inCards ...float64) float64 {
	in := func(i int) float64 {
		if i < len(inCards) {
			return inCards[i]
		}
		return 0
	}
	switch kind {
	case plan.Scan, plan.TableScan:
		return outCard * cpuRow
	case plan.Filter, plan.FilterExec:
		return in(0) * cpuRow
	case plan.Project, plan.ProjectExec:
		return in(0) * outputRow
	case plan.Join, plan.HashJoin:
		// Build on the right, probe with the left.
		return in(1)*hashBuildRow + in(0)*hashProbeRow + outCard*outputRow
	case plan.NLJoin:
		return in(0)*in(1)*cpuRow*0.01 + outCard*outputRow
	case plan.MergeJoin:
		// Merge phase only; the optimizer adds sorting costs for inputs
		// that are not already ordered on the join keys.
		return (in(0)+in(1))*cpuRow + outCard*outputRow
	case plan.Aggregate, plan.HashAgg:
		return in(0)*aggRow + outCard*outputRow
	case plan.Sort, plan.SortExec:
		n := math.Max(in(0), 2)
		return n * math.Log2(n) * sortRowLog
	case plan.Limit, plan.LimitExec:
		return outCard * outputRow
	case plan.Union, plan.UnionAll:
		total := 0.0
		for _, c := range inCards {
			total += c
		}
		return total * outputRow
	case plan.Ship:
		// Phase 1 ignores shipping; phase 2 prices it via the network
		// cost model.
		return 0
	}
	return outCard * cpuRow
}

// SetPoolBytes configures the buffer-pool budget used to discount page
// fetches in index access-path costs; 0 keeps the default (64 MiB). The
// setting is applied identically whether or not the persistent backend
// runs the plan, so the chosen plan never depends on the backend.
func (e *Estimator) SetPoolBytes(b int64) { e.poolBytes = b }

// pagePrice returns the cost of touching one page of a table occupying
// tableBytes: warm (pool hit) for the resident fraction, cold for the
// rest.
func (e *Estimator) pagePrice(tableBytes float64) float64 {
	pool := float64(e.poolBytes)
	if pool <= 0 {
		pool = defaultPoolBytes
	}
	cov := 1.0
	if tableBytes > pool {
		cov = pool / tableBytes
	}
	return pageWarmCost*cov + pageFetchCost*(1-cov)
}

// btreeLevels estimates the descend depth of an index with d distinct
// keys.
func btreeLevels(d float64) float64 {
	if d < btreeFanout {
		return 1
	}
	return math.Ceil(math.Log(d) / math.Log(btreeFanout))
}

// IndexRangeSel estimates the fraction of an IndexScan's table matched
// by the index bounds alone (the residual predicate narrows further).
// Point lookups use 1/distinct; int-class ranges interpolate against the
// column's min/max statistics; everything else falls back to the range
// default.
func (e *Estimator) IndexRangeSel(n *plan.Node) float64 {
	col := expr.NewCol(n.Alias, n.IdxCol)
	if n.IdxLo != nil && n.IdxHi != nil && n.IdxLoInc && n.IdxHiInc && n.IdxLo.Equal(*n.IdxHi) {
		d := e.Distinct(col, 0)
		if d > 0 {
			return clampSel(1 / d)
		}
		return selEq
	}
	if t, ok := e.tables[strings.ToLower(n.Alias)]; ok {
		s := t.Stats(n.IdxCol)
		if !s.Min.IsNull() && !s.Max.IsNull() && intClass(s.Min.T) {
			lo, hi := float64(s.Min.I), float64(s.Max.I)
			if hi > lo {
				a, b := lo, hi
				if n.IdxLo != nil && intClass(n.IdxLo.T) {
					a = math.Max(a, float64(n.IdxLo.I))
				}
				if n.IdxHi != nil && intClass(n.IdxHi.T) {
					b = math.Min(b, float64(n.IdxHi.I))
				}
				if b < a {
					return clampSel(0)
				}
				return clampSel((b - a) / (hi - lo))
			}
		}
	}
	return selRange
}

func intClass(t expr.Type) bool {
	return t == expr.TInt || t == expr.TDate || t == expr.TBool
}

// AccessPathCost prices the index access paths. Unlike OperatorCost's
// pure per-row weights, these depend on table statistics and the
// buffer-pool budget: a descend per probe, a (possibly scattered) page
// fetch per matched row, and the residual predicate over fetched rows.
func (e *Estimator) AccessPathCost(n *plan.Node, outCard float64, inCards ...float64) float64 {
	in := func(i int) float64 {
		if i < len(inCards) {
			return inCards[i]
		}
		return 0
	}
	switch n.Kind {
	case plan.IndexScan:
		tableCard := ScanCard(n.Table, n.FragIdx)
		tableBytes := tableCard * float64(n.Table.RowWidth())
		matched := math.Max(1, tableCard*e.IndexRangeSel(n))
		tablePages := math.Max(1, tableBytes/pageSizeBytes)
		pages := math.Min(matched, tablePages)
		col := expr.NewCol(n.Alias, n.IdxCol)
		levels := btreeLevels(e.Distinct(col, math.Sqrt(math.Max(tableCard, 1))))
		return levels*btreeLevelCost + pages*e.pagePrice(tableBytes) +
			matched*(indexProbeRow+cpuRow) + outCard*outputRow
	case plan.IndexLookupJoin:
		// Children are [outer, inner TableScan]; the inner scan is never
		// executed (callers exclude its subtree cost) — each outer row
		// descends the inner index and fetches its matches.
		outer, inner := in(0), in(1)
		var t *schema.Table
		if len(n.Children) == 2 {
			t = n.Children[1].Table
		}
		rowWidth := 64.0
		if t != nil {
			rowWidth = float64(t.RowWidth())
		}
		tableBytes := inner * rowWidth
		d := math.Max(inner, 1)
		if len(n.Children) == 2 {
			d = e.Distinct(expr.NewCol(n.Children[1].Alias, n.IdxCol), d)
		}
		d = math.Max(1, d)
		perOuter := math.Max(inner/d, 1.0/8) // expected matches per probe
		levels := btreeLevels(d)
		return outer*(levels*btreeLevelCost+perOuter*(e.pagePrice(tableBytes)+indexProbeRow+cpuRow)) +
			outCard*outputRow
	}
	return OperatorCost(n.Kind, outCard, inCards...)
}

// CostFor returns the phase-1 cost of one operator, dispatching index
// access paths to the statistics-aware model and everything else to the
// pure per-row weights.
func (e *Estimator) CostFor(n *plan.Node, outCard float64, inCards ...float64) float64 {
	if n.Kind == plan.IndexScan || n.Kind == plan.IndexLookupJoin {
		return e.AccessPathCost(n, outCard, inCards...)
	}
	return OperatorCost(n.Kind, outCard, inCards...)
}

// SetHints attaches an observed-cardinality source. Call before use;
// nil detaches (the pure-statistics paths then run unchanged).
func (e *Estimator) SetHints(h CardHints) { e.hints = h }

// HasHints reports whether a hint source is attached (callers skip
// digest construction entirely without one).
func (e *Estimator) HasHints() bool { return e.hints != nil }

// CardHint consults the attached hint source; never matches without one.
func (e *Estimator) CardHint(digest string) (float64, bool) {
	if e.hints == nil {
		return 0, false
	}
	return e.hints.CardHint(digest)
}

// EstimateTree fills Card and Cost bottom-up for a complete plan tree.
// The memo performs the same computation incrementally; this helper
// serves the baseline paths, tests and the executor's accounting. With
// a hint source attached, each subtree's statistics estimate is
// overridden by the observed actual when one is active.
func (e *Estimator) EstimateTree(n *plan.Node) {
	if e.hints != nil {
		e.estimateHinted(n)
		return
	}
	inCards := make([]float64, len(n.Children))
	childCost := 0.0
	for i, c := range n.Children {
		e.EstimateTree(c)
		inCards[i] = c.Card
		// An IndexLookupJoin's inner TableScan child is never executed
		// (the index is probed instead), so its cost does not accrue.
		if n.Kind == plan.IndexLookupJoin && i == 1 {
			continue
		}
		childCost += c.Cost
	}
	n.Card = e.NodeCard(n, inCards)
	n.Cost = childCost + e.CostFor(n, n.Card, inCards...)
}

// estimateHinted is EstimateTree building canonical subplan digests
// alongside the bottom-up pass (mirroring plan.SubplanDigest, Ship
// skipped) so each node's estimate can be corrected from observations.
func (e *Estimator) estimateHinted(n *plan.Node) string {
	inCards := make([]float64, len(n.Children))
	childCost := 0.0
	kids := make([]string, len(n.Children))
	for i, c := range n.Children {
		kids[i] = e.estimateHinted(c)
		inCards[i] = c.Card
		if n.Kind == plan.IndexLookupJoin && i == 1 {
			continue
		}
		childCost += c.Cost
	}
	n.Card = e.NodeCard(n, inCards)
	var digest string
	if n.Kind == plan.Ship && len(n.Children) == 1 {
		digest = kids[0]
	} else if n.Kind == plan.IndexScan {
		// Mirror plan.SubplanDigest: an IndexScan digests as the
		// Filter(Scan) it implements.
		digest = plan.IndexScanFilterDigest(n)
		if card, ok := e.hints.CardHint(digest); ok {
			n.Card = card
		}
	} else {
		var b strings.Builder
		b.WriteString(n.CanonOpDigest())
		b.WriteByte('(')
		for i, d := range kids {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(d)
		}
		b.WriteByte(')')
		digest = b.String()
		if card, ok := e.hints.CardHint(digest); ok {
			n.Card = card
		}
	}
	n.Cost = childCost + e.CostFor(n, n.Card, inCards...)
	return digest
}

// NodeCard estimates one operator's output cardinality from its input
// cardinalities.
func (e *Estimator) NodeCard(n *plan.Node, inCards []float64) float64 {
	in := func(i int) float64 {
		if i < len(inCards) {
			return inCards[i]
		}
		return 0
	}
	switch n.Kind {
	case plan.Scan, plan.TableScan:
		return ScanCard(n.Table, n.FragIdx)
	case plan.Filter, plan.FilterExec:
		return math.Max(1, in(0)*e.FilterSel(n.Pred))
	case plan.Project, plan.ProjectExec, plan.Sort, plan.SortExec:
		return in(0)
	case plan.IndexScan:
		// Same estimate as the Filter(Scan) it implements: the index
		// bounds are conjuncts of the residual predicate.
		return math.Max(1, ScanCard(n.Table, n.FragIdx)*e.FilterSel(n.Pred))
	case plan.Join, plan.HashJoin, plan.NLJoin, plan.MergeJoin, plan.IndexLookupJoin:
		return math.Max(1, in(0)*in(1)*e.JoinSel(n.Pred, in(0), in(1)))
	case plan.Aggregate, plan.HashAgg:
		return e.GroupCard(n.GroupBy, in(0))
	case plan.Limit, plan.LimitExec:
		return math.Min(in(0), float64(n.LimitN))
	case plan.Union, plan.UnionAll:
		total := 0.0
		for _, c := range inCards {
			total += c
		}
		return total
	case plan.Ship:
		return in(0)
	}
	return in(0)
}
