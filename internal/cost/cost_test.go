package cost

import (
	"testing"
	"testing/quick"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

func statsTable() *schema.Table {
	t := schema.NewTable("Orders", "db-1", "L1", 10000,
		schema.Column{Name: "orderkey", Type: expr.TInt},
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "price", Type: expr.TFloat},
		schema.Column{Name: "status", Type: expr.TString},
	)
	t.SetColStats("orderkey", schema.ColStats{Distinct: 10000})
	t.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	t.SetColStats("status", schema.ColStats{Distinct: 3})
	return t
}

func custStatsTable() *schema.Table {
	t := schema.NewTable("Customer", "db-2", "L2", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
	)
	t.SetColStats("custkey", schema.ColStats{Distinct: 1000})
	return t
}

func TestScanCard(t *testing.T) {
	tab := statsTable()
	if ScanCard(tab, -1) != 10000 {
		t.Error("whole-table card")
	}
	frag := &schema.Table{
		Name:    "F",
		Columns: []schema.Column{{Name: "a", Type: expr.TInt}},
		Fragments: []schema.Fragment{
			{Location: "L1", RowCount: 30},
			{Location: "L2", RowCount: 70},
		},
	}
	if ScanCard(frag, 0) != 30 || ScanCard(frag, 1) != 70 || ScanCard(frag, -1) != 100 {
		t.Error("fragment cards")
	}
}

func TestFilterSelectivity(t *testing.T) {
	scan := plan.NewScan(statsTable(), "O", -1)
	est := NewEstimator(scan)
	col := func(n string) *expr.Col { return expr.NewCol("O", n) }

	// Equality on a column with 3 distinct values: 1/3.
	sel := est.FilterSel(expr.NewCmp(expr.EQ, col("status"), expr.NewConst(expr.NewString("F"))))
	if sel < 0.33 || sel > 0.34 {
		t.Errorf("eq sel = %v", sel)
	}
	// Range predicate: 1/3 default.
	sel = est.FilterSel(expr.NewCmp(expr.GT, col("price"), expr.NewConst(expr.NewFloat(10))))
	if sel != selRange {
		t.Errorf("range sel = %v", sel)
	}
	// Conjunction multiplies.
	both := expr.NewAnd(
		expr.NewCmp(expr.EQ, col("status"), expr.NewConst(expr.NewString("F"))),
		expr.NewCmp(expr.GT, col("price"), expr.NewConst(expr.NewFloat(10))))
	if got := est.FilterSel(both); got >= selRange {
		t.Errorf("conjunction should be more selective: %v", got)
	}
	// IN with stats: 2/3.
	sel = est.FilterSel(expr.NewIn(col("status"), []expr.Value{expr.NewString("F"), expr.NewString("O")}))
	if sel < 0.66 || sel > 0.67 {
		t.Errorf("in sel = %v", sel)
	}
	// Nil predicate has selectivity 1.
	if est.FilterSel(nil) != 1 {
		t.Error("nil pred")
	}
	// OR is additive-ish and clamped to <= 1.
	or := expr.NewOr(
		expr.NewCmp(expr.LT, col("price"), expr.NewConst(expr.NewFloat(10))),
		expr.NewCmp(expr.GT, col("price"), expr.NewConst(expr.NewFloat(5))))
	if got := est.FilterSel(or); got <= 0 || got > 1 {
		t.Errorf("or sel = %v", got)
	}
}

func TestJoinSelAndCard(t *testing.T) {
	o := plan.NewScan(statsTable(), "O", -1)
	c := plan.NewScan(custStatsTable(), "C", -1)
	j := plan.NewJoin(c, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	est := NewEstimator(j)
	est.EstimateTree(j)
	// FK join: |C ⋈ O| = 1000 * 10000 / max(1000,1000) = 10000.
	if j.Card != 10000 {
		t.Errorf("join card = %v, want 10000", j.Card)
	}
	if j.Cost <= o.Cost+c.Cost {
		t.Error("join cost must exceed input costs")
	}
}

func TestGroupCard(t *testing.T) {
	scan := plan.NewScan(statsTable(), "O", -1)
	est := NewEstimator(scan)
	// Group by custkey: 1000 groups.
	if got := est.GroupCard([]*expr.Col{expr.NewCol("O", "custkey")}, 10000); got != 1000 {
		t.Errorf("group card = %v", got)
	}
	// Global aggregate: 1 group.
	if got := est.GroupCard(nil, 10000); got != 1 {
		t.Errorf("global agg card = %v", got)
	}
	// Capped by input cardinality.
	if got := est.GroupCard([]*expr.Col{expr.NewCol("O", "orderkey")}, 50); got != 50 {
		t.Errorf("capped group card = %v", got)
	}
}

func TestEstimateTreeFull(t *testing.T) {
	o := plan.NewScan(statsTable(), "O", -1)
	f := plan.NewFilter(o, expr.NewCmp(expr.EQ, expr.NewCol("O", "status"), expr.NewConst(expr.NewString("F"))))
	g := plan.NewAggregate(f, []*expr.Col{expr.NewCol("O", "custkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("O", "price"), Name: "total"}})
	est := NewEstimator(g)
	est.EstimateTree(g)
	if o.Card != 10000 {
		t.Errorf("scan card: %v", o.Card)
	}
	if f.Card < 3300 || f.Card > 3400 {
		t.Errorf("filter card: %v", f.Card)
	}
	if g.Card > f.Card || g.Card < 1 {
		t.Errorf("agg card: %v", g.Card)
	}
	if !(g.Cost > f.Cost && f.Cost > o.Cost) {
		t.Errorf("costs must accumulate: %v %v %v", o.Cost, f.Cost, g.Cost)
	}
}

func TestOperatorCostShapes(t *testing.T) {
	// Hash join beats nested loops on large equal inputs.
	hj := OperatorCost(plan.HashJoin, 1000, 10000, 10000)
	nl := OperatorCost(plan.NLJoin, 1000, 10000, 10000)
	if hj >= nl {
		t.Errorf("hash join (%v) should beat NL join (%v) at 10k x 10k", hj, nl)
	}
	// NL join can win on tiny inputs.
	hj = OperatorCost(plan.HashJoin, 4, 2, 2)
	nl = OperatorCost(plan.NLJoin, 4, 2, 2)
	if nl >= hj {
		t.Errorf("NL join (%v) should beat hash join (%v) at 2 x 2", nl, hj)
	}
	// Ship is free in phase 1.
	if OperatorCost(plan.Ship, 100, 100) != 0 {
		t.Error("ship phase-1 cost")
	}
	if OperatorCost(plan.Sort, 0, 0) <= 0 {
		t.Error("sort cost must be positive")
	}
}

// Property: selectivities always land in (0, 1].
func TestSelectivityRangeProperty(t *testing.T) {
	scan := plan.NewScan(statsTable(), "O", -1)
	est := NewEstimator(scan)
	f := func(v int32, op uint8) bool {
		ops := []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}
		pred := expr.NewCmp(ops[int(op)%len(ops)], expr.NewCol("O", "custkey"), expr.NewConst(expr.NewInt(int64(v))))
		s := est.FilterSel(pred)
		return s > 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: join cardinality never exceeds the cross product.
func TestJoinCardBoundProperty(t *testing.T) {
	o := plan.NewScan(statsTable(), "O", -1)
	c := plan.NewScan(custStatsTable(), "C", -1)
	j := plan.NewJoin(c, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	est := NewEstimator(j)
	f := func(l, r uint16) bool {
		lc, rc := float64(l)+1, float64(r)+1
		card := lc * rc * est.JoinSel(j.Pred, lc, rc)
		return card <= lc*rc+1e-9 && card >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreSelectivities(t *testing.T) {
	scan := plan.NewScan(statsTable(), "O", -1)
	est := NewEstimator(scan)
	col := func(n string) *expr.Col { return expr.NewCol("O", n) }

	// NE with stats: 1 - 1/3.
	ne := est.FilterSel(expr.NewCmp(expr.NE, col("status"), expr.NewConst(expr.NewString("F"))))
	if ne < 0.66 || ne > 0.67 {
		t.Errorf("ne sel: %v", ne)
	}
	// NE without stats.
	ne2 := est.FilterSel(expr.NewCmp(expr.NE, col("price"), expr.NewConst(expr.NewFloat(5))))
	if ne2 <= 0.9 {
		t.Errorf("ne default sel: %v", ne2)
	}
	// NOT inverts.
	not := est.FilterSel(expr.NewNot(expr.NewCmp(expr.GT, col("price"), expr.NewConst(expr.NewFloat(1)))))
	if d := not - (1 - selRange); d > 1e-12 || d < -1e-12 {
		t.Errorf("not sel: %v", not)
	}
	// BETWEEN uses the range default.
	if got := est.FilterSel(expr.NewBetween(col("price"), expr.NewFloat(1), expr.NewFloat(2))); got != selRange {
		t.Errorf("between sel: %v", got)
	}
	// IS NULL / IS NOT NULL.
	if got := est.FilterSel(expr.NewIsNull(col("price"))); got >= 0.2 {
		t.Errorf("is null sel: %v", got)
	}
	if got := est.FilterSel(&expr.IsNull{E: col("price"), Negated: true}); got != selNotNull {
		t.Errorf("is not null sel: %v", got)
	}
	// NOT LIKE.
	if got := est.FilterSel(&expr.Like{E: col("status"), Pattern: "F%", Negated: true}); got < 0.74 || got > 0.76 {
		t.Errorf("not like sel: %v", got)
	}
	// NOT IN with stats: 1 - 1/3.
	nin := est.FilterSel(&expr.In{E: col("status"), List: []expr.Value{expr.NewString("F")}, Negated: true})
	if nin < 0.66 || nin > 0.67 {
		t.Errorf("not in sel: %v", nin)
	}
	// Column-vs-column filter falls back.
	if got := est.FilterSel(expr.NewCmp(expr.EQ, col("price"), col("custkey"))); got <= 0 || got > 1 {
		t.Errorf("col=col sel: %v", got)
	}
	// Case (unknown conjunct shape) falls back to the default.
	c := expr.NewCase([]expr.When{{Cond: expr.NewCmp(expr.GT, col("price"), expr.NewConst(expr.NewFloat(1))), Result: expr.NewConst(expr.NewBool(true))}}, nil)
	if got := est.FilterSel(c); got != selDefault {
		t.Errorf("case sel: %v", got)
	}
}

func TestSortCostAndMoreOperatorCosts(t *testing.T) {
	if SortCost(0) <= 0 || SortCost(1000) <= SortCost(10) {
		t.Error("sort cost monotone and positive")
	}
	// Merge join merge phase is linear in the inputs.
	m1 := OperatorCost(plan.MergeJoin, 100, 1000, 1000)
	m2 := OperatorCost(plan.MergeJoin, 100, 2000, 2000)
	if m2 <= m1 {
		t.Error("merge join cost grows with inputs")
	}
	if OperatorCost(plan.LimitExec, 10, 1000) <= 0 {
		t.Error("limit cost")
	}
	if OperatorCost(plan.UnionAll, 30, 10, 20) <= 0 {
		t.Error("union cost")
	}
	// Unknown kind falls back to per-row.
	if OperatorCost(plan.Kind(99), 10) != 10 {
		t.Error("fallback cost")
	}
}

func TestNodeCardMoreKinds(t *testing.T) {
	o := plan.NewScan(statsTable(), "O", -1)
	est := NewEstimator(o)
	lim := plan.NewLimit(o, 5)
	if got := est.NodeCard(lim, []float64{100}); got != 5 {
		t.Errorf("limit card: %v", got)
	}
	u := plan.NewUnion(o, o)
	if got := est.NodeCard(u, []float64{10, 20}); got != 30 {
		t.Errorf("union card: %v", got)
	}
	ship := plan.NewShip(o, "A", "B")
	if got := est.NodeCard(ship, []float64{42}); got != 42 {
		t.Errorf("ship card: %v", got)
	}
	srt := plan.NewSort(o, nil)
	if got := est.NodeCard(srt, []float64{7}); got != 7 {
		t.Errorf("sort card: %v", got)
	}
	mj := plan.NewJoin(o, o, nil)
	mj.Kind = plan.MergeJoin
	if got := est.NodeCard(mj, []float64{10, 10}); got != 100 {
		t.Errorf("cross merge card: %v", got)
	}
}
