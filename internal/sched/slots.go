package sched

import (
	"context"
	"sync"

	"cgdqp/internal/feedback"
	"cgdqp/internal/plan"
)

// slotTable bounds, per site, the fragment pipelines concurrently
// executing there across all queries. A query gang-acquires every slot
// it needs before execution and releases them all after: because no
// query ever waits while holding slots, cross-query slot deadlocks are
// impossible by construction.
//
// Grants are FIFO with a bounded fit bypass: a later request that fits
// may start ahead of a blocked earlier one, but only bypassLimit times
// per waiter, after which the head waiter reserves the table until its
// gang fits (anti-starvation for wide queries).
type slotTable struct {
	mu      sync.Mutex
	cap     int
	used    map[string]int
	waiters []*slotWait
}

// bypassLimit is how many later gangs may start ahead of a blocked head
// waiter before the table is reserved for it.
const bypassLimit = 8

type slotWait struct {
	need     map[string]int
	ready    chan struct{} // closed when granted
	granted  bool
	bypassed int
}

func newSlotTable(cap int) *slotTable {
	return &slotTable{cap: cap, used: map[string]int{}}
}

// siteCensus counts the execution slots a plan needs per site: one for
// each fragment pipeline, i.e. one per Ship producer on its source site
// plus one for the root fragment on the final site. Each site's count
// is clamped to cap so every plan stays schedulable (its own fragments
// then multiplex the site's slots... which is fine: fragment pipelines
// are goroutines, the slot bound is about limiting cross-query load,
// not about 1:1 thread mapping).
func siteCensus(p *plan.Node, cap int) map[string]int {
	need := map[string]int{}
	p.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship && n.FromLoc != "" {
			need[n.FromLoc]++
		}
		return true
	})
	if p.Loc != "" {
		need[p.Loc]++
	}
	for site, n := range need {
		if n > cap {
			need[site] = cap
		}
	}
	return need
}

// siteCensusWeighted is siteCensus informed by the feedback store: a
// fragment's slot demand grows with its observed (or, absent actuals,
// estimated) output cardinality — one slot for the first 10k rows and
// one more per decade above it, capped at 4 — so a site hosting one
// huge fragment and one trivial one is charged accordingly instead of
// 1+1. Per-site totals are still clamped to cap, preserving the
// invariant that every plan is schedulable.
func siteCensusWeighted(p *plan.Node, cap int, fb *feedback.Store) map[string]int {
	need := map[string]int{}
	p.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship && n.FromLoc != "" && len(n.Children) == 1 {
			need[n.FromLoc] += fragSlots(observedRows(n.Children[0], fb), cap)
		}
		return true
	})
	if p.Loc != "" {
		need[p.Loc] += fragSlots(observedRows(p, fb), cap)
	}
	for site, n := range need {
		if n > cap {
			need[site] = cap
		}
	}
	return need
}

// observedRows is the fragment's best-known output cardinality: the
// feedback store's activated actual for its subplan digest when one
// exists, else the optimizer's estimate carried on the node.
func observedRows(n *plan.Node, fb *feedback.Store) float64 {
	if hint, ok := fb.CardHint(n.SubplanDigest()); ok {
		return hint
	}
	return n.Card
}

// fragSlots converts a fragment cardinality into a slot demand: 1 for
// anything up to 10k rows, +1 per decade beyond, capped at 4 and at the
// per-site bound.
func fragSlots(rows float64, cap int) int {
	w := 1
	for rows > 10000 && w < 4 {
		rows /= 10
		w++
	}
	if w > cap {
		w = cap
	}
	return w
}

// fits reports whether the gang fits right now (caller holds mu).
func (st *slotTable) fits(need map[string]int) bool {
	for site, n := range need {
		if st.used[site]+n > st.cap {
			return false
		}
	}
	return true
}

func (st *slotTable) take(need map[string]int) {
	for site, n := range need {
		st.used[site] += n
	}
}

// acquire blocks until the whole gang is granted or ctx ends. An empty
// need (no located sites) is granted immediately.
func (st *slotTable) acquire(ctx context.Context, need map[string]int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	st.mu.Lock()
	// Fast path: nobody blocked ahead of us (or they have bypass room)
	// and the gang fits.
	if st.fits(need) && st.bypassOK() {
		st.take(need)
		st.mu.Unlock()
		return nil
	}
	w := &slotWait{need: need, ready: make(chan struct{})}
	st.waiters = append(st.waiters, w)
	st.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		st.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed while we were cancelling.
			// Give the slots back so accounting stays balanced.
			st.mu.Unlock()
			st.release(need)
			return ctx.Err()
		}
		for i, o := range st.waiters {
			if o == w {
				st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
				break
			}
		}
		st.mu.Unlock()
		return ctx.Err()
	}
}

// bypassOK reports whether a fitting newcomer may start ahead of the
// blocked waiters, charging each one bypass credit (caller holds mu).
func (st *slotTable) bypassOK() bool {
	for _, w := range st.waiters {
		if w.bypassed >= bypassLimit {
			return false
		}
	}
	for _, w := range st.waiters {
		w.bypassed++
	}
	return true
}

// release returns a gang's slots and grants waiters that now fit.
func (st *slotTable) release(need map[string]int) {
	st.mu.Lock()
	for site, n := range need {
		st.used[site] -= n
		if st.used[site] <= 0 {
			delete(st.used, site)
		}
	}
	st.grantLocked()
	st.mu.Unlock()
}

// grantLocked grants fitting waiters in FIFO order. A fitting waiter
// may be granted past blocked earlier ones — charging each a unit of
// bypass credit — unless one of them has exhausted its credit, in which
// case it reserves the table until its gang fits (anti-starvation).
func (st *slotTable) grantLocked() {
	i := 0
	for i < len(st.waiters) {
		w := st.waiters[i]
		if !st.fits(w.need) || !st.headroomLocked(i) {
			i++
			continue
		}
		for j := 0; j < i; j++ {
			st.waiters[j].bypassed++
		}
		st.take(w.need)
		w.granted = true
		close(w.ready)
		st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
	}
}

// headroomLocked reports whether every blocked waiter ahead of index i
// still has bypass credit to spare (caller holds mu).
func (st *slotTable) headroomLocked(i int) bool {
	for j := 0; j < i; j++ {
		if st.waiters[j].bypassed >= bypassLimit {
			return false
		}
	}
	return true
}

// inUse reports the currently held slots at a site (for tests).
func (st *slotTable) inUse(site string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.used[site]
}
