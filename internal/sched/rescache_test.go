package sched

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/rescache"
)

// cacheView builds the validity oracles over a test cluster: real data
// epochs, a fixed policy epoch (the fixtures don't churn policies), and
// a recheck that accepts everything.
func cacheView(cl *cluster.Cluster) rescache.View {
	return rescache.View{
		DataEpoch:   cl.DataEpoch,
		PolicyEpoch: func() uint64 { return 0 },
		Recheck:     func(*plan.Node) bool { return true },
	}
}

// TestSubmitSameQuerySingleExecution is the thundering-herd contract:
// N concurrent submissions of one query through a cache-backed server
// run the executor exactly once — every other submission is served from
// the in-flight execution or the cache — and all callers get the same
// result.
func TestSubmitSameQuerySingleExecution(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	srv := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 4,
		ResultCache:   rescache.New(8 << 20),
		CacheView:     cacheView(cl),
	})
	defer srv.Close()

	const n = 16
	results := make([][]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Do(context.Background(), joinQuery)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = canon(resp.Rows)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("submission %d diverged:\n%v\nvs\n%v", i, results[i], results[0])
		}
	}
	c := srv.Counters()
	if c.Executed != 1 {
		t.Fatalf("expected exactly one execution, got %d (counters %+v)", c.Executed, c)
	}
	if c.ResultCacheHits+c.ExecCoalesced != n-1 {
		t.Fatalf("expected %d served without executing, got hits=%d coalesced=%d",
			n-1, c.ResultCacheHits, c.ExecCoalesced)
	}
	if c.Completed != n {
		t.Fatalf("completed %d of %d", c.Completed, n)
	}
}

// TestCachedResultsAreIsolated: followers and later hits get deep
// copies — mutating one response cannot corrupt the cache or any other
// caller's rows.
func TestCachedResultsAreIsolated(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	srv := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 2,
		ResultCache:   rescache.New(8 << 20),
		CacheView:     cacheView(cl),
	})
	defer srv.Close()

	first, err := srv.Do(context.Background(), countQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := canon(first.Rows)

	second, err := srv.Do(context.Background(), countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatalf("second run not served from cache")
	}
	if !reflect.DeepEqual(canon(second.Rows), want) {
		t.Fatalf("cached rows diverge from fresh run")
	}
	if second.Stats != first.Stats {
		t.Fatalf("cached stats diverge: %+v vs %+v", second.Stats, first.Stats)
	}
	// Vandalize both responses.
	for _, resp := range []*Response{first, second} {
		for i := range resp.Rows {
			for j := range resp.Rows[i] {
				resp.Rows[i][j] = expr.NewString("vandalized")
			}
		}
	}
	third, err := srv.Do(context.Background(), countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Fatalf("third run not served from cache")
	}
	if !reflect.DeepEqual(canon(third.Rows), want) {
		t.Fatalf("cache corrupted by mutating served copies")
	}
	if c := srv.Counters(); c.Executed != 1 {
		t.Fatalf("expected one execution, got %d", c.Executed)
	}
}

// TestCancelMidFillNoLeak: cancelling the filling leader mid-execution
// must not strand followers (they retry and one becomes the new leader)
// and must not leak goroutines; an uncancelled later submission
// succeeds and fills the cache.
func TestCancelMidFillNoLeak(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	cl.SetWireDelay(0.5) // per-batch wire sleeps give the cancel a window
	srv := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 4,
		ResultCache:   rescache.New(8 << 20),
		CacheView:     cacheView(cl),
	})
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = srv.Do(ctx, joinQuery)
		}(i)
	}
	// Give the group time to start executing, then pull the plug on all
	// of them (leader and followers share ctx).
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue // finished before the cancel landed — also fine
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submission %d: unexpected error %v", i, err)
		}
	}

	// Do returns as soon as the caller's ctx ends; the serving worker may
	// still be tearing down. Once it settles the flight table must be
	// clean and a fresh submission must work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.exmu.Lock()
		inflight := len(srv.execFlights)
		srv.exmu.Unlock()
		if inflight == 0 && srv.Running() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d exec flights still registered after cancellation settled", inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.SetWireDelay(0)
	resp, err := srv.Do(context.Background(), joinQuery)
	if err != nil {
		t.Fatalf("post-cancel submission: %v", err)
	}
	if len(resp.Rows) == 0 {
		t.Fatalf("post-cancel submission returned no rows")
	}
	again, err := srv.Do(context.Background(), joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("cache not filled by post-cancel execution")
	}
}

// TestDataEpochBumpForcesReexecution: a load into a consumed table
// between two identical submissions makes the second re-execute and see
// the new data.
func TestDataEpochBumpForcesReexecution(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	srv := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 2,
		ResultCache:   rescache.New(8 << 20),
		CacheView:     cacheView(cl),
	})
	defer srv.Close()

	if _, err := srv.Do(context.Background(), countQuery); err != nil {
		t.Fatal(err)
	}
	cTab, _ := cat.Table("Customer")
	if err := cl.LoadFragment(cTab, 0, []expr.Row{
		{expr.NewInt(999), expr.NewString("cust-new"), expr.NewFloat(1)},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Do(context.Background(), countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatalf("stale result served after load into Customer")
	}
	if c := srv.Counters(); c.Executed != 2 {
		t.Fatalf("expected re-execution after data change, executed=%d", c.Executed)
	}
}
