// Package sched is the concurrent query-serving front end layered over
// the single-query optimizer and the parallel execution engine. It
// provides what neither of those layers can on its own:
//
//   - Admission control: a bounded submission queue with typed
//     rejections (ErrQueueFull, ErrServerClosed) so overload sheds load
//     as backpressure instead of unbounded queueing.
//   - Weighted-fair scheduling: queued queries start in weighted-fair
//     order (virtual-finish-time queueing), and each query's fragment
//     pipelines take per-site execution slots from a bounded pool, so
//     concurrent queries share every site's worker capacity instead of
//     stacking unbounded goroutines on it. Slots are gang-acquired —
//     all of a query's sites at once — which rules out cross-query
//     slot deadlocks by construction (no query ever waits for slots
//     while holding some).
//   - Per-query isolation: execution runs under the per-query context
//     (cancelled queued queries never start; cancelled running queries
//     tear down their fragment pipelines and in-flight retries), and
//     per-run ledger scoping in the executor keeps each query's
//     RunStats independent under concurrency.
//   - Shared-work batching: identical in-flight optimizations coalesce
//     (singleflight on the normalized-plan digest), so a thundering
//     herd of one query optimizes once and the followers reuse the
//     leader's plan.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/feedback"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/rescache"
)

// Typed admission rejections. Submit wraps them with detail; match with
// errors.Is.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// QueueDepth — the server's backpressure signal under overload.
	ErrQueueFull = errors.New("sched: submission queue full")
	// ErrServerClosed rejects submissions after Close.
	ErrServerClosed = errors.New("sched: server closed")
)

// Options tune a Server.
type Options struct {
	// MaxConcurrent bounds the queries executing simultaneously
	// (<=0: DefaultMaxConcurrent).
	MaxConcurrent int
	// QueueDepth bounds admitted-but-not-started queries; submissions
	// beyond it fail with ErrQueueFull (<=0: DefaultQueueDepth).
	QueueDepth int
	// SiteSlots bounds, per site, the fragment pipelines concurrently
	// executing there across all queries (<=0: 2×MaxConcurrent). A
	// single query needing more slots at one site than the bound is
	// clamped to it (its own fragments multiplex the site), so every
	// plan stays schedulable.
	SiteSlots int
	// QueryTimeout, when set, bounds each query from admission to
	// completion (a per-Request Timeout overrides it).
	QueryTimeout time.Duration
	// ResultCache, when set, serves repeated queries from whole cached
	// result sets and coalesces concurrent identical executions onto one
	// run (the execution extension of the optimization singleflight).
	// CacheView supplies its validity oracles — data epochs, the policy
	// epoch and the provenance recheck; see package rescache.
	ResultCache *rescache.Cache
	CacheView   rescache.View
	// CacheOptsFP distinguishes cache entries whose execution options
	// change observable statistics (e.g. wire compression). It must
	// agree with Exec so replayed statistics match what an execution
	// under these options reports.
	CacheOptsFP string
	// Exec overrides the execution options served queries run under
	// (nil = the build default).
	Exec *executor.ExecOptions

	// SLOTarget, when set, turns MaxConcurrent/QueueDepth into adaptive
	// ceilings: a controller watches the observed cgdqp_sched_e2e_seconds
	// p99 over each AdaptInterval window and AIMD-adjusts the effective
	// limits against the target — multiplicative decrease when the p99
	// breaches it, additive recovery when latency clears 80% of it. Zero
	// keeps the static limits (bit-identical scheduling to previous
	// behavior).
	SLOTarget time.Duration
	// AdaptInterval is the controller cadence (default 200ms).
	AdaptInterval time.Duration
	// Feedback, when set, (a) weights gang site-slot needs by observed
	// fragment cardinality instead of counting every fragment as 1, and
	// (b) receives per-operator actuals and e2e latency samples from
	// every execution. Nil keeps fragment counting and records nothing.
	Feedback *feedback.Store
	// SlowLog, when set, receives a structured JSON line for every
	// served query at or above its latency threshold.
	SlowLog *feedback.SlowQueryLog
}

// Defaults for the zero Options value.
const (
	DefaultMaxConcurrent = 4
	DefaultQueueDepth    = 64
)

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	return DefaultMaxConcurrent
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return DefaultQueueDepth
}

func (o Options) siteSlots() int {
	if o.SiteSlots > 0 {
		return o.SiteSlots
	}
	return 2 * o.maxConcurrent()
}

// Request is one query submission.
type Request struct {
	SQL string
	// Weight is the fair-share weight (<=0 means 1): a weight-2 query
	// waiting alongside weight-1 queries is scheduled as if it arrived
	// half a virtual time unit earlier.
	Weight float64
	// Timeout overrides Options.QueryTimeout for this query.
	Timeout time.Duration
}

// Response is the outcome of a served query.
type Response struct {
	Rows    []expr.Row
	Columns []string
	// Stats is the query's own execution accounting (per-run ledger
	// scoped — unaffected by concurrent queries).
	Stats executor.RunStats
	// EstShipCost is the optimizer's estimate for the executed plan.
	EstShipCost float64
	// Coalesced marks a query whose optimization was shared with an
	// identical in-flight one (singleflight).
	Coalesced bool
	// CacheHit marks a query served without executing: either straight
	// from the result cache or from an identical in-flight execution it
	// coalesced onto. Rows are a private copy; Stats and the audit
	// records replayed into the audit log are those of the execution
	// that produced the result (byte-identical to a fresh run).
	CacheHit bool
	// QueueWait is the time from admission to scheduling; Total runs
	// from admission to completion.
	QueueWait time.Duration
	Total     time.Duration
}

// Counters is a consistent snapshot of the server's lifetime counts.
type Counters struct {
	Submitted         int64
	Admitted          int64
	RejectedQueueFull int64
	RejectedClosed    int64
	Completed         int64 // finished with rows
	Failed            int64 // finished with a non-cancellation error
	Cancelled         int64 // finished by context cancellation/timeout
	Coalesced         int64 // optimizations served by another flight
	Executed          int64 // actual executor invocations
	ResultCacheHits   int64 // served straight from the result cache
	ExecCoalesced     int64 // served by an identical in-flight execution
}

// Server is the concurrent query-serving front end. Create with
// NewServer, submit with Submit/Do, and Close when done (Close drains
// admitted queries and stops the workers).
type Server struct {
	opt  *optimizer.Optimizer
	cl   *cluster.Cluster
	obsv *obs.Observer
	opts Options

	mu     sync.Mutex
	cond   *sync.Cond
	queue  taskHeap
	vtime  float64 // weighted-fair virtual clock, advanced as tasks start
	seq    uint64
	closed bool

	slots   *slotTable
	flights flightGroup
	wg      sync.WaitGroup
	running atomic.Int64

	// Adaptive admission (Options.SLOTarget): effMax/effQueue are the
	// effective limits within [1, configured]; active (guarded by mu)
	// counts tasks between next() and taskDone(), gating dispatch below
	// effMax even though the worker pool itself is fixed. e2eHist
	// mirrors the cgdqp_sched_e2e_seconds histogram privately so the
	// controller can take windowed p99s without a registry.
	effMax   atomic.Int64
	effQueue atomic.Int64
	active   int
	e2eHist  *obs.Histogram
	ctrlStop chan struct{}
	ctrlWG   sync.WaitGroup

	// execFlights coalesces identical in-flight executions when a result
	// cache is configured (see execflight.go).
	exmu        sync.Mutex
	execFlights map[string]*execFlight

	nSubmitted, nAdmitted, nRejFull, nRejClosed atomic.Int64
	nCompleted, nFailed, nCancelled, nCoalesced atomic.Int64
	nExecuted, nResCacheHits, nExecCoalesced    atomic.Int64
}

// NewServer starts a server over the given optimizer and cluster. The
// observer (nil = unobserved) receives queue gauges, admission and
// rejection counters, and queue-wait / end-to-end latency histograms;
// the optimizer and cluster should share it so spans line up.
func NewServer(opt *optimizer.Optimizer, cl *cluster.Cluster, obsv *obs.Observer, opts Options) *Server {
	s := &Server{
		opt:         opt,
		cl:          cl,
		obsv:        obsv,
		opts:        opts,
		slots:       newSlotTable(opts.siteSlots()),
		flights:     flightGroup{m: map[string]*flight{}},
		execFlights: map[string]*execFlight{},
		e2eHist:     obs.NewLatencyHistogram(),
		ctrlStop:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.effMax.Store(int64(opts.maxConcurrent()))
	s.effQueue.Store(int64(opts.queueDepth()))
	if opts.SLOTarget > 0 {
		s.ctrlWG.Add(1)
		go s.controller()
	}
	for i := 0; i < opts.maxConcurrent(); i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
	return s
}

// Ticket is a handle on an admitted query.
type Ticket struct{ t *task }

// Submit admits a query (or rejects it with a typed error) and returns
// immediately; Wait on the ticket delivers the outcome. ctx governs the
// query end to end: cancelling it while queued means the query never
// starts; cancelling it mid-execution tears down its fragment pipelines
// and in-flight shipment retries.
func (s *Server) Submit(ctx context.Context, req Request) (*Ticket, error) {
	s.nSubmitted.Add(1)
	if req.SQL == "" {
		return nil, fmt.Errorf("sched: empty SQL")
	}
	weight := req.Weight
	if weight <= 0 {
		weight = 1
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.QueryTimeout
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.nRejClosed.Add(1)
		s.countRejected("closed")
		return nil, ErrServerClosed
	}
	if len(s.queue) >= s.effQueueDepth() {
		depth := len(s.queue)
		s.mu.Unlock()
		s.nRejFull.Add(1)
		s.countRejected("queue_full")
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, depth)
	}
	var qctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		qctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		qctx, cancel = context.WithCancel(ctx)
	}
	t := &task{
		srv:     s,
		req:     req,
		ctx:     qctx,
		cancel:  cancel,
		vft:     s.vtime + 1/weight,
		seq:     s.seq,
		enq:     time.Now(),
		heapIdx: -1,
		done:    make(chan struct{}),
	}
	s.seq++
	heap.Push(&s.queue, t)
	s.nAdmitted.Add(1)
	s.gaugeQueueLocked()
	s.cond.Signal()
	s.mu.Unlock()
	if m := s.obsv.Reg(); m != nil {
		m.Counter("cgdqp_sched_admitted_total").Inc()
	}
	return &Ticket{t: t}, nil
}

// SubmitSQL is Submit with default weight and timeout.
func (s *Server) SubmitSQL(ctx context.Context, sql string) (*Ticket, error) {
	return s.Submit(ctx, Request{SQL: sql})
}

// Do submits a query and waits for its outcome.
func (s *Server) Do(ctx context.Context, sql string) (*Response, error) {
	tk, err := s.SubmitSQL(ctx, sql)
	if err != nil {
		return nil, err
	}
	return tk.Wait(ctx)
}

// Wait blocks until the query finishes (or ctx is cancelled — the query
// itself keeps its own submission context). A query whose own context
// ends while it is still queued is abandoned without ever starting.
func (tk *Ticket) Wait(ctx context.Context) (*Response, error) {
	t := tk.t
	select {
	case <-t.done:
		return t.resp, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.ctx.Done():
		// Cancelled or timed out: pull it out of the queue if it has
		// not started; a running query observes the context in its
		// execution pipeline and finishes shortly on its own.
		t.srv.abandon(t)
		<-t.done
		return t.resp, t.err
	}
}

// Done is closed when the query reaches a terminal state; use Wait for
// the result.
func (tk *Ticket) Done() <-chan struct{} { return tk.t.done }

// Close stops admission, drains the queue (admitted queries still run),
// waits for the workers and the adaptive controller to exit, and
// returns. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	close(s.ctrlStop)
	s.ctrlWG.Wait()
}

// Counters returns a snapshot of the server's lifetime counts.
func (s *Server) Counters() Counters {
	return Counters{
		Submitted:         s.nSubmitted.Load(),
		Admitted:          s.nAdmitted.Load(),
		RejectedQueueFull: s.nRejFull.Load(),
		RejectedClosed:    s.nRejClosed.Load(),
		Completed:         s.nCompleted.Load(),
		Failed:            s.nFailed.Load(),
		Cancelled:         s.nCancelled.Load(),
		Coalesced:         s.nCoalesced.Load(),
		Executed:          s.nExecuted.Load(),
		ResultCacheHits:   s.nResCacheHits.Load(),
		ExecCoalesced:     s.nExecCoalesced.Load(),
	}
}

// QueueDepth returns the current number of admitted-but-waiting queries.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Running returns the number of queries currently being served.
func (s *Server) Running() int64 { return s.running.Load() }

// effQueueDepth is the effective admission bound: the configured depth,
// possibly lowered by the adaptive controller.
func (s *Server) effQueueDepth() int { return int(s.effQueue.Load()) }

// Tuning returns the current effective (MaxConcurrent, QueueDepth)
// limits. Without an SLOTarget these are the configured values.
func (s *Server) Tuning() (maxConcurrent, queueDepth int) {
	return int(s.effMax.Load()), int(s.effQueue.Load())
}

// --- adaptive admission (Options.SLOTarget) ------------------------------

// adaptMinSamples is the minimum number of completions in a controller
// window before the p99 is considered meaningful; sparser windows are
// accumulated into the next one instead of triggering adjustments.
const adaptMinSamples = 8

// DefaultAdaptInterval is the controller cadence when AdaptInterval is
// zero.
const DefaultAdaptInterval = 200 * time.Millisecond

// controller is the AIMD admission loop: each interval it takes the
// windowed p99 of end-to-end latency and adjusts the effective
// MaxConcurrent/QueueDepth — halving on an SLO breach, creeping back up
// when latency clears 80% of the target. It runs until Close.
func (s *Server) controller() {
	defer s.ctrlWG.Done()
	interval := s.opts.AdaptInterval
	if interval <= 0 {
		interval = DefaultAdaptInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := s.e2eHist.Snap()
	for {
		select {
		case <-s.ctrlStop:
			return
		case <-tick.C:
			cur := s.e2eHist.Snap()
			delta := cur.Sub(prev)
			if delta.Count() < adaptMinSamples {
				// Too sparse to judge: keep prev so the next window
				// accumulates these observations instead of losing them.
				continue
			}
			prev = cur
			s.adjust(delta.Quantile(0.99))
		}
	}
}

// adjust applies one AIMD step against the SLO target given the last
// window's observed p99 (seconds).
func (s *Server) adjust(p99 float64) {
	slo := s.opts.SLOTarget.Seconds()
	cfgMax := int64(s.opts.maxConcurrent())
	cfgQueue := int64(s.opts.queueDepth())
	em, eq := s.effMax.Load(), s.effQueue.Load()
	switch {
	case p99 > slo:
		// Multiplicative decrease: shed load quickly on a breach.
		if em > 1 {
			em /= 2
			if em < 1 {
				em = 1
			}
			s.effMax.Store(em)
		}
		if eq > 1 {
			eq /= 2
			if eq < 1 {
				eq = 1
			}
			s.effQueue.Store(eq)
		}
	case p99 < 0.8*slo:
		// Additive increase: probe capacity back toward the configured
		// ceilings once latency has comfortably recovered.
		raised := false
		if em < cfgMax {
			s.effMax.Store(em + 1)
			raised = true
		}
		if eq < cfgQueue {
			eq += cfgQueue/8 + 1
			if eq > cfgQueue {
				eq = cfgQueue
			}
			s.effQueue.Store(eq)
		}
		if raised {
			// A raised concurrency limit may unblock queued dispatch.
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}
	if m := s.obsv.Reg(); m != nil {
		m.Gauge("cgdqp_sched_eff_max_concurrent").Set(float64(s.effMax.Load()))
		m.Gauge("cgdqp_sched_eff_queue_depth").Set(float64(s.effQueue.Load()))
		m.Gauge("cgdqp_sched_window_p99_seconds").Set(p99)
	}
}

// --- scheduling loop -----------------------------------------------------

// worker serves queries one at a time, picking the next in
// weighted-fair order.
func (s *Server) worker() {
	for {
		t := s.next()
		if t == nil {
			return
		}
		s.serve(t)
		s.taskDone()
	}
}

// next blocks until a task is schedulable (skipping tasks whose context
// ended while queued — those never start) or the server is closed with
// an empty queue. Dispatch additionally respects the effective
// concurrency limit: with adaptive admission the controller may hold it
// below the worker-pool size, idling workers until latency recovers.
func (s *Server) next() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.queue) > 0 && s.active < int(s.effMax.Load()) {
			t := heap.Pop(&s.queue).(*task)
			s.gaugeQueueLocked()
			if t.ctx.Err() != nil {
				// Cancelled while queued: finish it without starting.
				err := t.ctx.Err()
				s.mu.Unlock()
				s.finish(t, nil, err)
				s.mu.Lock()
				continue
			}
			if t.vft > s.vtime {
				s.vtime = t.vft
			}
			s.active++
			return t
		}
		if s.closed && len(s.queue) == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// taskDone returns a dispatch slot after serve and wakes waiters (the
// effective limit may have kept tasks queued behind the finished one).
func (s *Server) taskDone() {
	s.mu.Lock()
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abandon removes a still-queued task whose context ended and finishes
// it with the context error; a task already taken by a worker is left
// to finish on its own.
func (s *Server) abandon(t *task) {
	s.mu.Lock()
	if t.heapIdx < 0 {
		s.mu.Unlock()
		return
	}
	heap.Remove(&s.queue, t.heapIdx)
	s.gaugeQueueLocked()
	s.mu.Unlock()
	s.finish(t, nil, t.ctx.Err())
}

// serve runs one admitted query: optimize (coalescing identical
// in-flight optimizations), gang-acquire per-site execution slots, and
// execute with the parallel engine under the query's context.
func (s *Server) serve(t *task) {
	t.queueWait = time.Since(t.enq)
	s.running.Add(1)
	defer s.running.Add(-1)
	if m := s.obsv.Reg(); m != nil {
		m.Gauge("cgdqp_sched_running").Set(float64(s.running.Load()))
		m.Histogram("cgdqp_sched_queue_wait_seconds").Observe(t.queueWait.Seconds())
	}
	sp := s.obsv.StartSpan("sched.serve")

	res, shared, err := s.optimizeShared(t.ctx, t.req.SQL)
	if err != nil {
		sp.Tag("outcome", "optimize_error").End()
		s.finish(t, nil, err)
		return
	}
	located := res.Plan
	if shared {
		// Followers of a coalesced optimization share the leader's
		// Result; execution needs a private tree.
		located = located.Clone()
	}

	if s.opts.ResultCache != nil {
		s.serveCached(t, res, located, shared, sp)
		return
	}

	need := s.census(located)
	if err := s.slots.acquire(t.ctx, need); err != nil {
		sp.Tag("outcome", "cancelled").End()
		s.finish(t, nil, err)
		return
	}
	s.nExecuted.Add(1)
	rows, stats, err := s.runPlanFeedback(t, located, s.obsv)
	s.slots.release(need)
	if err != nil {
		sp.Tag("outcome", "exec_error").End()
		s.finish(t, nil, err)
		return
	}
	cols := make([]string, len(located.Cols))
	for i, c := range located.Cols {
		cols[i] = c.Name
	}
	if sp.Enabled() {
		sp.TagInt("rows", stats.RowsOut).Tag("outcome", "ok").End()
	}
	s.finish(t, &Response{
		Rows:        rows,
		Columns:     cols,
		Stats:       *stats,
		EstShipCost: res.ShipCost,
		Coalesced:   shared,
		QueueWait:   t.queueWait,
	}, nil)
}

// finish records the task's outcome exactly once and releases its
// context resources.
func (s *Server) finish(t *task, resp *Response, err error) {
	t.once.Do(func() {
		if resp != nil {
			resp.Total = time.Since(t.enq)
		}
		t.resp, t.err = resp, err
		t.cancel()
		close(t.done)
		status := "ok"
		switch {
		case err == nil:
			s.nCompleted.Add(1)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.nCancelled.Add(1)
			status = "cancelled"
		default:
			s.nFailed.Add(1)
			status = "error"
		}
		lat := time.Since(t.enq)
		if m := s.obsv.Reg(); m != nil {
			m.Counter("cgdqp_sched_queries_total", "status", status).Inc()
			m.Histogram("cgdqp_sched_e2e_seconds").Observe(lat.Seconds())
		}
		s.e2eHist.Observe(lat.Seconds())
		if err == nil && resp != nil {
			s.opts.Feedback.ObserveQuery(lat.Seconds())
			if s.opts.SlowLog != nil {
				cacheDisp := feedback.CacheOff
				if s.opts.ResultCache != nil {
					cacheDisp = feedback.CacheMiss
				}
				if resp.CacheHit {
					cacheDisp = feedback.CacheHit
				}
				s.opts.SlowLog.Maybe(lat, feedback.QueryRecord{
					SQLDigest:  feedback.SQLDigest(t.req.SQL),
					PlanDigest: t.planDigest,
					RowsOut:    resp.Stats.RowsOut,
					ShipBytes:  resp.Stats.ShippedBytes,
					ShipCostMS: resp.Stats.ShipCost,
					Retries:    resp.Stats.Retries,
					Cache:      cacheDisp,
					Engine:     "par",
					Coalesced:  resp.Coalesced,
					QErrors:    t.qerrors,
				})
			}
		}
	})
}

// census picks the gang site-slot demand for a located plan: plain
// fragment counting, or — with a feedback store — counts weighted by
// observed fragment cardinality, so heavy fragments claim more of a
// site's capacity than trivial ones.
func (s *Server) census(located *plan.Node) map[string]int {
	if s.opts.Feedback != nil {
		return siteCensusWeighted(located, s.opts.siteSlots(), s.opts.Feedback)
	}
	return siteCensus(located, s.opts.siteSlots())
}

// runPlanFeedback executes the located plan, installing a plan profile
// when telemetry is on so per-operator actuals flow into the feedback
// store and the task's slow-log context after a successful run.
func (s *Server) runPlanFeedback(t *task, located *plan.Node, o *obs.Observer) ([]expr.Row, *executor.RunStats, error) {
	runObs := o
	var prof *obs.PlanProfile
	if s.opts.Feedback != nil || s.opts.SlowLog != nil {
		if prof = o.Prof(); prof == nil {
			prof = obs.NewPlanProfile()
			runObs = o.WithProfile(prof)
		}
		if s.opts.SlowLog != nil {
			t.planDigest = feedback.ShortDigest(located.Digest())
		}
	}
	rows, stats, err := s.runPlan(t.ctx, located, runObs)
	if err == nil && prof != nil {
		t.qerrors = feedback.RecordExecution(s.opts.Feedback, located, prof)
	}
	return rows, stats, err
}

// gaugeQueueLocked refreshes the queue-depth gauge (caller holds mu).
func (s *Server) gaugeQueueLocked() {
	if m := s.obsv.Reg(); m != nil {
		m.Gauge("cgdqp_sched_queue_depth").Set(float64(len(s.queue)))
	}
}

func (s *Server) countRejected(reason string) {
	if m := s.obsv.Reg(); m != nil {
		m.Counter("cgdqp_sched_rejected_total", "reason", reason).Inc()
	}
}
