package sched

import (
	"context"
	"sync"
	"time"

	"cgdqp/internal/feedback"
)

// task is one admitted query moving through the scheduler.
type task struct {
	srv    *Server
	req    Request
	ctx    context.Context
	cancel context.CancelFunc

	// Weighted-fair queueing state: a task's virtual finish time is the
	// virtual clock at admission plus 1/weight, so heavier queries sort
	// as if they had arrived earlier; seq breaks ties FIFO.
	vft float64
	seq uint64

	enq       time.Time
	queueWait time.Duration
	heapIdx   int // position in the wait queue, -1 once popped

	once sync.Once
	done chan struct{}
	resp *Response
	err  error

	// Slow-query-log context, filled by serve paths when logging is on.
	planDigest string
	qerrors    []feedback.OpQError
}

// taskHeap is the wait queue, a min-heap on (vft, seq).
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].vft != h[j].vft {
		return h[i].vft < h[j].vft
	}
	return h[i].seq < h[j].seq
}

func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
