package sched

import (
	"context"
	"errors"

	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/rescache"
)

// execFlight extends the optimization singleflight to *execution*: while
// one task (the leader) executes a plan and fills the result cache,
// identical tasks wait on the flight and are served the leader's result
// instead of executing again — a thundering herd of one query runs once.
type execFlight struct {
	done chan struct{}
	// res is an immutable master copy of the leader's result; every
	// follower copies out of it (set iff err == nil).
	res *rescache.Result
	err error
	// cancelled marks a leader that failed only because its own context
	// ended; followers then retry (one becomes the new leader) instead
	// of inheriting a cancellation that was never theirs.
	cancelled bool
}

// serveCached is the serve path when a result cache is configured:
// cache hit → respond without executing (no slots taken); in-flight
// identical execution → wait for the leader; otherwise become the
// leader, execute, fill the cache and publish the result to followers.
func (s *Server) serveCached(t *task, ores *optimizer.Result, located *plan.Node, shared bool, sp obs.Span) {
	cache, view := s.opts.ResultCache, s.opts.CacheView
	fill := rescache.Prepare(located, s.opts.CacheOptsFP, view)
	for {
		if r, ok := cache.Get(fill.Key, view); ok {
			s.nResCacheHits.Add(1)
			s.respondCached(t, r, shared, sp, "cache_hit")
			return
		}
		s.exmu.Lock()
		if f, ok := s.execFlights[fill.Key]; ok {
			s.exmu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					if f.cancelled {
						if t.ctx.Err() != nil {
							sp.Tag("outcome", "cancelled").End()
							s.finish(t, nil, t.ctx.Err())
							return
						}
						// The leader's cancellation is not ours: retry
						// (perhaps as the new leader).
						continue
					}
					// A real execution failure is the shared outcome of
					// the coalesced group, exactly as a shared
					// optimization failure would be.
					sp.Tag("outcome", "exec_error").End()
					s.finish(t, nil, f.err)
					return
				}
				s.nExecCoalesced.Add(1)
				if m := s.obsv.Reg(); m != nil {
					m.Counter("cgdqp_sched_exec_coalesced_total").Inc()
				}
				s.respondCached(t, f.res.Copy(), shared, sp, "exec_coalesced")
				return
			case <-t.ctx.Done():
				sp.Tag("outcome", "cancelled").End()
				s.finish(t, nil, t.ctx.Err())
				return
			}
		}
		f := &execFlight{done: make(chan struct{})}
		s.execFlights[fill.Key] = f
		s.exmu.Unlock()

		rows, cols, stats, recs, err := s.execute(t, located)
		if err == nil {
			cache.Put(fill, rows, cols, *stats, recs, ores.ShipCost)
			// Followers read from a private master copy — the leader's
			// own slices go to the leader's caller, who may mutate them.
			f.res = rescache.NewResult(rows, cols, *stats, recs, ores.ShipCost)
		} else {
			f.err = err
			f.cancelled = errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		}
		s.exmu.Lock()
		delete(s.execFlights, fill.Key)
		s.exmu.Unlock()
		close(f.done)

		if err != nil {
			if f.cancelled {
				sp.Tag("outcome", "cancelled").End()
			} else {
				sp.Tag("outcome", "exec_error").End()
			}
			s.finish(t, nil, err)
			return
		}
		if sp.Enabled() {
			sp.TagInt("rows", stats.RowsOut).Tag("outcome", "ok").End()
		}
		s.finish(t, &Response{
			Rows:        rows,
			Columns:     cols,
			Stats:       *stats,
			EstShipCost: ores.ShipCost,
			Coalesced:   shared,
			QueueWait:   t.queueWait,
		}, nil)
		return
	}
}

// respondCached finishes a task from a cached (or flight-shared) result:
// the stored audit records are replayed into the shared audit log so a
// cache-served query leaves the same compliance trail as the execution
// that filled it.
func (s *Server) respondCached(t *task, r *rescache.Result, shared bool, sp obs.Span, how string) {
	if sink := s.obsv.AuditSink(); sink != nil {
		for _, rec := range r.Audit {
			sink.Record(rec)
		}
	}
	if sp.Enabled() {
		sp.TagInt("rows", r.Stats.RowsOut).Tag("outcome", how).End()
	}
	s.finish(t, &Response{
		Rows:        r.Rows,
		Columns:     r.Columns,
		Stats:       r.Stats,
		EstShipCost: r.ShipCost,
		Coalesced:   shared,
		CacheHit:    true,
		QueueWait:   t.queueWait,
	}, nil)
}

// execute runs the located plan under the task's context with gang
// per-site slots, capturing the run's audit records (when auditing is
// on) so the cache can replay them to later hits.
func (s *Server) execute(t *task, located *plan.Node) ([]expr.Row, []string, *executor.RunStats, []obs.AuditRecord, error) {
	need := s.census(located)
	if err := s.slots.acquire(t.ctx, need); err != nil {
		return nil, nil, nil, nil, err
	}
	runObs := s.obsv
	var capture *obs.AuditLog
	if s.obsv.AuditSink() != nil {
		capture = obs.NewAuditLog()
		runObs = s.obsv.WithAudit(capture)
	}
	s.nExecuted.Add(1)
	rows, stats, err := s.runPlanFeedback(t, located, runObs)
	s.slots.release(need)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var recs []obs.AuditRecord
	if capture != nil {
		recs = capture.Records()
		sink := s.obsv.AuditSink()
		for _, rec := range recs {
			sink.Record(rec)
		}
	}
	cols := make([]string, len(located.Cols))
	for i, c := range located.Cols {
		cols[i] = c.Name
	}
	return rows, cols, stats, recs, nil
}

// runPlan executes a located plan with the parallel engine under the
// server's execution options (nil Exec = the build default).
func (s *Server) runPlan(ctx context.Context, located *plan.Node, o *obs.Observer) ([]expr.Row, *executor.RunStats, error) {
	if s.opts.Exec != nil {
		return executor.RunParallelOpts(ctx, located, s.cl, o, *s.opts.Exec)
	}
	return executor.RunParallelObserved(ctx, located, s.cl, o)
}
