package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

// leakCheck arms a goroutine-leak detector: the returned function (run
// it deferred, after the server is closed) fails the test if the
// goroutine count has not settled back to its starting level. The
// settle loop tolerates runtime bookkeeping goroutines finishing late.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	}
}

// carco builds the three-region fixture (Customer at N, Orders at E,
// Supply at A) the executor tests use, plus its policy catalog.
func carco(t *testing.T) (*schema.Catalog, *cluster.Cluster) {
	t.Helper()
	cat := schema.NewCatalog()
	cTab := schema.NewTable("Customer", "db-n", "N", 50,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
	)
	cTab.SetColStats("custkey", schema.ColStats{Distinct: 50})
	oTab := schema.NewTable("Orders", "db-e", "E", 200,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	)
	oTab.SetColStats("custkey", schema.ColStats{Distinct: 50})
	oTab.SetColStats("ordkey", schema.ColStats{Distinct: 200})
	sTab := schema.NewTable("Supply", "db-a", "A", 600,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
	)
	sTab.SetColStats("ordkey", schema.ColStats{Distinct: 200})
	cat.MustAddTable(cTab)
	cat.MustAddTable(oTab)
	cat.MustAddTable(sTab)

	cl := cluster.New(cat, network.FiveRegionWAN(cat.Locations()))
	var cRows, oRows, sRows []expr.Row
	for i := 0; i < 50; i++ {
		cRows = append(cRows, expr.Row{
			expr.NewInt(int64(i)),
			expr.NewString(fmt.Sprintf("cust-%02d", i)),
			expr.NewFloat(float64(i * 10)),
		})
	}
	for i := 0; i < 200; i++ {
		oRows = append(oRows, expr.Row{
			expr.NewInt(int64(i % 50)),
			expr.NewInt(int64(i)),
			expr.NewFloat(float64(100 + i)),
		})
	}
	for i := 0; i < 600; i++ {
		sRows = append(sRows, expr.Row{
			expr.NewInt(int64(i % 200)),
			expr.NewInt(int64(1 + i%7)),
		})
	}
	for _, ld := range []struct {
		tab  *schema.Table
		rows []expr.Row
	}{{cTab, cRows}, {oTab, oRows}, {sTab, sRows}} {
		if err := cl.LoadFragment(ld.tab, 0, ld.rows); err != nil {
			t.Fatal(err)
		}
	}
	return cat, cl
}

func carcoOptimizer(t *testing.T, cat *schema.Catalog, cl *cluster.Cluster, oo optimizer.Options) *optimizer.Optimizer {
	t.Helper()
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship custkey, name from Customer to *", "pn", "db-n"),
		policy.MustParse("ship custkey, ordkey from Orders to *", "pe1", "db-e"),
		policy.MustParse("ship totprice as aggregates sum from Orders to A group by custkey, ordkey", "pe2", "db-e"),
		policy.MustParse("ship quantity as aggregates sum from Supply to E group by ordkey", "pa", "db-a"),
	)
	oo.Compliant = true
	return optimizer.New(cat, pc, cl.Net, oo)
}

const joinQuery = `SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
 FROM Customer C, Orders O, Supply S
 WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name`

const countQuery = `SELECT C.name, COUNT(*) AS cnt
 FROM Customer C, Orders O WHERE C.custkey = O.custkey GROUP BY C.name`

// canon renders rows order-independently for comparison.
func canon(rows []expr.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if !v.IsNull() && (v.T == expr.TFloat || v.T == expr.TInt) {
				parts[j] = fmt.Sprintf("%.4f", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// waitRunning polls until the server reports n running queries.
func waitRunning(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Running() != n {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d running queries (at %d)", n, s.Running())
		}
		time.Sleep(time.Millisecond)
	}
}

// --- server end-to-end ---------------------------------------------------

func TestServeMatchesDirectExecution(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})

	res, err := opt.OptimizeSQL(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantStats, err := executor.Run(res.Plan.Clone(), cl)
	if err != nil {
		t.Fatal(err)
	}

	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 2})
	defer s.Close()
	resp, err := s.Do(context.Background(), joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	g, w := canon(resp.Rows), canon(wantRows)
	if len(g) != len(w) {
		t.Fatalf("rows: got %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d differs:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
	if resp.Stats.ShippedBytes != wantStats.ShippedBytes || resp.Stats.ShipCost != wantStats.ShipCost {
		t.Errorf("served stats differ from direct run:\n got %+v\nwant %+v", resp.Stats, wantStats)
	}
	if len(resp.Columns) != 3 || resp.Columns[0] != "name" {
		t.Errorf("columns: %v", resp.Columns)
	}
	c := s.Counters()
	if c.Admitted != 1 || c.Completed != 1 {
		t.Errorf("counters: %+v", c)
	}
}

func TestConcurrentServingIsolatesStats(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})

	// Sequential baselines per query.
	want := map[string]executor.RunStats{}
	for _, q := range []string{joinQuery, countQuery} {
		res, err := opt.OptimizeSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := executor.Run(res.Plan.Clone(), cl)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = *st
	}

	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 8})
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		q := joinQuery
		if i%2 == 1 {
			q = countQuery
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Do(context.Background(), q)
			if err != nil {
				errs <- err
				return
			}
			if w := want[q]; resp.Stats.ShippedRows != w.ShippedRows ||
				resp.Stats.ShippedBytes != w.ShippedBytes || resp.Stats.ShipCost != w.ShipCost {
				errs <- fmt.Errorf("concurrent stats diverge from sequential run:\n got %+v\nwant %+v", resp.Stats, w)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- admission -----------------------------------------------------------

func TestQueueFullRejection(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	cl.SetWireDelay(0.2) // make queries take real time so they stay running
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	reg := obs.NewRegistry()
	s := NewServer(opt, cl, &obs.Observer{Metrics: reg}, Options{MaxConcurrent: 1, QueueDepth: 2})
	defer s.Close()

	ctx := context.Background()
	t1, err := s.SubmitSQL(ctx, joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1) // worker took t1; queue is empty
	var tickets []*Ticket
	for i := 0; i < 2; i++ {
		tk, err := s.SubmitSQL(ctx, joinQuery)
		if err != nil {
			t.Fatalf("submission %d within depth rejected: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if _, err := s.SubmitSQL(ctx, joinQuery); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submission: got %v, want ErrQueueFull", err)
	}
	if c := s.Counters(); c.RejectedQueueFull != 1 {
		t.Errorf("RejectedQueueFull = %d, want 1", c.RejectedQueueFull)
	}
	if v := reg.Counter("cgdqp_sched_rejected_total", "reason", "queue_full").Value(); v != 1 {
		t.Errorf("rejection counter = %v, want 1", v)
	}
	for _, tk := range append([]*Ticket{t1}, tickets...) {
		if _, err := tk.Wait(ctx); err != nil {
			t.Errorf("admitted query failed: %v", err)
		}
	}
}

func TestServerClosedRejection(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1})
	s.Close()
	if _, err := s.SubmitSQL(context.Background(), joinQuery); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("got %v, want ErrServerClosed", err)
	}
}

// --- cancellation --------------------------------------------------------

func TestQueuedCancelNeverStarts(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	cl.SetWireDelay(0.2)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1, QueueDepth: 4})
	defer s.Close()

	bg := context.Background()
	t1, err := s.SubmitSQL(bg, joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)

	ctx, cancel := context.WithCancel(bg)
	t2, err := s.Submit(ctx, Request{SQL: countQuery})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := t2.Wait(bg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-while-queued query: got %v, want context.Canceled", err)
	}
	if _, err := t1.Wait(bg); err != nil {
		t.Fatalf("running query: %v", err)
	}
	c := s.Counters()
	if c.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", c.Cancelled)
	}
	// The cancelled query never started: exactly one query completed.
	if c.Completed != 1 {
		t.Errorf("Completed = %d, want 1", c.Completed)
	}
}

func TestMidExecutionCancelTearsDown(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	cl.SetWireDelay(0.5) // per-batch wire sleeps give the cancel a window
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	tk, err := s.Submit(ctx, Request{SQL: joinQuery})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	cancel()
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if c := s.Counters(); c.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", c.Cancelled)
	}
	// A fresh query still runs to completion on the same server (slots
	// were released, pipelines torn down).
	cl.SetWireDelay(0)
	if _, err := s.Do(context.Background(), countQuery); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
}

func TestQueryTimeout(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	cl.SetWireDelay(1.0)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1, QueryTimeout: 30 * time.Millisecond})
	defer s.Close()
	tk, err := s.SubmitSQL(context.Background(), joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// --- singleflight --------------------------------------------------------

func TestOptimizeSharedCoalesces(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1})
	defer s.Close()

	// Install an in-flight optimization by hand, then ask for the same
	// statement: the call must wait for the flight and share its result.
	key := s.flightKey(joinQuery)
	f := &flight{done: make(chan struct{})}
	s.flights.mu.Lock()
	s.flights.m[key] = f
	s.flights.mu.Unlock()

	type out struct {
		res    *optimizer.Result
		shared bool
		err    error
	}
	ch := make(chan out, 1)
	go func() {
		r, sh, err := s.optimizeShared(context.Background(), joinQuery)
		ch <- out{r, sh, err}
	}()
	select {
	case <-ch:
		t.Fatal("follower returned before the flight finished")
	case <-time.After(20 * time.Millisecond):
	}
	want, err := opt.OptimizeSQL(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	f.res = want
	s.flights.mu.Lock()
	delete(s.flights.m, key)
	s.flights.mu.Unlock()
	close(f.done)

	got := <-ch
	if got.err != nil || !got.shared || got.res != want {
		t.Fatalf("follower: res=%p shared=%v err=%v (want res=%p shared=true)", got.res, got.shared, got.err, want)
	}
	if c := s.Counters(); c.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1", c.Coalesced)
	}

	// A follower whose context ends while waiting leaves the flight.
	s.flights.mu.Lock()
	s.flights.m[key] = &flight{done: make(chan struct{})}
	s.flights.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.optimizeShared(ctx, joinQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: got %v, want context.Canceled", err)
	}
	s.flights.mu.Lock()
	delete(s.flights.m, key)
	s.flights.mu.Unlock()
}

func TestFlightKeyUsesDigestWhenMemoized(t *testing.T) {
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{PlanCacheSize: 8})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1})
	defer s.Close()

	k1 := s.flightKey(joinQuery)
	if !strings.HasPrefix(k1, "q\x00") {
		t.Fatalf("pre-memoization key should fall back to SQL text, got %q", k1[:2])
	}
	if _, err := opt.OptimizeSQL(joinQuery); err != nil {
		t.Fatal(err)
	}
	k2 := s.flightKey(joinQuery)
	if !strings.HasPrefix(k2, "d\x00") {
		t.Fatalf("post-memoization key should use the plan digest, got %q", k2[:2])
	}
	// Same statement with different whitespace normalizes to the same
	// digest, so both coalesce under one key.
	reformatted := strings.Join(strings.Fields(joinQuery), " ")
	if _, err := opt.OptimizeSQL(reformatted); err != nil {
		t.Fatal(err)
	}
	if k3 := s.flightKey(reformatted); k3 != k2 {
		t.Errorf("reformatted statement keys differently: %q vs %q", k3, k2)
	}
}

func TestCoalescedFollowersExecuteCorrectly(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 8})
	defer s.Close()

	// Thundering herd of one statement: whether or not each submission
	// coalesces (timing-dependent), every response must be correct and
	// stats per-query.
	res, err := opt.OptimizeSQL(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantStats, err := executor.Run(res.Plan.Clone(), cl)
	if err != nil {
		t.Fatal(err)
	}
	want := canon(wantRows)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Do(context.Background(), joinQuery)
			if err != nil {
				errs <- err
				return
			}
			got := canon(resp.Rows)
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Errorf("row %d differs: %s vs %s", i, got[i], want[i])
					return
				}
			}
			if resp.Stats.ShipCost != wantStats.ShipCost {
				errs <- fmt.Errorf("ship cost %v, want %v", resp.Stats.ShipCost, wantStats.ShipCost)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- fair queue ----------------------------------------------------------

func TestFairQueueOrdersByWeight(t *testing.T) {
	var h taskHeap
	mk := func(vft float64, seq uint64) *task {
		return &task{vft: vft, seq: seq, heapIdx: -1}
	}
	// Virtual finish times as Submit computes them at one virtual clock:
	// weight 4 → 0.25, weight 2 → 0.5, weight 1 → 1.0 (two of those,
	// FIFO-tied by seq).
	a, b, c, d := mk(1.0, 0), mk(0.25, 1), mk(0.5, 2), mk(1.0, 3)
	for _, t0 := range []*task{a, b, c, d} {
		heap.Push(&h, t0)
	}
	wantOrder := []*task{b, c, a, d}
	for i, want := range wantOrder {
		got := heap.Pop(&h).(*task)
		if got != want {
			t.Fatalf("pop %d: got vft=%v seq=%d, want vft=%v seq=%d", i, got.vft, got.seq, want.vft, want.seq)
		}
	}
}

func TestHeavyQueryJumpsQueue(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	cl.SetWireDelay(0.2)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 1, QueueDepth: 8})
	defer s.Close()

	bg := context.Background()
	first, err := s.SubmitSQL(bg, joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	// Queue a light query, then a heavy one: the heavy one (smaller
	// virtual finish time) must start first once the worker frees.
	light, err := s.Submit(bg, Request{SQL: countQuery, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := s.Submit(bg, Request{SQL: joinQuery, Weight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Wait(bg); err != nil {
		t.Fatal(err)
	}
	hr, err := heavy.Wait(bg)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := light.Wait(bg)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy query was scheduled before the light one even though it
	// arrived later: with one worker, its queue wait is strictly
	// shorter. (Both waited on `first`, so the gap is the heavy query's
	// own service time — well above timer noise with wire delay on.)
	if hr.QueueWait >= lr.QueueWait {
		t.Errorf("heavy query did not jump the queue: heavy wait %v, light wait %v", hr.QueueWait, lr.QueueWait)
	}
}

// --- slot table ----------------------------------------------------------

func TestSiteCensus(t *testing.T) {
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	res, err := opt.OptimizeSQL(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	need := siteCensus(res.Plan, 16)
	// One slot per fragment: every Ship source plus the root site.
	ships := 0
	res.Plan.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.Ship {
			ships++
		}
		return true
	})
	total := 0
	for _, n := range need {
		total += n
	}
	if total != ships+1 {
		t.Errorf("census total %d, want %d (ships %d + root)", total, ships+1, ships)
	}
	// Clamping: with cap 1 no site may need more than 1.
	for site, n := range siteCensus(res.Plan, 1) {
		if n > 1 {
			t.Errorf("site %s need %d exceeds cap 1", site, n)
		}
	}
}

func TestSlotTableGangAcquire(t *testing.T) {
	st := newSlotTable(2)
	ctx := context.Background()
	a := map[string]int{"N": 1, "E": 2}
	if err := st.acquire(ctx, a); err != nil {
		t.Fatal(err)
	}
	if st.inUse("E") != 2 || st.inUse("N") != 1 {
		t.Fatalf("usage after acquire: N=%d E=%d", st.inUse("N"), st.inUse("E"))
	}
	// A gang needing E must block; one needing only N may bypass it.
	blocked := make(chan error, 1)
	go func() { blocked <- st.acquire(ctx, map[string]int{"E": 1}) }()
	select {
	case err := <-blocked:
		t.Fatalf("over-capacity gang acquired: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := st.acquire(ctx, map[string]int{"N": 1}); err != nil {
		t.Fatalf("fitting gang should bypass the blocked one: %v", err)
	}
	st.release(a)
	if err := <-blocked; err != nil {
		t.Fatalf("blocked gang after release: %v", err)
	}
	st.release(map[string]int{"E": 1})
	st.release(map[string]int{"N": 1})
	if st.inUse("N") != 0 || st.inUse("E") != 0 {
		t.Fatalf("slots not returned: N=%d E=%d", st.inUse("N"), st.inUse("E"))
	}
}

func TestSlotTableCancelWhileWaiting(t *testing.T) {
	st := newSlotTable(1)
	if err := st.acquire(context.Background(), map[string]int{"N": 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- st.acquire(ctx, map[string]int{"N": 1}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	st.release(map[string]int{"N": 1})
	// The cancelled waiter must not have consumed the slot.
	if err := st.acquire(context.Background(), map[string]int{"N": 1}); err != nil {
		t.Fatalf("slot lost to a cancelled waiter: %v", err)
	}
	st.release(map[string]int{"N": 1})
}

func TestSlotTableAntiStarvation(t *testing.T) {
	st := newSlotTable(2)
	ctx := context.Background()
	if err := st.acquire(ctx, map[string]int{"N": 1}); err != nil {
		t.Fatal(err)
	}
	// A wide gang (needs both N slots) waits behind the held slot.
	wide := make(chan error, 1)
	go func() { wide <- st.acquire(ctx, map[string]int{"N": 2}) }()
	time.Sleep(10 * time.Millisecond)
	// Narrow gangs bypass it until its credit runs out; after that they
	// must queue behind it even though they would fit.
	for i := 0; i < bypassLimit; i++ {
		if err := st.acquire(ctx, map[string]int{"N": 1}); err != nil {
			t.Fatalf("bypass %d: %v", i, err)
		}
		st.release(map[string]int{"N": 1})
	}
	after := make(chan error, 1)
	go func() { after <- st.acquire(ctx, map[string]int{"N": 1}) }()
	select {
	case err := <-after:
		t.Fatalf("narrow gang bypassed an exhausted waiter: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Releasing the held slot lets the wide gang (now at the head with
	// exhausted credit) in first, then the narrow one after it.
	st.release(map[string]int{"N": 1})
	if err := <-wide; err != nil {
		t.Fatalf("wide gang: %v", err)
	}
	select {
	case err := <-after:
		t.Fatalf("narrow gang ran while the wide gang holds both slots: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	st.release(map[string]int{"N": 2})
	if err := <-after; err != nil {
		t.Fatalf("narrow gang after wide release: %v", err)
	}
	st.release(map[string]int{"N": 1})
}

// TestCloseDrainsQueue checks Close waits for admitted queries.
func TestCloseDrainsQueue(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 2, QueueDepth: 16})
	var tickets []*Ticket
	for i := 0; i < 6; i++ {
		tk, err := s.SubmitSQL(context.Background(), countQuery)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.Close()
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("query %d not finished after Close", i)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
}
