package sched

import (
	"bytes"
	"context"
	"testing"
	"time"

	"cgdqp/internal/expr"
	"cgdqp/internal/feedback"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// TestAdjustAIMD drives the controller's step function directly with
// synthetic p99s: a breach halves both limits, recovery creeps them
// back to the configured ceilings.
func TestAdjustAIMD(t *testing.T) {
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 8, QueueDepth: 64,
		SLOTarget:     time.Second,
		AdaptInterval: time.Hour, // controller idle; we call adjust directly
	})
	defer s.Close()

	em, eq := s.Tuning()
	if em != 8 || eq != 64 {
		t.Fatalf("initial tuning = (%d, %d), want (8, 64)", em, eq)
	}

	// Breach: p99 2s against a 1s SLO. Multiplicative decrease.
	s.adjust(2.0)
	if em, eq = s.Tuning(); em != 4 || eq != 32 {
		t.Fatalf("after breach = (%d, %d), want (4, 32)", em, eq)
	}
	// Repeated breaches floor at 1.
	for i := 0; i < 10; i++ {
		s.adjust(2.0)
	}
	if em, eq = s.Tuning(); em != 1 || eq != 1 {
		t.Fatalf("floor = (%d, %d), want (1, 1)", em, eq)
	}

	// In the dead band (0.8·SLO .. SLO) nothing moves.
	s.adjust(0.9)
	if em, eq = s.Tuning(); em != 1 || eq != 1 {
		t.Fatalf("dead band moved tuning to (%d, %d)", em, eq)
	}

	// Recovery: additive increase back to the configured ceilings, never
	// beyond them.
	for i := 0; i < 100; i++ {
		s.adjust(0.1)
	}
	if em, eq = s.Tuning(); em != 8 || eq != 64 {
		t.Fatalf("after recovery = (%d, %d), want (8, 64)", em, eq)
	}
}

// TestStaticWithoutSLO pins that SLOTarget=0 keeps the effective limits
// exactly the configured ones and starts no controller.
func TestStaticWithoutSLO(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{MaxConcurrent: 2, QueueDepth: 4})
	if em, eq := s.Tuning(); em != 2 || eq != 4 {
		t.Fatalf("tuning = (%d, %d), want configured (2, 4)", em, eq)
	}
	resp, err := s.Do(context.Background(), countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("no rows")
	}
	s.Close()
}

// TestAdaptiveServerServes runs a real adaptive server end to end: with
// a generous SLO queries still complete, the controller goroutine shuts
// down cleanly, and the e2e histogram accumulated samples.
func TestAdaptiveServerServes(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 4, QueueDepth: 16,
		SLOTarget:     time.Minute, // never breached
		AdaptInterval: 5 * time.Millisecond,
	})
	for i := 0; i < 6; i++ {
		if _, err := s.Do(context.Background(), countQuery); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.e2eHist.Snap().Count(); n < 6 {
		t.Fatalf("e2e histogram has %d samples, want >= 6", n)
	}
	if em, eq := s.Tuning(); em < 4 || eq < 16 {
		t.Fatalf("generous SLO shrank tuning to (%d, %d)", em, eq)
	}
	s.Close()
}

// TestAdmissionHonorsEffectiveQueueDepth: when the controller has
// clamped the queue bound below the configured one, Submit rejects at
// the effective depth.
func TestAdmissionHonorsEffectiveQueueDepth(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	s := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 1, QueueDepth: 8,
		SLOTarget:     time.Nanosecond, // every sample breaches
		AdaptInterval: time.Hour,
	})
	// Force the clamp as the controller would.
	for i := 0; i < 10; i++ {
		s.adjust(1)
	}
	if _, eq := s.Tuning(); eq != 1 {
		t.Fatalf("effective queue depth = %d, want 1", eq)
	}

	// Pin dispatch shut (as if a task held the only slot) so admitted
	// queries stay queued, then fill the 1-deep queue; the next
	// submission must bounce at the *effective* depth, not the
	// configured 8.
	s.mu.Lock()
	s.active = int(s.effMax.Load())
	s.mu.Unlock()
	tk1, err := s.Submit(context.Background(), Request{SQL: countQuery})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{SQL: countQuery}); err == nil {
		t.Fatal("submission beyond the effective queue depth admitted")
	}
	s.mu.Lock()
	s.active = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	if _, err := tk1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestWeightedCensus pins the feedback-weighted gang slot accounting.
func TestWeightedCensus(t *testing.T) {
	tab := schema.NewTable("t", "db-1", "L1", 50,
		schema.Column{Name: "k", Type: expr.TInt})
	mk := func(card float64) *plan.Node {
		scan := plan.NewScan(tab, "", -1)
		scan.Kind = plan.TableScan
		scan.Loc = "L1"
		scan.Card = card
		root := &plan.Node{Kind: plan.Ship, Children: []*plan.Node{scan},
			Cols: scan.Cols, FromLoc: "L1", Loc: "L2", Card: card}
		return root
	}

	// Without feedback: one slot per fragment regardless of size.
	small, big := mk(50), mk(5_000_000)
	plain := siteCensus(big, 8)
	if plain["L1"] != 1 || plain["L2"] != 1 {
		t.Fatalf("plain census = %v", plain)
	}

	fb := feedback.NewStore(feedback.Options{})
	wSmall := siteCensusWeighted(small, 8, fb)
	if wSmall["L1"] != 1 || wSmall["L2"] != 1 {
		t.Fatalf("small weighted census = %v, want 1 per site", wSmall)
	}
	// 5M rows: capped at 4 slots for the producing fragment.
	wBig := siteCensusWeighted(big, 8, fb)
	if wBig["L1"] != 4 {
		t.Fatalf("big weighted census = %v, want 4 at L1", wBig)
	}
	// Per-site clamp still applies with a small site bound.
	if c := siteCensusWeighted(big, 2, fb); c["L1"] != 2 {
		t.Fatalf("clamped census = %v, want 2 at L1", c)
	}

	// An activated hint overrides the stale estimate: the plan says 50
	// rows but observed actuals say 5M, so the weight follows the actual.
	liar := mk(50)
	digest := liar.Children[0].SubplanDigest()
	for i := 0; i < 2; i++ {
		fb.ObserveOperator(digest, 50, 5_000_000)
	}
	if _, ok := fb.CardHint(digest); !ok {
		t.Fatal("hint did not activate")
	}
	wLiar := siteCensusWeighted(liar, 8, fb)
	if wLiar["L1"] != 4 {
		t.Fatalf("hinted census = %v, want 4 at L1", wLiar)
	}
}

// TestServerFeedbackTelemetry runs a server with a feedback store and a
// zero-threshold slow log: executions must feed operator actuals, e2e
// samples, and emit parseable slow-log lines.
func TestServerFeedbackTelemetry(t *testing.T) {
	defer leakCheck(t)()
	cat, cl := carco(t)
	opt := carcoOptimizer(t, cat, cl, optimizer.Options{})
	fb := feedback.NewStore(feedback.Options{})
	var buf bytes.Buffer // writes serialized under the log's own mutex
	slow := feedback.NewSlowQueryLog(&buf, 0)
	s := NewServer(opt, cl, nil, Options{
		MaxConcurrent: 2, Feedback: fb, SlowLog: slow,
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Do(context.Background(), countQuery); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	sum := fb.Summary()
	if sum.Tracked == 0 {
		t.Fatal("no operator actuals recorded")
	}
	if sum.Queries != 3 {
		t.Fatalf("e2e samples = %d, want 3", sum.Queries)
	}
	if slow.Count() != 3 {
		t.Fatalf("slow-log lines = %d, want 3", slow.Count())
	}
}
