package sched

import (
	"context"
	"sync"

	"cgdqp/internal/optimizer"
)

// flightGroup coalesces identical in-flight optimizations: while one
// query's OptimizeSQL runs, identical submissions wait for its result
// instead of repeating the work (shared-work batching). Keys prefer the
// normalized-plan digest — the optimizer's cache key, which identifies
// queries that normalize identically even when the SQL text differs —
// and fall back to the SQL text the first time a statement is seen.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	res  *optimizer.Result
	err  error
}

// flightKey keys a statement for coalescing. The digest is only known
// after a first optimization memoized it; until then the SQL text is
// the key (distinct prefixes keep the namespaces apart).
func (s *Server) flightKey(sql string) string {
	if d, ok := s.opt.CachedDigest(sql); ok {
		return "d\x00" + d
	}
	return "q\x00" + sql
}

// optimizeShared runs OptimizeSQL once per identical in-flight
// statement; followers block on the leader's flight and report
// shared=true. Followers must Clone() the plan before executing it —
// the leader executes the original. A follower whose ctx ends while
// waiting leaves the flight (the leader is never cancelled on a
// follower's behalf).
func (s *Server) optimizeShared(ctx context.Context, sql string) (res *optimizer.Result, shared bool, err error) {
	key := s.flightKey(sql)
	s.flights.mu.Lock()
	if f, ok := s.flights.m[key]; ok {
		s.flights.mu.Unlock()
		select {
		case <-f.done:
			s.nCoalesced.Add(1)
			if m := s.obsv.Reg(); m != nil {
				m.Counter("cgdqp_sched_coalesced_total").Inc()
			}
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights.m[key] = f
	s.flights.mu.Unlock()

	f.res, f.err = s.opt.OptimizeSQL(sql)
	s.flights.mu.Lock()
	delete(s.flights.m, key)
	s.flights.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
