package tpch

import "sort"

// Queries are the six TPC-H queries the evaluation uses (Section 7.1),
// adapted to the engine's SQL subset:
//
//   - Q3 and Q10 are low complexity (2 and 3 joins);
//   - Q5 and Q9 are medium (5 joins each);
//   - Q2 and Q8 are high (Q2's correlated MIN subquery is decorrelated
//     into a derived table; Q8 and Q9 express their year extraction and
//     Q8's CASE market share through derived tables).
var Queries = map[string]string{
	"Q2": `
SELECT s.acctbal, s.name, n.name AS nation, p.partkey, p.mfgr
FROM part p, supplier s, partsupp ps, nation n, region r,
     (SELECT ps2.partkey AS pk, MIN(ps2.supplycost) AS mincost
      FROM partsupp ps2, supplier s2, nation n2, region r2
      WHERE s2.suppkey = ps2.suppkey
        AND s2.nationkey = n2.nationkey
        AND n2.regionkey = r2.regionkey
        AND r2.name = 'EUROPE'
      GROUP BY ps2.partkey) m
WHERE p.partkey = ps.partkey
  AND s.suppkey = ps.suppkey
  AND p.size = 15
  AND p.type LIKE '%BRASS'
  AND s.nationkey = n.nationkey
  AND n.regionkey = r.regionkey
  AND r.name = 'EUROPE'
  AND ps.supplycost = m.mincost
  AND p.partkey = m.pk
ORDER BY s.acctbal DESC, n.name, s.name, p.partkey
LIMIT 100`,

	"Q3": `
SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount)) AS revenue,
       o.orderdate, o.shippriority
FROM customer c, orders o, lineitem l
WHERE c.mktsegment = 'BUILDING'
  AND c.custkey = o.custkey
  AND l.orderkey = o.orderkey
  AND o.orderdate < DATE '1995-03-15'
  AND l.shipdate > DATE '1995-03-15'
GROUP BY l.orderkey, o.orderdate, o.shippriority
ORDER BY revenue DESC
LIMIT 10`,

	"Q5": `
SELECT n.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue
FROM customer c, orders o, lineitem l, supplier s, nation n, region r
WHERE c.custkey = o.custkey
  AND l.orderkey = o.orderkey
  AND l.suppkey = s.suppkey
  AND c.nationkey = s.nationkey
  AND s.nationkey = n.nationkey
  AND n.regionkey = r.regionkey
  AND r.name = 'ASIA'
  AND o.orderdate >= DATE '1994-01-01'
  AND o.orderdate < DATE '1995-01-01'
GROUP BY n.name
ORDER BY revenue DESC`,

	"Q8": `
SELECT x.o_year,
       SUM(CASE WHEN x.nation = 'BRAZIL' THEN x.volume ELSE 0 END) / SUM(x.volume) AS mkt_share
FROM (SELECT YEAR(o.orderdate) AS o_year,
             l.extendedprice * (1 - l.discount) AS volume,
             n2.name AS nation
      FROM part p, supplier s, lineitem l, orders o, customer c,
           nation n1, nation n2, region r
      WHERE p.partkey = l.partkey
        AND s.suppkey = l.suppkey
        AND l.orderkey = o.orderkey
        AND o.custkey = c.custkey
        AND c.nationkey = n1.nationkey
        AND n1.regionkey = r.regionkey
        AND r.name = 'AMERICA'
        AND s.nationkey = n2.nationkey
        AND o.orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND p.type = 'ECONOMY ANODIZED STEEL') x
GROUP BY x.o_year
ORDER BY x.o_year`,

	"Q9": `
SELECT x.nation, x.o_year, SUM(x.amount) AS profit
FROM (SELECT n.name AS nation,
             YEAR(o.orderdate) AS o_year,
             l.extendedprice * (1 - l.discount) - ps.supplycost * l.quantity AS amount
      FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
      WHERE s.suppkey = l.suppkey
        AND ps.suppkey = l.suppkey
        AND ps.partkey = l.partkey
        AND p.partkey = l.partkey
        AND o.orderkey = l.orderkey
        AND s.nationkey = n.nationkey
        AND p.name LIKE '%green%') x
GROUP BY x.nation, x.o_year
ORDER BY x.nation, x.o_year DESC`,

	"Q10": `
SELECT c.custkey, c.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue,
       c.acctbal, n.name AS nation
FROM customer c, orders o, lineitem l, nation n
WHERE c.custkey = o.custkey
  AND l.orderkey = o.orderkey
  AND o.orderdate >= DATE '1993-10-01'
  AND o.orderdate < DATE '1994-01-01'
  AND l.returnflag = 'R'
  AND c.nationkey = n.nationkey
GROUP BY c.custkey, c.name, c.acctbal, n.name
ORDER BY revenue DESC
LIMIT 20`,
}

// QueryNames returns the query identifiers in evaluation order.
func QueryNames() []string {
	out := make([]string, 0, len(Queries))
	for k := range Queries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric ordering: Q2, Q3, Q5, Q8, Q9, Q10.
		return queryRank(out[i]) < queryRank(out[j])
	})
	return out
}

func queryRank(name string) int {
	n := 0
	for _, c := range name[1:] {
		n = n*10 + int(c-'0')
	}
	return n
}
