// Package tpch provides the TPC-H substrate of the evaluation
// (Section 7.1): the eight-table schema distributed over five locations
// as in Table 2, a deterministic PK–FK-consistent data generator, and the
// six benchmark queries (Q2, Q3, Q5, Q8, Q9, Q10) adapted to the
// engine's SQL subset. Column names are unprefixed (custkey, not
// c_custkey), matching the paper's policy expressions in Table 3.
package tpch

import (
	"math"

	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

// Table 2: TPC-H table distribution among five locations.
//
//	L1 db-1: Customer, Orders
//	L2 db-2: Supplier, Partsupp
//	L3 db-3: Part
//	L4 db-4: Lineitem
//	L5 db-5: Nation, Region
var placement = map[string]struct{ DB, Loc string }{
	"customer": {"db-1", "L1"},
	"orders":   {"db-1", "L1"},
	"supplier": {"db-2", "L2"},
	"partsupp": {"db-2", "L2"},
	"part":     {"db-3", "L3"},
	"lineitem": {"db-4", "L4"},
	"nation":   {"db-5", "L5"},
	"region":   {"db-5", "L5"},
}

// Locations returns L1..L5.
func Locations() []string { return []string{"L1", "L2", "L3", "L4", "L5"} }

// DefaultPlacement returns the Table 2 location of a table.
func DefaultPlacement(table string) (db, loc string) {
	p := placement[table]
	return p.DB, p.Loc
}

// Rows per table at scale factor 1 (dbgen conventions; lineitem is ~4×
// orders on average).
const (
	sfSupplier = 10000
	sfPart     = 200000
	sfPartsupp = 800000
	sfCustomer = 150000
	sfOrders   = 1500000
	sfLineitem = 6000000
)

// scaled returns max(1, base × sf).
func scaled(base int64, sf float64) int64 {
	n := int64(math.Round(float64(base) * sf))
	if n < 1 {
		return 1
	}
	return n
}

// Sizes reports the row counts at a scale factor.
type Sizes struct {
	Region, Nation, Supplier, Part, Partsupp, Customer, Orders, Lineitem int64
}

// SizesFor computes the table sizes at the given scale factor.
func SizesFor(sf float64) Sizes {
	return Sizes{
		Region:   5,
		Nation:   25,
		Supplier: scaled(sfSupplier, sf),
		Part:     scaled(sfPart, sf),
		Partsupp: scaled(sfPartsupp, sf),
		Customer: scaled(sfCustomer, sf),
		Orders:   scaled(sfOrders, sf),
		Lineitem: scaled(sfLineitem, sf),
	}
}

// NewCatalog builds the geo-distributed TPC-H catalog at a scale factor,
// including table statistics (the optimizer needs only the catalog, not
// generated data — "scale factor does not impact the query
// optimization", Section 7.1).
func NewCatalog(sf float64) *schema.Catalog {
	sz := SizesFor(sf)
	cat := schema.NewCatalog()
	// Register locations in order so experiments are deterministic.
	for _, l := range Locations() {
		cat.AddLocation(l)
	}

	region := schema.NewTable("region", "db-5", "L5", sz.Region,
		schema.Column{Name: "regionkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString, AvgWidth: 12},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 60},
	)
	region.SetColStats("regionkey", schema.ColStats{Distinct: sz.Region, Min: expr.NewInt(0), Max: expr.NewInt(sz.Region - 1)})
	region.SetColStats("name", schema.ColStats{Distinct: sz.Region})

	nation := schema.NewTable("nation", "db-5", "L5", sz.Nation,
		schema.Column{Name: "nationkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString, AvgWidth: 14},
		schema.Column{Name: "regionkey", Type: expr.TInt},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 70},
	)
	nation.SetColStats("nationkey", schema.ColStats{Distinct: sz.Nation, Min: expr.NewInt(0), Max: expr.NewInt(sz.Nation - 1)})
	nation.SetColStats("name", schema.ColStats{Distinct: sz.Nation})
	nation.SetColStats("regionkey", schema.ColStats{Distinct: sz.Region})

	supplier := schema.NewTable("supplier", "db-2", "L2", sz.Supplier,
		schema.Column{Name: "suppkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString, AvgWidth: 18},
		schema.Column{Name: "address", Type: expr.TString, AvgWidth: 25},
		schema.Column{Name: "nationkey", Type: expr.TInt},
		schema.Column{Name: "phone", Type: expr.TString, AvgWidth: 15},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 60},
	)
	supplier.SetColStats("suppkey", schema.ColStats{Distinct: sz.Supplier, Min: expr.NewInt(1), Max: expr.NewInt(sz.Supplier)})
	supplier.SetColStats("nationkey", schema.ColStats{Distinct: sz.Nation})

	part := schema.NewTable("part", "db-3", "L3", sz.Part,
		schema.Column{Name: "partkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString, AvgWidth: 33},
		schema.Column{Name: "mfgr", Type: expr.TString, AvgWidth: 14},
		schema.Column{Name: "brand", Type: expr.TString, AvgWidth: 10},
		schema.Column{Name: "type", Type: expr.TString, AvgWidth: 21},
		schema.Column{Name: "size", Type: expr.TInt},
		schema.Column{Name: "container", Type: expr.TString, AvgWidth: 10},
		schema.Column{Name: "retailprice", Type: expr.TFloat},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 15},
	)
	part.SetColStats("partkey", schema.ColStats{Distinct: sz.Part, Min: expr.NewInt(1), Max: expr.NewInt(sz.Part)})
	part.SetColStats("size", schema.ColStats{Distinct: 50, Min: expr.NewInt(1), Max: expr.NewInt(50)})
	part.SetColStats("type", schema.ColStats{Distinct: 150})
	part.SetColStats("brand", schema.ColStats{Distinct: 25})
	part.SetColStats("mfgr", schema.ColStats{Distinct: 5})

	partsupp := schema.NewTable("partsupp", "db-2", "L2", sz.Partsupp,
		schema.Column{Name: "partkey", Type: expr.TInt},
		schema.Column{Name: "suppkey", Type: expr.TInt},
		schema.Column{Name: "availqty", Type: expr.TInt},
		schema.Column{Name: "supplycost", Type: expr.TFloat},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 80},
	)
	partsupp.SetColStats("partkey", schema.ColStats{Distinct: sz.Part})
	partsupp.SetColStats("suppkey", schema.ColStats{Distinct: sz.Supplier})

	customer := schema.NewTable("customer", "db-1", "L1", sz.Customer,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString, AvgWidth: 18},
		schema.Column{Name: "address", Type: expr.TString, AvgWidth: 25},
		schema.Column{Name: "nationkey", Type: expr.TInt},
		schema.Column{Name: "phone", Type: expr.TString, AvgWidth: 15},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "mktsegment", Type: expr.TString, AvgWidth: 10},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 70},
	)
	customer.SetColStats("custkey", schema.ColStats{Distinct: sz.Customer, Min: expr.NewInt(1), Max: expr.NewInt(sz.Customer)})
	customer.SetColStats("nationkey", schema.ColStats{Distinct: sz.Nation})
	customer.SetColStats("mktsegment", schema.ColStats{Distinct: 5})

	orders := schema.NewTable("orders", "db-1", "L1", sz.Orders,
		schema.Column{Name: "orderkey", Type: expr.TInt},
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "orderstatus", Type: expr.TString, AvgWidth: 1},
		schema.Column{Name: "totalprice", Type: expr.TFloat},
		schema.Column{Name: "orderdate", Type: expr.TDate},
		schema.Column{Name: "orderpriority", Type: expr.TString, AvgWidth: 15},
		schema.Column{Name: "clerk", Type: expr.TString, AvgWidth: 15},
		schema.Column{Name: "shippriority", Type: expr.TInt},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 45},
	)
	orders.SetColStats("orderkey", schema.ColStats{Distinct: sz.Orders, Min: expr.NewInt(1), Max: expr.NewInt(sz.Orders)})
	orders.SetColStats("custkey", schema.ColStats{Distinct: sz.Customer})
	orders.SetColStats("orderdate", schema.ColStats{Distinct: 2400, Min: expr.MustDate("1992-01-01"), Max: expr.MustDate("1998-08-02")})
	orders.SetColStats("orderstatus", schema.ColStats{Distinct: 3})

	lineitem := schema.NewTable("lineitem", "db-4", "L4", sz.Lineitem,
		schema.Column{Name: "orderkey", Type: expr.TInt},
		schema.Column{Name: "partkey", Type: expr.TInt},
		schema.Column{Name: "suppkey", Type: expr.TInt},
		schema.Column{Name: "linenumber", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
		schema.Column{Name: "extendedprice", Type: expr.TFloat},
		schema.Column{Name: "discount", Type: expr.TFloat},
		schema.Column{Name: "tax", Type: expr.TFloat},
		schema.Column{Name: "returnflag", Type: expr.TString, AvgWidth: 1},
		schema.Column{Name: "linestatus", Type: expr.TString, AvgWidth: 1},
		schema.Column{Name: "shipdate", Type: expr.TDate},
		schema.Column{Name: "commitdate", Type: expr.TDate},
		schema.Column{Name: "receiptdate", Type: expr.TDate},
		schema.Column{Name: "shipinstruct", Type: expr.TString, AvgWidth: 25},
		schema.Column{Name: "shipmode", Type: expr.TString, AvgWidth: 10},
		schema.Column{Name: "comment", Type: expr.TString, AvgWidth: 27},
	)
	lineitem.SetColStats("orderkey", schema.ColStats{Distinct: sz.Orders})
	lineitem.SetColStats("partkey", schema.ColStats{Distinct: sz.Part})
	lineitem.SetColStats("suppkey", schema.ColStats{Distinct: sz.Supplier})
	lineitem.SetColStats("shipdate", schema.ColStats{Distinct: 2520, Min: expr.MustDate("1992-01-02"), Max: expr.MustDate("1998-12-01")})
	lineitem.SetColStats("returnflag", schema.ColStats{Distinct: 3})
	lineitem.SetColStats("quantity", schema.ColStats{Distinct: 50, Min: expr.NewInt(1), Max: expr.NewInt(50)})

	// The generator emits most tables in primary-key order (as dbgen
	// does); declare it so scans provide the ordering to merge joins.
	// Lineitem is generated in random order and stays undeclared.
	region.SortedBy = []string{"regionkey"}
	nation.SortedBy = []string{"nationkey"}
	supplier.SortedBy = []string{"suppkey"}
	part.SortedBy = []string{"partkey"}
	partsupp.SortedBy = []string{"partkey"}
	customer.SortedBy = []string{"custkey"}
	orders.SortedBy = []string{"orderkey"}
	for _, t := range []*schema.Table{region, nation, supplier, part, partsupp, customer, orders, lineitem} {
		cat.MustAddTable(t)
	}
	return cat
}

// NewCatalogFragmented builds the Section 7.5 variant: Customer and
// Orders are horizontally fragmented across the first nLocs locations
// (evenly), everything else as in Table 2.
func NewCatalogFragmented(sf float64, nLocs int) *schema.Catalog {
	cat := NewCatalog(sf)
	if nLocs <= 1 {
		return cat
	}
	if nLocs > 5 {
		nLocs = 5
	}
	out := schema.NewCatalog()
	for _, l := range Locations() {
		out.AddLocation(l)
	}
	dbs := []string{"db-1", "db-2", "db-3", "db-4", "db-5"}
	for _, t := range cat.Tables() {
		if t.Name != "customer" && t.Name != "orders" {
			out.MustAddTable(t)
			continue
		}
		total := t.RowCount()
		frags := make([]schema.Fragment, nLocs)
		for i := 0; i < nLocs; i++ {
			rows := total / int64(nLocs)
			if i == nLocs-1 {
				rows = total - rows*int64(nLocs-1)
			}
			frags[i] = schema.Fragment{DB: dbs[i], Location: Locations()[i], RowCount: rows}
		}
		ft := &schema.Table{Name: t.Name, Columns: t.Columns, Fragments: frags, ColStats: t.ColStats}
		out.MustAddTable(ft)
	}
	return out
}
