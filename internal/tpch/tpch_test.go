package tpch

import (
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/sqlparse"
)

func TestCatalogShape(t *testing.T) {
	cat := NewCatalog(0.01)
	if got := cat.Locations(); len(got) != 5 || got[0] != "L1" {
		t.Fatalf("locations: %v", got)
	}
	if len(cat.Tables()) != 8 {
		t.Fatalf("tables: %d", len(cat.Tables()))
	}
	// Table 2 placement.
	for name, want := range map[string][2]string{
		"customer": {"db-1", "L1"}, "orders": {"db-1", "L1"},
		"supplier": {"db-2", "L2"}, "partsupp": {"db-2", "L2"},
		"part": {"db-3", "L3"}, "lineitem": {"db-4", "L4"},
		"nation": {"db-5", "L5"}, "region": {"db-5", "L5"},
	} {
		tab, ok := cat.Table(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if tab.DB() != want[0] || tab.Location() != want[1] {
			t.Errorf("%s placed at %s/%s, want %s/%s", name, tab.DB(), tab.Location(), want[0], want[1])
		}
	}
	// Sizes scale.
	li, _ := cat.Table("lineitem")
	if li.RowCount() != 60000 {
		t.Errorf("lineitem rows at SF 0.01: %d", li.RowCount())
	}
	reg, _ := cat.Table("region")
	if reg.RowCount() != 5 {
		t.Errorf("region rows: %d", reg.RowCount())
	}
	if db, loc := DefaultPlacement("lineitem"); db != "db-4" || loc != "L4" {
		t.Errorf("DefaultPlacement: %s %s", db, loc)
	}
}

func TestFragmentedCatalog(t *testing.T) {
	cat := NewCatalogFragmented(0.01, 3)
	c, _ := cat.Table("customer")
	if len(c.Fragments) != 3 {
		t.Fatalf("customer fragments: %d", len(c.Fragments))
	}
	if c.RowCount() != 1500 {
		t.Errorf("fragment row sum: %d", c.RowCount())
	}
	o, _ := cat.Table("orders")
	if len(o.Fragments) != 3 {
		t.Errorf("orders fragments: %d", len(o.Fragments))
	}
	li, _ := cat.Table("lineitem")
	if li.Fragmented() {
		t.Error("lineitem must stay unfragmented")
	}
	// nLocs <= 1 returns the plain catalog.
	if c2, _ := NewCatalogFragmented(0.01, 1).Table("customer"); c2.Fragmented() {
		t.Error("nLocs=1 should not fragment")
	}
}

func TestGenerateDeterministicAndConsistent(t *testing.T) {
	cat := NewCatalog(0.001)
	cl := cluster.New(cat, network.UniformWAN(10, 1e-6))
	if err := Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	// Row counts match the catalog.
	for _, name := range []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
		tab, _ := cat.Table(name)
		rows, err := cl.AllRows(tab)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(rows)) != tab.RowCount() {
			t.Errorf("%s: %d rows, catalog says %d", name, len(rows), tab.RowCount())
		}
	}
	// FK consistency: every lineitem orderkey exists in orders.
	ordersTab, _ := cat.Table("orders")
	orderRows, _ := cl.AllRows(ordersTab)
	orderKeys := map[int64]int64{} // orderkey -> orderdate
	for _, r := range orderRows {
		orderKeys[r[0].Int()] = r[4].Int()
	}
	liTab, _ := cat.Table("lineitem")
	liRows, _ := cl.AllRows(liTab)
	for _, r := range liRows {
		od, ok := orderKeys[r[0].Int()]
		if !ok {
			t.Fatalf("lineitem references missing order %d", r[0].Int())
		}
		if ship := r[10].Int(); ship <= od {
			t.Fatalf("shipdate %d not after orderdate %d", ship, od)
		}
	}
	// Determinism: regenerate and compare a sample row.
	cl2 := cluster.New(cat, network.UniformWAN(10, 1e-6))
	if err := Generate(cat, cl2); err != nil {
		t.Fatal(err)
	}
	li2, _ := cl2.AllRows(liTab)
	for i := 0; i < len(liRows); i += 17 {
		for j := range liRows[i] {
			if !liRows[i][j].Equal(li2[i][j]) {
				t.Fatalf("generation not deterministic at row %d col %d", i, j)
			}
		}
	}
}

func TestQueriesBindAndOptimize(t *testing.T) {
	cat := NewCatalog(0.01)
	net := network.FiveRegionWAN(cat.Locations())
	pc := policy.NewCatalog()
	// Unrestricted policies: ship * from t to * for every table.
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	for _, name := range QueryNames() {
		sql := Queries[name]
		logical, err := sqlparse.ParseAndBind(sql, cat)
		if err != nil {
			t.Fatalf("%s bind: %v", name, err)
		}
		opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
		res, err := opt.Optimize(logical)
		if err != nil {
			t.Fatalf("%s optimize: %v", name, err)
		}
		if v := opt.Check(res.Plan); len(v) != 0 {
			t.Errorf("%s: violations under unrestricted policies: %v", name, v)
		}
	}
}

func TestQueryNamesOrder(t *testing.T) {
	names := QueryNames()
	want := []string{"Q2", "Q3", "Q5", "Q8", "Q9", "Q10"}
	if len(names) != len(want) {
		t.Fatalf("names: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("order: %v", names)
			break
		}
	}
}

// TestQ3ExecutesCorrectly cross-checks the optimized distributed
// execution of Q3 against a single-site reference computation.
func TestQ3ExecutesCorrectly(t *testing.T) {
	cat := NewCatalog(0.001)
	cl := cluster.New(cat, network.FiveRegionWAN(cat.Locations()))
	if err := Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	opt := optimizer.New(cat, pc, cl.Net, optimizer.Options{Compliant: true})
	res, err := opt.OptimizeSQL(Queries["Q3"])
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := executor.Run(res.Plan, cl)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, res.Plan.Format(true))
	}
	if len(rows) == 0 {
		t.Fatal("Q3 returned no rows; generator selectivities too harsh?")
	}
	if len(rows) > 10 {
		t.Errorf("LIMIT 10 violated: %d rows", len(rows))
	}
	// Revenue must be descending.
	for i := 1; i < len(rows); i++ {
		if rows[i][1].Float() > rows[i-1][1].Float() {
			t.Errorf("revenue not descending at %d", i)
		}
	}
	if stats.ShipCost <= 0 {
		t.Error("geo-distributed Q3 must ship data")
	}
	// Reference: run the same logical plan with every operator placed via
	// the traditional path, results must agree.
	topt := optimizer.New(cat, pc, cl.Net, optimizer.Options{Compliant: false})
	tres, err := topt.OptimizeSQL(Queries["Q3"])
	if err != nil {
		t.Fatal(err)
	}
	trows, _, err := executor.Run(tres.Plan, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(trows) != len(rows) {
		t.Fatalf("row count mismatch: %d vs %d", len(rows), len(trows))
	}
	for i := range rows {
		// Compare the sort key column (revenue) — full row ordering may
		// differ among ties.
		if d := rows[i][1].Float() - trows[i][1].Float(); d > 1e-6 || d < -1e-6 {
			t.Errorf("row %d revenue: %v vs %v", i, rows[i][1], trows[i][1])
		}
	}
	_ = plan.Ship
	_ = expr.TInt
}
