package tpch

import (
	"fmt"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

// rng is a deterministic splitmix64 generator; the data generator must
// produce identical databases across runs and platforms.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// rangeInt returns a value in [lo, hi].
func (r *rng) rangeInt(lo, hi int64) int64 { return lo + r.intn(hi-lo+1) }

// float returns a value in [lo, hi).
func (r *rng) float(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(r.next()>>11)/float64(1<<53)
}

func (r *rng) pick(list []string) string { return list[r.intn(int64(len(list)))] }

// Value domains (subsets of the dbgen vocabularies; enough to make the
// benchmark predicates selective in the same way).
var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	typeSyl1     = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2     = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3     = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers   = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
	shipmodes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	flags        = []string{"R", "A", "N"}
	statuses     = []string{"O", "F", "P"}
	partAdjs     = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "hunter", "indian", "ivory", "khaki"}
)

var (
	dateLo = expr.MustDate("1992-01-01").Int()
	dateHi = expr.MustDate("1998-08-02").Int()
)

// Generate populates the cluster with deterministic TPC-H-shaped data at
// the catalog's recorded sizes. Fragmented tables are split evenly in key
// order across their fragments.
func Generate(cat *schema.Catalog, cl *cluster.Cluster) error {
	sz := Sizes{}
	get := func(name string) *schema.Table {
		t, _ := cat.Table(name)
		return t
	}
	region, nation := get("region"), get("nation")
	supplier, part := get("supplier"), get("part")
	partsupp, customer := get("partsupp"), get("customer")
	orders, lineitem := get("orders"), get("lineitem")
	if region == nil || nation == nil || supplier == nil || part == nil ||
		partsupp == nil || customer == nil || orders == nil || lineitem == nil {
		return fmt.Errorf("tpch: catalog is missing TPC-H tables")
	}
	sz.Region, sz.Nation = region.RowCount(), nation.RowCount()
	sz.Supplier, sz.Part = supplier.RowCount(), part.RowCount()
	sz.Partsupp, sz.Customer = partsupp.RowCount(), customer.RowCount()
	sz.Orders, sz.Lineitem = orders.RowCount(), lineitem.RowCount()

	// region
	var rows []expr.Row
	for i := int64(0); i < sz.Region; i++ {
		rows = append(rows, expr.Row{
			expr.NewInt(i),
			expr.NewString(regionNames[i%5]),
			expr.NewString("region comment"),
		})
	}
	if err := loadSplit(cl, region, rows); err != nil {
		return err
	}

	// nation
	rows = nil
	for i := int64(0); i < sz.Nation; i++ {
		rows = append(rows, expr.Row{
			expr.NewInt(i),
			expr.NewString(nationNames[i%25]),
			expr.NewInt(nationRegion[i%25]),
			expr.NewString("nation comment"),
		})
	}
	if err := loadSplit(cl, nation, rows); err != nil {
		return err
	}

	// supplier
	r := newRng(42)
	rows = nil
	for i := int64(1); i <= sz.Supplier; i++ {
		rows = append(rows, expr.Row{
			expr.NewInt(i),
			expr.NewString(fmt.Sprintf("Supplier#%09d", i)),
			expr.NewString(fmt.Sprintf("addr-%d", r.intn(99999))),
			expr.NewInt(r.intn(sz.Nation)),
			expr.NewString(fmt.Sprintf("27-%03d-%04d", r.intn(999), r.intn(9999))),
			expr.NewFloat(r.float(-999, 9999)),
			expr.NewString("supplier comment"),
		})
	}
	if err := loadSplit(cl, supplier, rows); err != nil {
		return err
	}

	// part
	r = newRng(43)
	rows = nil
	for i := int64(1); i <= sz.Part; i++ {
		name := r.pick(partAdjs) + " " + r.pick(partAdjs) + " " + r.pick(partAdjs)
		ptype := r.pick(typeSyl1) + " " + r.pick(typeSyl2) + " " + r.pick(typeSyl3)
		rows = append(rows, expr.Row{
			expr.NewInt(i),
			expr.NewString(name),
			expr.NewString(fmt.Sprintf("Manufacturer#%d", 1+r.intn(5))),
			expr.NewString(fmt.Sprintf("Brand#%d%d", 1+r.intn(5), 1+r.intn(5))),
			expr.NewString(ptype),
			expr.NewInt(r.rangeInt(1, 50)),
			expr.NewString(r.pick(containers)),
			expr.NewFloat(900 + float64(i%1000)),
			expr.NewString("part comment"),
		})
	}
	if err := loadSplit(cl, part, rows); err != nil {
		return err
	}

	// partsupp: each part has suppliers round-robin; PK (partkey, suppkey).
	r = newRng(44)
	rows = nil
	perPart := sz.Partsupp / maxI64(sz.Part, 1)
	if perPart < 1 {
		perPart = 1
	}
	for p := int64(1); p <= sz.Part && int64(len(rows)) < sz.Partsupp; p++ {
		for j := int64(0); j < perPart && int64(len(rows)) < sz.Partsupp; j++ {
			sk := 1 + (p+j*7)%sz.Supplier
			rows = append(rows, expr.Row{
				expr.NewInt(p),
				expr.NewInt(sk),
				expr.NewInt(r.rangeInt(1, 9999)),
				expr.NewFloat(r.float(1, 1000)),
				expr.NewString("partsupp comment"),
			})
		}
	}
	if err := loadSplit(cl, partsupp, rows); err != nil {
		return err
	}

	// customer
	r = newRng(45)
	rows = nil
	for i := int64(1); i <= sz.Customer; i++ {
		rows = append(rows, expr.Row{
			expr.NewInt(i),
			expr.NewString(fmt.Sprintf("Customer#%09d", i)),
			expr.NewString(fmt.Sprintf("addr-%d", r.intn(99999))),
			expr.NewInt(r.intn(sz.Nation)),
			expr.NewString(fmt.Sprintf("13-%03d-%04d", r.intn(999), r.intn(9999))),
			expr.NewFloat(r.float(-999, 9999)),
			expr.NewString(r.pick(segments)),
			expr.NewString("customer comment"),
		})
	}
	if err := loadSplit(cl, customer, rows); err != nil {
		return err
	}

	// orders
	r = newRng(46)
	rows = nil
	orderDates := make([]int64, sz.Orders+1)
	for i := int64(1); i <= sz.Orders; i++ {
		d := r.rangeInt(dateLo, dateHi)
		orderDates[i] = d
		rows = append(rows, expr.Row{
			expr.NewInt(i),
			expr.NewInt(1 + r.intn(sz.Customer)),
			expr.NewString(r.pick(statuses)),
			expr.NewFloat(r.float(1000, 450000)),
			expr.NewDate(d),
			expr.NewString(r.pick(priorities)),
			expr.NewString(fmt.Sprintf("Clerk#%09d", 1+r.intn(1000))),
			expr.NewInt(0),
			expr.NewString("order comment"),
		})
	}
	if err := loadSplit(cl, orders, rows); err != nil {
		return err
	}

	// lineitem: FK to orders/part/supplier, shipdate after orderdate.
	r = newRng(47)
	rows = nil
	for i := int64(0); i < sz.Lineitem; i++ {
		ok := 1 + r.intn(sz.Orders)
		qty := r.rangeInt(1, 50)
		price := float64(qty) * r.float(900, 1100)
		ship := orderDates[ok] + r.rangeInt(1, 121)
		rows = append(rows, expr.Row{
			expr.NewInt(ok),
			expr.NewInt(1 + r.intn(sz.Part)),
			expr.NewInt(1 + r.intn(sz.Supplier)),
			expr.NewInt(1 + i%7),
			expr.NewInt(qty),
			expr.NewFloat(price),
			expr.NewFloat(float64(r.intn(11)) / 100),
			expr.NewFloat(float64(r.intn(9)) / 100),
			expr.NewString(r.pick(flags)),
			expr.NewString(r.pick([]string{"O", "F"})),
			expr.NewDate(ship),
			expr.NewDate(ship + r.rangeInt(-30, 30)),
			expr.NewDate(ship + r.rangeInt(1, 30)),
			expr.NewString(r.pick(instructs)),
			expr.NewString(r.pick(shipmodes)),
			expr.NewString("lineitem comment"),
		})
	}
	return loadSplit(cl, lineitem, rows)
}

// loadSplit distributes rows across a table's fragments (evenly, in
// order).
func loadSplit(cl *cluster.Cluster, t *schema.Table, rows []expr.Row) error {
	n := len(t.Fragments)
	if n <= 1 {
		return cl.LoadFragment(t, 0, rows)
	}
	per := (len(rows) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		if err := cl.LoadFragment(t, i, rows[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
