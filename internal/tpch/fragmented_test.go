package tpch

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
	"cgdqp/internal/workload"
)

// TestFragmentedExecutionEquivalence runs Q3 and Q10 over the Section 7.5
// deployment (Customer and Orders fragmented over three sites, rewritten
// as unions and distributed through joins) and checks the results equal
// the single-site-placement execution of the same data.
func TestFragmentedExecutionEquivalence(t *testing.T) {
	const sf = 0.001
	runOn := func(nLocs int, qn string) []expr.Row {
		cat := NewCatalogFragmented(sf, nLocs)
		net := network.FiveRegionWAN(cat.Locations())
		cl := cluster.New(cat, net)
		if err := Generate(cat, cl); err != nil {
			t.Fatal(err)
		}
		pc := policy.NewCatalog()
		// Unrestricted: every fragment database ships everywhere.
		gen := workload.NewPolicyGen(1, cat.Locations())
		pc = gen.GenerateFor(cat, workload.SetT, 0)
		opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
		res, err := opt.OptimizeSQL(Queries[qn])
		if err != nil {
			t.Fatalf("%s over %d locations: %v", qn, nLocs, err)
		}
		if err := optimizer.ValidatePlan(res.Plan); err != nil {
			t.Fatalf("%s over %d locations: %v", qn, nLocs, err)
		}
		rows, _, err := executor.Run(res.Plan, cl)
		if err != nil {
			t.Fatalf("%s over %d locations: run: %v\n%s", qn, nLocs, err, res.Plan.Format(true))
		}
		return rows
	}
	for _, qn := range []string{"Q3", "Q10"} {
		base := canonQ(runOn(1, qn))
		frag := canonQ(runOn(3, qn))
		if len(base) != len(frag) {
			t.Fatalf("%s: %d vs %d rows", qn, len(base), len(frag))
		}
		for i := range base {
			if base[i] != frag[i] {
				t.Fatalf("%s row %d: %s vs %s", qn, i, base[i], frag[i])
			}
		}
	}
}

func canonQ(rows []expr.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if !v.IsNull() && (v.T == expr.TFloat || v.T == expr.TInt) {
				parts[j] = fmt.Sprintf("%.5g", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}
