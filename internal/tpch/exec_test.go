package tpch

import (
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/executor"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/policy"
)

// execFixture loads a small TPC-H database with unrestricted policies.
func execFixture(t *testing.T, sf float64) (*cluster.Cluster, *optimizer.Optimizer) {
	t.Helper()
	cat := NewCatalog(sf)
	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	if err := Generate(cat, cl); err != nil {
		t.Fatal(err)
	}
	pc := policy.NewCatalog()
	for _, tab := range cat.Tables() {
		pc.Add(policy.MustParse("ship * from "+tab.Name+" to *", tab.Name, tab.DB()))
	}
	return cl, optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
}

// TestQ8MarketShareExecution runs the faithful Q8 (CASE market share per
// year) end to end and validates the result's semantics.
func TestQ8MarketShareExecution(t *testing.T) {
	cl, opt := execFixture(t, 0.002)
	res, err := opt.OptimizeSQL(Queries["Q8"])
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := executor.Run(res.Plan, cl)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, res.Plan.Format(true))
	}
	if len(rows) == 0 {
		t.Skip("Q8 predicate too selective at this scale (no ECONOMY ANODIZED STEEL matches)")
	}
	for _, r := range rows {
		year := r[0].Int()
		if year < 1995 || year > 1996 {
			t.Errorf("o_year %d outside the date range", year)
		}
		share := r[1]
		if !share.IsNull() && (share.Float() < 0 || share.Float() > 1) {
			t.Errorf("mkt_share %v outside [0,1]", share)
		}
	}
	// Ordered ascending by year.
	for i := 1; i < len(rows); i++ {
		if rows[i][0].Int() < rows[i-1][0].Int() {
			t.Error("o_year not ascending")
		}
	}
}

// TestQ9ProfitExecution runs the faithful Q9 (profit per nation and
// year) and validates grouping and ordering.
func TestQ9ProfitExecution(t *testing.T) {
	cl, opt := execFixture(t, 0.002)
	res, err := opt.OptimizeSQL(Queries["Q9"])
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := executor.Run(res.Plan, cl)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, res.Plan.Format(true))
	}
	if len(rows) == 0 {
		t.Skip("Q9 predicate too selective at this scale")
	}
	seen := map[string]bool{}
	for i, r := range rows {
		key := r[0].Str() + "|" + r[1].String()
		if seen[key] {
			t.Errorf("duplicate group %s", key)
		}
		seen[key] = true
		year := r[1].Int()
		if year < 1992 || year > 1998 {
			t.Errorf("o_year %d out of range", year)
		}
		// nation ascending; year descending within nation.
		if i > 0 {
			prev := rows[i-1]
			switch {
			case r[0].Str() < prev[0].Str():
				t.Error("nation not ascending")
			case r[0].Str() == prev[0].Str() && r[1].Int() > prev[1].Int():
				t.Error("o_year not descending within nation")
			}
		}
	}
}
