package policy

import (
	"sort"
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Attr identifies a base-table column (both parts lowercase).
type Attr struct {
	Table string
	Name  string
}

// Key returns "table.name".
func (a Attr) Key() string { return a.Table + "." + a.Name }

// OutAttr is one entry of A_q: a base attribute exposed by the query
// output, optionally through an aggregate function. Following Section 5,
// an aggregate over an expression (e.g. SUM(F*(1-G))) exposes every
// referenced base attribute with that aggregate function.
type OutAttr struct {
	Attr
	Agg    expr.AggFn
	HasAgg bool
}

// Key returns a canonical string for the output attribute.
func (o OutAttr) Key() string {
	if o.HasAgg {
		return o.Attr.Key() + "#" + o.Agg.String()
	}
	return o.Attr.Key()
}

// Query is the descriptor of a local query handed to the policy
// evaluation algorithm 𝒜: the database it runs against, its output
// attributes A_q, its predicate P_q (canonicalized to base-table column
// names), its grouping attributes G_q, and whether it aggregates.
type Query struct {
	DB         string
	Home       string // location hosting the database ("" = unknown)
	OutAttrs   []OutAttr
	GroupBy    []Attr
	Pred       expr.Expr
	Aggregated bool

	// digest memoizes Digest(); descriptors are immutable once built.
	digest string
}

// Digest returns a canonical cache key for the descriptor.
func (q *Query) Digest() string {
	if q.digest != "" {
		return q.digest
	}
	var b strings.Builder
	b.WriteString(q.DB)
	b.WriteByte('@')
	b.WriteString(q.Home)
	b.WriteByte('|')
	keys := make([]string, len(q.OutAttrs))
	for i, a := range q.OutAttrs {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	b.WriteString(strings.Join(keys, ","))
	b.WriteByte('|')
	gb := make([]string, len(q.GroupBy))
	for i, a := range q.GroupBy {
		gb[i] = a.Key()
	}
	sort.Strings(gb)
	b.WriteString(strings.Join(gb, ","))
	b.WriteByte('|')
	if q.Pred != nil {
		b.WriteString(q.Pred.String())
	}
	if q.Aggregated {
		b.WriteString("|agg")
	}
	q.digest = b.String()
	return q.digest
}

// term is the lineage of one output column: the base attributes it
// exposes, each optionally through an aggregate function.
type term struct {
	attr   Attr
	fn     expr.AggFn
	hasAgg bool
}

// colLineage is the set of terms one output column carries.
type colLineage []term

func (c colLineage) allRaw() bool {
	for _, t := range c {
		if t.hasAgg {
			return false
		}
	}
	return true
}

// descState is the running analysis of a subtree.
type descState struct {
	db         string
	home       string       // location of the scanned fragments
	cols       []colLineage // parallel to node.Cols
	conjuncts  []expr.Expr  // canonicalized predicate conjuncts
	groupBy    []Attr
	aggregated bool
}

// Analyzer computes local-query descriptors with a per-node cache. Plan
// subtrees are shared across memo alternatives and treated as immutable
// during optimization, so analysis results can be memoized by pointer.
type Analyzer struct {
	cache map[*plan.Node]analyzeEntry
	// strs and cols memoize per-conjunct renderings and column lists.
	// Conjunct expressions are shared by pointer across the alternatives
	// the optimizer describes, while the descriptor (and its digest) is
	// rebuilt per alternative; re-rendering the shared predicate tree
	// dominates descriptor cost without these caches.
	strs map[expr.Expr]string
	cols map[expr.Expr][]*expr.Col
	// oaKeys memoizes OutAttr.Key renderings (OutAttr is comparable).
	oaKeys map[OutAttr]string
	aKeys  map[Attr]string
}

type analyzeEntry struct {
	st *descState
	ok bool
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		cache:  map[*plan.Node]analyzeEntry{},
		strs:   map[expr.Expr]string{},
		cols:   map[expr.Expr][]*expr.Col{},
		oaKeys: map[OutAttr]string{},
		aKeys:  map[Attr]string{},
	}
}

// exprString renders e, memoized by pointer. And nodes recurse so chains
// rebuilt from stable conjuncts reuse the cached leaf renderings.
func (a *Analyzer) exprString(e expr.Expr) string {
	if s, ok := a.strs[e]; ok {
		return s
	}
	var s string
	if and, ok := e.(*expr.And); ok {
		s = "(" + a.exprString(and.L) + " AND " + a.exprString(and.R) + ")"
	} else {
		s = e.String()
	}
	a.strs[e] = s
	return s
}

// colsOf returns the column references in e, memoized by pointer. The
// result is read-only.
func (a *Analyzer) colsOf(e expr.Expr) []*expr.Col {
	if cs, ok := a.cols[e]; ok {
		return cs
	}
	cs := expr.Columns(e)
	cs = cs[:len(cs):len(cs)]
	a.cols[e] = cs
	return cs
}

func (a *Analyzer) outAttrKey(oa OutAttr) string {
	if s, ok := a.oaKeys[oa]; ok {
		return s
	}
	s := oa.Key()
	a.oaKeys[oa] = s
	return s
}

func (a *Analyzer) attrKey(at Attr) string {
	if s, ok := a.aKeys[at]; ok {
		return s
	}
	s := at.Key()
	a.aKeys[at] = s
	return s
}

// Describe analyzes a plan subtree and produces the local-query
// descriptor used by annotation rule AR4 and by the compliance checker.
// ok is false when the subtree is not a local query over a single
// database (it spans databases, contains SHIP operators, or has a shape
// the descriptor cannot express, such as filters over aggregated values);
// in that case the caller must not invoke the policy evaluator and must
// fall back to the conservative default (no legal destinations beyond the
// execution trait).
func Describe(n *plan.Node) (*Query, bool) {
	return NewAnalyzer().Describe(n)
}

// Describe analyzes a subtree through the cache.
func (a *Analyzer) Describe(n *plan.Node) (*Query, bool) {
	st, ok := a.analyze(n)
	if !ok {
		return nil, false
	}
	q := &Query{DB: st.db, Home: st.home, GroupBy: st.groupBy, Aggregated: st.aggregated}
	q.Pred = expr.AndAll(st.conjuncts...)
	var keyBuf [12]string
	keys := keyBuf[:0] // parallel to q.OutAttrs; dedup key is OutAttr.Key
	add := func(oa OutAttr) {
		k := a.outAttrKey(oa)
		for _, have := range keys {
			if have == k {
				return
			}
		}
		keys = append(keys, k)
		q.OutAttrs = append(q.OutAttrs, oa)
	}
	for _, col := range st.cols {
		for _, t := range col {
			add(OutAttr{Attr: t.attr, Agg: t.fn, HasAgg: t.hasAgg})
		}
	}
	// Predicate columns count as accessed attributes (Example 1: a query
	// filtering on mktsegment must be covered by an expression shipping
	// mktsegment under an implied predicate). They are raw accesses.
	for _, c := range st.conjuncts {
		for _, col := range a.colsOf(c) {
			add(OutAttr{Attr: Attr{Table: col.Table, Name: col.Name}})
		}
	}
	// Precompute the digest from the cached per-conjunct renderings; the
	// output must stay byte-identical to Query.Digest (the evaluator cache
	// is keyed on it). AndAll folds left-associatively, so the predicate
	// part mirrors that shape.
	var b strings.Builder
	b.Grow(128)
	b.WriteString(st.db)
	b.WriteByte('@')
	b.WriteString(st.home)
	b.WriteByte('|')
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	b.WriteByte('|')
	var gbBuf [8]string
	gb := gbBuf[:0]
	for _, at := range st.groupBy {
		gb = append(gb, a.attrKey(at))
	}
	sort.Strings(gb)
	for i, k := range gb {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	b.WriteByte('|')
	if len(st.conjuncts) > 0 {
		ps := a.exprString(st.conjuncts[0])
		for _, c := range st.conjuncts[1:] {
			ps = "(" + ps + " AND " + a.exprString(c) + ")"
		}
		b.WriteString(ps)
	}
	if st.aggregated {
		b.WriteString("|agg")
	}
	q.digest = b.String()
	return q, true
}

func (a *Analyzer) analyze(n *plan.Node) (*descState, bool) {
	if e, hit := a.cache[n]; hit {
		return e.st, e.ok
	}
	st, ok := a.analyzeUncached(n)
	a.cache[n] = analyzeEntry{st: st, ok: ok}
	return st, ok
}

func (a *Analyzer) analyzeUncached(n *plan.Node) (*descState, bool) {
	switch n.Kind {
	case plan.Scan, plan.TableScan:
		return analyzeScan(n)
	case plan.Filter, plan.FilterExec:
		return a.analyzeFilter(n)
	case plan.Project, plan.ProjectExec:
		return a.analyzeProject(n)
	case plan.Join, plan.HashJoin, plan.NLJoin, plan.IndexLookupJoin:
		return a.analyzeJoin(n)
	case plan.IndexScan:
		return a.analyzeIndexScan(n)
	case plan.Aggregate, plan.HashAgg:
		return a.analyzeAggregate(n)
	case plan.Union, plan.UnionAll:
		return a.analyzeUnion(n)
	case plan.Sort, plan.SortExec, plan.Limit, plan.LimitExec:
		return a.analyze(n.Children[0])
	}
	// Ship and anything unknown: not a local query.
	return nil, false
}

func analyzeScan(n *plan.Node) (*descState, bool) {
	fragIdx := n.FragIdx
	if fragIdx < 0 {
		if n.Table.Fragmented() {
			// A whole-table scan of a fragmented table spans databases.
			return nil, false
		}
		fragIdx = 0
	}
	st := &descState{
		db:   strings.ToLower(n.Table.Fragments[fragIdx].DB),
		home: n.Table.Fragments[fragIdx].Location,
	}
	table := strings.ToLower(n.Table.Name)
	st.cols = make([]colLineage, len(n.Cols))
	for i, c := range n.Cols {
		st.cols[i] = colLineage{{attr: Attr{Table: table, Name: strings.ToLower(c.Name)}}}
	}
	return st, true
}

// analyzeIndexScan describes an IndexScan exactly as the Filter(Scan)
// it implements: same base attributes, same conjuncts (the index bounds
// are conjuncts of the residual predicate, so they add nothing), hence
// the same descriptor digest and the same AR4 destinations.
func (a *Analyzer) analyzeIndexScan(n *plan.Node) (*descState, bool) {
	st, ok := analyzeScan(n)
	if !ok {
		return nil, false
	}
	if n.Pred == nil {
		return st, true
	}
	canon, ok := canonicalize(n.Pred, n, st)
	if !ok {
		return nil, false
	}
	out := &descState{db: st.db, home: st.home, cols: st.cols, groupBy: st.groupBy, aggregated: st.aggregated}
	out.conjuncts = append(append([]expr.Expr{}, st.conjuncts...), expr.Conjuncts(canon)...)
	return out, true
}

func (a *Analyzer) analyzeFilter(n *plan.Node) (*descState, bool) {
	st, ok := a.analyze(n.Children[0])
	if !ok {
		return nil, false
	}
	canon, ok := canonicalize(n.Pred, n.Children[0], st)
	if !ok {
		return nil, false
	}
	// Child states are cached and shared: never mutate them.
	out := &descState{db: st.db, home: st.home, cols: st.cols, groupBy: st.groupBy, aggregated: st.aggregated}
	out.conjuncts = append(append([]expr.Expr{}, st.conjuncts...), expr.Conjuncts(canon)...)
	return out, true
}

func (a *Analyzer) analyzeProject(n *plan.Node) (*descState, bool) {
	child, ok := a.analyze(n.Children[0])
	if !ok {
		return nil, false
	}
	out := &descState{db: child.db, home: child.home, conjuncts: child.conjuncts, groupBy: child.groupBy, aggregated: child.aggregated}
	out.cols = make([]colLineage, len(n.Projs))
	for i, p := range n.Projs {
		lin, ok := exprLineage(p.E, n.Children[0], child)
		if !ok {
			return nil, false
		}
		out.cols[i] = lin
	}
	return out, true
}

func (a *Analyzer) analyzeJoin(n *plan.Node) (*descState, bool) {
	l, ok := a.analyze(n.Children[0])
	if !ok {
		return nil, false
	}
	r, ok := a.analyze(n.Children[1])
	if !ok {
		return nil, false
	}
	if l.db != r.db {
		return nil, false
	}
	home := l.home
	if r.home != home {
		home = ""
	}
	st := &descState{
		db:         l.db,
		home:       home,
		cols:       append(append([]colLineage{}, l.cols...), r.cols...),
		conjuncts:  append(append([]expr.Expr{}, l.conjuncts...), r.conjuncts...),
		groupBy:    append(append([]Attr{}, l.groupBy...), r.groupBy...),
		aggregated: l.aggregated || r.aggregated,
	}
	if n.Pred != nil {
		// Canonicalize the join condition against the combined schema.
		canon, ok := canonicalize(n.Pred, n, st)
		if !ok {
			return nil, false
		}
		st.conjuncts = append(st.conjuncts, expr.Conjuncts(canon)...)
	}
	return st, true
}

func (a *Analyzer) analyzeAggregate(n *plan.Node) (*descState, bool) {
	child, ok := a.analyze(n.Children[0])
	if !ok {
		return nil, false
	}
	st := &descState{db: child.db, home: child.home, conjuncts: child.conjuncts, aggregated: true}
	// Group-by columns: must be raw base attributes; they become both
	// output columns and G_q entries.
	for _, g := range n.GroupBy {
		lin, ok := colLineageOf(g, n.Children[0], child)
		if !ok || !lin.allRaw() {
			return nil, false
		}
		st.cols = append(st.cols, lin)
		for _, t := range lin {
			st.groupBy = append(st.groupBy, t.attr)
		}
	}
	// Aggregates: every referenced base attribute is exposed through the
	// aggregate function.
	for _, a := range n.Aggs {
		if a.Arg == nil {
			// COUNT(*) exposes no attributes.
			st.cols = append(st.cols, colLineage{})
			continue
		}
		lin, ok := exprLineage(a.Arg, n.Children[0], child)
		if !ok {
			return nil, false
		}
		var out colLineage
		for _, t := range lin {
			nt, ok := composeAgg(t, a.Fn)
			if !ok {
				return nil, false
			}
			out = append(out, nt)
		}
		st.cols = append(st.cols, out)
	}
	// Re-grouping retains any grouping from below (partial aggregation
	// keeps its group keys raw, which is what matters for G_q ⊆ G_e).
	return st, true
}

// composeAgg layers an aggregate over a (possibly already aggregated)
// term. A raw term takes the function directly. Re-aggregation is allowed
// for decomposable functions: SUM∘SUM, MIN∘MIN, MAX∘MAX, and SUM∘COUNT
// (which is COUNT).
func composeAgg(t term, fn expr.AggFn) (term, bool) {
	if !t.hasAgg {
		t.fn = fn
		t.hasAgg = true
		return t, true
	}
	switch {
	case t.fn == fn && (fn == expr.AggSum || fn == expr.AggMin || fn == expr.AggMax):
		return t, true
	case t.fn == expr.AggCount && fn == expr.AggSum:
		return t, true
	}
	return term{}, false
}

func (a *Analyzer) analyzeUnion(n *plan.Node) (*descState, bool) {
	var st *descState
	for _, c := range n.Children {
		cs, ok := a.analyze(c)
		if !ok {
			return nil, false
		}
		if st == nil {
			// Copy the first child's state: cached states are shared and
			// must not be mutated.
			st = &descState{
				db:         cs.db,
				home:       cs.home,
				conjuncts:  append([]expr.Expr{}, cs.conjuncts...),
				groupBy:    cs.groupBy,
				aggregated: cs.aggregated,
			}
			st.cols = make([]colLineage, len(cs.cols))
			for i, col := range cs.cols {
				st.cols[i] = append(colLineage{}, col...)
			}
			continue
		}
		if cs.db != st.db {
			return nil, false
		}
		if cs.home != st.home {
			st.home = ""
		}
		// The union of fragments exposes the union of lineages; the
		// predicate must hold on both branches, so keep only conjuncts
		// appearing in every branch.
		st.conjuncts = intersectConjuncts(st.conjuncts, cs.conjuncts)
		for i := range st.cols {
			st.cols[i] = append(st.cols[i], cs.cols[i]...)
		}
		st.aggregated = st.aggregated || cs.aggregated
	}
	return st, st != nil
}

func intersectConjuncts(a, b []expr.Expr) []expr.Expr {
	var out []expr.Expr
	for _, x := range a {
		for _, y := range b {
			if x.Equal(y) {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// colLineageOf resolves a column reference against a child node's
// analyzed lineage.
func colLineageOf(c *expr.Col, child *plan.Node, st *descState) (colLineage, bool) {
	idx := child.ColIndex(c)
	if idx < 0 || idx >= len(st.cols) {
		return nil, false
	}
	return st.cols[idx], true
}

// exprLineage computes the union of base attributes referenced by an
// expression over the child's output.
func exprLineage(e expr.Expr, child *plan.Node, st *descState) (colLineage, bool) {
	var out colLineage
	ok := true
	expr.Walk(e, func(n expr.Expr) bool {
		if c, isCol := n.(*expr.Col); isCol {
			lin, found := colLineageOf(c, child, st)
			if !found {
				ok = false
				return false
			}
			out = append(out, lin...)
		}
		return ok
	})
	return out, ok
}

// canonicalize rewrites a predicate so every column becomes its base
// attribute (table-qualified lowercase). It fails when the predicate
// references aggregated or multi-attribute computed columns, which the
// descriptor cannot express soundly.
func canonicalize(p expr.Expr, scope *plan.Node, st *descState) (expr.Expr, bool) {
	if p == nil {
		return nil, true
	}
	okAll := true
	out := expr.Transform(p, func(n expr.Expr) expr.Expr {
		c, isCol := n.(*expr.Col)
		if !isCol || !okAll {
			return n
		}
		lin, found := colLineageOf(c, scope, st)
		if !found || len(lin) != 1 || lin[0].hasAgg {
			okAll = false
			return n
		}
		return &expr.Col{Table: lin[0].attr.Table, Name: lin[0].attr.Name, Index: -1}
	})
	if !okAll {
		return nil, false
	}
	return out, true
}
