package policy

import (
	"sort"
	"strings"
	"sync"
)

// Catalog is the policy catalog of Figure 2: the set of all registered
// policy expressions, indexed by owning database. Data officers register
// expressions offline; the optimizer consults the catalog through the
// Evaluator at query time. The catalog is safe for concurrent use, so
// policies may churn (grants added or revoked) while a serving tier
// evaluates queries against it — callers that cache evaluation results
// must still bump their epoch on every change.
type Catalog struct {
	mu   sync.RWMutex
	byDB map[string][]*Expression
	n    int
}

// NewCatalog returns an empty policy catalog.
func NewCatalog() *Catalog {
	return &Catalog{byDB: map[string][]*Expression{}}
}

// Add registers an expression.
func (c *Catalog) Add(e *Expression) {
	db := strings.ToLower(e.DB)
	c.mu.Lock()
	c.byDB[db] = append(c.byDB[db], e)
	c.n++
	c.mu.Unlock()
}

// AddAll registers several expressions.
func (c *Catalog) AddAll(es ...*Expression) {
	for _, e := range es {
		c.Add(e)
	}
}

// Remove deletes the expression with the given ID (case-insensitive),
// reporting whether one was removed. Revoking a grant tightens the
// catalog: plans and cached results derived while it was in force may
// no longer be compliant, so callers must invalidate them (bump the
// evaluator's epoch and any result-cache policy epoch).
func (c *Catalog) Remove(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for db, es := range c.byDB {
		for i, e := range es {
			if strings.EqualFold(e.ID, id) {
				// Copy-on-write so slices handed out by ForDB before the
				// removal stay intact for their readers.
				next := make([]*Expression, 0, len(es)-1)
				next = append(next, es[:i]...)
				next = append(next, es[i+1:]...)
				if len(next) == 0 {
					delete(c.byDB, db)
				} else {
					c.byDB[db] = next
				}
				c.n--
				return true
			}
		}
	}
	return false
}

// ForDB returns the expressions registered for a database. The returned
// slice must not be mutated; it stays valid across later Add/Remove
// calls (removal copies).
func (c *Catalog) ForDB(db string) []*Expression {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byDB[strings.ToLower(db)]
}

// Len returns the total number of registered expressions.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Databases returns the databases that have policies, sorted.
func (c *Catalog) Databases() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.byDB))
	for db := range c.byDB {
		out = append(out, db)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// IDs returns every registered expression ID, sorted.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	out := make([]string, 0, c.n)
	for _, es := range c.byDB {
		for _, e := range es {
			out = append(out, e.ID)
		}
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Fingerprint returns a digest of the catalog contents; the evaluator
// uses it to invalidate caches when policies change.
func (c *Catalog) Fingerprint() string {
	c.mu.RLock()
	var parts []string
	for db, es := range c.byDB {
		for _, e := range es {
			parts = append(parts, db+"|"+e.String())
		}
	}
	c.mu.RUnlock()
	sort.Strings(parts)
	return strings.Join(parts, ";")
}
