package policy

import (
	"sort"
	"strings"
)

// Catalog is the policy catalog of Figure 2: the set of all registered
// policy expressions, indexed by owning database. Data officers register
// expressions offline; the optimizer consults the catalog through the
// Evaluator at query time.
type Catalog struct {
	byDB map[string][]*Expression
	n    int
}

// NewCatalog returns an empty policy catalog.
func NewCatalog() *Catalog {
	return &Catalog{byDB: map[string][]*Expression{}}
}

// Add registers an expression.
func (c *Catalog) Add(e *Expression) {
	db := strings.ToLower(e.DB)
	c.byDB[db] = append(c.byDB[db], e)
	c.n++
}

// AddAll registers several expressions.
func (c *Catalog) AddAll(es ...*Expression) {
	for _, e := range es {
		c.Add(e)
	}
}

// ForDB returns the expressions registered for a database.
func (c *Catalog) ForDB(db string) []*Expression {
	return c.byDB[strings.ToLower(db)]
}

// Len returns the total number of registered expressions.
func (c *Catalog) Len() int { return c.n }

// Databases returns the databases that have policies, sorted.
func (c *Catalog) Databases() []string {
	out := make([]string, 0, len(c.byDB))
	for db := range c.byDB {
		out = append(out, db)
	}
	sort.Strings(out)
	return out
}

// Fingerprint returns a digest of the catalog contents; the evaluator
// uses it to invalidate caches when policies change.
func (c *Catalog) Fingerprint() string {
	var parts []string
	for db, es := range c.byDB {
		for _, e := range es {
			parts = append(parts, db+"|"+e.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}
