package policy

import (
	"fmt"
	"sort"
	"strings"

	"cgdqp/internal/sqlparse"
)

// This file implements the closed-world preprocessing mentioned in the
// paper's Disclosure Model (Section 4): "in some cases negative
// instances, i.e., specifying what is not allowed, may be more
// convenient. This can be handled by an additional preprocessing step
// under a closed world assumption."
//
// A negative expression
//
//	deny attr_list from table to location_list
//
// states that the listed attributes must NOT be shipped (raw) to the
// listed locations. Under the closed-world assumption every other
// (attribute, location) pair is allowed, so a set of denials compiles
// into positive basic expressions: one per distinct allowed-destination
// set, covering the attributes that share it.

// Denial is a parsed negative expression.
type Denial struct {
	DB       string
	Table    string
	AllAttrs bool
	Attrs    []string
	ToAll    bool
	To       []string
}

// DenialFromStmt converts a parsed deny statement.
func DenialFromStmt(stmt *sqlparse.PolicyStmt, db string) (*Denial, error) {
	if !stmt.Deny {
		return nil, fmt.Errorf("policy: expression is not a denial")
	}
	if stmt.Where != nil || len(stmt.GroupBy) > 0 || stmt.IsAggregate() {
		return nil, fmt.Errorf("policy: denials support only attribute and location lists")
	}
	if stmt.DB != "" {
		if db != "" && !strings.EqualFold(stmt.DB, db) {
			return nil, fmt.Errorf("policy: denial for %s.%s registered under database %s", stmt.DB, stmt.Table, db)
		}
		db = stmt.DB
	}
	if db == "" {
		return nil, fmt.Errorf("policy: denial over %s has no owning database", stmt.Table)
	}
	return &Denial{
		DB:       strings.ToLower(db),
		Table:    strings.ToLower(stmt.Table),
		AllAttrs: stmt.AllAttrs,
		Attrs:    lowerAll(stmt.Attrs),
		ToAll:    stmt.ToAll,
		To:       append([]string(nil), stmt.To...),
	}, nil
}

// ParseDenial parses a `deny ...` expression.
func ParseDenial(src, db string) (*Denial, error) {
	stmt, err := sqlparse.ParsePolicy(src)
	if err != nil {
		return nil, err
	}
	return DenialFromStmt(stmt, db)
}

// CompileDenials turns the denials for one table into positive basic
// expressions under the closed-world assumption: every attribute may
// ship to every location except those denied for it. tableCols is the
// table's full attribute list; allLocations the location universe.
// Expressions are emitted one per distinct allowed-destination set
// (attributes keep tableCols order; destinations keep allLocations
// order), so the output is deterministic.
func CompileDenials(table, db string, tableCols []string, denials []*Denial, allLocations []string, idPrefix string) ([]*Expression, error) {
	table = strings.ToLower(table)
	db = strings.ToLower(db)
	denied := map[string]map[string]bool{} // attr -> blocked locations
	for _, col := range tableCols {
		denied[strings.ToLower(col)] = map[string]bool{}
	}
	for _, d := range denials {
		if d.Table != table || d.DB != db {
			return nil, fmt.Errorf("policy: denial for %s.%s applied to %s.%s", d.DB, d.Table, db, table)
		}
		var attrs []string
		if d.AllAttrs {
			attrs = lowerAll(tableCols)
		} else {
			attrs = d.Attrs
		}
		for _, a := range attrs {
			m, ok := denied[a]
			if !ok {
				return nil, fmt.Errorf("policy: denial references unknown attribute %q of %s", a, table)
			}
			if d.ToAll {
				for _, l := range allLocations {
					m[l] = true
				}
			} else {
				for _, l := range d.To {
					m[l] = true
				}
			}
		}
	}
	// Group attributes by their allowed-destination signature.
	type bucket struct {
		attrs []string
		to    []string
	}
	buckets := map[string]*bucket{}
	var order []string
	for _, col := range tableCols {
		a := strings.ToLower(col)
		var to []string
		for _, l := range allLocations {
			if !denied[a][l] {
				to = append(to, l)
			}
		}
		key := strings.Join(to, ",")
		b, ok := buckets[key]
		if !ok {
			b = &bucket{to: to}
			buckets[key] = b
			order = append(order, key)
		}
		b.attrs = append(b.attrs, a)
	}
	sort.Strings(order)
	var out []*Expression
	for i, key := range order {
		b := buckets[key]
		if len(b.to) == 0 {
			continue // fully denied attributes get no grant at all
		}
		e := &Expression{
			ID:     fmt.Sprintf("%s%d", idPrefix, i+1),
			DB:     db,
			Tables: []string{table},
			To:     b.to,
		}
		for _, a := range b.attrs {
			e.Attrs = append(e.Attrs, Attr{Table: table, Name: a})
		}
		if len(b.to) == len(allLocations) {
			e.ToAll = true
			e.To = nil
		}
		out = append(out, e)
	}
	return out, nil
}
