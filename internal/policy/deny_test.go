package policy

import (
	"testing"
)

func TestParseDenial(t *testing.T) {
	d, err := ParseDenial("deny acctbal, phone from customer to Asia, USA", "db-1")
	if err != nil {
		t.Fatal(err)
	}
	if d.DB != "db-1" || d.Table != "customer" {
		t.Errorf("denial: %+v", d)
	}
	if len(d.Attrs) != 2 || d.Attrs[0] != "acctbal" {
		t.Errorf("attrs: %v", d.Attrs)
	}
	if len(d.To) != 2 {
		t.Errorf("to: %v", d.To)
	}
	// Wildcards parse too.
	d2, err := ParseDenial("deny * from db-2.orders to *", "")
	if err != nil {
		t.Fatal(err)
	}
	if !d2.AllAttrs || !d2.ToAll || d2.DB != "db-2" {
		t.Errorf("wildcard denial: %+v", d2)
	}
	// Ship statements are not denials.
	if _, err := ParseDenial("ship a from t to *", "db"); err == nil {
		t.Error("ship is not a denial")
	}
	// Denials cannot aggregate.
	if _, err := ParseDenial("deny a as aggregates sum from t to *", "db"); err == nil {
		t.Error("deny with aggregates must fail")
	}
	// And FromStmt refuses denials.
	if _, err := Parse("deny a from t to *", "x", "db"); err == nil {
		t.Error("FromStmt must reject denials")
	}
}

func TestCompileDenials(t *testing.T) {
	cols := []string{"id", "name", "acctbal", "phone"}
	locs := []string{"EU", "US", "ASIA"}
	denials := []*Denial{
		{DB: "db-1", Table: "customer", Attrs: []string{"acctbal"}, ToAll: true},
		{DB: "db-1", Table: "customer", Attrs: []string{"phone"}, To: []string{"ASIA"}},
	}
	grants, err := CompileDenials("customer", "db-1", cols, denials, locs, "g")
	if err != nil {
		t.Fatal(err)
	}
	// Expected buckets: {id, name} -> *, {phone} -> EU, US;
	// acctbal fully denied -> no grant.
	byAttr := map[string]*Expression{}
	for _, g := range grants {
		for _, a := range g.Attrs {
			byAttr[a.Name] = g
		}
	}
	if e := byAttr["id"]; e == nil || !e.ToAll {
		t.Errorf("id grant: %+v", e)
	}
	if byAttr["name"] != byAttr["id"] {
		t.Error("id and name should share a grant bucket")
	}
	if e := byAttr["phone"]; e == nil || e.ToAll || len(e.To) != 2 {
		t.Errorf("phone grant: %+v", e)
	} else {
		for _, l := range e.To {
			if l == "ASIA" {
				t.Error("phone must not reach ASIA")
			}
		}
	}
	if byAttr["acctbal"] != nil {
		t.Error("fully denied attribute must have no grant")
	}
	// Unknown attribute in a denial fails.
	bad := []*Denial{{DB: "db-1", Table: "customer", Attrs: []string{"ghost"}, ToAll: true}}
	if _, err := CompileDenials("customer", "db-1", cols, bad, locs, "g"); err == nil {
		t.Error("unknown attribute must fail")
	}
	// Mismatched table fails.
	wrong := []*Denial{{DB: "db-1", Table: "orders", Attrs: []string{"id"}, ToAll: true}}
	if _, err := CompileDenials("customer", "db-1", cols, wrong, locs, "g"); err == nil {
		t.Error("wrong table must fail")
	}
	// No denials at all: one ship-everything grant.
	open, err := CompileDenials("customer", "db-1", cols, nil, locs, "g")
	if err != nil || len(open) != 1 || !open[0].ToAll || len(open[0].Attrs) != 4 {
		t.Errorf("no-denial compile: %v %v", open, err)
	}
}

func TestCompiledDenialsEvaluate(t *testing.T) {
	cols := []string{"id", "name", "secret"}
	locs := []string{"EU", "US"}
	denials := []*Denial{{DB: "db-x", Table: "t", Attrs: []string{"secret"}, To: []string{"US"}}}
	grants, err := CompileDenials("t", "db-x", cols, denials, locs, "g")
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	cat.AddAll(grants...)
	ev := NewEvaluator(cat, locs)

	// id+name reach both; adding secret restricts to EU.
	q := &Query{DB: "db-x", OutAttrs: []OutAttr{
		{Attr: Attr{Table: "t", Name: "id"}}, {Attr: Attr{Table: "t", Name: "name"}},
	}}
	if got := ev.Evaluate(q); got.Key() != "EU,US" {
		t.Errorf("open attrs: %s", got)
	}
	q2 := &Query{DB: "db-x", OutAttrs: []OutAttr{
		{Attr: Attr{Table: "t", Name: "id"}}, {Attr: Attr{Table: "t", Name: "secret"}},
	}}
	if got := ev.Evaluate(q2); got.Key() != "EU" {
		t.Errorf("restricted attrs: %s", got)
	}
}
