package policy

import (
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Evaluator implements the policy evaluation algorithm 𝒜 of Section 5
// (Algorithm 1). It is configured with the policy catalog, the full list
// of locations (for expanding `to *`), and the implication-test mode.
//
// The evaluator memoizes results by query digest and counts η (eta): the
// number of times a policy expression is "considered" for a query, i.e.
// its ship attributes overlap the query output AND the implication test
// passes (Algorithm 1 reaching line 4). Figure 7 plots optimization time
// against η.
type Evaluator struct {
	Policies     *Catalog
	AllLocations []string
	Mode         expr.ImplicationMode
	// NoCache disables result memoization. The paper's evaluator re-runs
	// per plan operator, which is what makes its C-type expression sets
	// (whose implication tests always pass) measurably costlier than
	// CR/CR+A (Figure 6(c–f)); disable the cache to reproduce that
	// effect, keep it for production use.
	NoCache bool

	// Stats.
	Eta   int64 // expressions considered (line 4 reached)
	Calls int64 // total Evaluate calls
	Hits  int64 // cache hits

	cache map[string]plan.SiteSet
}

// NewEvaluator builds an evaluator over the given policy catalog.
func NewEvaluator(policies *Catalog, allLocations []string) *Evaluator {
	return &Evaluator{
		Policies:     policies,
		AllLocations: append([]string(nil), allLocations...),
		cache:        map[string]plan.SiteSet{},
	}
}

// ResetStats clears the η and call counters (not the cache).
func (ev *Evaluator) ResetStats() { ev.Eta, ev.Calls, ev.Hits = 0, 0, 0 }

// ResetCache clears the memoization cache (for use after policy changes).
func (ev *Evaluator) ResetCache() { ev.cache = map[string]plan.SiteSet{} }

// Evaluate runs 𝒜(q, D, P_D): it returns the set of locations to which
// the output of the local query q over database q.DB may legally be
// shipped.
func (ev *Evaluator) Evaluate(q *Query) plan.SiteSet {
	ev.Calls++
	if ev.NoCache {
		return ev.evaluate(q)
	}
	key := q.Digest()
	if got, ok := ev.cache[key]; ok {
		ev.Hits++
		return got
	}
	res := ev.evaluate(q)
	ev.cache[key] = res
	return res
}

func (ev *Evaluator) evaluate(q *Query) plan.SiteSet {
	// Shipping to the data's own location is always legal (Section 3.2
	// evaluates 𝒜(C, D_N, P_N) = {N}): the home location joins the
	// result regardless of policy coverage.
	home := plan.SiteSet{}
	if q.Home != "" {
		home = plan.NewSiteSet(q.Home)
	}
	// A query exposing no attributes (e.g. bare COUNT(*)) still reveals
	// information; with no attribute to anchor the policy match we stay
	// conservative and allow nothing beyond the home location.
	if len(q.OutAttrs) == 0 {
		return home
	}
	exprs := ev.Policies.ForDB(q.DB)
	// L_a per output attribute (line 1).
	locs := make([]map[string]bool, len(q.OutAttrs))
	for i := range locs {
		locs[i] = map[string]bool{}
	}

	for _, e := range exprs {
		// Line 2: A_q ∩ A_e ≠ ∅ (attribute-wise, scoped to e's tables).
		overlap := false
		for _, a := range q.OutAttrs {
			if e.Covers(a.Attr) {
				overlap = true
				break
			}
		}
		if !overlap {
			continue
		}
		// Line 3: P_q ⇒ P_e.
		if !expr.ImpliesMode(q.Pred, e.Where, ev.Mode) {
			continue
		}
		ev.Eta++ // the expression is "considered" (line 4 reached)

		switch {
		case !e.IsAggregate():
			// Cases 1 & 2 (lines 4–5): basic expression. Raw cells are
			// allowed, so both raw and aggregated uses of the attribute
			// are covered.
			for i, a := range q.OutAttrs {
				if e.Covers(a.Attr) {
					addAll(locs[i], e.Destinations(ev.AllLocations))
				}
			}
		case q.Aggregated:
			// Case 3 (lines 6–10): aggregate expression and aggregate
			// query. G_q ⊆ G_e, scoped to the expression's table (this
			// includes the empty subset).
			if !groupBySubset(q.GroupBy, e) {
				continue
			}
			for i, a := range q.OutAttrs {
				if !e.OwnsTable(a.Table) {
					continue
				}
				switch {
				case !a.HasAgg && e.InGroupBy(a.Attr):
					// Grouping attributes are implicitly shippable.
					addAll(locs[i], e.Destinations(ev.AllLocations))
				case a.HasAgg && e.Covers(a.Attr) && e.AllowsFn(a.Agg):
					addAll(locs[i], e.Destinations(ev.AllLocations))
				}
			}
		}
		// Aggregate expression with a non-aggregating query contributes
		// nothing: raw cells may not leave.
	}

	// Line 11: every output attribute must have at least one legal
	// destination; the result is the intersection (plus home).
	out := plan.NewSiteSet(keys(locs[0])...)
	for _, m := range locs[1:] {
		if out.Empty() {
			break
		}
		out = out.Intersect(plan.NewSiteSet(keys(m)...))
	}
	return out.Union(home)
}

// groupBySubset checks G_q ⊆ G_e for grouping attributes that belong to
// the expression's tables. Attributes of other tables are governed by
// their own tables' expressions (they appear in A_q and accumulate their
// own location sets).
func groupBySubset(groupBy []Attr, e *Expression) bool {
	for _, g := range groupBy {
		if e.OwnsTable(g.Table) && !e.InGroupBy(g) {
			return false
		}
	}
	return true
}

func addAll(m map[string]bool, locs []string) {
	for _, l := range locs {
		m[l] = true
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// EvaluateSubtree describes a plan subtree and, when it is a local query,
// evaluates the policies against it. ok is false when the subtree is not
// a local query (AR4 does not apply).
func (ev *Evaluator) EvaluateSubtree(n *plan.Node) (plan.SiteSet, bool) {
	q, ok := Describe(n)
	if !ok {
		return plan.SiteSet{}, false
	}
	return ev.Evaluate(q), true
}
