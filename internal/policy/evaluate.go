package policy

import (
	"sync"
	"sync/atomic"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// evalShards is the number of independently locked cache shards. Sixteen
// keeps lock contention negligible for the 8–64 concurrent optimizations
// a coordinator realistically runs while wasting no memory.
const evalShards = 16

// EvalStats accumulates evaluator statistics for one caller (one
// Optimize call). The struct is owned by a single goroutine and updated
// without synchronization; the evaluator's own cumulative counters are
// atomic and shared. η (Eta) counts policy expressions "considered"
// (Algorithm 1 reaching line 4) — Figure 7 plots optimization time
// against it.
type EvalStats struct {
	Eta   int64 // expressions considered (line 4 reached)
	Calls int64 // Evaluate invocations
	Hits  int64 // cache hits
}

type evalEntry struct {
	epoch uint64
	set   plan.SiteSet
}

type evalShard struct {
	mu sync.RWMutex
	m  map[string]evalEntry
}

// Evaluator implements the policy evaluation algorithm 𝒜 of Section 5
// (Algorithm 1). It is configured with the policy catalog, the full list
// of locations (for expanding `to *`), and the implication-test mode.
//
// One evaluator is safely shareable across goroutines: results are
// memoized by query digest in a sharded, RWMutex-guarded cache, the
// cumulative η/call/hit counters are atomics, and ResetCache is an
// epoch bump (entries from older epochs read as misses), so a policy
// change never races in-flight evaluations. Per-caller statistics are
// attributed through an EvalStats handle passed to EvaluateWith.
//
// The configuration fields (Policies, AllLocations, Mode, NoCache) must
// be set before the evaluator is shared; they are read without locks.
type Evaluator struct {
	Policies     *Catalog
	AllLocations []string
	Mode         expr.ImplicationMode
	// NoCache disables result memoization. The paper's evaluator re-runs
	// per plan operator, which is what makes its C-type expression sets
	// (whose implication tests always pass) measurably costlier than
	// CR/CR+A (Figure 6(c–f)); disable the cache to reproduce that
	// effect, keep it for production use.
	NoCache bool

	// Cumulative stats across all callers.
	eta   atomic.Int64
	calls atomic.Int64
	hits  atomic.Int64

	// epoch versions the policy catalog; cache entries written under an
	// older epoch are treated as absent.
	epoch  atomic.Uint64
	shards [evalShards]evalShard
}

// NewEvaluator builds an evaluator over the given policy catalog.
func NewEvaluator(policies *Catalog, allLocations []string) *Evaluator {
	ev := &Evaluator{
		Policies:     policies,
		AllLocations: append([]string(nil), allLocations...),
	}
	for i := range ev.shards {
		ev.shards[i].m = map[string]evalEntry{}
	}
	return ev
}

// Eta returns the cumulative count of policy expressions considered.
func (ev *Evaluator) Eta() int64 { return ev.eta.Load() }

// Calls returns the cumulative number of Evaluate invocations.
func (ev *Evaluator) Calls() int64 { return ev.calls.Load() }

// Hits returns the cumulative number of cache hits.
func (ev *Evaluator) Hits() int64 { return ev.hits.Load() }

// ResetStats clears the cumulative η and call counters (not the cache).
func (ev *Evaluator) ResetStats() {
	ev.eta.Store(0)
	ev.calls.Store(0)
	ev.hits.Store(0)
}

// Epoch returns the current policy-catalog epoch. It changes exactly
// when ResetCache is called; plan caches key on it so cached plans from
// before a policy change are never replayed.
func (ev *Evaluator) Epoch() uint64 { return ev.epoch.Load() }

// ResetCache invalidates the memoization cache (for use after policy
// changes). It is an O(1) epoch bump: stale entries are ignored on read
// and overwritten on the next write of their key.
func (ev *Evaluator) ResetCache() { ev.epoch.Add(1) }

// shardOf picks the cache shard for a key (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % evalShards
}

// Evaluate runs 𝒜(q, D, P_D): it returns the set of locations to which
// the output of the local query q over database q.DB may legally be
// shipped.
func (ev *Evaluator) Evaluate(q *Query) plan.SiteSet {
	return ev.EvaluateWith(q, nil)
}

// EvaluateWith is Evaluate with per-caller stats attribution: st (when
// non-nil) is incremented alongside the evaluator's cumulative counters,
// letting concurrent optimizations report their own η and call counts.
func (ev *Evaluator) EvaluateWith(q *Query, st *EvalStats) plan.SiteSet {
	ev.calls.Add(1)
	if st != nil {
		st.Calls++
	}
	if ev.NoCache {
		return ev.evaluate(q, st)
	}
	key := q.Digest()
	epoch := ev.epoch.Load()
	sh := &ev.shards[shardOf(key)]
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok && e.epoch == epoch {
		ev.hits.Add(1)
		if st != nil {
			st.Hits++
		}
		return e.set
	}
	res := ev.evaluate(q, st)
	sh.mu.Lock()
	sh.m[key] = evalEntry{epoch: epoch, set: res}
	sh.mu.Unlock()
	return res
}

func (ev *Evaluator) evaluate(q *Query, st *EvalStats) plan.SiteSet {
	// Shipping to the data's own location is always legal (Section 3.2
	// evaluates 𝒜(C, D_N, P_N) = {N}): the home location joins the
	// result regardless of policy coverage.
	home := plan.SiteSet{}
	if q.Home != "" {
		home = plan.NewSiteSet(q.Home)
	}
	// A query exposing no attributes (e.g. bare COUNT(*)) still reveals
	// information; with no attribute to anchor the policy match we stay
	// conservative and allow nothing beyond the home location.
	if len(q.OutAttrs) == 0 {
		return home
	}
	exprs := ev.Policies.ForDB(q.DB)
	// L_a per output attribute (line 1).
	locs := make([]plan.SiteSet, len(q.OutAttrs))
	var eta int64

	for _, e := range exprs {
		// Line 2: A_q ∩ A_e ≠ ∅ (attribute-wise, scoped to e's tables).
		overlap := false
		for _, a := range q.OutAttrs {
			if e.Covers(a.Attr) {
				overlap = true
				break
			}
		}
		if !overlap {
			continue
		}
		// Line 3: P_q ⇒ P_e.
		if !expr.ImpliesMode(q.Pred, e.Where, ev.Mode) {
			continue
		}
		eta++ // the expression is "considered" (line 4 reached)

		switch {
		case !e.IsAggregate():
			// Cases 1 & 2 (lines 4–5): basic expression. Raw cells are
			// allowed, so both raw and aggregated uses of the attribute
			// are covered.
			for i, a := range q.OutAttrs {
				if e.Covers(a.Attr) {
					locs[i] = locs[i].Union(plan.NewSiteSet(e.Destinations(ev.AllLocations)...))
				}
			}
		case q.Aggregated:
			// Case 3 (lines 6–10): aggregate expression and aggregate
			// query. G_q ⊆ G_e, scoped to the expression's table (this
			// includes the empty subset).
			if !groupBySubset(q.GroupBy, e) {
				continue
			}
			for i, a := range q.OutAttrs {
				if !e.OwnsTable(a.Table) {
					continue
				}
				switch {
				case !a.HasAgg && e.InGroupBy(a.Attr):
					// Grouping attributes are implicitly shippable.
					locs[i] = locs[i].Union(plan.NewSiteSet(e.Destinations(ev.AllLocations)...))
				case a.HasAgg && e.Covers(a.Attr) && e.AllowsFn(a.Agg):
					locs[i] = locs[i].Union(plan.NewSiteSet(e.Destinations(ev.AllLocations)...))
				}
			}
		}
		// Aggregate expression with a non-aggregating query contributes
		// nothing: raw cells may not leave.
	}
	ev.eta.Add(eta)
	if st != nil {
		st.Eta += eta
	}

	// Line 11: every output attribute must have at least one legal
	// destination; the result is the intersection (plus home).
	out := locs[0]
	for _, s := range locs[1:] {
		if out.Empty() {
			break
		}
		out = out.Intersect(s)
	}
	return out.Union(home)
}

// groupBySubset checks G_q ⊆ G_e for grouping attributes that belong to
// the expression's tables. Attributes of other tables are governed by
// their own tables' expressions (they appear in A_q and accumulate their
// own location sets).
func groupBySubset(groupBy []Attr, e *Expression) bool {
	for _, g := range groupBy {
		if e.OwnsTable(g.Table) && !e.InGroupBy(g) {
			return false
		}
	}
	return true
}

// EvaluateSubtree describes a plan subtree and, when it is a local query,
// evaluates the policies against it. ok is false when the subtree is not
// a local query (AR4 does not apply).
func (ev *Evaluator) EvaluateSubtree(n *plan.Node) (plan.SiteSet, bool) {
	return ev.EvaluateSubtreeWith(n, nil)
}

// EvaluateSubtreeWith is EvaluateSubtree with per-caller stats.
func (ev *Evaluator) EvaluateSubtreeWith(n *plan.Node, st *EvalStats) (plan.SiteSet, bool) {
	q, ok := Describe(n)
	if !ok {
		return plan.SiteSet{}, false
	}
	return ev.EvaluateWith(q, st), true
}
