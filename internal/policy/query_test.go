package policy

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// CarCo schema from Section 2.
func carcoTables() (c, o, s *schema.Table) {
	c = schema.NewTable("Customer", "db-n", "N", 1000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
		schema.Column{Name: "mktseg", Type: expr.TString},
		schema.Column{Name: "region", Type: expr.TString},
	)
	o = schema.NewTable("Orders", "db-e", "E", 10000,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	)
	s = schema.NewTable("Supply", "db-a", "A", 40000,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
		schema.Column{Name: "extprice", Type: expr.TFloat},
	)
	return
}

func TestDescribeScan(t *testing.T) {
	c, _, _ := carcoTables()
	q, ok := Describe(plan.NewScan(c, "C", -1))
	if !ok {
		t.Fatal("scan should be a local query")
	}
	if q.DB != "db-n" || q.Home != "N" {
		t.Errorf("db/home: %s %s", q.DB, q.Home)
	}
	if len(q.OutAttrs) != 5 || q.OutAttrs[0].Key() != "customer.custkey" {
		t.Errorf("attrs: %v", q.OutAttrs)
	}
	if q.Aggregated || q.Pred != nil {
		t.Error("plain scan has no pred/agg")
	}
}

func TestDescribeProjectFilter(t *testing.T) {
	c, _, _ := carcoTables()
	scan := plan.NewScan(c, "C", -1)
	f := plan.NewFilter(scan, expr.NewCmp(expr.EQ, expr.NewCol("C", "mktseg"), expr.NewConst(expr.NewString("commercial"))))
	p := plan.NewProject(f, []plan.NamedExpr{
		{E: expr.NewCol("C", "custkey")},
		{E: expr.NewCol("C", "name")},
	})
	q, ok := Describe(p)
	if !ok {
		t.Fatal("should be local")
	}
	// custkey, name from projection + mktseg from predicate.
	if len(q.OutAttrs) != 3 {
		t.Fatalf("attrs: %v", q.OutAttrs)
	}
	keys := map[string]bool{}
	for _, a := range q.OutAttrs {
		keys[a.Key()] = true
	}
	for _, want := range []string{"customer.custkey", "customer.name", "customer.mktseg"} {
		if !keys[want] {
			t.Errorf("missing attr %s in %v", want, q.OutAttrs)
		}
	}
	// Predicate is canonicalized to the base table name.
	if q.Pred.String() != "customer.mktseg = 'commercial'" {
		t.Errorf("pred: %s", q.Pred)
	}
}

func TestDescribeAggregate(t *testing.T) {
	_, _, s := carcoTables()
	scan := plan.NewScan(s, "S", -1)
	agg := plan.NewAggregate(scan,
		[]*expr.Col{expr.NewCol("S", "ordkey")},
		[]plan.NamedAgg{
			{Fn: expr.AggSum, Arg: expr.NewCol("S", "quantity"), Name: "sq"},
			{Fn: expr.AggSum, Arg: expr.NewArith(expr.Mul, expr.NewCol("S", "extprice"), expr.NewArith(expr.Sub, expr.NewConst(expr.NewInt(1)), expr.NewCol("S", "quantity"))), Name: "rev"},
		})
	q, ok := Describe(agg)
	if !ok {
		t.Fatal("should be local")
	}
	if !q.Aggregated {
		t.Error("aggregated flag")
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Key() != "supply.ordkey" {
		t.Errorf("group by: %v", q.GroupBy)
	}
	// ordkey raw + quantity#SUM + extprice#SUM (from the compound arg,
	// quantity appears both raw-grouped and summed inside rev).
	keys := map[string]bool{}
	for _, a := range q.OutAttrs {
		keys[a.Key()] = true
	}
	for _, want := range []string{"supply.ordkey", "supply.quantity#SUM", "supply.extprice#SUM"} {
		if !keys[want] {
			t.Errorf("missing %s in %v", want, keys)
		}
	}
}

func TestDescribeReaggregation(t *testing.T) {
	_, _, s := carcoTables()
	scan := plan.NewScan(s, "S", -1)
	partial := plan.NewAggregate(scan,
		[]*expr.Col{expr.NewCol("S", "ordkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("S", "quantity"), Name: "psum"}})
	final := plan.NewAggregate(partial, nil,
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("", "psum"), Name: "total"}})
	q, ok := Describe(final)
	if !ok {
		t.Fatal("sum over sum should describe")
	}
	found := false
	for _, a := range q.OutAttrs {
		if a.Key() == "supply.quantity#SUM" {
			found = true
		}
	}
	if !found {
		t.Errorf("SUM∘SUM should collapse to SUM: %v", q.OutAttrs)
	}
	// AVG over SUM is not decomposable: not describable.
	bad := plan.NewAggregate(partial, nil,
		[]plan.NamedAgg{{Fn: expr.AggAvg, Arg: expr.NewCol("", "psum"), Name: "a"}})
	if _, ok := Describe(bad); ok {
		t.Error("AVG over SUM must fail")
	}
	// Grouping by an aggregated column is not describable.
	bad2 := plan.NewAggregate(partial, []*expr.Col{expr.NewCol("", "psum")}, nil)
	if _, ok := Describe(bad2); ok {
		t.Error("group by aggregate must fail")
	}
}

func TestDescribeSameDBJoin(t *testing.T) {
	c, _, _ := carcoTables()
	o2 := schema.NewTable("Orders2", "db-n", "N", 500,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "price", Type: expr.TFloat},
	)
	j := plan.NewJoin(plan.NewScan(c, "C", -1), plan.NewScan(o2, "O", -1),
		expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	q, ok := Describe(j)
	if !ok {
		t.Fatal("same-DB join should describe")
	}
	if q.DB != "db-n" || q.Home != "N" {
		t.Errorf("db/home: %s %s", q.DB, q.Home)
	}
	if q.Pred.String() != "customer.custkey = orders2.custkey" {
		t.Errorf("join pred: %s", q.Pred)
	}
}

func TestDescribeCrossDBJoinFails(t *testing.T) {
	c, o, _ := carcoTables()
	j := plan.NewJoin(plan.NewScan(c, "C", -1), plan.NewScan(o, "O", -1),
		expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	if _, ok := Describe(j); ok {
		t.Error("cross-DB join must not be a local query")
	}
}

func TestDescribeShipFails(t *testing.T) {
	c, _, _ := carcoTables()
	sh := plan.NewShip(plan.NewScan(c, "C", -1), "N", "E")
	if _, ok := Describe(sh); ok {
		t.Error("subtrees containing SHIP are not local queries")
	}
}

func TestDescribeFilterOverAggregateFails(t *testing.T) {
	_, o, _ := carcoTables()
	agg := plan.NewAggregate(plan.NewScan(o, "O", -1),
		[]*expr.Col{expr.NewCol("O", "custkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("O", "totprice"), Name: "total"}})
	// HAVING-style filter over the aggregate output.
	f := plan.NewFilter(agg, expr.NewCmp(expr.GT, expr.NewCol("", "total"), expr.NewConst(expr.NewFloat(100))))
	if _, ok := Describe(f); ok {
		t.Error("predicates over aggregated values are not describable")
	}
}

func TestDescribeSortLimitPassThrough(t *testing.T) {
	c, _, _ := carcoTables()
	n := plan.NewLimit(plan.NewSort(plan.NewScan(c, "C", -1), []plan.SortKey{{E: expr.NewCol("C", "name")}}), 10)
	q, ok := Describe(n)
	if !ok || len(q.OutAttrs) != 5 {
		t.Errorf("sort/limit pass-through: %v %v", q, ok)
	}
}

func TestDescribeFragmentUnion(t *testing.T) {
	frag := &schema.Table{
		Name:    "Sales",
		Columns: []schema.Column{{Name: "amt", Type: expr.TFloat}},
		Fragments: []schema.Fragment{
			{DB: "db-x", Location: "L1", RowCount: 10},
			{DB: "db-x", Location: "L2", RowCount: 10},
		},
	}
	u := plan.NewUnion(plan.NewScan(frag, "S", 0), plan.NewScan(frag, "S", 1))
	q, ok := Describe(u)
	if !ok {
		t.Fatal("same-DB fragment union should describe")
	}
	if q.Home != "" {
		t.Errorf("differing fragment locations clear home, got %q", q.Home)
	}
	// Whole-table scan of a fragmented table is not local.
	if _, ok := Describe(plan.NewScan(frag, "S", -1)); ok {
		t.Error("whole fragmented scan must fail")
	}
	// Union across databases fails.
	frag2 := &schema.Table{
		Name:    "Sales",
		Columns: []schema.Column{{Name: "amt", Type: expr.TFloat}},
		Fragments: []schema.Fragment{
			{DB: "db-x", Location: "L1", RowCount: 10},
			{DB: "db-y", Location: "L2", RowCount: 10},
		},
	}
	u2 := plan.NewUnion(plan.NewScan(frag2, "S", 0), plan.NewScan(frag2, "S", 1))
	if _, ok := Describe(u2); ok {
		t.Error("cross-DB union must fail")
	}
}

func TestDescribeDigestStability(t *testing.T) {
	c, _, _ := carcoTables()
	scan := plan.NewScan(c, "C", -1)
	q1, _ := Describe(scan)
	q2, _ := Describe(plan.NewScan(c, "C", -1))
	if q1.Digest() != q2.Digest() {
		t.Error("identical subtrees must share digests")
	}
	p := plan.NewProject(scan, []plan.NamedExpr{{E: expr.NewCol("C", "name")}})
	q3, _ := Describe(p)
	if q3.Digest() == q1.Digest() {
		t.Error("different queries must have different digests")
	}
}

func TestDescribeEndToEndEvaluation(t *testing.T) {
	// The compliant plan of Figure 1(b): masking projection on Customer.
	c, _, _ := carcoTables()
	cat := NewCatalog()
	cat.AddAll(
		MustParse("ship custkey, name, mktseg, region from Customer to *", "pn", "db-n"),
	)
	ev := NewEvaluator(cat, []string{"N", "E", "A"})

	full := plan.NewScan(c, "C", -1)
	if got, ok := ev.EvaluateSubtree(full); !ok || got.Key() != "N" {
		t.Errorf("full Customer: %v %v (acctbal blocks shipping)", got, ok)
	}
	masked := plan.NewProject(full, []plan.NamedExpr{
		{E: expr.NewCol("C", "custkey")},
		{E: expr.NewCol("C", "name")},
	})
	if got, ok := ev.EvaluateSubtree(masked); !ok || got.Key() != "A,E,N" {
		t.Errorf("masked Customer: %v %v", got, ok)
	}
}
