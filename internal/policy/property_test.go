package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Property-based tests for Algorithm 1. Expressions and query
// descriptors are generated from seeded math/rand streams, so a failure
// reports its seed and replays exactly.

var (
	propLocations = []string{"NA", "EU", "AS", "AF", "OC"}
	propTables    = []string{"customer", "orders", "lineitem"}
	propAttrs     = map[string][]string{
		"customer": {"custkey", "name", "acctbal", "mktseg"},
		"orders":   {"orderkey", "custkey", "totprice", "odate"},
		"lineitem": {"orderkey", "qty", "price", "discount"},
	}
	propAggs = []expr.AggFn{expr.AggSum, expr.AggMin, expr.AggMax, expr.AggCount, expr.AggAvg}
)

func randSubset(rng *rand.Rand, pool []string) []string {
	var out []string
	for _, s := range pool {
		if rng.Intn(2) == 0 {
			out = append(out, s)
		}
	}
	return out
}

func randExpression(rng *rand.Rand, id int) *Expression {
	table := propTables[rng.Intn(len(propTables))]
	e := &Expression{
		ID:     fmt.Sprintf("p%d", id),
		DB:     "db-test",
		Tables: []string{table},
	}
	if rng.Intn(4) == 0 {
		e.AllAttrs = true
	} else {
		for _, a := range randSubset(rng, propAttrs[table]) {
			e.Attrs = append(e.Attrs, Attr{Table: table, Name: a})
		}
	}
	if rng.Intn(3) == 0 { // aggregate expression
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			e.AggFns = append(e.AggFns, propAggs[rng.Intn(len(propAggs))])
		}
		for _, a := range randSubset(rng, propAttrs[table]) {
			e.GroupBy = append(e.GroupBy, Attr{Table: table, Name: a})
		}
	}
	if rng.Intn(4) == 0 {
		e.ToAll = true
	} else {
		e.To = randSubset(rng, propLocations)
	}
	return e
}

func randQuery(rng *rand.Rand) *Query {
	q := &Query{
		DB:   "db-test",
		Home: propLocations[rng.Intn(len(propLocations))],
	}
	aggregated := rng.Intn(2) == 0
	q.Aggregated = aggregated
	nOut := 1 + rng.Intn(4)
	for i := 0; i < nOut; i++ {
		table := propTables[rng.Intn(len(propTables))]
		names := propAttrs[table]
		a := Attr{Table: table, Name: names[rng.Intn(len(names))]}
		oa := OutAttr{Attr: a}
		if aggregated && rng.Intn(2) == 0 {
			oa.HasAgg = true
			oa.Agg = propAggs[rng.Intn(len(propAggs))]
		}
		q.OutAttrs = append(q.OutAttrs, oa)
	}
	if aggregated {
		// Non-aggregated output attributes double as grouping attributes
		// (mirrors how Describe builds descriptors from plans).
		for _, oa := range q.OutAttrs {
			if !oa.HasAgg {
				q.GroupBy = append(q.GroupBy, oa.Attr)
			}
		}
	}
	return q
}

func evalWith(exprs []*Expression, q *Query) plan.SiteSet {
	cat := NewCatalog()
	cat.AddAll(exprs...)
	return NewEvaluator(cat, propLocations).Evaluate(q)
}

// TestPropertyEvaluateSoundness: for any policy set and any query, every
// legal destination is either the query's home location or was granted
// by at least one expression's TO clause. The evaluator must never
// invent a destination no policy mentions.
func TestPropertyEvaluateSoundness(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var exprs []*Expression
		for i, n := 0, rng.Intn(6); i < n; i++ {
			exprs = append(exprs, randExpression(rng, i))
		}
		granted := map[string]bool{}
		for _, e := range exprs {
			for _, l := range e.Destinations(propLocations) {
				granted[l] = true
			}
		}
		for qi := 0; qi < 25; qi++ {
			q := randQuery(rng)
			res := evalWith(exprs, q)
			for _, loc := range res.Slice() {
				if loc != q.Home && !granted[loc] {
					t.Fatalf("seed %d query %d: destination %q allowed but no policy grants it (home %q, %d exprs)",
						seed, qi, loc, q.Home, len(exprs))
				}
			}
			if q.Home != "" && !res.Contains(q.Home) {
				t.Fatalf("seed %d query %d: home %q missing from result %v", seed, qi, q.Home, res.Slice())
			}
		}
	}
}

// TestPropertyEvaluateMonotone: policies only ever grant. Removing any
// single expression from the set can shrink the legal destinations but
// never grow them — i.e. Evaluate is monotone in the policy set.
func TestPropertyEvaluateMonotone(t *testing.T) {
	for seed := int64(100); seed < 125; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var exprs []*Expression
		for i, n := 0, 2+rng.Intn(5); i < n; i++ {
			exprs = append(exprs, randExpression(rng, i))
		}
		for qi := 0; qi < 15; qi++ {
			q := randQuery(rng)
			full := evalWith(exprs, q)
			for drop := range exprs {
				reduced := make([]*Expression, 0, len(exprs)-1)
				reduced = append(reduced, exprs[:drop]...)
				reduced = append(reduced, exprs[drop+1:]...)
				sub := evalWith(reduced, q)
				if !full.SupersetOf(sub) {
					t.Fatalf("seed %d query %d: dropping %s GREW the result: %v -> %v",
						seed, qi, exprs[drop].ID, full.Slice(), sub.Slice())
				}
			}
		}
	}
}

// TestPropertyEvaluateDeterministic: the result depends only on the
// descriptor, not on catalog insertion order or evaluator instance.
func TestPropertyEvaluateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var exprs []*Expression
	for i := 0; i < 6; i++ {
		exprs = append(exprs, randExpression(rng, i))
	}
	reversed := make([]*Expression, len(exprs))
	for i, e := range exprs {
		reversed[len(exprs)-1-i] = e
	}
	for qi := 0; qi < 30; qi++ {
		q := randQuery(rng)
		a, b := evalWith(exprs, q), evalWith(reversed, q)
		if !a.Equal(b) {
			t.Fatalf("query %d: insertion order changed the result: %v vs %v", qi, a.Slice(), b.Slice())
		}
	}
}
