package policy

import (
	"strings"
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// Footnote 4 of the paper: a policy expression may range over more than
// one base table, with the join predicate in its WHERE clause.

func multiTableExpr(t *testing.T) *Expression {
	t.Helper()
	e, err := Parse(
		"ship c.custkey, c.name, o.totprice from db-1.customer c, db-1.orders o to L4 where c.custkey = o.custkey",
		"m1", "")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMultiTableParse(t *testing.T) {
	e := multiTableExpr(t)
	if len(e.Tables) != 2 || e.Tables[0] != "customer" || e.Tables[1] != "orders" {
		t.Fatalf("tables: %v", e.Tables)
	}
	if !e.Covers(Attr{Table: "customer", Name: "custkey"}) ||
		!e.Covers(Attr{Table: "orders", Name: "totprice"}) {
		t.Error("qualified attr coverage")
	}
	if e.Covers(Attr{Table: "orders", Name: "custkey"}) {
		t.Error("o.custkey is not shipped")
	}
	// The predicate is canonicalized to base-table names.
	if got := e.Where.String(); got != "customer.custkey = orders.custkey" {
		t.Errorf("canonical pred: %s", got)
	}
	// Rendering qualifies attributes.
	if s := e.String(); !strings.Contains(s, "customer.custkey") || !strings.Contains(s, "db-1.customer, db-1.orders") {
		t.Errorf("String: %s", s)
	}
}

func TestMultiTableParseErrors(t *testing.T) {
	bad := []struct{ src, why string }{
		{"ship custkey from customer c, orders o to L4 where c.custkey = o.custkey", "unqualified attr"},
		{"ship c.custkey, o.totprice from customer c, orders o to L4", "missing join predicate"},
		{"ship * from customer c, orders o to L4 where c.custkey = o.custkey", "star with multi-table"},
		{"ship x.custkey from customer c, orders o to L4 where c.custkey = o.custkey", "unknown alias"},
		{"ship c.custkey from customer c, orders o to L4 where custkey = o.custkey", "unqualified pred column"},
		{"ship c.a from db-1.customer c, db-2.orders o to L4 where c.a = o.a", "cross-database"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src, "x", "db-1"); err == nil {
			t.Errorf("%s: expected error for %q", c.why, c.src)
		}
	}
	// Denials must stay single-table.
	if _, err := ParseDenial("deny c.a from customer c, orders o to *", "db-1"); err == nil {
		t.Error("multi-table denial must fail")
	}
}

func TestMultiTableEvaluation(t *testing.T) {
	cat := NewCatalog()
	cat.Add(multiTableExpr(t))
	ev := NewEvaluator(cat, []string{"L1", "L4"})

	ck := Attr{Table: "customer", Name: "custkey"}
	ok := Attr{Table: "orders", Name: "custkey"}
	tp := Attr{Table: "orders", Name: "totprice"}
	joinPred := expr.NewCmp(expr.EQ,
		expr.NewCol("customer", "custkey"), expr.NewCol("orders", "custkey"))

	// The joined view with the join predicate ships to L4. Note the join
	// predicate exposes orders.custkey too, which the expression does not
	// ship — so the strict evaluation fails unless it is covered; extend
	// the scenario to mirror Algorithm 1 exactly.
	q := &Query{
		DB:       "db-1",
		OutAttrs: []OutAttr{{Attr: ck}, {Attr: tp}, {Attr: ok}},
		Pred:     joinPred,
	}
	if got := ev.Evaluate(q); !got.Empty() {
		t.Errorf("o.custkey uncovered: %s", got)
	}
	// Add a single-table grant for the join key; now the view ships.
	cat.Add(MustParse("ship custkey from orders to L4", "m2", "db-1"))
	ev2 := NewEvaluator(cat, []string{"L1", "L4"})
	if got := ev2.Evaluate(q); got.Key() != "L4" {
		t.Errorf("joined view: %s", got)
	}
	// Without the join predicate the implication fails: a plain customer
	// query is NOT covered by the join-scoped grant.
	q2 := &Query{DB: "db-1", OutAttrs: []OutAttr{{Attr: ck}}}
	if got := ev2.Evaluate(q2); !got.Empty() {
		t.Errorf("plain customer query must not inherit the joined grant: %s", got)
	}
}

func TestMultiTableThroughDescribe(t *testing.T) {
	// End to end: a same-database join subtree picks up the multi-table
	// grant via Describe + Evaluate.
	cust := schema.NewTable("customer", "db-1", "L1", 100,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString})
	ord := schema.NewTable("orders", "db-1", "L1", 500,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat})

	cat := NewCatalog()
	cat.Add(multiTableExpr(t))
	cat.Add(MustParse("ship custkey from orders to L4", "m2", "db-1"))
	ev := NewEvaluator(cat, []string{"L1", "L4"})

	join := plan.NewJoin(
		plan.NewScan(cust, "c", -1),
		plan.NewScan(ord, "o", -1),
		expr.NewCmp(expr.EQ, expr.NewCol("c", "custkey"), expr.NewCol("o", "custkey")))
	got, ok := ev.EvaluateSubtree(join)
	if !ok {
		t.Fatal("join should describe")
	}
	if got.Key() != "L1,L4" { // L4 via the grants, L1 is home
		t.Errorf("𝒜(join) = %s", got)
	}
}
