package policy

import (
	"testing"

	"cgdqp/internal/expr"
)

// --- Table 1 reproduction (Section 5) ---------------------------------
//
// Expressions over T(A, B, C, D, E, F, G) in database "d":
//
//	e1 ≡ ship A, B, C from T to l2, l3
//	e2 ≡ ship A, B from T to l1, l2, l3, l4
//	e3 ≡ ship A, D from T to l1, l3 where B > 10
//	e4 ≡ ship F, G as aggregates sum, avg from T to l1, l2 group by E, C
//
// Queries:
//
//	q1 ≡ Π_{A,C,D}(σ_{B>15}(T))   → 𝒜 = {l3}
//	q2 ≡ _C G_{sum(F*(1-G))}(T)   → 𝒜 = {l1, l2}

func table1Catalog() *Catalog {
	cat := NewCatalog()
	cat.AddAll(
		MustParse("ship A, B, C from T to l2, l3", "e1", "d"),
		MustParse("ship A, B from T to l1, l2, l3, l4", "e2", "d"),
		MustParse("ship A, D from T to l1, l3 where B > 10", "e3", "d"),
		MustParse("ship F, G as aggregates sum, avg from T to l1, l2 group by E, C", "e4", "d"),
	)
	return cat
}

var table1Locs = []string{"l1", "l2", "l3", "l4"}

func attr(name string) Attr { return Attr{Table: "t", Name: name} }

func rawOut(names ...string) []OutAttr {
	out := make([]OutAttr, len(names))
	for i, n := range names {
		out[i] = OutAttr{Attr: attr(n)}
	}
	return out
}

func tcol(name string) *expr.Col { return expr.NewCol("t", name) }

func TestTable1Query1(t *testing.T) {
	ev := NewEvaluator(table1Catalog(), table1Locs)
	q1 := &Query{
		DB:       "d",
		OutAttrs: append(rawOut("a", "c", "d"), OutAttr{Attr: attr("b")}), // B accessed by the predicate
		Pred:     expr.NewCmp(expr.GT, tcol("b"), expr.NewConst(expr.NewInt(15))),
	}
	got := ev.Evaluate(q1)
	if got.Key() != "l3" {
		t.Errorf("𝒜(q1) = %s, want {l3}", got)
	}
}

func TestTable1Query2(t *testing.T) {
	ev := NewEvaluator(table1Catalog(), table1Locs)
	q2 := &Query{
		DB: "d",
		OutAttrs: []OutAttr{
			{Attr: attr("c")},
			{Attr: attr("f"), Agg: expr.AggSum, HasAgg: true},
			{Attr: attr("g"), Agg: expr.AggSum, HasAgg: true},
		},
		GroupBy:    []Attr{attr("c")},
		Aggregated: true,
	}
	got := ev.Evaluate(q2)
	if got.Key() != "l1,l2" {
		t.Errorf("𝒜(q2) = %s, want {l1, l2}", got)
	}
}

func TestTable1PerAttributeSets(t *testing.T) {
	// Verify the per-attribute L_a evolution indirectly: a query exposing
	// only A gets the union of e1, e2 and e3 destinations.
	ev := NewEvaluator(table1Catalog(), table1Locs)
	q := &Query{DB: "d", OutAttrs: rawOut("a"),
		Pred: expr.NewCmp(expr.GT, tcol("b"), expr.NewConst(expr.NewInt(15)))}
	// L_A from e1 {l2,l3} ∪ e2 {l1..l4} ∪ e3 {l1,l3}; predicate exposes B:
	// L_B from e1 ∪ e2 = {l1..l4}. Intersection = {l1,l2,l3,l4}.
	if got := ev.Evaluate(q); got.Key() != "l1,l2,l3,l4" {
		t.Errorf("𝒜 = %s", got)
	}
}

func TestAggregateQueryBasicExpression(t *testing.T) {
	// Case 2 of Algorithm 1: aggregated use of an attribute is covered by
	// a basic expression (raw is "less aggregated").
	ev := NewEvaluator(table1Catalog(), table1Locs)
	q := &Query{
		DB:         "d",
		OutAttrs:   []OutAttr{{Attr: attr("c"), Agg: expr.AggSum, HasAgg: true}},
		Aggregated: true,
	}
	if got := ev.Evaluate(q); got.Key() != "l2,l3" {
		t.Errorf("sum(C) should inherit e1's destinations, got %s", got)
	}
}

func TestSelectionQueryAggregateExpressionGivesNothing(t *testing.T) {
	// Example 2: Π_acctbal(C) cannot be shipped when only an aggregate
	// expression covers acctbal.
	cat := NewCatalog()
	cat.Add(MustParse("ship acctbal as aggregates sum, avg from Customer to * group by mktseg, region", "p", "db-n"))
	ev := NewEvaluator(cat, []string{"N", "E", "A"})
	q := &Query{DB: "db-n", OutAttrs: []OutAttr{{Attr: Attr{Table: "customer", Name: "acctbal"}}}}
	if got := ev.Evaluate(q); !got.Empty() {
		t.Errorf("raw acctbal must not ship, got %s", got)
	}
}

func TestAggregateExpressionExample2(t *testing.T) {
	cat := NewCatalog()
	cat.Add(MustParse("ship acctbal as aggregates sum, avg from Customer to * group by mktseg, region", "p", "db-n"))
	ev := NewEvaluator(cat, []string{"N", "E", "A"})
	ca := Attr{Table: "customer", Name: "acctbal"}

	// G_sum(acctbal)(C): global aggregate, empty group-by ⊆ G_e.
	q := &Query{DB: "db-n", OutAttrs: []OutAttr{{Attr: ca, Agg: expr.AggSum, HasAgg: true}}, Aggregated: true}
	if got := ev.Evaluate(q); got.Key() != "A,E,N" {
		t.Errorf("global sum: %s", got)
	}
	// region G_avg(acctbal)(C): group by region allowed.
	q2 := &Query{DB: "db-n",
		OutAttrs:   []OutAttr{{Attr: Attr{Table: "customer", Name: "region"}}, {Attr: ca, Agg: expr.AggAvg, HasAgg: true}},
		GroupBy:    []Attr{{Table: "customer", Name: "region"}},
		Aggregated: true,
	}
	if got := ev.Evaluate(q2); got.Key() != "A,E,N" {
		t.Errorf("group by region: %s", got)
	}
	// G_sum(acctbal)(σ_name='abc'(C)): predicate exposes name (uncovered).
	q3 := &Query{DB: "db-n",
		OutAttrs: []OutAttr{
			{Attr: ca, Agg: expr.AggSum, HasAgg: true},
			{Attr: Attr{Table: "customer", Name: "name"}},
		},
		Pred:       expr.NewCmp(expr.EQ, expr.NewCol("customer", "name"), expr.NewConst(expr.NewString("abc"))),
		Aggregated: true,
	}
	if got := ev.Evaluate(q3); !got.Empty() {
		t.Errorf("filter on name must block shipping, got %s", got)
	}
	// MIN is not an allowed function.
	q4 := &Query{DB: "db-n", OutAttrs: []OutAttr{{Attr: ca, Agg: expr.AggMin, HasAgg: true}}, Aggregated: true}
	if got := ev.Evaluate(q4); !got.Empty() {
		t.Errorf("min(acctbal) not allowed, got %s", got)
	}
	// Grouping by an attribute outside G_e fails the G_q ⊆ G_e check.
	q5 := &Query{DB: "db-n",
		OutAttrs:   []OutAttr{{Attr: Attr{Table: "customer", Name: "name"}}, {Attr: ca, Agg: expr.AggSum, HasAgg: true}},
		GroupBy:    []Attr{{Table: "customer", Name: "name"}},
		Aggregated: true,
	}
	if got := ev.Evaluate(q5); !got.Empty() {
		t.Errorf("group by name not allowed, got %s", got)
	}
}

func TestCarCoSection3Examples(t *testing.T) {
	// P_N from Example 1 plus home-location semantics from Section 3.2.
	cat := NewCatalog()
	cat.AddAll(
		MustParse("ship custkey, name from Customer C to Asia, Europe", "n1", "db-n"),
		MustParse("ship mktseg, region from Customer C to Europe where mktseg = 'commercial'", "n2", "db-n"),
	)
	ev := NewEvaluator(cat, []string{"NorthAmerica", "Europe", "Asia"})
	ck := Attr{Table: "customer", Name: "custkey"}
	nm := Attr{Table: "customer", Name: "name"}

	// Π_{c,n}(C) → {N, A, E}.
	q := &Query{DB: "db-n", Home: "NorthAmerica", OutAttrs: []OutAttr{{Attr: ck}, {Attr: nm}}}
	if got := ev.Evaluate(q); got.Key() != "Asia,Europe,NorthAmerica" {
		t.Errorf("Π_{c,n}(C): %s", got)
	}
	// Π_n(σ_{acctbal=100}(C)) → {N} (the predicate exposes acctbal).
	q2 := &Query{DB: "db-n", Home: "NorthAmerica",
		OutAttrs: []OutAttr{{Attr: nm}, {Attr: Attr{Table: "customer", Name: "acctbal"}}},
		Pred:     expr.NewCmp(expr.EQ, expr.NewCol("customer", "acctbal"), expr.NewConst(expr.NewInt(100))),
	}
	if got := ev.Evaluate(q2); got.Key() != "NorthAmerica" {
		t.Errorf("Π_n(σ_a=100(C)): %s", got)
	}
	// Example 1's third query: mktseg predicate routes to Europe only.
	q3 := &Query{DB: "db-n", Home: "NorthAmerica",
		OutAttrs: []OutAttr{
			{Attr: ck}, {Attr: nm}, {Attr: Attr{Table: "customer", Name: "region"}},
			{Attr: Attr{Table: "customer", Name: "mktseg"}},
		},
		Pred: expr.NewAnd(
			expr.NewLike(expr.NewCol("customer", "name"), "A%"),
			expr.NewCmp(expr.EQ, expr.NewCol("customer", "mktseg"), expr.NewConst(expr.NewString("commercial")))),
	}
	if got := ev.Evaluate(q3); got.Key() != "Europe,NorthAmerica" {
		t.Errorf("commercial query: %s", got)
	}
}

func TestEvaluatorCacheAndEta(t *testing.T) {
	ev := NewEvaluator(table1Catalog(), table1Locs)
	q := &Query{DB: "d", OutAttrs: rawOut("a")}
	var st EvalStats
	first := ev.EvaluateWith(q, &st)
	eta := ev.Eta()
	if eta == 0 {
		t.Fatal("η should count considered expressions")
	}
	if st.Eta != eta || st.Calls != 1 {
		t.Errorf("per-caller stats diverge: %+v vs eta=%d", st, eta)
	}
	second := ev.EvaluateWith(q, &st)
	if !first.Equal(second) {
		t.Error("cache changed result")
	}
	if ev.Eta() != eta {
		t.Error("cache hit must not grow η")
	}
	if ev.Hits() != 1 || ev.Calls() != 2 {
		t.Errorf("stats: hits=%d calls=%d", ev.Hits(), ev.Calls())
	}
	if st.Hits != 1 || st.Calls != 2 {
		t.Errorf("per-caller stats: %+v", st)
	}
	ev.ResetStats()
	if ev.Eta() != 0 || ev.Calls() != 0 {
		t.Error("ResetStats")
	}
	epoch := ev.Epoch()
	ev.ResetCache()
	if ev.Epoch() == epoch {
		t.Error("ResetCache must bump the epoch")
	}
	ev.Evaluate(q)
	if ev.Eta() == 0 {
		t.Error("after cache reset, η grows again")
	}
}

func TestEvaluateUnknownDBAndEmptyAttrs(t *testing.T) {
	ev := NewEvaluator(table1Catalog(), table1Locs)
	// No policies for this DB: nothing ships (conservative default).
	q := &Query{DB: "other", OutAttrs: rawOut("a")}
	if got := ev.Evaluate(q); !got.Empty() {
		t.Errorf("unknown DB: %s", got)
	}
	// Bare COUNT(*): only home.
	q2 := &Query{DB: "d", Home: "l1", Aggregated: true}
	if got := ev.Evaluate(q2); got.Key() != "l1" {
		t.Errorf("COUNT(*): %s", got)
	}
}

func TestSyntacticModeIsStricter(t *testing.T) {
	cat := table1Catalog()
	q := &Query{
		DB:       "d",
		OutAttrs: append(rawOut("d"), OutAttr{Attr: attr("b")}),
		Pred:     expr.NewCmp(expr.GT, tcol("b"), expr.NewConst(expr.NewInt(15))),
	}
	full := NewEvaluator(cat, table1Locs)
	if got := full.Evaluate(q); got.Empty() {
		t.Fatalf("full mode should allow D via e3: %s", got)
	}
	strict := NewEvaluator(cat, table1Locs)
	strict.Mode = expr.ImplicationSyntactic
	// B > 15 no longer implies B > 10 syntactically, so e3 is skipped.
	if got := strict.Evaluate(q); !got.Empty() {
		t.Errorf("syntactic mode should reject e3: %s", got)
	}
}

func TestCatalogBasics(t *testing.T) {
	cat := table1Catalog()
	if cat.Len() != 4 {
		t.Errorf("Len = %d", cat.Len())
	}
	if len(cat.ForDB("d")) != 4 || len(cat.ForDB("D")) != 4 {
		t.Error("ForDB case-insensitivity")
	}
	if len(cat.ForDB("x")) != 0 {
		t.Error("unknown DB")
	}
	if dbs := cat.Databases(); len(dbs) != 1 || dbs[0] != "d" {
		t.Errorf("Databases: %v", dbs)
	}
	fp1 := cat.Fingerprint()
	cat.Add(MustParse("ship E from T to l1", "e5", "d"))
	if cat.Fingerprint() == fp1 {
		t.Error("fingerprint must change")
	}
}

func TestExpressionAccessorsAndString(t *testing.T) {
	e := MustParse("ship F, G as aggregates sum, avg from T to l1, l2 group by E, C", "e4", "d")
	ta := func(n string) Attr { return Attr{Table: "t", Name: n} }
	if !e.IsAggregate() || !e.Covers(ta("f")) || e.Covers(ta("e")) {
		t.Error("attr coverage")
	}
	if !e.InGroupBy(ta("e")) || e.InGroupBy(ta("f")) {
		t.Error("group-by coverage")
	}
	if !e.AllowsFn(expr.AggSum) || e.AllowsFn(expr.AggCount) {
		t.Error("fn coverage")
	}
	s := e.String()
	if s != "ship f, g as aggregates sum, avg from d.t to l1, l2 group by e, c" {
		t.Errorf("String: %q", s)
	}
	star := MustParse("ship * from T to *", "s", "d")
	if !star.Covers(ta("anything")) {
		t.Error("star coverage")
	}
	if star.Covers(Attr{Table: "other", Name: "x"}) {
		t.Error("star coverage is table-scoped")
	}
	if got := star.Destinations([]string{"x", "y"}); len(got) != 2 {
		t.Errorf("star destinations: %v", got)
	}
	if got := e.Destinations([]string{"x"}); len(got) != 2 || got[0] != "l1" {
		t.Errorf("explicit destinations: %v", got)
	}
}

func TestFromStmtValidation(t *testing.T) {
	if _, err := Parse("ship a from t to *", "x", ""); err == nil {
		t.Error("missing database must fail")
	}
	if _, err := Parse("ship a from db-1.t to *", "x", "db-2"); err == nil {
		t.Error("conflicting database must fail")
	}
	if e, err := Parse("ship a from db-1.t to *", "x", ""); err != nil || e.DB != "db-1" {
		t.Errorf("db from qualifier: %v %v", e, err)
	}
	if e, err := Parse("ship a from db-1.t to *", "x", "DB-1"); err != nil || e.DB != "db-1" {
		t.Errorf("case-insensitive db match: %v %v", e, err)
	}
}
