// Package policy implements dataflow policies (Section 3.1), policy
// expressions (Section 4) and the policy evaluation algorithm 𝒜
// (Algorithm 1, Section 5): given a local query over a database D and the
// set of policy expressions attached to D, the evaluator computes the set
// of locations to which the query's output may legally be shipped.
package policy

import (
	"fmt"
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/sqlparse"
)

// Expression is one policy expression ⟨𝒟, L_𝒟⟩. Basic expressions
// (Section 4.1) allow shipping raw cells; aggregate expressions
// (Section 4.2) allow shipping aggregated cells only. Following the
// paper's footnote 4, an expression may range over several base tables
// of one database, in which case its predicate must contain the join
// predicate. Attribute and table names are stored lowercase; predicates
// are canonicalized so that every column is qualified with the
// (lowercase) base table name.
type Expression struct {
	ID       string
	DB       string   // owning database
	Tables   []string // base tables the expression covers (len ≥ 1)
	AllAttrs bool     // ship *
	Attrs    []Attr
	AggFns   []expr.AggFn // non-empty for aggregate expressions (F_e)
	GroupBy  []Attr       // allowed grouping attributes (G_e)
	Where    expr.Expr    // predicate P_e (nil = TRUE)
	ToAll    bool         // to *
	To       []string     // legal destinations L_e
}

// Table returns the expression's first (usually only) base table.
func (e *Expression) Table() string {
	if len(e.Tables) == 0 {
		return ""
	}
	return e.Tables[0]
}

// OwnsTable reports whether the expression ranges over the base table.
func (e *Expression) OwnsTable(table string) bool {
	for _, t := range e.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// IsAggregate reports whether this is an aggregate expression.
func (e *Expression) IsAggregate() bool { return len(e.AggFns) > 0 }

// Covers reports whether the base attribute is in the expression's ship
// list A_e.
func (e *Expression) Covers(a Attr) bool {
	if !e.OwnsTable(a.Table) {
		return false
	}
	if e.AllAttrs {
		return true
	}
	for _, x := range e.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// InGroupBy reports whether the base attribute is in G_e.
func (e *Expression) InGroupBy(a Attr) bool {
	for _, x := range e.GroupBy {
		if x == a {
			return true
		}
	}
	return false
}

// AllowsFn reports whether the aggregate function is in F_e.
func (e *Expression) AllowsFn(fn expr.AggFn) bool {
	for _, f := range e.AggFns {
		if f == fn {
			return true
		}
	}
	return false
}

// Destinations expands the TO clause against the full location list.
func (e *Expression) Destinations(allLocations []string) []string {
	if e.ToAll {
		return append([]string(nil), allLocations...)
	}
	return e.To
}

// renderAttr renders an attribute, qualifying it only when the
// expression spans several tables.
func (e *Expression) renderAttr(a Attr) string {
	if len(e.Tables) > 1 {
		return a.Key()
	}
	return a.Name
}

// String renders the expression in its surface syntax.
func (e *Expression) String() string {
	var b strings.Builder
	b.WriteString("ship ")
	if e.AllAttrs {
		b.WriteString("*")
	} else {
		parts := make([]string, len(e.Attrs))
		for i, a := range e.Attrs {
			parts[i] = e.renderAttr(a)
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	if e.IsAggregate() {
		fns := make([]string, len(e.AggFns))
		for i, f := range e.AggFns {
			fns[i] = strings.ToLower(f.String())
		}
		b.WriteString(" as aggregates " + strings.Join(fns, ", "))
	}
	b.WriteString(" from ")
	tables := make([]string, len(e.Tables))
	for i, t := range e.Tables {
		if e.DB != "" {
			tables[i] = e.DB + "." + t
		} else {
			tables[i] = t
		}
	}
	b.WriteString(strings.Join(tables, ", "))
	b.WriteString(" to ")
	if e.ToAll {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(e.To, ", "))
	}
	if e.Where != nil {
		b.WriteString(" where " + e.Where.String())
	}
	if len(e.GroupBy) > 0 {
		parts := make([]string, len(e.GroupBy))
		for i, a := range e.GroupBy {
			parts[i] = e.renderAttr(a)
		}
		b.WriteString(" group by " + strings.Join(parts, ", "))
	}
	return b.String()
}

// FromStmt converts a parsed policy statement into an Expression owned by
// the given database. When the statement itself is database-qualified
// (db-4.lineitem) the qualifier must agree with db when db is non-empty.
func FromStmt(stmt *sqlparse.PolicyStmt, id, db string) (*Expression, error) {
	if stmt.Deny {
		return nil, fmt.Errorf("policy: negative expressions must be compiled first (see CompileDenials)")
	}
	if stmt.DB != "" {
		if db != "" && !strings.EqualFold(stmt.DB, db) {
			return nil, fmt.Errorf("policy: expression for %s.%s registered under database %s", stmt.DB, stmt.Table, db)
		}
		db = stmt.DB
	}
	if db == "" {
		return nil, fmt.Errorf("policy: expression over %s has no owning database", stmt.Table)
	}
	// Alias → base table resolution for attribute references.
	tables := make([]string, 0, len(stmt.Tables))
	byAlias := map[string]string{}
	for _, t := range stmt.Tables {
		tables = append(tables, t.Name)
		if t.Alias != "" {
			byAlias[t.Alias] = t.Name
		}
		byAlias[t.Name] = t.Name
	}
	if len(tables) == 0 {
		tables = []string{strings.ToLower(stmt.Table)}
		byAlias[tables[0]] = tables[0]
	}
	multi := len(tables) > 1
	if multi && stmt.AllAttrs {
		return nil, fmt.Errorf("policy: multi-table expressions require explicit (qualified) attributes")
	}
	if multi && stmt.Where == nil {
		return nil, fmt.Errorf("policy: multi-table expressions must carry the join predicate in WHERE (footnote 4)")
	}
	resolveAttr := func(raw string) (Attr, error) {
		if dot := strings.IndexByte(raw, '.'); dot >= 0 {
			base, ok := byAlias[raw[:dot]]
			if !ok {
				return Attr{}, fmt.Errorf("policy: unknown table alias %q in attribute %q", raw[:dot], raw)
			}
			return Attr{Table: base, Name: raw[dot+1:]}, nil
		}
		if multi {
			return Attr{}, fmt.Errorf("policy: attribute %q must be table-qualified in a multi-table expression", raw)
		}
		return Attr{Table: tables[0], Name: raw}, nil
	}

	e := &Expression{
		ID:       id,
		DB:       strings.ToLower(db),
		Tables:   tables,
		AllAttrs: stmt.AllAttrs,
		AggFns:   append([]expr.AggFn(nil), stmt.AggFns...),
		ToAll:    stmt.ToAll,
		To:       append([]string(nil), stmt.To...),
	}
	for _, raw := range stmt.Attrs {
		a, err := resolveAttr(raw)
		if err != nil {
			return nil, err
		}
		e.Attrs = append(e.Attrs, a)
	}
	for _, raw := range stmt.GroupBy {
		a, err := resolveAttr(raw)
		if err != nil {
			return nil, err
		}
		e.GroupBy = append(e.GroupBy, a)
	}
	if stmt.Where != nil {
		canon, err := canonicalizePolicyPred(stmt.Where, byAlias, multi, tables[0])
		if err != nil {
			return nil, err
		}
		e.Where = canon
	}
	return e, nil
}

// Parse parses policy expression text and converts it in one step.
func Parse(src, id, db string) (*Expression, error) {
	stmt, err := sqlparse.ParsePolicy(src)
	if err != nil {
		return nil, err
	}
	return FromStmt(stmt, id, db)
}

// MustParse parses a policy expression and panics on error; for tests and
// statically known policies.
func MustParse(src, id, db string) *Expression {
	e, err := Parse(src, id, db)
	if err != nil {
		panic(err)
	}
	return e
}

// CanonicalizePred rewrites a predicate so every column is qualified with
// the lowercase base table name and has a lowercase column name. This
// puts policy predicates and query predicates in the same namespace for
// the implication test.
func CanonicalizePred(p expr.Expr, table string) expr.Expr {
	if p == nil {
		return nil
	}
	canon, _ := canonicalizePolicyPred(p, map[string]string{}, false, strings.ToLower(table))
	return canon
}

// canonicalizePolicyPred maps aliases to base tables inside a policy
// predicate. In single-table mode unqualified (and unknown-qualifier)
// columns default to the table; in multi-table mode every column must
// resolve through the alias map.
func canonicalizePolicyPred(p expr.Expr, byAlias map[string]string, multi bool, defaultTable string) (expr.Expr, error) {
	var firstErr error
	out := expr.Transform(p, func(n expr.Expr) expr.Expr {
		c, ok := n.(*expr.Col)
		if !ok {
			return n
		}
		table := defaultTable
		if c.Table != "" {
			if base, found := byAlias[strings.ToLower(c.Table)]; found {
				table = base
			} else if multi {
				if firstErr == nil {
					firstErr = fmt.Errorf("policy: unknown table alias %q in predicate", c.Table)
				}
				return n
			}
		} else if multi {
			if firstErr == nil {
				firstErr = fmt.Errorf("policy: column %q must be table-qualified in a multi-table expression", c.Name)
			}
			return n
		}
		return &expr.Col{Table: table, Name: strings.ToLower(c.Name), Index: -1}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func lowerAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.ToLower(s)
	}
	return out
}
