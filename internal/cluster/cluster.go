// Package cluster simulates the geo-distributed deployment of Figure 2:
// one database gateway per location, a WAN between them priced by the
// message cost model, and a transfer ledger recording every cross-border
// shipment a query performs.
package cluster

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/schema"
	"cgdqp/internal/storage"
)

// Site is one location: a gateway to its local database.
type Site struct {
	Location string
	DB       *storage.DB
}

// Cluster is the set of sites plus the network between them. After
// construction and loading, a cluster is safe for concurrent reads: the
// site map is immutable, storage tables guard their rows with RWMutexes,
// and the ledger serializes transfer accounting — which is what lets the
// parallel executor run per-site plan fragments on separate goroutines.
type Cluster struct {
	sites  map[string]*Site
	Net    *network.CostModel
	Ledger *network.Ledger

	// wireDelay scales simulated WAN cost (milliseconds, per the message
	// cost model) into real wall-clock sleeps during execution. The
	// default 0 keeps shipping instantaneous, as before; set it before
	// executing (it is read concurrently by exchange producers).
	wireDelay float64

	// faults/retry drive the resilient shipping path (see ship.go):
	// nil faults means every send succeeds first try, as before. Both
	// are set before execution and read concurrently by producers.
	faults *network.FaultPlan
	retry  network.RetryPolicy
	// retries counts failed send attempts across all executions.
	retries atomic.Int64

	// obs receives shipping spans and per-edge metrics (see ship.go).
	// nil disables observation; set before execution like the fields
	// above (exchange producers read it without locks).
	obs *obs.Observer

	// cal receives wire-encoding and shipment samples from the
	// executors (see network.Calibrator). nil disables calibration;
	// set before execution like the fields above.
	cal *network.Calibrator

	// epochs tracks a per-table data epoch, bumped by every successful
	// load into any fragment of the table. Result-set caching keys its
	// validity on these: a cached result is reusable only while every
	// table it consumed still has the epoch observed before execution.
	epochMu sync.RWMutex
	epochs  map[string]uint64
}

// DataEpoch returns the current data epoch of a table
// (case-insensitive; 0 for a never-loaded table). Concurrency-safe.
func (c *Cluster) DataEpoch(table string) uint64 {
	c.epochMu.RLock()
	defer c.epochMu.RUnlock()
	return c.epochs[strings.ToLower(table)]
}

// SetCalibrator installs the cost-model calibrator shipping and the
// executors' wire encoders feed samples into (nil disables). Configure
// before execution starts.
func (c *Cluster) SetCalibrator(cal *network.Calibrator) { c.cal = cal }

// Calibrator returns the installed calibrator (nil = none).
func (c *Cluster) Calibrator() *network.Calibrator { return c.cal }

// SetObserver installs the observability sinks shipping reports into
// (nil disables). Configure before execution starts.
func (c *Cluster) SetObserver(o *obs.Observer) { c.obs = o }

// Observer returns the installed observer (nil = none).
func (c *Cluster) Observer() *obs.Observer { return c.obs }

// SetWireDelay makes SHIP transfers take wall-clock time: every shipment
// sleeps its modeled cost (ms) multiplied by scale. scale 0 disables the
// delay. Set it before execution starts; the geo-distributed benchmarks
// use it so that overlapping transfers (what a parallel executor buys)
// shows up in measured time, not just in the ledger.
func (c *Cluster) SetWireDelay(scale float64) { c.wireDelay = scale }

// WireDelay returns the current wire-delay scale.
func (c *Cluster) WireDelay() float64 { return c.wireDelay }

// SleepWire blocks for costMS (simulated ms) scaled by the wire delay.
func (c *Cluster) SleepWire(costMS float64) {
	if c.wireDelay <= 0 || costMS <= 0 {
		return
	}
	time.Sleep(time.Duration(costMS * c.wireDelay * float64(time.Millisecond)))
}

// New creates a cluster over the catalog's locations: each location gets
// a site hosting its database (named per the catalog's location→database
// mapping), with every table fragment placed at its location.
func New(cat *schema.Catalog, net *network.CostModel) *Cluster {
	c := &Cluster{sites: map[string]*Site{}, Net: net, Ledger: network.NewLedger(net), epochs: map[string]uint64{}}
	for _, loc := range cat.Locations() {
		dbName := cat.DatabaseAt(loc)
		if dbName == "" {
			dbName = "db@" + loc
		}
		c.sites[loc] = &Site{Location: loc, DB: storage.NewDB(dbName)}
	}
	for _, t := range cat.Tables() {
		for i := range t.Fragments {
			site := c.sites[t.Fragments[i].Location]
			if site == nil {
				continue
			}
			_, _ = site.DB.CreateTable(fragName(t, i), t.ColumnNames())
		}
	}
	return c
}

// fragName returns the storage name of a fragment: the bare table name
// for single-fragment tables, a #idx-suffixed name otherwise (so two
// fragments of one table may share a site without mixing rows).
func fragName(t *schema.Table, idx int) string {
	if !t.Fragmented() {
		return t.Name
	}
	return fmt.Sprintf("%s#%d", t.Name, idx)
}

// Site returns the site at a location.
func (c *Cluster) Site(loc string) (*Site, bool) {
	s, ok := c.sites[loc]
	return s, ok
}

// Locations returns the cluster's locations (unsorted map order is
// avoided: callers use the catalog for deterministic order).
func (c *Cluster) Locations() []string {
	out := make([]string, 0, len(c.sites))
	for l := range c.sites {
		out = append(out, l)
	}
	return out
}

// LoadFragment stores rows into a table fragment at its location.
func (c *Cluster) LoadFragment(t *schema.Table, fragIdx int, rows []expr.Row) error {
	if fragIdx < 0 {
		fragIdx = 0
	}
	if fragIdx >= len(t.Fragments) {
		return fmt.Errorf("cluster: table %s has no fragment %d", t.Name, fragIdx)
	}
	loc := t.Fragments[fragIdx].Location
	site, ok := c.sites[loc]
	if !ok {
		return fmt.Errorf("cluster: no site at %s", loc)
	}
	st, ok := site.DB.Table(fragName(t, fragIdx))
	if !ok {
		return fmt.Errorf("cluster: table %s missing at %s", t.Name, loc)
	}
	if err := validateSortedBy(t, rows); err != nil {
		return err
	}
	if err := st.Insert(rows...); err != nil {
		return err
	}
	c.epochMu.Lock()
	c.epochs[strings.ToLower(t.Name)]++
	c.epochMu.Unlock()
	return nil
}

// validateSortedBy checks that rows respect the table's declared physical
// sort order (the optimizer relies on it for merge joins).
func validateSortedBy(t *schema.Table, rows []expr.Row) error {
	if len(t.SortedBy) == 0 {
		return nil
	}
	idx := make([]int, 0, len(t.SortedBy))
	for _, name := range t.SortedBy {
		found := -1
		for i, c := range t.Columns {
			if strings.EqualFold(c.Name, name) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("cluster: table %s declares unknown sort column %q", t.Name, name)
		}
		idx = append(idx, found)
	}
	for i := 1; i < len(rows); i++ {
		for _, j := range idx {
			a, b := rows[i-1][j], rows[i][j]
			if a.IsNull() || b.IsNull() {
				break // NULL ordering unchecked
			}
			c, err := a.Compare(b)
			if err != nil {
				return fmt.Errorf("cluster: table %s sort validation: %v", t.Name, err)
			}
			if c < 0 {
				break
			}
			if c > 0 {
				return fmt.Errorf("cluster: table %s declared sorted by %v but row %d violates the order", t.Name, t.SortedBy, i)
			}
		}
	}
	return nil
}

// FragmentRows reads the stored rows of a table fragment.
func (c *Cluster) FragmentRows(t *schema.Table, fragIdx int) ([]expr.Row, error) {
	if fragIdx < 0 {
		fragIdx = 0
	}
	if fragIdx >= len(t.Fragments) {
		return nil, fmt.Errorf("cluster: table %s has no fragment %d", t.Name, fragIdx)
	}
	loc := t.Fragments[fragIdx].Location
	site, ok := c.sites[loc]
	if !ok {
		return nil, fmt.Errorf("cluster: no site at %s", loc)
	}
	st, ok := site.DB.Table(fragName(t, fragIdx))
	if !ok {
		return nil, fmt.Errorf("cluster: table %s missing at %s", t.Name, loc)
	}
	return st.Rows(), nil
}

// AllRows concatenates the rows of every fragment of a table (global
// view, used by reference execution).
func (c *Cluster) AllRows(t *schema.Table) ([]expr.Row, error) {
	var out []expr.Row
	for i := range t.Fragments {
		rows, err := c.FragmentRows(t, i)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}
