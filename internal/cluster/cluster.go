// Package cluster simulates the geo-distributed deployment of Figure 2:
// one database gateway per location, a WAN between them priced by the
// message cost model, and a transfer ledger recording every cross-border
// shipment a query performs.
package cluster

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/schema"
	"cgdqp/internal/storage"
	"cgdqp/internal/store"
)

// Site is one location: a gateway to its local database.
type Site struct {
	Location string
	DB       *storage.DB
}

// Cluster is the set of sites plus the network between them. After
// construction and loading, a cluster is safe for concurrent reads: the
// site map is immutable, storage tables guard their rows with RWMutexes,
// and the ledger serializes transfer accounting — which is what lets the
// parallel executor run per-site plan fragments on separate goroutines.
type Cluster struct {
	sites  map[string]*Site
	Net    *network.CostModel
	Ledger *network.Ledger

	// wireDelay scales simulated WAN cost (milliseconds, per the message
	// cost model) into real wall-clock sleeps during execution. The
	// default 0 keeps shipping instantaneous, as before; set it before
	// executing (it is read concurrently by exchange producers).
	wireDelay float64

	// faults/retry drive the resilient shipping path (see ship.go):
	// nil faults means every send succeeds first try, as before. Both
	// are set before execution and read concurrently by producers.
	faults *network.FaultPlan
	retry  network.RetryPolicy
	// retries counts failed send attempts across all executions.
	retries atomic.Int64

	// obs receives shipping spans and per-edge metrics (see ship.go).
	// nil disables observation; set before execution like the fields
	// above (exchange producers read it without locks).
	obs *obs.Observer

	// cal receives wire-encoding and shipment samples from the
	// executors (see network.Calibrator). nil disables calibration;
	// set before execution like the fields above.
	cal *network.Calibrator

	// epochs tracks a per-table data epoch, bumped by every successful
	// load into any fragment of the table. Result-set caching keys its
	// validity on these: a cached result is reusable only while every
	// table it consumed still has the epoch observed before execution.
	epochMu sync.RWMutex
	epochs  map[string]uint64

	// Persistent-store state (nil/empty for the in-memory default): one
	// engine per site sharing a single buffer pool, so the configured
	// byte budget is cluster-global.
	pool    *store.Pool
	engines []*store.Engine
}

// StoreConfig configures the persistent per-site storage engines. The
// zero value (no DataDir) keeps the in-memory backend.
type StoreConfig struct {
	// DataDir is the root directory; each site gets a subdirectory.
	DataDir string
	// BufferPoolBytes is the shared page-cache budget across all sites
	// (default store.DefaultPoolBytes).
	BufferPoolBytes int64
	// Fsync gates fsyncs on WAL appends and checkpoints.
	Fsync bool
}

// DataEpoch returns the current data epoch of a table
// (case-insensitive; 0 for a never-loaded table). Concurrency-safe.
func (c *Cluster) DataEpoch(table string) uint64 {
	c.epochMu.RLock()
	defer c.epochMu.RUnlock()
	return c.epochs[strings.ToLower(table)]
}

// SetCalibrator installs the cost-model calibrator shipping and the
// executors' wire encoders feed samples into (nil disables). Configure
// before execution starts.
func (c *Cluster) SetCalibrator(cal *network.Calibrator) { c.cal = cal }

// Calibrator returns the installed calibrator (nil = none).
func (c *Cluster) Calibrator() *network.Calibrator { return c.cal }

// SetObserver installs the observability sinks shipping reports into
// (nil disables). Configure before execution starts.
func (c *Cluster) SetObserver(o *obs.Observer) { c.obs = o }

// Observer returns the installed observer (nil = none).
func (c *Cluster) Observer() *obs.Observer { return c.obs }

// SetWireDelay makes SHIP transfers take wall-clock time: every shipment
// sleeps its modeled cost (ms) multiplied by scale. scale 0 disables the
// delay. Set it before execution starts; the geo-distributed benchmarks
// use it so that overlapping transfers (what a parallel executor buys)
// shows up in measured time, not just in the ledger.
func (c *Cluster) SetWireDelay(scale float64) { c.wireDelay = scale }

// WireDelay returns the current wire-delay scale.
func (c *Cluster) WireDelay() float64 { return c.wireDelay }

// SleepWire blocks for costMS (simulated ms) scaled by the wire delay.
func (c *Cluster) SleepWire(costMS float64) {
	if c.wireDelay <= 0 || costMS <= 0 {
		return
	}
	time.Sleep(time.Duration(costMS * c.wireDelay * float64(time.Millisecond)))
}

// New creates a cluster over the catalog's locations: each location gets
// a site hosting its database (named per the catalog's location→database
// mapping), with every table fragment placed at its location.
func New(cat *schema.Catalog, net *network.CostModel) *Cluster {
	c, err := NewWithStore(cat, net, nil)
	if err != nil {
		// Unreachable: only the persistent backend can fail to open.
		panic(err)
	}
	return c
}

// NewWithStore is New with an optional persistent storage backend: with
// a StoreConfig, every site database runs on a paged engine under
// DataDir/<location>, all sites sharing one buffer pool. Tables are
// created with their catalog-declared column types and indexes on both
// backends, so plans and results do not depend on the backend choice.
func NewWithStore(cat *schema.Catalog, net *network.CostModel, cfg *StoreConfig) (*Cluster, error) {
	c := &Cluster{sites: map[string]*Site{}, Net: net, Ledger: network.NewLedger(net), epochs: map[string]uint64{}}
	if cfg != nil && cfg.DataDir != "" {
		c.pool = store.NewPool(cfg.BufferPoolBytes)
	}
	for _, loc := range cat.Locations() {
		dbName := cat.DatabaseAt(loc)
		if dbName == "" {
			dbName = "db@" + loc
		}
		var db *storage.DB
		if c.pool != nil {
			eng, err := store.Open(store.Options{
				Dir:   filepath.Join(cfg.DataDir, siteDirName(loc)),
				Pool:  c.pool,
				Fsync: cfg.Fsync,
			})
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: open store at %s: %w", loc, err)
			}
			c.engines = append(c.engines, eng)
			db = storage.NewPersistentDB(dbName, eng)
		} else {
			db = storage.NewDB(dbName)
		}
		c.sites[loc] = &Site{Location: loc, DB: db}
	}
	for _, t := range cat.Tables() {
		types := make([]expr.Type, len(t.Columns))
		for i, col := range t.Columns {
			types[i] = col.Type
		}
		for i := range t.Fragments {
			site := c.sites[t.Fragments[i].Location]
			if site == nil {
				continue
			}
			if _, err := site.DB.CreateTableSpec(fragName(t, i), t.ColumnNames(), types, t.Indexes); err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: create %s at %s: %w", t.Name, t.Fragments[i].Location, err)
			}
		}
	}
	return c, nil
}

// siteDirName maps a location name onto a directory name.
func siteDirName(loc string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, loc)
}

// Close flushes and closes the persistent engines (no-op in-memory).
func (c *Cluster) Close() error {
	var firstErr error
	for _, e := range c.engines {
		if err := e.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.engines = nil
	return firstErr
}

// StoreStats snapshots the shared buffer-pool counters (zero when the
// cluster runs in memory).
func (c *Cluster) StoreStats() store.PoolStats {
	if c.pool == nil {
		return store.PoolStats{}
	}
	return c.pool.Stats()
}

// Persistent reports whether the cluster runs on the paged engine.
func (c *Cluster) Persistent() bool { return c.pool != nil }

// FragmentLoaded reports whether a fragment already holds rows — a
// persistent cluster reopening its data directory skips reloading.
func (c *Cluster) FragmentLoaded(t *schema.Table, fragIdx int) bool {
	tab, err := c.fragmentTable(t, fragIdx)
	if err != nil {
		return false
	}
	return tab.RowCount() > 0
}

// fragName returns the storage name of a fragment: the bare table name
// for single-fragment tables, a #idx-suffixed name otherwise (so two
// fragments of one table may share a site without mixing rows).
func fragName(t *schema.Table, idx int) string {
	if !t.Fragmented() {
		return t.Name
	}
	return fmt.Sprintf("%s#%d", t.Name, idx)
}

// Site returns the site at a location.
func (c *Cluster) Site(loc string) (*Site, bool) {
	s, ok := c.sites[loc]
	return s, ok
}

// Locations returns the cluster's locations (unsorted map order is
// avoided: callers use the catalog for deterministic order).
func (c *Cluster) Locations() []string {
	out := make([]string, 0, len(c.sites))
	for l := range c.sites {
		out = append(out, l)
	}
	return out
}

// LoadFragment stores rows into a table fragment at its location.
func (c *Cluster) LoadFragment(t *schema.Table, fragIdx int, rows []expr.Row) error {
	if fragIdx < 0 {
		fragIdx = 0
	}
	if fragIdx >= len(t.Fragments) {
		return fmt.Errorf("cluster: table %s has no fragment %d", t.Name, fragIdx)
	}
	loc := t.Fragments[fragIdx].Location
	site, ok := c.sites[loc]
	if !ok {
		return fmt.Errorf("cluster: no site at %s", loc)
	}
	st, ok := site.DB.Table(fragName(t, fragIdx))
	if !ok {
		return fmt.Errorf("cluster: table %s missing at %s", t.Name, loc)
	}
	if err := validateSortedBy(t, rows); err != nil {
		return err
	}
	if err := st.Insert(rows...); err != nil {
		return err
	}
	c.epochMu.Lock()
	c.epochs[strings.ToLower(t.Name)]++
	c.epochMu.Unlock()
	return nil
}

// validateSortedBy checks that rows respect the table's declared physical
// sort order (the optimizer relies on it for merge joins).
func validateSortedBy(t *schema.Table, rows []expr.Row) error {
	if len(t.SortedBy) == 0 {
		return nil
	}
	idx := make([]int, 0, len(t.SortedBy))
	for _, name := range t.SortedBy {
		found := -1
		for i, c := range t.Columns {
			if strings.EqualFold(c.Name, name) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("cluster: table %s declares unknown sort column %q", t.Name, name)
		}
		idx = append(idx, found)
	}
	for i := 1; i < len(rows); i++ {
		for _, j := range idx {
			a, b := rows[i-1][j], rows[i][j]
			if a.IsNull() || b.IsNull() {
				break // NULL ordering unchecked
			}
			c, err := a.Compare(b)
			if err != nil {
				return fmt.Errorf("cluster: table %s sort validation: %v", t.Name, err)
			}
			if c < 0 {
				break
			}
			if c > 0 {
				return fmt.Errorf("cluster: table %s declared sorted by %v but row %d violates the order", t.Name, t.SortedBy, i)
			}
		}
	}
	return nil
}

// fragmentTable resolves the storage table behind one fragment.
func (c *Cluster) fragmentTable(t *schema.Table, fragIdx int) (*storage.Table, error) {
	if fragIdx < 0 {
		fragIdx = 0
	}
	if fragIdx >= len(t.Fragments) {
		return nil, fmt.Errorf("cluster: table %s has no fragment %d", t.Name, fragIdx)
	}
	loc := t.Fragments[fragIdx].Location
	site, ok := c.sites[loc]
	if !ok {
		return nil, fmt.Errorf("cluster: no site at %s", loc)
	}
	st, ok := site.DB.Table(fragName(t, fragIdx))
	if !ok {
		return nil, fmt.Errorf("cluster: table %s missing at %s", t.Name, loc)
	}
	return st, nil
}

// FragmentRows reads the stored rows of a table fragment.
func (c *Cluster) FragmentRows(t *schema.Table, fragIdx int) ([]expr.Row, error) {
	st, err := c.fragmentTable(t, fragIdx)
	if err != nil {
		return nil, err
	}
	return st.RowsChecked()
}

// FragmentBatches returns a page iterator over a persistent fragment
// (decoding pages straight into column vectors); ok is false on the
// in-memory backend, whose scans alias rows instead.
func (c *Cluster) FragmentBatches(t *schema.Table, fragIdx int) (*store.Iterator, bool, error) {
	st, err := c.fragmentTable(t, fragIdx)
	if err != nil {
		return nil, false, err
	}
	it, ok := st.Batches()
	return it, ok, nil
}

// IndexRangeRows reads the rows of a fragment whose indexed column lies
// in [lo, hi] via its B+ tree, in (key, insertion) order. ok is false
// when the column carries no usable index — callers fall back to a full
// scan plus filter.
func (c *Cluster) IndexRangeRows(t *schema.Table, fragIdx int, col string, lo, hi *expr.Value, loInc, hiInc bool) ([]expr.Row, bool, error) {
	st, err := c.fragmentTable(t, fragIdx)
	if err != nil {
		return nil, false, err
	}
	rows, ok := st.IndexRangeRows(col, lo, hi, loInc, hiInc)
	return rows, ok, nil
}

// IndexLookupRows reads the rows of a fragment whose indexed column
// equals key, in insertion order; ok as in IndexRangeRows.
func (c *Cluster) IndexLookupRows(t *schema.Table, fragIdx int, col string, key expr.Value) ([]expr.Row, bool, error) {
	st, err := c.fragmentTable(t, fragIdx)
	if err != nil {
		return nil, false, err
	}
	rows, ok := st.IndexLookupRows(col, key)
	return rows, ok, nil
}

// AllRows concatenates the rows of every fragment of a table (global
// view, used by reference execution).
func (c *Cluster) AllRows(t *schema.Table) ([]expr.Row, error) {
	var out []expr.Row
	for i := range t.Fragments {
		rows, err := c.FragmentRows(t, i)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}
