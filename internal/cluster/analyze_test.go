package cluster

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/schema"
)

func TestAnalyze(t *testing.T) {
	cat := schema.NewCatalog()
	tab := schema.NewTable("t", "db-1", "L1", 999, // wrong declared count
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "s", Type: expr.TString},
	)
	cat.MustAddTable(tab)
	cl := New(cat, network.UniformWAN(1, 1e-6))
	var rows []expr.Row
	for i := 0; i < 100; i++ {
		v := expr.NewString("x")
		if i%2 == 0 {
			v = expr.NewString("y")
		}
		if i == 50 {
			v = expr.TypedNull(expr.TString)
		}
		rows = append(rows, expr.Row{expr.NewInt(int64(i % 10)), v})
	}
	if err := cl.LoadFragment(tab, 0, rows); err != nil {
		t.Fatal(err)
	}
	if err := cl.Analyze(tab); err != nil {
		t.Fatal(err)
	}
	// Row count corrected from the declared 999.
	if tab.RowCount() != 100 {
		t.Errorf("row count: %d", tab.RowCount())
	}
	ks := tab.Stats("k")
	if ks.Distinct != 10 || ks.Min.Int() != 0 || ks.Max.Int() != 9 {
		t.Errorf("k stats: %+v", ks)
	}
	ss := tab.Stats("s")
	if ss.Distinct != 2 { // NULL not counted
		t.Errorf("s distinct: %d", ss.Distinct)
	}
	if ss.Min.Str() != "x" || ss.Max.Str() != "y" {
		t.Errorf("s min/max: %v %v", ss.Min, ss.Max)
	}
}

func TestAnalyzeAllFragmented(t *testing.T) {
	cat := schema.NewCatalog()
	frag := &schema.Table{
		Name:    "f",
		Columns: []schema.Column{{Name: "a", Type: expr.TInt}},
		Fragments: []schema.Fragment{
			{DB: "d1", Location: "L1", RowCount: 0},
			{DB: "d2", Location: "L2", RowCount: 0},
		},
	}
	cat.MustAddTable(frag)
	cl := New(cat, network.UniformWAN(1, 1e-6))
	if err := cl.LoadFragment(frag, 0, []expr.Row{{expr.NewInt(1)}, {expr.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(frag, 1, []expr.Row{{expr.NewInt(2)}, {expr.NewInt(3)}, {expr.NewInt(4)}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AnalyzeAll(cat); err != nil {
		t.Fatal(err)
	}
	if frag.Fragments[0].RowCount != 2 || frag.Fragments[1].RowCount != 3 {
		t.Errorf("fragment counts: %+v", frag.Fragments)
	}
	if st := frag.Stats("a"); st.Distinct != 4 || st.Max.Int() != 4 {
		t.Errorf("stats: %+v", st)
	}
}
