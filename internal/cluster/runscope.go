package cluster

import (
	"context"
	"sync/atomic"

	"cgdqp/internal/network"
)

// RunScope is the per-execution accounting context of one query run.
//
// The cluster's shared ledger is cumulative across every execution, so
// two concurrent queries diffing its snapshot around their runs would
// each absorb the other's transfers into their RunStats. A RunScope
// fixes that: every shipment a run performs is charged twice — once
// into the cluster's cumulative ledger (reports, chaos parity checks
// and the CLI summary keep working unchanged) and once into a private
// per-run ledger priced by the same cost model. Engines read their
// RunStats from the private ledger, so concurrent executions over one
// Cluster produce independent, correct accounting.
//
// A scope is created per execution and used by that execution's
// goroutines only; the private ledger itself is safe for the concurrent
// fragment producers of one run.
type RunScope struct {
	c      *Cluster
	ledger *network.Ledger
	// retries counts this run's failed-and-retried send attempts
	// (the cluster-wide counter keeps its cumulative total).
	retries atomic.Int64
}

// NewRun opens a per-execution accounting scope.
func (c *Cluster) NewRun() *RunScope {
	return &RunScope{c: c, ledger: network.NewLedger(c.Net)}
}

// Cluster returns the cluster this scope charges.
func (r *RunScope) Cluster() *Cluster { return r.c }

// Ledger returns the run-private transfer ledger.
func (r *RunScope) Ledger() *network.Ledger { return r.ledger }

// Retries returns the run's retried-send count.
func (r *RunScope) Retries() int64 { return r.retries.Load() }

// RunShipment pairs the two ledger entries of one incremental transfer:
// the cumulative cluster entry and the run-private one. Batches are
// added to both, so the shared ledger stays bit-identical to what the
// unscoped path records while the run ledger sees only its own bytes.
type RunShipment struct {
	main, run *network.Shipment
}

// OpenShipment starts an incremental transfer accounted in both ledgers.
func (r *RunScope) OpenShipment(from, to string) *RunShipment {
	return &RunShipment{
		main: r.c.Ledger.OpenShipment(from, to),
		run:  r.ledger.OpenShipment(from, to),
	}
}

// ShipBatch is Cluster.ShipBatch under this scope: identical fault,
// retry and observability semantics, with the delivered batch charged
// to the run ledger as well.
func (r *RunScope) ShipBatch(ctx context.Context, ship *RunShipment, from, to string, batch int, rows, bytes int64) error {
	sp := r.c.obs.StartSpan("ship.batch").
		Tag("from", from).Tag("to", to).TagInt("batch", int64(batch)).TagInt("rows", rows)
	err := r.c.send(ctx, r, from, to, batch, bytes, func(extraMS float64) {
		delta := ship.main.Add(rows, bytes)
		ship.run.Add(rows, bytes)
		r.c.SleepWire(delta + extraMS)
	})
	r.c.finishShip(sp, from, to, rows, bytes, err)
	return err
}

// ShipWhole is Cluster.ShipWhole under this scope.
func (r *RunScope) ShipWhole(ctx context.Context, from, to string, rows, bytes int64) error {
	sp := r.c.obs.StartSpan("ship.whole").
		Tag("from", from).Tag("to", to).TagInt("rows", rows)
	err := r.c.send(ctx, r, from, to, 0, bytes, func(extraMS float64) {
		cost := r.c.Ledger.Record(from, to, rows, bytes)
		r.ledger.Record(from, to, rows, bytes)
		if r.c.cal != nil {
			r.c.cal.ObserveShip(from, to, bytes, cost)
		}
		r.c.SleepWire(cost + extraMS)
	})
	r.c.finishShip(sp, from, to, rows, bytes, err)
	return err
}
