package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cgdqp/internal/network"
)

// TestShipErrorWrappingChains exercises the *network.ShipError error
// chain for each terminal cause — retry exhaustion, per-attempt
// timeout, and partition — and checks errors.Is/errors.As resolve it
// even after an extra layer of fmt.Errorf %w wrapping, the way executor
// callers see it. Each cause must match only its own sentinel.
func TestShipErrorWrappingChains(t *testing.T) {
	sentinels := []error{
		network.ErrBatchDropped,
		network.ErrTransient,
		network.ErrShipTimeout,
		network.ErrPartitioned,
	}
	cases := []struct {
		name     string
		faults   network.EdgeFaults
		retry    network.RetryPolicy
		want     error
		attempts int
	}{
		{
			name:     "retry exhaustion drop",
			faults:   network.EdgeFaults{DropProb: 1},
			retry:    fastRetry(3),
			want:     network.ErrBatchDropped,
			attempts: 3,
		},
		{
			name:     "retry exhaustion transient",
			faults:   network.EdgeFaults{TransientProb: 1},
			retry:    fastRetry(4),
			want:     network.ErrTransient,
			attempts: 4,
		},
		{
			name:   "timeout",
			faults: network.EdgeFaults{DelayProb: 1, DelayMS: 1000},
			retry: func() network.RetryPolicy {
				r := fastRetry(2)
				r.TimeoutMS = 50
				return r
			}(),
			want:     network.ErrShipTimeout,
			attempts: 2,
		},
		{
			name:     "partition fails fast",
			faults:   network.EdgeFaults{Partitioned: true},
			retry:    fastRetry(10),
			want:     network.ErrPartitioned,
			attempts: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := shipTestCluster(t)
			c.SetFaults(network.NewFaultPlan(7).SetDefault(tc.faults))
			c.SetRetry(tc.retry)
			err := c.ShipWhole(context.Background(), "EU", "AS", 10, 800)
			if err == nil {
				t.Fatal("shipment succeeded under certain faults")
			}

			// The chain resolves both ways: As to the typed error, Is to
			// the sentinel cause.
			var se *network.ShipError
			if !errors.As(err, &se) {
				t.Fatalf("errors.As(*network.ShipError) failed on %v", err)
			}
			if se.From != "EU" || se.To != "AS" {
				t.Errorf("ShipError edge = %s -> %s, want EU -> AS", se.From, se.To)
			}
			if se.Attempts != tc.attempts {
				t.Errorf("ShipError attempts = %d, want %d", se.Attempts, tc.attempts)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("errors.Is(err, %v) = false", tc.want)
			}
			if !errors.Is(se.Err, tc.want) {
				t.Errorf("unwrapped cause %v, want %v", se.Err, tc.want)
			}
			// No cross-matching: the chain carries exactly one sentinel.
			for _, s := range sentinels {
				if s != tc.want && errors.Is(err, s) {
					t.Errorf("errors.Is(err, %v) matched the wrong sentinel", s)
				}
			}

			// Callers re-wrap with %w; the chain must survive the extra
			// layer (this is how executor errors reach the CLI).
			wrapped := fmt.Errorf("execute: %w", err)
			var se2 *network.ShipError
			if !errors.As(wrapped, &se2) || se2 != se {
				t.Errorf("errors.As through fmt.Errorf wrap failed: %v", wrapped)
			}
			if !errors.Is(wrapped, tc.want) {
				t.Errorf("errors.Is through fmt.Errorf wrap failed for %v", tc.want)
			}
		})
	}
}

// TestShipErrorNotConfusedWithContext: cancellation surfaces as a bare
// context error, never disguised as a ShipError, so callers can tell
// "the WAN failed" from "the caller gave up".
func TestShipErrorNotConfusedWithContext(t *testing.T) {
	c := shipTestCluster(t)
	c.SetFaults(network.NewFaultPlan(3).SetDefault(network.EdgeFaults{TransientProb: 1}))
	c.SetRetry(fastRetry(5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.ShipWhole(ctx, "EU", "AS", 10, 80)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	var se *network.ShipError
	if errors.As(err, &se) {
		t.Errorf("cancellation surfaced as ShipError %v", se)
	}
}
