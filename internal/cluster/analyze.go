package cluster

import (
	"fmt"

	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

// Analyze recomputes a table's optimizer statistics from the rows
// actually stored in the cluster: exact per-column distinct counts and
// min/max for orderable types, plus fragment row counts. It is the
// engine's ANALYZE: run it after loading so cardinality estimates match
// the data.
func (c *Cluster) Analyze(t *schema.Table) error {
	type colAcc struct {
		distinct map[uint64]struct{}
		min, max expr.Value
		seen     bool
	}
	accs := make([]colAcc, len(t.Columns))
	for i := range accs {
		accs[i].distinct = map[uint64]struct{}{}
	}
	for fi := range t.Fragments {
		rows, err := c.FragmentRows(t, fi)
		if err != nil {
			return err
		}
		t.Fragments[fi].RowCount = int64(len(rows))
		for _, row := range rows {
			if len(row) != len(t.Columns) {
				return fmt.Errorf("cluster: analyze %s: row width %d != %d columns", t.Name, len(row), len(t.Columns))
			}
			for i, v := range row {
				if v.IsNull() {
					continue
				}
				a := &accs[i]
				a.distinct[v.Hash()] = struct{}{}
				if !a.seen {
					a.min, a.max, a.seen = v, v, true
					continue
				}
				if cres, err := v.Compare(a.min); err == nil && cres < 0 {
					a.min = v
				}
				if cres, err := v.Compare(a.max); err == nil && cres > 0 {
					a.max = v
				}
			}
		}
	}
	for i, col := range t.Columns {
		st := schema.ColStats{Distinct: int64(len(accs[i].distinct))}
		if accs[i].seen {
			st.Min, st.Max = accs[i].min, accs[i].max
		}
		t.SetColStats(col.Name, st)
	}
	return nil
}

// AnalyzeAll runs Analyze over every table of the catalog.
func (c *Cluster) AnalyzeAll(cat *schema.Catalog) error {
	for _, t := range cat.Tables() {
		if err := c.Analyze(t); err != nil {
			return err
		}
	}
	return nil
}
