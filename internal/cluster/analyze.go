package cluster

import (
	"fmt"

	"cgdqp/internal/expr"
	"cgdqp/internal/schema"
)

// Analyze recomputes a table's optimizer statistics from the rows
// actually stored in the cluster: exact per-column distinct counts and
// min/max for orderable types, plus fragment row counts. It is the
// engine's ANALYZE: run it after loading so cardinality estimates match
// the data.
//
// Indexed columns of single-fragment tables take the fast path: row
// count, min/max and distinct come straight from the B+ tree (exact,
// and identical to what the row scan would compute) — a fully indexed
// table is analyzed without decoding a single page. Fragmented tables
// and unindexed columns fall back to the scanning path.
func (c *Cluster) Analyze(t *schema.Table) error {
	type colAcc struct {
		distinct map[uint64]struct{}
		min, max expr.Value
		seen     bool
	}
	fromIndex := make([]bool, len(t.Columns))
	idxStats := make([]schema.ColStats, len(t.Columns))
	if len(t.Fragments) == 1 {
		if tab, err := c.fragmentTable(t, 0); err == nil {
			t.Fragments[0].RowCount = int64(tab.RowCount())
			for i, col := range t.Columns {
				if min, max, distinct, ok := tab.IndexStats(col.Name); ok {
					idxStats[i] = schema.ColStats{Distinct: int64(distinct), Min: min, Max: max}
					fromIndex[i] = true
				}
			}
		}
	}
	needScan := false
	for i := range t.Columns {
		if !fromIndex[i] {
			needScan = true
		}
	}
	accs := make([]colAcc, len(t.Columns))
	for i := range accs {
		accs[i].distinct = map[uint64]struct{}{}
	}
	if needScan || len(t.Fragments) > 1 {
		for fi := range t.Fragments {
			rows, err := c.FragmentRows(t, fi)
			if err != nil {
				return err
			}
			t.Fragments[fi].RowCount = int64(len(rows))
			for _, row := range rows {
				if len(row) != len(t.Columns) {
					return fmt.Errorf("cluster: analyze %s: row width %d != %d columns", t.Name, len(row), len(t.Columns))
				}
				for i, v := range row {
					if fromIndex[i] || v.IsNull() {
						continue
					}
					a := &accs[i]
					a.distinct[v.Hash()] = struct{}{}
					if !a.seen {
						a.min, a.max, a.seen = v, v, true
						continue
					}
					if cres, err := v.Compare(a.min); err == nil && cres < 0 {
						a.min = v
					}
					if cres, err := v.Compare(a.max); err == nil && cres > 0 {
						a.max = v
					}
				}
			}
		}
	}
	for i, col := range t.Columns {
		if fromIndex[i] {
			t.SetColStats(col.Name, idxStats[i])
			continue
		}
		st := schema.ColStats{Distinct: int64(len(accs[i].distinct))}
		if accs[i].seen {
			st.Min, st.Max = accs[i].min, accs[i].max
		}
		t.SetColStats(col.Name, st)
	}
	return nil
}

// AnalyzeAll runs Analyze over every table of the catalog.
func (c *Cluster) AnalyzeAll(cat *schema.Catalog) error {
	for _, t := range cat.Tables() {
		if err := c.Analyze(t); err != nil {
			return err
		}
	}
	return nil
}
