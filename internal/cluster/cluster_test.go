package cluster

import (
	"testing"

	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/schema"
)

func testCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	cat.MustAddTable(schema.NewTable("t1", "db-1", "L1", 10,
		schema.Column{Name: "a", Type: expr.TInt}))
	cat.MustAddTable(&schema.Table{
		Name:    "frag",
		Columns: []schema.Column{{Name: "x", Type: expr.TInt}},
		Fragments: []schema.Fragment{
			{DB: "db-1", Location: "L1", RowCount: 2},
			{DB: "db-2", Location: "L2", RowCount: 2},
		},
	})
	return cat
}

func TestClusterSetup(t *testing.T) {
	cat := testCatalog()
	cl := New(cat, network.UniformWAN(1, 0.001))
	s1, ok := cl.Site("L1")
	if !ok || s1.DB.Name != "db-1" {
		t.Fatalf("site L1: %v %v", s1, ok)
	}
	if _, ok := cl.Site("L9"); ok {
		t.Error("unknown site")
	}
	if len(cl.Locations()) != 2 {
		t.Errorf("locations: %v", cl.Locations())
	}
	// Single-fragment table stored under its bare name at L1.
	if _, ok := s1.DB.Table("t1"); !ok {
		t.Error("t1 missing at L1")
	}
	// Fragmented table gets per-fragment names.
	if _, ok := s1.DB.Table("frag#0"); !ok {
		t.Error("frag#0 missing at L1")
	}
	s2, _ := cl.Site("L2")
	if _, ok := s2.DB.Table("frag#1"); !ok {
		t.Error("frag#1 missing at L2")
	}
}

func TestLoadAndReadFragments(t *testing.T) {
	cat := testCatalog()
	cl := New(cat, network.UniformWAN(1, 0.001))
	tab, _ := cat.Table("t1")
	frag, _ := cat.Table("frag")

	if err := cl.LoadFragment(tab, -1, []expr.Row{{expr.NewInt(1)}}); err != nil {
		t.Fatal(err) // -1 normalizes to fragment 0
	}
	if err := cl.LoadFragment(frag, 0, []expr.Row{{expr.NewInt(10)}, {expr.NewInt(11)}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(frag, 1, []expr.Row{{expr.NewInt(20)}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(frag, 5, nil); err == nil {
		t.Error("bad fragment index must fail")
	}

	rows, err := cl.FragmentRows(frag, 0)
	if err != nil || len(rows) != 2 {
		t.Errorf("frag 0: %v %v", rows, err)
	}
	all, err := cl.AllRows(frag)
	if err != nil || len(all) != 3 {
		t.Errorf("all rows: %v %v", all, err)
	}
	if _, err := cl.FragmentRows(frag, 9); err == nil {
		t.Error("bad index read must fail")
	}
	// The ledger prices through the cluster's model.
	c := cl.Ledger.Record("L1", "L2", 1, 1000)
	if c != 1+1 {
		t.Errorf("ledger cost: %v", c)
	}
}

func TestLoadValidatesSortedBy(t *testing.T) {
	cat := schema.NewCatalog()
	tab := schema.NewTable("s", "db-1", "L1", 3,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "v", Type: expr.TString})
	tab.SortedBy = []string{"k"}
	cat.MustAddTable(tab)
	cl := New(cat, network.UniformWAN(1, 1e-6))

	// In-order rows load fine (duplicates and NULLs allowed).
	ok := []expr.Row{
		{expr.NewInt(1), expr.NewString("a")},
		{expr.NewInt(1), expr.NewString("b")},
		{expr.TypedNull(expr.TInt), expr.NewString("n")},
		{expr.NewInt(3), expr.NewString("c")},
	}
	if err := cl.LoadFragment(tab, 0, ok); err != nil {
		t.Fatalf("sorted load: %v", err)
	}
	// Out-of-order rows are rejected.
	cat2 := schema.NewCatalog()
	tab2 := schema.NewTable("s", "db-1", "L1", 2, schema.Column{Name: "k", Type: expr.TInt})
	tab2.SortedBy = []string{"k"}
	cat2.MustAddTable(tab2)
	cl2 := New(cat2, network.UniformWAN(1, 1e-6))
	bad := []expr.Row{{expr.NewInt(5)}, {expr.NewInt(2)}}
	if err := cl2.LoadFragment(tab2, 0, bad); err == nil {
		t.Error("unsorted load must fail")
	}
	// Unknown sort column is rejected.
	cat3 := schema.NewCatalog()
	tab3 := schema.NewTable("s", "db-1", "L1", 1, schema.Column{Name: "k", Type: expr.TInt})
	tab3.SortedBy = []string{"ghost"}
	cat3.MustAddTable(tab3)
	cl3 := New(cat3, network.UniformWAN(1, 1e-6))
	if err := cl3.LoadFragment(tab3, 0, []expr.Row{{expr.NewInt(1)}}); err == nil {
		t.Error("unknown sort column must fail")
	}
	// Multi-column order: tie on the first column checks the second.
	cat4 := schema.NewCatalog()
	tab4 := schema.NewTable("s", "db-1", "L1", 3,
		schema.Column{Name: "a", Type: expr.TInt},
		schema.Column{Name: "b", Type: expr.TInt})
	tab4.SortedBy = []string{"a", "b"}
	cat4.MustAddTable(tab4)
	cl4 := New(cat4, network.UniformWAN(1, 1e-6))
	good := []expr.Row{{expr.NewInt(1), expr.NewInt(2)}, {expr.NewInt(1), expr.NewInt(3)}, {expr.NewInt(2), expr.NewInt(0)}}
	if err := cl4.LoadFragment(tab4, 0, good); err != nil {
		t.Fatalf("multi-column sorted load: %v", err)
	}
	bad4 := []expr.Row{{expr.NewInt(1), expr.NewInt(3)}, {expr.NewInt(1), expr.NewInt(2)}}
	if err := cl4.LoadFragment(tab4, 0, bad4); err == nil {
		t.Error("second-column violation must fail")
	}
}
