package cluster

import (
	"context"
	"time"

	"cgdqp/internal/network"
)

// This file is the cluster's resilient shipping path: both executors
// move rows between sites through it. Without a fault plan it degrades
// to the original behaviour (account the transfer, sleep the simulated
// wire time). With one, every send attempt consults the plan, failed
// attempts are retried under the cluster's RetryPolicy (capped
// exponential backoff with deterministic jitter, per-attempt simulated
// timeout), and the transfer ledger is charged only when a batch
// actually arrives — so a run that succeeds after retries accounts
// exactly what a fault-free run would, and stats parity between the
// engines is preserved.

// SetFaults installs a fault plan on the WAN (nil removes it). If no
// retry policy was set yet, the default one is installed alongside.
// Configure before execution starts.
func (c *Cluster) SetFaults(p *network.FaultPlan) {
	c.faults = p
	if p != nil && c.retry.MaxAttempts == 0 {
		c.retry = network.DefaultRetryPolicy()
	}
}

// Faults returns the installed fault plan (nil = none).
func (c *Cluster) Faults() *network.FaultPlan { return c.faults }

// SetRetry installs the shipment retry policy.
func (c *Cluster) SetRetry(r network.RetryPolicy) { c.retry = r }

// Retry returns the shipment retry policy in effect.
func (c *Cluster) Retry() network.RetryPolicy { return c.retry }

// TotalRetries returns the monotone count of re-sent attempts; callers
// diff it around an execution, like the ledger totals.
func (c *Cluster) TotalRetries() int64 { return c.retries.Load() }

// ShipBatch delivers one batch of an open shipment across the edge,
// injecting faults and retrying under the cluster's retry policy. The
// shipment is charged only when the batch arrives, so the ledger ends
// bit-identical to a fault-free run. The returned error is nil,
// ctx.Err(), or a typed *network.ShipError.
func (c *Cluster) ShipBatch(ctx context.Context, ship *network.Shipment, from, to string, batch int, rows, bytes int64) error {
	return c.send(ctx, from, to, batch, bytes, func(extraMS float64) {
		delta := ship.Add(rows, bytes)
		c.SleepWire(delta + extraMS)
	})
}

// ShipWhole delivers a full materialized transfer (the sequential
// engine's SHIP) across the edge with the same fault/retry semantics as
// ShipBatch, recording it as one ledger entry on success.
func (c *Cluster) ShipWhole(ctx context.Context, from, to string, rows, bytes int64) error {
	return c.send(ctx, from, to, 0, bytes, func(extraMS float64) {
		cost := c.Ledger.Record(from, to, rows, bytes)
		c.SleepWire(cost + extraMS)
	})
}

// send runs the attempt loop: decide the fault verdict, model the wire
// time of failed attempts, back off, and invoke deliver exactly once on
// success. bytes only sizes the simulated attempt cost; accounting is
// deliver's job.
func (c *Cluster) send(ctx context.Context, from, to string, batch int, bytes int64, deliver func(extraMS float64)) error {
	faults := c.faults
	if faults == nil || from == to {
		deliver(0)
		return nil
	}
	attempts := c.retry.Attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v := faults.Decide(from, to, batch, attempt)
		if v.Partitioned {
			// A partition outlives any retry budget: fail fast.
			return &network.ShipError{From: from, To: to, Attempts: attempt, Err: network.ErrPartitioned}
		}
		// Simulated duration of this attempt: bandwidth time plus any
		// injected congestion delay (the start-up α is paid once, when
		// the shipment opens).
		attemptMS := c.Net.Beta(from, to)*float64(bytes) + v.ExtraDelayMS
		if timeout := c.retry.TimeoutMS; timeout > 0 && attemptMS > timeout {
			// The receiver gives up at the budget; the time until then
			// is still spent on the wire.
			c.SleepWire(timeout)
			lastErr = network.ErrShipTimeout
		} else if err := v.Err(); err != nil {
			if err == network.ErrBatchDropped {
				// The batch travelled and was lost: wire time is spent.
				c.SleepWire(attemptMS)
			}
			lastErr = err
		} else {
			deliver(v.ExtraDelayMS)
			return nil
		}
		c.retries.Add(1)
		if attempt < attempts {
			if err := sleepCtx(ctx, c.retry.Backoff(attempt, faults.Jitter(from, to, batch, attempt))); err != nil {
				return err
			}
		}
	}
	return &network.ShipError{From: from, To: to, Attempts: attempts, Err: lastErr}
}

// sleepCtx waits for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
