package cluster

import (
	"context"
	"errors"
	"time"

	"cgdqp/internal/network"
	"cgdqp/internal/obs"
)

// This file is the cluster's resilient shipping path: both executors
// move rows between sites through it. Without a fault plan it degrades
// to the original behaviour (account the transfer, sleep the simulated
// wire time). With one, every send attempt consults the plan, failed
// attempts are retried under the cluster's RetryPolicy (capped
// exponential backoff with deterministic jitter, per-attempt simulated
// timeout), and the transfer ledger is charged only when a batch
// actually arrives — so a run that succeeds after retries accounts
// exactly what a fault-free run would, and stats parity between the
// engines is preserved.

// SetFaults installs a fault plan on the WAN (nil removes it). If no
// retry policy was set yet, the default one is installed alongside.
// Configure before execution starts.
func (c *Cluster) SetFaults(p *network.FaultPlan) {
	c.faults = p
	if p != nil && c.retry.MaxAttempts == 0 {
		c.retry = network.DefaultRetryPolicy()
	}
}

// Faults returns the installed fault plan (nil = none).
func (c *Cluster) Faults() *network.FaultPlan { return c.faults }

// SetRetry installs the shipment retry policy.
func (c *Cluster) SetRetry(r network.RetryPolicy) { c.retry = r }

// Retry returns the shipment retry policy in effect.
func (c *Cluster) Retry() network.RetryPolicy { return c.retry }

// TotalRetries returns the monotone count of re-sent attempts; callers
// diff it around an execution, like the ledger totals.
func (c *Cluster) TotalRetries() int64 { return c.retries.Load() }

// ShipBatch delivers one batch of an open shipment across the edge,
// injecting faults and retrying under the cluster's retry policy. The
// shipment is charged only when the batch arrives, so the ledger ends
// bit-identical to a fault-free run. The returned error is nil,
// ctx.Err(), or a typed *network.ShipError.
func (c *Cluster) ShipBatch(ctx context.Context, ship *network.Shipment, from, to string, batch int, rows, bytes int64) error {
	sp := c.obs.StartSpan("ship.batch").
		Tag("from", from).Tag("to", to).TagInt("batch", int64(batch)).TagInt("rows", rows)
	err := c.send(ctx, nil, from, to, batch, bytes, func(extraMS float64) {
		delta := ship.Add(rows, bytes)
		c.SleepWire(delta + extraMS)
	})
	c.finishShip(sp, from, to, rows, bytes, err)
	return err
}

// ShipWhole delivers a full materialized transfer (the sequential
// engine's SHIP) across the edge with the same fault/retry semantics as
// ShipBatch, recording it as one ledger entry on success.
func (c *Cluster) ShipWhole(ctx context.Context, from, to string, rows, bytes int64) error {
	sp := c.obs.StartSpan("ship.whole").
		Tag("from", from).Tag("to", to).TagInt("rows", rows)
	err := c.send(ctx, nil, from, to, 0, bytes, func(extraMS float64) {
		cost := c.Ledger.Record(from, to, rows, bytes)
		if c.cal != nil {
			c.cal.ObserveShip(from, to, bytes, cost)
		}
		c.SleepWire(cost + extraMS)
	})
	c.finishShip(sp, from, to, rows, bytes, err)
	return err
}

// finishShip closes the shipment span with its outcome and, on success,
// bumps the per-edge shipping counters. Every step is guarded so a
// disabled observer costs pointer checks only.
func (c *Cluster) finishShip(sp obs.Span, from, to string, rows, bytes int64, err error) {
	if sp.Enabled() {
		sp.Tag("outcome", shipOutcome(err)).End()
	}
	if err != nil {
		return
	}
	if m := c.obs.Reg(); m != nil {
		m.Counter("cgdqp_ship_rows_total", "from", from, "to", to).Add(rows)
		m.Counter("cgdqp_ship_bytes_total", "from", from, "to", to).Add(bytes)
		m.Counter("cgdqp_ship_batches_total", "from", from, "to", to).Inc()
	}
}

// shipOutcome classifies a shipping error for span tags.
func shipOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, network.ErrPartitioned):
		return "partitioned"
	case errors.Is(err, network.ErrShipTimeout):
		return "timeout"
	case errors.Is(err, network.ErrBatchDropped):
		return "dropped"
	case errors.Is(err, network.ErrTransient):
		return "transient"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "error"
	}
}

// faultKind names a per-attempt fault verdict for the fault counters.
func faultKind(err error) string {
	switch {
	case errors.Is(err, network.ErrShipTimeout):
		return "timeout"
	case errors.Is(err, network.ErrBatchDropped):
		return "drop"
	case errors.Is(err, network.ErrTransient):
		return "transient"
	case errors.Is(err, network.ErrPartitioned):
		return "partition"
	default:
		return "other"
	}
}

// countFault bumps the fault counter for one failed attempt.
func (c *Cluster) countFault(err error) {
	if m := c.obs.Reg(); m != nil {
		m.Counter("cgdqp_ship_faults_total", "kind", faultKind(err)).Inc()
	}
}

// send runs the attempt loop: decide the fault verdict, model the wire
// time of failed attempts, back off, and invoke deliver exactly once on
// success. bytes only sizes the simulated attempt cost; accounting is
// deliver's job. A non-nil scope additionally receives the run-local
// retry count.
func (c *Cluster) send(ctx context.Context, scope *RunScope, from, to string, batch int, bytes int64, deliver func(extraMS float64)) error {
	faults := c.faults
	if faults == nil || from == to {
		deliver(0)
		return nil
	}
	attempts := c.retry.Attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v := faults.Decide(from, to, batch, attempt)
		if v.Partitioned {
			// A partition outlives any retry budget: fail fast.
			c.countFault(network.ErrPartitioned)
			return &network.ShipError{From: from, To: to, Attempts: attempt, Err: network.ErrPartitioned}
		}
		// Simulated duration of this attempt: bandwidth time plus any
		// injected congestion delay (the start-up α is paid once, when
		// the shipment opens).
		attemptMS := c.Net.Beta(from, to)*float64(bytes) + v.ExtraDelayMS
		if timeout := c.retry.TimeoutMS; timeout > 0 && attemptMS > timeout {
			// The receiver gives up at the budget; the time until then
			// is still spent on the wire.
			c.SleepWire(timeout)
			lastErr = network.ErrShipTimeout
		} else if err := v.Err(); err != nil {
			if err == network.ErrBatchDropped {
				// The batch travelled and was lost: wire time is spent.
				c.SleepWire(attemptMS)
			}
			lastErr = err
		} else {
			deliver(v.ExtraDelayMS)
			return nil
		}
		c.retries.Add(1)
		if scope != nil {
			scope.retries.Add(1)
		}
		c.countFault(lastErr)
		if m := c.obs.Reg(); m != nil {
			m.Counter("cgdqp_ship_retries_total", "from", from, "to", to).Inc()
		}
		if attempt < attempts {
			// The retry span covers the backoff wait for the next attempt.
			rsp := c.obs.StartSpan("ship.retry").
				Tag("from", from).Tag("to", to).TagInt("batch", int64(batch)).
				TagInt("attempt", int64(attempt))
			if rsp.Enabled() {
				rsp = rsp.Tag("fault", faultKind(lastErr))
			}
			err := sleepCtx(ctx, c.retry.Backoff(attempt, faults.Jitter(from, to, batch, attempt)))
			rsp.End()
			if err != nil {
				return err
			}
		}
	}
	return &network.ShipError{From: from, To: to, Attempts: attempts, Err: lastErr}
}

// sleepCtx waits for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
