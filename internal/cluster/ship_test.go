package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"cgdqp/internal/network"
	"cgdqp/internal/schema"
)

func shipTestCluster(t *testing.T) *Cluster {
	t.Helper()
	cat := schema.NewCatalog()
	if err := cat.AddTable(schema.NewTable("t", "db-eu", "EU", 10, schema.Column{Name: "a", Type: 0})); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(schema.NewTable("u", "db-as", "AS", 10, schema.Column{Name: "a", Type: 0})); err != nil {
		t.Fatal(err)
	}
	return New(cat, network.UniformWAN(10, 0.001))
}

func fastRetry(attempts int) network.RetryPolicy {
	return network.RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  200 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

// TestShipBatchRetriesToSuccess: under heavy drop faults a batch still
// lands given enough attempts, the ledger is charged exactly once, and
// the failed attempts are counted.
func TestShipBatchRetriesToSuccess(t *testing.T) {
	c := shipTestCluster(t)
	c.SetFaults(network.NewFaultPlan(11).SetDefault(EdgeFaultsWithDrop(0.9)))
	c.SetRetry(fastRetry(100))
	ship := c.Ledger.OpenShipment("EU", "AS")
	if err := c.ShipBatch(context.Background(), ship, "EU", "AS", 0, 100, 800); err != nil {
		t.Fatalf("ShipBatch: %v", err)
	}
	if got := c.Ledger.TotalBytes(); got != 800 {
		t.Errorf("ledger bytes = %d, want 800 (charged once, not per attempt)", got)
	}
	if got := c.Ledger.TotalRows(); got != 100 {
		t.Errorf("ledger rows = %d, want 100", got)
	}
	if c.TotalRetries() == 0 {
		t.Error("drops at 90%% should have produced retries")
	}
}

// EdgeFaultsWithDrop builds a drop-only fault config (helper keeps the
// test call sites readable).
func EdgeFaultsWithDrop(p float64) network.EdgeFaults {
	return network.EdgeFaults{DropProb: p}
}

// TestShipBatchExhaustsRetries: a certain fault with a small attempt
// budget yields a typed ShipError and leaves the shipment uncharged.
func TestShipBatchExhaustsRetries(t *testing.T) {
	c := shipTestCluster(t)
	c.SetFaults(network.NewFaultPlan(5).SetDefault(network.EdgeFaults{TransientProb: 1}))
	c.SetRetry(fastRetry(3))
	ship := c.Ledger.OpenShipment("EU", "AS")
	err := c.ShipBatch(context.Background(), ship, "EU", "AS", 0, 10, 80)
	var se *network.ShipError
	if !errors.As(err, &se) {
		t.Fatalf("error %v, want *network.ShipError", err)
	}
	if se.Attempts != 3 || !errors.Is(err, network.ErrTransient) {
		t.Errorf("ShipError = %+v, want 3 attempts wrapping ErrTransient", se)
	}
	if got := c.Ledger.TotalBytes(); got != 0 {
		t.Errorf("failed shipment charged %d bytes", got)
	}
}

// TestShipWholePartitionFailsFast: partitions are terminal on the first
// attempt — no retry budget is burned, nothing is recorded.
func TestShipWholePartitionFailsFast(t *testing.T) {
	c := shipTestCluster(t)
	c.SetFaults(network.NewFaultPlan(5).SetEdge("EU", "AS", network.EdgeFaults{Partitioned: true}))
	c.SetRetry(fastRetry(10))
	err := c.ShipWhole(context.Background(), "EU", "AS", 10, 80)
	var se *network.ShipError
	if !errors.As(err, &se) || !errors.Is(err, network.ErrPartitioned) {
		t.Fatalf("error %v, want ShipError wrapping ErrPartitioned", err)
	}
	if se.Attempts != 1 {
		t.Errorf("partition burned %d attempts, want 1", se.Attempts)
	}
	if n := len(c.Ledger.Transfers()); n != 0 {
		t.Errorf("partitioned transfer recorded %d ledger entries", n)
	}
	// The unpartitioned reverse edge still works.
	if err := c.ShipWhole(context.Background(), "AS", "EU", 10, 80); err != nil {
		t.Errorf("reverse edge: %v", err)
	}
}

// TestShipTimeout: an attempt whose simulated time exceeds the budget
// fails with ErrShipTimeout (and is retried like any transient fault).
func TestShipTimeout(t *testing.T) {
	c := shipTestCluster(t)
	c.SetFaults(network.NewFaultPlan(9).SetDefault(network.EdgeFaults{DelayProb: 1, DelayMS: 1000}))
	retry := fastRetry(2)
	retry.TimeoutMS = 50 // β·bytes is 0.8ms; the injected 1000ms delay blows the budget
	c.SetRetry(retry)
	err := c.ShipWhole(context.Background(), "EU", "AS", 10, 800)
	if !errors.Is(err, network.ErrShipTimeout) {
		t.Fatalf("error %v, want ErrShipTimeout", err)
	}
}

// TestShipNoFaultsFastPath: without a fault plan the path accounts and
// returns immediately — no retries, identical to the pre-fault engine.
func TestShipNoFaultsFastPath(t *testing.T) {
	c := shipTestCluster(t)
	if err := c.ShipWhole(context.Background(), "EU", "AS", 10, 80); err != nil {
		t.Fatal(err)
	}
	if c.TotalRetries() != 0 {
		t.Error("fault-free path counted retries")
	}
	if got := c.Ledger.TotalBytes(); got != 80 {
		t.Errorf("ledger bytes = %d", got)
	}
}

// TestShipCancellation: a cancelled context interrupts the backoff wait
// and surfaces context.Canceled, not a ShipError.
func TestShipCancellation(t *testing.T) {
	c := shipTestCluster(t)
	c.SetFaults(network.NewFaultPlan(2).SetDefault(network.EdgeFaults{TransientProb: 1}))
	c.SetRetry(network.RetryPolicy{MaxAttempts: 1000, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 10 * time.Millisecond, Multiplier: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.ShipWhole(ctx, "EU", "AS", 10, 80) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled shipment did not return")
	}
}
