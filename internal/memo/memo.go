// Package memo implements the Volcano-style memo at the core of the
// compliance-based optimizer (Section 6): equivalence groups of logical
// expressions, a rule engine that explores the plan space to fixpoint,
// and a bottom-up implementation pass that produces physical alternatives
// annotated with execution and shipping traits (annotation rules AR1–AR4)
// using the compliance-based cost function (infinite cost — i.e.
// discarded — when an operator's execution trait is empty).
package memo

import (
	"fmt"
	"strconv"
	"strings"

	"cgdqp/internal/cost"
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Memo is the search space: a set of equivalence groups.
type Memo struct {
	Groups []*Group

	byDigest map[string]*MExpr // expression digest -> canonical expression
	est      *cost.Estimator
	// predStrs caches predicate renderings by pointer: rules share
	// predicate expressions across the alternatives they derive, and the
	// recursive String() inside OpDigest dominates digest cost.
	predStrs map[expr.Expr]string
	// conjs and exprCols cache per-predicate conjunct splits and column
	// references for the rule engine, which re-derives them on every
	// rule application otherwise.
	conjs    map[expr.Expr][]expr.Expr
	exprCols map[expr.Expr][]*expr.Col

	// MaxExprs bounds the number of logical expressions created during
	// exploration (a safety valve for very large join graphs).
	MaxExprs int
	// exprCount counts inserted expressions.
	exprCount int
	// DigestConflicts counts expressions whose digest already existed in
	// a different group (the insert is skipped; see Insert).
	DigestConflicts int
}

// Group is one equivalence class of logically equivalent expressions.
// Logical properties (schema, estimated cardinality) are derived from the
// first inserted expression.
type Group struct {
	ID    int
	Exprs []*MExpr
	Cols  []plan.ColRef
	Card  float64

	// fbDigest is the canonical feedback digest of the group (the
	// creating expression's canonical op digest composed over child
	// group digests — equal to plan.SubplanDigest of a tree extracted
	// from the group). Only built when the estimator carries a hint
	// source; empty otherwise.
	fbDigest string

	// Implementation results (set by Implement).
	Alts        []*Alt
	implemented bool
	// canonProjs caches the reorder projection list over Cols (built on
	// first use by canonicalizeAlt; shared by every reordered alternative).
	canonProjs []plan.NamedExpr
}

// MExpr is one logical expression: an operator whose children are groups.
type MExpr struct {
	Op       *plan.Node // operator parameters; Children field unused
	Children []*Group
	Group    *Group

	// ruleState remembers, per rule, the total number of child-group
	// expressions seen at the last application. Rules enumerate all
	// bindings on every call, so re-application is only needed when a
	// child group has gained expressions since.
	ruleState map[string]int
}

// childExprCount sums the sizes of the child groups (the rule-binding
// universe for this expression).
func (e *MExpr) childExprCount() int {
	n := 0
	for _, c := range e.Children {
		n += len(c.Exprs)
	}
	return n
}

// Digest returns the canonical identity of the expression.
func (e *MExpr) Digest() string {
	var b strings.Builder
	b.WriteString(e.Op.OpDigest())
	for _, c := range e.Children {
		fmt.Fprintf(&b, "[%d]", c.ID)
	}
	return b.String()
}

// New creates an empty memo using the estimator for group cardinalities.
func New(est *cost.Estimator) *Memo {
	return &Memo{
		byDigest: map[string]*MExpr{},
		predStrs: map[expr.Expr]string{},
		conjs:    map[expr.Expr][]expr.Expr{},
		exprCols: map[expr.Expr][]*expr.Col{},
		est:      est,
		MaxExprs: 200000,
	}
}

// Conjuncts returns expr.Conjuncts(e) cached per expression pointer.
// Callers must treat the result as read-only (copy before appending).
func (m *Memo) Conjuncts(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	if cs, ok := m.conjs[e]; ok {
		return cs
	}
	cs := expr.Conjuncts(e)
	// Clamp capacity so an append by a careless caller cannot scribble
	// over the cached backing array.
	cs = cs[:len(cs):len(cs)]
	m.conjs[e] = cs
	return cs
}

// ColsOf returns the column references appearing in e, cached per
// expression pointer. Callers must treat the result as read-only.
func (m *Memo) ColsOf(e expr.Expr) []*expr.Col {
	if e == nil {
		return nil
	}
	if cols, ok := m.exprCols[e]; ok {
		return cols
	}
	var cols []*expr.Col
	expr.Walk(e, func(n expr.Expr) bool {
		if c, ok := n.(*expr.Col); ok {
			cols = append(cols, c)
		}
		return true
	})
	cols = cols[:len(cols):len(cols)]
	m.exprCols[e] = cols
	return cols
}

// exprDigest is MExpr.Digest with the predicate renderings memoized on
// the memo (predicates are shared by pointer across derived expressions,
// and rule re-application recomputes digests of mostly-known
// expressions, so the rendering dominates insert cost).
func (m *Memo) exprDigest(e *MExpr) string {
	var b strings.Builder
	b.Grow(64)
	switch e.Op.Kind {
	case plan.Filter, plan.FilterExec, plan.Join, plan.HashJoin, plan.NLJoin, plan.MergeJoin:
		b.WriteString(e.Op.Kind.String())
		b.WriteByte(':')
		if e.Op.Pred != nil {
			b.WriteString(m.predString(e.Op.Pred))
		}
	default:
		b.WriteString(e.Op.OpDigest())
	}
	for _, c := range e.Children {
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(c.ID))
		b.WriteByte(']')
	}
	return b.String()
}

func (m *Memo) predString(e expr.Expr) string {
	if s, ok := m.predStrs[e]; ok {
		return s
	}
	var s string
	if a, ok := e.(*expr.And); ok {
		// Recurse through conjunctions so freshly rebuilt And chains
		// (rules recombine conjuncts on every application) reuse the
		// cached renderings of their stable leaves. Mirrors And.String.
		s = "(" + m.predString(a.L) + " AND " + m.predString(a.R) + ")"
	} else {
		s = e.String()
	}
	m.predStrs[e] = s
	return s
}

// Budget reports whether the exploration budget is exhausted.
func (m *Memo) Budget() bool { return m.exprCount >= m.MaxExprs }

// ExprCount returns the number of logical expressions in the memo.
func (m *Memo) ExprCount() int { return m.exprCount }

// InsertTree recursively inserts a logical plan tree, returning its root
// group. Identical subtrees share groups via digest deduplication.
func (m *Memo) InsertTree(n *plan.Node) *Group {
	children := make([]*Group, len(n.Children))
	for i, c := range n.Children {
		children[i] = m.InsertTree(c)
	}
	op := stripChildren(n)
	e, _ := m.InsertExpr(op, children, nil)
	return e.Group
}

// stripChildren copies the operator parameters without the subtree.
func stripChildren(n *plan.Node) *plan.Node {
	cp := *n
	cp.Children = nil
	cp.Exec = plan.SiteSet{}
	cp.ShipT = plan.SiteSet{}
	cp.Loc = ""
	cp.Cost = 0
	return &cp
}

// InsertExpr inserts an expression into the memo. When target is nil the
// expression lands in the group matching its digest, or a fresh group.
// When target is given, the expression joins that group — unless an
// expression with the same digest already lives in a different group, in
// which case the insert is skipped (no group merging; the plan space
// loses one equivalence link but stays correct). The bool reports whether
// a new expression was created.
func (m *Memo) InsertExpr(op *plan.Node, children []*Group, target *Group) (*MExpr, bool) {
	e := &MExpr{Op: op, Children: children}
	d := m.exprDigest(e)
	if existing, ok := m.byDigest[d]; ok {
		if target != nil && existing.Group != target {
			m.DigestConflicts++
		}
		return existing, false
	}
	if target == nil {
		target = m.newGroup(op, children)
	}
	e.Group = target
	target.Exprs = append(target.Exprs, e)
	m.byDigest[d] = e
	m.exprCount++
	return e, true
}

// newGroup creates a group, deriving schema and cardinality from the
// creating expression.
func (m *Memo) newGroup(op *plan.Node, children []*Group) *Group {
	g := &Group{ID: len(m.Groups)}
	g.Cols = outputCols(op, children)
	cards := make([]float64, len(children))
	for i, c := range children {
		cards[i] = c.Card
	}
	probe := *op
	probe.Cols = g.Cols
	g.Card = m.est.NodeCard(&probe, cards)
	// Feedback: when observed actuals are available, the group's
	// canonical subplan digest is looked up and a high-confidence actual
	// replaces the statistics estimate. Groups derive cardinality from
	// their creating expression, so every downstream estimate (parent
	// groups, implementation costs, phase-2 ship pricing) sees the
	// corrected value.
	if m.est.HasHints() {
		var b strings.Builder
		b.WriteString(op.CanonOpDigest())
		b.WriteByte('(')
		for i, c := range children {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.fbDigest)
		}
		b.WriteByte(')')
		g.fbDigest = b.String()
		if card, ok := m.est.CardHint(g.fbDigest); ok {
			g.Card = card
		}
	}
	m.Groups = append(m.Groups, g)
	return g
}

// outputCols computes an operator's output schema from its parameters and
// child group schemas. Scans, projections and aggregations define their
// own schema; joins concatenate; the rest pass through.
func outputCols(op *plan.Node, children []*Group) []plan.ColRef {
	switch op.Kind {
	case plan.Scan, plan.TableScan:
		return op.Cols
	case plan.Project, plan.ProjectExec, plan.Aggregate, plan.HashAgg:
		return op.Cols
	case plan.Join, plan.HashJoin, plan.NLJoin:
		out := make([]plan.ColRef, 0, len(children[0].Cols)+len(children[1].Cols))
		out = append(out, children[0].Cols...)
		return append(out, children[1].Cols...)
	default:
		if len(children) > 0 {
			return children[0].Cols
		}
		return op.Cols
	}
}

// NewExpr is a rule output: an operator over children that are either
// existing groups (*Group) or nested *NewExpr subtrees to be inserted.
type NewExpr struct {
	Op       *plan.Node
	Children []any // *Group | *NewExpr
}

// InsertNew resolves a NewExpr bottom-up. The root lands in target.
func (m *Memo) InsertNew(ne *NewExpr, target *Group) (*MExpr, bool) {
	children := make([]*Group, len(ne.Children))
	for i, c := range ne.Children {
		switch ch := c.(type) {
		case *Group:
			children[i] = ch
		case *NewExpr:
			sub, _ := m.InsertNew(ch, nil)
			children[i] = sub.Group
		default:
			panic(fmt.Sprintf("memo: invalid NewExpr child %T", c))
		}
	}
	return m.InsertExpr(ne.Op, children, target)
}

// Rule is a transformation rule: given a logical expression (with access
// to the memo for matching child-group expressions), it produces zero or
// more equivalent expressions for the same group.
type Rule interface {
	Name() string
	Apply(m *Memo, e *MExpr) []*NewExpr
}

// Explore applies the rules to fixpoint (or until the expression budget
// is exhausted). Rules are re-applied across passes because a rule's
// bindings may grow as child groups gain expressions; digest-based
// deduplication keeps re-application cheap and guarantees termination
// (the space of derivable expressions is finite).
func (m *Memo) Explore(rules []Rule) {
	for {
		changed := false
		// Iterate with growing bounds: rules may append groups/exprs.
		for gi := 0; gi < len(m.Groups); gi++ {
			g := m.Groups[gi]
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				for _, r := range rules {
					if m.Budget() {
						return
					}
					// Skip when neither this expression nor its binding
					// universe changed since the last application.
					universe := e.childExprCount()
					if e.ruleState == nil {
						e.ruleState = map[string]int{}
					}
					if seen, ok := e.ruleState[r.Name()]; ok && seen == universe {
						continue
					}
					e.ruleState[r.Name()] = universe
					for _, ne := range r.Apply(m, e) {
						if _, fresh := m.InsertNew(ne, g); fresh {
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}
