package memo

import (
	"strings"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Index access paths. A Filter over a bare Scan may be implemented as an
// IndexScan (B+ tree range scan on an indexed column with the full
// predicate re-applied as a residual), and a Join whose inner side is a
// bare Scan with an index on the join key may be implemented as an
// IndexLookupJoin (probe the inner index once per outer row instead of
// building a hash table). Both paths pin execution to the table's site —
// the index lives where the data lives — and derive their shipping trait
// through the same AR3 ∪ AR4 rules as every other alternative; the policy
// analyzer describes them exactly as the operators they replace, so
// compliance decisions are unchanged by access-path choice.

// scanExpr returns the bare logical Scan expression of a group, or nil
// when the group is not a scan group.
func scanExpr(g *Group) *plan.Node {
	for _, e := range g.Exprs {
		if e.Op.Kind == plan.Scan && e.Op.Table != nil {
			return e.Op
		}
	}
	return nil
}

// indexableType mirrors store.IndexableType: int64-class or string keys.
func indexableType(t expr.Type) bool {
	switch t {
	case expr.TInt, expr.TDate, expr.TBool, expr.TString:
		return true
	}
	return false
}

// intClassType groups the types sharing the B+ tree int64 key lane.
func intClassType(t expr.Type) bool {
	return t == expr.TInt || t == expr.TDate || t == expr.TBool
}

// laneCompatible reports whether a value of type vt can probe an index
// over a column of type ct (same key lane).
func laneCompatible(ct, vt expr.Type) bool {
	if ct == expr.TString {
		return vt == expr.TString
	}
	return intClassType(ct) && intClassType(vt)
}

// idxBounds accumulates the tightest [lo, hi] range the predicate's
// conjuncts impose on one column.
type idxBounds struct {
	lo, hi       *expr.Value
	loInc, hiInc bool
	found        bool
}

func (b *idxBounds) tightenLo(v expr.Value, inc bool) {
	if b.lo == nil {
		b.lo, b.loInc, b.found = &v, inc, true
		return
	}
	c, err := v.Compare(*b.lo)
	if err != nil {
		return
	}
	if c > 0 || (c == 0 && !inc) {
		b.lo, b.loInc = &v, inc
	}
	b.found = true
}

func (b *idxBounds) tightenHi(v expr.Value, inc bool) {
	if b.hi == nil {
		b.hi, b.hiInc, b.found = &v, inc, true
		return
	}
	c, err := v.Compare(*b.hi)
	if err != nil {
		return
	}
	if c < 0 || (c == 0 && !inc) {
		b.hi, b.hiInc = &v, inc
	}
	b.found = true
}

// matchesCol reports whether e is a column reference to alias.col (an
// unqualified reference matches any alias, as in the scan's own schema).
func matchesCol(e expr.Expr, alias, col string) bool {
	c, ok := e.(*expr.Col)
	if !ok {
		return false
	}
	if !strings.EqualFold(c.Name, col) {
		return false
	}
	return c.Table == "" || strings.EqualFold(c.Table, alias)
}

// constVal unwraps a literal operand.
func constVal(e expr.Expr) (expr.Value, bool) {
	c, ok := e.(*expr.Const)
	if !ok {
		return expr.Value{}, false
	}
	return c.Val, true
}

// indexBounds extracts the tightest index range the predicate imposes on
// alias.col through `col CMP literal` conjuncts (either operand order)
// and BETWEEN. found is false when no conjunct bounds the column — a
// full-index sweep never beats the plain scan, so no alternative is
// generated then.
func (m *Memo) indexBounds(pred expr.Expr, alias, col string, colType expr.Type) idxBounds {
	var b idxBounds
	for _, c := range m.Conjuncts(pred) {
		switch n := c.(type) {
		case *expr.Cmp:
			op := n.Op
			var v expr.Value
			if matchesCol(n.L, alias, col) {
				val, ok := constVal(n.R)
				if !ok {
					continue
				}
				v = val
			} else if matchesCol(n.R, alias, col) {
				val, ok := constVal(n.L)
				if !ok {
					continue
				}
				v = val
				op = op.Flip()
			} else {
				continue
			}
			if v.IsNull() || !laneCompatible(colType, v.T) {
				continue
			}
			switch op {
			case expr.EQ:
				b.tightenLo(v, true)
				b.tightenHi(v, true)
			case expr.LT:
				b.tightenHi(v, false)
			case expr.LE:
				b.tightenHi(v, true)
			case expr.GT:
				b.tightenLo(v, false)
			case expr.GE:
				b.tightenLo(v, true)
			}
		case *expr.Between:
			if !matchesCol(n.E, alias, col) {
				continue
			}
			if n.Lo.IsNull() || n.Hi.IsNull() {
				continue
			}
			if !laneCompatible(colType, n.Lo.T) || !laneCompatible(colType, n.Hi.T) {
				continue
			}
			b.tightenLo(n.Lo, true)
			b.tightenHi(n.Hi, true)
		}
	}
	return b
}

// indexScanAlts generates the IndexScan alternatives of a Filter
// expression whose child group is a bare Scan: one per indexed column
// the predicate bounds.
func (m *Memo) indexScanAlts(e *MExpr, eCols []plan.ColRef, cfg *ImplConfig) []*Alt {
	scanOp := scanExpr(e.Children[0])
	if scanOp == nil || e.Op.Pred == nil {
		return nil
	}
	t := scanOp.Table
	if len(t.Indexes) == 0 {
		return nil
	}
	var out []*Alt
	for _, idxName := range t.Indexes {
		col, ok := t.Column(idxName)
		if !ok || !indexableType(col.Type) {
			continue
		}
		b := m.indexBounds(e.Op.Pred, scanOp.Alias, col.Name, col.Type)
		if !b.found {
			continue
		}
		blk := &altBlock{node: *scanOp}
		node := &blk.node
		node.Kind = plan.IndexScan
		node.Cols = eCols
		node.Pred = e.Op.Pred
		node.IdxCol = col.Name
		node.IdxLo, node.IdxHi = b.lo, b.hi
		node.IdxLoInc, node.IdxHiInc = b.loInc, b.hiInc
		node.Card = e.Group.Card
		// AR1: the index lives with the table; the scan runs at its site.
		node.Exec = plan.NewSiteSet(scanLocation(scanOp))
		node.Cost = cfg.Est.AccessPathCost(node, node.Card)

		alt := &blk.alt
		alt.Tree = node
		alt.Cost = node.Cost
		// A range scan delivers rows in index-key order.
		for _, cr := range eCols {
			if strings.EqualFold(cr.Name, col.Name) {
				alt.Order = []string{cr.Key()}
				break
			}
		}
		if cfg.Compliant {
			ship := node.Exec
			if q, ok := cfg.analyzer.Describe(node); ok {
				ship = ship.Union(cfg.Evaluator.EvaluateWith(q, cfg.Stats))
				alt.DescKey = q.Digest()
			}
			node.ShipT = ship
			alt.Ship = ship
		}
		out = append(out, canonicalizeAlt(alt, e.Group))
	}
	return out
}

// indexLookupJoinAlt builds an IndexLookupJoin alternative for a Join
// expression: the inner (right) child group must be a bare Scan with an
// index on one side of an equi-join conjunct whose other side comes from
// the outer child. Returns nil when no such access path exists or the
// alternative is infeasible.
func (m *Memo) indexLookupJoinAlt(e *MExpr, left *Alt, eCols []plan.ColRef, cfg *ImplConfig) *Alt {
	scanOp := scanExpr(e.Children[1])
	if scanOp == nil {
		return nil
	}
	t := scanOp.Table
	if len(t.Indexes) == 0 {
		return nil
	}
	// Find an equi conjunct inner.idxCol = outer.col with lane-compatible
	// types; the full join predicate is re-applied per probe, so any one
	// usable key suffices.
	var idxCol string
	var outerKey *expr.Col
	outerCols := e.Children[0].Cols
	for _, cmp := range cfg.equiCmps(e.Op.Pred) {
		l := cmp.L.(*expr.Col)
		r := cmp.R.(*expr.Col)
		for _, pair := range [2][2]*expr.Col{{l, r}, {r, l}} {
			inner, outer := pair[0], pair[1]
			col, ok := t.Column(inner.Name)
			if !ok || !t.Indexed(col.Name) || !indexableType(col.Type) {
				continue
			}
			if !(inner.Table == "" || strings.EqualFold(inner.Table, scanOp.Alias)) {
				continue
			}
			oi := colRefIndex(outer, outerCols)
			if oi < 0 || !laneCompatible(col.Type, outerCols[oi].Type) {
				continue
			}
			idxCol, outerKey = col.Name, outer
			break
		}
		if outerKey != nil {
			break
		}
	}
	if outerKey == nil {
		return nil
	}
	innerLoc := scanLocation(scanOp)
	// The probe runs where the index lives; the outer stream must be
	// allowed to ship there (AR2 over the single shipped input).
	exec := plan.NewSiteSet(innerLoc)
	if cfg.Compliant {
		exec = exec.Intersect(left.Ship)
		if exec.Empty() {
			return nil
		}
	}
	innerCard := cfg.Est.NodeCard(scanOp, nil)
	inner := &plan.Node{
		Kind:    plan.TableScan,
		Table:   t,
		Alias:   scanOp.Alias,
		FragIdx: scanOp.FragIdx,
		Cols:    e.Children[1].Cols,
		Card:    innerCard,
		Exec:    plan.NewSiteSet(innerLoc),
		ShipT:   plan.NewSiteSet(innerLoc),
	}
	blk := &altBlock{node: *e.Op}
	node := &blk.node
	node.Kind = plan.IndexLookupJoin
	node.Cols = eCols
	node.Card = e.Group.Card
	node.Exec = exec
	blk.kids[0], blk.kids[1] = left.Tree, inner
	node.Children = blk.kids[:2:2]
	node.IdxCol = idxCol
	node.IdxOuter = outerKey
	// The inner scan is never executed (its pages are reached through the
	// index), so only the outer subtree's cost accrues.
	node.Cost = left.Cost + cfg.Est.AccessPathCost(node, node.Card, left.Tree.Card, innerCard)

	alt := &blk.alt
	alt.Tree = node
	alt.Cost = node.Cost
	alt.Order = left.Order // probes stream the outer input
	if cfg.Compliant {
		ship := exec
		if q, ok := cfg.analyzer.Describe(node); ok {
			ship = ship.Union(cfg.Evaluator.EvaluateWith(q, cfg.Stats))
			alt.DescKey = q.Digest()
		}
		node.ShipT = ship
		alt.Ship = ship
	}
	return canonicalizeAlt(alt, e.Group)
}

// colRefIndex resolves a column reference against a schema (the group
// column order), or -1.
func colRefIndex(c *expr.Col, cols []plan.ColRef) int {
	idx := -1
	for i, cr := range cols {
		if !strings.EqualFold(c.Name, cr.Name) {
			continue
		}
		if c.Table != "" {
			if strings.EqualFold(c.Table, cr.Table) {
				return i
			}
			continue
		}
		if idx >= 0 {
			return -1 // ambiguous
		}
		idx = i
	}
	return idx
}
