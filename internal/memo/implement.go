package memo

import (
	"math"
	"sort"
	"strings"

	"cgdqp/internal/cost"
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
)

// Alt is one physical alternative for a group: a concrete operator tree
// whose nodes carry cardinalities and (in compliant mode) execution and
// shipping traits.
type Alt struct {
	Tree *plan.Node
	Cost float64
	// Ship is the root's shipping trait 𝒮 (compliant mode only).
	Ship plan.SiteSet
	// DescKey identifies the subtree as a local query for AR4 pruning
	// purposes ("" when the subtree is not a local query).
	DescKey string
	// Order lists the column keys the output is sorted by (ascending) —
	// the classic "interesting property" that merge joins provide and
	// sort elision consumes.
	Order []string
}

// ImplConfig configures the implementation pass.
type ImplConfig struct {
	Est *cost.Estimator
	// Compliant enables trait derivation (AR1–AR4) and the
	// compliance-based cost function; when false the pass behaves like a
	// traditional cost-based optimizer (single cheapest alternative per
	// group, all traits ignored).
	Compliant bool
	// Evaluator supplies 𝒜 for AR4 (required when Compliant).
	Evaluator *policy.Evaluator
	// AllLocations is the universe of sites (traditional mode execution
	// traits for the site selector).
	AllLocations []string
	// MaxAlts caps the number of Pareto alternatives kept per group.
	MaxAlts int
	// TrackOrder enables sort-order as a Pareto dimension (set when the
	// query contains an ORDER BY; otherwise orderings cannot pay off and
	// tracking them would only widen the alternative fronts).
	TrackOrder bool
	// Stats receives per-optimization evaluator statistics (η, calls,
	// hits). The evaluator itself may be shared across concurrent
	// optimizations; this handle is owned by one Implement pass.
	Stats *policy.EvalStats

	// analyzer caches local-query analysis across alternatives.
	analyzer *policy.Analyzer
	// equiConds caches, per join predicate, its equi-join conjuncts
	// (Col = Col); predicates are shared across memo expressions, so the
	// conjunct split would otherwise be recomputed for every alternative.
	equiConds map[expr.Expr][]*expr.Cmp
	// allSites is NewSiteSet(AllLocations...), built once per pass.
	allSites plan.SiteSet
}

// equiCmps returns the equi-join conjuncts (Col = Col) of a join
// predicate, cached per predicate pointer.
func (cfg *ImplConfig) equiCmps(pred expr.Expr) []*expr.Cmp {
	if pred == nil {
		return nil
	}
	if cs, ok := cfg.equiConds[pred]; ok {
		return cs
	}
	var cs []*expr.Cmp
	for _, c := range expr.Conjuncts(pred) {
		if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.EQ {
			if _, lok := cmp.L.(*expr.Col); lok {
				if _, rok := cmp.R.(*expr.Col); rok {
					cs = append(cs, cmp)
				}
			}
		}
	}
	if cfg.equiConds == nil {
		cfg.equiConds = map[expr.Expr][]*expr.Cmp{}
	}
	cfg.equiConds[pred] = cs
	return cs
}

// Implement computes the physical alternatives of a group bottom-up,
// memoized. In compliant mode an alternative is discarded when its
// execution trait is empty (the infinite-cost adaptation of Section 6.1).
func (m *Memo) Implement(g *Group, cfg *ImplConfig) []*Alt {
	if g.implemented {
		return g.Alts
	}
	g.implemented = true // set first; the memo DAG is acyclic by construction
	if cfg.analyzer == nil {
		cfg.analyzer = policy.NewAnalyzer()
		cfg.allSites = plan.NewSiteSet(cfg.AllLocations...)
	}
	maxAlts := cfg.MaxAlts
	if maxAlts <= 0 {
		maxAlts = 12
	}
	if !cfg.Compliant {
		maxAlts = 1
	}

	var alts []*Alt
	for _, e := range g.Exprs {
		childAlts := make([][]*Alt, len(e.Children))
		feasible := true
		for i, c := range e.Children {
			childAlts[i] = m.Implement(c, cfg)
			if len(childAlts[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		// The output schema depends on the expression alone, not on the
		// chosen physical kind or child combination; hoist it out of the
		// per-alternative loop (alternatives share the slice, plans never
		// mutate their Cols). The merge-join key columns likewise: every
		// child alternative is canonicalized to its group's schema, so
		// resolving the equi keys against the group columns once is
		// equivalent to resolving them per combination.
		eCols := outputCols(e.Op, e.Children)
		kinds := physicalKinds(e.Op, cfg)
		var mjLk, mjRk []string
		for _, phys := range kinds {
			if phys == plan.MergeJoin {
				mjLk, mjRk = equiKeyCols(cfg.equiCmps(e.Op.Pred), e.Children[0].Cols, e.Children[1].Cols)
			}
		}
		for _, phys := range kinds {
			forEachCombo(childAlts, func(combo []*Alt) {
				alt := m.buildAlt(e, phys, eCols, mjLk, mjRk, combo, cfg)
				if alt != nil {
					alts = insertAlt(alts, alt, maxAlts, cfg)
				}
			})
		}
		// Index access paths (see indexpaths.go): IndexScan implements a
		// Filter over a bare Scan; IndexLookupJoin implements a Join whose
		// inner side is a bare Scan with an index on the join key.
		if e.Op.Kind == plan.Filter && len(e.Children) == 1 {
			for _, alt := range m.indexScanAlts(e, eCols, cfg) {
				alts = insertAlt(alts, alt, maxAlts, cfg)
			}
		}
		if e.Op.Kind == plan.Join && len(e.Children) == 2 {
			for _, left := range childAlts[0] {
				if alt := m.indexLookupJoinAlt(e, left, eCols, cfg); alt != nil {
					alts = insertAlt(alts, alt, maxAlts, cfg)
				}
			}
		}
		// Sort elision: when a child alternative already delivers the
		// requested ordering, the Sort disappears entirely.
		if e.Op.Kind == plan.Sort {
			if want, ok := ascColKeys(e.Op.SortKeys); ok {
				for _, child := range childAlts[0] {
					if prefixCovered(child.Order, want) {
						alts = insertAlt(alts, child, maxAlts, cfg)
					}
				}
			}
		}
	}
	g.Alts = alts
	return alts
}

// Static physical-kind slices: physicalKinds is called once per memo
// expression and must not allocate.
var (
	kindsScan     = []plan.Kind{plan.TableScan}
	kindsFilter   = []plan.Kind{plan.FilterExec}
	kindsProject  = []plan.Kind{plan.ProjectExec}
	kindsEquiJoin = []plan.Kind{plan.HashJoin, plan.MergeJoin, plan.NLJoin}
	kindsNLJoin   = []plan.Kind{plan.NLJoin}
	kindsAgg      = []plan.Kind{plan.HashAgg}
	kindsSort     = []plan.Kind{plan.SortExec}
	kindsLimit    = []plan.Kind{plan.LimitExec}
	kindsUnion    = []plan.Kind{plan.UnionAll}
)

// physicalKinds maps a logical operator to its physical implementations.
func physicalKinds(op *plan.Node, cfg *ImplConfig) []plan.Kind {
	switch op.Kind {
	case plan.Scan:
		return kindsScan
	case plan.Filter:
		return kindsFilter
	case plan.Project:
		return kindsProject
	case plan.Join:
		if len(cfg.equiCmps(op.Pred)) > 0 {
			return kindsEquiJoin
		}
		return kindsNLJoin
	case plan.Aggregate:
		return kindsAgg
	case plan.Sort:
		return kindsSort
	case plan.Limit:
		return kindsLimit
	case plan.Union:
		return kindsUnion
	}
	// Already physical (should not happen for logical exploration).
	return []plan.Kind{op.Kind}
}

// altBlock fuses the three allocations an alternative needs — the Alt,
// its operator node and the (≤2-ary) child pointer slice — into one.
type altBlock struct {
	alt  Alt
	node plan.Node
	kids [2]*plan.Node
}

// buildAlt constructs one physical alternative and derives its traits.
// It returns nil when the alternative is infeasible (empty execution
// trait in compliant mode — the infinite-cost rule).
func (m *Memo) buildAlt(e *MExpr, phys plan.Kind, eCols []plan.ColRef, mjLk, mjRk []string, combo []*Alt, cfg *ImplConfig) *Alt {
	// Merge join is only worth enumerating with usable equi keys and when
	// at least one input already delivers its key order (otherwise two
	// sorts never beat a hash join); check before building anything.
	lOrdered, rOrdered := false, false
	if phys == plan.MergeJoin {
		if len(mjLk) == 0 {
			return nil // no usable equi keys after child resolution
		}
		lOrdered = prefixCovered(combo[0].Order, mjLk)
		rOrdered = prefixCovered(combo[1].Order, mjRk)
		if !lOrdered && !rOrdered {
			return nil
		}
	}
	// Derive the execution trait up front (AR1/AR2): infeasible
	// alternatives — empty trait, the infinite-cost rule — are discarded
	// before anything is allocated. SiteSet algebra is allocation-free.
	var exec plan.SiteSet
	switch {
	case phys == plan.TableScan:
		// AR1: a tablescan executes at its table's source location.
		exec = plan.NewSiteSet(scanLocation(e.Op))
	case !cfg.Compliant:
		// Traditional mode: anything but a leaf may run anywhere.
		exec = cfg.allSites
	default:
		// AR2: an operator may execute wherever every input may legally
		// be shipped.
		exec = combo[0].Ship
		for _, c := range combo[1:] {
			exec = exec.Intersect(c.Ship)
		}
		if exec.Empty() {
			return nil
		}
	}

	blk := &altBlock{node: *e.Op}
	node := &blk.node
	node.Kind = phys
	// Schema comes from this expression's own children (a commuted join
	// orders its output columns differently from the group canon; upstream
	// operators resolve columns by name, so order is a per-tree detail).
	node.Cols = eCols
	node.Card = e.Group.Card
	node.Exec = exec
	if len(combo) <= len(blk.kids) {
		node.Children = blk.kids[:len(combo):len(combo)]
	} else {
		node.Children = make([]*plan.Node, len(combo))
	}
	// Input cardinalities stay on the stack for the common arities.
	var inCardsBuf [2]float64
	inCards := inCardsBuf[:]
	if len(combo) > len(inCardsBuf) {
		inCards = make([]float64, len(combo))
	} else {
		inCards = inCards[:len(combo)]
	}
	childCost := 0.0
	for i, c := range combo {
		node.Children[i] = c.Tree
		inCards[i] = c.Tree.Card
		childCost += c.Cost
	}
	opCost := cost.OperatorCost(phys, node.Card, inCards...)
	// Merge join pays to sort any input that is not already ordered on
	// its join keys; its output provides the left-key ordering.
	var order []string
	switch phys {
	case plan.MergeJoin:
		if !lOrdered {
			opCost += cost.SortCost(inCards[0])
		}
		if !rOrdered {
			opCost += cost.SortCost(inCards[1])
		}
		order = mjLk
	case plan.TableScan:
		// Scans of physically sorted tables deliver that order.
		if node.Table != nil {
			for _, name := range node.Table.SortedBy {
				order = append(order, node.Alias+"."+name)
			}
		}
	case plan.HashAgg, plan.UnionAll:
		// unordered
	case plan.SortExec:
		if keys, ok := ascColKeys(node.SortKeys); ok {
			order = keys
		}
	case plan.ProjectExec:
		order = orderThroughSchema(combo[0].Order, node.Cols)
	default:
		// Filters, limits, hash/NL joins (which stream their left input)
		// preserve the left child's ordering.
		if len(combo) > 0 {
			order = combo[0].Order
		}
	}
	total := childCost + opCost
	node.Cost = total

	alt := &blk.alt
	alt.Tree = node
	alt.Cost = total
	alt.Order = order
	if !cfg.Compliant {
		// Traditional mode: traits carry only what the site selector needs.
		return canonicalizeAlt(alt, e.Group)
	}

	// AR3: output can ship wherever the operator can execute.
	ship := exec
	// AR4: when the subtree is a local query over a single database,
	// the policy evaluator contributes destinations.
	if q, ok := cfg.analyzer.Describe(node); ok {
		ship = ship.Union(cfg.Evaluator.EvaluateWith(q, cfg.Stats))
		alt.DescKey = q.Digest()
	}
	node.ShipT = ship
	alt.Ship = ship
	return canonicalizeAlt(alt, e.Group)
}

// canonicalizeAlt makes the alternative's output schema match the group's
// canonical column order. Group members may produce the same columns in
// different orders (a commuted join concatenates its sides the other way
// round); parents resolve positions against the group schema, so every
// alternative must deliver exactly that layout. A cheap reordering
// projection is inserted when the orders differ.
func canonicalizeAlt(alt *Alt, g *Group) *Alt {
	node := alt.Tree
	if sameColKeys(node.Cols, g.Cols) {
		return alt
	}
	// The reorder projection list depends only on the group schema; cache
	// it on the group — every mis-ordered alternative shares it (plan
	// trees never mutate their Projs).
	if g.canonProjs == nil {
		projs := make([]plan.NamedExpr, len(g.Cols))
		for i, c := range g.Cols {
			projs[i] = plan.NamedExpr{E: c.Col(), Name: c.Name, Type: c.Type}
		}
		g.canonProjs = projs
	}
	blk := &altBlock{alt: *alt}
	blk.kids[0] = node
	blk.node = plan.Node{
		Kind:     plan.ProjectExec,
		Children: blk.kids[:1:1],
		Cols:     g.Cols,
		Projs:    g.canonProjs,
		Card:     node.Card,
		Cost:     node.Cost + cost.OperatorCost(plan.ProjectExec, node.Card, node.Card),
		Exec:     node.Exec,
		ShipT:    node.ShipT,
	}
	out := &blk.alt
	out.Tree = &blk.node
	out.Cost = blk.node.Cost
	// A pure reorder keeps every column; the ordering property survives.
	return out
}

func sameColKeys(a, b []plan.ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Field-wise comparison of what Key() concatenates (no allocation).
		if a[i].Table != b[i].Table || a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

func scanLocation(n *plan.Node) string {
	idx := n.FragIdx
	if idx < 0 {
		idx = 0
	}
	if n.Table == nil || idx >= len(n.Table.Fragments) {
		return ""
	}
	return n.Table.Fragments[idx].Location
}

// insertAlt adds an alternative to a Pareto-pruned list. Alternative B
// dominates A when B costs no more, B's shipping trait covers A's, and
// the two describe the same local query (or A describes none) — the
// descriptor guard keeps alternatives whose different masking shapes
// could yield different AR4 results upstream.
func insertAlt(alts []*Alt, alt *Alt, maxAlts int, cfg *ImplConfig) []*Alt {
	if !cfg.Compliant && !cfg.TrackOrder {
		if len(alts) == 0 {
			return []*Alt{alt}
		}
		if alt.Cost < alts[0].Cost {
			alts[0] = alt
		}
		return alts
	}
	for _, other := range alts {
		if dominates(other, alt, cfg) {
			return alts
		}
	}
	kept := alts[:0]
	for _, other := range alts {
		if !dominates(alt, other, cfg) {
			kept = append(kept, other)
		}
	}
	kept = append(kept, alt)
	if len(kept) > maxAlts {
		sort.Slice(kept, func(i, j int) bool { return kept[i].Cost < kept[j].Cost })
		kept = kept[:maxAlts]
	}
	return kept
}

func dominates(b, a *Alt, cfg *ImplConfig) bool {
	if b.Cost > a.Cost {
		return false
	}
	if cfg.Compliant && !b.Ship.SupersetOf(a.Ship) {
		return false
	}
	if cfg.TrackOrder && !prefixCovered(b.Order, a.Order) {
		return false // A is more interestingly ordered
	}
	if cfg.Compliant && a.DescKey != "" && a.DescKey != b.DescKey {
		return false
	}
	return true
}

// SortKeysTrackable reports whether an ORDER BY could be satisfied by a
// tracked ordering (all-ascending plain column keys).
func SortKeysTrackable(keys []plan.SortKey) bool {
	_, ok := ascColKeys(keys)
	return ok
}

// ascColKeys extracts the column keys of sort keys when every key is a
// plain ascending column reference (the only orderings tracked).
func ascColKeys(keys []plan.SortKey) ([]string, bool) {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		c, ok := k.E.(*expr.Col)
		if !ok || k.Desc {
			return nil, false
		}
		out = append(out, c.Key())
	}
	return out, true
}

// prefixCovered reports whether want is a prefix of have (an output
// sorted by (a, b) satisfies a requirement for (a)).
func prefixCovered(have, want []string) bool {
	if len(want) > len(have) {
		return false
	}
	for i := range want {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}

// orderThroughSchema truncates an ordering at the first column that does
// not survive into the given output schema.
func orderThroughSchema(order []string, cols []plan.ColRef) []string {
	var out []string
	for _, key := range order {
		found := false
		for _, c := range cols {
			if c.Key() == key {
				found = true
				break
			}
		}
		if !found {
			break
		}
		out = append(out, key)
	}
	return out
}

// equiKeyCols extracts, per equi-join conjunct, the (left, right) column
// keys resolved against the child schemas; conjuncts whose sides do not
// split cleanly are skipped.
func equiKeyCols(cmps []*expr.Cmp, leftCols, rightCols []plan.ColRef) (lk, rk []string) {
	inCols := func(c *expr.Col, cols []plan.ColRef) (string, bool) {
		for _, cr := range cols {
			if strings.EqualFold(cr.Name, c.Name) && (c.Table == "" || strings.EqualFold(cr.Table, c.Table)) {
				return cr.Key(), true
			}
		}
		return "", false
	}
	for _, cmp := range cmps {
		a := cmp.L.(*expr.Col)
		b := cmp.R.(*expr.Col)
		if la, ok1 := inCols(a, leftCols); ok1 {
			if rb, ok2 := inCols(b, rightCols); ok2 {
				lk = append(lk, la)
				rk = append(rk, rb)
				continue
			}
		}
		if lb, ok1 := inCols(b, leftCols); ok1 {
			if ra, ok2 := inCols(a, rightCols); ok2 {
				lk = append(lk, lb)
				rk = append(rk, ra)
			}
		}
	}
	return lk, rk
}

// forEachCombo enumerates the cartesian product of child alternatives.
// The combo slice is reused across invocations; fn must copy anything it
// retains (buildAlt copies the members into the node's Children).
func forEachCombo(childAlts [][]*Alt, fn func([]*Alt)) {
	if len(childAlts) == 0 {
		fn(nil)
		return
	}
	combo := make([]*Alt, len(childAlts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(childAlts) {
			fn(combo)
			return
		}
		for _, a := range childAlts[i] {
			combo[i] = a
			rec(i + 1)
		}
	}
	rec(0)
}

// Best returns the cheapest alternative of a group satisfying the
// compliance-based optimization goal (non-empty shipping trait in
// compliant mode). When requiredLoc is non-empty, only alternatives
// whose output may legally reach that location qualify (the result must
// be deliverable there). It returns nil when the group has no feasible
// alternative — the optimizer then rejects the query.
func Best(g *Group, compliant bool, requiredLoc string) *Alt {
	var best *Alt
	for _, a := range g.Alts {
		if compliant {
			if a.Ship.Empty() {
				continue
			}
			if requiredLoc != "" && !a.Ship.Contains(requiredLoc) {
				continue
			}
		}
		if best == nil || a.Cost < best.Cost {
			best = a
		}
	}
	return best
}

// BestCost returns the cost of the best alternative or +Inf.
func BestCost(g *Group, compliant bool) float64 {
	if b := Best(g, compliant, ""); b != nil {
		return b.Cost
	}
	return math.Inf(1)
}
