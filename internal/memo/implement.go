package memo

import (
	"math"
	"sort"
	"strings"

	"cgdqp/internal/cost"
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
)

// Alt is one physical alternative for a group: a concrete operator tree
// whose nodes carry cardinalities and (in compliant mode) execution and
// shipping traits.
type Alt struct {
	Tree *plan.Node
	Cost float64
	// Ship is the root's shipping trait 𝒮 (compliant mode only).
	Ship plan.SiteSet
	// DescKey identifies the subtree as a local query for AR4 pruning
	// purposes ("" when the subtree is not a local query).
	DescKey string
	// Order lists the column keys the output is sorted by (ascending) —
	// the classic "interesting property" that merge joins provide and
	// sort elision consumes.
	Order []string
}

// ImplConfig configures the implementation pass.
type ImplConfig struct {
	Est *cost.Estimator
	// Compliant enables trait derivation (AR1–AR4) and the
	// compliance-based cost function; when false the pass behaves like a
	// traditional cost-based optimizer (single cheapest alternative per
	// group, all traits ignored).
	Compliant bool
	// Evaluator supplies 𝒜 for AR4 (required when Compliant).
	Evaluator *policy.Evaluator
	// AllLocations is the universe of sites (traditional mode execution
	// traits for the site selector).
	AllLocations []string
	// MaxAlts caps the number of Pareto alternatives kept per group.
	MaxAlts int
	// TrackOrder enables sort-order as a Pareto dimension (set when the
	// query contains an ORDER BY; otherwise orderings cannot pay off and
	// tracking them would only widen the alternative fronts).
	TrackOrder bool

	// analyzer caches local-query analysis across alternatives.
	analyzer *policy.Analyzer
}

// Implement computes the physical alternatives of a group bottom-up,
// memoized. In compliant mode an alternative is discarded when its
// execution trait is empty (the infinite-cost adaptation of Section 6.1).
func (m *Memo) Implement(g *Group, cfg *ImplConfig) []*Alt {
	if g.implemented {
		return g.Alts
	}
	g.implemented = true // set first; the memo DAG is acyclic by construction
	if cfg.analyzer == nil {
		cfg.analyzer = policy.NewAnalyzer()
	}
	maxAlts := cfg.MaxAlts
	if maxAlts <= 0 {
		maxAlts = 12
	}
	if !cfg.Compliant {
		maxAlts = 1
	}

	var alts []*Alt
	for _, e := range g.Exprs {
		childAlts := make([][]*Alt, len(e.Children))
		feasible := true
		for i, c := range e.Children {
			childAlts[i] = m.Implement(c, cfg)
			if len(childAlts[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		for _, phys := range physicalKinds(e.Op) {
			forEachCombo(childAlts, func(combo []*Alt) {
				alt := m.buildAlt(e, phys, combo, cfg)
				if alt != nil {
					alts = insertAlt(alts, alt, maxAlts, cfg)
				}
			})
		}
		// Sort elision: when a child alternative already delivers the
		// requested ordering, the Sort disappears entirely.
		if e.Op.Kind == plan.Sort {
			if want, ok := ascColKeys(e.Op.SortKeys); ok {
				for _, child := range childAlts[0] {
					if prefixCovered(child.Order, want) {
						alts = insertAlt(alts, child, maxAlts, cfg)
					}
				}
			}
		}
	}
	g.Alts = alts
	return alts
}

// physicalKinds maps a logical operator to its physical implementations.
func physicalKinds(op *plan.Node) []plan.Kind {
	switch op.Kind {
	case plan.Scan:
		return []plan.Kind{plan.TableScan}
	case plan.Filter:
		return []plan.Kind{plan.FilterExec}
	case plan.Project:
		return []plan.Kind{plan.ProjectExec}
	case plan.Join:
		if hasEquiCond(op.Pred) {
			return []plan.Kind{plan.HashJoin, plan.MergeJoin, plan.NLJoin}
		}
		return []plan.Kind{plan.NLJoin}
	case plan.Aggregate:
		return []plan.Kind{plan.HashAgg}
	case plan.Sort:
		return []plan.Kind{plan.SortExec}
	case plan.Limit:
		return []plan.Kind{plan.LimitExec}
	case plan.Union:
		return []plan.Kind{plan.UnionAll}
	}
	// Already physical (should not happen for logical exploration).
	return []plan.Kind{op.Kind}
}

func hasEquiCond(cond expr.Expr) bool {
	for _, c := range expr.Conjuncts(cond) {
		if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.EQ {
			if _, lok := cmp.L.(*expr.Col); lok {
				if _, rok := cmp.R.(*expr.Col); rok {
					return true
				}
			}
		}
	}
	return false
}

// buildAlt constructs one physical alternative and derives its traits.
// It returns nil when the alternative is infeasible (empty execution
// trait in compliant mode — the infinite-cost rule).
func (m *Memo) buildAlt(e *MExpr, phys plan.Kind, combo []*Alt, cfg *ImplConfig) *Alt {
	node := *e.Op
	node.Kind = phys
	// Schema comes from this expression's own children (a commuted join
	// orders its output columns differently from the group canon; upstream
	// operators resolve columns by name, so order is a per-tree detail).
	node.Cols = outputCols(e.Op, e.Children)
	node.Card = e.Group.Card
	node.Children = make([]*plan.Node, len(combo))
	inCards := make([]float64, len(combo))
	childCost := 0.0
	for i, c := range combo {
		node.Children[i] = c.Tree
		inCards[i] = c.Tree.Card
		childCost += c.Cost
	}
	opCost := cost.OperatorCost(phys, node.Card, inCards...)
	// Merge join pays to sort any input that is not already ordered on
	// its join keys; its output provides the left-key ordering.
	var order []string
	switch phys {
	case plan.MergeJoin:
		lk, rk := equiKeyCols(node.Pred, node.Children[0].Cols, node.Children[1].Cols)
		if len(lk) == 0 {
			return nil // no usable equi keys after child resolution
		}
		lOrdered := prefixCovered(combo[0].Order, lk)
		rOrdered := prefixCovered(combo[1].Order, rk)
		// Merge join is only worth enumerating when at least one input
		// already delivers its key order (otherwise two sorts never beat
		// a hash join).
		if !lOrdered && !rOrdered {
			return nil
		}
		if !lOrdered {
			opCost += cost.SortCost(inCards[0])
		}
		if !rOrdered {
			opCost += cost.SortCost(inCards[1])
		}
		order = lk
	case plan.TableScan:
		// Scans of physically sorted tables deliver that order.
		if node.Table != nil {
			for _, name := range node.Table.SortedBy {
				order = append(order, node.Alias+"."+name)
			}
		}
	case plan.HashAgg, plan.UnionAll:
		// unordered
	case plan.SortExec:
		if keys, ok := ascColKeys(node.SortKeys); ok {
			order = keys
		}
	case plan.ProjectExec:
		order = orderThroughSchema(combo[0].Order, node.Cols)
	default:
		// Filters, limits, hash/NL joins (which stream their left input)
		// preserve the left child's ordering.
		if len(combo) > 0 {
			order = combo[0].Order
		}
	}
	total := childCost + opCost
	node.Cost = total

	alt := &Alt{Tree: &node, Cost: total, Order: order}
	if !cfg.Compliant {
		// Traditional mode: leaves execute at the table's site; anything
		// else anywhere. Traits carry only what the site selector needs.
		if phys == plan.TableScan {
			node.Exec = plan.NewSiteSet(scanLocation(&node))
		} else {
			node.Exec = plan.NewSiteSet(cfg.AllLocations...)
		}
		return canonicalizeAlt(alt, e.Group)
	}

	// AR1: a tablescan executes at its table's source location.
	if phys == plan.TableScan {
		node.Exec = plan.NewSiteSet(scanLocation(&node))
	} else {
		// AR2: an operator may execute wherever every input may legally
		// be shipped.
		exec := combo[0].Ship
		for _, c := range combo[1:] {
			exec = exec.Intersect(c.Ship)
		}
		node.Exec = exec
	}
	if node.Exec.Empty() {
		// Compliance-based cost function: infinite cost; discard.
		return nil
	}
	// AR3: output can ship wherever the operator can execute.
	ship := node.Exec
	// AR4: when the subtree is a local query over a single database,
	// the policy evaluator contributes destinations.
	if q, ok := cfg.analyzer.Describe(&node); ok {
		ship = ship.Union(cfg.Evaluator.Evaluate(q))
		alt.DescKey = q.Digest()
	}
	node.ShipT = ship
	alt.Ship = ship
	return canonicalizeAlt(alt, e.Group)
}

// canonicalizeAlt makes the alternative's output schema match the group's
// canonical column order. Group members may produce the same columns in
// different orders (a commuted join concatenates its sides the other way
// round); parents resolve positions against the group schema, so every
// alternative must deliver exactly that layout. A cheap reordering
// projection is inserted when the orders differ.
func canonicalizeAlt(alt *Alt, g *Group) *Alt {
	node := alt.Tree
	if sameColKeys(node.Cols, g.Cols) {
		return alt
	}
	projs := make([]plan.NamedExpr, len(g.Cols))
	for i, c := range g.Cols {
		projs[i] = plan.NamedExpr{E: c.Col(), Name: c.Name, Type: c.Type}
	}
	reorder := &plan.Node{
		Kind:     plan.ProjectExec,
		Children: []*plan.Node{node},
		Cols:     append([]plan.ColRef(nil), g.Cols...),
		Projs:    projs,
		Card:     node.Card,
		Cost:     node.Cost + cost.OperatorCost(plan.ProjectExec, node.Card, node.Card),
		Exec:     node.Exec,
		ShipT:    node.ShipT,
	}
	out := *alt
	out.Tree = reorder
	out.Cost = reorder.Cost
	// A pure reorder keeps every column; the ordering property survives.
	return &out
}

func sameColKeys(a, b []plan.ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

func scanLocation(n *plan.Node) string {
	idx := n.FragIdx
	if idx < 0 {
		idx = 0
	}
	if n.Table == nil || idx >= len(n.Table.Fragments) {
		return ""
	}
	return n.Table.Fragments[idx].Location
}

// insertAlt adds an alternative to a Pareto-pruned list. Alternative B
// dominates A when B costs no more, B's shipping trait covers A's, and
// the two describe the same local query (or A describes none) — the
// descriptor guard keeps alternatives whose different masking shapes
// could yield different AR4 results upstream.
func insertAlt(alts []*Alt, alt *Alt, maxAlts int, cfg *ImplConfig) []*Alt {
	if !cfg.Compliant && !cfg.TrackOrder {
		if len(alts) == 0 {
			return []*Alt{alt}
		}
		if alt.Cost < alts[0].Cost {
			alts[0] = alt
		}
		return alts
	}
	for _, other := range alts {
		if dominates(other, alt, cfg) {
			return alts
		}
	}
	kept := alts[:0]
	for _, other := range alts {
		if !dominates(alt, other, cfg) {
			kept = append(kept, other)
		}
	}
	kept = append(kept, alt)
	if len(kept) > maxAlts {
		sort.Slice(kept, func(i, j int) bool { return kept[i].Cost < kept[j].Cost })
		kept = kept[:maxAlts]
	}
	return kept
}

func dominates(b, a *Alt, cfg *ImplConfig) bool {
	if b.Cost > a.Cost {
		return false
	}
	if cfg.Compliant && !b.Ship.SupersetOf(a.Ship) {
		return false
	}
	if cfg.TrackOrder && !prefixCovered(b.Order, a.Order) {
		return false // A is more interestingly ordered
	}
	if cfg.Compliant && a.DescKey != "" && a.DescKey != b.DescKey {
		return false
	}
	return true
}

// SortKeysTrackable reports whether an ORDER BY could be satisfied by a
// tracked ordering (all-ascending plain column keys).
func SortKeysTrackable(keys []plan.SortKey) bool {
	_, ok := ascColKeys(keys)
	return ok
}

// ascColKeys extracts the column keys of sort keys when every key is a
// plain ascending column reference (the only orderings tracked).
func ascColKeys(keys []plan.SortKey) ([]string, bool) {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		c, ok := k.E.(*expr.Col)
		if !ok || k.Desc {
			return nil, false
		}
		out = append(out, c.Key())
	}
	return out, true
}

// prefixCovered reports whether want is a prefix of have (an output
// sorted by (a, b) satisfies a requirement for (a)).
func prefixCovered(have, want []string) bool {
	if len(want) > len(have) {
		return false
	}
	for i := range want {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}

// orderThroughSchema truncates an ordering at the first column that does
// not survive into the given output schema.
func orderThroughSchema(order []string, cols []plan.ColRef) []string {
	var out []string
	for _, key := range order {
		found := false
		for _, c := range cols {
			if c.Key() == key {
				found = true
				break
			}
		}
		if !found {
			break
		}
		out = append(out, key)
	}
	return out
}

// equiKeyCols extracts, per equi-join conjunct, the (left, right) column
// keys resolved against the child schemas; conjuncts whose sides do not
// split cleanly are skipped.
func equiKeyCols(pred expr.Expr, leftCols, rightCols []plan.ColRef) (lk, rk []string) {
	inCols := func(c *expr.Col, cols []plan.ColRef) (string, bool) {
		for _, cr := range cols {
			if strings.EqualFold(cr.Name, c.Name) && (c.Table == "" || strings.EqualFold(cr.Table, c.Table)) {
				return cr.Key(), true
			}
		}
		return "", false
	}
	for _, c := range expr.Conjuncts(pred) {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		a, aok := cmp.L.(*expr.Col)
		b, bok := cmp.R.(*expr.Col)
		if !aok || !bok {
			continue
		}
		if la, ok1 := inCols(a, leftCols); ok1 {
			if rb, ok2 := inCols(b, rightCols); ok2 {
				lk = append(lk, la)
				rk = append(rk, rb)
				continue
			}
		}
		if lb, ok1 := inCols(b, leftCols); ok1 {
			if ra, ok2 := inCols(a, rightCols); ok2 {
				lk = append(lk, lb)
				rk = append(rk, ra)
			}
		}
	}
	return lk, rk
}

// forEachCombo enumerates the cartesian product of child alternatives.
func forEachCombo(childAlts [][]*Alt, fn func([]*Alt)) {
	if len(childAlts) == 0 {
		fn(nil)
		return
	}
	combo := make([]*Alt, len(childAlts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(childAlts) {
			cp := make([]*Alt, len(combo))
			copy(cp, combo)
			fn(cp)
			return
		}
		for _, a := range childAlts[i] {
			combo[i] = a
			rec(i + 1)
		}
	}
	rec(0)
}

// Best returns the cheapest alternative of a group satisfying the
// compliance-based optimization goal (non-empty shipping trait in
// compliant mode). When requiredLoc is non-empty, only alternatives
// whose output may legally reach that location qualify (the result must
// be deliverable there). It returns nil when the group has no feasible
// alternative — the optimizer then rejects the query.
func Best(g *Group, compliant bool, requiredLoc string) *Alt {
	var best *Alt
	for _, a := range g.Alts {
		if compliant {
			if a.Ship.Empty() {
				continue
			}
			if requiredLoc != "" && !a.Ship.Contains(requiredLoc) {
				continue
			}
		}
		if best == nil || a.Cost < best.Cost {
			best = a
		}
	}
	return best
}

// BestCost returns the cost of the best alternative or +Inf.
func BestCost(g *Group, compliant bool) float64 {
	if b := Best(g, compliant, ""); b != nil {
		return b.Cost
	}
	return math.Inf(1)
}
