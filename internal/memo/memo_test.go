package memo

import (
	"testing"

	"cgdqp/internal/cost"
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

func tbl(name, db, loc string, rows int64) *schema.Table {
	return schema.NewTable(name, db, loc, rows,
		schema.Column{Name: "k", Type: expr.TInt},
		schema.Column{Name: "v", Type: expr.TString},
	)
}

func joinCond(l, r string) expr.Expr {
	return expr.NewCmp(expr.EQ, expr.NewCol(l, "k"), expr.NewCol(r, "k"))
}

// buildJoin returns Join(Join(a, b), c) over three single-site tables.
func buildJoin() *plan.Node {
	a := plan.NewScan(tbl("A", "db-a", "LA", 100), "a", -1)
	b := plan.NewScan(tbl("B", "db-b", "LB", 200), "b", -1)
	c := plan.NewScan(tbl("C", "db-c", "LC", 300), "c", -1)
	return plan.NewJoin(plan.NewJoin(a, b, joinCond("a", "b")), c, joinCond("b", "c"))
}

func newMemo(root *plan.Node) (*Memo, *Group) {
	est := cost.NewEstimator(root)
	m := New(est)
	return m, m.InsertTree(root)
}

func TestInsertTreeDedup(t *testing.T) {
	root := buildJoin()
	m, g := newMemo(root)
	if g == nil {
		t.Fatal("no root group")
	}
	// 3 scans + 2 joins = 5 groups, 5 expressions.
	if len(m.Groups) != 5 || m.ExprCount() != 5 {
		t.Errorf("groups=%d exprs=%d", len(m.Groups), m.ExprCount())
	}
	// Re-inserting the identical tree adds nothing.
	g2 := m.InsertTree(buildJoin())
	if g2 != g || m.ExprCount() != 5 {
		t.Errorf("dedup failed: %d exprs", m.ExprCount())
	}
	// Group schema/card come from the first expression.
	if g.Card <= 0 || len(g.Cols) != 6 {
		t.Errorf("group props: card=%v cols=%d", g.Card, len(g.Cols))
	}
}

// commuteRule is a minimal rule for engine tests.
type commuteRule struct{}

func (commuteRule) Name() string { return "commute" }
func (commuteRule) Apply(m *Memo, e *MExpr) []*NewExpr {
	if e.Op.Kind != plan.Join {
		return nil
	}
	return []*NewExpr{{
		Op:       &plan.Node{Kind: plan.Join, Pred: e.Op.Pred},
		Children: []any{e.Children[1], e.Children[0]},
	}}
}

func TestExploreFixpoint(t *testing.T) {
	m, g := newMemo(buildJoin())
	before := m.ExprCount()
	m.Explore([]Rule{commuteRule{}})
	// Each of the two joins gains its commuted twin; commuting twice is
	// deduplicated.
	if m.ExprCount() != before+2 {
		t.Errorf("exprs after explore: %d (before %d)", m.ExprCount(), before)
	}
	if len(g.Exprs) != 2 {
		t.Errorf("root group exprs: %d", len(g.Exprs))
	}
	// Idempotent.
	m.Explore([]Rule{commuteRule{}})
	if m.ExprCount() != before+2 {
		t.Error("explore not idempotent")
	}
}

func TestExploreBudget(t *testing.T) {
	root := buildJoin()
	est := cost.NewEstimator(root)
	m := New(est)
	m.MaxExprs = 5 // exactly the seed size: no room to explore
	m.InsertTree(root)
	m.Explore([]Rule{commuteRule{}})
	if m.ExprCount() > 6 {
		t.Errorf("budget exceeded: %d", m.ExprCount())
	}
}

func implCfg(root *plan.Node, compliant bool, pols ...*policy.Expression) *ImplConfig {
	pc := policy.NewCatalog()
	pc.AddAll(pols...)
	return &ImplConfig{
		Est:          cost.NewEstimator(root),
		Compliant:    compliant,
		Evaluator:    policy.NewEvaluator(pc, []string{"LA", "LB", "LC"}),
		AllLocations: []string{"LA", "LB", "LC"},
	}
}

func TestImplementTraditional(t *testing.T) {
	root := buildJoin()
	m, g := newMemo(root)
	alts := m.Implement(g, implCfg(root, false))
	if len(alts) != 1 {
		t.Fatalf("traditional mode keeps one alt, got %d", len(alts))
	}
	tree := alts[0].Tree
	if !tree.Kind.Physical() {
		t.Errorf("root kind %v not physical", tree.Kind)
	}
	// Leaves are pinned to their sites; joins may run anywhere.
	tree.Walk(func(n *plan.Node) bool {
		if n.Kind == plan.TableScan && n.Exec.Len() != 1 {
			t.Errorf("scan exec: %v", n.Exec)
		}
		if n.Kind == plan.HashJoin && n.Exec.Len() != 3 {
			t.Errorf("join exec: %v", n.Exec)
		}
		return true
	})
}

func TestImplementCompliantTraits(t *testing.T) {
	root := buildJoin()
	m, g := newMemo(root)
	// A and B may ship anywhere; C only stays home.
	cfg := implCfg(root, true,
		policy.MustParse("ship * from A to *", "pa", "db-a"),
		policy.MustParse("ship * from B to *", "pb", "db-b"),
	)
	alts := m.Implement(g, cfg)
	if len(alts) == 0 {
		t.Fatal("no compliant alternatives")
	}
	for _, alt := range alts {
		// C never leaves LC, so every join must happen at LC.
		if !alt.Ship.Contains("LC") || alt.Ship.Len() != 1 {
			t.Errorf("root ship: %v", alt.Ship)
		}
	}
	best := Best(g, true, "")
	if best == nil || best.Tree.Exec.Key() != "LC" {
		t.Errorf("best exec: %+v", best)
	}
	// Requiring an unreachable location yields nil.
	if Best(g, true, "LA") != nil {
		t.Error("LA should be unreachable")
	}
	if BestCost(g, true) <= 0 {
		t.Error("best cost")
	}
}

func TestImplementInfeasible(t *testing.T) {
	root := buildJoin()
	m, g := newMemo(root)
	// No policies at all: nothing may ship anywhere, no join site exists.
	alts := m.Implement(g, implCfg(root, true))
	if len(alts) != 0 {
		t.Errorf("expected no feasible alternatives, got %d", len(alts))
	}
	if Best(g, true, "") != nil {
		t.Error("best over empty alts")
	}
}

func TestInsertAltParetoPruning(t *testing.T) {
	mk := func(cost float64, locs ...string) *Alt {
		return &Alt{Cost: cost, Ship: plan.NewSiteSet(locs...), Tree: &plan.Node{}}
	}
	cfgC := &ImplConfig{Compliant: true}
	alts := insertAlt(nil, mk(10, "A"), 4, cfgC)
	// Dominated: higher cost, subset ship.
	alts = insertAlt(alts, mk(20, "A"), 4, cfgC)
	if len(alts) != 1 {
		t.Fatalf("dominated alt kept: %d", len(alts))
	}
	// Incomparable: higher cost but wider ship.
	alts = insertAlt(alts, mk(20, "A", "B"), 4, cfgC)
	if len(alts) != 2 {
		t.Fatalf("incomparable alt dropped: %d", len(alts))
	}
	// Dominating: cheaper and wider — evicts both.
	alts = insertAlt(alts, mk(5, "A", "B"), 4, cfgC)
	if len(alts) != 1 || alts[0].Cost != 5 {
		t.Fatalf("dominating alt: %+v", alts)
	}
	// Cap enforcement.
	alts = nil
	for i := 0; i < 10; i++ {
		alts = insertAlt(alts, mk(float64(i), string(rune('A'+i))), 3, cfgC)
	}
	if len(alts) > 3 {
		t.Errorf("cap exceeded: %d", len(alts))
	}
	// DescKey guard: same cost/ship but different local-query shapes are
	// both kept.
	a := mk(10, "A")
	a.DescKey = "d1"
	b := mk(10, "A")
	b.DescKey = "d2"
	alts = insertAlt(nil, a, 4, cfgC)
	alts = insertAlt(alts, b, 4, cfgC)
	if len(alts) != 2 {
		t.Errorf("desc-distinct alts: %d", len(alts))
	}
}

func TestForEachCombo(t *testing.T) {
	a1, a2 := &Alt{Cost: 1}, &Alt{Cost: 2}
	b1 := &Alt{Cost: 3}
	var combos [][]*Alt
	forEachCombo([][]*Alt{{a1, a2}, {b1}}, func(c []*Alt) {
		combos = append(combos, c)
	})
	if len(combos) != 2 {
		t.Fatalf("combos: %d", len(combos))
	}
	// Zero children: one empty combo.
	count := 0
	forEachCombo(nil, func([]*Alt) { count++ })
	if count != 1 {
		t.Errorf("nil combos: %d", count)
	}
}

func TestOrderHelpers(t *testing.T) {
	if !prefixCovered([]string{"a", "b"}, []string{"a"}) || prefixCovered([]string{"a"}, []string{"a", "b"}) {
		t.Error("prefixCovered")
	}
	if !prefixCovered([]string{"a"}, nil) || prefixCovered([]string{"b"}, []string{"a"}) {
		t.Error("prefixCovered edges")
	}
	keys, ok := ascColKeys([]plan.SortKey{{E: expr.NewCol("t", "a")}, {E: expr.NewCol("t", "b")}})
	if !ok || len(keys) != 2 || keys[0] != "t.a" {
		t.Errorf("ascColKeys: %v %v", keys, ok)
	}
	if _, ok := ascColKeys([]plan.SortKey{{E: expr.NewCol("t", "a"), Desc: true}}); ok {
		t.Error("desc keys not trackable")
	}
	if _, ok := ascColKeys([]plan.SortKey{{E: expr.NewConst(expr.NewInt(1))}}); ok {
		t.Error("non-col keys not trackable")
	}
	if SortKeysTrackable([]plan.SortKey{{E: expr.NewCol("t", "a")}}) != true {
		t.Error("SortKeysTrackable")
	}
	cols := []plan.ColRef{{Table: "t", Name: "a"}, {Table: "t", Name: "c"}}
	if got := orderThroughSchema([]string{"t.a", "t.b", "t.c"}, cols); len(got) != 1 || got[0] != "t.a" {
		t.Errorf("orderThroughSchema: %v", got)
	}
	if got := orderThroughSchema(nil, cols); got != nil {
		t.Errorf("empty order: %v", got)
	}
}

func TestEquiKeyCols(t *testing.T) {
	lcols := []plan.ColRef{{Table: "a", Name: "k"}, {Table: "a", Name: "j"}}
	rcols := []plan.ColRef{{Table: "b", Name: "k"}}
	pred := expr.NewAnd(
		expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("b", "k")),
		expr.NewCmp(expr.GT, expr.NewCol("a", "j"), expr.NewConst(expr.NewInt(1))))
	cfg := &ImplConfig{}
	lk, rk := equiKeyCols(cfg.equiCmps(pred), lcols, rcols)
	if len(lk) != 1 || lk[0] != "a.k" || rk[0] != "b.k" {
		t.Errorf("keys: %v %v", lk, rk)
	}
	// The conjunct split is cached per predicate pointer.
	if got := cfg.equiCmps(pred); len(got) != 1 || got[0].Op != expr.EQ {
		t.Errorf("cached equi conjuncts: %v", got)
	}
	// Reversed sides resolve too.
	lk2, rk2 := equiKeyCols(cfg.equiCmps(expr.NewCmp(expr.EQ, expr.NewCol("b", "k"), expr.NewCol("a", "k"))), lcols, rcols)
	if len(lk2) != 1 || lk2[0] != "a.k" || rk2[0] != "b.k" {
		t.Errorf("reversed keys: %v %v", lk2, rk2)
	}
	// Same-side equality still splits as Col=Col; key resolution rejects it.
	lk3, _ := equiKeyCols(cfg.equiCmps(expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("a", "j"))), lcols, rcols)
	if len(lk3) != 0 {
		t.Errorf("same-side keys: %v", lk3)
	}
}

func TestCanonicalizeAltReorders(t *testing.T) {
	g := &Group{Cols: []plan.ColRef{{Table: "b", Name: "x", Type: expr.TInt}, {Table: "a", Name: "y", Type: expr.TInt}}}
	node := &plan.Node{
		Kind: plan.HashJoin,
		Cols: []plan.ColRef{{Table: "a", Name: "y", Type: expr.TInt}, {Table: "b", Name: "x", Type: expr.TInt}},
		Card: 10,
		Cost: 100,
	}
	alt := &Alt{Tree: node, Cost: 100, Order: []string{"a.y"}}
	out := canonicalizeAlt(alt, g)
	if out.Tree.Kind != plan.ProjectExec {
		t.Fatalf("expected reorder projection, got %v", out.Tree.Kind)
	}
	if out.Tree.Cols[0].Key() != "b.x" || len(out.Tree.Projs) != 2 {
		t.Errorf("reorder schema: %v", out.Tree.Cols)
	}
	if out.Cost <= 100 {
		t.Error("reorder must cost something")
	}
	// Matching schemas pass through untouched.
	same := &Alt{Tree: &plan.Node{Kind: plan.HashJoin, Cols: g.Cols}, Cost: 1}
	if canonicalizeAlt(same, g) != same {
		t.Error("no-op canonicalization should return the alt unchanged")
	}
}
