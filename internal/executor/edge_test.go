package executor

import (
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

// TestHashJoinNullKeys verifies SQL semantics: NULL join keys never
// match (on either side).
func TestHashJoinNullKeys(t *testing.T) {
	cat := schema.NewCatalog()
	l := schema.NewTable("l", "d1", "L1", 3, schema.Column{Name: "k", Type: expr.TInt})
	r := schema.NewTable("r", "d2", "L2", 3, schema.Column{Name: "k", Type: expr.TInt})
	cat.MustAddTable(l)
	cat.MustAddTable(r)
	cl := cluster.New(cat, network.UniformWAN(1, 1e-6))
	if err := cl.LoadFragment(l, 0, []expr.Row{{expr.NewInt(1)}, {expr.TypedNull(expr.TInt)}, {expr.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(r, 0, []expr.Row{{expr.NewInt(2)}, {expr.TypedNull(expr.TInt)}, {expr.NewInt(3)}}); err != nil {
		t.Fatal(err)
	}
	cond := expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("b", "k"))
	join := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1), cond)
	join.Kind = plan.HashJoin
	rows, _, err := Run(join, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("null keys must not match: %v", rows)
	}
	// Nested loops agree.
	nl := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1), cond)
	nl.Kind = plan.NLJoin
	nlRows, _, err := Run(nl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(nlRows) != 1 {
		t.Errorf("nl join null keys: %v", nlRows)
	}
}

// TestEmptyInputsThroughOperators runs every operator over empty tables.
func TestEmptyInputsThroughOperators(t *testing.T) {
	cat := schema.NewCatalog()
	tab := schema.NewTable("t", "d1", "L1", 0,
		schema.Column{Name: "a", Type: expr.TInt},
		schema.Column{Name: "b", Type: expr.TString})
	cat.MustAddTable(tab)
	cl := cluster.New(cat, network.UniformWAN(1, 1e-6))

	scan := plan.NewScan(tab, "t", -1)
	f := plan.NewFilter(scan, expr.NewCmp(expr.GT, expr.NewCol("t", "a"), expr.NewConst(expr.NewInt(0))))
	p := plan.NewProject(f, []plan.NamedExpr{{E: expr.NewCol("t", "b")}})
	agg := plan.NewAggregate(p, []*expr.Col{expr.NewCol("t", "b")}, []plan.NamedAgg{{Fn: expr.AggCount, Name: "n"}})
	srt := plan.NewSort(agg, []plan.SortKey{{E: expr.NewCol("t", "b")}})
	lim := plan.NewLimit(srt, 5)
	rows, _, err := Run(lim, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("grouped agg over empty input: %v", rows)
	}
	// Joins over empty sides.
	j := plan.NewJoin(scan, scan.Clone(), expr.NewCmp(expr.EQ, expr.NewCol("t", "a"), expr.NewCol("t", "a")))
	j.Kind = plan.NLJoin
	if rows, _, err := Run(j, cl); err != nil || len(rows) != 0 {
		t.Errorf("empty join: %v %v", rows, err)
	}
}

// TestFragmentedExecutionEndToEnd optimizes and executes a query over a
// fragmented table: the plan distributes the join across fragments (via
// the union rewrite) and the result matches a single-site computation.
func TestFragmentedExecutionEndToEnd(t *testing.T) {
	cat := schema.NewCatalog()
	sales := &schema.Table{
		Name: "sales",
		Columns: []schema.Column{
			{Name: "region_id", Type: expr.TInt},
			{Name: "amt", Type: expr.TFloat},
		},
		Fragments: []schema.Fragment{
			{DB: "db-w", Location: "West", RowCount: 40},
			{DB: "db-e", Location: "East", RowCount: 60},
		},
	}
	regions := schema.NewTable("regions", "db-c", "Central", 4,
		schema.Column{Name: "id", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString})
	cat.MustAddTable(sales)
	cat.MustAddTable(regions)

	net := network.FiveRegionWAN(cat.Locations())
	cl := cluster.New(cat, net)
	var west, east []expr.Row
	for i := 0; i < 40; i++ {
		west = append(west, expr.Row{expr.NewInt(int64(i % 4)), expr.NewFloat(float64(i))})
	}
	for i := 0; i < 60; i++ {
		east = append(east, expr.Row{expr.NewInt(int64(i % 4)), expr.NewFloat(float64(100 + i))})
	}
	if err := cl.LoadFragment(sales, 0, west); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(sales, 1, east); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(regions, 0, []expr.Row{
		{expr.NewInt(0), expr.NewString("r0")},
		{expr.NewInt(1), expr.NewString("r1")},
		{expr.NewInt(2), expr.NewString("r2")},
		{expr.NewInt(3), expr.NewString("r3")},
	}); err != nil {
		t.Fatal(err)
	}

	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship region_id, amt from db-w.sales to *", "w", ""),
		policy.MustParse("ship region_id, amt from db-e.sales to *", "e", ""),
		policy.MustParse("ship id, name from db-c.regions to *", "c", ""),
	)
	opt := optimizer.New(cat, pc, net, optimizer.Options{Compliant: true})
	res, err := opt.OptimizeSQL(`
		SELECT r.name, SUM(s.amt) AS total
		FROM sales s, regions r
		WHERE s.region_id = r.id
		GROUP BY r.name
		ORDER BY r.name`)
	if err != nil {
		t.Fatal(err)
	}
	if v := opt.Check(res.Plan); len(v) != 0 {
		t.Fatalf("violations: %v\n%s", v, res.Plan.Format(true))
	}
	rows, _, err := Run(res.Plan, cl)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, res.Plan.Format(true))
	}
	if len(rows) != 4 {
		t.Fatalf("groups: %d", len(rows))
	}
	// Reference totals.
	want := map[string]float64{}
	for i := 0; i < 40; i++ {
		want["r"+string(rune('0'+i%4))] += float64(i)
	}
	for i := 0; i < 60; i++ {
		want["r"+string(rune('0'+i%4))] += float64(100 + i)
	}
	for _, r := range rows {
		if got := r[1].Float(); got != want[r[0].Str()] {
			t.Errorf("%s: %v want %v", r[0].Str(), got, want[r[0].Str()])
		}
	}
}
