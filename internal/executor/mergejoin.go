package executor

import (
	"fmt"
	"sort"

	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// mergeJoinOp implements sort-merge join: both inputs are materialized,
// sorted by their equi-join keys, and merged; duplicate key groups join
// block-wise. Residual (non-equi) conjuncts are evaluated on the
// concatenated row. The output is ordered by the left join keys
// (ascending), which is the property the optimizer's sort-elision relies
// on.
type mergeJoinOp struct {
	node        *plan.Node
	left, right Operator
	leftKeys    []expr.Expr
	rightKeys   []expr.Expr
	residual    expr.Expr

	out []expr.Row
	pos int
}

func newMergeJoin(n *plan.Node, left, right Operator) (Operator, error) {
	lres := resolver(n.Children[0])
	rres := resolver(n.Children[1])
	var lk, rk []expr.Expr
	var residual []expr.Expr
	for _, c := range expr.Conjuncts(n.Pred) {
		if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.EQ {
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok {
				if bl, err := expr.Bind(lc, lres); err == nil {
					if br, err := expr.Bind(rc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
				if bl, err := expr.Bind(rc, lres); err == nil {
					if br, err := expr.Bind(lc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	if len(lk) == 0 {
		return nil, fmt.Errorf("executor: merge join without equi-key: %v", n.Pred)
	}
	var res expr.Expr
	if len(residual) > 0 {
		bound, err := expr.Bind(expr.AndAll(residual...), resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: merge join residual bind: %w", err)
		}
		res = bound
	}
	return &mergeJoinOp{node: n, left: left, right: right, leftKeys: lk, rightKeys: rk, residual: res}, nil
}

// keyOf evaluates the join key tuple; ok=false when any component is
// NULL (NULL keys never join).
func keyOf(keys []expr.Expr, row expr.Row) ([]expr.Value, bool, error) {
	out := make([]expr.Value, len(keys))
	for i, k := range keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, false, nil
		}
		out[i] = v
	}
	return out, true, nil
}

// compareKeys orders two key tuples.
func compareKeys(a, b []expr.Value) (int, error) {
	for i := range a {
		c, err := a[i].Compare(b[i])
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

type keyedRow struct {
	key []expr.Value
	row expr.Row
}

func collectKeyed(op Operator, keys []expr.Expr) ([]keyedRow, error) {
	rows, err := Collect(op)
	if err != nil {
		return nil, err
	}
	out := make([]keyedRow, 0, len(rows))
	for _, r := range rows {
		k, ok, err := keyOf(keys, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, keyedRow{key: k, row: r})
		}
	}
	var sortErr error
	sort.SliceStable(out, func(i, j int) bool {
		c, err := compareKeys(out[i].key, out[j].key)
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	return out, sortErr
}

func (m *mergeJoinOp) Open() error {
	lrows, err := collectKeyed(m.left, m.leftKeys)
	if err != nil {
		return err
	}
	rrows, err := collectKeyed(m.right, m.rightKeys)
	if err != nil {
		return err
	}
	m.out = nil
	m.pos = 0
	li, ri := 0, 0
	for li < len(lrows) && ri < len(rrows) {
		c, err := compareKeys(lrows[li].key, rrows[ri].key)
		if err != nil {
			return err
		}
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			// Find the right-side block sharing this key.
			rEnd := ri
			for rEnd < len(rrows) {
				cc, err := compareKeys(lrows[li].key, rrows[rEnd].key)
				if err != nil {
					return err
				}
				if cc != 0 {
					break
				}
				rEnd++
			}
			// Every left row with this key joins the block.
			for ; li < len(lrows); li++ {
				cc, err := compareKeys(lrows[li].key, rrows[ri].key)
				if err != nil {
					return err
				}
				if cc != 0 {
					break
				}
				for k := ri; k < rEnd; k++ {
					row := make(expr.Row, 0, len(lrows[li].row)+len(rrows[k].row))
					row = append(row, lrows[li].row...)
					row = append(row, rrows[k].row...)
					if m.residual != nil {
						keep, err := expr.EvalBool(m.residual, row)
						if err != nil {
							return err
						}
						if !keep {
							continue
						}
					}
					m.out = append(m.out, row)
				}
			}
			ri = rEnd
		}
	}
	return nil
}

func (m *mergeJoinOp) Next() (expr.Row, bool, error) {
	if m.pos >= len(m.out) {
		return nil, false, nil
	}
	r := m.out[m.pos]
	m.pos++
	return r, true, nil
}

func (m *mergeJoinOp) Close() error {
	m.out = nil
	return nil
}
