// Package executor runs physical query execution plans over the
// simulated geo-distributed cluster using the Volcano iterator model
// (Open / Next / Close). SHIP operators move rows through the simulated
// WAN and charge the message cost model via the cluster's ledger, which
// is how the plan-quality experiments (Figures 6g/6h) measure execution
// cost.
package executor

import (
	"context"
	"fmt"
	"sort"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// Operator is the Volcano iterator interface.
type Operator interface {
	Open() error
	// Next returns the next row; ok is false at end of stream.
	Next() (row expr.Row, ok bool, err error)
	Close() error
}

// RunStats summarizes one execution.
type RunStats struct {
	RowsOut      int64
	ShippedRows  int64
	ShippedBytes int64
	// ShipCost is the simulated communication cost (ms) of all SHIP
	// operators, priced by the cluster's message cost model.
	ShipCost float64
	// Retries counts failed send attempts that the shipping path
	// recovered (or gave up on) under the cluster's fault plan; always
	// 0 when no faults are injected.
	Retries int64
}

// Run executes a located physical plan sequentially (one goroutine,
// row at a time) and materializes its result. RunParallel is the
// batch-parallel equivalent with identical results and statistics;
// RunObserved additionally reports into an observer.
func Run(p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunObserved(p, c, nil)
}

// RunContext is Run under a caller context: cancelling it makes the
// next SHIP boundary (including its in-flight retry backoff) return
// the context error instead of starting new work.
func RunContext(ctx context.Context, p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunObservedContext(ctx, p, c, nil)
}

// Collect drains an operator into a slice.
func Collect(op Operator) ([]expr.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []expr.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Build compiles a physical plan node into an operator tree.
func Build(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	return buildObs(n, buildEnv{c: c, ctx: context.Background(), opt: defaultExecOptions()})
}

// buildEnv bundles the per-execution context an operator tree is built
// under: the cluster, an optional per-run accounting scope (nil charges
// the shared ledger only, as Build always did), the cancellation
// context Ship boundaries honor, the observer, and the execution
// options (kernel gate, wire encoding).
type buildEnv struct {
	c     *cluster.Cluster
	scope *cluster.RunScope
	ctx   context.Context
	obsv  *obs.Observer
	opt   ExecOptions
}

// buildObs is Build threading a build environment: Ship operators
// report audit records into its observer, honor its context and charge
// its run scope; when the observer carries a PlanProfile every operator
// is wrapped to collect per-node actuals.
func buildObs(n *plan.Node, env buildEnv) (Operator, error) {
	children := make([]Operator, len(n.Children))
	for i, ch := range n.Children {
		op, err := buildObs(ch, env)
		if err != nil {
			return nil, err
		}
		children[i] = op
	}
	var op Operator
	var err error
	switch n.Kind {
	case plan.TableScan, plan.Scan:
		op, err = newScan(n, env.c)
	case plan.FilterExec, plan.Filter:
		op, err = newFilter(n, children[0], env.opt.kernels())
	case plan.ProjectExec, plan.Project:
		op, err = newProject(n, children[0], env.opt.kernels())
	case plan.HashJoin:
		op, err = newHashJoin(n, children[0], children[1], env.opt.kernels())
	case plan.MergeJoin:
		op, err = newMergeJoin(n, children[0], children[1])
	case plan.NLJoin, plan.Join:
		op, err = newNLJoin(n, children[0], children[1])
	case plan.HashAgg, plan.Aggregate:
		op, err = newHashAgg(n, children[0], env.opt.kernels())
	case plan.SortExec, plan.Sort:
		op, err = newSort(n, children[0])
	case plan.LimitExec, plan.Limit:
		op = newLimit(n, children[0])
	case plan.UnionAll, plan.Union:
		op = newUnion(children)
	case plan.Ship:
		op = newShip(n, children[0], env)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	if prof := env.obsv.Prof(); prof != nil {
		op = &profOp{op: op, stats: prof.Stats(n)}
	}
	return op, nil
}

// resolver builds a column resolver over a plan node's output schema.
func resolver(n *plan.Node) expr.Resolver {
	keys := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		keys[i] = c.Key()
	}
	return expr.SliceResolver(keys)
}

// --- scan ---------------------------------------------------------------

type scanOp struct {
	node *plan.Node
	c    *cluster.Cluster
	rows []expr.Row
	pos  int
}

func newScan(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	if n.Table == nil {
		return nil, fmt.Errorf("executor: scan without table")
	}
	return &scanOp{node: n, c: c}, nil
}

func (s *scanOp) Open() error {
	var err error
	if s.node.FragIdx < 0 && s.node.Table.Fragmented() {
		s.rows, err = s.c.AllRows(s.node.Table)
	} else {
		s.rows, err = s.c.FragmentRows(s.node.Table, s.node.FragIdx)
	}
	s.pos = 0
	return err
}

func (s *scanOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *scanOp) Close() error {
	s.rows = nil
	return nil
}

// --- filter -------------------------------------------------------------

type filterOp struct {
	child Operator
	pred  expr.Expr
}

func newFilter(n *plan.Node, child Operator, vec bool) (Operator, error) {
	bound, err := expr.Bind(n.Pred, resolver(n.Children[0]))
	if err != nil {
		return nil, fmt.Errorf("executor: filter bind: %w", err)
	}
	if p := compilePred(bound, colTypes(n.Children[0]), vec); p != nil {
		return &vecFilterOp{
			child: child, pred: bound, kern: p,
			src: newBatchSource(colTypes(n.Children[0])),
		}, nil
	}
	return &filterOp{child: child, pred: bound}, nil
}

func (f *filterOp) Open() error { return f.child.Open() }

func (f *filterOp) Next() (expr.Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := expr.EvalBool(f.pred, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// vecFilterOp is filterOp over micro-batches: it pulls vecChunk rows,
// runs the compiled predicate over the columnar view, and replays the
// survivors. A batch the kernel cannot handle is re-run row by row, so
// results and error behavior match the interpreter.
type vecFilterOp struct {
	child Operator
	pred  expr.Expr
	kern  *vecPred
	src   *batchSource
	buf   []expr.Row
	out   []expr.Row
	pos   int
	done  bool
	// pendErr is an interpreter error found mid-chunk: survivors before
	// the failing row drain first, exactly like the row-at-a-time path.
	pendErr error
}

func (f *vecFilterOp) Open() error {
	f.out, f.pos, f.done, f.pendErr = nil, 0, false, nil
	return f.child.Open()
}

// fillChunk pulls up to vecChunk rows from op into buf.
func fillChunk(op Operator, buf []expr.Row) ([]expr.Row, bool, error) {
	buf = buf[:0]
	for len(buf) < vecChunk {
		row, ok, err := op.Next()
		if err != nil {
			return buf, false, err
		}
		if !ok {
			return buf, true, nil
		}
		buf = append(buf, row)
	}
	return buf, false, nil
}

func (f *vecFilterOp) Next() (expr.Row, bool, error) {
	for {
		if f.pos < len(f.out) {
			row := f.out[f.pos]
			f.pos++
			return row, true, nil
		}
		if f.pendErr != nil {
			return nil, false, f.pendErr
		}
		if f.done {
			return nil, false, nil
		}
		var eos bool
		var err error
		f.buf, eos, err = fillChunk(f.child, f.buf)
		if err != nil {
			return nil, false, err
		}
		f.done = eos
		f.out, f.pos = f.out[:0], 0
		if len(f.buf) == 0 {
			continue
		}
		f.src.Reset(f.buf)
		if sel, ok := f.kern.selectRows(f.src); ok {
			for _, si := range sel {
				f.out = append(f.out, f.buf[si])
			}
			continue
		}
		// Interpreter re-run: keep survivors up to the failing row.
		for _, row := range f.buf {
			keep, err := expr.EvalBool(f.pred, row)
			if err != nil {
				f.pendErr = err
				break
			}
			if keep {
				f.out = append(f.out, row)
			}
		}
	}
}

func (f *vecFilterOp) Close() error { return f.child.Close() }

// --- project ------------------------------------------------------------

type projectOp struct {
	child Operator
	exprs []expr.Expr
}

func newProject(n *plan.Node, child Operator, vec bool) (Operator, error) {
	res := resolver(n.Children[0])
	exprs := make([]expr.Expr, len(n.Projs))
	for i, p := range n.Projs {
		bound, err := expr.Bind(p.E, res)
		if err != nil {
			return nil, fmt.Errorf("executor: project bind %s: %w", p.E, err)
		}
		exprs[i] = bound
	}
	types := colTypes(n.Children[0])
	// Fuse with a vectorized filter child: the filter's surviving
	// selection vector drives the projection kernels directly, and both
	// share one columnar view of the batch. (Profiling wraps operators,
	// so the assertion fails and fusion is skipped under EXPLAIN
	// ANALYZE, keeping per-node actuals intact.)
	if f, ok := child.(*vecFilterOp); ok && vec {
		return &vecFilterProjectOp{
			child: f.child, pred: f.pred, kern: f.kern, src: f.src,
			exprs: exprs, proj: compileProj(exprs, types, true),
		}, nil
	}
	if p := compileProj(exprs, types, vec); p != nil {
		return &vecProjectOp{child: child, exprs: exprs, proj: p, src: newBatchSource(types)}, nil
	}
	return &projectOp{child: child, exprs: exprs}, nil
}

func (p *projectOp) Open() error { return p.child.Open() }

func (p *projectOp) Next() (expr.Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(expr.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := expr.Eval(e, row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectOp) Close() error { return p.child.Close() }

// vecProjectOp is projectOp over micro-batches with compiled kernels.
type vecProjectOp struct {
	child   Operator
	exprs   []expr.Expr
	proj    *vecProj
	src     *batchSource
	buf     []expr.Row
	out     []expr.Row
	pos     int
	done    bool
	pendErr error
}

func (p *vecProjectOp) Open() error {
	p.out, p.pos, p.done, p.pendErr = nil, 0, false, nil
	return p.child.Open()
}

func (p *vecProjectOp) Next() (expr.Row, bool, error) {
	for {
		if p.pos < len(p.out) {
			row := p.out[p.pos]
			p.pos++
			return row, true, nil
		}
		if p.pendErr != nil {
			return nil, false, p.pendErr
		}
		if p.done {
			return nil, false, nil
		}
		var eos bool
		var err error
		p.buf, eos, err = fillChunk(p.child, p.buf)
		if err != nil {
			return nil, false, err
		}
		p.done = eos
		p.out, p.pos = p.out[:0], 0
		if len(p.buf) == 0 {
			continue
		}
		p.src.Reset(p.buf)
		if out, ok := p.proj.apply(p.src, nil, p.out); ok {
			p.out = out
			continue
		}
		for _, row := range p.buf {
			proj, err := projectRow(p.exprs, row)
			if err != nil {
				p.pendErr = err
				break
			}
			p.out = append(p.out, proj)
		}
	}
}

func (p *vecProjectOp) Close() error { return p.child.Close() }

// vecFilterProjectOp is the fused filter+projection: one columnar view
// per chunk, the predicate's selection vector fed straight into the
// projection kernels. A chunk either path cannot handle is re-run row
// by row — filter then project, in row order — matching the
// interpreter's error timing.
type vecFilterProjectOp struct {
	child   Operator
	pred    expr.Expr
	kern    *vecPred
	src     *batchSource
	exprs   []expr.Expr
	proj    *vecProj // nil: passthrough/interpreted outputs only
	buf     []expr.Row
	out     []expr.Row
	pos     int
	done    bool
	pendErr error
}

func (p *vecFilterProjectOp) Open() error {
	p.out, p.pos, p.done, p.pendErr = nil, 0, false, nil
	return p.child.Open()
}

func (p *vecFilterProjectOp) Next() (expr.Row, bool, error) {
	for {
		if p.pos < len(p.out) {
			row := p.out[p.pos]
			p.pos++
			return row, true, nil
		}
		if p.pendErr != nil {
			return nil, false, p.pendErr
		}
		if p.done {
			return nil, false, nil
		}
		var eos bool
		var err error
		p.buf, eos, err = fillChunk(p.child, p.buf)
		if err != nil {
			return nil, false, err
		}
		p.done = eos
		p.out, p.pos = p.out[:0], 0
		if len(p.buf) == 0 {
			continue
		}
		p.src.Reset(p.buf)
		if sel, ok := p.kern.selectRows(p.src); ok {
			if p.proj != nil {
				if out, applied := p.proj.apply(p.src, sel, p.out); applied {
					p.out = out
					continue
				}
			} else {
				rowsOK := true
				for _, si := range sel {
					proj, err := projectRow(p.exprs, p.buf[si])
					if err != nil {
						rowsOK = false
						break
					}
					p.out = append(p.out, proj)
				}
				if rowsOK {
					continue
				}
				p.out = p.out[:0]
			}
		}
		// Full interpreter re-run of the chunk, in row order.
		for _, row := range p.buf {
			keep, err := expr.EvalBool(p.pred, row)
			if err != nil {
				p.pendErr = err
				break
			}
			if !keep {
				continue
			}
			proj, err := projectRow(p.exprs, row)
			if err != nil {
				p.pendErr = err
				break
			}
			p.out = append(p.out, proj)
		}
	}
}

func (p *vecFilterProjectOp) Close() error { return p.child.Close() }

// --- hash join ----------------------------------------------------------

type hashJoinOp struct {
	node        *plan.Node
	left, right Operator
	leftKeys    []expr.Expr // bound against left schema
	rightKeys   []expr.Expr // bound against right schema
	residual    expr.Expr   // bound against concatenated schema

	table map[uint64][]expr.Row // build side (right)
	// probe state
	matches []expr.Row
	current expr.Row
	mi      int
	// pending buffers the probe row peeked at Open (to detect an empty
	// probe side before paying for the hash-table build).
	pending    expr.Row
	hasPending bool

	// Vectorized key hashing (nil keeps the row path): available when
	// kernels are on and every equi-key is a bare column. Probe rows are
	// gathered into chunks and hashed column-at-a-time; hashes are
	// bit-identical to hashKey, so the buckets match the row path.
	leftHash, rightHash *vecHasher
	probeBuf            []expr.Row
	probeHs             []uint64
	probeValid          []bool
	probeN, probePos    int
	probeEOS            bool
}

func newHashJoin(n *plan.Node, left, right Operator, vec bool) (Operator, error) {
	lres := resolver(n.Children[0])
	rres := resolver(n.Children[1])
	var lk, rk []expr.Expr
	var residual []expr.Expr
	for _, c := range expr.Conjuncts(n.Pred) {
		cmp, ok := c.(*expr.Cmp)
		if ok && cmp.Op == expr.EQ {
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok {
				if bl, err := expr.Bind(lc, lres); err == nil {
					if br, err := expr.Bind(rc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
				// Reversed sides.
				if bl, err := expr.Bind(rc, lres); err == nil {
					if br, err := expr.Bind(lc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	if len(lk) == 0 {
		return nil, fmt.Errorf("executor: hash join without equi-key: %v", n.Pred)
	}
	var res expr.Expr
	if len(residual) > 0 {
		bound, err := expr.Bind(expr.AndAll(residual...), resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: join residual bind: %w", err)
		}
		res = bound
	}
	return &hashJoinOp{
		node: n, left: left, right: right, leftKeys: lk, rightKeys: rk, residual: res,
		leftHash:  newVecHasher(lk, colTypes(n.Children[0]), vec),
		rightHash: newVecHasher(rk, colTypes(n.Children[1]), vec),
	}, nil
}

func hashKey(keys []expr.Expr, row expr.Row) (uint64, bool, error) {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, false, nil // NULL keys never match
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true, nil
}

func (j *hashJoinOp) Open() error {
	// Peek one probe row first: when the probe side is provably empty,
	// the join produces nothing and the hash-table build is wasted
	// work. The build side is still opened and closed (Ship inputs
	// materialize at Open, so transfer accounting is unchanged); only
	// the hashing and insertion are skipped.
	if err := j.left.Open(); err != nil {
		return err
	}
	row, ok, err := j.left.Next()
	if err != nil {
		return err
	}
	j.pending, j.hasPending = row, ok
	if err := j.right.Open(); err != nil {
		return err
	}
	j.table = make(map[uint64][]expr.Row, j.buildSizeHint())
	j.probeN, j.probePos, j.probeEOS = 0, 0, false
	if ok {
		if err := j.buildTable(); err != nil {
			return err
		}
	}
	return j.right.Close()
}

// buildTable hashes the build side into the table, a chunk at a time
// when the keys vectorize and row by row otherwise.
func (j *hashJoinOp) buildTable() error {
	if j.rightHash == nil {
		for {
			row, ok, err := j.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			h, valid, err := hashKey(j.rightKeys, row)
			if err != nil {
				return err
			}
			if valid {
				j.table[h] = append(j.table[h], row)
			}
		}
	}
	buf := make([]expr.Row, 0, BatchSize)
	hs := make([]uint64, BatchSize)
	valid := make([]bool, BatchSize)
	for {
		buf = buf[:0]
		for len(buf) < BatchSize {
			row, ok, err := j.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			buf = append(buf, row)
		}
		if len(buf) == 0 {
			return nil
		}
		if err := j.insertChunk(buf, hs, valid); err != nil {
			return err
		}
		if len(buf) < BatchSize {
			return nil
		}
	}
}

// insertChunk hashes one build chunk vectorized, falling back to the
// row path when a key column is not lane-pure.
func (j *hashJoinOp) insertChunk(rows []expr.Row, hs []uint64, valid []bool) error {
	if j.rightHash.hashBatch(rows, hs, valid) {
		for i, row := range rows {
			if valid[i] {
				j.table[hs[i]] = append(j.table[hs[i]], row)
			}
		}
		return nil
	}
	for _, row := range rows {
		h, ok, err := hashKey(j.rightKeys, row)
		if err != nil {
			return err
		}
		if ok {
			j.table[h] = append(j.table[h], row)
		}
	}
	return nil
}

// buildSizeHint pre-sizes the hash table from the build child's
// cardinality estimate, capped to keep a wild estimate from allocating
// an outsized table up front.
func (j *hashJoinOp) buildSizeHint() int {
	const maxHint = 1 << 20
	card := j.node.Children[1].Card
	switch {
	case card <= 0:
		return 0
	case card >= maxHint:
		return maxHint
	}
	return int(card)
}

func (j *hashJoinOp) Next() (expr.Row, bool, error) {
	for {
		for j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			out := make(expr.Row, 0, len(j.current)+len(r))
			out = append(out, j.current...)
			out = append(out, r...)
			if j.residual != nil {
				keep, err := expr.EvalBool(j.residual, out)
				if err != nil {
					return nil, false, err
				}
				if !keep {
					continue
				}
			}
			// Verify key equality (hash collisions).
			eq, err := j.keysEqual(j.current, r)
			if err != nil {
				return nil, false, err
			}
			if !eq {
				continue
			}
			return out, true, nil
		}
		row, h, valid, ok, err := j.nextProbeHashed()
		if err != nil || !ok {
			return nil, false, err
		}
		if !valid {
			continue
		}
		j.current = row
		j.matches = j.table[h]
		j.mi = 0
	}
}

// nextProbeHashed returns the next probe row with its key hash. With a
// vectorized hasher, probe rows are gathered into chunks and hashed
// column-at-a-time; otherwise each row is hashed as it streams by.
func (j *hashJoinOp) nextProbeHashed() (expr.Row, uint64, bool, bool, error) {
	if j.leftHash == nil {
		row, ok, err := j.nextProbe()
		if err != nil || !ok {
			return nil, 0, false, false, err
		}
		h, valid, err := hashKey(j.leftKeys, row)
		return row, h, valid, true, err
	}
	for {
		if j.probePos < j.probeN {
			i := j.probePos
			j.probePos++
			return j.probeBuf[i], j.probeHs[i], j.probeValid[i], true, nil
		}
		if j.probeEOS {
			return nil, 0, false, false, nil
		}
		if j.probeBuf == nil {
			j.probeBuf = make([]expr.Row, 0, vecChunk)
			j.probeHs = make([]uint64, vecChunk)
			j.probeValid = make([]bool, vecChunk)
		}
		j.probeBuf = j.probeBuf[:0]
		for len(j.probeBuf) < vecChunk {
			row, ok, err := j.nextProbe()
			if err != nil {
				return nil, 0, false, false, err
			}
			if !ok {
				j.probeEOS = true
				break
			}
			j.probeBuf = append(j.probeBuf, row)
		}
		j.probeN, j.probePos = len(j.probeBuf), 0
		if j.probeN == 0 {
			continue
		}
		if !j.leftHash.hashBatch(j.probeBuf, j.probeHs, j.probeValid) {
			for i, row := range j.probeBuf {
				h, valid, err := hashKey(j.leftKeys, row)
				if err != nil {
					return nil, 0, false, false, err
				}
				j.probeHs[i], j.probeValid[i] = h, valid
			}
		}
	}
}

// nextProbe returns the next probe-side row, honoring the row peeked at
// Open.
func (j *hashJoinOp) nextProbe() (expr.Row, bool, error) {
	if j.hasPending {
		row := j.pending
		j.pending, j.hasPending = nil, false
		return row, true, nil
	}
	return j.left.Next()
}

func (j *hashJoinOp) keysEqual(l, r expr.Row) (bool, error) {
	for i := range j.leftKeys {
		lv, err := expr.Eval(j.leftKeys[i], l)
		if err != nil {
			return false, err
		}
		rv, err := expr.Eval(j.rightKeys[i], r)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() {
			return false, nil
		}
		c, err := lv.Compare(rv)
		if err != nil || c != 0 {
			return false, err
		}
	}
	return true, nil
}

func (j *hashJoinOp) Close() error {
	j.table = nil
	j.matches = nil
	return j.left.Close()
}

// --- nested-loop join ---------------------------------------------------

type nlJoinOp struct {
	node        *plan.Node
	left, right Operator
	cond        expr.Expr
	rightRows   []expr.Row
	current     expr.Row
	ri          int
	done        bool
}

func newNLJoin(n *plan.Node, left, right Operator) (Operator, error) {
	var cond expr.Expr
	if n.Pred != nil {
		bound, err := expr.Bind(n.Pred, resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: nl join bind: %w", err)
		}
		cond = bound
	}
	return &nlJoinOp{node: n, left: left, right: right, cond: cond}, nil
}

func (j *nlJoinOp) Open() error {
	rows, err := Collect(j.right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.ri = 0
	j.current = nil
	return j.left.Open()
}

func (j *nlJoinOp) Next() (expr.Row, bool, error) {
	for {
		if j.current == nil {
			row, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.current = row
			j.ri = 0
		}
		for j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			out := make(expr.Row, 0, len(j.current)+len(r))
			out = append(out, j.current...)
			out = append(out, r...)
			keep, err := expr.EvalBool(j.cond, out)
			if err != nil {
				return nil, false, err
			}
			if keep {
				return out, true, nil
			}
		}
		j.current = nil
	}
}

func (j *nlJoinOp) Close() error {
	j.rightRows = nil
	return j.left.Close()
}

// --- hash aggregate -----------------------------------------------------

type aggState struct {
	groupVals expr.Row
	accums    []*accumulator
}

type hashAggOp struct {
	node   *plan.Node
	child  Operator
	keys   []expr.Expr // bound group-by columns
	args   []expr.Expr // bound aggregate arguments (nil for COUNT(*))
	fns    []expr.AggFn
	groups map[string]*aggState
	order  []string
	pos    int

	// Vectorized absorption (vec true): group keys and aggregate
	// arguments are evaluated column-at-a-time per input chunk, and
	// each key column is a bare column or a compiled kernel. Group
	// identity is the binary expr.AppendKey encoding either way, so the
	// groups (and their first-appearance order) are independent of the
	// evaluation path.
	vec      bool
	keyCols  []int
	keyKerns []*expr.Kernel
	argCols  []int
	argKerns []*expr.Kernel
	src      *batchSource
	keyBuf   []byte
}

func newHashAgg(n *plan.Node, child Operator, vec bool) (Operator, error) {
	res := resolver(n.Children[0])
	keys := make([]expr.Expr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		bound, err := expr.Bind(g, res)
		if err != nil {
			return nil, fmt.Errorf("executor: group-by bind %s: %w", g, err)
		}
		keys[i] = bound
	}
	args := make([]expr.Expr, len(n.Aggs))
	fns := make([]expr.AggFn, len(n.Aggs))
	for i, a := range n.Aggs {
		fns[i] = a.Fn
		if a.Arg != nil {
			bound, err := expr.Bind(a.Arg, res)
			if err != nil {
				return nil, fmt.Errorf("executor: aggregate bind %s: %w", a.Arg, err)
			}
			args[i] = bound
		}
	}
	op := &hashAggOp{node: n, child: child, keys: keys, args: args, fns: fns}
	if vec {
		types := colTypes(n.Children[0])
		op.vec = true
		op.keyCols, op.keyKerns = classifyExprs(keys, types, &op.vec)
		op.argCols, op.argKerns = classifyExprs(args, types, &op.vec)
		if op.vec {
			op.src = newBatchSource(types)
		}
	}
	return op, nil
}

// classifyExprs sorts each expression into bare-column or compiled-
// kernel evaluation; anything else clears vec (nil entries — COUNT(*)
// arguments — are fine and stay nil on both sides).
func classifyExprs(exprs []expr.Expr, types []expr.Type, vec *bool) ([]int, []*expr.Kernel) {
	cols := make([]int, len(exprs))
	kerns := make([]*expr.Kernel, len(exprs))
	for i, e := range exprs {
		cols[i] = -1
		if e == nil {
			continue
		}
		if c, ok := e.(*expr.Col); ok {
			cols[i] = c.Index
			continue
		}
		if k, ok := expr.Compile(e, types); ok {
			kerns[i] = k
			continue
		}
		*vec = false
	}
	return cols, kerns
}

func (a *hashAggOp) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	a.groups = map[string]*aggState{}
	a.order = nil
	a.pos = 0
	buf := make([]expr.Row, 0, BatchSize)
	for {
		buf = buf[:0]
		for len(buf) < BatchSize {
			row, ok, err := a.child.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			buf = append(buf, row)
		}
		if len(buf) == 0 {
			break
		}
		if err := a.absorbBatch(buf); err != nil {
			return err
		}
		if len(buf) < BatchSize {
			break
		}
	}
	if err := a.child.Close(); err != nil {
		return err
	}
	// A global aggregation over zero rows still yields one row.
	if len(a.keys) == 0 && len(a.groups) == 0 {
		st := &aggState{accums: newAccums(a.fns)}
		a.groups[""] = st
		a.order = append(a.order, "")
	}
	return nil
}

// absorbBatch folds one input chunk into the groups, vectorized when
// possible and row by row otherwise.
func (a *hashAggOp) absorbBatch(rows []expr.Row) error {
	if a.vec {
		if ok, err := a.absorbVec(rows); ok || err != nil {
			return err
		}
	}
	for _, row := range rows {
		if err := a.absorb(row); err != nil {
			return err
		}
	}
	return nil
}

// absorbVec evaluates all key/argument columns of the chunk at once and
// accumulates per row. ok is false when a vector could not be built (a
// lane-impure column, a kernel error): the caller re-runs the chunk row
// by row, reproducing interpreter behavior exactly.
func (a *hashAggOp) absorbVec(rows []expr.Row) (bool, error) {
	a.src.Reset(rows)
	keyVecs := make([]*expr.Vec, len(a.keys))
	for i := range a.keys {
		v, ok := a.evalVec(a.keyCols[i], a.keyKerns[i])
		if !ok {
			return false, nil
		}
		keyVecs[i] = v
	}
	argVecs := make([]*expr.Vec, len(a.args))
	for i := range a.args {
		if a.args[i] == nil {
			continue
		}
		v, ok := a.evalVec(a.argCols[i], a.argKerns[i])
		if !ok {
			return false, nil
		}
		argVecs[i] = v
	}
	for r := range rows {
		a.keyBuf = a.keyBuf[:0]
		for _, v := range keyVecs {
			a.keyBuf = v.AppendKeyAt(a.keyBuf, r)
		}
		st, ok := a.groups[string(a.keyBuf)]
		if !ok {
			groupVals := make(expr.Row, len(a.keys))
			for i, v := range keyVecs {
				// Bare columns take the row's value as-is (exact NULL
				// type preservation); kernel NULLs materialize with the
				// operator's NullT, matching the interpreter.
				if a.keyCols[i] >= 0 {
					groupVals[i] = rows[r][a.keyCols[i]]
				} else {
					groupVals[i] = v.Value(r)
				}
			}
			key := string(a.keyBuf)
			st = &aggState{groupVals: groupVals, accums: newAccums(a.fns)}
			a.groups[key] = st
			a.order = append(a.order, key)
		}
		for i, acc := range st.accums {
			if a.args[i] == nil {
				acc.addCountStar()
				continue
			}
			if a.argCols[i] >= 0 {
				acc.add(rows[r][a.argCols[i]])
			} else {
				acc.add(argVecs[i].Value(r))
			}
		}
	}
	return true, nil
}

// evalVec resolves one classified expression over the current chunk.
func (a *hashAggOp) evalVec(col int, kern *expr.Kernel) (*expr.Vec, bool) {
	if col >= 0 {
		return a.src.ColVec(col)
	}
	v, err := kern.EvalVec(a.src, nil)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (a *hashAggOp) absorb(row expr.Row) error {
	a.keyBuf = a.keyBuf[:0]
	groupVals := make(expr.Row, len(a.keys))
	for i, k := range a.keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return err
		}
		groupVals[i] = v
		a.keyBuf = expr.AppendKey(a.keyBuf, v)
	}
	st, ok := a.groups[string(a.keyBuf)]
	if !ok {
		key := string(a.keyBuf)
		st = &aggState{groupVals: groupVals, accums: newAccums(a.fns)}
		a.groups[key] = st
		a.order = append(a.order, key)
	}
	for i, acc := range st.accums {
		if a.args[i] == nil {
			acc.addCountStar()
			continue
		}
		v, err := expr.Eval(a.args[i], row)
		if err != nil {
			return err
		}
		acc.add(v)
	}
	return nil
}

func (a *hashAggOp) Next() (expr.Row, bool, error) {
	if a.pos >= len(a.order) {
		return nil, false, nil
	}
	st := a.groups[a.order[a.pos]]
	a.pos++
	out := make(expr.Row, 0, len(st.groupVals)+len(st.accums))
	out = append(out, st.groupVals...)
	for _, acc := range st.accums {
		out = append(out, acc.result())
	}
	return out, true, nil
}

func (a *hashAggOp) Close() error {
	a.groups = nil
	a.order = nil
	return nil
}

// accumulator computes one aggregate.
type accumulator struct {
	fn       expr.AggFn
	count    int64
	sumF     float64
	sumI     int64
	intOnly  bool
	min, max expr.Value
	seen     bool
}

func newAccums(fns []expr.AggFn) []*accumulator {
	out := make([]*accumulator, len(fns))
	for i, fn := range fns {
		out[i] = &accumulator{fn: fn, intOnly: true}
	}
	return out
}

func (a *accumulator) addCountStar() { a.count++ }

func (a *accumulator) add(v expr.Value) {
	if v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	a.count++
	switch v.T {
	case expr.TInt, expr.TBool, expr.TDate:
		a.sumI += v.Int()
		a.sumF += float64(v.Int())
	default:
		a.intOnly = false
		a.sumF += v.Float()
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if c, err := v.Compare(a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err == nil && c > 0 {
		a.max = v
	}
}

func (a *accumulator) result() expr.Value {
	switch a.fn {
	case expr.AggCount:
		return expr.NewInt(a.count)
	case expr.AggSum:
		if a.count == 0 {
			return expr.TypedNull(expr.TFloat)
		}
		if a.intOnly {
			return expr.NewInt(a.sumI)
		}
		return expr.NewFloat(a.sumF)
	case expr.AggAvg:
		if a.count == 0 {
			return expr.TypedNull(expr.TFloat)
		}
		return expr.NewFloat(a.sumF / float64(a.count))
	case expr.AggMin:
		if !a.seen {
			return expr.NullValue()
		}
		return a.min
	case expr.AggMax:
		if !a.seen {
			return expr.NullValue()
		}
		return a.max
	}
	return expr.NullValue()
}

// --- sort / limit / union ----------------------------------------------

type sortOp struct {
	child Operator
	keys  []expr.Expr
	descs []bool
	rows  []expr.Row
	pos   int
}

func newSort(n *plan.Node, child Operator) (Operator, error) {
	res := resolver(n.Children[0])
	keys := make([]expr.Expr, len(n.SortKeys))
	descs := make([]bool, len(n.SortKeys))
	for i, k := range n.SortKeys {
		bound, err := expr.Bind(k.E, res)
		if err != nil {
			return nil, fmt.Errorf("executor: sort bind %s: %w", k.E, err)
		}
		keys[i] = bound
		descs[i] = k.Desc
	}
	return &sortOp{child: child, keys: keys, descs: descs}, nil
}

func (s *sortOp) Open() error {
	rows, err := Collect(s.child)
	if err != nil {
		return err
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.keys {
			vi, err1 := expr.Eval(key, rows[i])
			vj, err2 := expr.Eval(key, rows[j])
			if err1 != nil || err2 != nil {
				if sortErr == nil {
					sortErr = fmt.Errorf("executor: sort eval: %v %v", err1, err2)
				}
				return false
			}
			// NULLs sort first ascending, last descending.
			switch {
			case vi.IsNull() && vj.IsNull():
				continue
			case vi.IsNull():
				return !s.descs[k]
			case vj.IsNull():
				return s.descs[k]
			}
			c, err := vi.Compare(vj)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if s.descs[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *sortOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) Close() error {
	s.rows = nil
	return nil
}

type limitOp struct {
	child Operator
	n     int64
	seen  int64
}

func newLimit(n *plan.Node, child Operator) Operator {
	return &limitOp{child: child, n: n.LimitN}
}

func (l *limitOp) Open() error {
	l.seen = 0
	return l.child.Open()
}

func (l *limitOp) Next() (expr.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

func (l *limitOp) Close() error { return l.child.Close() }

type unionOp struct {
	children []Operator
	idx      int
}

func newUnion(children []Operator) Operator { return &unionOp{children: children} }

func (u *unionOp) Open() error {
	u.idx = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *unionOp) Next() (expr.Row, bool, error) {
	for u.idx < len(u.children) {
		row, ok, err := u.children[u.idx].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.idx++
	}
	return nil, false, nil
}

func (u *unionOp) Close() error {
	for _, c := range u.children {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// --- ship ---------------------------------------------------------------

// shipOp simulates moving the child's entire output between sites: it
// materializes the stream, serializes it into BatchSize-row wire frames
// (see internal/network's wire format), accounts rows and the encoded
// frame bytes in the cluster ledger (priced with the message cost
// model), and replays the decoded rows at the destination. The parallel
// engine frames the same stream identically, so both engines charge the
// ledger the same encoded bytes.
type shipOp struct {
	node  *plan.Node
	child Operator
	env   buildEnv
	rows  []expr.Row
	pos   int
}

func newShip(n *plan.Node, child Operator, env buildEnv) Operator {
	return &shipOp{node: n, child: child, env: env}
}

// widthSum is the schema-estimate size of a row slice — the quantity the
// pre-wire accounting used to bill, now only fed to the calibrator as
// the estimated side of the encoding ratio.
func widthSum(rows []expr.Row) int64 {
	var n int64
	for _, r := range rows {
		n += int64(r.Width())
	}
	return n
}

func (s *shipOp) Open() error {
	if err := s.env.ctx.Err(); err != nil {
		// Cancelled before this boundary: don't start materializing.
		return err
	}
	rows, err := Collect(s.child)
	if err != nil {
		return err
	}
	// Serialize the stream into wire frames; what the ledger bills is
	// the encoded size, and what the destination replays is the decoded
	// rows — an actual round trip through the wire format.
	enc := network.WireEncoder{Opt: s.env.opt.Wire}
	cal := s.env.c.Calibrator()
	var bytes, frames int64
	replay := make([]expr.Row, 0, len(rows))
	for start := 0; start < len(rows); start += BatchSize {
		end := start + BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		frame := enc.Encode(rows[start:end])
		bytes += int64(len(frame))
		frames++
		if cal != nil {
			cal.ObserveEncoding(widthSum(rows[start:end]), int64(len(frame)))
		}
		dec, err := network.DecodeBatch(frame)
		if err != nil {
			return fmt.Errorf("executor: ship frame decode: %w", err)
		}
		replay = append(replay, dec...)
	}
	// The resilient shipping path records the transfer and sleeps the
	// wire time on success; under an installed fault plan it may retry
	// with backoff or fail with a typed *network.ShipError. The run
	// scope (when present) additionally charges the per-run ledger the
	// engine reads its RunStats from.
	if s.env.scope != nil {
		err = s.env.scope.ShipWhole(s.env.ctx, s.node.FromLoc, s.node.ToLoc, int64(len(rows)), bytes)
	} else {
		err = s.env.c.ShipWhole(s.env.ctx, s.node.FromLoc, s.node.ToLoc, int64(len(rows)), bytes)
	}
	if err != nil {
		return err
	}
	if a := s.env.obsv.AuditSink(); a != nil {
		rec := auditRecFor(s.node)
		rec.Rows, rec.Bytes, rec.Batches = int64(len(rows)), bytes, frames
		a.Record(rec)
	}
	if prof := s.env.obsv.Prof(); prof != nil {
		// One profiled batch per wire frame, matching the parallel engine.
		prof.Stats(s.node).Batches.Add(frames)
	}
	s.rows = replay
	s.pos = 0
	return nil
}

func (s *shipOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *shipOp) Close() error {
	s.rows = nil
	return nil
}
