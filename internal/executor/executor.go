// Package executor runs physical query execution plans over the
// simulated geo-distributed cluster using the Volcano iterator model
// (Open / Next / Close). SHIP operators move rows through the simulated
// WAN and charge the message cost model via the cluster's ledger, which
// is how the plan-quality experiments (Figures 6g/6h) measure execution
// cost.
package executor

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// Operator is the Volcano iterator interface.
type Operator interface {
	Open() error
	// Next returns the next row; ok is false at end of stream.
	Next() (row expr.Row, ok bool, err error)
	Close() error
}

// RunStats summarizes one execution.
type RunStats struct {
	RowsOut      int64
	ShippedRows  int64
	ShippedBytes int64
	// ShipCost is the simulated communication cost (ms) of all SHIP
	// operators, priced by the cluster's message cost model.
	ShipCost float64
	// Retries counts failed send attempts that the shipping path
	// recovered (or gave up on) under the cluster's fault plan; always
	// 0 when no faults are injected.
	Retries int64
}

// Run executes a located physical plan sequentially (one goroutine,
// row at a time) and materializes its result. RunParallel is the
// batch-parallel equivalent with identical results and statistics;
// RunObserved additionally reports into an observer.
func Run(p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunObserved(p, c, nil)
}

// RunContext is Run under a caller context: cancelling it makes the
// next SHIP boundary (including its in-flight retry backoff) return
// the context error instead of starting new work.
func RunContext(ctx context.Context, p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunObservedContext(ctx, p, c, nil)
}

// Collect drains an operator into a slice.
func Collect(op Operator) ([]expr.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []expr.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Build compiles a physical plan node into an operator tree.
func Build(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	return buildObs(n, buildEnv{c: c, ctx: context.Background()})
}

// buildEnv bundles the per-execution context an operator tree is built
// under: the cluster, an optional per-run accounting scope (nil charges
// the shared ledger only, as Build always did), the cancellation
// context Ship boundaries honor, and the observer.
type buildEnv struct {
	c     *cluster.Cluster
	scope *cluster.RunScope
	ctx   context.Context
	obsv  *obs.Observer
}

// buildObs is Build threading a build environment: Ship operators
// report audit records into its observer, honor its context and charge
// its run scope; when the observer carries a PlanProfile every operator
// is wrapped to collect per-node actuals.
func buildObs(n *plan.Node, env buildEnv) (Operator, error) {
	children := make([]Operator, len(n.Children))
	for i, ch := range n.Children {
		op, err := buildObs(ch, env)
		if err != nil {
			return nil, err
		}
		children[i] = op
	}
	var op Operator
	var err error
	switch n.Kind {
	case plan.TableScan, plan.Scan:
		op, err = newScan(n, env.c)
	case plan.FilterExec, plan.Filter:
		op, err = newFilter(n, children[0])
	case plan.ProjectExec, plan.Project:
		op, err = newProject(n, children[0])
	case plan.HashJoin:
		op, err = newHashJoin(n, children[0], children[1])
	case plan.MergeJoin:
		op, err = newMergeJoin(n, children[0], children[1])
	case plan.NLJoin, plan.Join:
		op, err = newNLJoin(n, children[0], children[1])
	case plan.HashAgg, plan.Aggregate:
		op, err = newHashAgg(n, children[0])
	case plan.SortExec, plan.Sort:
		op, err = newSort(n, children[0])
	case plan.LimitExec, plan.Limit:
		op = newLimit(n, children[0])
	case plan.UnionAll, plan.Union:
		op = newUnion(children)
	case plan.Ship:
		op = newShip(n, children[0], env)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	if prof := env.obsv.Prof(); prof != nil {
		op = &profOp{op: op, stats: prof.Stats(n)}
	}
	return op, nil
}

// resolver builds a column resolver over a plan node's output schema.
func resolver(n *plan.Node) expr.Resolver {
	keys := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		keys[i] = c.Key()
	}
	return expr.SliceResolver(keys)
}

// --- scan ---------------------------------------------------------------

type scanOp struct {
	node *plan.Node
	c    *cluster.Cluster
	rows []expr.Row
	pos  int
}

func newScan(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	if n.Table == nil {
		return nil, fmt.Errorf("executor: scan without table")
	}
	return &scanOp{node: n, c: c}, nil
}

func (s *scanOp) Open() error {
	var err error
	if s.node.FragIdx < 0 && s.node.Table.Fragmented() {
		s.rows, err = s.c.AllRows(s.node.Table)
	} else {
		s.rows, err = s.c.FragmentRows(s.node.Table, s.node.FragIdx)
	}
	s.pos = 0
	return err
}

func (s *scanOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *scanOp) Close() error {
	s.rows = nil
	return nil
}

// --- filter -------------------------------------------------------------

type filterOp struct {
	child Operator
	pred  expr.Expr
}

func newFilter(n *plan.Node, child Operator) (Operator, error) {
	bound, err := expr.Bind(n.Pred, resolver(n.Children[0]))
	if err != nil {
		return nil, fmt.Errorf("executor: filter bind: %w", err)
	}
	return &filterOp{child: child, pred: bound}, nil
}

func (f *filterOp) Open() error { return f.child.Open() }

func (f *filterOp) Next() (expr.Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := expr.EvalBool(f.pred, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// --- project ------------------------------------------------------------

type projectOp struct {
	child Operator
	exprs []expr.Expr
}

func newProject(n *plan.Node, child Operator) (Operator, error) {
	res := resolver(n.Children[0])
	exprs := make([]expr.Expr, len(n.Projs))
	for i, p := range n.Projs {
		bound, err := expr.Bind(p.E, res)
		if err != nil {
			return nil, fmt.Errorf("executor: project bind %s: %w", p.E, err)
		}
		exprs[i] = bound
	}
	return &projectOp{child: child, exprs: exprs}, nil
}

func (p *projectOp) Open() error { return p.child.Open() }

func (p *projectOp) Next() (expr.Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(expr.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := expr.Eval(e, row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectOp) Close() error { return p.child.Close() }

// --- hash join ----------------------------------------------------------

type hashJoinOp struct {
	node        *plan.Node
	left, right Operator
	leftKeys    []expr.Expr // bound against left schema
	rightKeys   []expr.Expr // bound against right schema
	residual    expr.Expr   // bound against concatenated schema

	table map[uint64][]expr.Row // build side (right)
	// probe state
	matches []expr.Row
	current expr.Row
	mi      int
	// pending buffers the probe row peeked at Open (to detect an empty
	// probe side before paying for the hash-table build).
	pending    expr.Row
	hasPending bool
}

func newHashJoin(n *plan.Node, left, right Operator) (Operator, error) {
	lres := resolver(n.Children[0])
	rres := resolver(n.Children[1])
	var lk, rk []expr.Expr
	var residual []expr.Expr
	for _, c := range expr.Conjuncts(n.Pred) {
		cmp, ok := c.(*expr.Cmp)
		if ok && cmp.Op == expr.EQ {
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok {
				if bl, err := expr.Bind(lc, lres); err == nil {
					if br, err := expr.Bind(rc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
				// Reversed sides.
				if bl, err := expr.Bind(rc, lres); err == nil {
					if br, err := expr.Bind(lc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	if len(lk) == 0 {
		return nil, fmt.Errorf("executor: hash join without equi-key: %v", n.Pred)
	}
	var res expr.Expr
	if len(residual) > 0 {
		bound, err := expr.Bind(expr.AndAll(residual...), resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: join residual bind: %w", err)
		}
		res = bound
	}
	return &hashJoinOp{node: n, left: left, right: right, leftKeys: lk, rightKeys: rk, residual: res}, nil
}

func hashKey(keys []expr.Expr, row expr.Row) (uint64, bool, error) {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, false, nil // NULL keys never match
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true, nil
}

func (j *hashJoinOp) Open() error {
	// Peek one probe row first: when the probe side is provably empty,
	// the join produces nothing and the hash-table build is wasted
	// work. The build side is still opened and closed (Ship inputs
	// materialize at Open, so transfer accounting is unchanged); only
	// the hashing and insertion are skipped.
	if err := j.left.Open(); err != nil {
		return err
	}
	row, ok, err := j.left.Next()
	if err != nil {
		return err
	}
	j.pending, j.hasPending = row, ok
	if err := j.right.Open(); err != nil {
		return err
	}
	j.table = make(map[uint64][]expr.Row, j.buildSizeHint())
	if ok {
		for {
			row, ok, err := j.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			h, valid, err := hashKey(j.rightKeys, row)
			if err != nil {
				return err
			}
			if valid {
				j.table[h] = append(j.table[h], row)
			}
		}
	}
	return j.right.Close()
}

// buildSizeHint pre-sizes the hash table from the build child's
// cardinality estimate, capped to keep a wild estimate from allocating
// an outsized table up front.
func (j *hashJoinOp) buildSizeHint() int {
	const maxHint = 1 << 20
	card := j.node.Children[1].Card
	switch {
	case card <= 0:
		return 0
	case card >= maxHint:
		return maxHint
	}
	return int(card)
}

func (j *hashJoinOp) Next() (expr.Row, bool, error) {
	for {
		for j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			out := make(expr.Row, 0, len(j.current)+len(r))
			out = append(out, j.current...)
			out = append(out, r...)
			if j.residual != nil {
				keep, err := expr.EvalBool(j.residual, out)
				if err != nil {
					return nil, false, err
				}
				if !keep {
					continue
				}
			}
			// Verify key equality (hash collisions).
			eq, err := j.keysEqual(j.current, r)
			if err != nil {
				return nil, false, err
			}
			if !eq {
				continue
			}
			return out, true, nil
		}
		row, ok, err := j.nextProbe()
		if err != nil || !ok {
			return nil, false, err
		}
		h, valid, err := hashKey(j.leftKeys, row)
		if err != nil {
			return nil, false, err
		}
		if !valid {
			continue
		}
		j.current = row
		j.matches = j.table[h]
		j.mi = 0
	}
}

// nextProbe returns the next probe-side row, honoring the row peeked at
// Open.
func (j *hashJoinOp) nextProbe() (expr.Row, bool, error) {
	if j.hasPending {
		row := j.pending
		j.pending, j.hasPending = nil, false
		return row, true, nil
	}
	return j.left.Next()
}

func (j *hashJoinOp) keysEqual(l, r expr.Row) (bool, error) {
	for i := range j.leftKeys {
		lv, err := expr.Eval(j.leftKeys[i], l)
		if err != nil {
			return false, err
		}
		rv, err := expr.Eval(j.rightKeys[i], r)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() {
			return false, nil
		}
		c, err := lv.Compare(rv)
		if err != nil || c != 0 {
			return false, err
		}
	}
	return true, nil
}

func (j *hashJoinOp) Close() error {
	j.table = nil
	j.matches = nil
	return j.left.Close()
}

// --- nested-loop join ---------------------------------------------------

type nlJoinOp struct {
	node        *plan.Node
	left, right Operator
	cond        expr.Expr
	rightRows   []expr.Row
	current     expr.Row
	ri          int
	done        bool
}

func newNLJoin(n *plan.Node, left, right Operator) (Operator, error) {
	var cond expr.Expr
	if n.Pred != nil {
		bound, err := expr.Bind(n.Pred, resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: nl join bind: %w", err)
		}
		cond = bound
	}
	return &nlJoinOp{node: n, left: left, right: right, cond: cond}, nil
}

func (j *nlJoinOp) Open() error {
	rows, err := Collect(j.right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.ri = 0
	j.current = nil
	return j.left.Open()
}

func (j *nlJoinOp) Next() (expr.Row, bool, error) {
	for {
		if j.current == nil {
			row, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.current = row
			j.ri = 0
		}
		for j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			out := make(expr.Row, 0, len(j.current)+len(r))
			out = append(out, j.current...)
			out = append(out, r...)
			keep, err := expr.EvalBool(j.cond, out)
			if err != nil {
				return nil, false, err
			}
			if keep {
				return out, true, nil
			}
		}
		j.current = nil
	}
}

func (j *nlJoinOp) Close() error {
	j.rightRows = nil
	return j.left.Close()
}

// --- hash aggregate -----------------------------------------------------

type aggState struct {
	groupVals expr.Row
	accums    []*accumulator
}

type hashAggOp struct {
	node   *plan.Node
	child  Operator
	keys   []expr.Expr // bound group-by columns
	args   []expr.Expr // bound aggregate arguments (nil for COUNT(*))
	fns    []expr.AggFn
	groups map[string]*aggState
	order  []string
	pos    int
}

func newHashAgg(n *plan.Node, child Operator) (Operator, error) {
	res := resolver(n.Children[0])
	keys := make([]expr.Expr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		bound, err := expr.Bind(g, res)
		if err != nil {
			return nil, fmt.Errorf("executor: group-by bind %s: %w", g, err)
		}
		keys[i] = bound
	}
	args := make([]expr.Expr, len(n.Aggs))
	fns := make([]expr.AggFn, len(n.Aggs))
	for i, a := range n.Aggs {
		fns[i] = a.Fn
		if a.Arg != nil {
			bound, err := expr.Bind(a.Arg, res)
			if err != nil {
				return nil, fmt.Errorf("executor: aggregate bind %s: %w", a.Arg, err)
			}
			args[i] = bound
		}
	}
	return &hashAggOp{node: n, child: child, keys: keys, args: args, fns: fns}, nil
}

func (a *hashAggOp) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	a.groups = map[string]*aggState{}
	a.order = nil
	a.pos = 0
	for {
		row, ok, err := a.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := a.absorb(row); err != nil {
			return err
		}
	}
	if err := a.child.Close(); err != nil {
		return err
	}
	// A global aggregation over zero rows still yields one row.
	if len(a.keys) == 0 && len(a.groups) == 0 {
		st := &aggState{accums: newAccums(a.fns)}
		a.groups[""] = st
		a.order = append(a.order, "")
	}
	return nil
}

func (a *hashAggOp) absorb(row expr.Row) error {
	var keyBuf strings.Builder
	groupVals := make(expr.Row, len(a.keys))
	for i, k := range a.keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return err
		}
		groupVals[i] = v
		keyBuf.WriteString(v.String())
		keyBuf.WriteByte('\x00')
	}
	key := keyBuf.String()
	st, ok := a.groups[key]
	if !ok {
		st = &aggState{groupVals: groupVals, accums: newAccums(a.fns)}
		a.groups[key] = st
		a.order = append(a.order, key)
	}
	for i, acc := range st.accums {
		if a.args[i] == nil {
			acc.addCountStar()
			continue
		}
		v, err := expr.Eval(a.args[i], row)
		if err != nil {
			return err
		}
		acc.add(v)
	}
	return nil
}

func (a *hashAggOp) Next() (expr.Row, bool, error) {
	if a.pos >= len(a.order) {
		return nil, false, nil
	}
	st := a.groups[a.order[a.pos]]
	a.pos++
	out := make(expr.Row, 0, len(st.groupVals)+len(st.accums))
	out = append(out, st.groupVals...)
	for _, acc := range st.accums {
		out = append(out, acc.result())
	}
	return out, true, nil
}

func (a *hashAggOp) Close() error {
	a.groups = nil
	a.order = nil
	return nil
}

// accumulator computes one aggregate.
type accumulator struct {
	fn       expr.AggFn
	count    int64
	sumF     float64
	sumI     int64
	intOnly  bool
	min, max expr.Value
	seen     bool
}

func newAccums(fns []expr.AggFn) []*accumulator {
	out := make([]*accumulator, len(fns))
	for i, fn := range fns {
		out[i] = &accumulator{fn: fn, intOnly: true}
	}
	return out
}

func (a *accumulator) addCountStar() { a.count++ }

func (a *accumulator) add(v expr.Value) {
	if v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	a.count++
	switch v.T {
	case expr.TInt, expr.TBool, expr.TDate:
		a.sumI += v.Int()
		a.sumF += float64(v.Int())
	default:
		a.intOnly = false
		a.sumF += v.Float()
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if c, err := v.Compare(a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err == nil && c > 0 {
		a.max = v
	}
}

func (a *accumulator) result() expr.Value {
	switch a.fn {
	case expr.AggCount:
		return expr.NewInt(a.count)
	case expr.AggSum:
		if a.count == 0 {
			return expr.TypedNull(expr.TFloat)
		}
		if a.intOnly {
			return expr.NewInt(a.sumI)
		}
		return expr.NewFloat(a.sumF)
	case expr.AggAvg:
		if a.count == 0 {
			return expr.TypedNull(expr.TFloat)
		}
		return expr.NewFloat(a.sumF / float64(a.count))
	case expr.AggMin:
		if !a.seen {
			return expr.NullValue()
		}
		return a.min
	case expr.AggMax:
		if !a.seen {
			return expr.NullValue()
		}
		return a.max
	}
	return expr.NullValue()
}

// --- sort / limit / union ----------------------------------------------

type sortOp struct {
	child Operator
	keys  []expr.Expr
	descs []bool
	rows  []expr.Row
	pos   int
}

func newSort(n *plan.Node, child Operator) (Operator, error) {
	res := resolver(n.Children[0])
	keys := make([]expr.Expr, len(n.SortKeys))
	descs := make([]bool, len(n.SortKeys))
	for i, k := range n.SortKeys {
		bound, err := expr.Bind(k.E, res)
		if err != nil {
			return nil, fmt.Errorf("executor: sort bind %s: %w", k.E, err)
		}
		keys[i] = bound
		descs[i] = k.Desc
	}
	return &sortOp{child: child, keys: keys, descs: descs}, nil
}

func (s *sortOp) Open() error {
	rows, err := Collect(s.child)
	if err != nil {
		return err
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.keys {
			vi, err1 := expr.Eval(key, rows[i])
			vj, err2 := expr.Eval(key, rows[j])
			if err1 != nil || err2 != nil {
				if sortErr == nil {
					sortErr = fmt.Errorf("executor: sort eval: %v %v", err1, err2)
				}
				return false
			}
			// NULLs sort first ascending, last descending.
			switch {
			case vi.IsNull() && vj.IsNull():
				continue
			case vi.IsNull():
				return !s.descs[k]
			case vj.IsNull():
				return s.descs[k]
			}
			c, err := vi.Compare(vj)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if s.descs[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *sortOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) Close() error {
	s.rows = nil
	return nil
}

type limitOp struct {
	child Operator
	n     int64
	seen  int64
}

func newLimit(n *plan.Node, child Operator) Operator {
	return &limitOp{child: child, n: n.LimitN}
}

func (l *limitOp) Open() error {
	l.seen = 0
	return l.child.Open()
}

func (l *limitOp) Next() (expr.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

func (l *limitOp) Close() error { return l.child.Close() }

type unionOp struct {
	children []Operator
	idx      int
}

func newUnion(children []Operator) Operator { return &unionOp{children: children} }

func (u *unionOp) Open() error {
	u.idx = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *unionOp) Next() (expr.Row, bool, error) {
	for u.idx < len(u.children) {
		row, ok, err := u.children[u.idx].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.idx++
	}
	return nil, false, nil
}

func (u *unionOp) Close() error {
	for _, c := range u.children {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// --- ship ---------------------------------------------------------------

// shipOp simulates moving the child's entire output between sites: it
// materializes the stream, accounts rows and bytes in the cluster ledger
// (priced with the message cost model), and replays the rows at the
// destination.
type shipOp struct {
	node  *plan.Node
	child Operator
	env   buildEnv
	rows  []expr.Row
	pos   int
}

func newShip(n *plan.Node, child Operator, env buildEnv) Operator {
	return &shipOp{node: n, child: child, env: env}
}

func (s *shipOp) Open() error {
	if err := s.env.ctx.Err(); err != nil {
		// Cancelled before this boundary: don't start materializing.
		return err
	}
	rows, err := Collect(s.child)
	if err != nil {
		return err
	}
	var bytes int64
	for _, r := range rows {
		bytes += int64(r.Width())
	}
	// The resilient shipping path records the transfer and sleeps the
	// wire time on success; under an installed fault plan it may retry
	// with backoff or fail with a typed *network.ShipError. The run
	// scope (when present) additionally charges the per-run ledger the
	// engine reads its RunStats from.
	if s.env.scope != nil {
		err = s.env.scope.ShipWhole(s.env.ctx, s.node.FromLoc, s.node.ToLoc, int64(len(rows)), bytes)
	} else {
		err = s.env.c.ShipWhole(s.env.ctx, s.node.FromLoc, s.node.ToLoc, int64(len(rows)), bytes)
	}
	if err != nil {
		return err
	}
	if a := s.env.obsv.AuditSink(); a != nil {
		rec := auditRecFor(s.node)
		rec.Rows, rec.Bytes, rec.Batches = int64(len(rows)), bytes, 1
		a.Record(rec)
	}
	if prof := s.env.obsv.Prof(); prof != nil {
		// The sequential engine moves the materialized stream as one batch.
		prof.Stats(s.node).Batches.Add(1)
	}
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *shipOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *shipOp) Close() error {
	s.rows = nil
	return nil
}
