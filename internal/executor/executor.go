// Package executor runs physical query execution plans over the
// simulated geo-distributed cluster using the Volcano iterator model
// (Open / Next / Close). SHIP operators move rows through the simulated
// WAN and charge the message cost model via the cluster's ledger, which
// is how the plan-quality experiments (Figures 6g/6h) measure execution
// cost.
package executor

import (
	"context"
	"fmt"
	"sort"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// Operator is the Volcano iterator interface.
type Operator interface {
	Open() error
	// Next returns the next row; ok is false at end of stream.
	Next() (row expr.Row, ok bool, err error)
	Close() error
}

// RunStats summarizes one execution.
type RunStats struct {
	RowsOut      int64
	ShippedRows  int64
	ShippedBytes int64
	// ShipCost is the simulated communication cost (ms) of all SHIP
	// operators, priced by the cluster's message cost model.
	ShipCost float64
	// Retries counts failed send attempts that the shipping path
	// recovered (or gave up on) under the cluster's fault plan; always
	// 0 when no faults are injected.
	Retries int64
}

// Run executes a located physical plan sequentially (one goroutine,
// row at a time) and materializes its result. RunParallel is the
// batch-parallel equivalent with identical results and statistics;
// RunObserved additionally reports into an observer.
func Run(p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunObserved(p, c, nil)
}

// RunContext is Run under a caller context: cancelling it makes the
// next SHIP boundary (including its in-flight retry backoff) return
// the context error instead of starting new work.
func RunContext(ctx context.Context, p *plan.Node, c *cluster.Cluster) ([]expr.Row, *RunStats, error) {
	return RunObservedContext(ctx, p, c, nil)
}

// Collect drains an operator into a slice.
func Collect(op Operator) ([]expr.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []expr.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Build compiles a physical plan node into an operator tree.
func Build(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	return buildObs(n, buildEnv{c: c, ctx: context.Background(), opt: defaultExecOptions()})
}

// buildEnv bundles the per-execution context an operator tree is built
// under: the cluster, an optional per-run accounting scope (nil charges
// the shared ledger only, as Build always did), the cancellation
// context Ship boundaries honor, the observer, and the execution
// options (kernel gate, wire encoding).
type buildEnv struct {
	c     *cluster.Cluster
	scope *cluster.RunScope
	ctx   context.Context
	obsv  *obs.Observer
	opt   ExecOptions
}

// buildObs is Build threading a build environment: Ship operators
// report audit records into its observer, honor its context and charge
// its run scope; when the observer carries a PlanProfile every operator
// is wrapped to collect per-node actuals.
func buildObs(n *plan.Node, env buildEnv) (Operator, error) {
	children := make([]Operator, len(n.Children))
	for i, ch := range n.Children {
		op, err := buildObs(ch, env)
		if err != nil {
			return nil, err
		}
		children[i] = op
	}
	var op Operator
	var err error
	switch n.Kind {
	case plan.TableScan, plan.Scan:
		op, err = newScan(n, env.c)
	case plan.IndexScan:
		op, err = newIndexScan(n, env.c)
	case plan.IndexLookupJoin:
		// The inner scan child (children[1]) is reached through the index
		// probes, never executed as an operator.
		op, err = newIndexLookupJoin(n, children[0], env.c)
	case plan.FilterExec, plan.Filter:
		op, err = newFilter(n, children[0], env.opt.kernels())
	case plan.ProjectExec, plan.Project:
		op, err = newProject(n, children[0], env.opt.kernels())
	case plan.HashJoin:
		op, err = newHashJoin(n, children[0], children[1], env.opt.kernels())
	case plan.MergeJoin:
		op, err = newMergeJoin(n, children[0], children[1])
	case plan.NLJoin, plan.Join:
		op, err = newNLJoin(n, children[0], children[1])
	case plan.HashAgg, plan.Aggregate:
		op, err = newHashAgg(n, children[0], env.opt.kernels())
	case plan.SortExec, plan.Sort:
		op, err = newSort(n, children[0])
	case plan.LimitExec, plan.Limit:
		op = newLimit(n, children[0])
	case plan.UnionAll, plan.Union:
		op = newUnion(children)
	case plan.Ship:
		op = newShip(n, children[0], env)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	if prof := env.obsv.Prof(); prof != nil {
		op = &profOp{op: op, stats: prof.Stats(n)}
	}
	return op, nil
}

// resolver builds a column resolver over a plan node's output schema.
func resolver(n *plan.Node) expr.Resolver {
	keys := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		keys[i] = c.Key()
	}
	return expr.SliceResolver(keys)
}

// --- scan ---------------------------------------------------------------

type scanOp struct {
	node *plan.Node
	c    *cluster.Cluster
	rows []expr.Row
	pos  int
}

func newScan(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	if n.Table == nil {
		return nil, fmt.Errorf("executor: scan without table")
	}
	return &scanOp{node: n, c: c}, nil
}

func (s *scanOp) Open() error {
	var err error
	if s.node.FragIdx < 0 && s.node.Table.Fragmented() {
		s.rows, err = s.c.AllRows(s.node.Table)
	} else {
		s.rows, err = s.c.FragmentRows(s.node.Table, s.node.FragIdx)
	}
	s.pos = 0
	return err
}

func (s *scanOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *scanOp) Close() error {
	s.rows = nil
	return nil
}

// --- filter -------------------------------------------------------------

type filterOp struct {
	child Operator
	pred  expr.Expr
}

func newFilter(n *plan.Node, child Operator, vec bool) (Operator, error) {
	bound, err := expr.Bind(n.Pred, resolver(n.Children[0]))
	if err != nil {
		return nil, fmt.Errorf("executor: filter bind: %w", err)
	}
	if p := compilePred(bound, colTypes(n.Children[0]), vec); p != nil {
		f := &vecFilterOp{child: child, pred: bound, kern: p, types: colTypes(n.Children[0])}
		f.data.Bind(f.types)
		return f, nil
	}
	return &filterOp{child: child, pred: bound}, nil
}

func (f *filterOp) Open() error { return f.child.Open() }

func (f *filterOp) Next() (expr.Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := expr.EvalBool(f.pred, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// vecFilterOp is filterOp over micro-batches: it pulls vecChunk rows,
// runs the compiled predicate over the columnar view, and replays the
// survivors. A batch the kernel cannot handle is re-run row by row, so
// results and error behavior match the interpreter.
type vecFilterOp struct {
	child Operator
	pred  expr.Expr
	kern  *vecPred
	types []expr.Type
	data  expr.Batch
	buf   []expr.Row
	out   []expr.Row
	pos   int
	done  bool
	// pendErr is an interpreter error found mid-chunk: survivors before
	// the failing row drain first, exactly like the row-at-a-time path.
	pendErr error
}

func (f *vecFilterOp) Open() error {
	f.out, f.pos, f.done, f.pendErr = nil, 0, false, nil
	return f.child.Open()
}

// fillChunk pulls up to vecChunk rows from op into buf.
func fillChunk(op Operator, buf []expr.Row) ([]expr.Row, bool, error) {
	buf = buf[:0]
	for len(buf) < vecChunk {
		row, ok, err := op.Next()
		if err != nil {
			return buf, false, err
		}
		if !ok {
			return buf, true, nil
		}
		buf = append(buf, row)
	}
	return buf, false, nil
}

func (f *vecFilterOp) Next() (expr.Row, bool, error) {
	for {
		if f.pos < len(f.out) {
			row := f.out[f.pos]
			f.pos++
			return row, true, nil
		}
		if f.pendErr != nil {
			return nil, false, f.pendErr
		}
		if f.done {
			return nil, false, nil
		}
		var eos bool
		var err error
		f.buf, eos, err = fillChunk(f.child, f.buf)
		if err != nil {
			return nil, false, err
		}
		f.done = eos
		f.out, f.pos = f.out[:0], 0
		if len(f.buf) == 0 {
			continue
		}
		f.data.SetRows(f.buf)
		if sel, ok := f.kern.selectRows(&f.data); ok {
			for _, si := range sel {
				f.out = append(f.out, f.buf[si])
			}
			continue
		}
		// Interpreter re-run: keep survivors up to the failing row.
		for _, row := range f.buf {
			keep, err := expr.EvalBool(f.pred, row)
			if err != nil {
				f.pendErr = err
				break
			}
			if keep {
				f.out = append(f.out, row)
			}
		}
	}
}

func (f *vecFilterOp) Close() error { return f.child.Close() }

// --- project ------------------------------------------------------------

type projectOp struct {
	child Operator
	exprs []expr.Expr
}

func newProject(n *plan.Node, child Operator, vec bool) (Operator, error) {
	res := resolver(n.Children[0])
	exprs := make([]expr.Expr, len(n.Projs))
	for i, p := range n.Projs {
		bound, err := expr.Bind(p.E, res)
		if err != nil {
			return nil, fmt.Errorf("executor: project bind %s: %w", p.E, err)
		}
		exprs[i] = bound
	}
	types := colTypes(n.Children[0])
	// Fuse with a vectorized filter child: the filter's surviving
	// selection vector drives the projection kernels directly, and both
	// share one columnar view of the batch. (Profiling wraps operators,
	// so the assertion fails and fusion is skipped under EXPLAIN
	// ANALYZE, keeping per-node actuals intact.)
	if f, ok := child.(*vecFilterOp); ok && vec {
		fp := &vecFilterProjectOp{
			child: f.child, pred: f.pred, kern: f.kern, types: types,
			exprs: exprs, proj: compileProj(exprs, types, true),
		}
		fp.data.Bind(types)
		return fp, nil
	}
	if p := compileProj(exprs, types, vec); p != nil {
		vp := &vecProjectOp{child: child, exprs: exprs, proj: p, types: types}
		vp.data.Bind(types)
		return vp, nil
	}
	return &projectOp{child: child, exprs: exprs}, nil
}

func (p *projectOp) Open() error { return p.child.Open() }

func (p *projectOp) Next() (expr.Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(expr.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := expr.Eval(e, row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectOp) Close() error { return p.child.Close() }

// vecProjectOp is projectOp over micro-batches with compiled kernels.
type vecProjectOp struct {
	child   Operator
	exprs   []expr.Expr
	proj    *vecProj
	types   []expr.Type
	data    expr.Batch
	buf     []expr.Row
	out     []expr.Row
	pos     int
	done    bool
	pendErr error
}

func (p *vecProjectOp) Open() error {
	p.out, p.pos, p.done, p.pendErr = nil, 0, false, nil
	return p.child.Open()
}

func (p *vecProjectOp) Next() (expr.Row, bool, error) {
	for {
		if p.pos < len(p.out) {
			row := p.out[p.pos]
			p.pos++
			return row, true, nil
		}
		if p.pendErr != nil {
			return nil, false, p.pendErr
		}
		if p.done {
			return nil, false, nil
		}
		var eos bool
		var err error
		p.buf, eos, err = fillChunk(p.child, p.buf)
		if err != nil {
			return nil, false, err
		}
		p.done = eos
		p.out, p.pos = p.out[:0], 0
		if len(p.buf) == 0 {
			continue
		}
		p.data.SetRows(p.buf)
		if out, ok := p.proj.apply(&p.data, nil, p.out); ok {
			p.out = out
			continue
		}
		for _, row := range p.buf {
			proj, err := projectRow(p.exprs, row)
			if err != nil {
				p.pendErr = err
				break
			}
			p.out = append(p.out, proj)
		}
	}
}

func (p *vecProjectOp) Close() error { return p.child.Close() }

// vecFilterProjectOp is the fused filter+projection: one columnar view
// per chunk, the predicate's selection vector fed straight into the
// projection kernels. A chunk either path cannot handle is re-run row
// by row — filter then project, in row order — matching the
// interpreter's error timing.
type vecFilterProjectOp struct {
	child   Operator
	pred    expr.Expr
	kern    *vecPred
	types   []expr.Type
	data    expr.Batch
	exprs   []expr.Expr
	proj    *vecProj // nil: passthrough/interpreted outputs only
	buf     []expr.Row
	out     []expr.Row
	pos     int
	done    bool
	pendErr error
}

func (p *vecFilterProjectOp) Open() error {
	p.out, p.pos, p.done, p.pendErr = nil, 0, false, nil
	return p.child.Open()
}

func (p *vecFilterProjectOp) Next() (expr.Row, bool, error) {
	for {
		if p.pos < len(p.out) {
			row := p.out[p.pos]
			p.pos++
			return row, true, nil
		}
		if p.pendErr != nil {
			return nil, false, p.pendErr
		}
		if p.done {
			return nil, false, nil
		}
		var eos bool
		var err error
		p.buf, eos, err = fillChunk(p.child, p.buf)
		if err != nil {
			return nil, false, err
		}
		p.done = eos
		p.out, p.pos = p.out[:0], 0
		if len(p.buf) == 0 {
			continue
		}
		p.data.SetRows(p.buf)
		if sel, ok := p.kern.selectRows(&p.data); ok {
			if p.proj != nil {
				if out, applied := p.proj.apply(&p.data, sel, p.out); applied {
					p.out = out
					continue
				}
			} else {
				rowsOK := true
				for _, si := range sel {
					proj, err := projectRow(p.exprs, p.buf[si])
					if err != nil {
						rowsOK = false
						break
					}
					p.out = append(p.out, proj)
				}
				if rowsOK {
					continue
				}
				p.out = p.out[:0]
			}
		}
		// Full interpreter re-run of the chunk, in row order.
		for _, row := range p.buf {
			keep, err := expr.EvalBool(p.pred, row)
			if err != nil {
				p.pendErr = err
				break
			}
			if !keep {
				continue
			}
			proj, err := projectRow(p.exprs, row)
			if err != nil {
				p.pendErr = err
				break
			}
			p.out = append(p.out, proj)
		}
	}
}

func (p *vecFilterProjectOp) Close() error { return p.child.Close() }

// --- hash join ----------------------------------------------------------

// hashJoinOp joins a probe stream (left) against a hash table built from
// the right child. Both sides are consumed a chunk at a time through a
// chunkFeed, so the operator is engine-agnostic: the sequential engine
// feeds it row-operator chunks, the parallel engine its columnar batches
// with no row round trip. With kernels on and every equi-key a bare
// column, hashing reads the key columns directly (bit-identical to
// hashKey), build rows link into per-hash chains alongside typed key
// copies, and hash-collision rechecks compare typed lanes; any chunk
// that does not vectorize falls back to the row path with identical
// results and error timing.
type hashJoinOp struct {
	node         *plan.Node
	probe, build chunkFeed
	leftKeys     []expr.Expr // bound against left schema
	rightKeys    []expr.Expr // bound against right schema
	residual     expr.Expr   // bound against concatenated schema

	vec            bool  // kernels on and all equi-keys are bare columns
	lCols, rCols   []int // key column indexes per side
	lTypes, rTypes []expr.Type
	eqMode         []keyEqMode
	typedEq        bool // every key pair rechecks through typed lanes

	// Build side, vectorized mode: rows in arrival order, with per-hash
	// chains. table maps a key hash to its chain's first and last row;
	// next links rows within one, so chain iteration order matches the
	// row path's per-hash append order.
	buildRows   []expr.Row
	table       chainTable
	next        []int32
	keyArrs     []joinKeyArr // typed build keys, valid while buildKeysOK
	buildKeysOK bool
	// Build side, row mode: the reference hash table, one row slice per
	// key hash in arrival order. Kept deliberately simple — it is the
	// baseline the vectorized mode is measured and checked against.
	rowBuckets map[uint64][]expr.Row

	// Probe state: the first probe chunk is peeked at Open (to skip the
	// hash-table build when the probe side is provably empty) and
	// replayed on the first Next.
	pending *Batch
	peeked  bool
	out     []expr.Row
	pos     int
	done    bool
	// pendErr is an error found mid-chunk: matches emitted before the
	// failing row drain first, exactly like the row-at-a-time path.
	pendErr error

	keyVecs []*expr.Vec // scratch: key vectors of the current chunk
	pairs   [][2]int32  // scratch: (probe row, build row) matches
}

// keyEqMode is the typed recheck strategy for one equi-key pair, fixed
// from the static lane types of both sides. Any eqSlow key makes the
// whole recheck go through the row path's Value.Compare, preserving its
// error and coercion behavior for lane combinations it would reject.
type keyEqMode uint8

const (
	eqInt   keyEqMode = iota // both integer-class: int64 equality
	eqFloat                  // numeric with a float side: Compare's <//> over Float()
	eqStr                    // both strings
	eqSlow                   // anything else: row-path Compare
)

func keyMode(lt, rt expr.Type) keyEqMode {
	intClass := func(t expr.Type) bool { return t == expr.TInt || t == expr.TDate }
	numeric := func(t expr.Type) bool { return intClass(t) || t == expr.TFloat }
	switch {
	case intClass(lt) && intClass(rt):
		return eqInt
	case (lt == expr.TFloat || rt == expr.TFloat) && numeric(lt) && numeric(rt):
		return eqFloat
	case lt == expr.TString && rt == expr.TString:
		return eqStr
	}
	return eqSlow
}

// joinKeyArr stores one build-side key column as a typed array parallel
// to buildRows — the target of the typed collision recheck.
type joinKeyArr struct {
	t expr.Type
	i []int64
	f []float64
	s []string
}

func (a *joinKeyArr) reset() { a.i, a.f, a.s = a.i[:0], a.f[:0], a.s[:0] }

func (a *joinKeyArr) appendFrom(v *expr.Vec, i int) {
	switch a.t {
	case expr.TInt, expr.TDate:
		a.i = append(a.i, v.I[i])
	case expr.TFloat:
		a.f = append(a.f, v.F[i])
	case expr.TString:
		a.s = append(a.s, v.S[i])
	case expr.TBool:
		var x int64
		if v.B.Get(i) {
			x = 1
		}
		a.i = append(a.i, x)
	}
}

func (a *joinKeyArr) float(i int32) float64 {
	if a.t == expr.TFloat {
		return a.f[i]
	}
	return float64(a.i[i])
}

// chainTable is the vectorized join's hash index: an open-addressed
// (linear probing) table from a 64-bit key hash to that hash's chain of
// build rows. The chain's first and last row indexes live in the slot
// itself, so a probe hit resolves in one 16-byte slot read — no chain-id
// indirection through side arrays.
type chainSlot struct {
	hash       uint64
	head, tail int32 // head -1: empty slot
}

type chainTable struct {
	slots []chainSlot
	mask  uint64
	used  int
	limit int // grow past this occupancy (¾ load)
}

// reset empties the table, sized for about `hint` distinct keys.
func (t *chainTable) reset(hint int) {
	need := 1024
	for need < hint*2 {
		need <<= 1
	}
	if cap(t.slots) >= need {
		t.slots = t.slots[:need]
	} else {
		t.slots = make([]chainSlot, need)
	}
	for i := range t.slots {
		t.slots[i] = chainSlot{head: -1}
	}
	t.mask = uint64(need - 1)
	t.used = 0
	t.limit = need * 3 / 4
}

// lookup returns the first build row chained under h, or -1.
func (t *chainTable) lookup(h uint64) int32 {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.head < 0 || s.hash == h {
			return s.head
		}
		i = (i + 1) & t.mask
	}
}

// slot returns the position holding h, claiming an empty slot (head
// still -1) if the hash is new. The caller fills head/tail.
func (t *chainTable) slot(h uint64) uint64 {
	if t.used >= t.limit {
		t.grow()
	}
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.head < 0 || s.hash == h {
			return i
		}
		i = (i + 1) & t.mask
	}
}

// grow rehashes into a table 8× larger: the hint is often missing, so
// steep growth keeps the total reinsertion work a small fraction of
// the build.
func (t *chainTable) grow() {
	old := t.slots
	need := 8 * len(old)
	t.slots = make([]chainSlot, need)
	for i := range t.slots {
		t.slots[i].head = -1
	}
	t.mask = uint64(need - 1)
	t.limit = need * 3 / 4
	for _, s := range old {
		if s.head < 0 {
			continue
		}
		j := s.hash & t.mask
		for t.slots[j].head >= 0 {
			j = (j + 1) & t.mask
		}
		t.slots[j] = s
	}
}

func newHashJoin(n *plan.Node, left, right Operator, vec bool) (Operator, error) {
	return makeHashJoin(n, &opFeed{op: left}, &opFeed{op: right}, vec)
}

// newHashJoinBatch is newHashJoin consuming the parallel engine's
// columnar batches directly — no row adapter on the inputs.
func newHashJoinBatch(n *plan.Node, left, right BatchOperator, vec bool) (Operator, error) {
	return makeHashJoin(n, &batchFeed{src: left}, &batchFeed{src: right}, vec)
}

func makeHashJoin(n *plan.Node, probe, build chunkFeed, vec bool) (Operator, error) {
	lres := resolver(n.Children[0])
	rres := resolver(n.Children[1])
	var lk, rk []expr.Expr
	var residual []expr.Expr
	for _, c := range expr.Conjuncts(n.Pred) {
		cmp, ok := c.(*expr.Cmp)
		if ok && cmp.Op == expr.EQ {
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok {
				if bl, err := expr.Bind(lc, lres); err == nil {
					if br, err := expr.Bind(rc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
				// Reversed sides.
				if bl, err := expr.Bind(rc, lres); err == nil {
					if br, err := expr.Bind(lc, rres); err == nil {
						lk = append(lk, bl)
						rk = append(rk, br)
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	if len(lk) == 0 {
		return nil, fmt.Errorf("executor: hash join without equi-key: %v", n.Pred)
	}
	var res expr.Expr
	if len(residual) > 0 {
		bound, err := expr.Bind(expr.AndAll(residual...), resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: join residual bind: %w", err)
		}
		res = bound
	}
	j := &hashJoinOp{
		node: n, probe: probe, build: build,
		leftKeys: lk, rightKeys: rk, residual: res,
		lTypes: colTypes(n.Children[0]), rTypes: colTypes(n.Children[1]),
	}
	if vec {
		j.vec = true
		j.lCols = make([]int, len(lk))
		j.rCols = make([]int, len(lk))
		for i := range lk {
			lc, lok := lk[i].(*expr.Col)
			rc, rok := rk[i].(*expr.Col)
			if !lok || !rok {
				j.vec = false
				break
			}
			j.lCols[i], j.rCols[i] = lc.Index, rc.Index
		}
	}
	if j.vec {
		j.keyVecs = make([]*expr.Vec, len(lk))
		j.keyArrs = make([]joinKeyArr, len(lk))
		j.eqMode = make([]keyEqMode, len(lk))
		j.typedEq = true
		for i := range lk {
			j.keyArrs[i].t = j.rTypes[j.rCols[i]]
			j.eqMode[i] = keyMode(j.lTypes[j.lCols[i]], j.rTypes[j.rCols[i]])
			if j.eqMode[i] == eqSlow {
				j.typedEq = false
			}
		}
	}
	return j, nil
}

func hashKey(keys []expr.Expr, row expr.Row) (uint64, bool, error) {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, false, nil // NULL keys never match
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true, nil
}

func (j *hashJoinOp) Open() error {
	j.out, j.pos, j.done, j.pendErr = j.out[:0], 0, false, nil
	// Peek the first probe chunk before building: when the probe side is
	// provably empty, the join produces nothing and the hash-table build
	// is wasted work. The build side is still opened and closed (Ship
	// inputs materialize at Open, so transfer accounting is unchanged);
	// only the hashing and insertion are skipped.
	if err := j.probe.open(); err != nil {
		return err
	}
	first, err := j.probe.nextChunk()
	if err != nil {
		return err
	}
	j.pending, j.peeked = first, first != nil
	if err := j.build.open(); err != nil {
		return err
	}
	if j.vec {
		j.buildRows = j.buildRows[:0]
		j.table.reset(j.buildSizeHint())
		j.next = j.next[:0]
		j.buildKeysOK = true
		for i := range j.keyArrs {
			j.keyArrs[i].reset()
		}
	} else {
		j.rowBuckets = make(map[uint64][]expr.Row, j.buildSizeHint())
	}
	if j.peeked {
		if err := j.buildTable(); err != nil {
			return err
		}
	}
	return j.build.close()
}

// buildTable drains the build feed into the chained hash table.
func (j *hashJoinOp) buildTable() error {
	for {
		chunk, err := j.build.nextChunk()
		if err != nil {
			return err
		}
		if chunk == nil {
			return nil
		}
		if chunk.Len() == 0 {
			continue
		}
		if err := j.insertChunk(chunk); err != nil {
			return err
		}
	}
}

// insertChunk hashes one build chunk. In row mode the rows append into
// the reference bucket map. In vectorized mode valid rows link into the
// chains, reading the key columns directly when the chunk vectorizes
// and row by row otherwise; one impure chunk disables the typed recheck
// for the whole build (the key arrays stop tracking buildRows).
func (j *hashJoinOp) insertChunk(chunk *Batch) error {
	rows := chunk.Rows()
	if !j.vec {
		for _, row := range rows {
			h, valid, err := hashKey(j.rightKeys, row)
			if err != nil {
				return err
			}
			if !valid {
				continue
			}
			j.rowBuckets[h] = append(j.rowBuckets[h], row)
		}
		return nil
	}
	if j.chunkKeyVecs(chunk, j.rCols, j.rTypes) {
		sel := chunk.Sel()
		for r := range rows {
			si := r
			if sel != nil {
				si = int(sel[r])
			}
			h, valid := j.hashVecKeys(si)
			if !valid {
				continue // NULL keys never match
			}
			idx := int32(len(j.buildRows))
			j.buildRows = append(j.buildRows, rows[r])
			j.next = append(j.next, -1)
			if j.buildKeysOK {
				for k := range j.keyArrs {
					j.keyArrs[k].appendFrom(j.keyVecs[k], si)
				}
			}
			j.link(h, idx)
		}
		return nil
	}
	j.buildKeysOK = false
	for _, row := range rows {
		h, valid, err := hashKey(j.rightKeys, row)
		if err != nil {
			return err
		}
		if !valid {
			continue
		}
		idx := int32(len(j.buildRows))
		j.buildRows = append(j.buildRows, row)
		j.next = append(j.next, -1)
		j.link(h, idx)
	}
	return nil
}

// chunkKeyVecs resolves one side's key columns over a chunk into
// keyVecs. Every vector must be exact: an inexact vector canonicalizes
// payloads the row path hashes and compares verbatim, so such chunks
// take the row path instead.
func (j *hashJoinOp) chunkKeyVecs(chunk *Batch, cols []int, types []expr.Type) bool {
	d := chunk.Data()
	d.Bind(types)
	for k, c := range cols {
		v, ok := d.ColVec(c)
		if !ok || !v.Exact {
			return false
		}
		j.keyVecs[k] = v
	}
	return true
}

// hashVecKeys combines the key hashes of (pre-selection) row si,
// bit-identical to hashKey over the row.
func (j *hashJoinOp) hashVecKeys(si int) (uint64, bool) {
	var h uint64 = 1469598103934665603
	for _, v := range j.keyVecs {
		if v.IsNullAt(si) {
			return 0, false
		}
		h = h*1099511628211 ^ v.HashAt(si)
	}
	return h, true
}

// link appends build row idx to hash h's chain.
func (j *hashJoinOp) link(h uint64, idx int32) {
	si := j.table.slot(h)
	s := &j.table.slots[si]
	if s.head >= 0 {
		j.next[s.tail] = idx
		s.tail = idx
		return
	}
	s.hash, s.head, s.tail = h, idx, idx
	j.table.used++
}

// buildSizeHint pre-sizes the hash table from the build child's
// cardinality estimate, capped to keep a wild estimate from allocating
// an outsized table up front.
func (j *hashJoinOp) buildSizeHint() int {
	const maxHint = 1 << 20
	card := j.node.Children[1].Card
	switch {
	case card <= 0:
		return 0
	case card >= maxHint:
		return maxHint
	}
	return int(card)
}

func (j *hashJoinOp) Next() (expr.Row, bool, error) {
	for {
		if j.pos < len(j.out) {
			row := j.out[j.pos]
			j.pos++
			return row, true, nil
		}
		if j.pendErr != nil {
			return nil, false, j.pendErr
		}
		if j.done {
			return nil, false, nil
		}
		chunk, err := j.nextProbeChunk()
		if err != nil {
			return nil, false, err
		}
		if chunk == nil {
			j.done = true
			continue
		}
		j.out, j.pos = j.out[:0], 0
		if chunk.Len() == 0 {
			continue
		}
		j.probeChunk(chunk)
	}
}

// nextProbeChunk honors the chunk peeked at Open.
func (j *hashJoinOp) nextProbeChunk() (*Batch, error) {
	if j.peeked {
		j.peeked = false
		return j.pending, nil
	}
	return j.probe.nextChunk()
}

// probeChunk matches one probe chunk against the table into j.out.
// Errors land in pendErr so matches emitted before the failing row
// drain first, like the row-at-a-time path.
func (j *hashJoinOp) probeChunk(chunk *Batch) {
	rows := chunk.Rows()
	if !j.vec {
		j.probeChunkMap(rows)
		return
	}
	if j.chunkKeyVecs(chunk, j.lCols, j.lTypes) {
		j.probeChunkVec(chunk, rows)
		return
	}
	j.probeChunkRows(rows)
}

func (j *hashJoinOp) probeChunkVec(chunk *Batch, rows []expr.Row) {
	typed := j.typedEq && j.buildKeysOK
	sel := chunk.Sel()
	j.pairs = j.pairs[:0]
probeLoop:
	for r := range rows {
		si := r
		if sel != nil {
			si = int(sel[r])
		}
		h, valid := j.hashVecKeys(si)
		if !valid {
			continue
		}
		for bi := j.table.lookup(h); bi >= 0; bi = j.next[bi] {
			if j.residual != nil {
				out := concatRow(rows[r], j.buildRows[bi])
				keep, err := expr.EvalBool(j.residual, out)
				if err != nil {
					j.pendErr = err
					break probeLoop
				}
				if !keep {
					continue
				}
				eq, err := j.recheck(typed, si, bi, rows[r])
				if err != nil {
					j.pendErr = err
					break probeLoop
				}
				if eq {
					j.out = append(j.out, out)
				}
				continue
			}
			eq, err := j.recheck(typed, si, bi, rows[r])
			if err != nil {
				j.pendErr = err
				break probeLoop
			}
			if eq {
				j.pairs = append(j.pairs, [2]int32{int32(r), bi})
			}
		}
	}
	j.emitPairs(rows)
}

// probeChunkMap is the row-mode reference probe: per-row hashing
// through the interpreter, bucket-map candidates, and one materialized
// row per match. The vectorized mode must be value- and order-identical
// to this path.
func (j *hashJoinOp) probeChunkMap(rows []expr.Row) {
probeLoop:
	for _, row := range rows {
		h, valid, err := hashKey(j.leftKeys, row)
		if err != nil {
			j.pendErr = err
			break probeLoop
		}
		if !valid {
			continue
		}
		for _, bRow := range j.rowBuckets[h] {
			keep, out, err := j.matchRow(row, bRow)
			if err != nil {
				j.pendErr = err
				break probeLoop
			}
			if keep {
				j.out = append(j.out, out)
			}
		}
	}
}

// probeChunkRows handles a probe chunk that did not vectorize while the
// operator is in vectorized mode: per-row hashing, but candidates come
// from the same chains the columnar probe walks.
func (j *hashJoinOp) probeChunkRows(rows []expr.Row) {
probeLoop:
	for _, row := range rows {
		h, valid, err := hashKey(j.leftKeys, row)
		if err != nil {
			j.pendErr = err
			break probeLoop
		}
		if !valid {
			continue
		}
		for bi := j.table.lookup(h); bi >= 0; bi = j.next[bi] {
			keep, out, err := j.matchRow(row, j.buildRows[bi])
			if err != nil {
				j.pendErr = err
				break probeLoop
			}
			if keep {
				j.out = append(j.out, out)
			}
		}
	}
}

// matchRow applies the residual and the key recheck to one candidate
// pair, returning the joined row on a match. The residual runs before
// the key recheck (its errors surface first), matching the original
// row-at-a-time order of evaluation.
func (j *hashJoinOp) matchRow(probeRow, buildRow expr.Row) (bool, expr.Row, error) {
	if j.residual != nil {
		out := concatRow(probeRow, buildRow)
		keep, err := expr.EvalBool(j.residual, out)
		if err != nil || !keep {
			return false, nil, err
		}
		eq, err := j.keysEqual(probeRow, buildRow)
		if err != nil || !eq {
			return false, nil, err
		}
		return true, out, nil
	}
	eq, err := j.keysEqual(probeRow, buildRow)
	if err != nil || !eq {
		return false, nil, err
	}
	return true, concatRow(probeRow, buildRow), nil
}

// recheck verifies key equality behind a hash hit (collisions). typed
// compares lanes directly; otherwise the row path's Compare runs, with
// its exact error behavior.
func (j *hashJoinOp) recheck(typed bool, si int, bi int32, probeRow expr.Row) (bool, error) {
	if !typed {
		return j.keysEqual(probeRow, j.buildRows[bi])
	}
	for k := range j.eqMode {
		pv := j.keyVecs[k]
		arr := &j.keyArrs[k]
		switch j.eqMode[k] {
		case eqInt:
			if pv.I[si] != arr.i[bi] {
				return false, nil
			}
		case eqFloat:
			var a float64
			if pv.T == expr.TFloat {
				a = pv.F[si]
			} else {
				a = float64(pv.I[si])
			}
			b := arr.float(bi)
			// Compare's float equality is !(a < b) && !(a > b), which is
			// not the same as == when NaN is involved.
			if a < b || a > b {
				return false, nil
			}
		case eqStr:
			if pv.S[si] != arr.s[bi] {
				return false, nil
			}
		}
	}
	return true, nil
}

// emitPairs materializes the chunk's matches into one output slab: each
// joined row is a sub-slice, so the headers in j.out stay valid without
// a per-row allocation.
func (j *hashJoinOp) emitPairs(rows []expr.Row) {
	if len(j.pairs) == 0 {
		return
	}
	need := 0
	for _, pr := range j.pairs {
		need += len(rows[pr[0]]) + len(j.buildRows[pr[1]])
	}
	slab := make([]expr.Value, 0, need)
	for _, pr := range j.pairs {
		start := len(slab)
		slab = append(slab, rows[pr[0]]...)
		slab = append(slab, j.buildRows[pr[1]]...)
		j.out = append(j.out, expr.Row(slab[start:len(slab):len(slab)]))
	}
}

func concatRow(l, r expr.Row) expr.Row {
	out := make(expr.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (j *hashJoinOp) keysEqual(l, r expr.Row) (bool, error) {
	for i := range j.leftKeys {
		lv, err := expr.Eval(j.leftKeys[i], l)
		if err != nil {
			return false, err
		}
		rv, err := expr.Eval(j.rightKeys[i], r)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() {
			return false, nil
		}
		c, err := lv.Compare(rv)
		if err != nil || c != 0 {
			return false, err
		}
	}
	return true, nil
}

func (j *hashJoinOp) Close() error {
	j.buildRows = nil
	j.table = chainTable{}
	j.next = nil
	j.rowBuckets = nil
	j.out = nil
	j.pending = nil
	return j.probe.close()
}

// --- nested-loop join ---------------------------------------------------

type nlJoinOp struct {
	node        *plan.Node
	left, right Operator
	cond        expr.Expr
	rightRows   []expr.Row
	current     expr.Row
	ri          int
	done        bool
}

func newNLJoin(n *plan.Node, left, right Operator) (Operator, error) {
	var cond expr.Expr
	if n.Pred != nil {
		bound, err := expr.Bind(n.Pred, resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: nl join bind: %w", err)
		}
		cond = bound
	}
	return &nlJoinOp{node: n, left: left, right: right, cond: cond}, nil
}

func (j *nlJoinOp) Open() error {
	rows, err := Collect(j.right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.ri = 0
	j.current = nil
	return j.left.Open()
}

func (j *nlJoinOp) Next() (expr.Row, bool, error) {
	for {
		if j.current == nil {
			row, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.current = row
			j.ri = 0
		}
		for j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			out := make(expr.Row, 0, len(j.current)+len(r))
			out = append(out, j.current...)
			out = append(out, r...)
			keep, err := expr.EvalBool(j.cond, out)
			if err != nil {
				return nil, false, err
			}
			if keep {
				return out, true, nil
			}
		}
		j.current = nil
	}
}

func (j *nlJoinOp) Close() error {
	j.rightRows = nil
	return j.left.Close()
}

// --- hash aggregate -----------------------------------------------------

// hashAggOp groups its input and folds each row into per-group
// accumulator lanes. The input is consumed a chunk at a time through a
// chunkFeed (row-operator chunks in the sequential engine, native
// columnar batches in the parallel one). Group identity is the binary
// expr.AppendKey encoding and groups are numbered densely in
// first-appearance order, so the output rows (and their order) are
// independent of the evaluation path.
type hashAggOp struct {
	node    *plan.Node
	feed    chunkFeed
	keys    []expr.Expr // bound group-by columns
	args    []expr.Expr // bound aggregate arguments (nil for COUNT(*))
	fns     []expr.AggFn
	inTypes []expr.Type

	lookup    map[string]int32 // AppendKey encoding -> dense group id
	groupVals []expr.Row       // per group id, in first-appearance order
	accs      []*accCol        // per aggregate: typed group-slot lanes
	pos       int

	// Vectorized absorption (vec true): group keys and aggregate
	// arguments are evaluated column-at-a-time per input chunk, each a
	// bare column or a compiled kernel; the accumulators then update
	// their group lanes straight from the vectors. Any chunk that does
	// not vectorize exactly is re-run through the row path with
	// identical results.
	vec      bool
	keyCols  []int
	keyKerns []*expr.Kernel
	argCols  []int
	argKerns []*expr.Kernel

	// Per-chunk scratch, operator-owned so steady-state absorption does
	// not allocate.
	keyVecs, argVecs   []*expr.Vec
	keyDense, argDense []bool // kernel outputs are dense over the selection
	gids               []int32
	keyBuf             []byte
}

func newHashAgg(n *plan.Node, child Operator, vec bool) (Operator, error) {
	return makeHashAgg(n, &opFeed{op: child}, vec)
}

// newHashAggBatch is newHashAgg consuming the parallel engine's
// columnar batches directly — no row adapter on the input.
func newHashAggBatch(n *plan.Node, src BatchOperator, vec bool) (Operator, error) {
	return makeHashAgg(n, &batchFeed{src: src}, vec)
}

func makeHashAgg(n *plan.Node, feed chunkFeed, vec bool) (Operator, error) {
	res := resolver(n.Children[0])
	keys := make([]expr.Expr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		bound, err := expr.Bind(g, res)
		if err != nil {
			return nil, fmt.Errorf("executor: group-by bind %s: %w", g, err)
		}
		keys[i] = bound
	}
	args := make([]expr.Expr, len(n.Aggs))
	fns := make([]expr.AggFn, len(n.Aggs))
	for i, a := range n.Aggs {
		fns[i] = a.Fn
		if a.Arg != nil {
			bound, err := expr.Bind(a.Arg, res)
			if err != nil {
				return nil, fmt.Errorf("executor: aggregate bind %s: %w", a.Arg, err)
			}
			args[i] = bound
		}
	}
	op := &hashAggOp{
		node: n, feed: feed, keys: keys, args: args, fns: fns,
		inTypes: colTypes(n.Children[0]),
	}
	op.accs = make([]*accCol, len(fns))
	for i, fn := range fns {
		op.accs[i] = &accCol{fn: fn}
	}
	if vec {
		op.vec = true
		op.keyCols, op.keyKerns = classifyExprs(keys, op.inTypes, &op.vec)
		op.argCols, op.argKerns = classifyExprs(args, op.inTypes, &op.vec)
		if op.vec {
			op.keyVecs = make([]*expr.Vec, len(keys))
			op.keyDense = make([]bool, len(keys))
			op.argVecs = make([]*expr.Vec, len(args))
			op.argDense = make([]bool, len(args))
		}
	}
	return op, nil
}

// classifyExprs sorts each expression into bare-column or compiled-
// kernel evaluation; anything else clears vec (nil entries — COUNT(*)
// arguments — are fine and stay nil on both sides).
func classifyExprs(exprs []expr.Expr, types []expr.Type, vec *bool) ([]int, []*expr.Kernel) {
	cols := make([]int, len(exprs))
	kerns := make([]*expr.Kernel, len(exprs))
	for i, e := range exprs {
		cols[i] = -1
		if e == nil {
			continue
		}
		if c, ok := e.(*expr.Col); ok {
			cols[i] = c.Index
			continue
		}
		if k, ok := expr.Compile(e, types); ok {
			kerns[i] = k
			continue
		}
		*vec = false
	}
	return cols, kerns
}

func (a *hashAggOp) Open() error {
	if err := a.feed.open(); err != nil {
		return err
	}
	a.lookup = make(map[string]int32)
	a.groupVals = a.groupVals[:0]
	for _, acc := range a.accs {
		acc.reset()
	}
	a.pos = 0
	for {
		chunk, err := a.feed.nextChunk()
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		if chunk.Len() == 0 {
			continue
		}
		if err := a.absorbChunk(chunk); err != nil {
			return err
		}
	}
	if err := a.feed.close(); err != nil {
		return err
	}
	// A global aggregation over zero rows still yields one row.
	if len(a.keys) == 0 && len(a.groupVals) == 0 {
		a.newGroup("", nil)
	}
	return nil
}

// newGroup registers a group and grows every accumulator's lanes by one
// slot; the new dense group id is returned.
func (a *hashAggOp) newGroup(key string, vals expr.Row) int32 {
	gid := int32(len(a.groupVals))
	a.groupVals = append(a.groupVals, vals)
	a.lookup[key] = gid
	for _, acc := range a.accs {
		acc.grow()
	}
	return gid
}

// absorbChunk folds one input chunk into the groups, vectorized when
// possible and row by row otherwise.
func (a *hashAggOp) absorbChunk(chunk *Batch) error {
	if a.vec && a.absorbVecChunk(chunk) {
		return nil
	}
	for _, row := range chunk.Rows() {
		if err := a.absorbRow(row); err != nil {
			return err
		}
	}
	return nil
}

// absorbVecChunk evaluates all key/argument columns of the chunk at
// once, assigns every row its dense group id, and lets each accumulator
// update its typed group lanes straight from the argument vector — no
// per-row Value boxing. It reports false when a vector could not be
// resolved (a lane-impure or inexact column, a kernel error): the
// caller re-runs the chunk row by row, reproducing interpreter behavior
// exactly.
func (a *hashAggOp) absorbVecChunk(chunk *Batch) bool {
	d := chunk.Data()
	d.Bind(a.inTypes)
	sel := chunk.Sel()
	n := chunk.Len()
	for i := range a.keys {
		v, dense, ok := a.evalVec(d, sel, a.keyCols[i], a.keyKerns[i])
		if !ok {
			return false
		}
		a.keyVecs[i], a.keyDense[i] = v, dense
	}
	for i := range a.args {
		if a.args[i] == nil {
			continue
		}
		v, dense, ok := a.evalVec(d, sel, a.argCols[i], a.argKerns[i])
		if !ok {
			return false
		}
		a.argVecs[i], a.argDense[i] = v, dense
	}
	if cap(a.gids) < n {
		a.gids = make([]int32, n)
	}
	a.gids = a.gids[:n]
	for r := 0; r < n; r++ {
		a.keyBuf = a.keyBuf[:0]
		for i, v := range a.keyVecs {
			vi := r
			if !a.keyDense[i] && sel != nil {
				vi = int(sel[r])
			}
			a.keyBuf = v.AppendKeyAt(a.keyBuf, vi)
		}
		gid, ok := a.lookup[string(a.keyBuf)]
		if !ok {
			vals := make(expr.Row, len(a.keys))
			for i, v := range a.keyVecs {
				// Bare columns take the row's value as-is (exact NULL
				// type preservation); kernel NULLs materialize with the
				// operator's NullT, matching the interpreter.
				if a.keyCols[i] >= 0 {
					vals[i] = chunk.RowValue(r, a.keyCols[i])
				} else {
					vals[i] = v.Value(r)
				}
			}
			gid = a.newGroup(string(a.keyBuf), vals)
		}
		a.gids[r] = gid
	}
	for i, acc := range a.accs {
		if a.args[i] == nil {
			if len(acc.count) > 0 {
				for _, g := range a.gids {
					acc.count[g]++
				}
			}
			continue
		}
		acc.addVec(a.gids, a.argVecs[i], sel, a.argDense[i], n)
	}
	return true
}

// evalVec resolves one classified expression over the chunk. dense
// reports kernel outputs, which are indexed by selection position;
// column vectors are indexed by pre-selection row. Bare columns must be
// exact: an inexact vector canonicalizes payloads the row path feeds to
// the accumulators and key encoder verbatim.
func (a *hashAggOp) evalVec(d *expr.Batch, sel []int32, col int, kern *expr.Kernel) (*expr.Vec, bool, bool) {
	if col >= 0 {
		v, ok := d.ColVec(col)
		if !ok || !v.Exact {
			return nil, false, false
		}
		return v, false, true
	}
	v, err := kern.EvalVec(d, sel)
	if err != nil {
		return nil, false, false
	}
	return v, true, true
}

func (a *hashAggOp) absorbRow(row expr.Row) error {
	a.keyBuf = a.keyBuf[:0]
	vals := make(expr.Row, len(a.keys))
	for i, k := range a.keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return err
		}
		vals[i] = v
		a.keyBuf = expr.AppendKey(a.keyBuf, v)
	}
	gid, ok := a.lookup[string(a.keyBuf)]
	if !ok {
		gid = a.newGroup(string(a.keyBuf), vals)
	}
	for i, acc := range a.accs {
		if a.args[i] == nil {
			acc.addCountStar(gid)
			continue
		}
		v, err := expr.Eval(a.args[i], row)
		if err != nil {
			return err
		}
		acc.addVal(gid, v)
	}
	return nil
}

func (a *hashAggOp) Next() (expr.Row, bool, error) {
	if a.pos >= len(a.groupVals) {
		return nil, false, nil
	}
	gid := int32(a.pos)
	vals := a.groupVals[a.pos]
	a.pos++
	out := make(expr.Row, 0, len(vals)+len(a.accs))
	out = append(out, vals...)
	for _, acc := range a.accs {
		out = append(out, acc.result(gid))
	}
	return out, true, nil
}

func (a *hashAggOp) Close() error {
	a.lookup = nil
	a.groupVals = nil
	return nil
}

// accCol computes one aggregate across all groups: a struct-of-arrays
// accumulator whose lanes are indexed by dense group id, so vectorized
// absorption updates int64/float64 slots directly. Only the lanes the
// function needs are grown.
type accCol struct {
	fn     expr.AggFn
	count  []int64
	sumI   []int64
	sumF   []float64
	floaty []bool // SUM left int-only accumulation (result is a float)
	seen   []bool
	best   []expr.Value // MIN or MAX candidate per group
}

func (a *accCol) reset() {
	a.count = a.count[:0]
	a.sumI = a.sumI[:0]
	a.sumF = a.sumF[:0]
	a.floaty = a.floaty[:0]
	a.seen = a.seen[:0]
	a.best = a.best[:0]
}

func (a *accCol) grow() {
	switch a.fn {
	case expr.AggCount:
		a.count = append(a.count, 0)
	case expr.AggSum:
		a.count = append(a.count, 0)
		a.sumI = append(a.sumI, 0)
		a.sumF = append(a.sumF, 0)
		a.floaty = append(a.floaty, false)
	case expr.AggAvg:
		a.count = append(a.count, 0)
		a.sumF = append(a.sumF, 0)
	case expr.AggMin, expr.AggMax:
		a.seen = append(a.seen, false)
		a.best = append(a.best, expr.Value{})
	}
}

func (a *accCol) addCountStar(g int32) {
	if len(a.count) > 0 {
		a.count[g]++
	}
}

// addVal folds one value into group g, the row-path twin of addVec.
func (a *accCol) addVal(g int32, v expr.Value) {
	if v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	switch a.fn {
	case expr.AggCount:
		a.count[g]++
	case expr.AggSum:
		a.count[g]++
		switch v.T {
		case expr.TInt, expr.TBool, expr.TDate:
			a.sumI[g] += v.Int()
			a.sumF[g] += float64(v.Int())
		default:
			a.floaty[g] = true
			a.sumF[g] += v.Float()
		}
	case expr.AggAvg:
		a.count[g]++
		switch v.T {
		case expr.TInt, expr.TBool, expr.TDate:
			a.sumF[g] += float64(v.Int())
		default:
			a.sumF[g] += v.Float()
		}
	case expr.AggMin:
		if !a.seen[g] {
			a.seen[g], a.best[g] = true, v
			return
		}
		if c, err := v.Compare(a.best[g]); err == nil && c < 0 {
			a.best[g] = v
		}
	case expr.AggMax:
		if !a.seen[g] {
			a.seen[g], a.best[g] = true, v
			return
		}
		if c, err := v.Compare(a.best[g]); err == nil && c > 0 {
			a.best[g] = v
		}
	}
}

// addVec folds one argument vector into the group lanes: gids[r] is the
// group of logical row r; column vectors are indexed through sel while
// dense kernel outputs are indexed by r directly.
func (a *accCol) addVec(gids []int32, v *expr.Vec, sel []int32, dense bool, n int) {
	mapped := !dense && sel != nil
	switch a.fn {
	case expr.AggCount:
		for r := 0; r < n; r++ {
			i := r
			if mapped {
				i = int(sel[r])
			}
			if v.IsNullAt(i) {
				continue
			}
			a.count[gids[r]]++
		}
	case expr.AggSum:
		switch v.T {
		case expr.TInt, expr.TDate:
			for r := 0; r < n; r++ {
				i := r
				if mapped {
					i = int(sel[r])
				}
				if v.IsNullAt(i) {
					continue
				}
				g := gids[r]
				a.count[g]++
				a.sumI[g] += v.I[i]
				a.sumF[g] += float64(v.I[i])
			}
		case expr.TBool:
			for r := 0; r < n; r++ {
				i := r
				if mapped {
					i = int(sel[r])
				}
				if v.IsNullAt(i) {
					continue
				}
				g := gids[r]
				var x int64
				if v.B.Get(i) {
					x = 1
				}
				a.count[g]++
				a.sumI[g] += x
				a.sumF[g] += float64(x)
			}
		case expr.TFloat:
			for r := 0; r < n; r++ {
				i := r
				if mapped {
					i = int(sel[r])
				}
				if v.IsNullAt(i) {
					continue
				}
				g := gids[r]
				a.count[g]++
				a.floaty[g] = true
				a.sumF[g] += v.F[i]
			}
		default: // strings: Float() is 0, the sum still goes float
			for r := 0; r < n; r++ {
				i := r
				if mapped {
					i = int(sel[r])
				}
				if v.IsNullAt(i) {
					continue
				}
				g := gids[r]
				a.count[g]++
				a.floaty[g] = true
			}
		}
	case expr.AggAvg:
		for r := 0; r < n; r++ {
			i := r
			if mapped {
				i = int(sel[r])
			}
			if v.IsNullAt(i) {
				continue
			}
			g := gids[r]
			a.count[g]++
			switch v.T {
			case expr.TInt, expr.TDate:
				a.sumF[g] += float64(v.I[i])
			case expr.TBool:
				if v.B.Get(i) {
					a.sumF[g]++
				}
			case expr.TFloat:
				a.sumF[g] += v.F[i]
			}
		}
	case expr.AggMin:
		a.mergeMinMax(gids, v, sel, dense, n, true)
	case expr.AggMax:
		a.mergeMinMax(gids, v, sel, dense, n, false)
	}
}

// mergeMinMax updates the per-group best value row by row. The typed
// fast paths mirror Value.Compare exactly — in particular the float
// comparison is strict < / >, so a NaN candidate never replaces the
// best and a NaN best is never replaced, matching the row path's
// per-row Compare behavior (a chunk-local reduce-then-merge would not).
func (a *accCol) mergeMinMax(gids []int32, v *expr.Vec, sel []int32, dense bool, n int, min bool) {
	mapped := !dense && sel != nil
	for r := 0; r < n; r++ {
		i := r
		if mapped {
			i = int(sel[r])
		}
		if v.IsNullAt(i) {
			continue
		}
		g := gids[r]
		if !a.seen[g] {
			a.seen[g], a.best[g] = true, v.Value(i)
			continue
		}
		b := &a.best[g]
		if b.T == v.T && !b.Null {
			switch v.T {
			case expr.TInt, expr.TDate:
				if x := v.I[i]; min && x < b.I || !min && x > b.I {
					*b = v.Value(i)
				}
				continue
			case expr.TFloat:
				if x := v.F[i]; min && x < b.F || !min && x > b.F {
					*b = v.Value(i)
				}
				continue
			case expr.TString:
				if x := v.S[i]; min && x < b.S || !min && x > b.S {
					*b = v.Value(i)
				}
				continue
			}
		}
		val := v.Value(i)
		if c, err := val.Compare(*b); err == nil && (min && c < 0 || !min && c > 0) {
			a.best[g] = val
		}
	}
}

func (a *accCol) result(g int32) expr.Value {
	switch a.fn {
	case expr.AggCount:
		return expr.NewInt(a.count[g])
	case expr.AggSum:
		if a.count[g] == 0 {
			return expr.TypedNull(expr.TFloat)
		}
		if !a.floaty[g] {
			return expr.NewInt(a.sumI[g])
		}
		return expr.NewFloat(a.sumF[g])
	case expr.AggAvg:
		if a.count[g] == 0 {
			return expr.TypedNull(expr.TFloat)
		}
		return expr.NewFloat(a.sumF[g] / float64(a.count[g]))
	case expr.AggMin, expr.AggMax:
		if !a.seen[g] {
			return expr.NullValue()
		}
		return a.best[g]
	}
	return expr.NullValue()
}

// --- sort / limit / union ----------------------------------------------

type sortOp struct {
	child Operator
	keys  []expr.Expr
	descs []bool
	rows  []expr.Row
	pos   int
}

func newSort(n *plan.Node, child Operator) (Operator, error) {
	res := resolver(n.Children[0])
	keys := make([]expr.Expr, len(n.SortKeys))
	descs := make([]bool, len(n.SortKeys))
	for i, k := range n.SortKeys {
		bound, err := expr.Bind(k.E, res)
		if err != nil {
			return nil, fmt.Errorf("executor: sort bind %s: %w", k.E, err)
		}
		keys[i] = bound
		descs[i] = k.Desc
	}
	return &sortOp{child: child, keys: keys, descs: descs}, nil
}

func (s *sortOp) Open() error {
	rows, err := Collect(s.child)
	if err != nil {
		return err
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.keys {
			vi, err1 := expr.Eval(key, rows[i])
			vj, err2 := expr.Eval(key, rows[j])
			if err1 != nil || err2 != nil {
				if sortErr == nil {
					sortErr = fmt.Errorf("executor: sort eval: %v %v", err1, err2)
				}
				return false
			}
			// NULLs sort first ascending, last descending.
			switch {
			case vi.IsNull() && vj.IsNull():
				continue
			case vi.IsNull():
				return !s.descs[k]
			case vj.IsNull():
				return s.descs[k]
			}
			c, err := vi.Compare(vj)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if s.descs[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *sortOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) Close() error {
	s.rows = nil
	return nil
}

type limitOp struct {
	child Operator
	n     int64
	seen  int64
}

func newLimit(n *plan.Node, child Operator) Operator {
	return &limitOp{child: child, n: n.LimitN}
}

func (l *limitOp) Open() error {
	l.seen = 0
	return l.child.Open()
}

func (l *limitOp) Next() (expr.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

func (l *limitOp) Close() error { return l.child.Close() }

type unionOp struct {
	children []Operator
	idx      int
}

func newUnion(children []Operator) Operator { return &unionOp{children: children} }

func (u *unionOp) Open() error {
	u.idx = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *unionOp) Next() (expr.Row, bool, error) {
	for u.idx < len(u.children) {
		row, ok, err := u.children[u.idx].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.idx++
	}
	return nil, false, nil
}

func (u *unionOp) Close() error {
	for _, c := range u.children {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// --- ship ---------------------------------------------------------------

// shipOp simulates moving the child's entire output between sites: it
// materializes the stream, serializes it into BatchSize-row wire frames
// (see internal/network's wire format), accounts rows and the encoded
// frame bytes in the cluster ledger (priced with the message cost
// model), and replays the decoded rows at the destination. The parallel
// engine frames the same stream identically, so both engines charge the
// ledger the same encoded bytes.
type shipOp struct {
	node  *plan.Node
	child Operator
	env   buildEnv
	rows  []expr.Row
	pos   int
}

func newShip(n *plan.Node, child Operator, env buildEnv) Operator {
	return &shipOp{node: n, child: child, env: env}
}

// widthSum is the schema-estimate size of a row slice — the quantity the
// pre-wire accounting used to bill, now only fed to the calibrator as
// the estimated side of the encoding ratio.
func widthSum(rows []expr.Row) int64 {
	var n int64
	for _, r := range rows {
		n += int64(r.Width())
	}
	return n
}

func (s *shipOp) Open() error {
	if err := s.env.ctx.Err(); err != nil {
		// Cancelled before this boundary: don't start materializing.
		return err
	}
	rows, err := Collect(s.child)
	if err != nil {
		return err
	}
	// Serialize the stream into wire frames; what the ledger bills is
	// the encoded size, and what the destination replays is the decoded
	// rows — an actual round trip through the wire format.
	enc := network.WireEncoder{Opt: s.env.opt.Wire}
	cal := s.env.c.Calibrator()
	var bytes, frames int64
	replay := make([]expr.Row, 0, len(rows))
	for start := 0; start < len(rows); start += BatchSize {
		end := start + BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		frame := enc.Encode(rows[start:end])
		bytes += int64(len(frame))
		frames++
		if cal != nil {
			cal.ObserveEncoding(widthSum(rows[start:end]), int64(len(frame)))
		}
		dec, err := network.DecodeBatch(frame)
		if err != nil {
			return fmt.Errorf("executor: ship frame decode: %w", err)
		}
		replay = append(replay, dec...)
	}
	// The resilient shipping path records the transfer and sleeps the
	// wire time on success; under an installed fault plan it may retry
	// with backoff or fail with a typed *network.ShipError. The run
	// scope (when present) additionally charges the per-run ledger the
	// engine reads its RunStats from.
	if s.env.scope != nil {
		err = s.env.scope.ShipWhole(s.env.ctx, s.node.FromLoc, s.node.ToLoc, int64(len(rows)), bytes)
	} else {
		err = s.env.c.ShipWhole(s.env.ctx, s.node.FromLoc, s.node.ToLoc, int64(len(rows)), bytes)
	}
	if err != nil {
		return err
	}
	if a := s.env.obsv.AuditSink(); a != nil {
		rec := auditRecFor(s.node)
		rec.Rows, rec.Bytes, rec.Batches = int64(len(rows)), bytes, frames
		a.Record(rec)
	}
	if prof := s.env.obsv.Prof(); prof != nil {
		// One profiled batch per wire frame, matching the parallel engine.
		prof.Stats(s.node).Batches.Add(frames)
	}
	s.rows = replay
	s.pos = 0
	return nil
}

func (s *shipOp) Next() (expr.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *shipOp) Close() error {
	s.rows = nil
	return nil
}
