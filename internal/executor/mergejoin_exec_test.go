package executor

import (
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
	"cgdqp/internal/schema"
)

// In-package merge-join coverage: construction, NULL-key skipping,
// duplicate blocks, and the no-equi-key error.
func TestMergeJoinOperator(t *testing.T) {
	cat := schema.NewCatalog()
	l := schema.NewTable("l", "d1", "L1", 5, schema.Column{Name: "k", Type: expr.TInt}, schema.Column{Name: "v", Type: expr.TInt})
	r := schema.NewTable("r", "d2", "L2", 5, schema.Column{Name: "k", Type: expr.TInt})
	cat.MustAddTable(l)
	cat.MustAddTable(r)
	cl := cluster.New(cat, network.UniformWAN(1, 1e-6))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cl.LoadFragment(l, 0, []expr.Row{
		{expr.NewInt(3), expr.NewInt(30)},
		{expr.NewInt(1), expr.NewInt(10)},
		{expr.TypedNull(expr.TInt), expr.NewInt(99)},
		{expr.NewInt(1), expr.NewInt(11)},
	}))
	must(cl.LoadFragment(r, 0, []expr.Row{
		{expr.NewInt(1)}, {expr.NewInt(1)}, {expr.NewInt(2)}, {expr.TypedNull(expr.TInt)},
	}))
	cond := expr.NewCmp(expr.EQ, expr.NewCol("a", "k"), expr.NewCol("b", "k"))
	j := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1), cond)
	j.Kind = plan.MergeJoin
	rows, _, err := Run(j, cl)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 appears twice on each side → 4 rows; NULLs never join; k=3/2
	// have no partner.
	if len(rows) != 4 {
		t.Fatalf("rows: %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row[0].Int() != 1 || row[2].Int() != 1 {
			t.Errorf("unexpected row: %v", row)
		}
	}
	// Reversed-side condition binds too.
	rev := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1),
		expr.NewCmp(expr.EQ, expr.NewCol("b", "k"), expr.NewCol("a", "k")))
	rev.Kind = plan.MergeJoin
	if rows, _, err := Run(rev, cl); err != nil || len(rows) != 4 {
		t.Errorf("reversed cond: %d rows, %v", len(rows), err)
	}
	// Without an equi key, construction fails.
	bad := plan.NewJoin(plan.NewScan(l, "a", -1), plan.NewScan(r, "b", -1),
		expr.NewCmp(expr.LT, expr.NewCol("a", "k"), expr.NewCol("b", "k")))
	bad.Kind = plan.MergeJoin
	if _, err := Build(bad, cl); err == nil {
		t.Error("merge join without equi key must fail to build")
	}
}
