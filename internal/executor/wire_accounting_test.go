package executor

import (
	"context"
	"errors"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// encodedStreamBytes recomputes, independently of the executors, the
// wire bytes of shipping rows: the stream framed into BatchSize-row
// batches, each serialized with the wire encoder.
func encodedStreamBytes(rows []expr.Row, opt network.WireOptions) int64 {
	var total int64
	for start := 0; start < len(rows); start += BatchSize {
		end := start + BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		total += int64(len(network.EncodeBatch(rows[start:end], opt)))
	}
	return total
}

// TestShipAccountsEncodedBytes is the Width()-drift regression test:
// the ledger must charge exactly the serialized frame bytes of the
// shipped stream — recomputed here from the result rows — and that
// figure must NOT be the old Σ-Width() estimate, or the wire format
// has silently regressed to per-row width accounting.
func TestShipAccountsEncodedBytes(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	root := plan.NewShip(c, "N", "E")

	cl.Ledger.Reset()
	rows, stats, err := Run(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("rows: got %d, want 50", len(rows))
	}
	// The root SHIP moves exactly the result stream, so the expected
	// wire bytes are recomputable from the rows alone.
	want := encodedStreamBytes(rows, network.WireOptions{})
	if stats.ShippedBytes != want {
		t.Errorf("ShippedBytes = %d, want %d (encoded frame bytes)", stats.ShippedBytes, want)
	}
	if old := widthSum(rows); stats.ShippedBytes == old {
		t.Errorf("ShippedBytes = %d equals the old Σ-Width() accounting; wire encoding is not being priced", old)
	}
	snap := cl.Ledger.Snapshot()
	if snap.Bytes != stats.ShippedBytes {
		t.Errorf("cumulative ledger bytes %d != run stats bytes %d", snap.Bytes, stats.ShippedBytes)
	}

	// The parallel engine must account the identical figure (identical
	// framing is what keeps seq/par stats parity with a real encoder).
	cl.Ledger.Reset()
	prows, pstats, err := RunParallel(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != len(rows) {
		t.Fatalf("parallel rows: got %d, want %d", len(prows), len(rows))
	}
	if pstats.ShippedBytes != want {
		t.Errorf("parallel ShippedBytes = %d, want %d", pstats.ShippedBytes, want)
	}
}

// TestShipAccountsEncodedBytesMultiFrame covers the >BatchSize path:
// a shipped stream longer than one batch is framed into multiple
// serialized batches, and both engines charge the same total.
func TestShipAccountsEncodedBytesMultiFrame(t *testing.T) {
	cat, cl := carco(t)
	o := scanNode(t, cat, "Orders", "O")
	s := scanNode(t, cat, "Supply", "S")
	join := plan.NewJoin(o, s, expr.NewCmp(expr.EQ, expr.NewCol("O", "ordkey"), expr.NewCol("S", "ordkey")))
	join.Kind = plan.HashJoin
	root := plan.NewShip(plan.NewUnion(join, join), "E", "N")

	cl.Ledger.Reset()
	rows, stats, err := Run(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) <= BatchSize {
		t.Fatalf("fixture too small: %d rows, need > %d for multi-frame", len(rows), BatchSize)
	}
	want := encodedStreamBytes(rows, network.WireOptions{})
	if stats.ShippedBytes != want {
		t.Errorf("ShippedBytes = %d, want %d over %d rows", stats.ShippedBytes, want, len(rows))
	}

	cl.Ledger.Reset()
	_, pstats, err := RunParallel(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	if pstats.ShippedBytes != want {
		t.Errorf("parallel ShippedBytes = %d, want %d", pstats.ShippedBytes, want)
	}
}

// TestWireCompressionReducesBytes: with compression on, the ledger
// prices the compressed frames, results are unchanged, and both
// engines agree.
func TestWireCompressionReducesBytes(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	root := plan.NewShip(c, "N", "E")

	cl.Ledger.Reset()
	plainRows, plain, err := Run(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	comp := ExecOptions{Wire: network.WireOptions{Compress: true}}
	cl.Ledger.Reset()
	compRows, compStats, err := RunObservedOpts(context.Background(), root, cl, nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	if cc, pc := canon(compRows), canon(plainRows); len(cc) != len(pc) {
		t.Fatalf("compressed run changed row count: %d vs %d", len(cc), len(pc))
	} else {
		for i := range pc {
			if cc[i] != pc[i] {
				t.Fatalf("compressed run changed row %d: %s vs %s", i, cc[i], pc[i])
			}
		}
	}
	// The customer rows carry repetitive strings; compression must win.
	if compStats.ShippedBytes >= plain.ShippedBytes {
		t.Errorf("compressed bytes %d >= plain bytes %d", compStats.ShippedBytes, plain.ShippedBytes)
	}
	if want := encodedStreamBytes(plainRows, network.WireOptions{Compress: true}); compStats.ShippedBytes != want {
		t.Errorf("compressed ShippedBytes = %d, want %d", compStats.ShippedBytes, want)
	}
	cl.Ledger.Reset()
	_, ppar, err := RunParallelOpts(context.Background(), root, cl, nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	if ppar.ShippedBytes != compStats.ShippedBytes {
		t.Errorf("parallel compressed bytes %d != sequential %d", ppar.ShippedBytes, compStats.ShippedBytes)
	}
}

// runFourWays executes the plan under every engine × kernel-gate
// combination and requires byte-identical rows, stats, and audit text.
func runFourWays(t *testing.T, root *plan.Node, cl *cluster.Cluster, label string) {
	t.Helper()
	type mode struct {
		name     string
		parallel bool
		opt      ExecOptions
	}
	modes := []mode{
		{"seq/kernels", false, ExecOptions{}},
		{"seq/interp", false, ExecOptions{NoKernels: true}},
		{"par/kernels", true, ExecOptions{}},
		{"par/interp", true, ExecOptions{NoKernels: true}},
	}
	var wantRows []string
	var wantStats RunStats
	var wantAudit string
	for i, m := range modes {
		audit := obs.NewAuditLog()
		o := &obs.Observer{Audit: audit}
		cl.Ledger.Reset()
		var rows []expr.Row
		var stats *RunStats
		var err error
		if m.parallel {
			rows, stats, err = RunParallelOpts(context.Background(), root, cl, o, m.opt)
		} else {
			rows, stats, err = RunObservedOpts(context.Background(), root, cl, o, m.opt)
		}
		if err != nil {
			t.Fatalf("%s %s: %v", label, m.name, err)
		}
		got := canon(rows)
		if i == 0 {
			wantRows, wantStats, wantAudit = got, *stats, audit.String()
			if wantAudit == "" {
				t.Fatalf("%s: no audit records from a shipping plan", label)
			}
			continue
		}
		if len(got) != len(wantRows) {
			t.Fatalf("%s %s: %d rows, want %d", label, m.name, len(got), len(wantRows))
		}
		for j := range wantRows {
			if got[j] != wantRows[j] {
				t.Fatalf("%s %s: row %d differs:\ngot  %s\nwant %s", label, m.name, j, got[j], wantRows[j])
			}
		}
		if *stats != wantStats {
			t.Fatalf("%s %s: stats differ:\ngot  %+v\nwant %+v", label, m.name, *stats, wantStats)
		}
		if a := audit.String(); a != wantAudit {
			t.Fatalf("%s %s: audit log differs:\ngot:\n%s\nwant:\n%s", label, m.name, a, wantAudit)
		}
	}
}

// TestKernelInterpreterEngineParity: the golden cross-check of the
// vectorized path — every engine × kernel-gate combination produces
// byte-identical rows, shipping statistics, and audit logs.
func TestKernelInterpreterEngineParity(t *testing.T) {
	root, cl := chaosPlan(t)
	runFourWays(t, root, cl, "multi-ship join")

	cat, cl2 := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	filter := plan.NewFilter(c, expr.NewCmp(expr.GE, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(200))))
	project := plan.NewProject(filter, []plan.NamedExpr{
		{E: expr.NewCol("C", "name")},
		{E: expr.NewArith(expr.Mul, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewInt(3))), Name: "tri"},
	})
	runFourWays(t, plan.NewShip(project, "N", "E"), cl2, "filter+project")
}

// TestKernelInterpreterChaosParity: under injected faults the kernel
// and interpreter paths must still agree run for run — same seed, same
// rows, same ledger, same audit text (or the same typed failure).
func TestKernelInterpreterChaosParity(t *testing.T) {
	root, cl := chaosPlan(t)
	cl.SetRetry(chaosRetry())
	for seed := int64(1); seed <= 8; seed++ {
		cl.SetFaults(network.NewFaultPlan(seed).SetDefault(network.EdgeFaults{
			DropProb: 0.15, TransientProb: 0.1, DelayProb: 0.2, DelayMS: 10,
		}))
		type outcome struct {
			rows   []string
			stats  RunStats
			audit  string
			failed bool
		}
		run := func(opt ExecOptions) outcome {
			audit := obs.NewAuditLog()
			cl.Ledger.Reset()
			rows, stats, err := RunParallelOpts(context.Background(), root, cl, &obs.Observer{Audit: audit}, opt)
			if err != nil {
				var se *network.ShipError
				if !errors.As(err, &se) {
					t.Fatalf("seed %d: untyped chaos error: %v", seed, err)
				}
				return outcome{failed: true}
			}
			return outcome{rows: canon(rows), stats: *stats, audit: audit.String()}
		}
		kern := run(ExecOptions{})
		interp := run(ExecOptions{NoKernels: true})
		if kern.failed != interp.failed {
			t.Fatalf("seed %d: kernel failed=%v but interpreter failed=%v", seed, kern.failed, interp.failed)
		}
		if kern.failed {
			continue
		}
		if len(kern.rows) != len(interp.rows) {
			t.Fatalf("seed %d: %d kernel rows vs %d interpreter rows", seed, len(kern.rows), len(interp.rows))
		}
		for i := range kern.rows {
			if kern.rows[i] != interp.rows[i] {
				t.Fatalf("seed %d: row %d differs:\nkernel      %s\ninterpreter %s", seed, i, kern.rows[i], interp.rows[i])
			}
		}
		if kern.stats.ShippedBytes != interp.stats.ShippedBytes || kern.stats.ShippedRows != interp.stats.ShippedRows || kern.stats.ShipCost != interp.stats.ShipCost {
			t.Fatalf("seed %d: shipping stats differ:\nkernel      %+v\ninterpreter %+v", seed, kern.stats, interp.stats)
		}
		if kern.audit != interp.audit {
			t.Fatalf("seed %d: audit logs differ:\nkernel:\n%s\ninterpreter:\n%s", seed, kern.audit, interp.audit)
		}
	}
	cl.SetFaults(nil)
}

// TestFusedFilterRejectsAllRows: a kernel filter that keeps zero rows
// must yield an empty result. Regression for the nil-vs-empty selection
// contract — an empty selection vector must not alias to the nil "all
// rows" form inside Select or on its way into the fused projection.
func TestFusedFilterRejectsAllRows(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	// First conjunct rejects every row; the second must not re-expand
	// the empty selection back to the full batch.
	pred := expr.NewAnd(
		expr.NewCmp(expr.LT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(-1))),
		expr.NewCmp(expr.GE, expr.NewCol("C", "custkey"), expr.NewConst(expr.NewInt(0))),
	)
	project := plan.NewProject(plan.NewFilter(c, pred), []plan.NamedExpr{
		{E: expr.NewArith(expr.Mul, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewInt(2))), Name: "x"},
	})
	rows, _, err := Run(project, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("sequential: %d rows from an all-rejecting filter, want 0", len(rows))
	}
	prows, _, err := RunParallel(project, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 0 {
		t.Errorf("parallel: %d rows from an all-rejecting filter, want 0", len(prows))
	}
}

// TestCalibratorObservesRealBytes: the calibration hook sees the actual
// encoded frames and per-shipment costs, and its encoding ratio maps
// width estimates to wire bytes.
func TestCalibratorObservesRealBytes(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	root := plan.NewShip(c, "N", "E")

	cal := network.NewCalibrator()
	cl.SetCalibrator(cal)
	defer cl.SetCalibrator(nil)

	cl.Ledger.Reset()
	rows, stats, err := Run(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	ratio := cal.EncodingRatio()
	if ratio == 1 {
		t.Fatal("calibrator saw no encoding samples")
	}
	if got, want := int64(float64(widthSum(rows))*ratio+0.5), stats.ShippedBytes; got != want {
		t.Errorf("ratio %.4f maps width %d to %d wire bytes, ledger says %d", ratio, widthSum(rows), got, want)
	}
	if edges := cal.Edges(); len(edges) != 1 {
		t.Fatalf("ship edges observed: %v, want exactly N->E", edges)
	}

	// The parallel engine feeds the same hook.
	cal2 := network.NewCalibrator()
	cl.SetCalibrator(cal2)
	cl.Ledger.Reset()
	if _, _, err := RunParallel(root, cl); err != nil {
		t.Fatal(err)
	}
	if r2 := cal2.EncodingRatio(); r2 != ratio {
		t.Errorf("parallel encoding ratio %.6f != sequential %.6f", r2, ratio)
	}
}
