//go:build !cgdqp_interp

package executor

// kernelsDefault reports whether compiled columnar expression kernels
// are enabled by default. Build with -tags cgdqp_interp to flip the
// default to the row interpreter everywhere (results are identical;
// the tag exists so CI can run the whole suite down the fallback path).
const kernelsDefault = true
