package executor

import (
	"sync"

	"cgdqp/internal/expr"
)

// BatchSize is the number of rows a batch carries: large enough to
// amortize per-call overhead (channel sends, virtual dispatch) across
// ~1k rows, small enough to stay cache- and memory-friendly.
const BatchSize = 1024

// Batch is the unit of data flow in the parallel engine: an expr.Batch
// (column vectors with a lazily materialized row view) plus an optional
// selection vector. Filters narrow a batch by writing its selection —
// no rows move — and downstream kernels evaluate only the selected
// rows; the row view a consumer asks for applies the selection.
//
// Lifetime: pooled containers hold only row HEADERS and column
// storage. The Value arrays headers point into are owned by stable
// producers (table fragments, projection arenas, join slabs) and are
// never pooled, so rows extracted from a batch stay valid after the
// container is released.
type Batch struct {
	data expr.Batch
	// sel is the surviving row indexes into data; nil selects all rows.
	// It always aliases selBuf (batch-owned storage), never an
	// operator's scratch, so holding a batch across the producer's next
	// iteration is safe.
	sel    []int32
	selBuf []int32
	// rowBuf is batch-owned row-header storage for operators that
	// assemble a row-backed batch (interpreter fallbacks, row adapters).
	rowBuf []expr.Row
	// gathered caches the selection-applied row view.
	gathered []expr.Row
	rowsOK   bool
}

// batchPool recycles batch containers across operators and executions so
// the hot path allocates vectors and buffers only on first use.
var batchPool = sync.Pool{
	New: func() any { return &Batch{} },
}

// NewBatch takes an empty batch from the pool.
func NewBatch() *Batch { return batchPool.Get().(*Batch) }

// Release resets the batch and returns it to the pool. The caller must
// not touch the batch afterwards; rows extracted from it stay valid.
func (b *Batch) Release() {
	if b == nil {
		return
	}
	b.data.Reset()
	b.sel = nil
	b.rowBuf = clearRows(b.rowBuf)
	b.gathered = clearRows(b.gathered)
	b.rowsOK = false
	batchPool.Put(b)
}

// clearRows drops every header the buffer holds (including stale ones
// beyond its length) and returns it empty with capacity retained.
func clearRows(buf []expr.Row) []expr.Row {
	buf = buf[:cap(buf)]
	clear(buf)
	return buf[:0]
}

// Len returns the number of (selected) rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.data.Len()
}

// Data exposes the underlying columnar batch. Its indexes are
// pre-selection: combine with Sel when evaluating kernels.
func (b *Batch) Data() *expr.Batch { return &b.data }

// Sel returns the selection vector (nil: all rows).
func (b *Batch) Sel() []int32 { return b.sel }

// SetRows makes the batch row-backed over rows, aliasing the slice, and
// clears any selection. The rows must stay valid and immutable for the
// batch's lifetime.
func (b *Batch) SetRows(rows []expr.Row) {
	b.data.SetRows(rows)
	b.sel = nil
	b.rowsOK = false
}

// setSel installs a fresh dense-origin selection. The slice is adopted
// as the batch's selection storage when it has capacity (producers pass
// SelBuf-backed slices, so this is alias-safe), and the row cache is
// invalidated.
func (b *Batch) setSel(sel []int32) {
	if cap(sel) > 0 {
		b.selBuf = sel[:0]
	}
	b.sel = sel
	b.rowsOK = false
}

// SelBuf returns the batch-owned selection storage (empty, capacity
// retained) for a producer to build a new selection in.
func (b *Batch) SelBuf() []int32 { return b.selBuf[:0] }

// compactSel replaces the selection after an in-place compaction of
// Sel's backing (kernel Select with a non-nil selection).
func (b *Batch) compactSel(sel []int32) {
	b.sel = sel
	b.rowsOK = false
}

// Rows returns the selection-applied row view. Dense batches hand out
// the underlying rows directly (aliased for row-backed batches, a
// stable arena for column-backed ones); a selected view is gathered
// into batch-owned header storage and cached.
func (b *Batch) Rows() []expr.Row {
	if b.sel == nil {
		return b.data.Rows()
	}
	if !b.rowsOK {
		src := b.data.Rows()
		b.gathered = b.gathered[:0]
		for _, si := range b.sel {
			b.gathered = append(b.gathered, src[si])
		}
		b.rowsOK = true
	}
	return b.gathered
}

// RowValue returns the value at (selected row r, column col) without
// forcing row materialization on column-backed batches.
func (b *Batch) RowValue(r, col int) expr.Value {
	if b.sel != nil {
		r = int(b.sel[r])
	}
	return b.data.RowValue(r, col)
}

// Truncate shortens the batch to its first k selected rows.
func (b *Batch) Truncate(k int) {
	if k >= b.Len() {
		return
	}
	if b.sel != nil {
		b.sel = b.sel[:k]
	} else {
		b.data.Truncate(k)
	}
	if b.rowsOK {
		b.gathered = b.gathered[:k]
	}
}

// Bytes returns the summed encoded width of the batch's rows — what a
// shipment of this batch is billed for.
func (b *Batch) Bytes() int64 {
	var n int64
	for _, r := range b.Rows() {
		n += int64(r.Width())
	}
	return n
}

// BatchOperator is the batch-at-a-time iterator contract of the parallel
// engine: Open prepares the operator, NextBatch returns the next row
// vector (nil at end of stream), Close releases resources. Ownership of
// a returned batch transfers to the caller, which must Release it (or
// hand it on) exactly once.
type BatchOperator interface {
	Open() error
	NextBatch() (*Batch, error)
	Close() error
}
