package executor

import (
	"sync"

	"cgdqp/internal/expr"
)

// BatchSize is the number of rows a batch carries: large enough to
// amortize per-call overhead (channel sends, virtual dispatch) across
// ~1k rows, small enough to stay cache- and memory-friendly.
const BatchSize = 1024

// Batch is a row vector: the unit of data flow in the parallel engine.
// Operators pass whole batches instead of single rows, and exchange
// operators ship one batch per channel send. The contained rows are
// shared, immutable tuples; only the container is recycled.
type Batch struct {
	Rows []expr.Row
}

// batchPool recycles batch containers across operators and executions so
// the hot path allocates row vectors only on first use.
var batchPool = sync.Pool{
	New: func() any { return &Batch{Rows: make([]expr.Row, 0, BatchSize)} },
}

// NewBatch takes an empty batch with BatchSize capacity from the pool.
func NewBatch() *Batch { return batchPool.Get().(*Batch) }

// Release resets the batch and returns it to the pool. The caller must
// not touch the batch afterwards; rows extracted from it stay valid.
func (b *Batch) Release() {
	if b == nil {
		return
	}
	clear(b.Rows)
	b.Rows = b.Rows[:0]
	batchPool.Put(b)
}

// Bytes returns the summed encoded width of the batch's rows — what a
// shipment of this batch is billed for.
func (b *Batch) Bytes() int64 {
	var n int64
	for _, r := range b.Rows {
		n += int64(r.Width())
	}
	return n
}

// BatchOperator is the batch-at-a-time iterator contract of the parallel
// engine: Open prepares the operator, NextBatch returns the next row
// vector (nil at end of stream), Close releases resources. Ownership of
// a returned batch transfers to the caller, which must Release it (or
// hand it on) exactly once.
type BatchOperator interface {
	Open() error
	NextBatch() (*Batch, error)
	Close() error
}
