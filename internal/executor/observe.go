package executor

import (
	"context"
	"sort"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/obs"
	"cgdqp/internal/plan"
)

// This file is the executor's observability layer: Run/RunParallel
// variants that report into an obs.Observer (execution spans, latency
// histograms, ledger-derived shipping stats from one consistent
// snapshot), per-operator profiling wrappers behind EXPLAIN ANALYZE,
// and the compliance audit record each Ship boundary emits. Every hook
// is nil-guarded so the unobserved paths keep their old cost.

// RunObserved is Run reporting into an observer (nil behaves like Run).
// When the observer carries a PlanProfile, every operator is wrapped to
// collect actual rows/batches/time for EXPLAIN ANALYZE.
func RunObserved(p *plan.Node, c *cluster.Cluster, o *obs.Observer) ([]expr.Row, *RunStats, error) {
	return RunObservedContext(context.Background(), p, c, o)
}

// RunObservedContext is RunObserved under a caller context. The run's
// shipping statistics come from a per-run ledger scope, so concurrent
// executions over one Cluster each report exactly their own transfers.
func RunObservedContext(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer) ([]expr.Row, *RunStats, error) {
	return RunObservedOpts(ctx, p, c, o, defaultExecOptions())
}

// RunObservedOpts is RunObservedContext under explicit execution
// options (kernel gate, wire encoding).
func RunObservedOpts(ctx context.Context, p *plan.Node, c *cluster.Cluster, o *obs.Observer, opt ExecOptions) ([]expr.Row, *RunStats, error) {
	sp := o.StartSpan("execute.sequential")
	m := o.Reg()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	scope := c.NewRun()
	op, err := buildObs(p, buildEnv{c: c, scope: scope, ctx: ctx, obsv: o, opt: opt})
	if err != nil {
		finishExec(sp, m, "seq", t0, 0, err)
		return nil, nil, err
	}
	rows, err := Collect(op)
	if err != nil {
		finishExec(sp, m, "seq", t0, 0, err)
		return nil, nil, err
	}
	stats := scopeStats(scope, int64(len(rows)))
	finishExec(sp, m, "seq", t0, stats.RowsOut, nil)
	return rows, stats, nil
}

// scopeStats derives a run's statistics from its private ledger scope.
func scopeStats(scope *cluster.RunScope, rowsOut int64) *RunStats {
	snap := scope.Ledger().Snapshot()
	return &RunStats{
		RowsOut:      rowsOut,
		ShippedRows:  snap.Rows,
		ShippedBytes: snap.Bytes,
		ShipCost:     snap.Cost,
		Retries:      scope.Retries(),
	}
}

// finishExec closes an execution span and records the per-engine
// execution counter and latency histogram.
func finishExec(sp obs.Span, m *obs.Registry, engine string, t0 time.Time, rowsOut int64, err error) {
	status := "ok"
	if err != nil {
		status = "error"
	}
	if sp.Enabled() {
		sp.TagInt("rows_out", rowsOut).Tag("outcome", status).End()
	}
	if m != nil {
		m.Counter("cgdqp_executions_total", "engine", engine, "status", status).Inc()
		if err == nil {
			m.Histogram("cgdqp_execute_seconds", "engine", engine).Observe(time.Since(t0).Seconds())
		}
	}
}

// auditRecFor builds the audit-record template of one Ship boundary:
// which base relations the shipped stream derives from, which columns
// cross the edge, and the compliance justification — the shipping trait
// the optimizer proved for the stream (every site in ShipT may legally
// receive it, ToLoc included), or "unchecked" when the plan was built
// without compliance annotation.
func auditRecFor(n *plan.Node) obs.AuditRecord {
	src := n
	if len(n.Children) > 0 {
		src = n.Children[0]
	}
	seen := map[string]bool{}
	var rels []string
	for _, s := range src.Tables() {
		if s.Table == nil || seen[s.Table.Name] {
			continue
		}
		seen[s.Table.Name] = true
		rels = append(rels, s.Table.Name)
	}
	sort.Strings(rels)
	cols := make([]string, len(src.Cols))
	for i, c := range src.Cols {
		cols[i] = c.Key()
	}
	sort.Strings(cols)
	just := "unchecked"
	if !n.ShipT.Empty() {
		just = "ship-trait " + n.ShipT.String() + " permits " + n.ToLoc
	}
	return obs.AuditRecord{
		From: n.FromLoc, To: n.ToLoc,
		Relations: rels, Columns: cols,
		Justification: just,
	}
}

// --- profiling wrappers --------------------------------------------------

// profOp wraps a row operator with actual-stats collection. Time is
// inclusive of children (like EXPLAIN ANALYZE's actual time): the
// wrapper measures the full Open/Next call, and nested operators are
// wrapped too.
type profOp struct {
	op    Operator
	stats *obs.OpStats
}

func (p *profOp) Open() error {
	t0 := time.Now()
	err := p.op.Open()
	p.stats.AddTime(time.Since(t0))
	p.stats.Opens.Add(1)
	return err
}

func (p *profOp) Next() (expr.Row, bool, error) {
	t0 := time.Now()
	row, ok, err := p.op.Next()
	p.stats.AddTime(time.Since(t0))
	if ok {
		p.stats.Rows.Add(1)
	}
	return row, ok, err
}

func (p *profOp) Close() error { return p.op.Close() }

// batchProfOp is profOp for the batch engine: rows and batches are
// counted per delivered batch.
type batchProfOp struct {
	op    BatchOperator
	stats *obs.OpStats
}

func (p *batchProfOp) Open() error {
	t0 := time.Now()
	err := p.op.Open()
	p.stats.AddTime(time.Since(t0))
	p.stats.Opens.Add(1)
	return err
}

func (p *batchProfOp) NextBatch() (*Batch, error) {
	t0 := time.Now()
	b, err := p.op.NextBatch()
	p.stats.AddTime(time.Since(t0))
	if b != nil {
		p.stats.Rows.Add(int64(b.Len()))
		p.stats.Batches.Add(1)
	}
	return b, err
}

func (p *batchProfOp) Close() error { return p.op.Close() }
