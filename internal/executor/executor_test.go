package executor

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
	"cgdqp/internal/schema"
)

// --- fixtures ------------------------------------------------------------

// carco builds the Section 2 scenario with deterministic data.
func carco(t *testing.T) (*schema.Catalog, *cluster.Cluster) {
	t.Helper()
	cat := schema.NewCatalog()
	cTab := schema.NewTable("Customer", "db-n", "N", 50,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "name", Type: expr.TString},
		schema.Column{Name: "acctbal", Type: expr.TFloat},
	)
	cTab.SetColStats("custkey", schema.ColStats{Distinct: 50})
	oTab := schema.NewTable("Orders", "db-e", "E", 200,
		schema.Column{Name: "custkey", Type: expr.TInt},
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "totprice", Type: expr.TFloat},
	)
	oTab.SetColStats("custkey", schema.ColStats{Distinct: 50})
	oTab.SetColStats("ordkey", schema.ColStats{Distinct: 200})
	sTab := schema.NewTable("Supply", "db-a", "A", 600,
		schema.Column{Name: "ordkey", Type: expr.TInt},
		schema.Column{Name: "quantity", Type: expr.TInt},
	)
	sTab.SetColStats("ordkey", schema.ColStats{Distinct: 200})
	cat.MustAddTable(cTab)
	cat.MustAddTable(oTab)
	cat.MustAddTable(sTab)

	cl := cluster.New(cat, network.FiveRegionWAN(cat.Locations()))
	var cRows, oRows, sRows []expr.Row
	for i := 0; i < 50; i++ {
		cRows = append(cRows, expr.Row{
			expr.NewInt(int64(i)),
			expr.NewString(fmt.Sprintf("cust-%02d", i)),
			expr.NewFloat(float64(i * 10)),
		})
	}
	for i := 0; i < 200; i++ {
		oRows = append(oRows, expr.Row{
			expr.NewInt(int64(i % 50)), // custkey
			expr.NewInt(int64(i)),      // ordkey
			expr.NewFloat(float64(100 + i)),
		})
	}
	for i := 0; i < 600; i++ {
		sRows = append(sRows, expr.Row{
			expr.NewInt(int64(i % 200)), // ordkey
			expr.NewInt(int64(1 + i%7)),
		})
	}
	if err := cl.LoadFragment(cTab, 0, cRows); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(oTab, 0, oRows); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadFragment(sTab, 0, sRows); err != nil {
		t.Fatal(err)
	}
	return cat, cl
}

func carcoPolicyCatalog() *policy.Catalog {
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship custkey, name from Customer to *", "pn", "db-n"),
		policy.MustParse("ship custkey, ordkey from Orders to *", "pe1", "db-e"),
		policy.MustParse("ship totprice as aggregates sum from Orders to A group by custkey, ordkey", "pe2", "db-e"),
		policy.MustParse("ship quantity as aggregates sum from Supply to E group by ordkey", "pa", "db-a"),
	)
	return pc
}

// canon renders rows order-independently for comparison.
func canon(rows []expr.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if !v.IsNull() && (v.T == expr.TFloat || v.T == expr.TInt) {
				parts[j] = fmt.Sprintf("%.4f", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func equalRows(t *testing.T, got, want []expr.Row, label string) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs:\n got %s\nwant %s", label, i, g[i], w[i])
		}
	}
}

// --- operator unit tests -------------------------------------------------

func scanNode(t *testing.T, cat *schema.Catalog, table, alias string) *plan.Node {
	t.Helper()
	tab, ok := cat.Table(table)
	if !ok {
		t.Fatalf("missing table %s", table)
	}
	return plan.NewScan(tab, alias, -1)
}

func TestScanAndFilter(t *testing.T) {
	cat, cl := carco(t)
	scan := scanNode(t, cat, "Customer", "C")
	rows, stats, err := Run(scan, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 || stats.RowsOut != 50 {
		t.Errorf("scan rows: %d", len(rows))
	}
	f := plan.NewFilter(scan, expr.NewCmp(expr.GE, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(400))))
	rows, _, err = Run(f, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("filter rows: %d, want 10", len(rows))
	}
}

func TestProjectEval(t *testing.T) {
	cat, cl := carco(t)
	scan := scanNode(t, cat, "Customer", "C")
	p := plan.NewProject(scan, []plan.NamedExpr{
		{E: expr.NewCol("C", "name")},
		{E: expr.NewArith(expr.Mul, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewInt(2))), Name: "dbl"},
	})
	rows, _, err := Run(p, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 || len(rows[0]) != 2 {
		t.Fatalf("project shape: %d x %d", len(rows), len(rows[0]))
	}
	if rows[1][1].Float() != 20 {
		t.Errorf("computed column: %v", rows[1][1])
	}
}

func TestHashJoinMatchesNLJoin(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	o := scanNode(t, cat, "Orders", "O")
	cond := expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey"))

	hj := plan.NewJoin(c, o, cond)
	hj.Kind = plan.HashJoin
	hjRows, _, err := Run(hj, cl)
	if err != nil {
		t.Fatal(err)
	}
	nl := plan.NewJoin(c, o, cond)
	nl.Kind = plan.NLJoin
	nlRows, _, err := Run(nl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(hjRows) != 200 {
		t.Errorf("join cardinality: %d, want 200", len(hjRows))
	}
	equalRows(t, hjRows, nlRows, "hash vs nested-loop")
}

func TestHashJoinResidualPredicate(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	o := scanNode(t, cat, "Orders", "O")
	cond := expr.NewAnd(
		expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")),
		expr.NewCmp(expr.GT, expr.NewCol("O", "totprice"), expr.NewConst(expr.NewFloat(250))))
	hj := plan.NewJoin(c, o, cond)
	hj.Kind = plan.HashJoin
	rows, _, err := Run(hj, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 49 { // totprice = 100+i > 250 → i in 151..199
		t.Errorf("residual join rows: %d, want 49", len(rows))
	}
}

func TestHashAggregate(t *testing.T) {
	cat, cl := carco(t)
	o := scanNode(t, cat, "Orders", "O")
	agg := plan.NewAggregate(o,
		[]*expr.Col{expr.NewCol("O", "custkey")},
		[]plan.NamedAgg{
			{Fn: expr.AggSum, Arg: expr.NewCol("O", "totprice"), Name: "total"},
			{Fn: expr.AggCount, Arg: nil, Name: "cnt"},
			{Fn: expr.AggMin, Arg: expr.NewCol("O", "ordkey"), Name: "mn"},
			{Fn: expr.AggMax, Arg: expr.NewCol("O", "ordkey"), Name: "mx"},
			{Fn: expr.AggAvg, Arg: expr.NewCol("O", "totprice"), Name: "av"},
		})
	agg.Kind = plan.HashAgg
	rows, _, err := Run(agg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("groups: %d", len(rows))
	}
	// custkey k owns orders k, k+50, k+100, k+150.
	for _, r := range rows {
		k := r[0].Int()
		wantSum := float64(4*100 + k + (k + 50) + (k + 100) + (k + 150))
		if r[1].Float() != wantSum {
			t.Errorf("sum for %d: %v want %v", k, r[1], wantSum)
		}
		if r[2].Int() != 4 {
			t.Errorf("count for %d: %v", k, r[2])
		}
		if r[3].Int() != k || r[4].Int() != k+150 {
			t.Errorf("min/max for %d: %v %v", k, r[3], r[4])
		}
		if r[5].Float() != wantSum/4 {
			t.Errorf("avg for %d: %v", k, r[5])
		}
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	f := plan.NewFilter(c, expr.NewCmp(expr.LT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(-1))))
	agg := plan.NewAggregate(f, nil, []plan.NamedAgg{
		{Fn: expr.AggCount, Arg: nil, Name: "cnt"},
		{Fn: expr.AggSum, Arg: expr.NewCol("C", "acctbal"), Name: "s"},
	})
	rows, _, err := Run(agg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("global agg over empty input must yield one row, got %d", len(rows))
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("COUNT=0, SUM=NULL expected: %v", rows[0])
	}
}

func TestSortLimitUnion(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	s := plan.NewSort(c, []plan.SortKey{{E: expr.NewCol("C", "acctbal"), Desc: true}})
	l := plan.NewLimit(s, 3)
	rows, _, err := Run(l, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("limit rows: %d", len(rows))
	}
	if rows[0][2].Float() != 490 || rows[1][2].Float() != 480 {
		t.Errorf("descending sort: %v %v", rows[0][2], rows[1][2])
	}
	u := plan.NewUnion(c, c)
	rows, _, err = Run(u, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Errorf("union rows: %d", len(rows))
	}
}

func TestShipAccounting(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	ship := plan.NewShip(c, "N", "E")
	rows, stats, err := Run(ship, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Errorf("shipped rows: %d", len(rows))
	}
	if stats.ShippedRows != 50 || stats.ShippedBytes <= 0 || stats.ShipCost <= 0 {
		t.Errorf("ship accounting: %+v", stats)
	}
	// Intra-site ship is free.
	cl.Ledger.Reset()
	ship2 := plan.NewShip(c, "N", "N")
	_, stats2, err := Run(ship2, cl)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ShipCost != 0 {
		t.Errorf("intra-site ship must be free: %+v", stats2)
	}
}

// --- end-to-end: optimized plans return identical results -----------------

func TestCompliantAndTraditionalPlansAgree(t *testing.T) {
	cat, cl := carco(t)
	net := cl.Net
	query := `
		SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
		FROM Customer C, Orders O, Supply S
		WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
		GROUP BY C.name`

	copt := optimizer.New(cat, carcoPolicyCatalog(), net, optimizer.Options{Compliant: true})
	cres, err := copt.OptimizeSQL(query)
	if err != nil {
		t.Fatalf("compliant optimize: %v", err)
	}
	topt := optimizer.New(cat, carcoPolicyCatalog(), net, optimizer.Options{Compliant: false})
	tres, err := topt.OptimizeSQL(query)
	if err != nil {
		t.Fatalf("traditional optimize: %v", err)
	}

	cRows, cStats, err := Run(cres.Plan, cl)
	if err != nil {
		t.Fatalf("compliant run: %v\n%s", err, cres.Plan.Format(true))
	}
	cl.Ledger.Reset()
	tRows, _, err := Run(tres.Plan, cl)
	if err != nil {
		t.Fatalf("traditional run: %v\n%s", err, tres.Plan.Format(true))
	}
	if len(cRows) != 50 {
		t.Errorf("result rows: %d, want 50", len(cRows))
	}
	equalRows(t, cRows, tRows, "compliant vs traditional results")
	if cStats.ShipCost <= 0 {
		t.Error("compliant plan shipped nothing?")
	}
	// And the compliant plan passes the checker while the traditional
	// plan does not.
	if v := copt.Check(cres.Plan); len(v) != 0 {
		t.Errorf("compliant plan violations: %v", v)
	}
	if v := copt.Check(tres.Plan); len(v) == 0 {
		t.Error("traditional plan should violate policies")
	}
}

// TestAggPushdownSemantics verifies the eager-aggregation rewrite
// preserves exact SQL bag semantics: the pushed-down plan's results must
// match a plan produced without the rule.
func TestAggPushdownSemantics(t *testing.T) {
	cat, cl := carco(t)
	queries := []string{
		`SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
		 FROM Customer C, Orders O, Supply S
		 WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name`,
		`SELECT C.name, COUNT(*) AS cnt
		 FROM Customer C, Orders O WHERE C.custkey = O.custkey GROUP BY C.name`,
		`SELECT C.name, MIN(O.totprice) AS mn, MAX(O.totprice) AS mx
		 FROM Customer C, Orders O WHERE C.custkey = O.custkey GROUP BY C.name`,
		`SELECT SUM(S.quantity) AS q FROM Orders O, Supply S WHERE O.ordkey = S.ordkey`,
	}
	// Permissive policies: everything may ship (so both optimizers find
	// plans freely and only the rewrite differs).
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship * from Customer to *", "p1", "db-n"),
		policy.MustParse("ship * from Orders to *", "p2", "db-e"),
		policy.MustParse("ship * from Supply to *", "p3", "db-a"),
	)
	for i, q := range queries {
		with := optimizer.New(cat, pc, cl.Net, optimizer.Options{Compliant: true})
		without := optimizer.New(cat, pc, cl.Net, optimizer.Options{Compliant: true, DisableAggPushdown: true})
		rw, err := with.OptimizeSQL(q)
		if err != nil {
			t.Fatalf("q%d with pushdown: %v", i, err)
		}
		ro, err := without.OptimizeSQL(q)
		if err != nil {
			t.Fatalf("q%d without pushdown: %v", i, err)
		}
		rowsW, _, err := Run(rw.Plan, cl)
		if err != nil {
			t.Fatalf("q%d run with: %v\n%s", i, err, rw.Plan.Format(true))
		}
		rowsO, _, err := Run(ro.Plan, cl)
		if err != nil {
			t.Fatalf("q%d run without: %v", i, err)
		}
		equalRows(t, rowsW, rowsO, fmt.Sprintf("query %d pushdown semantics", i))
	}
}
