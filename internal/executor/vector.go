package executor

import (
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// This file is the glue between the row-batch engines and the compiled
// columnar kernels of internal/expr: a lazily built, per-batch columnar
// view (batchSource), plus the filter/projection evaluators both engines
// share. Every helper falls back to the row interpreter — per batch —
// whenever a column is not lane-pure or a kernel reports an error, so
// results (and error behavior) match the interpreter exactly.

// vecChunk is the micro-batch size of the sequential engine's
// vectorized operators: large enough to amortize the row-to-column
// conversion, small enough that eager evaluation under a LIMIT stays
// cheap. The parallel engine vectorizes whole BatchSize batches.
const vecChunk = 1024

// colTypes returns the static lane types of a node's output columns,
// indexed the way bound Col.Index values address them.
func colTypes(n *plan.Node) []expr.Type {
	out := make([]expr.Type, len(n.Cols))
	for i, c := range n.Cols {
		out[i] = c.Type
	}
	return out
}

// Lazily built column-vector states of a batchSource.
const (
	vecUnbuilt = iota
	vecOK
	vecBad
)

// batchSource is the expr.VecSource view over one row batch: per-column
// vectors are built on first use and cached for the batch, so a filter
// and the projection above it share one row-to-column conversion.
type batchSource struct {
	rows  []expr.Row
	types []expr.Type
	vecs  []expr.Vec
	state []uint8
}

func newBatchSource(types []expr.Type) *batchSource {
	return &batchSource{
		types: types,
		vecs:  make([]expr.Vec, len(types)),
		state: make([]uint8, len(types)),
	}
}

// Reset points the source at a new batch, invalidating cached vectors
// (their storage is reused by the next build).
func (s *batchSource) Reset(rows []expr.Row) {
	s.rows = rows
	for i := range s.state {
		s.state[i] = vecUnbuilt
	}
}

func (s *batchSource) ColVec(idx int) (*expr.Vec, bool) {
	if idx < 0 || idx >= len(s.vecs) {
		return nil, false
	}
	if s.state[idx] == vecUnbuilt {
		if expr.BuildColVec(s.rows, idx, s.types[idx], &s.vecs[idx]) {
			s.state[idx] = vecOK
		} else {
			s.state[idx] = vecBad
		}
	}
	if s.state[idx] != vecOK {
		return nil, false
	}
	return &s.vecs[idx], true
}

func (s *batchSource) Row(i int) expr.Row { return s.rows[i] }

func (s *batchSource) Len() int { return len(s.rows) }

// --- predicate evaluation -------------------------------------------------

// vecPred wraps a compiled filter predicate with its selection scratch.
type vecPred struct {
	kern *expr.PredKernel
	sel  []int32
}

// compilePred compiles a predicate when kernels are enabled; nil means
// the caller keeps the plain interpreter.
func compilePred(pred expr.Expr, types []expr.Type, vec bool) *vecPred {
	if !vec {
		return nil
	}
	k, ok := expr.CompilePred(pred, types)
	if !ok {
		return nil
	}
	return &vecPred{kern: k}
}

// selectRows runs the predicate over src and returns the surviving row
// indexes (in row order). ok is false when the batch must be re-run
// through the row interpreter — a column failed to vectorize or a
// fallback conjunct errored — so error timing stays the interpreter's.
func (p *vecPred) selectRows(src *batchSource) ([]int32, bool) {
	if cap(p.sel) < src.Len() {
		p.sel = make([]int32, src.Len())
	}
	sel, err := p.kern.Select(src, nil, p.sel[:0])
	if err != nil {
		return nil, false
	}
	return sel, true
}

// --- projection evaluation ------------------------------------------------

// vecProj evaluates one projection list over a columnar batch. Each
// output column is a bare-column passthrough, a constant, a compiled
// kernel, or a per-row interpreted expression; any kernel error demotes
// the whole batch to the interpreter.
type vecProj struct {
	exprs  []expr.Expr    // bound originals, for the interpreter path
	colIdx []int          // >= 0: bare column passthrough
	consts []*expr.Value  // non-nil: constant output
	kerns  []*expr.Kernel // non-nil: compiled kernel
	outs   []*expr.Vec    // kernel results for the current batch
}

// compileProj compiles a projection list. It reports nil when kernels
// are disabled or nothing vectorizes beyond passthroughs (the plain
// row projector is just as fast then and keeps lazy error timing).
func compileProj(exprs []expr.Expr, types []expr.Type, vec bool) *vecProj {
	if !vec {
		return nil
	}
	p := &vecProj{
		exprs:  exprs,
		colIdx: make([]int, len(exprs)),
		consts: make([]*expr.Value, len(exprs)),
		kerns:  make([]*expr.Kernel, len(exprs)),
		outs:   make([]*expr.Vec, len(exprs)),
	}
	compiled := false
	for i, e := range exprs {
		p.colIdx[i] = -1
		switch n := e.(type) {
		case *expr.Col:
			p.colIdx[i] = n.Index
		case *expr.Const:
			v := n.Val
			p.consts[i] = &v
		default:
			if k, ok := expr.Compile(e, types); ok {
				p.kerns[i] = k
				compiled = true
			}
		}
	}
	if !compiled {
		return nil
	}
	return p
}

// hasFallback reports whether some output column still needs the row
// interpreter per value.
func (p *vecProj) hasFallback() bool {
	for i := range p.exprs {
		if p.colIdx[i] < 0 && p.consts[i] == nil && p.kerns[i] == nil {
			return true
		}
	}
	return false
}

// apply projects the selected rows of src (all rows when sel is nil)
// and appends the outputs to out. ok is false when the batch must be
// re-run through the row interpreter; out is untouched then.
func (p *vecProj) apply(src *batchSource, sel []int32, out []expr.Row) ([]expr.Row, bool) {
	for i, k := range p.kerns {
		if k == nil {
			continue
		}
		v, err := k.EvalVec(src, sel)
		if err != nil {
			return out, false
		}
		p.outs[i] = v
	}
	n := src.Len()
	if sel != nil {
		n = len(sel)
	}
	for j := 0; j < n; j++ {
		ri := j
		if sel != nil {
			ri = int(sel[j])
		}
		row := make(expr.Row, len(p.exprs))
		for i := range p.exprs {
			switch {
			case p.colIdx[i] >= 0:
				r := src.Row(ri)
				if p.colIdx[i] >= len(r) {
					return out, false
				}
				row[i] = r[p.colIdx[i]]
			case p.consts[i] != nil:
				row[i] = *p.consts[i]
			case p.kerns[i] != nil:
				row[i] = p.outs[i].Value(j)
			default:
				v, err := expr.Eval(p.exprs[i], src.Row(ri))
				if err != nil {
					return out, false
				}
				row[i] = v
			}
		}
		out = append(out, row)
	}
	return out, true
}

// projectRow is the interpreter path shared by the fallback branches.
func projectRow(exprs []expr.Expr, row expr.Row) (expr.Row, error) {
	out := make(expr.Row, len(exprs))
	for i, e := range exprs {
		v, err := expr.Eval(e, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// --- key hashing ----------------------------------------------------------

// vecHasher computes join-key hashes for whole batches when every key
// is a bare column. The combine (FNV-1a fold of Value.Hash) is
// bit-identical to hashKey, so vectorized and interpreted probes land
// in the same buckets.
type vecHasher struct {
	cols []int
	src  *batchSource
	vecs []*expr.Vec
}

// newVecHasher returns a hasher when vectorization applies: kernels on
// and every key a bare column. nil keeps the row path.
func newVecHasher(keys []expr.Expr, types []expr.Type, vec bool) *vecHasher {
	if !vec {
		return nil
	}
	cols := make([]int, len(keys))
	for i, k := range keys {
		c, ok := k.(*expr.Col)
		if !ok {
			return nil
		}
		cols[i] = c.Index
	}
	return &vecHasher{cols: cols, src: newBatchSource(types), vecs: make([]*expr.Vec, len(cols))}
}

// hashBatch fills hs[i] with the combined key hash of rows[i] and
// valid[i] with whether every key is non-NULL. ok is false when some
// key column failed to vectorize; the caller hashes row by row then.
func (h *vecHasher) hashBatch(rows []expr.Row, hs []uint64, valid []bool) bool {
	h.src.Reset(rows)
	for i, c := range h.cols {
		v, ok := h.src.ColVec(c)
		if !ok {
			return false
		}
		h.vecs[i] = v
	}
	for i := range rows {
		var hv uint64 = 1469598103934665603
		ok := true
		for _, v := range h.vecs {
			if v.IsNullAt(i) {
				ok = false
				break
			}
			hv = hv*1099511628211 ^ v.HashAt(i)
		}
		hs[i] = hv
		valid[i] = ok
	}
	return true
}
