package executor

import (
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// This file is the glue between the batch engines and the compiled
// columnar kernels of internal/expr: the filter/projection evaluators
// both engines share, and the chunk feeds that let blocking operators
// (hash join, hash aggregate) consume either engine's stream a chunk at
// a time. Every helper falls back to the row interpreter — per chunk —
// whenever a column is not lane-pure or a kernel reports an error, so
// results (and error behavior) match the interpreter exactly.

// vecChunk is the micro-batch size of the sequential engine's
// vectorized operators: large enough to amortize the row-to-column
// conversion, small enough that eager evaluation under a LIMIT stays
// cheap. The parallel engine vectorizes whole BatchSize batches.
const vecChunk = 1024

// colTypes returns the static lane types of a node's output columns,
// indexed the way bound Col.Index values address them.
func colTypes(n *plan.Node) []expr.Type {
	out := make([]expr.Type, len(n.Cols))
	for i, c := range n.Cols {
		out[i] = c.Type
	}
	return out
}

// --- chunk feeds -----------------------------------------------------------

// chunkFeed delivers an operator's stream as a sequence of batches to a
// blocking consumer. The returned batch stays valid until the next
// nextChunk or close call; the feed owns its lifecycle, the consumer
// must not release it.
type chunkFeed interface {
	open() error
	nextChunk() (*Batch, error) // nil at end of stream
	close() error
}

// opFeed chunks a row operator's stream into an owned, non-pooled
// batch of up to vecChunk rows.
type opFeed struct {
	op  Operator
	buf []expr.Row
	b   Batch
	eos bool
}

func (f *opFeed) open() error {
	f.eos = false
	return f.op.Open()
}

func (f *opFeed) nextChunk() (*Batch, error) {
	if f.eos {
		return nil, nil
	}
	var err error
	f.buf, f.eos, err = fillChunk(f.op, f.buf)
	if err != nil {
		return nil, err
	}
	if len(f.buf) == 0 {
		return nil, nil
	}
	f.b.SetRows(f.buf)
	return &f.b, nil
}

func (f *opFeed) close() error { return f.op.Close() }

// batchFeed passes a batch operator's stream through natively — the
// parallel engine's joins and aggregates consume columnar batches with
// no row round trip.
type batchFeed struct {
	src BatchOperator
	cur *Batch
}

func (f *batchFeed) open() error { return f.src.Open() }

func (f *batchFeed) nextChunk() (*Batch, error) {
	f.cur.Release()
	f.cur = nil
	b, err := f.src.NextBatch()
	if err != nil {
		return nil, err
	}
	f.cur = b
	return b, nil
}

func (f *batchFeed) close() error {
	f.cur.Release()
	f.cur = nil
	return f.src.Close()
}

// --- predicate evaluation -------------------------------------------------

// vecPred wraps a compiled filter predicate with its selection scratch.
type vecPred struct {
	kern *expr.PredKernel
	sel  []int32
}

// compilePred compiles a predicate when kernels are enabled; nil means
// the caller keeps the plain interpreter.
func compilePred(pred expr.Expr, types []expr.Type, vec bool) *vecPred {
	if !vec {
		return nil
	}
	k, ok := expr.CompilePred(pred, types)
	if !ok {
		return nil
	}
	return &vecPred{kern: k}
}

// selectRows runs the predicate over src and returns the surviving row
// indexes (in row order) in the operator-owned scratch — callers must
// consume the selection before the next call. ok is false when the
// chunk must be re-run through the row interpreter — a column failed to
// vectorize or a fallback conjunct errored — so error timing stays the
// interpreter's.
func (p *vecPred) selectRows(src expr.VecSource) ([]int32, bool) {
	if cap(p.sel) < src.Len() {
		p.sel = make([]int32, src.Len())
	}
	sel, err := p.kern.Select(src, nil, p.sel[:0])
	if err != nil {
		return nil, false
	}
	return sel, true
}

// --- projection evaluation ------------------------------------------------

// vecProj evaluates one projection list over a columnar batch. Each
// output column is a bare-column passthrough, a constant, a compiled
// kernel, or a per-row interpreted expression; any kernel error demotes
// the whole batch to the interpreter.
type vecProj struct {
	exprs  []expr.Expr    // bound originals, for the interpreter path
	colIdx []int          // >= 0: bare column passthrough
	consts []*expr.Value  // non-nil: constant output
	kerns  []*expr.Kernel // non-nil: compiled kernel
	outs   []*expr.Vec    // kernel results for the current batch
	pass   []*expr.Vec    // passthrough sources for the current batch

	// fallback: some column needs the row interpreter per value.
	// constsExact: every constant reproduces itself through a vector
	// (no payload residue), so a columnar broadcast is value-identical
	// to the row path. Both gate the fully columnar applyCols output.
	fallback    bool
	constsExact bool
}

// compileProj compiles a projection list. It reports nil when kernels
// are disabled or nothing vectorizes beyond passthroughs (the plain
// row projector is just as fast then and keeps lazy error timing).
func compileProj(exprs []expr.Expr, types []expr.Type, vec bool) *vecProj {
	if !vec {
		return nil
	}
	p := &vecProj{
		exprs:       exprs,
		colIdx:      make([]int, len(exprs)),
		consts:      make([]*expr.Value, len(exprs)),
		kerns:       make([]*expr.Kernel, len(exprs)),
		outs:        make([]*expr.Vec, len(exprs)),
		pass:        make([]*expr.Vec, len(exprs)),
		constsExact: true,
	}
	compiled := false
	var probe expr.Vec
	for i, e := range exprs {
		p.colIdx[i] = -1
		switch n := e.(type) {
		case *expr.Col:
			p.colIdx[i] = n.Index
		case *expr.Const:
			v := n.Val
			p.consts[i] = &v
			probe.Broadcast(v, 1)
			if !probe.Exact {
				p.constsExact = false
			}
		default:
			if k, ok := expr.Compile(e, types); ok {
				p.kerns[i] = k
				compiled = true
			} else {
				p.fallback = true
			}
		}
	}
	if !compiled {
		return nil
	}
	return p
}

// apply projects the selected rows of src (all rows when sel is nil)
// and appends the output rows to out. ok is false when the batch must
// be re-run through the row interpreter; out is untouched then.
func (p *vecProj) apply(src expr.VecSource, sel []int32, out []expr.Row) ([]expr.Row, bool) {
	for i, k := range p.kerns {
		if k == nil {
			continue
		}
		v, err := k.EvalVec(src, sel)
		if err != nil {
			return out, false
		}
		p.outs[i] = v
	}
	n := src.Len()
	if sel != nil {
		n = len(sel)
	}
	for j := 0; j < n; j++ {
		ri := j
		if sel != nil {
			ri = int(sel[j])
		}
		row := make(expr.Row, len(p.exprs))
		for i := range p.exprs {
			switch {
			case p.colIdx[i] >= 0:
				r := src.Row(ri)
				if p.colIdx[i] >= len(r) {
					return out, false
				}
				row[i] = r[p.colIdx[i]]
			case p.consts[i] != nil:
				row[i] = *p.consts[i]
			case p.kerns[i] != nil:
				row[i] = p.outs[i].Value(j)
			default:
				v, err := expr.Eval(p.exprs[i], src.Row(ri))
				if err != nil {
					return out, false
				}
				row[i] = v
			}
		}
		out = append(out, row)
	}
	return out, true
}

// applyCols projects the selected rows of in fully columnar: kernel
// outputs are copied, passthrough columns gathered, and constants
// broadcast into out's owned vectors — no row is materialized. ok is
// false when the batch cannot be projected columnar with row-identical
// results: a fallback or non-round-tripping constant column, a kernel
// error, or a passthrough column that is unavailable or not exact
// (its vector would canonicalize values the row path passes through
// verbatim). The caller then tries apply and the interpreter, in order.
func (p *vecProj) applyCols(in *expr.Batch, sel []int32, out *expr.Batch) bool {
	if p.fallback || !p.constsExact {
		return false
	}
	for i, k := range p.kerns {
		if k == nil {
			continue
		}
		v, err := k.EvalVec(in, sel)
		if err != nil {
			return false
		}
		p.outs[i] = v
	}
	for i, idx := range p.colIdx {
		if idx < 0 {
			continue
		}
		v, ok := in.ColVec(idx)
		if !ok || !v.Exact {
			return false
		}
		p.pass[i] = v
	}
	n := in.Len()
	if sel != nil {
		n = len(sel)
	}
	out.StartCols(len(p.exprs), n)
	for i := range p.exprs {
		dst := out.OwnCol(i)
		switch {
		case p.colIdx[i] >= 0:
			dst.GatherFrom(p.pass[i], sel)
		case p.consts[i] != nil:
			dst.Broadcast(*p.consts[i], n)
		default:
			// Kernel scratch is reused on the next batch; the output
			// column owns a copy.
			dst.CopyFrom(p.outs[i])
		}
	}
	out.FinishCols()
	return true
}

// projectRow is the interpreter path shared by the fallback branches.
func projectRow(exprs []expr.Expr, row expr.Row) (expr.Row, error) {
	out := make(expr.Row, len(exprs))
	for i, e := range exprs {
		v, err := expr.Eval(e, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
