package executor

import (
	"fmt"
	"strings"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/plan"
)

// Index access-path operators. An IndexScan serves a Filter-over-Scan
// through a B+ tree range on one indexed column, re-applying the full
// predicate as a residual; an IndexLookupJoin replaces a join's inner
// scan with one index probe per outer row. Both read through the
// cluster's storage layer, which answers from the in-memory trees or
// the persistent engine's pages identically — (key, insertion) order on
// either backend — so plans keep byte-identical results across the
// store axis.

// --- index scan ---------------------------------------------------------

// indexScanOp implements plan.IndexScan. Should the backend report the
// index unusable at runtime (ok=false — a plan carried across a schema
// change), it degrades to the full fragment scan the plan replaced:
// same surviving rows, insertion order instead of key order.
type indexScanOp struct {
	node *plan.Node
	c    *cluster.Cluster
	pred expr.Expr
	rows []expr.Row
	pos  int
}

func newIndexScan(n *plan.Node, c *cluster.Cluster) (Operator, error) {
	if n.Table == nil {
		return nil, fmt.Errorf("executor: index scan without table")
	}
	var pred expr.Expr
	if n.Pred != nil {
		bound, err := expr.Bind(n.Pred, resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: index scan bind: %w", err)
		}
		pred = bound
	}
	return &indexScanOp{node: n, c: c, pred: pred}, nil
}

func (s *indexScanOp) Open() error {
	n := s.node
	rows, ok, err := s.c.IndexRangeRows(n.Table, n.FragIdx, n.IdxCol, n.IdxLo, n.IdxHi, n.IdxLoInc, n.IdxHiInc)
	if err != nil {
		return err
	}
	if !ok {
		rows, err = s.c.FragmentRows(n.Table, n.FragIdx)
		if err != nil {
			return err
		}
	}
	s.rows, s.pos = rows, 0
	return nil
}

func (s *indexScanOp) Next() (expr.Row, bool, error) {
	for s.pos < len(s.rows) {
		row := s.rows[s.pos]
		s.pos++
		keep, err := expr.EvalBool(s.pred, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
	return nil, false, nil
}

func (s *indexScanOp) Close() error {
	s.rows = nil
	return nil
}

// --- index lookup join --------------------------------------------------

// indexLookupJoinOp implements plan.IndexLookupJoin: the outer child
// streams; each outer row's key probes the inner table's index at the
// inner site, and the full join predicate runs as a residual over each
// candidate pair. The inner scan child is never executed — its rows are
// reached through the index — but its node describes the probed
// fragment and the concatenated output schema.
type indexLookupJoinOp struct {
	node  *plan.Node
	c     *cluster.Cluster
	outer Operator
	inner *plan.Node
	key   expr.Expr // probe key, bound against the outer schema
	pred  expr.Expr // full join predicate over the concatenated schema

	cur     expr.Row
	matches []expr.Row
	mi      int

	// Degraded path (index unusable at runtime): the inner fragment is
	// materialized once and probed by value comparison.
	innerRows   []expr.Row
	innerKeyIdx int
	innerLoaded bool
}

func newIndexLookupJoin(n *plan.Node, outer Operator, c *cluster.Cluster) (Operator, error) {
	if len(n.Children) != 2 || n.Children[1].Table == nil {
		return nil, fmt.Errorf("executor: index lookup join without inner scan")
	}
	key, err := expr.Bind(n.IdxOuter, resolver(n.Children[0]))
	if err != nil {
		return nil, fmt.Errorf("executor: index lookup key bind: %w", err)
	}
	var pred expr.Expr
	if n.Pred != nil {
		bound, err := expr.Bind(n.Pred, resolver(n))
		if err != nil {
			return nil, fmt.Errorf("executor: index lookup join bind: %w", err)
		}
		pred = bound
	}
	return &indexLookupJoinOp{node: n, c: c, outer: outer, inner: n.Children[1], key: key, pred: pred}, nil
}

func (j *indexLookupJoinOp) Open() error {
	j.cur, j.matches, j.mi = nil, nil, 0
	j.innerRows, j.innerLoaded = nil, false
	return j.outer.Open()
}

func (j *indexLookupJoinOp) Next() (expr.Row, bool, error) {
	for {
		for j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			out := concatRow(j.cur, r)
			keep, err := expr.EvalBool(j.pred, out)
			if err != nil {
				return nil, false, err
			}
			if keep {
				return out, true, nil
			}
		}
		row, ok, err := j.outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = row
		j.matches, j.mi = nil, 0
		k, err := expr.Eval(j.key, row)
		if err != nil {
			return nil, false, err
		}
		if k.IsNull() {
			continue // NULL keys never match
		}
		matches, idxOK, err := j.c.IndexLookupRows(j.inner.Table, j.inner.FragIdx, j.node.IdxCol, k)
		if err != nil {
			return nil, false, err
		}
		if !idxOK {
			matches, err = j.probeFallback(k)
			if err != nil {
				return nil, false, err
			}
		}
		j.matches = matches
	}
}

// probeFallback answers one probe without the index: the inner fragment
// is scanned once into memory and filtered by key equality, preserving
// the index path's insertion order among equal keys.
func (j *indexLookupJoinOp) probeFallback(k expr.Value) ([]expr.Row, error) {
	if !j.innerLoaded {
		rows, err := j.c.FragmentRows(j.inner.Table, j.inner.FragIdx)
		if err != nil {
			return nil, err
		}
		idx := -1
		for i, cr := range j.inner.Cols {
			if strings.EqualFold(cr.Name, j.node.IdxCol) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("executor: index lookup join: inner column %s not in schema", j.node.IdxCol)
		}
		j.innerRows, j.innerKeyIdx, j.innerLoaded = rows, idx, true
	}
	var out []expr.Row
	for _, r := range j.innerRows {
		v := r[j.innerKeyIdx]
		if v.IsNull() {
			continue
		}
		if c, err := v.Compare(k); err == nil && c == 0 {
			out = append(out, r)
		}
	}
	return out, nil
}

func (j *indexLookupJoinOp) Close() error {
	j.matches, j.innerRows = nil, nil
	return j.outer.Close()
}
