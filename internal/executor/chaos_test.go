package executor

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/plan"
)

// chaosPlan builds the four-fragment, three-SHIP plan of the parallel
// tests: Customer ships N→E, the Supply aggregate ships A→E, the join
// result ships E→N.
func chaosPlan(t *testing.T) (*plan.Node, *cluster.Cluster) {
	t.Helper()
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	o := scanNode(t, cat, "Orders", "O")
	s := scanNode(t, cat, "Supply", "S")
	shipC := plan.NewShip(c, "N", "E")
	sAgg := plan.NewAggregate(s,
		[]*expr.Col{expr.NewCol("S", "ordkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("S", "quantity"), Name: "qty"}})
	sAgg.Kind = plan.HashAgg
	shipS := plan.NewShip(sAgg, "A", "E")
	join1 := plan.NewJoin(shipC, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	join1.Kind = plan.HashJoin
	join2 := plan.NewJoin(join1, shipS, expr.NewCmp(expr.EQ, expr.NewCol("O", "ordkey"), expr.NewCol("S", "ordkey")))
	join2.Kind = plan.HashJoin
	return plan.NewShip(join2, "E", "N"), cl
}

func chaosRetry() network.RetryPolicy {
	return network.RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  160 * time.Microsecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

func sortedTransfers(l *network.Ledger) []network.Transfer {
	ts := l.Transfers()
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Bytes != b.Bytes {
			return a.Bytes < b.Bytes
		}
		return a.Rows < b.Rows
	})
	return ts
}

// TestChaosParallelLedgerParity sweeps seeds over the multi-ship plan:
// every run must either reproduce the fault-free rows AND the fault-free
// ledger bit-for-bit (retries re-account cleanly), or fail with a typed
// *network.ShipError. Runs under -race in tier-1.
func TestChaosParallelLedgerParity(t *testing.T) {
	root, cl := chaosPlan(t)
	cl.Ledger.Reset()
	wantRows, _, err := Run(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	wantTransfers := sortedTransfers(cl.Ledger)
	want := canon(wantRows)

	okRuns, failRuns := 0, 0
	for seed := int64(1); seed <= 25; seed++ {
		cl.SetFaults(network.NewFaultPlan(seed).SetDefault(network.EdgeFaults{
			DropProb: 0.15, TransientProb: 0.1, DelayProb: 0.2, DelayMS: 10,
		}))
		cl.SetRetry(chaosRetry())
		cl.Ledger.Reset()
		rows, stats, err := RunParallel(root, cl)
		if err != nil {
			var se *network.ShipError
			if !errors.As(err, &se) {
				t.Fatalf("seed %d: untyped chaos error: %v", seed, err)
			}
			failRuns++
			continue
		}
		okRuns++
		got := canon(rows)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d rows, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: row %d differs: %s vs %s", seed, i, got[i], want[i])
			}
		}
		gotTransfers := sortedTransfers(cl.Ledger)
		if len(gotTransfers) != len(wantTransfers) {
			t.Fatalf("seed %d: %d ledger entries, want %d", seed, len(gotTransfers), len(wantTransfers))
		}
		for i := range wantTransfers {
			if gotTransfers[i] != wantTransfers[i] {
				t.Fatalf("seed %d: ledger entry %d differs after retries:\ngot  %+v\nwant %+v",
					seed, i, gotTransfers[i], wantTransfers[i])
			}
		}
		if stats.Retries == 0 && seed == 1 {
			// Not fatal for other seeds, but the sweep as a whole must
			// exercise the retry path; checked below.
			t.Log("seed 1 had no retries")
		}
	}
	cl.SetFaults(nil)
	if okRuns == 0 {
		t.Error("no chaos run succeeded; fault rates too high to exercise the parity path")
	}
	t.Logf("chaos sweep: %d recovered runs, %d typed failures", okRuns, failRuns)
}

// TestChaosSequentialEngine drives the same sweep through the
// sequential engine: the resilient path is engine-independent.
func TestChaosSequentialEngine(t *testing.T) {
	root, cl := chaosPlan(t)
	cl.Ledger.Reset()
	wantRows, _, err := Run(root, cl)
	if err != nil {
		t.Fatal(err)
	}
	want := canon(wantRows)
	wantTransfers := sortedTransfers(cl.Ledger)
	okRuns := 0
	for seed := int64(1); seed <= 10; seed++ {
		cl.SetFaults(network.NewFaultPlan(seed).SetDefault(network.EdgeFaults{
			DropProb: 0.2, TransientProb: 0.1,
		}))
		cl.SetRetry(chaosRetry())
		cl.Ledger.Reset()
		rows, stats, err := Run(root, cl)
		if err != nil {
			var se *network.ShipError
			if !errors.As(err, &se) {
				t.Fatalf("seed %d: untyped chaos error: %v", seed, err)
			}
			continue
		}
		okRuns++
		got := canon(rows)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: row %d differs", seed, i)
			}
		}
		gotTransfers := sortedTransfers(cl.Ledger)
		for i := range wantTransfers {
			if gotTransfers[i] != wantTransfers[i] {
				t.Fatalf("seed %d: ledger entry %d differs", seed, i)
			}
		}
		if stats.ShippedBytes == 0 {
			t.Fatalf("seed %d: no bytes accounted", seed)
		}
	}
	cl.SetFaults(nil)
	if okRuns == 0 {
		t.Error("no sequential chaos run succeeded")
	}
}

// TestChaosPartitionTearsDownCleanly: with a partitioned edge on the
// plan's path, both engines fail fast with ErrPartitioned — no hang, no
// goroutine leak (RunParallel returns only after all producers exit).
func TestChaosPartitionTearsDownCleanly(t *testing.T) {
	root, cl := chaosPlan(t)
	cl.SetFaults(network.NewFaultPlan(3).SetEdge("A", "E", network.EdgeFaults{Partitioned: true}))
	cl.SetRetry(chaosRetry())
	for _, eng := range []struct {
		name string
		run  func(*plan.Node, *cluster.Cluster) ([]expr.Row, *RunStats, error)
	}{{"sequential", Run}, {"parallel", RunParallel}} {
		cl.Ledger.Reset()
		done := make(chan error, 1)
		go func() {
			_, _, err := eng.run(root, cl)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, network.ErrPartitioned) {
				t.Fatalf("%s: error %v, want ErrPartitioned", eng.name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: partitioned run hung", eng.name)
		}
	}
	cl.SetFaults(nil)
}

// TestChaosContextCancellation: cancelling the caller's context tears
// down every fragment goroutine and the run reports the cancellation
// instead of a partial result.
func TestChaosContextCancellation(t *testing.T) {
	root, cl := chaosPlan(t)
	// Make transfers slow enough that cancellation lands mid-flight.
	cl.SetWireDelay(0.02)
	defer cl.SetWireDelay(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := RunParallelContext(ctx, root, cl)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			// With the wire delay the serial α sleeps alone exceed the
			// 2ms cancellation point, so a success means the cancelled
			// context was ignored.
			t.Fatal("cancelled run reported success")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run hung")
	}
}
