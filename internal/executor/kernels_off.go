//go:build cgdqp_interp

package executor

// kernelsDefault is false under the cgdqp_interp build tag: every
// expression is evaluated by the row interpreter.
const kernelsDefault = false
