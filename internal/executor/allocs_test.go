package executor

import (
	"fmt"
	"testing"

	"cgdqp/internal/expr"
)

// This file pins the zero-allocation contract of the columnar hot
// loops: once an operator's owned scratch has warmed up, absorbing
// another batch through filter→project or aggregate absorption must not
// allocate. The tests drive the operator-owned containers directly
// (compiled predicates/projections, a hand-built hashAggOp) rather than
// pooled engine batches, so a regression here is an allocation in the
// per-batch loop itself, not pool or GC noise.

// allocSource builds a lane-pure, null-free row-backed batch bound to
// its types, with every column vector pre-built so the measured loops
// see the steady-state columnar view.
func allocSource(tb testing.TB, n int) (*expr.Batch, []expr.Type) {
	tb.Helper()
	types := []expr.Type{expr.TInt, expr.TFloat, expr.TString}
	rows := make([]expr.Row, n)
	for i := range rows {
		rows[i] = expr.Row{
			expr.NewInt(int64(i % 64)),
			expr.NewFloat(float64(i%100) / 4),
			expr.NewString(fmt.Sprintf("s-%02d", i%16)),
		}
	}
	b := &expr.Batch{}
	b.SetRows(rows)
	b.Bind(types)
	for i := range types {
		if _, ok := b.ColVec(i); !ok {
			tb.Fatalf("column %d did not vectorize", i)
		}
	}
	return b, types
}

// TestFilterProjectZeroAlloc pins the filter→project columnar path:
// kernel selection into the operator-owned selection scratch, then a
// fully columnar projection (kernel + passthrough + constant columns)
// into an owned output batch. Zero allocations per batch.
func TestFilterProjectZeroAlloc(t *testing.T) {
	in, types := allocSource(t, 1024)

	pred := expr.NewAnd(
		expr.NewCmp(expr.GT, &expr.Col{Name: "a", Index: 0}, expr.NewConst(expr.NewInt(7))),
		expr.NewCmp(expr.LT, &expr.Col{Name: "b", Index: 1}, expr.NewConst(expr.NewFloat(20))),
	)
	p := compilePred(pred, types, true)
	if p == nil {
		t.Fatal("predicate did not compile")
	}
	exprs := []expr.Expr{
		expr.NewArith(expr.Add, &expr.Col{Name: "a", Index: 0}, &expr.Col{Name: "b", Index: 1}),
		&expr.Col{Name: "c", Index: 2},
		expr.NewConst(expr.NewInt(42)),
	}
	proj := compileProj(exprs, types, true)
	if proj == nil {
		t.Fatal("projection did not compile")
	}

	var out expr.Batch
	run := func() {
		sel, ok := p.selectRows(in)
		if !ok {
			t.Fatal("predicate fell back to the interpreter")
		}
		if len(sel) == 0 {
			t.Fatal("selection is empty; the loop under test is idle")
		}
		if !proj.applyCols(in, sel, &out) {
			t.Fatal("projection fell back to the interpreter")
		}
	}
	run() // warm the operator-owned scratch
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("filter→project allocates %.1f per batch, want 0", avg)
	}
}

// TestAggAbsorbZeroAlloc pins vectorized aggregate absorption: once
// every group exists and the accumulator lanes are grown, absorbing
// another chunk — key encoding, group-id assignment, and all typed
// accumulator updates — must not allocate.
func TestAggAbsorbZeroAlloc(t *testing.T) {
	in, types := allocSource(t, 1024)
	var chunk Batch
	chunk.data = *in

	op := &hashAggOp{
		keys:    []expr.Expr{&expr.Col{Name: "c", Index: 2}},
		args:    []expr.Expr{&expr.Col{Name: "b", Index: 1}, nil, &expr.Col{Name: "a", Index: 0}, &expr.Col{Name: "c", Index: 2}, &expr.Col{Name: "b", Index: 1}},
		fns:     []expr.AggFn{expr.AggSum, expr.AggCount, expr.AggAvg, expr.AggMax, expr.AggMin},
		inTypes: types,
		lookup:  make(map[string]int32),
		vec:     true,
		keyCols: []int{2}, keyKerns: make([]*expr.Kernel, 1),
		argCols: []int{1, -1, 0, 2, 1}, argKerns: make([]*expr.Kernel, 5),
		keyVecs: make([]*expr.Vec, 1), keyDense: make([]bool, 1),
		argVecs: make([]*expr.Vec, 5), argDense: make([]bool, 5),
	}
	for _, fn := range op.fns {
		op.accs = append(op.accs, &accCol{fn: fn})
	}

	// Warm up: the first chunk registers every group and grows the lanes.
	if !op.absorbVecChunk(&chunk) {
		t.Fatal("chunk did not absorb vectorized")
	}
	if len(op.groupVals) == 0 {
		t.Fatal("no groups formed")
	}
	run := func() {
		if !op.absorbVecChunk(&chunk) {
			t.Fatal("chunk fell back to the row path")
		}
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("agg absorb allocates %.1f per chunk, want 0", avg)
	}
}
