package executor

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/network"
	"cgdqp/internal/obs"
)

// observedCluster attaches a fully-enabled observer to the cluster and
// returns both. The cluster observer feeds the shipping-layer hooks;
// the same observer is passed to the Run*Observed entry points.
func observedCluster(cl *cluster.Cluster) *obs.Observer {
	o := &obs.Observer{
		Tracer:  obs.NewTracer(),
		Metrics: obs.NewRegistry(),
		Audit:   obs.NewAuditLog(),
	}
	cl.SetObserver(o)
	return o
}

// edgeVolume aggregates an audit log's delivered volume per
// (edge, relations, columns, justification) — the engine-independent
// shape of the log (the parallel engine splits the same stream into
// more batches, so raw records differ in Batches).
func edgeVolume(a *obs.AuditLog) map[string][2]int64 {
	out := map[string][2]int64{}
	for _, r := range a.Records() {
		k := fmt.Sprintf("%s->%s|%s|%s|%s", r.From, r.To,
			strings.Join(r.Relations, ","), strings.Join(r.Columns, ","), r.Justification)
		v := out[k]
		out[k] = [2]int64{v[0] + r.Rows, v[1] + r.Bytes}
	}
	return out
}

// TestObservedAuditParitySeqVsParallel: both engines must account the
// same shipped volume per edge with the same justification.
func TestObservedAuditParitySeqVsParallel(t *testing.T) {
	p, cl := chaosPlan(t)
	o := observedCluster(cl)

	cl.Ledger.Reset()
	_, seqStats, err := RunObserved(p, cl, o)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	seqVol := edgeVolume(o.Audit)
	seqLog := o.Audit.String()

	o.Audit.Reset()
	cl.Ledger.Reset()
	_, parStats, err := RunParallelObserved(context.Background(), p, cl, o)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	parVol := edgeVolume(o.Audit)

	if len(seqVol) != 3 {
		t.Fatalf("expected 3 audited edges, got %d:\n%s", len(seqVol), seqLog)
	}
	if len(seqVol) != len(parVol) {
		t.Fatalf("edge sets differ: seq %v par %v", seqVol, parVol)
	}
	for k, sv := range seqVol {
		if pv, ok := parVol[k]; !ok || pv != sv {
			t.Fatalf("edge %q volume differs: seq %v par %v", k, sv, parVol[k])
		}
	}
	// The audit totals must agree with the engines' own ledger stats.
	var rows int64
	for _, v := range seqVol {
		rows += v[0]
	}
	if rows != seqStats.ShippedRows || rows != parStats.ShippedRows {
		t.Fatalf("audited rows %d vs stats seq %d par %d", rows, seqStats.ShippedRows, parStats.ShippedRows)
	}
}

// TestObservedAuditDeterministicReplay: replaying the same chaos seed
// must render a byte-identical audit log, including under the parallel
// engine's goroutine interleaving.
func TestObservedAuditDeterministicReplay(t *testing.T) {
	p, cl := chaosPlan(t)
	cl.SetRetry(chaosRetry())
	o := observedCluster(cl)
	faults := func() *network.FaultPlan {
		return network.NewFaultPlan(42).SetDefault(network.EdgeFaults{
			DropProb:      0.10,
			TransientProb: 0.10,
		})
	}
	run := func() string {
		o.Audit.Reset()
		cl.Ledger.Reset()
		cl.SetFaults(faults())
		if _, _, err := RunParallelObserved(context.Background(), p, cl, o); err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return o.Audit.String()
	}
	first := run()
	if first == "" {
		t.Fatal("audit log empty")
	}
	if !strings.Contains(first, "justification=") {
		t.Fatalf("records missing justification:\n%s", first)
	}
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	cl.SetFaults(nil)
}

// TestObservedSpansAndMetrics: the lifecycle spans and per-edge series
// the instrumentation promises actually appear.
func TestObservedSpansAndMetrics(t *testing.T) {
	p, cl := chaosPlan(t)
	o := observedCluster(cl)
	cl.Ledger.Reset()
	_, stats, err := RunParallelObserved(context.Background(), p, cl, o)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, s := range o.Tracer.Spans() {
		names[s.Name]++
	}
	if names["execute.parallel"] != 1 {
		t.Fatalf("want one execute.parallel span, got %d (%v)", names["execute.parallel"], names)
	}
	if names["exec.fragment"] != 3 {
		t.Fatalf("want 3 exec.fragment spans (one per Ship), got %d", names["exec.fragment"])
	}
	if names["ship.batch"] == 0 {
		t.Fatalf("no ship.batch spans recorded: %v", names)
	}
	var rows int64
	for _, edge := range [][2]string{{"N", "E"}, {"A", "E"}, {"E", "N"}} {
		rows += o.Metrics.CounterValue("cgdqp_ship_rows_total", "from", edge[0], "to", edge[1])
	}
	if rows != stats.ShippedRows {
		t.Fatalf("per-edge rows counters sum to %d, stats say %d", rows, stats.ShippedRows)
	}
	if o.Metrics.CounterValue("cgdqp_executions_total", "engine", "parallel", "status", "ok") != 1 {
		t.Fatal("execution counter not bumped")
	}
	if o.Metrics.Histogram("cgdqp_execute_seconds", "engine", "parallel").Count() != 1 {
		t.Fatal("execute latency histogram not observed")
	}

	// Sequential engine reports under its own labels.
	cl.Ledger.Reset()
	if _, _, err := RunObserved(p, cl, o); err != nil {
		t.Fatal(err)
	}
	if o.Metrics.CounterValue("cgdqp_executions_total", "engine", "seq", "status", "ok") != 1 {
		t.Fatal("sequential execution counter not bumped")
	}
}

// TestObservedRetryMetrics: under chaos, retries surface both as spans
// and as per-edge retry counters plus fault-kind counters.
func TestObservedRetryMetrics(t *testing.T) {
	p, cl := chaosPlan(t)
	cl.SetRetry(chaosRetry())
	o := observedCluster(cl)
	cl.Ledger.Reset()
	cl.SetFaults(network.NewFaultPlan(7).SetDefault(network.EdgeFaults{
		DropProb:      0.25,
		TransientProb: 0.25,
	}))
	if _, stats, err := RunParallelObserved(context.Background(), p, cl, o); err != nil {
		t.Fatal(err)
	} else if stats.Retries == 0 {
		t.Skip("seed produced no retries")
	}
	var retries int64
	for _, edge := range [][2]string{{"N", "E"}, {"A", "E"}, {"E", "N"}} {
		retries += o.Metrics.CounterValue("cgdqp_ship_retries_total", "from", edge[0], "to", edge[1])
	}
	if retries == 0 {
		t.Fatal("retry counters not bumped")
	}
	var faults int64
	for _, kind := range []string{"drop", "transient", "timeout", "partition", "other"} {
		faults += o.Metrics.CounterValue("cgdqp_ship_faults_total", "kind", kind)
	}
	if faults < retries {
		t.Fatalf("fault counters (%d) should cover every retried attempt (%d)", faults, retries)
	}
	spans := 0
	for _, s := range o.Tracer.Spans() {
		if s.Name == "ship.retry" {
			spans++
			if s.Attr("fault") == "" {
				t.Fatalf("ship.retry span missing fault attr: %+v", s)
			}
		}
	}
	if int64(spans) != retries {
		t.Fatalf("ship.retry spans %d != retry counter %d", spans, retries)
	}
	cl.SetFaults(nil)
}

// TestObservedProfileActuals: EXPLAIN ANALYZE actuals match reality on
// both engines — root rows equal the result, Ship nodes count batches.
func TestObservedProfileActuals(t *testing.T) {
	p, cl := chaosPlan(t)
	for _, engine := range []string{"seq", "parallel"} {
		prof := obs.NewPlanProfile()
		o := (&obs.Observer{}).WithProfile(prof)
		cl.Ledger.Reset()
		var rows []expr.Row
		var err error
		if engine == "seq" {
			rows, _, err = RunObserved(p, cl, o)
		} else {
			rows, _, err = RunParallelObserved(context.Background(), p, cl, o)
		}
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		st := prof.Stats(p)
		if st.Rows.Load() != int64(len(rows)) {
			t.Fatalf("%s: root actual rows %d != result rows %d", engine, st.Rows.Load(), len(rows))
		}
		if st.Batches.Load() == 0 {
			t.Fatalf("%s: root Ship should count delivered batches", engine)
		}
		out := prof.Format(p)
		if !strings.Contains(out, "actual rows=") || strings.Contains(out, "(never executed)") {
			t.Fatalf("%s: profile rendering incomplete:\n%s", engine, out)
		}
	}
}
