package executor

import (
	"fmt"
	"sync"
	"testing"

	"cgdqp/internal/cluster"
	"cgdqp/internal/expr"
	"cgdqp/internal/optimizer"
	"cgdqp/internal/plan"
	"cgdqp/internal/policy"
)

// runBoth executes the plan with the sequential and the parallel engine
// (resetting the ledger in between) and checks rows and shipping stats
// are identical. The parallel engine must preserve order, so rows are
// compared positionally, not as multisets.
func runBoth(t *testing.T, p *plan.Node, cl *cluster.Cluster, label string) ([]expr.Row, *RunStats) {
	t.Helper()
	cl.Ledger.Reset()
	seqRows, seqStats, err := Run(p, cl)
	if err != nil {
		t.Fatalf("%s: sequential run: %v\n%s", label, err, p.Format(true))
	}
	cl.Ledger.Reset()
	parRows, parStats, err := RunParallel(p, cl)
	if err != nil {
		t.Fatalf("%s: parallel run: %v\n%s", label, err, p.Format(true))
	}
	if len(seqRows) != len(parRows) {
		t.Fatalf("%s: row counts differ: sequential %d, parallel %d", label, len(seqRows), len(parRows))
	}
	sc, pc := canon(seqRows), canon(parRows)
	for i := range sc {
		if sc[i] != pc[i] {
			t.Fatalf("%s: row %d differs:\nsequential %s\nparallel   %s", label, i, sc[i], pc[i])
		}
	}
	if *seqStats != *parStats {
		t.Fatalf("%s: stats differ:\nsequential %+v\nparallel   %+v", label, seqStats, parStats)
	}
	return parRows, parStats
}

func TestParallelMatchesSequentialOperators(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	o := scanNode(t, cat, "Orders", "O")
	s := scanNode(t, cat, "Supply", "S")

	filter := plan.NewFilter(c, expr.NewCmp(expr.GE, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(200))))
	project := plan.NewProject(filter, []plan.NamedExpr{
		{E: expr.NewCol("C", "name")},
		{E: expr.NewArith(expr.Mul, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewInt(3))), Name: "tri"},
	})
	join := plan.NewJoin(c, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	join.Kind = plan.HashJoin
	agg := plan.NewAggregate(o,
		[]*expr.Col{expr.NewCol("O", "custkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("O", "totprice"), Name: "total"}})
	agg.Kind = plan.HashAgg
	sorted := plan.NewSort(s, []plan.SortKey{{E: expr.NewCol("S", "ordkey"), Desc: true}})
	limited := plan.NewLimit(sorted, 7)
	union := plan.NewUnion(c, c)

	cases := []struct {
		label string
		root  *plan.Node
	}{
		{"scan", c},
		{"filter", filter},
		{"project", project},
		{"hash join", join},
		{"hash agg", agg},
		{"sort+limit", limited},
		{"union", union},
	}
	for _, tc := range cases {
		runBoth(t, tc.root, cl, tc.label)
	}
}

func TestParallelMatchesSequentialWithShips(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	o := scanNode(t, cat, "Orders", "O")
	s := scanNode(t, cat, "Supply", "S")

	// Two independent leaf fragments (Customer at N, the Supply
	// aggregation at A) ship into the join fragment at E; the joined
	// result ships onward to N: three SHIP boundaries, four fragments.
	shipC := plan.NewShip(c, "N", "E")
	sAgg := plan.NewAggregate(s,
		[]*expr.Col{expr.NewCol("S", "ordkey")},
		[]plan.NamedAgg{{Fn: expr.AggSum, Arg: expr.NewCol("S", "quantity"), Name: "qty"}})
	sAgg.Kind = plan.HashAgg
	shipS := plan.NewShip(sAgg, "A", "E")

	join1 := plan.NewJoin(shipC, o, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	join1.Kind = plan.HashJoin
	join2 := plan.NewJoin(join1, shipS, expr.NewCmp(expr.EQ, expr.NewCol("O", "ordkey"), expr.NewCol("S", "ordkey")))
	join2.Kind = plan.HashJoin
	root := plan.NewShip(join2, "E", "N")

	frags := plan.SplitFragments(root)
	if len(frags) != 4 {
		t.Fatalf("fragments: got %d, want 4\n%s", len(frags), root.Format(true))
	}
	leaves := 0
	for _, f := range frags {
		if f.Leaf() {
			leaves++
		}
	}
	if leaves != 2 {
		t.Fatalf("leaf fragments: got %d, want 2", leaves)
	}
	rows, stats := runBoth(t, root, cl, "multi-ship join")
	if len(rows) != 200 {
		t.Errorf("rows: %d, want 200", len(rows))
	}
	if stats.ShippedRows == 0 || stats.ShipCost <= 0 {
		t.Errorf("ship stats not recorded: %+v", stats)
	}
}

// TestParallelLimitOverShip checks the accounting-parity corner: a LIMIT
// above an exchange abandons the stream early, but the producer must
// still run to completion (the sequential engine materializes Ship
// inputs fully at Open), so shipped rows/bytes/cost stay identical.
func TestParallelLimitOverShip(t *testing.T) {
	cat, cl := carco(t)
	o := scanNode(t, cat, "Orders", "O")
	ship := plan.NewShip(o, "E", "N")
	root := plan.NewLimit(ship, 5)
	rows, stats := runBoth(t, root, cl, "limit over ship")
	if len(rows) != 5 {
		t.Errorf("rows: %d, want 5", len(rows))
	}
	if stats.ShippedRows != 200 {
		t.Errorf("producer must ship all 200 rows despite the limit, got %d", stats.ShippedRows)
	}
}

// TestParallelEmptyShip checks a producer with zero rows still records
// its (start-up-priced) transfer, like the sequential engine.
func TestParallelEmptyShip(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	empty := plan.NewFilter(c, expr.NewCmp(expr.LT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(-10))))
	root := plan.NewShip(empty, "N", "E")
	rows, stats := runBoth(t, root, cl, "empty ship")
	if len(rows) != 0 {
		t.Errorf("rows: %d, want 0", len(rows))
	}
	if stats.ShipCost <= 0 {
		t.Errorf("empty inter-site ship must still pay the start-up cost, got %+v", stats)
	}
}

// TestParallelOptimizedPlansAgree runs the optimizer end-to-end (the
// executor package's e2e queries) under both engines.
func TestParallelOptimizedPlansAgree(t *testing.T) {
	cat, cl := carco(t)
	queries := []string{
		`SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
		 FROM Customer C, Orders O, Supply S
		 WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name`,
		`SELECT C.name, COUNT(*) AS cnt
		 FROM Customer C, Orders O WHERE C.custkey = O.custkey GROUP BY C.name`,
		`SELECT SUM(S.quantity) AS q FROM Orders O, Supply S WHERE O.ordkey = S.ordkey`,
	}
	for _, compliant := range []bool{true, false} {
		opt := optimizer.New(cat, carcoPolicyCatalog(), cl.Net, optimizer.Options{Compliant: compliant})
		for i, q := range queries {
			res, err := opt.OptimizeSQL(q)
			if err != nil {
				t.Fatalf("optimize q%d (compliant=%v): %v", i, compliant, err)
			}
			runBoth(t, res.Plan, cl, fmt.Sprintf("optimized q%d compliant=%v", i, compliant))
		}
	}
}

// TestParallelPermissivePlansAgree covers plans optimized under
// permissive policies (wider operator variety: merge joins, sorts).
func TestParallelPermissivePlansAgree(t *testing.T) {
	cat, cl := carco(t)
	pc := policy.NewCatalog()
	pc.AddAll(
		policy.MustParse("ship * from Customer to *", "p1", "db-n"),
		policy.MustParse("ship * from Orders to *", "p2", "db-e"),
		policy.MustParse("ship * from Supply to *", "p3", "db-a"),
	)
	queries := []string{
		`SELECT C.name, O.totprice FROM Customer C, Orders O
		 WHERE C.custkey = O.custkey AND O.totprice > 220
		 ORDER BY O.totprice DESC LIMIT 10`,
		`SELECT O.custkey, COUNT(*) AS cnt FROM Orders O, Supply S
		 WHERE O.ordkey = S.ordkey GROUP BY O.custkey`,
	}
	opt := optimizer.New(cat, pc, cl.Net, optimizer.Options{Compliant: true})
	for i, q := range queries {
		res, err := opt.OptimizeSQL(q)
		if err != nil {
			t.Fatalf("optimize q%d: %v", i, err)
		}
		runBoth(t, res.Plan, cl, fmt.Sprintf("permissive q%d", i))
	}
}

// TestParallelConcurrentExecutions is the race regression test: several
// goroutines execute multi-SHIP plans against one shared cluster (one
// ledger, one storage layer) concurrently. Run with -race.
func TestParallelConcurrentExecutions(t *testing.T) {
	cat, cl := carco(t)
	query := `SELECT C.name, SUM(O.totprice) AS total, SUM(S.quantity) AS qty
	          FROM Customer C, Orders O, Supply S
	          WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name`
	opt := optimizer.New(cat, carcoPolicyCatalog(), cl.Net, optimizer.Options{Compliant: true})
	res, err := opt.OptimizeSQL(query)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, _, err := RunParallel(res.Plan, cl)
			if err != nil {
				errs <- err
				return
			}
			if len(rows) != 50 {
				errs <- fmt.Errorf("concurrent run returned %d rows, want 50", len(rows))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHashJoinEmptyProbeShortCircuit: an empty probe side skips the
// hash-table build but keeps results and ship accounting intact.
func TestHashJoinEmptyProbeShortCircuit(t *testing.T) {
	cat, cl := carco(t)
	c := scanNode(t, cat, "Customer", "C")
	o := scanNode(t, cat, "Orders", "O")
	noC := plan.NewFilter(c, expr.NewCmp(expr.LT, expr.NewCol("C", "acctbal"), expr.NewConst(expr.NewFloat(-10))))
	buildShip := plan.NewShip(o, "E", "N")
	join := plan.NewJoin(noC, buildShip, expr.NewCmp(expr.EQ, expr.NewCol("C", "custkey"), expr.NewCol("O", "custkey")))
	join.Kind = plan.HashJoin
	rows, stats := runBoth(t, join, cl, "empty probe")
	if len(rows) != 0 {
		t.Errorf("rows: %d, want 0", len(rows))
	}
	// The build side is a Ship: it must still account its transfer even
	// though the build was skipped.
	if stats.ShippedRows != 200 {
		t.Errorf("build-side ship rows: %d, want 200", stats.ShippedRows)
	}
}
